// Adversary subsystem demo: one mobile ad hoc network, three threat
// models.  Runs the same 30-node scenario under (1) a colluding
// eavesdropper coalition, (2) mobile external sniffers, and (3) an
// insider blackhole, for AODV and MTS, and prints what each adversary
// achieved — the quickest way to see why the paper's multipath argument
// needs a coalition-aware threat model.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "harness/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mts;

  harness::ScenarioConfig base;
  base.node_count = 30;
  base.field = {800.0, 800.0};
  base.sim_time = sim::Time::sec(60);
  base.max_speed = 5.0;
  // Single-run demo, so the seed shapes the story; pass another one as
  // argv[1] to see e.g. a coalition that drew unlucky positions.
  base.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

  const auto run = [&](harness::Protocol proto,
                       security::AdversarySpec spec) {
    harness::ScenarioConfig cfg = base;
    cfg.protocol = proto;
    cfg.adversary = spec;
    return harness::run_scenario(cfg);
  };

  security::AdversarySpec coalition;
  coalition.kind = security::AdversaryKind::kColluding;
  coalition.count = 3;

  security::AdversarySpec mobile;
  mobile.kind = security::AdversaryKind::kMobile;
  mobile.count = 2;
  mobile.max_speed = 15.0;

  security::AdversarySpec blackhole;
  blackhole.kind = security::AdversaryKind::kBlackhole;
  blackhole.count = 2;

  std::cout << "=== Adversary subsystem demo (30 nodes, 60 s, seed "
            << base.seed << ") ===\n\n";
  std::cout << std::left << std::setw(10) << "protocol" << std::setw(14)
            << "adversary" << std::setw(9) << "members" << std::setw(11)
            << "delivered" << std::setw(10) << "captured" << std::setw(11)
            << "intercept" << std::setw(9) << "missing" << "absorbed\n";

  for (harness::Protocol proto :
       {harness::Protocol::kAodv, harness::Protocol::kMts}) {
    for (const auto& spec : {coalition, mobile, blackhole}) {
      const harness::RunMetrics m = run(proto, spec);
      std::cout << std::left << std::setw(10) << harness::protocol_name(proto)
                << std::setw(14) << security::adversary_kind_name(spec.kind)
                << std::setw(9) << m.adversary_count << std::setw(11)
                << m.segments_delivered << std::setw(10)
                << m.coalition_captured << std::setw(11) << std::fixed
                << std::setprecision(3) << m.coalition_interception_ratio
                << std::setw(9) << m.fragments_missing << m.blackhole_absorbed
                << "\n";
    }
  }

  std::cout << "\ncaptured  = distinct TCP segments pooled by the coalition\n"
            << "intercept = pooled captures / delivered (union-Pe / Pr)\n"
            << "missing   = fragments the coalition still needs for the "
               "full stream\n"
            << "absorbed  = data packets silently eaten (blackhole only)\n";
  return 0;
}
