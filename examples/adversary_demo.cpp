// Adversary subsystem demo: one mobile ad hoc network, seven threat
// models.  Runs the same 30-node scenario under every adversary kind —
// colluding eavesdropper coalition, mobile external sniffers, insider
// blackhole, wormhole tunnel, grayhole, traffic-analysis profiler, and
// RREQ flood — for AODV and MTS, and prints what each adversary
// achieved: the quickest way to see why the paper's multipath argument
// needs a full threat taxonomy, not one passive listener.
//
// MTS_DEMO_SMOKE=1 shrinks the run for CI (fewer nodes, shorter sim).
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "harness/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mts;

  const bool smoke = std::getenv("MTS_DEMO_SMOKE") != nullptr;
  harness::ScenarioConfig base;
  base.node_count = smoke ? 20 : 30;
  base.field = smoke ? mobility::Field{700.0, 700.0}
                     : mobility::Field{800.0, 800.0};
  base.sim_time = sim::Time::sec(smoke ? 10 : 60);
  base.max_speed = 5.0;
  // Single-run demo, so the seed shapes the story; pass another one as
  // argv[1] to see e.g. a coalition that drew unlucky positions.
  base.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

  const auto run = [&](harness::Protocol proto,
                       security::AdversarySpec spec) {
    harness::ScenarioConfig cfg = base;
    cfg.protocol = proto;
    cfg.adversary = spec;
    return harness::run_scenario(cfg);
  };

  security::AdversarySpec coalition;
  coalition.kind = security::AdversaryKind::kColluding;
  coalition.count = 3;

  security::AdversarySpec mobile;
  mobile.kind = security::AdversaryKind::kMobile;
  mobile.count = 2;
  mobile.max_speed = 15.0;

  security::AdversarySpec blackhole;
  blackhole.kind = security::AdversaryKind::kBlackhole;
  blackhole.count = 2;

  security::AdversarySpec wormhole;
  wormhole.kind = security::AdversaryKind::kWormhole;

  security::AdversarySpec grayhole;
  grayhole.kind = security::AdversaryKind::kGrayhole;
  grayhole.count = 3;
  grayhole.drop_prob = 0.3;

  security::AdversarySpec traffic;
  traffic.kind = security::AdversaryKind::kTrafficAnalysis;
  traffic.count = 3;

  security::AdversarySpec flood;
  flood.kind = security::AdversaryKind::kRreqFlood;
  flood.count = 1;
  flood.flood_rate = 5.0;

  std::cout << "=== Adversary subsystem demo (" << base.node_count
            << " nodes, " << base.sim_time.to_seconds() << " s, seed "
            << base.seed << ") ===\n\n";
  std::cout << std::left << std::setw(10) << "protocol" << std::setw(12)
            << "adversary" << std::setw(9) << "members" << std::setw(11)
            << "delivered" << std::setw(10) << "captured" << std::setw(11)
            << "intercept" << std::setw(10) << "absorbed" << std::setw(10)
            << "tunneled" << std::setw(7) << "ctrl" << std::setw(9)
            << "endpt" << "injected\n";

  for (harness::Protocol proto :
       {harness::Protocol::kAodv, harness::Protocol::kMts}) {
    for (const auto& spec : {coalition, mobile, blackhole, wormhole,
                             grayhole, traffic, flood}) {
      const harness::RunMetrics m = run(proto, spec);
      std::cout << std::left << std::setw(10) << harness::protocol_name(proto)
                << std::setw(12) << security::adversary_kind_name(spec.kind)
                << std::setw(9) << m.adversary_count << std::setw(11)
                << m.segments_delivered << std::setw(10)
                << m.coalition_captured << std::setw(11) << std::fixed
                << std::setprecision(3) << m.coalition_interception_ratio
                << std::setw(10) << m.blackhole_absorbed << std::setw(10)
                << m.wormhole_tunneled << std::setw(7) << m.control_packets
                << std::setw(9) << std::setprecision(2)
                << m.endpoint_inference_accuracy << m.flood_injected << "\n";
    }
  }

  std::cout << "\ncaptured  = distinct TCP segments pooled by the adversary\n"
            << "intercept = pooled captures / delivered (union-Pe / Pr)\n"
            << "absorbed  = data packets deliberately eaten (blackhole/"
               "grayhole veto, wormhole tunnel drops)\n"
            << "tunneled  = frames replayed through the wormhole's "
               "out-of-band link\n"
            << "endpt     = endpoint-inference accuracy (traffic analysis)\n"
            << "injected  = forged RREQs injected (flood)\n";
  return 0;
}
