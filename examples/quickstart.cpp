// Quickstart: run one MTS scenario at the paper's parameters and print
// the headline metrics.  This is the 20-line "does it work" tour of the
// public API: build a ScenarioConfig, call run_scenario, read RunMetrics.
#include <iostream>

#include "harness/scenario.hpp"

int main() {
  using namespace mts;

  harness::ScenarioConfig cfg;             // paper §IV-A defaults: 50 nodes,
  cfg.protocol = harness::Protocol::kMts;  // 1000x1000 m, TCP Reno, 802.11
  cfg.max_speed = 10.0;                    // MAXSPEED 10 m/s
  cfg.sim_time = sim::Time::sec(50);       // short demo run
  cfg.seed = 42;

  std::cout << "Running " << harness::protocol_name(cfg.protocol)
            << " | 50 nodes | MAXSPEED " << cfg.max_speed << " m/s | "
            << cfg.sim_time.to_seconds() << " s simulated...\n";

  const harness::RunMetrics m = harness::run_scenario(cfg);

  std::cout << "\n--- TCP performance ---\n"
            << "segments delivered : " << m.segments_delivered << "\n"
            << "throughput         : " << m.throughput_kbps << " kb/s\n"
            << "avg end-to-end delay: " << m.avg_delay_s * 1000.0 << " ms\n"
            << "delivery rate      : " << m.delivery_rate << "\n"
            << "\n--- security ---\n"
            << "participating nodes: " << m.participating_nodes << "\n"
            << "relay stddev (Eq.4): " << m.relay_stddev * 100.0 << " %\n"
            << "highest interception ratio: " << m.highest_interception_ratio
            << "\n"
            << "eavesdropper node " << m.eavesdropper << " captured " << m.pe
            << "/" << m.pr << " segments (Ri=" << m.interception_ratio
            << ")\n"
            << "\n--- routing ---\n"
            << "control packets    : " << m.control_packets << "\n"
            << "MTS route switches : " << m.route_switches << "\n"
            << "MTS checks sent    : " << m.checks_sent << "\n"
            << "\nevents executed    : " << m.events_executed << "\n";
  return 0;
}
