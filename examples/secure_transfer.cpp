// Secure file transfer: the paper's motivating scenario.  A node must
// push a sensitive bulk TCP transfer across a 50-node ad hoc network
// while one unknown intermediate node eavesdrops.  We run the identical
// scenario (same seed => same mobility, same flow, same eavesdropper
// position) under DSR, AODV and MTS and compare what the attacker got.
#include <iostream>

#include "harness/scenario.hpp"
#include "stats/table.hpp"

int main() {
  using namespace mts;
  using harness::Protocol;

  std::cout << "Secure transfer demo: one TCP session, one hidden\n"
               "eavesdropper, identical conditions for each protocol.\n\n";

  stats::Table table({"protocol", "segments delivered", "Pe (captured)",
                      "interception Ri", "highest Ri", "participating",
                      "relay stddev %"});

  for (Protocol p : {Protocol::kDsr, Protocol::kAodv, Protocol::kMts}) {
    harness::ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.max_speed = 10.0;
    cfg.sim_time = sim::Time::sec(100);
    cfg.seed = 7;  // same seed: paired comparison
    const harness::RunMetrics m = harness::run_scenario(cfg);
    table.add_row({harness::protocol_name(p),
                   std::to_string(m.segments_delivered), std::to_string(m.pe),
                   stats::Table::fmt(m.interception_ratio, 3),
                   stats::Table::fmt(m.highest_interception_ratio, 3),
                   std::to_string(m.participating_nodes),
                   stats::Table::fmt(m.relay_stddev * 100.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nLower interception and lower relay concentration mean the\n"
               "attacker reconstructs less of the transfer (paper §IV-C).\n";
  return 0;
}
