// Countermeasure subsystem demo: the attack x defense ledger in one
// table.  Runs MTS under each active attack from the adversary demo —
// insider blackhole, duty-cycled grayhole, wormhole tunnel, RREQ flood
// — first undefended, then with the matching defense, plus a
// defenses-on/no-adversary row (the false-positive check).  The quickest
// way to see the loop the attack PRs opened being closed: what each
// attack cost, when the defense caught it, and what recovery looked
// like.
//
// MTS_DEMO_SMOKE=1 shrinks the run for CI (fewer nodes, shorter sim).
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mts;

  const bool smoke = std::getenv("MTS_DEMO_SMOKE") != nullptr;
  harness::ScenarioConfig base;
  base.node_count = smoke ? 20 : 30;
  base.field = smoke ? mobility::Field{700.0, 700.0}
                     : mobility::Field{800.0, 800.0};
  base.sim_time = sim::Time::sec(smoke ? 12 : 60);
  base.max_speed = 5.0;
  base.protocol = harness::Protocol::kMts;
  // Single-run demo, so the seed shapes the story; 11 draws insiders
  // that actually sit on the flow's paths.  Pass another as argv[1].
  base.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  security::AdversarySpec none;

  security::AdversarySpec blackhole;
  blackhole.kind = security::AdversaryKind::kBlackhole;
  blackhole.count = 6;

  security::AdversarySpec grayhole;
  grayhole.kind = security::AdversaryKind::kGrayhole;
  grayhole.count = 6;
  grayhole.drop_prob = 1.0;
  grayhole.active_window = sim::Time::seconds(1.2);
  grayhole.active_period = sim::Time::sec(8);

  security::AdversarySpec wormhole;
  wormhole.kind = security::AdversaryKind::kWormhole;

  security::AdversarySpec flood;
  flood.kind = security::AdversaryKind::kRreqFlood;
  flood.count = 1;
  flood.flood_rate = 5.0;

  security::DefenseSpec acked;
  acked.kind = security::DefenseKind::kAckedChecking;
  security::DefenseSpec leash;
  leash.kind = security::DefenseKind::kWormholeLeash;
  security::DefenseSpec limiter;
  limiter.kind = security::DefenseKind::kFloodRateLimit;
  security::DefenseSpec suite;
  suite.kind = security::DefenseKind::kSuite;

  struct Row {
    security::AdversarySpec attack;
    security::DefenseSpec defense;
  };
  const Row rows[] = {
      {blackhole, {}}, {blackhole, acked},  {grayhole, {}}, {grayhole, acked},
      {wormhole, {}},  {wormhole, leash},   {flood, {}},    {flood, limiter},
      {none, suite},  // false-positive check: defenses on, nobody attacking
  };

  std::cout << "=== Countermeasure demo (MTS, " << base.node_count
            << " nodes, " << base.sim_time.to_seconds() << " s, seed "
            << base.seed << ") ===\n\n";
  std::cout << std::left << std::setw(19) << "attack" << std::setw(22)
            << "defense" << std::setw(11) << "delivered" << std::setw(7)
            << "read" << std::setw(9) << "ctrl" << std::setw(9) << "eaten"
            << std::setw(9) << "detect" << std::setw(7) << "quar"
            << std::setw(7) << "suppr" << std::setw(9) << "recover"
            << "probes\n";

  for (const Row& row : rows) {
    harness::ScenarioConfig cfg = base;
    cfg.adversary = row.attack;
    cfg.defense = row.defense;
    const harness::RunMetrics m = harness::run_scenario(cfg);
    std::cout << std::left << std::setw(19)
              << harness::adversary_label(row.attack) << std::setw(22)
              << harness::defense_label(row.defense) << std::setw(11)
              << m.segments_delivered << std::setw(7) << m.coalition_captured
              << std::setw(9) << m.control_packets << std::setw(9)
              << m.blackhole_absorbed << std::setw(9) << std::fixed
              << std::setprecision(2) << m.detection_time_s << std::setw(7)
              << m.paths_quarantined << std::setw(7) << m.flood_suppressed
              << std::setw(9) << std::setprecision(2) << m.recovery_time_s
              << m.probes_sent << "\n";
  }

  std::cout << "\nread    = distinct TCP segments the adversary captured\n"
            << "eaten   = data packets absorbed by the insider "
               "(blackhole/grayhole veto, wormhole drops)\n"
            << "detect  = sim time of the first quarantine/suppression "
               "(0 = never fired)\n"
            << "quar    = paths quarantined (estimator demotion or leash "
               "rejection)\n"
            << "suppr   = route discoveries refused by the per-origin "
               "token bucket\n"
            << "recover = detection -> next delivered segment, 1 s "
               "resolution\n"
            << "probes  = end-to-end acked-checking probes sent on the "
               "data plane\n"
            << "\nNote the wormhole/leash rows: the tunnel also *rushes* "
               "(its replay wins every\nflood race), so when every "
               "candidate path is phantom the leash refuses them all\n"
               "-- the pair reads nothing, but delivery can starve too.  "
               "docs/threat-model.md\ndiscusses the availability/"
               "confidentiality trade and the rushing-resistant\n"
               "discovery it motivates.\n";
  return 0;
}
