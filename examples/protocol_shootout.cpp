// Protocol shootout: a miniature version of the paper's full evaluation
// sweep — three protocols, a few speeds, TCP metrics side by side.
// Shows how to drive `run_campaign` programmatically instead of through
// the per-figure bench binaries.
#include <iostream>

#include "harness/campaign.hpp"

int main() {
  using namespace mts;
  using harness::RunMetrics;

  harness::CampaignConfig cfg;
  cfg.speeds = {2, 10, 20};
  cfg.repetitions = 2;
  cfg.base.sim_time = sim::Time::sec(60);

  std::cout << "Shootout: " << cfg.speeds.size() << " speeds x 3 protocols x "
            << cfg.repetitions << " reps, "
            << cfg.base.sim_time.to_seconds() << "s each...\n";
  const harness::CampaignResult result = harness::run_campaign(cfg);

  harness::print_figure(std::cout, result, cfg, "Throughput", "kb/s",
                        [](const RunMetrics& m) { return m.throughput_kbps; },
                        1);
  harness::print_figure(std::cout, result, cfg, "Average end-to-end delay",
                        "ms",
                        [](const RunMetrics& m) { return m.avg_delay_s * 1e3; },
                        1);
  harness::print_figure(std::cout, result, cfg, "Delivery rate", "fraction",
                        [](const RunMetrics& m) { return m.delivery_rate; });
  harness::print_figure(std::cout, result, cfg, "Control overhead",
                        "routing packets",
                        [](const RunMetrics& m) {
                          return static_cast<double>(m.control_packets);
                        },
                        0);
  return 0;
}
