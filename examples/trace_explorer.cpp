// Trace explorer: subscribe to the packet-level trace hub and watch MTS
// work — route discovery, periodic checks, and the adaptive route
// switches that give the protocol its security properties.  Prints a
// filtered event log plus a per-category tally.
#include <iomanip>
#include <iostream>
#include <map>

#include "harness/scenario.hpp"

int main(int argc, char**) {
  using namespace mts;

  // Pass any argument to dump the raw event stream too.
  const bool verbose = argc > 1;

  harness::ScenarioConfig cfg;
  cfg.protocol = harness::Protocol::kMts;
  cfg.max_speed = 15.0;  // fast => visible route churn
  cfg.sim_time = sim::Time::sec(30);
  cfg.seed = 3;

  net::TraceHub hub;
  std::map<std::string, std::uint64_t> tally;
  std::uint64_t switches = 0;
  hub.subscribe([&](const net::TraceRecord& rec) {
    tally[net::trace_op_name(rec.op)]++;
    const bool interesting = rec.op == net::TraceOp::kRouteSwitch;
    if (interesting || verbose) {
      std::cout << std::fixed << std::setprecision(3) << std::setw(8)
                << rec.at.to_seconds() << "s  node " << std::setw(2)
                << rec.node << "  " << std::setw(12)
                << net::trace_op_name(rec.op) << "  " << rec.packet.summary();
      if (!rec.note.empty()) std::cout << "  [" << rec.note << "]";
      std::cout << "\n";
    }
    if (rec.op == net::TraceOp::kRouteSwitch) ++switches;
  });

  std::cout << "MTS trace @ MAXSPEED " << cfg.max_speed << " m/s ("
            << cfg.sim_time.to_seconds() << "s). Route switches shown"
            << (verbose ? " plus all events" : "; run with any arg for all")
            << ":\n\n";
  const harness::RunMetrics m = harness::run_scenario(cfg, &hub);

  std::cout << "\n--- event tally ---\n";
  for (const auto& [op, n] : tally) {
    std::cout << std::setw(14) << op << " : " << n << "\n";
  }
  std::cout << "\nroute switches observed: " << switches
            << " (metric: " << m.route_switches << ")\n"
            << "checks sent by destinations: " << m.checks_sent << "\n"
            << "TCP segments delivered: " << m.segments_delivered << "\n";
  return 0;
}
