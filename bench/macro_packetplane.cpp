// Full-scenario macro benchmark for the packet plane: wall-clock
// events/sec for fixed-seed 50-node runs of each protocol.  Unlike the
// figure benches this never goes through the campaign cache — the point
// is the wall clock, not the metrics — but the metrics are printed too:
// they are the scenario fingerprint that packet-plane refactors must
// keep bit-identical (see tests/integration/packet_plane_test.cpp and
// BENCH_packetplane.json).
//
// Environment overrides:
//   MTS_BENCH_SIM_TIME  seconds simulated per run   (default 40)
//   MTS_BENCH_NODES     node count                  (default 50, as paper)
//   MTS_BENCH_REPS      wall-clock repetitions      (default 3; median)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/scenario.hpp"
#include "net/packet.hpp"

namespace {

using namespace mts;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(d > 0)) {
    std::fprintf(stderr, "%s: unparsable '%s', using %g\n", name, v, fallback);
    return fallback;
  }
  return d;
}

harness::ScenarioConfig scenario(harness::Protocol p, double sim_time,
                                 std::uint32_t nodes) {
  harness::ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = nodes;
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::seconds(sim_time);
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  const double sim_time = env_double("MTS_BENCH_SIM_TIME", 40.0);
  const auto nodes =
      static_cast<std::uint32_t>(env_double("MTS_BENCH_NODES", 50.0));
  const auto reps = static_cast<int>(env_double("MTS_BENCH_REPS", 3.0));

  std::printf("macro_packetplane: %u nodes, %.0fs simulated, seed 42, "
              "median of %d reps\n",
              nodes, sim_time, reps);
  std::printf("%-5s %12s %10s %12s  fingerprint (delivered/control/pe/pr)\n",
              "proto", "events", "wall_ms", "events_per_s");
  for (harness::Protocol p :
       {harness::Protocol::kDsr, harness::Protocol::kAodv,
        harness::Protocol::kMts, harness::Protocol::kSmr}) {
    std::vector<double> wall_ms;
    harness::RunMetrics m;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      m = harness::run_scenario(scenario(p, sim_time, nodes));
      const auto t1 = std::chrono::steady_clock::now();
      wall_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(wall_ms.begin(), wall_ms.end());
    const double med = wall_ms[wall_ms.size() / 2];
    std::printf("%-5s %12llu %10.1f %12.0f  %llu/%llu/%llu/%llu\n",
                harness::protocol_name(p),
                static_cast<unsigned long long>(m.events_executed), med,
                static_cast<double>(m.events_executed) / (med / 1000.0),
                static_cast<unsigned long long>(m.segments_delivered),
                static_cast<unsigned long long>(m.control_packets),
                static_cast<unsigned long long>(m.pe),
                static_cast<unsigned long long>(m.pr));
  }

  // Zero-clone guard: a pure mutating-forward chain — per-hop TTL and
  // source-route cursor rewrites while every hop pins a sibling handle
  // (channel pool / retry buffer / trace) — must never clone the shared
  // body; those fields live in the handle's hop cell.  CI runs this
  // binary with a short sim time and fails on the exit code if the
  // guarantee regresses.
  {
    net::Packet p;
    auto& c = p.mutable_common();
    c.kind = net::PacketKind::kTcpData;
    c.src = 0;
    c.dst = 9;
    c.payload_bytes = 512;
    p.mutable_tcp() = net::TcpHeader{};
    net::DsrSourceRoute sr;
    sr.route = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    p.mutable_routing() = sr;

    const auto before = net::packet_pool_stats();
    std::vector<net::Packet> held;
    for (int hop = 0; hop < 9; ++hop) {
      held.push_back(p);
      --p.mutable_hop().ttl;
      ++p.mutable_hop().cursor;
    }
    const auto after = net::packet_pool_stats();
    const auto clones = after.cow_clones - before.cow_clones;
    std::printf(
        "forward-chain micro: cow_clones=%llu (must be 0), "
        "cell_acquired=+%llu\n",
        static_cast<unsigned long long>(clones),
        static_cast<unsigned long long>(after.cell_acquired -
                                        before.cell_acquired));
    if (clones != 0) return 1;
  }
  return 0;
}
