#pragma once

// Shared scaffolding for the per-figure bench binaries: every figure of
// the paper is one sweep (protocol x MAXSPEED x repetitions) projected
// onto one metric.  Environment overrides (all optional):
//   MTS_BENCH_REPS      repetitions per cell        (default 5, as paper)
//   MTS_BENCH_SIM_TIME  seconds simulated per run   (default 200, as paper)
//   MTS_BENCH_SPEEDS    comma list of MAXSPEEDs     (default 2,5,10,15,20)
//   MTS_BENCH_THREADS   worker threads              (default: hw cores)
//   MTS_BENCH_NODES     node count                  (default 50, as paper)

#include <functional>
#include <iostream>
#include <string>

#include "harness/campaign_cache.hpp"

namespace mts::bench {

/// Runs the paper sweep (through the shared disk cache — the eight
/// figure benches project one grid) and prints one figure table.
inline int run_figure_bench(
    const std::string& title, const std::string& shape_note,
    const std::string& unit,
    const std::function<double(const harness::RunMetrics&)>& metric,
    int precision = 3) {
  harness::CampaignConfig cfg;
  harness::apply_bench_env(cfg);
  std::cout << title << "\n" << shape_note << "\n";
  std::cout << "sweep: " << cfg.protocols.size() << " protocols x "
            << cfg.speeds.size() << " speeds x " << cfg.repetitions
            << " reps, " << cfg.base.sim_time.to_seconds() << "s each\n";
  const harness::CampaignResult result =
      harness::CampaignCache::run(cfg, &std::cerr);
  harness::print_figure(std::cout, result, cfg, title, unit, metric, precision);
  return 0;
}

}  // namespace mts::bench
