// Fig. 6: "The standard deviation of number of relayed packets" —
// Eqs. 2-4: per-node relay counts, normalized by the total, sample
// standard deviation.  Paper shape: MTS lowest (relaying does not rely
// on any single participating node).
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 6: normalized std-dev of relayed packets vs MAXSPEED",
      "paper shape: MTS lowest at every speed", "percent",
      [](const mts::harness::RunMetrics& m) { return m.relay_stddev * 100.0; },
      2);
}
