// Table I: "Normalization of the received packets in the participating
// nodes" — one DSR scenario's per-node relay counts (beta), their
// normalized shares (gamma, Eq. 3), the total (alpha, Eq. 2), and the
// normalized standard deviation (Eq. 4 / Table I's sample form).
//
// Two tables are printed: (a) the paper's literal Table I beta column
// re-normalized through our implementation (validating the math against
// the published alpha = 30486 and sigma = 19.60 %), and (b) the same
// table produced live from one simulated DSR run.
#include <iostream>

#include "harness/scenario.hpp"
#include "security/relay_census.hpp"
#include "stats/table.hpp"

namespace {

void print_report(const mts::security::RelayReport& report) {
  mts::stats::Table t({"Node ID", "beta", "gamma"});
  for (const auto& [node, beta] : report.participants) {
    t.add_row({std::to_string(node), std::to_string(beta),
               mts::stats::Table::fmt(100.0 * static_cast<double>(beta) /
                                          static_cast<double>(report.alpha),
                                      5) +
                   "%"});
  }
  t.print(std::cout);
  std::cout << "alpha = " << report.alpha << ", standard deviation = "
            << mts::stats::Table::fmt(report.normalized_stddev * 100.0, 2)
            << "%\n";
}

}  // namespace

int main() {
  using namespace mts;

  std::cout << "Table I (a): the paper's published beta column\n";
  const std::vector<std::pair<net::NodeId, std::uint64_t>> paper_betas = {
      {2, 10581}, {3, 283},  {17, 1}, {21, 3886},
      {23, 1},    {28, 15458}, {36, 275}, {45, 1}};
  print_report(security::analyze_relays(paper_betas));
  std::cout << "paper reports: alpha = 30486, standard deviation = 19.60%\n\n";

  std::cout << "Table I (b): live DSR run (50 nodes, MAXSPEED 2, 200 s)\n";
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::Protocol::kDsr;
  cfg.max_speed = 2.0;
  cfg.seed = 1;
  if (const char* v = std::getenv("MTS_BENCH_SIM_TIME")) {
    cfg.sim_time = sim::Time::seconds(std::stod(v));
  }
  const harness::RunMetrics m = harness::run_scenario(cfg);
  print_report(security::analyze_relays(m.betas));
  return 0;
}
