// Fig. 11: "Average control overhead" — total routing packets
// transmitted (originated + relayed).  Paper shape: MTS highest (it
// pays for security with periodic route-checking traffic), DSR lowest
// (idle once a route is cached).
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 11: control overhead vs MAXSPEED",
      "paper shape: MTS highest, DSR lowest", "routing packets",
      [](const mts::harness::RunMetrics& m) {
        return static_cast<double>(m.control_packets);
      },
      0);
}
