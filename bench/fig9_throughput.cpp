// Fig. 9: "Average throughput" — successfully received TCP segments at
// the destination over the session.  Paper shape: MTS highest (best
// route always in use), DSR degrades sharply with speed (stale caches
// cause idle periods).
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 9: TCP throughput vs MAXSPEED",
      "paper shape: MTS > AODV > DSR, gap grows with speed", "kb/s",
      [](const mts::harness::RunMetrics& m) { return m.throughput_kbps; }, 1);
}
