// Ablation C: the paper stores "not more than five" disjoint paths at
// the destination (§III-B) "in order to save space".  This sweep varies
// that cap at MAXSPEED 10 m/s.  K = 1 collapses MTS to a single
// checked path (no spreading, security regresses toward AODV); larger K
// spreads relaying across more nodes until path diversity in a 50-node
// field saturates.
#include <iostream>

#include "harness/campaign_cache.hpp"
#include "stats/table.hpp"

int main() {
  using namespace mts;
  using harness::RunMetrics;

  const std::vector<std::size_t> caps{1, 2, 3, 5, 8};

  harness::CampaignConfig base;
  harness::apply_bench_env(base);
  base.protocols = {harness::Protocol::kMts};
  base.speeds = {10};

  std::cout << "Ablation C: MTS max disjoint paths sweep @ MAXSPEED 10 m/s ("
            << base.repetitions << " reps x "
            << base.base.sim_time.to_seconds() << "s)\n";

  stats::Table table({"max paths", "participating nodes", "relay stddev %",
                      "highest Ri", "throughput (kb/s)", "control packets"});
  for (std::size_t cap : caps) {
    harness::CampaignConfig cfg = base;
    cfg.base.mts.max_paths = cap;
    const harness::CampaignResult r = harness::CampaignCache::run(cfg, &std::cerr);
    auto mean = [&](const std::function<double(const RunMetrics&)>& f) {
      return r.summarize(harness::Protocol::kMts, 10, f).mean();
    };
    table.add_row(
        {std::to_string(cap),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return static_cast<double>(m.participating_nodes);
         }), 1),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return m.relay_stddev * 100.0;
         }), 2),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return m.highest_interception_ratio;
         }), 3),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return m.throughput_kbps;
         }), 1),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return static_cast<double>(m.control_packets);
         }), 0)});
  }
  table.print(std::cout);
  return 0;
}
