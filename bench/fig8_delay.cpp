// Fig. 8: "Average delay" — effective end-to-end delay of TCP data that
// actually arrives.  Paper shape: MTS lowest (always on the freshest
// route); DSR below AODV (route cache vs on-demand discovery latency).
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 8: average end-to-end delay vs MAXSPEED",
      "paper shape: MTS < DSR < AODV", "ms",
      [](const mts::harness::RunMetrics& m) { return m.avg_delay_s * 1e3; },
      1);
}
