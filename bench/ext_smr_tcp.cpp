// Extension D: the paper's §II argues (citing Lim et al. [7]) that
// SMR's *concurrent* multipath "behaves worse than using only single
// path with TCP traffic", because striping segments over paths with
// different RTTs reorders them and triggers spurious congestion
// control.  MTS's answer is to use one (continuously re-validated)
// path at a time.  This bench reproduces that comparison: SMR vs DSR
// (the single-path protocol SMR extends) vs MTS, TCP throughput and
// spurious fast retransmits across the paper's speed sweep.
#include <iostream>

#include "harness/campaign_cache.hpp"

int main() {
  using namespace mts;
  using harness::Protocol;
  using harness::RunMetrics;

  harness::CampaignConfig cfg;
  harness::apply_bench_env(cfg);
  cfg.protocols = {Protocol::kDsr, Protocol::kSmr, Protocol::kMts};

  std::cout << "Extension D: SMR's concurrent multipath vs single-path vs "
               "MTS\n(expected: SMR underperforms DSR with TCP — the "
               "paper's §II claim via [7])\n";
  const harness::CampaignResult result =
      harness::CampaignCache::run(cfg, &std::cerr);

  harness::print_figure(std::cout, result, cfg, "TCP throughput", "kb/s",
                        [](const RunMetrics& m) { return m.throughput_kbps; },
                        1);
  harness::print_figure(
      std::cout, result, cfg, "Retransmissions per delivered segment",
      "ratio",
      [](const RunMetrics& m) {
        return m.segments_delivered == 0
                   ? 0.0
                   : static_cast<double>(m.retransmits) /
                         static_cast<double>(m.segments_delivered);
      });
  return 0;
}
