// Fig. 5: "The number of participating nodes under different speeds."
// Paper shape: MTS involves the most relays (it keeps switching among
// disjoint paths), DSR/AODV concentrate on a single route.
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 5: participating nodes vs MAXSPEED",
      "paper shape: MTS highest at every speed", "nodes",
      [](const mts::harness::RunMetrics& m) {
        return static_cast<double>(m.participating_nodes);
      },
      2);
}
