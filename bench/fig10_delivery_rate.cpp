// Fig. 10: "Average rate of successful delivery of packets" — data
// arrivals at the destination over data transmissions at the source.
// Paper shape: DSR's rate decreases dramatically with speed (stale
// cached routes); AODV and MTS change little.
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 10: delivery rate vs MAXSPEED",
      "paper shape: DSR collapses with speed; AODV/MTS nearly flat",
      "fraction",
      [](const mts::harness::RunMetrics& m) { return m.delivery_rate; });
}
