// Ablation B: the paper fixes the route-checking period at "two to four
// seconds" (§III-D) as a function of channel coherence time.  This
// sweep varies the period at MAXSPEED 10 m/s and shows the trade the
// paper describes: shorter periods buy fresher routes (higher
// throughput, more participating relays) at the price of control
// overhead; long periods let state go stale.
#include <iostream>

#include "harness/campaign_cache.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main() {
  using namespace mts;
  using harness::RunMetrics;

  const std::vector<double> periods_s{1, 2, 3, 4, 6, 8};

  harness::CampaignConfig base;
  harness::apply_bench_env(base);
  base.protocols = {harness::Protocol::kMts};
  base.speeds = {10};

  std::cout << "Ablation B: MTS check period sweep @ MAXSPEED 10 m/s ("
            << base.repetitions << " reps x "
            << base.base.sim_time.to_seconds() << "s)\n";

  stats::Table table({"check period (s)", "throughput (kb/s)",
                      "participating nodes", "highest Ri",
                      "control packets", "route switches"});
  for (double period : periods_s) {
    harness::CampaignConfig cfg = base;
    cfg.base.mts.check_period = sim::Time::seconds(period);
    const harness::CampaignResult r = harness::CampaignCache::run(cfg, &std::cerr);
    auto mean = [&](const std::function<double(const RunMetrics&)>& f) {
      return r.summarize(harness::Protocol::kMts, 10, f).mean();
    };
    table.add_row(
        {stats::Table::fmt(period, 0),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return m.throughput_kbps;
         }), 1),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return static_cast<double>(m.participating_nodes);
         }), 1),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return m.highest_interception_ratio;
         }), 3),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return static_cast<double>(m.control_packets);
         }), 0),
         stats::Table::fmt(mean([](const RunMetrics& m) {
           return static_cast<double>(m.route_switches);
         }), 1)});
  }
  table.print(std::cout);
  return 0;
}
