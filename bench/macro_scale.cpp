// Large-arena macro benchmark: events/sec and per-subsystem event
// attribution for fixed-seed runs at 1k / 5k / 10k nodes, with the
// field density-scaled to the paper's 50 nodes per 1000 m x 1000 m.
// Results are recorded in BENCH_scale.json; the scale bookkeeping
// (mobility legs live vs generated, index rebuild allocations) is
// printed alongside so a memory regression shows up in the same place
// as a throughput one.
//
// Environment overrides:
//   MTS_BENCH_SIM_TIME  seconds simulated per run   (default 60)
//   MTS_BENCH_NODES     comma list of node counts   (default 1000,5000,10000)
//   MTS_BENCH_REPS      wall-clock repetitions      (default 1; median)
//   MTS_BENCH_FLOWS     TCP flows per run           (default 10)
//   MTS_BENCH_SESSIONS  aggregate user sessions to push through the
//                       traffic plane per run (default 0 = plane off).
//                       When set, per-class delivery-delay percentiles
//                       are printed and the run fails unless the arena
//                       sustains the full session count.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "harness/scenario.hpp"

namespace {

using namespace mts;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(d > 0)) {
    std::fprintf(stderr, "%s: unparsable '%s', using %g\n", name, v, fallback);
    return fallback;
  }
  return d;
}

std::vector<std::uint32_t> env_node_counts() {
  const char* v = std::getenv("MTS_BENCH_NODES");
  if (v == nullptr || *v == '\0') return {1000, 5000, 10000};
  std::vector<std::uint32_t> out;
  std::string s(v);
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    const long n = std::strtol(tok.c_str(), nullptr, 10);
    if (n > 0) out.push_back(static_cast<std::uint32_t>(n));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? std::vector<std::uint32_t>{1000, 5000, 10000} : out;
}

/// Process-lifetime peak RSS in MiB (0 where getrusage is unavailable).
/// Printed per row: the sweep runs smallest-first, so a row's value is
/// effectively that scale's high-water mark.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

/// Paper density: 50 nodes per 1000 m x 1000 m, so the arena grows as
/// sqrt(n/50) and per-node neighbourhood size stays constant.
harness::ScenarioConfig scenario(std::uint32_t nodes, double sim_time,
                                 std::uint32_t flows,
                                 std::uint64_t sessions) {
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::Protocol::kMts;
  cfg.node_count = nodes;
  const double side = 1000.0 * std::sqrt(nodes / 50.0);
  cfg.field = mobility::Field{side, side};
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::seconds(sim_time);
  cfg.flow_count = flows;
  cfg.seed = 42;
  if (sessions > 0) {
    cfg.traffic.enabled = true;
    cfg.traffic.gateway_count = 8;
    cfg.traffic.user_pool = 64;
    // 3% Poisson headroom so the realized arrival count clears the
    // target (stddev at 100k arrivals is ~316, far under the margin).
    cfg.traffic.session_rate =
        static_cast<double>(sessions) / sim_time * 1.03;
    cfg.traffic.max_concurrent_flows = 16384;
  }
  return cfg;
}

}  // namespace

int main() {
  const double sim_time = env_double("MTS_BENCH_SIM_TIME", 60.0);
  const auto reps = static_cast<int>(env_double("MTS_BENCH_REPS", 1.0));
  const auto flows = static_cast<std::uint32_t>(env_double("MTS_BENCH_FLOWS", 10.0));
  const std::uint64_t sessions =
      std::getenv("MTS_BENCH_SESSIONS") == nullptr
          ? 0
          : static_cast<std::uint64_t>(
                env_double("MTS_BENCH_SESSIONS", 0.0));
  const std::vector<std::uint32_t> node_counts = env_node_counts();

  std::printf("macro_scale: MTS, %.0fs simulated, %u flows, seed 42, "
              "density 50/km^2, median of %d reps\n",
              sim_time, flows, reps);
  if (sessions > 0) {
    std::printf("user plane: >=%llu sessions over %.0fs, 8 gateways, "
                "64 attachment nodes\n",
                static_cast<unsigned long long>(sessions), sim_time);
  }
  std::printf("%-6s %12s %10s %12s %9s %9s %7s %7s %8s\n", "nodes", "events",
              "wall_ms", "events_per_s", "legs_gen", "legs_live", "rebuilds",
              "allocs", "rss_mib");
  for (std::uint32_t nodes : node_counts) {
    std::vector<double> wall_ms;
    harness::RunMetrics m;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      m = harness::run_scenario(scenario(nodes, sim_time, flows, sessions));
      const auto t1 = std::chrono::steady_clock::now();
      wall_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(wall_ms.begin(), wall_ms.end());
    const double med = wall_ms[wall_ms.size() / 2];
    const std::uint64_t live =
        m.mobility_legs_generated - m.mobility_legs_pruned;
    std::printf("%-6u %12llu %10.1f %12.0f %9llu %9llu %7llu %7llu %8.1f\n",
                nodes, static_cast<unsigned long long>(m.events_executed), med,
                static_cast<double>(m.events_executed) / (med / 1000.0),
                static_cast<unsigned long long>(m.mobility_legs_generated),
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(m.neighbor_rebuilds),
                static_cast<unsigned long long>(m.neighbor_rebuild_allocs),
                peak_rss_mib());
    std::printf("       by_category:");
    for (std::size_t c = 0; c < sim::kEventCategoryCount; ++c) {
      std::printf(" %s=%llu",
                  sim::event_category_name(static_cast<sim::EventCategory>(c)),
                  static_cast<unsigned long long>(m.events_by_category[c]));
    }
    std::printf("  delivered=%llu\n",
                static_cast<unsigned long long>(m.segments_delivered));
    if (sessions > 0) {
      std::printf("       sessions: started=%llu completed=%llu "
                  "rejected=%llu\n",
                  static_cast<unsigned long long>(m.sessions_started),
                  static_cast<unsigned long long>(m.sessions_completed),
                  static_cast<unsigned long long>(m.sessions_rejected));
      for (std::size_t c = 0; c < traffic::kUserClassCount; ++c) {
        const auto& tc = m.traffic_classes[c];
        std::printf("       class %-4s: flows=%llu delay p50=%.2fms "
                    "p95=%.2fms p99=%.2fms goodput_p50=%.1f seg/s\n",
                    traffic::user_class_name(
                        static_cast<traffic::UserClass>(c)),
                    static_cast<unsigned long long>(tc.flows_completed),
                    tc.delay_p50_ms, tc.delay_p95_ms, tc.delay_p99_ms,
                    tc.goodput_p50_seg_s);
      }
      if (m.sessions_started < sessions) {
        std::fprintf(stderr,
                     "FAIL: %llu sessions started, target %llu\n",
                     static_cast<unsigned long long>(m.sessions_started),
                     static_cast<unsigned long long>(sessions));
        return 1;
      }
      if (m.traffic_classes[0].delay_p99_ms <= 0.0 ||
          m.traffic_classes[1].delay_p99_ms <= 0.0) {
        std::fprintf(stderr, "FAIL: a user class reported no delivery-"
                             "delay percentiles\n");
        return 1;
      }
    }

    // The whole point of the PR: per-node trajectory history must not
    // grow with sim-time, and steady-state rebuilds must not allocate.
    if (m.mobility_peak_live_legs > 16) {
      std::fprintf(stderr, "FAIL: peak live legs %llu (history unbounded?)\n",
                   static_cast<unsigned long long>(m.mobility_peak_live_legs));
      return 1;
    }
    if (m.neighbor_rebuilds > 20 &&
        m.neighbor_rebuild_allocs * 2 > m.neighbor_rebuilds) {
      std::fprintf(stderr, "FAIL: %llu of %llu rebuilds allocated\n",
                   static_cast<unsigned long long>(m.neighbor_rebuild_allocs),
                   static_cast<unsigned long long>(m.neighbor_rebuilds));
      return 1;
    }
  }
  return 0;
}
