// Microbenchmarks of the simulator substrate (google-benchmark):
// the event scheduler, RNG substreams, priority interface queue,
// spatial neighbour index, random-waypoint evaluation, and the relay
// census math.  These bound what a 200 s / 50-node run costs and guard
// against regressions in the hot paths.
#include <benchmark/benchmark.h>

#include "mobility/random_waypoint.hpp"
#include "net/queue.hpp"
#include "phy/neighbor_index.hpp"
#include "security/relay_census.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace {

using namespace mts;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_at(sim::Time::ns(static_cast<std::int64_t>(i * 7 % 1000)),
                        [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // Half the events get cancelled — the MAC does this constantly
  // (backoff freezes, ACK timers).
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(sched.schedule_at(
          sim::Time::us(static_cast<std::int64_t>(i)), [&sum] { ++sum; }));
    }
    for (std::size_t i = 0; i < n; i += 2) sched.cancel(ids[i]);
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(10000);

void BM_SchedulerTimerRearm(benchmark::State& state) {
  // The ACK/RTO/backoff idiom: a member timer is re-armed over and over,
  // firing only rarely relative to how often it is restarted.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t fired = 0;
    sim::Timer timer(sched, [&fired] { ++fired; });
    for (std::size_t i = 0; i < n; ++i) {
      timer.schedule_in(sim::Time::us(100));
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerTimerRearm)->Arg(10000);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_PriQueueEnqueueDequeue(benchmark::State& state) {
  net::Packet data;
  data.mutable_common().kind = net::PacketKind::kTcpData;
  net::Packet ctrl;
  ctrl.mutable_common().kind = net::PacketKind::kAodvRreq;
  for (auto _ : state) {
    net::PriQueue q(50);
    for (int i = 0; i < 40; ++i) q.enqueue({data, 1});
    for (int i = 0; i < 10; ++i) q.enqueue({ctrl, net::kBroadcastId});
    while (auto item = q.dequeue()) benchmark::DoNotOptimize(item);
  }
}
BENCHMARK(BM_PriQueueEnqueueDequeue);

void BM_NeighborIndexQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::Rng rng(7);
  std::vector<mobility::Vec2> pos;
  pos.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  }
  phy::NeighborIndex index(
      n, 250.0, 20.0, sim::Time::ms(500),
      [&pos](std::uint32_t id, sim::Time) { return pos[id]; });
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto& c = index.candidates(pos[q % n], 250.0, sim::Time::zero());
    benchmark::DoNotOptimize(c.data());
    ++q;
  }
}
BENCHMARK(BM_NeighborIndexQuery)->Arg(50)->Arg(500);

void BM_RandomWaypointQuery(benchmark::State& state) {
  mobility::RandomWaypointConfig cfg;
  cfg.max_speed = 20.0;
  mobility::RandomWaypoint rwp(cfg, sim::Rng(3));
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwp.position_at(sim::Time::ms(t % 200000)));
    t += 137;
  }
}
BENCHMARK(BM_RandomWaypointQuery);

void BM_RelayCensus(benchmark::State& state) {
  sim::Rng rng(11);
  std::vector<std::pair<net::NodeId, std::uint64_t>> betas;
  for (net::NodeId i = 0; i < 48; ++i) {
    betas.emplace_back(
        i, static_cast<std::uint64_t>(rng.uniform_int(0, 20000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::analyze_relays(betas));
  }
}
BENCHMARK(BM_RelayCensus);

}  // namespace

BENCHMARK_MAIN();
