// Fig. 7: "The highest interception ratio" — the worst case where the
// most-relied-upon relay is the eavesdropper: max_i beta_i / Pr.
// Paper shape: MTS lowest.
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Fig. 7: highest interception ratio vs MAXSPEED",
      "paper shape: MTS lowest at every speed", "ratio",
      [](const mts::harness::RunMetrics& m) {
        return m.highest_interception_ratio;
      });
}
