// Extension: adversary-model sweep.  The paper fixes its threat model to
// one randomly placed passive eavesdropper; this bench sweeps the
// adversary axis instead — colluding insider coalitions of growing size
// and mobile external sniffers — and reports the pooled coalition
// interception ratio (union-Pe / Pr) per (protocol, MAXSPEED) cell, plus
// goodput under an insider blackhole.
//
// Expected shape: interception grows with coalition size for every
// protocol, but MTS's path spreading means a small coalition still sees
// far less of the stream than it would of a single-path protocol; under
// blackhole, multipath protocols keep some goodput while single-path
// AODV collapses whenever the attacker sits on the active route.
//
// Environment overrides: the standard MTS_BENCH_* set (bench_common.hpp)
// plus MTS_BENCH_COALITIONS (comma list of coalition sizes, default
// 1,2,4).
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

int main() {
  using namespace mts;
  harness::CampaignConfig cfg;
  harness::apply_bench_env(cfg);
  cfg.protocols = {harness::Protocol::kAodv, harness::Protocol::kMts};

  std::vector<std::uint32_t> coalition_sizes{1, 2, 4};
  if (const char* v = std::getenv("MTS_BENCH_COALITIONS")) {
    std::vector<std::uint32_t> sizes;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
    }
    if (!sizes.empty()) coalition_sizes = std::move(sizes);
  }

  cfg.adversaries.clear();
  for (std::uint32_t k : coalition_sizes) {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kColluding;
    s.count = k;
    cfg.adversaries.push_back(s);
  }
  for (std::uint32_t k : coalition_sizes) {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kMobile;
    s.count = k;
    s.max_speed = 10.0;
    cfg.adversaries.push_back(s);
  }
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kBlackhole;
    s.count = 1;
    cfg.adversaries.push_back(s);
  }

  std::cout << "Extension: adversary sweep (colluding coalitions, mobile "
               "sniffers, insider blackhole)\n";
  std::cout << "sweep: " << cfg.protocols.size() << " protocols x "
            << cfg.speeds.size() << " speeds x " << cfg.adversaries.size()
            << " adversaries x " << cfg.repetitions << " reps, "
            << cfg.base.sim_time.to_seconds() << "s each\n";

  const harness::CampaignResult result =
      harness::CampaignCache::run(cfg, &std::cerr);

  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Coalition interception ratio (union-Pe / Pr) vs MAXSPEED", "ratio",
      [](const harness::RunMetrics& m) {
        return m.coalition_interception_ratio;
      });
  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Fragments still missing to reconstruct the stream", "segments",
      [](const harness::RunMetrics& m) {
        return static_cast<double>(m.fragments_missing);
      },
      1);
  harness::print_adversary_figure(
      std::cout, result, cfg, "TCP throughput under the adversary",
      "segments/s",
      [](const harness::RunMetrics& m) { return m.throughput_seg_s; });
  harness::print_adversary_figure(
      std::cout, result, cfg, "Delivery rate under the adversary", "ratio",
      [](const harness::RunMetrics& m) { return m.delivery_rate; });
  return 0;
}
