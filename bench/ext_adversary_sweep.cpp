// Extension: adversary-model sweep.  The paper fixes its threat model to
// one randomly placed passive eavesdropper; this bench sweeps the
// adversary axis instead — colluding insider coalitions of growing size,
// mobile external sniffers, and the active half of the taxonomy
// (wormhole tunnel, grayhole, traffic-analysis profiler, RREQ flood) —
// and reports the pooled interception ratio (union-Pe / Pr), the
// key-recovery rate of the threshold-secret-sharing secrecy game,
// goodput, endpoint-inference accuracy, and control overhead per
// (protocol, MAXSPEED) cell.
//
// Expected shape: interception grows with coalition size for every
// protocol, but MTS's path spreading means a small coalition still sees
// far less of the stream than it would of a single-path protocol; under
// blackhole, multipath protocols keep some goodput while single-path
// AODV collapses whenever the attacker sits on the active route.  The
// active kinds invert parts of that story: the wormhole's phantom
// shortcut attracts MTS's "best" paths and reads most of the stream,
// the grayhole degrades goodput while keeping the delivery rate in the
// healthy band, the traffic profiler identifies flow endpoints from
// volume skew regardless of relay spreading, and the RREQ flood taxes
// every protocol's control plane (MTS hardest — forged discoveries also
// spin up its periodic path checking).
//
// Environment overrides: the standard MTS_BENCH_* set (bench_common.hpp)
// plus MTS_BENCH_COALITIONS (comma list of coalition sizes, default
// 1,2,4).
//
// Fabric flags (docs/architecture/campaign-fabric.md): --fabric runs the
// sweep through the crash-resilient process-isolated supervisor;
// --shard i/n executes only every n-th work unit (multi-host slicing);
// --resume ingests complete shards from a previous (possibly killed)
// invocation and runs only what is missing or failed; --timeout,
// --max-retries, --workers and --cells-per-unit tune the supervisor;
// --csv-out PATH exports the merged v10 CSV for diffing/archiving.
//
// --traffic adds the user-plane axis: every cell runs once with the
// session workload off and once with it on, and the per-class delivery
// delay p99 table is printed for the on half of the grid.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "harness/campaign_csv.hpp"
#include "harness/supervisor.hpp"

namespace {

struct CliOptions {
  bool fabric = false;
  bool traffic = false;
  mts::harness::FabricConfig fab;
  std::string csv_out;
};

bool parse_cli(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--fabric") {
        opt.fabric = true;
      } else if (arg == "--resume") {
        opt.fabric = true;
        opt.fab.resume = true;
      } else if (arg == "--no-resume") {
        opt.fabric = true;
        opt.fab.resume = false;
      } else if (arg == "--shard") {
        const char* v = next_value("--shard");
        if (v == nullptr) return false;
        const std::string spec = v;
        const auto slash = spec.find('/');
        if (slash == std::string::npos) {
          std::cerr << "error: --shard wants i/n (e.g. --shard 1/3)\n";
          return false;
        }
        opt.fabric = true;
        opt.fab.shard_index =
            static_cast<std::uint32_t>(std::stoul(spec.substr(0, slash)));
        opt.fab.shard_count =
            static_cast<std::uint32_t>(std::stoul(spec.substr(slash + 1)));
        if (opt.fab.shard_count == 0 ||
            opt.fab.shard_index >= opt.fab.shard_count) {
          std::cerr << "error: --shard wants i < n\n";
          return false;
        }
      } else if (arg == "--timeout") {
        const char* v = next_value("--timeout");
        if (v == nullptr) return false;
        opt.fabric = true;
        opt.fab.unit_timeout_s = std::stod(v);
      } else if (arg == "--max-retries") {
        const char* v = next_value("--max-retries");
        if (v == nullptr) return false;
        opt.fabric = true;
        opt.fab.max_retries = static_cast<std::uint32_t>(std::stoul(v));
      } else if (arg == "--workers") {
        const char* v = next_value("--workers");
        if (v == nullptr) return false;
        opt.fabric = true;
        opt.fab.workers = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--cells-per-unit") {
        const char* v = next_value("--cells-per-unit");
        if (v == nullptr) return false;
        opt.fabric = true;
        opt.fab.cells_per_unit = std::stoul(v);
      } else if (arg == "--traffic") {
        opt.traffic = true;
      } else if (arg == "--csv-out") {
        const char* v = next_value("--csv-out");
        if (v == nullptr) return false;
        opt.csv_out = v;
      } else if (arg == "--help" || arg == "-h") {
        std::cout
            << "usage: ext_adversary_sweep [--fabric] [--shard i/n] "
               "[--resume|--no-resume]\n"
               "         [--timeout S] [--max-retries N] [--workers N]\n"
               "         [--cells-per-unit K] [--csv-out PATH] [--traffic]\n";
        std::exit(0);
      } else {
        std::cerr << "error: unknown flag '" << arg << "' (try --help)\n";
        return false;
      }
    } catch (const std::exception&) {
      std::cerr << "error: bad value for " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mts;
  CliOptions opt;
  if (!parse_cli(argc, argv, opt)) return 2;
  harness::CampaignConfig cfg;
  harness::apply_bench_env(cfg);
  cfg.protocols = {harness::Protocol::kAodv, harness::Protocol::kMts};
  // Play the key-recovery game in every cell: each flow's session key is
  // Shamir-split across its paths (1-of-1 on unipath AODV, n-of-n on
  // MTS), so the sweep reports how often each adversary reassembles an
  // actual key, not just how many fragments it overheard.
  cfg.base.secrecy.enabled = true;

  std::vector<std::uint32_t> coalition_sizes{1, 2, 4};
  if (const char* v = std::getenv("MTS_BENCH_COALITIONS")) {
    std::vector<std::uint32_t> sizes;
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) sizes.push_back(static_cast<std::uint32_t>(std::stoul(item)));
    }
    if (!sizes.empty()) coalition_sizes = std::move(sizes);
  }

  cfg.adversaries.clear();
  for (std::uint32_t k : coalition_sizes) {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kColluding;
    s.count = k;
    cfg.adversaries.push_back(s);
  }
  for (std::uint32_t k : coalition_sizes) {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kMobile;
    s.count = k;
    s.max_speed = 10.0;
    cfg.adversaries.push_back(s);
  }
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kBlackhole;
    s.count = 1;
    cfg.adversaries.push_back(s);
  }
  // The active half of the taxonomy, one representative spec each.
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kWormhole;
    cfg.adversaries.push_back(s);
  }
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kGrayhole;
    s.count = 3;
    s.drop_prob = 0.3;
    cfg.adversaries.push_back(s);
  }
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kTrafficAnalysis;
    s.count = 3;
    cfg.adversaries.push_back(s);
  }
  {
    security::AdversarySpec s;
    s.kind = security::AdversaryKind::kRreqFlood;
    s.count = 1;
    s.flood_rate = 5.0;
    cfg.adversaries.push_back(s);
  }

  // The defense axis: every adversary cell runs undefended (index 0 —
  // the PR 4 ledger) and under the full countermeasure suite (index 1 —
  // acked checking + wormhole leash + flood rate limiting), so the
  // attack/defense contrast is a paired comparison on identical seeds.
  {
    security::DefenseSpec suite;
    suite.kind = security::DefenseKind::kSuite;
    cfg.defenses = {security::DefenseSpec{}, suite};
  }

  // The optional user-plane axis: index 0 keeps every cell's workload
  // identical to the pre-traffic sweep (and its cache entries), index 1
  // layers the session generator on top so adversary exposure can be
  // read per user class.
  if (opt.traffic) {
    traffic::TrafficSpec on;
    on.enabled = true;
    cfg.traffics = {traffic::TrafficSpec{}, on};
  }

  std::cout << "Extension: adversary sweep (colluding coalitions, mobile "
               "sniffers, insider blackhole, wormhole, grayhole, "
               "traffic analysis, RREQ flood) x {undefended, defense suite}\n";
  std::cout << "sweep: " << cfg.protocols.size() << " protocols x "
            << cfg.speeds.size() << " speeds x " << cfg.adversaries.size()
            << " adversaries x " << cfg.defenses.size() << " defenses x "
            << cfg.traffics.size() << " traffics x "
            << cfg.repetitions << " reps, "
            << cfg.base.sim_time.to_seconds() << "s each\n";

  harness::CampaignResult result;
  if (opt.fabric) {
    const harness::FabricReport report =
        harness::run_campaign_fabric(cfg, opt.fab, &std::cerr);
    result = std::move(report.result);
    if (!report.failures.empty()) {
      std::cout << "\n!!! " << report.failures.size()
                << " work unit(s) degraded to failed rows (summaries below "
                   "cover ok rows only):\n";
      for (const harness::FailedUnit& f : report.failures) {
        std::cout << "  unit " << (f.index + 1) << '/' << report.units_total
                  << " after " << f.attempts << " attempts: " << f.error
                  << "\n";
      }
    }
    if (!report.complete) {
      std::cout << "\n(grid incomplete: this invocation ran shard "
                << opt.fab.shard_index << '/' << opt.fab.shard_count
                << "; rerun with --resume once all shards finished to "
                   "merge)\n";
    }
  } else {
    result = harness::CampaignCache::run(cfg, &std::cerr);
  }
  if (!opt.csv_out.empty()) {
    std::ofstream out(opt.csv_out, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write " << opt.csv_out << "\n";
      return 1;
    }
    harness::csv::write_campaign(out, cfg, result);
  }

  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Coalition interception ratio (union-Pe / Pr) vs MAXSPEED", "ratio",
      [](const harness::RunMetrics& m) {
        return m.coalition_interception_ratio;
      });
  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Fragments still missing to reconstruct the stream", "segments",
      [](const harness::RunMetrics& m) {
        return static_cast<double>(m.fragments_missing);
      },
      1);
  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Key recovery rate (threshold secret sharing, t = paths)", "ratio",
      [](const harness::RunMetrics& m) { return m.key_recovery_rate; });
  harness::print_adversary_figure(
      std::cout, result, cfg, "Distinct key shares captured", "shares",
      [](const harness::RunMetrics& m) {
        return static_cast<double>(m.shares_captured);
      },
      1);
  harness::print_adversary_figure(
      std::cout, result, cfg, "TCP throughput under the adversary",
      "segments/s",
      [](const harness::RunMetrics& m) { return m.throughput_seg_s; });
  harness::print_adversary_figure(
      std::cout, result, cfg, "Delivery rate under the adversary", "ratio",
      [](const harness::RunMetrics& m) { return m.delivery_rate; });
  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Control overhead under the adversary (flood amplification)",
      "packets",
      [](const harness::RunMetrics& m) {
        return static_cast<double>(m.control_packets);
      },
      1);
  harness::print_adversary_figure(
      std::cout, result, cfg,
      "Endpoint-inference accuracy (traffic analysis only)", "ratio",
      [](const harness::RunMetrics& m) {
        return m.endpoint_inference_accuracy;
      });

  // --- defended columns: undefended vs. suite, paired per adversary ----
  const auto defended_mean =
      [&](harness::Protocol p, std::uint32_t a, std::uint32_t d,
          const std::function<double(const harness::RunMetrics&)>& metric) {
        double sum = 0.0;
        std::size_t n = 0;
        for (double speed : cfg.speeds) {
          const auto s = result.summarize(p, speed, a, d, metric);
          sum += s.mean() * static_cast<double>(s.count());
          n += s.count();
        }
        return n == 0 ? 0.0 : sum / static_cast<double>(n);
      };
  std::cout << "\n=== Defense suite vs. each adversary (means over all "
               "speeds; undef -> defended) ===\n";
  for (harness::Protocol p : cfg.protocols) {
    std::cout << "\n--- " << harness::protocol_name(p) << " ---\n";
    for (std::uint32_t a = 0;
         a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
      const auto thr = [](const harness::RunMetrics& m) {
        return m.throughput_seg_s;
      };
      const auto ctrl = [](const harness::RunMetrics& m) {
        return static_cast<double>(m.control_packets);
      };
      const auto ri = [](const harness::RunMetrics& m) {
        return m.coalition_interception_ratio;
      };
      std::cout << "  " << harness::adversary_label(cfg.adversaries[a])
                << ": thr " << defended_mean(p, a, 0, thr) << " -> "
                << defended_mean(p, a, 1, thr) << " seg/s"
                << "; ctrl " << defended_mean(p, a, 0, ctrl) << " -> "
                << defended_mean(p, a, 1, ctrl)
                << "; read " << defended_mean(p, a, 0, ri) << " -> "
                << defended_mean(p, a, 1, ri)
                << "; keyrec " << defended_mean(p, a, 0,
                       [](const harness::RunMetrics& m) {
                         return m.key_recovery_rate;
                       })
                << " -> " << defended_mean(p, a, 1,
                       [](const harness::RunMetrics& m) {
                         return m.key_recovery_rate;
                       })
                << "; detect@" << defended_mean(p, a, 1,
                       [](const harness::RunMetrics& m) {
                         return m.detection_time_s;
                       })
                << "s; recover " << defended_mean(p, a, 1,
                       [](const harness::RunMetrics& m) {
                         return m.recovery_time_s;
                       })
                << "s; quar " << defended_mean(p, a, 1,
                       [](const harness::RunMetrics& m) {
                         return static_cast<double>(m.paths_quarantined);
                       })
                << "; suppr " << defended_mean(p, a, 1,
                       [](const harness::RunMetrics& m) {
                         return static_cast<double>(m.flood_suppressed);
                       })
                << "\n";
    }
  }

  // --- user-plane axis: per-class delivery delay p99 and exposure ------
  if (opt.traffic) {
    const auto traffic_mean =
        [&](harness::Protocol p, std::uint32_t a,
            const std::function<double(const harness::RunMetrics&)>& metric) {
          double sum = 0.0;
          std::size_t n = 0;
          for (double speed : cfg.speeds) {
            const auto s = result.summarize(p, speed, a, 0, 1, metric);
            sum += s.mean() * static_cast<double>(s.count());
            n += s.count();
          }
          return n == 0 ? 0.0 : sum / static_cast<double>(n);
        };
    std::cout << "\n=== User-plane delivery delay p99 / key exposure ("
              << harness::traffic_label(cfg.traffics[1])
              << ", undefended, means over all speeds) ===\n";
    for (harness::Protocol p : cfg.protocols) {
      std::cout << "\n--- " << harness::protocol_name(p) << " ---\n";
      for (std::uint32_t a = 0;
           a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
        std::cout << "  " << harness::adversary_label(cfg.adversaries[a])
                  << ": msg p99 "
                  << traffic_mean(p, a,
                                  [](const harness::RunMetrics& m) {
                                    return m.traffic_classes[0].delay_p99_ms;
                                  })
                  << " ms (exposure "
                  << traffic_mean(p, a,
                                  [](const harness::RunMetrics& m) {
                                    return m.traffic_classes[0].key_exposure;
                                  })
                  << "); bulk p99 "
                  << traffic_mean(p, a,
                                  [](const harness::RunMetrics& m) {
                                    return m.traffic_classes[1].delay_p99_ms;
                                  })
                  << " ms (exposure "
                  << traffic_mean(p, a,
                                  [](const harness::RunMetrics& m) {
                                    return m.traffic_classes[1].key_exposure;
                                  })
                  << "); sessions "
                  << traffic_mean(p, a,
                                  [](const harness::RunMetrics& m) {
                                    return static_cast<double>(
                                        m.sessions_completed);
                                  })
                  << "\n";
      }
    }
  }
  return 0;
}
