// Extension A: the paper's primary metric (Eq. 1, interception ratio of
// the randomly placed eavesdropper) is defined in §IV-B but only its
// worst case (Fig. 7) is plotted.  This bench reports the mean Ri
// itself, same sweep.  Expected shape mirrors Fig. 7: MTS lowest.
#include "bench_common.hpp"

int main() {
  return mts::bench::run_figure_bench(
      "Extension A: eavesdropper interception ratio (Eq. 1) vs MAXSPEED",
      "expected shape (mirrors Fig. 7): MTS lowest", "ratio",
      [](const mts::harness::RunMetrics& m) { return m.interception_ratio; });
}
