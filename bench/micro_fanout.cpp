// Microbenchmarks of the packet plane (google-benchmark): broadcast
// fan-out through the channel, interface-queue churn, and trace-record
// emission — the three places a packet is copied per transmission.
// These bound the per-packet cost that macro_packetplane measures
// end-to-end; BENCH_packetplane.json records before/after medians.
#include <benchmark/benchmark.h>

#include "mobility/mobility_model.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "net/trace.hpp"
#include "phy/channel.hpp"
#include "phy/frame.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace mts;

/// A TCP data packet carrying a DSR source route of `hops` addresses —
/// the packet shape the paper's data plane forwards all day.
net::Packet make_routed_packet(std::size_t hops) {
  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = net::PacketKind::kTcpData;
  common.src = 0;
  common.dst = static_cast<net::NodeId>(hops - 1);
  common.uid = 1;
  common.payload_bytes = 512;
  net::TcpHeader th;
  th.seq = 7;
  th.flow_id = 1;
  p.mutable_tcp() = th;
  net::DsrSourceRoute sr;
  for (std::size_t i = 0; i < hops; ++i) {
    sr.route.push_back(static_cast<net::NodeId>(i));
  }
  p.mutable_routing() = std::move(sr);
  return p;
}

/// One broadcast radiated to `k` in-range receivers: every receiver gets
/// an in-flight copy, then a decode.  This is the RREQ-flood hot loop.
void BM_BroadcastFanout(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  sim::Scheduler sched;
  phy::UnitDiskPropagation prop(250.0);
  phy::Channel channel(sched, prop);
  std::vector<std::unique_ptr<mobility::StaticMobility>> mob;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  for (std::uint32_t i = 0; i <= k; ++i) {
    // All nodes inside decode range of node 0 (and of each other).
    mob.push_back(std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{static_cast<double>(i % 8), static_cast<double>(i / 8)}));
    radios.push_back(std::make_unique<phy::Radio>(sched, i, nullptr));
    channel.attach(radios.back().get(), mob.back().get());
  }
  channel.finalize();

  phy::Frame f;
  f.type = phy::FrameType::kData;
  f.transmitter = 0;
  f.receiver = net::kBroadcastId;
  f.bytes = 560;
  f.payload = make_routed_packet(8);

  const sim::Time airtime = sim::Time::us(500);
  for (auto _ : state) {
    radios[0]->start_transmit(f, airtime);
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(40);

/// Interface-queue churn: enqueue a copy of a route-carrying packet,
/// dequeue it, throw it away — the per-hop cost of passing through the
/// priority queue.
void BM_QueueChurn(benchmark::State& state) {
  net::PriQueue q(50);
  const net::Packet p = make_routed_packet(8);
  for (auto _ : state) {
    net::Packet copy = p;
    auto dropped = q.enqueue(net::QueueItem{std::move(copy), 1});
    benchmark::DoNotOptimize(dropped);
    auto out = q.dequeue();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueueChurn);

/// Trace emission with one subscribed sink: the TraceRecord carries the
/// packet, so this measures what every traced hop pays.
void BM_TraceEmit(benchmark::State& state) {
  net::TraceHub hub;
  std::uint64_t seen = 0;
  hub.subscribe([&seen](const net::TraceRecord& r) {
    seen += r.packet.wire_bytes();
  });
  const net::Packet p = make_routed_packet(8);
  for (auto _ : state) {
    hub.emit_lazy([&] {
      return net::TraceRecord{sim::Time::zero(), 0, net::TraceOp::kForward, p,
                              {}};
    });
  }
  benchmark::DoNotOptimize(seen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmit);

}  // namespace

BENCHMARK_MAIN();
