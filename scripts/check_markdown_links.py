#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans README.md and every *.md under docs/ for inline links and ensures
each relative target exists on disk (anchors are stripped; external
schemes and pure in-page anchors are skipped).  Exits non-zero listing
every broken link — the CI docs job runs this so a moved or renamed
page cannot silently orphan its references.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").rglob("*.md"))
    return [f for f in files if f.is_file()]


def check(root: Path) -> list[str]:
    errors = []
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks: shell snippets mention paths like
        # build/... that are build artifacts, not doc links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors = check(root)
    for e in errors:
        print(e, file=sys.stderr)
    checked = len(md_files(root))
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(f"all intra-repo markdown links resolve ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
