#include "phy/channel.hpp"

#include <algorithm>

#include "phy/radio.hpp"
#include "sim/error.hpp"

namespace mts::phy {

Channel::Channel(sim::Scheduler& sched, const PropagationModel& prop,
                 ChannelConfig cfg)
    : sched_(&sched), prop_(&prop), cfg_(cfg) {
  sim::require_config(cfg.cs_range_factor >= 1.0,
                      "Channel: cs_range_factor < 1");
}

void Channel::attach(Radio* radio, const mobility::MobilityModel* mobility) {
  sim::require(radio != nullptr && mobility != nullptr,
               "Channel: null attach");
  sim::require(radio->id() == entries_.size(),
               "Channel: radio ids must be dense and in attach order");
  entries_.push_back(Entry{radio, mobility});
  radio->set_channel(this);
  max_speed_ = std::max(max_speed_, mobility->max_speed());
}

void Channel::finalize() {
  if (!cfg_.use_spatial_index || entries_.empty()) return;
  const double cell = prop_->max_range() * cfg_.cs_range_factor;
  index_ = std::make_unique<NeighborIndex>(
      static_cast<std::uint32_t>(entries_.size()), cell, max_speed_,
      cfg_.index_rebuild_period,
      [this](std::uint32_t id, sim::Time t) {
        return entries_[id].mobility->position_at(t);
      });
  // Every live query — radiate/neighbors_of at scheduler-now, the next
  // snapshot itself — happens at or after the previous snapshot time, so
  // each rebuild retires the trajectory history behind the one before it
  // (one rebuild period of slack).  This is what keeps mobility memory
  // flat over long runs: without it every model's leg list grows
  // O(sim-time).
  index_->set_snapshot_hook([this](sim::Time prev, sim::Time /*now*/) {
    for (const Entry& e : entries_) e.mobility->trim_history_before(prev);
  });
}

mobility::MobilityStats Channel::mobility_stats() const {
  mobility::MobilityStats total;
  for (const Entry& e : entries_) {
    const mobility::MobilityStats s = e.mobility->stats();
    total.generated += s.generated;
    total.pruned += s.pruned;
    total.live += s.live;
    total.peak_live = std::max(total.peak_live, s.peak_live);
  }
  return total;
}

void Channel::transmit(net::NodeId sender, const Frame& frame,
                       sim::Time airtime) {
  const sim::Time now = sched_->now();
  const mobility::Vec2 sp = position_of(sender, now);
  if (sniffer_) sniffer_(sender, sp, frame, airtime, now);
  radiate(sender, sp, frame, airtime);
}

void Channel::inject(net::NodeId as_sender, const mobility::Vec2& from_pos,
                     const Frame& frame, sim::Time airtime) {
  radiate(as_sender, from_pos, frame, airtime);
}

void Channel::radiate(net::NodeId sender, const mobility::Vec2& sp,
                      const Frame& frame, sim::Time airtime) {
  const sim::Time now = sched_->now();
  const double decode_r = prop_->max_range();
  const double cs_r = decode_r * cfg_.cs_range_factor;

  auto offer = [&](net::NodeId id) {
    if (id == sender) return;
    const mobility::Vec2 rp = position_of(id, now);
    const double d2 = mobility::distance_sq(sp, rp);
    if (d2 > cs_r * cs_r) return;
    const bool decodable = prop_->link_up(sender, sp, id, rp, now);
    Radio* rx = entries_[id].radio;
    const double d = std::sqrt(d2);
    // Two-ray path-loss surrogate (power ~ d^-4) for the capture rule;
    // clamped below 1 m to keep it finite.
    const double p = std::pow(std::max(d, 1.0), -4.0);
    const sim::Time delay = propagation_delay(d);
    // Park the frame per receiver in a pooled in-flight record: the
    // payload body is shared (refcount bump, no deep copy even for a
    // k-receiver broadcast), and the delivery closure stays two
    // pointers wide (no per-packet allocation).
    const std::uint32_t slot = acquire_rx_slot();
    PendingRx& pr = rx_pool_[slot];
    pr.frame = frame;
    pr.radio = rx;
    pr.airtime = airtime;
    pr.decodable = decodable;
    pr.power = p;
    sched_->schedule_in(delay, [this, slot] { deliver_rx(slot); },
                        sim::EventCategory::kChannel);
  };

  if (index_ != nullptr) {
    for (net::NodeId id : index_->candidates(sp, cs_r, now)) offer(id);
  } else {
    for (net::NodeId id = 0; id < entries_.size(); ++id) offer(id);
  }
}

std::uint32_t Channel::acquire_rx_slot() {
  if (rx_free_ != kNoRxSlot) {
    const std::uint32_t slot = rx_free_;
    rx_free_ = rx_pool_[slot].next_free;
    return slot;
  }
  rx_pool_.emplace_back();
  return static_cast<std::uint32_t>(rx_pool_.size() - 1);
}

void Channel::deliver_rx(std::uint32_t slot) {
  // Move the frame out before handing it over: begin_reception may kick
  // off activity that grows the pool and would invalidate a reference.
  // The moved-from slot holds no payload reference, so a recycled slot
  // never pins a packet body (which would both delay its return to the
  // body pool and force spurious CoW clones downstream).
  Frame frame = std::move(rx_pool_[slot].frame);
  Radio* radio = rx_pool_[slot].radio;
  const sim::Time airtime = rx_pool_[slot].airtime;
  const bool decodable = rx_pool_[slot].decodable;
  const double power = rx_pool_[slot].power;
  radio->begin_reception(frame, airtime, decodable, power);
  rx_pool_[slot].next_free = rx_free_;
  rx_free_ = slot;
}

void Channel::neighbors_of(net::NodeId id, sim::Time t,
                           NeighborVec& out) const {
  out.clear();
  const mobility::Vec2 p = position_of(id, t);
  const auto consider = [&](net::NodeId other) {
    if (other == id) return;
    if (prop_->in_range(p, position_of(other, t))) out.push_back(other);
  };
  if (index_ != nullptr) {
    // The grid returns a superset (snapshot positions + staleness
    // margin) in bucket order; re-filter with exact positions and sort
    // so callers see the same ascending ids as the O(N) scan.
    for (net::NodeId other : index_->candidates(p, prop_->max_range(), t)) {
      consider(other);
    }
    std::sort(out.begin(), out.end());
  } else {
    for (net::NodeId other = 0; other < entries_.size(); ++other) {
      consider(other);
    }
  }
}

}  // namespace mts::phy
