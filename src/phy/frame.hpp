#pragma once

#include <cstdint>

#include "net/node_id.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mts::phy {

/// MAC frame types.  RTS/CTS exist for the optional virtual-carrier-sense
/// ablation; the paper-default configuration uses basic access.
enum class FrameType : std::uint8_t { kData, kAck, kRts, kCts };

const char* frame_type_name(FrameType t);

/// The unit the radio transmits: a MAC frame, possibly wrapping a
/// network-layer packet.  Copying a Frame copies a few plain fields and
/// bumps the payload body's refcount — broadcast fan-out to k receivers
/// shares one packet body instead of deep-copying it k times.
struct Frame {
  FrameType type = FrameType::kData;
  net::NodeId transmitter = net::kNoNode;
  net::NodeId receiver = net::kBroadcastId;
  std::uint32_t bytes = 0;      ///< full frame size incl. MAC header + FCS
  std::uint16_t seq = 0;        ///< MAC sequence (duplicate detection)
  bool retry = false;
  sim::Time nav;                ///< medium reservation beyond frame end
  net::Packet payload;          ///< shared handle; empty for ACK/RTS/CTS

  [[nodiscard]] bool has_payload() const { return payload.has_body(); }
  [[nodiscard]] bool is_broadcast() const {
    return receiver == net::kBroadcastId;
  }
};

}  // namespace mts::phy
