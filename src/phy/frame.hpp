#pragma once

#include <cstdint>

#include "net/node_id.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mts::phy {

/// MAC frame types.  RTS/CTS exist for the optional virtual-carrier-sense
/// ablation; the paper-default configuration uses basic access.
enum class FrameType : std::uint8_t { kData, kAck, kRts, kCts };

const char* frame_type_name(FrameType t);

/// The unit the radio transmits: a MAC frame, possibly wrapping a
/// network-layer packet.  Value type — broadcast fan-out copies it per
/// receiver.
struct Frame {
  FrameType type = FrameType::kData;
  net::NodeId transmitter = net::kNoNode;
  net::NodeId receiver = net::kBroadcastId;
  std::uint32_t bytes = 0;      ///< full frame size incl. MAC header + FCS
  std::uint16_t seq = 0;        ///< MAC sequence (duplicate detection)
  bool retry = false;
  sim::Time nav;                ///< medium reservation beyond frame end
  bool has_payload = false;
  net::Packet payload;          ///< valid iff has_payload

  [[nodiscard]] bool is_broadcast() const {
    return receiver == net::kBroadcastId;
  }
};

}  // namespace mts::phy
