#pragma once

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace mts::phy {

/// Propagation abstraction: who can decode whom, and after how long.
///
/// The paper specifies only "radio transmission range: 250 m", i.e. the
/// ns-2 TwoRayGround configuration whose effective behaviour at these
/// distances *is* a 250 m disk.  UnitDisk reproduces exactly that;
/// the interface leaves room for fading models.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Can a frame transmitted at `a` be decoded at `b`?
  [[nodiscard]] virtual bool in_range(mobility::Vec2 a,
                                      mobility::Vec2 b) const = 0;

  /// Maximum decode distance (m) — spatial index pruning radius.
  [[nodiscard]] virtual double max_range() const = 0;

  /// Link-level decodability: models with per-link state (fading)
  /// override this; the default is pure geometry.
  [[nodiscard]] virtual bool link_up(std::uint32_t /*tx*/, mobility::Vec2 a,
                                     std::uint32_t /*rx*/, mobility::Vec2 b,
                                     sim::Time /*t*/) const {
    return in_range(a, b);
  }
};

class UnitDiskPropagation final : public PropagationModel {
 public:
  explicit UnitDiskPropagation(double range_m = 250.0) : range_(range_m) {}

  [[nodiscard]] bool in_range(mobility::Vec2 a,
                              mobility::Vec2 b) const override {
    return mobility::distance_sq(a, b) <= range_ * range_;
  }
  [[nodiscard]] double max_range() const override { return range_; }

 private:
  double range_;
};

/// Signal propagation delay over distance `d_m` metres at light speed.
inline sim::Time propagation_delay(double d_m) {
  return sim::Time::seconds(d_m / 299'792'458.0);
}

}  // namespace mts::phy
