#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace mts::phy {

/// Uniform-grid spatial index over node positions with bounded staleness.
///
/// Rebuilding the grid on every transmission would dominate runtime, so
/// the index snapshots positions at most every `rebuild_period` and
/// inflates query radii by `staleness_margin()` — the farthest any two
/// nodes can have approached since the snapshot (both endpoints moving
/// at max speed).  Candidates are a superset; callers re-filter with
/// exact positions.
///
/// The grid is stored CSR-style: one flat offset array over the cells of
/// the snapshot's bounding box plus one flat id array, both reused
/// across rebuilds, so a steady-state rebuild allocates nothing even at
/// 10k nodes.  When the bounding box would need more cells than
/// `dense_cell_cap()` (pathological cell_size / field combinations), the
/// index falls back to a sorted sparse-key CSR with the same reuse
/// discipline.  Either layout yields candidates in the identical order
/// to a per-cell bucket map — cells scanned x-major, ids ascending
/// within a cell — so fixed-seed runs are bit-identical across layouts.
class NeighborIndex {
 public:
  using PositionFn = std::function<mobility::Vec2(std::uint32_t, sim::Time)>;
  /// Called at the end of every rebuild after the first, with the
  /// previous snapshot time and the new one.  The previous snapshot time
  /// is a low-water mark: no future index or caller query looks at
  /// positions before it, so mobility history behind it can be freed.
  using SnapshotHook = std::function<void(sim::Time prev, sim::Time now)>;

  NeighborIndex(std::uint32_t node_count, double cell_size, double max_speed,
                sim::Time rebuild_period, PositionFn positions);

  /// All node ids whose *snapshot* position lies within
  /// `radius + staleness_margin()` of `center`.  Refreshes the snapshot
  /// first if it is older than the rebuild period.  Returns a member
  /// scratch buffer — this runs once per radiated frame, so the hot
  /// path must not allocate.  The reference is invalidated by the next
  /// candidates() call; copy it if you need to hold on to the ids.
  [[nodiscard]] const std::vector<std::uint32_t>& candidates(
      mobility::Vec2 center, double radius, sim::Time now);

  void set_snapshot_hook(SnapshotHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] double staleness_margin() const {
    return 2.0 * max_speed_ * rebuild_period_.to_seconds();
  }
  [[nodiscard]] std::uint32_t rebuild_count() const { return rebuilds_; }
  /// Rebuilds that grew any reused buffer.  Settles after warm-up: the
  /// steady-state rebuild path performs zero heap allocations.
  [[nodiscard]] std::uint32_t alloc_count() const { return allocs_; }
  /// Cell budget above which the dense bounding-box layout gives way to
  /// the sparse sorted-key fallback.
  [[nodiscard]] std::size_t dense_cell_cap() const {
    return std::size_t{4} * n_ + 64;
  }

 private:
  void rebuild(sim::Time now);
  [[nodiscard]] std::int64_t cell_of(double coord) const {
    return static_cast<std::int64_t>(coord / cell_);
  }
  [[nodiscard]] static std::int64_t key_of(std::int64_t cx, std::int64_t cy) {
    return (cx << 32) ^ (cy & 0xffffffff);
  }
  /// Ids in cell (cx, cy), ascending; (nullptr, nullptr) when empty.
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*>
  cell_span(std::int64_t cx, std::int64_t cy) const;

  std::uint32_t n_;
  double cell_;
  double max_speed_;
  sim::Time rebuild_period_;
  PositionFn positions_;
  SnapshotHook hook_;

  sim::Time snapshot_at_ = sim::Time::ns(-1);
  std::vector<mobility::Vec2> snapshot_;

  // CSR grid.  Dense: cells of the snapshot bounding box laid out
  // x-major (`lin = (cx - cx_min_) * grid_h_ + (cy - cy_min_)`);
  // offsets_[lin]..offsets_[lin+1] indexes ids_.  Sparse: keys_ holds
  // the sorted non-empty cell keys and offsets_ runs parallel to it.
  bool dense_ = true;
  std::int64_t cx_min_ = 0, cy_min_ = 0;
  std::int64_t grid_w_ = 0, grid_h_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> ids_;
  std::vector<std::int64_t> keys_;            // sparse layout only
  std::vector<std::uint32_t> cell_lin_;       // per-node cell, rebuild scratch
  std::vector<std::pair<std::int64_t, std::uint32_t>> keyed_;  // sparse scratch

  std::uint32_t rebuilds_ = 0;
  std::uint32_t allocs_ = 0;
  std::vector<std::uint32_t> scratch_;  ///< query results, reused
};

}  // namespace mts::phy
