#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace mts::phy {

/// Uniform-grid spatial index over node positions with bounded staleness.
///
/// Rebuilding the grid on every transmission would dominate runtime, so
/// the index snapshots positions at most every `rebuild_period` and
/// inflates query radii by `staleness_margin()` — the farthest any two
/// nodes can have approached since the snapshot (both endpoints moving
/// at max speed).  Candidates are a superset; callers re-filter with
/// exact positions.
class NeighborIndex {
 public:
  using PositionFn = std::function<mobility::Vec2(std::uint32_t, sim::Time)>;

  NeighborIndex(std::uint32_t node_count, double cell_size, double max_speed,
                sim::Time rebuild_period, PositionFn positions);

  /// All node ids whose *snapshot* position lies within
  /// `radius + staleness_margin()` of `center`.  Refreshes the snapshot
  /// first if it is older than the rebuild period.  Returns a member
  /// scratch buffer — this runs once per radiated frame, so the hot
  /// path must not allocate.  The reference is invalidated by the next
  /// candidates() call; copy it if you need to hold on to the ids.
  [[nodiscard]] const std::vector<std::uint32_t>& candidates(
      mobility::Vec2 center, double radius, sim::Time now);

  [[nodiscard]] double staleness_margin() const {
    return 2.0 * max_speed_ * rebuild_period_.to_seconds();
  }
  [[nodiscard]] std::uint32_t rebuild_count() const { return rebuilds_; }

 private:
  void rebuild(sim::Time now);
  [[nodiscard]] std::int64_t cell_of(double coord) const {
    return static_cast<std::int64_t>(coord / cell_);
  }

  std::uint32_t n_;
  double cell_;
  double max_speed_;
  sim::Time rebuild_period_;
  PositionFn positions_;

  sim::Time snapshot_at_ = sim::Time::ns(-1);
  std::vector<mobility::Vec2> snapshot_;
  // Grid as a sorted bucket list: (cell key -> node ids).  Cell keys are
  // hashed into a flat hash map rebuilt wholesale each refresh.
  struct Bucket {
    std::int64_t key;
    std::vector<std::uint32_t> ids;
  };
  std::vector<Bucket> buckets_;
  std::uint32_t rebuilds_ = 0;
  /// Reused across calls: query results and the rebuild's sort area.
  std::vector<std::uint32_t> scratch_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> keyed_;

  [[nodiscard]] static std::int64_t key_of(std::int64_t cx, std::int64_t cy) {
    return (cx << 32) ^ (cy & 0xffffffff);
  }
  [[nodiscard]] const std::vector<std::uint32_t>* find_bucket(
      std::int64_t key) const;
};

}  // namespace mts::phy
