#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/counters.hpp"
#include "phy/frame.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace mts::phy {

class Channel;

/// Half-duplex radio transceiver attached to one node.
///
/// Reception model (no capture): any temporal overlap of two receptions
/// corrupts both; transmitting makes the radio deaf; starting to
/// transmit corrupts anything being received.  Physical carrier sense is
/// `busy = transmitting || any reception in progress`, reported to the
/// MAC via edge-triggered callbacks.
///
/// The radio delivers *every* cleanly decoded frame to the MAC,
/// including frames addressed elsewhere — the MAC needs them for NAV,
/// and the security layer's promiscuous tap hangs off the same path.
class Radio {
 public:
  struct Callbacks {
    std::function<void(const Frame&)> on_frame;     ///< any decoded frame
    std::function<void(bool)> on_medium_busy;       ///< physical CS edges
    std::function<void()> on_tx_done;               ///< our frame finished
    /// A reception ended that could not be decoded (collision, or energy
    /// from beyond decode range) — the MAC's EIFS trigger.
    std::function<void()> on_rx_garbage;
  };

  Radio(sim::Scheduler& sched, net::NodeId id, net::Counters* counters)
      : sched_(&sched),
        id_(id),
        counters_(counters),
        tx_done_timer_(sched, [this] { tx_done(); },
                       sim::EventCategory::kPhy) {}

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  void set_channel(Channel* ch) { channel_ = ch; }
  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  [[nodiscard]] net::NodeId id() const { return id_; }

  /// Physical carrier: busy while transmitting or any energy arrives.
  [[nodiscard]] bool medium_busy() const {
    return transmitting() || !active_.empty();
  }
  [[nodiscard]] bool transmitting() const { return sched_->now() < tx_end_; }

  /// MAC-facing: radiate `frame` for `airtime`.  Pre-condition: not
  /// already transmitting (the MAC's job to ensure).  Ongoing receptions
  /// are corrupted (half duplex).
  void start_transmit(const Frame& frame, sim::Time airtime);

  /// Channel-facing: energy begins arriving.  `decodable` is false for
  /// frames inside carrier-sense range but beyond decode range.
  /// `rx_power` is a relative received-power figure (the channel's
  /// path-loss surrogate) used for the capture rule.
  void begin_reception(const Frame& frame, sim::Time airtime, bool decodable,
                       double rx_power);

  /// ns-2 `WirelessPhy` capture rule: an ongoing reception survives a
  /// new arrival iff it is at least this power ratio stronger (10 dB);
  /// the newcomer is then discarded as noise.  Otherwise both corrupt.
  void set_capture_threshold(double ratio) { capture_threshold_ = ratio; }

  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return decoded_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }

 private:
  struct Reception {
    Frame frame;
    sim::Time end;
    bool corrupt;
    bool decodable;
    double power;
  };

  void tx_done();
  void end_reception(std::uint32_t slot);
  void medium_edge(bool was_busy);

  sim::Scheduler* sched_;
  net::NodeId id_;
  net::Counters* counters_;
  Channel* channel_ = nullptr;
  Callbacks cb_;

  /// Preallocated member timer for the end of our own transmission —
  /// one per radio instead of a fresh closure per frame.
  sim::Timer tx_done_timer_;
  sim::Time tx_end_ = sim::Time::zero();
  double capture_threshold_ = 10.0;
  /// Reception records live in a stable slot pool: freed slots are
  /// recycled through `free_` and the (tiny) set of in-flight
  /// receptions is tracked by index in `active_`, so the per-frame
  /// receive path stops allocating once the pool has warmed up.  A
  /// slot's end event is the only thing that releases it, so an index
  /// captured by that event stays valid for the slot's whole lifetime.
  std::vector<Reception> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> active_;
  std::uint64_t collisions_ = 0;
  std::uint64_t decoded_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace mts::phy
