#pragma once

#include <cmath>

#include "phy/propagation.hpp"
#include "sim/rng.hpp"

namespace mts::phy {

/// Log-distance path loss with slow (shadowing-style) link fading.
///
/// The paper motivates MTS's checking period with "the coherence time
/// of the fading/shadowing conditions" (§III-D): a discovered route is
/// only trustworthy for a channel coherence interval, after which links
/// near the margin may have faded out.  The unit-disk model cannot
/// express that; this extension can, and the route-checking ablation
/// uses it to show the coherence-time/check-period coupling.
///
/// Model: each ordered node pair (a, b) has a fading state that redraws
/// every `coherence_time`: with probability `fade_probability` the link
/// is faded and its effective decode range shrinks by `faded_fraction`.
/// Fading is symmetric (the pair key is unordered) and deterministic in
/// the master seed + pair + epoch, so runs remain reproducible and two
/// queries in the same epoch agree.
struct FadingConfig {
  double range_m = 250.0;           ///< nominal decode range
  double faded_fraction = 0.7;      ///< faded range = fraction * nominal
  double fade_probability = 0.2;    ///< chance a link is faded per epoch
  sim::Time coherence_time = sim::Time::sec(3);
};

class FadingPropagation final : public PropagationModel {
 public:
  FadingPropagation(const FadingConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {
    sim::require_config(cfg.range_m > 0, "Fading: range <= 0");
    sim::require_config(cfg.faded_fraction > 0 && cfg.faded_fraction <= 1,
                        "Fading: faded_fraction out of (0,1]");
    sim::require_config(cfg.fade_probability >= 0 && cfg.fade_probability <= 1,
                        "Fading: fade_probability out of [0,1]");
    sim::require_config(cfg.coherence_time > sim::Time::zero(),
                        "Fading: coherence_time <= 0");
  }

  /// Position-only queries see the nominal disk (used for the spatial
  /// index bound); fading applies in the time-aware overload below.
  [[nodiscard]] bool in_range(mobility::Vec2 a,
                              mobility::Vec2 b) const override {
    return mobility::distance_sq(a, b) <= cfg_.range_m * cfg_.range_m;
  }
  [[nodiscard]] double max_range() const override { return cfg_.range_m; }

  /// Whether the link (ia, ib) decodes at time `t` given positions.
  [[nodiscard]] bool link_up(std::uint32_t ia, mobility::Vec2 a,
                             std::uint32_t ib, mobility::Vec2 b,
                             sim::Time t) const override {
    const double r = effective_range(ia, ib, t);
    return mobility::distance_sq(a, b) <= r * r;
  }

  /// The decode range of link (ia, ib) in the epoch containing `t`.
  [[nodiscard]] double effective_range(std::uint32_t ia, std::uint32_t ib,
                                       sim::Time t) const {
    return is_faded(ia, ib, t) ? cfg_.range_m * cfg_.faded_fraction
                               : cfg_.range_m;
  }

  [[nodiscard]] bool is_faded(std::uint32_t ia, std::uint32_t ib,
                              sim::Time t) const {
    const std::uint64_t epoch = static_cast<std::uint64_t>(
        t.nanoseconds() / cfg_.coherence_time.nanoseconds());
    // Unordered pair key: fading is link-symmetric.
    const std::uint64_t lo = std::min(ia, ib);
    const std::uint64_t hi = std::max(ia, ib);
    const std::uint64_t h = sim::splitmix64(
        seed_ ^ sim::splitmix64((lo << 32) | hi) ^ sim::splitmix64(epoch));
    // Map to [0, 1): top 53 bits as a double.
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < cfg_.fade_probability;
  }

  [[nodiscard]] const FadingConfig& config() const { return cfg_; }

 private:
  FadingConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace mts::phy
