#include "phy/neighbor_index.hpp"

#include <algorithm>
#include <cmath>

#include "sim/error.hpp"

namespace mts::phy {

NeighborIndex::NeighborIndex(std::uint32_t node_count, double cell_size,
                             double max_speed, sim::Time rebuild_period,
                             PositionFn positions)
    : n_(node_count),
      cell_(cell_size),
      max_speed_(max_speed),
      rebuild_period_(rebuild_period),
      positions_(std::move(positions)) {
  sim::require_config(cell_size > 0, "NeighborIndex: cell_size <= 0");
  sim::require_config(rebuild_period > sim::Time::zero(),
                      "NeighborIndex: rebuild_period <= 0");
  sim::require_config(max_speed >= 0, "NeighborIndex: negative max_speed");
}

void NeighborIndex::rebuild(sim::Time now) {
  snapshot_.resize(n_);
  buckets_.clear();
  for (std::uint32_t i = 0; i < n_; ++i) {
    snapshot_[i] = positions_(i, now);
  }
  // Bucket by cell; sort-based build keeps memory contiguous.
  keyed_.clear();
  keyed_.reserve(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    keyed_.emplace_back(key_of(cell_of(snapshot_[i].x), cell_of(snapshot_[i].y)), i);
  }
  std::sort(keyed_.begin(), keyed_.end());
  for (const auto& [key, id] : keyed_) {
    if (buckets_.empty() || buckets_.back().key != key) {
      buckets_.push_back(Bucket{key, {}});
    }
    buckets_.back().ids.push_back(id);
  }
  snapshot_at_ = now;
  ++rebuilds_;
}

const std::vector<std::uint32_t>* NeighborIndex::find_bucket(
    std::int64_t key) const {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), key,
      [](const Bucket& b, std::int64_t k) { return b.key < k; });
  if (it != buckets_.end() && it->key == key) return &it->ids;
  return nullptr;
}

const std::vector<std::uint32_t>& NeighborIndex::candidates(
    mobility::Vec2 center, double radius, sim::Time now) {
  if (snapshot_at_ < sim::Time::zero() || now - snapshot_at_ > rebuild_period_) {
    rebuild(now);
  }
  const double r = radius + staleness_margin();
  const double r2 = r * r;
  scratch_.clear();
  const std::int64_t cx0 = cell_of(center.x - r), cx1 = cell_of(center.x + r);
  const std::int64_t cy0 = cell_of(center.y - r), cy1 = cell_of(center.y + r);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const auto* ids = find_bucket(key_of(cx, cy));
      if (ids == nullptr) continue;
      for (std::uint32_t id : *ids) {
        if (mobility::distance_sq(snapshot_[id], center) <= r2) {
          scratch_.push_back(id);
        }
      }
    }
  }
  return scratch_;
}

}  // namespace mts::phy
