#include "phy/neighbor_index.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "sim/error.hpp"

namespace mts::phy {

NeighborIndex::NeighborIndex(std::uint32_t node_count, double cell_size,
                             double max_speed, sim::Time rebuild_period,
                             PositionFn positions)
    : n_(node_count),
      cell_(cell_size),
      max_speed_(max_speed),
      rebuild_period_(rebuild_period),
      positions_(std::move(positions)) {
  sim::require_config(cell_size > 0, "NeighborIndex: cell_size <= 0");
  sim::require_config(rebuild_period > sim::Time::zero(),
                      "NeighborIndex: rebuild_period <= 0");
  sim::require_config(max_speed >= 0, "NeighborIndex: negative max_speed");
}

void NeighborIndex::rebuild(sim::Time now) {
  const std::size_t caps_before[] = {
      snapshot_.capacity(), offsets_.capacity(), ids_.capacity(),
      keys_.capacity(),     cell_lin_.capacity(), keyed_.capacity()};

  snapshot_.resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    snapshot_[i] = positions_(i, now);
  }

  std::int64_t cx_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t cx_max = std::numeric_limits<std::int64_t>::min();
  std::int64_t cy_min = cx_min, cy_max = cx_max;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::int64_t cx = cell_of(snapshot_[i].x);
    const std::int64_t cy = cell_of(snapshot_[i].y);
    cx_min = std::min(cx_min, cx);
    cx_max = std::max(cx_max, cx);
    cy_min = std::min(cy_min, cy);
    cy_max = std::max(cy_max, cy);
  }

  // Runaway (or non-finite) positions can make the span product wrap
  // the 64-bit multiply and sneak a truncated cell count past the dense
  // cap, so each factor is bounded before the product is formed (the
  // division form cannot overflow).  Overflow falls through to the
  // sparse layout, which never materialises the bounding box.
  const std::uint64_t span_x =
      n_ == 0 ? 0
              : static_cast<std::uint64_t>(cx_max) -
                    static_cast<std::uint64_t>(cx_min) + 1;
  const std::uint64_t span_y =
      n_ == 0 ? 0
              : static_cast<std::uint64_t>(cy_max) -
                    static_cast<std::uint64_t>(cy_min) + 1;
  const std::uint64_t cap = dense_cell_cap();
  dense_ = n_ == 0 || (span_x <= cap && span_y <= cap &&
                       span_x <= cap / span_y);
  if (dense_) {
    const std::size_t cells = static_cast<std::size_t>(span_x * span_y);
    cx_min_ = cx_min;
    cy_min_ = cy_min;
    grid_w_ = static_cast<std::int64_t>(span_x);
    grid_h_ = static_cast<std::int64_t>(span_y);
    // Counting sort into the CSR arrays.  After the scatter the cursor
    // positions have advanced to each cell's END, so offsets_[lin] holds
    // the end of cell `lin` and the start is offsets_[lin - 1] (0 for
    // the first cell); cell_span() reads it back that way.
    offsets_.assign(cells + 1, 0);
    cell_lin_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::int64_t cx = cell_of(snapshot_[i].x);
      const std::int64_t cy = cell_of(snapshot_[i].y);
      const std::uint32_t lin = static_cast<std::uint32_t>(
          (cx - cx_min_) * grid_h_ + (cy - cy_min_));
      cell_lin_[i] = lin;
      ++offsets_[lin + 1];
    }
    for (std::size_t c = 1; c <= cells; ++c) offsets_[c] += offsets_[c - 1];
    ids_.resize(n_);
    // Ascending i keeps ids ascending within each cell — the same order
    // the old sorted-bucket build produced.
    for (std::uint32_t i = 0; i < n_; ++i) {
      ids_[offsets_[cell_lin_[i]]++] = i;
    }
  } else {
    keyed_.clear();
    keyed_.reserve(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      keyed_.emplace_back(
          key_of(cell_of(snapshot_[i].x), cell_of(snapshot_[i].y)), i);
    }
    std::sort(keyed_.begin(), keyed_.end());
    keys_.clear();
    offsets_.clear();
    ids_.resize(n_);
    for (std::uint32_t idx = 0; idx < n_; ++idx) {
      const auto& [key, id] = keyed_[idx];
      if (keys_.empty() || keys_.back() != key) {
        keys_.push_back(key);
        offsets_.push_back(idx);
      }
      ids_[idx] = id;
    }
    offsets_.push_back(n_);
  }

  const std::size_t caps_after[] = {
      snapshot_.capacity(), offsets_.capacity(), ids_.capacity(),
      keys_.capacity(),     cell_lin_.capacity(), keyed_.capacity()};
  for (std::size_t i = 0; i < std::size(caps_before); ++i) {
    if (caps_before[i] != caps_after[i]) {
      ++allocs_;
      break;
    }
  }

  const sim::Time prev = snapshot_at_;
  snapshot_at_ = now;
  ++rebuilds_;
  if (hook_ && prev >= sim::Time::zero()) hook_(prev, now);
}

std::pair<const std::uint32_t*, const std::uint32_t*> NeighborIndex::cell_span(
    std::int64_t cx, std::int64_t cy) const {
  if (dense_) {
    if (cx < cx_min_ || cx >= cx_min_ + grid_w_ || cy < cy_min_ ||
        cy >= cy_min_ + grid_h_) {
      return {nullptr, nullptr};
    }
    const std::size_t lin =
        static_cast<std::size_t>((cx - cx_min_) * grid_h_ + (cy - cy_min_));
    const std::uint32_t begin = lin == 0 ? 0 : offsets_[lin - 1];
    const std::uint32_t end = offsets_[lin];
    if (begin == end) return {nullptr, nullptr};
    return {ids_.data() + begin, ids_.data() + end};
  }
  const std::int64_t key = key_of(cx, cy);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return {nullptr, nullptr};
  const std::size_t j = static_cast<std::size_t>(it - keys_.begin());
  return {ids_.data() + offsets_[j], ids_.data() + offsets_[j + 1]};
}

const std::vector<std::uint32_t>& NeighborIndex::candidates(
    mobility::Vec2 center, double radius, sim::Time now) {
  if (snapshot_at_ < sim::Time::zero() || now - snapshot_at_ > rebuild_period_) {
    rebuild(now);
  }
  const double r = radius + staleness_margin();
  const double r2 = r * r;
  scratch_.clear();
  const std::int64_t cx0 = cell_of(center.x - r), cx1 = cell_of(center.x + r);
  const std::int64_t cy0 = cell_of(center.y - r), cy1 = cell_of(center.y + r);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const auto [begin, end] = cell_span(cx, cy);
      for (const std::uint32_t* p = begin; p != end; ++p) {
        if (mobility::distance_sq(snapshot_[*p], center) <= r2) {
          scratch_.push_back(*p);
        }
      }
    }
  }
  return scratch_;
}

}  // namespace mts::phy
