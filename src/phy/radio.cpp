#include "phy/radio.hpp"

#include <algorithm>

#include "phy/channel.hpp"
#include "sim/error.hpp"

namespace mts::phy {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
  }
  return "?";
}

void Radio::start_transmit(const Frame& frame, sim::Time airtime) {
  sim::require(channel_ != nullptr, "Radio: no channel attached");
  sim::require(!transmitting(), "Radio: start_transmit while transmitting");
  const bool was_busy = medium_busy();
  // Half duplex: anything being received is lost the instant we key up.
  for (const std::uint32_t idx : active_) slots_[idx].corrupt = true;
  tx_end_ = sched_->now() + airtime;
  ++sent_;
  if (counters_ != nullptr) ++counters_->mac_tx_frames;
  channel_->transmit(id_, frame, airtime);
  tx_done_timer_.schedule_at(tx_end_);
  if (!was_busy) medium_edge(false);
}

void Radio::tx_done() {
  if (cb_.on_tx_done) cb_.on_tx_done();
  medium_edge(/*was_busy=*/true);
}

void Radio::begin_reception(const Frame& frame, sim::Time airtime,
                            bool decodable, double rx_power) {
  if (transmitting()) {
    // Deaf while keyed up; the energy passes unnoticed (it also cannot
    // corrupt anything: we are not receiving).
    return;
  }
  const bool was_busy = medium_busy();
  // Capture (ns-2 WirelessPhy): the newcomer is noise to any ongoing
  // reception that is >= capture_threshold_ stronger; such receptions
  // survive.  Weaker or comparable ongoing receptions are corrupted.
  // The newcomer itself is decodable only if the medium was clear.
  bool corrupt = false;
  for (const std::uint32_t idx : active_) {
    corrupt = true;
    Reception& rx = slots_[idx];
    if (rx.power < rx_power * capture_threshold_) rx.corrupt = true;
  }
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  slots_[slot] =
      Reception{frame, sched_->now() + airtime, corrupt, decodable, rx_power};
  active_.push_back(slot);
  sched_->schedule_in(airtime, [this, slot] { end_reception(slot); },
                      sim::EventCategory::kPhy);
  if (!was_busy) medium_edge(false);
}

void Radio::end_reception(std::uint32_t slot) {
  auto it = std::find(active_.begin(), active_.end(), slot);
  sim::require(it != active_.end(), "Radio: reception record lost");
  // Swap-remove from the active list, move the record out, and recycle
  // the slot *before* running callbacks: a callback may re-enter
  // begin_reception (MAC responses), which must see a consistent pool.
  // The move empties the slot's packet handle, so the pooled body is
  // released the moment the reception ends, not when the slot recycles.
  *it = active_.back();
  active_.pop_back();
  const Reception rec = std::move(slots_[slot]);
  free_.push_back(slot);
  if (rec.corrupt) {
    ++collisions_;
    if (counters_ != nullptr) counters_->drop(net::DropReason::kCollision);
    if (cb_.on_rx_garbage) cb_.on_rx_garbage();
  } else if (rec.decodable && !transmitting()) {
    ++decoded_;
    if (counters_ != nullptr) ++counters_->mac_rx_frames;
    if (cb_.on_frame) cb_.on_frame(rec.frame);
  } else if (!rec.decodable) {
    if (cb_.on_rx_garbage) cb_.on_rx_garbage();
  }
  medium_edge(/*was_busy=*/true);
}

void Radio::medium_edge(bool was_busy) {
  const bool busy = medium_busy();
  if (busy != was_busy && cb_.on_medium_busy) cb_.on_medium_busy(busy);
}

}  // namespace mts::phy
