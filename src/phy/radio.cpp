#include "phy/radio.hpp"

#include <algorithm>

#include "phy/channel.hpp"
#include "sim/error.hpp"

namespace mts::phy {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kRts: return "RTS";
    case FrameType::kCts: return "CTS";
  }
  return "?";
}

void Radio::start_transmit(const Frame& frame, sim::Time airtime) {
  sim::require(channel_ != nullptr, "Radio: no channel attached");
  sim::require(!transmitting(), "Radio: start_transmit while transmitting");
  const bool was_busy = medium_busy();
  // Half duplex: anything being received is lost the instant we key up.
  for (auto& rx : receptions_) rx.corrupt = true;
  tx_end_ = sched_->now() + airtime;
  ++sent_;
  if (counters_ != nullptr) ++counters_->mac_tx_frames;
  channel_->transmit(id_, frame, airtime);
  tx_done_timer_.schedule_at(tx_end_);
  if (!was_busy) medium_edge(false);
}

void Radio::tx_done() {
  if (cb_.on_tx_done) cb_.on_tx_done();
  medium_edge(/*was_busy=*/true);
}

void Radio::begin_reception(const Frame& frame, sim::Time airtime,
                            bool decodable, double rx_power) {
  if (transmitting()) {
    // Deaf while keyed up; the energy passes unnoticed (it also cannot
    // corrupt anything: we are not receiving).
    return;
  }
  const bool was_busy = medium_busy();
  // Capture (ns-2 WirelessPhy): the newcomer is noise to any ongoing
  // reception that is >= capture_threshold_ stronger; such receptions
  // survive.  Weaker or comparable ongoing receptions are corrupted.
  // The newcomer itself is decodable only if the medium was clear.
  bool corrupt = false;
  for (auto& rx : receptions_) {
    corrupt = true;
    if (rx.power < rx_power * capture_threshold_) rx.corrupt = true;
  }
  const std::uint64_t key = next_key_++;
  receptions_.push_back(Reception{frame, key, sched_->now() + airtime,
                                  corrupt, decodable, rx_power});
  sched_->schedule_in(airtime, [this, key] { end_reception(key); });
  if (!was_busy) medium_edge(false);
}

void Radio::end_reception(std::uint64_t key) {
  auto it = std::find_if(receptions_.begin(), receptions_.end(),
                         [key](const Reception& r) { return r.key == key; });
  sim::require(it != receptions_.end(), "Radio: reception record lost");
  const Reception rec = std::move(*it);
  receptions_.erase(it);
  if (rec.corrupt) {
    ++collisions_;
    if (counters_ != nullptr) counters_->drop(net::DropReason::kCollision);
    if (cb_.on_rx_garbage) cb_.on_rx_garbage();
  } else if (rec.decodable && !transmitting()) {
    ++decoded_;
    if (counters_ != nullptr) ++counters_->mac_rx_frames;
    if (cb_.on_frame) cb_.on_frame(rec.frame);
  } else if (!rec.decodable) {
    if (cb_.on_rx_garbage) cb_.on_rx_garbage();
  }
  medium_edge(/*was_busy=*/true);
}

void Radio::medium_edge(bool was_busy) {
  const bool busy = medium_busy();
  if (busy != was_busy && cb_.on_medium_busy) cb_.on_medium_busy(busy);
}

}  // namespace mts::phy
