#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "net/small_vec.hpp"
#include "phy/frame.hpp"
#include "phy/neighbor_index.hpp"
#include "phy/propagation.hpp"
#include "sim/scheduler.hpp"

namespace mts::phy {

class Radio;

struct ChannelConfig {
  /// Decode range multiplier giving the carrier-sense/interference range.
  /// ns-2's TwoRayGround defaults put the carrier-sense threshold at
  /// 550 m against a 250 m decode range — factor 2.2.  This matters: at
  /// 1.0, two-hop chains collapse into hidden-terminal collision storms
  /// that the paper's substrate never exhibited.
  double cs_range_factor = 2.2;
  /// Use the spatial grid (O(neighbours)) instead of scanning all nodes.
  bool use_spatial_index = true;
  /// How stale the grid snapshot may get.
  sim::Time index_rebuild_period = sim::Time::ms(500);
};

/// The shared wireless medium: fans a transmission out to every radio
/// within range of the transmitter at the moment the first bit leaves.
class Channel {
 public:
  Channel(sim::Scheduler& sched, const PropagationModel& prop,
          ChannelConfig cfg = {});

  /// Registers a radio and the mobility model giving its position.  The
  /// radio's NodeId must equal its registration order (dense ids).
  void attach(Radio* radio, const mobility::MobilityModel* mobility);

  /// Must be called once after all attach() calls (builds the index).
  void finalize();

  /// Global promiscuous tap: observes every frame at radiation time with
  /// the transmitter's position and airtime.  Purely observational (no
  /// scheduling, no RNG draws), so attaching a sniffer never perturbs
  /// the simulation — the adversary subsystem hangs off this.
  using Sniffer = std::function<void(net::NodeId sender,
                                     const mobility::Vec2& sender_pos,
                                     const Frame& frame, sim::Time airtime,
                                     sim::Time now)>;
  void set_sniffer(Sniffer s) { sniffer_ = std::move(s); }

  /// Radiates `frame` from `sender` for `airtime`.  Receivers within
  /// decode range get a decodable reception; receivers inside the CS
  /// range but beyond decode range get energy only.
  void transmit(net::NodeId sender, const Frame& frame, sim::Time airtime);

  /// Active-adversary injection hook: radiates a (possibly spoofed)
  /// frame from an arbitrary position that need not match any attached
  /// radio — the wormhole's far-end replay.  Unlike the passive sniffer
  /// tap this perturbs the run by design: receptions are scheduled
  /// exactly as for a genuine transmission.  Injected frames are NOT fed
  /// back to the sniffer tap (an attacker does not overhear its own
  /// out-of-band replays, which also rules out tap→inject loops).
  void inject(net::NodeId as_sender, const mobility::Vec2& from_pos,
              const Frame& frame, sim::Time airtime);

  [[nodiscard]] mobility::Vec2 position_of(net::NodeId id, sim::Time t) const {
    return entries_[id].mobility->position_at(t);
  }
  [[nodiscard]] std::size_t node_count() const { return entries_.size(); }
  [[nodiscard]] double decode_range() const { return prop_->max_range(); }

  /// Caller-owned neighbour list: inline up to 16 entries, so the
  /// common query never touches the heap.
  using NeighborVec = net::SmallVec<net::NodeId, 16>;

  /// Fills `out` with the nodes within decode range of `id` at time
  /// `t`, ascending (any previous contents are discarded).  Exact: the
  /// spatial index (when built) only pre-filters candidates, which are
  /// then re-checked against live positions.
  void neighbors_of(net::NodeId id, sim::Time t, NeighborVec& out) const;

  /// The spatial index, or nullptr when disabled / not yet finalized.
  [[nodiscard]] const NeighborIndex* index() const { return index_.get(); }

  /// Aggregate trajectory-history counters over all attached models.
  [[nodiscard]] mobility::MobilityStats mobility_stats() const;

 private:
  struct Entry {
    Radio* radio;
    const mobility::MobilityModel* mobility;
  };

  /// An in-flight per-receiver frame record, pooled so the propagation
  /// delivery event captures only {this, slot} — the per-packet fan-out
  /// never builds a Frame-sized closure.  The frame's payload handle
  /// shares the transmitted packet body; delivery clears it so recycled
  /// slots never pin a body in the packet pool.
  struct PendingRx {
    Frame frame;
    Radio* radio = nullptr;
    sim::Time airtime;
    bool decodable = false;
    double power = 0.0;
    std::uint32_t next_free = 0;
  };

  std::uint32_t acquire_rx_slot();
  void deliver_rx(std::uint32_t slot);
  /// Shared fan-out of transmit() and inject(): schedules one reception
  /// per radio within carrier-sense range of `sp`.
  void radiate(net::NodeId sender, const mobility::Vec2& sp,
               const Frame& frame, sim::Time airtime);

  sim::Scheduler* sched_;
  const PropagationModel* prop_;
  ChannelConfig cfg_;
  Sniffer sniffer_;
  std::vector<Entry> entries_;
  std::unique_ptr<NeighborIndex> index_;
  double max_speed_ = 0.0;

  std::vector<PendingRx> rx_pool_;
  std::uint32_t rx_free_ = kNoRxSlot;
  static constexpr std::uint32_t kNoRxSlot = 0xffffffffu;
};

}  // namespace mts::phy
