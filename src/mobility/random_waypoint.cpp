#include "mobility/random_waypoint.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace mts::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointConfig& cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  sim::require_config(cfg.max_speed > 0, "RandomWaypoint: max_speed must be > 0");
  sim::require_config(cfg.min_speed > 0, "RandomWaypoint: min_speed must be > 0");
  sim::require_config(cfg.min_speed <= cfg.max_speed,
                      "RandomWaypoint: min_speed > max_speed");
  sim::require_config(cfg.pause >= sim::Time::zero(),
                      "RandomWaypoint: negative pause");
  // Initial placement: uniform over the field.  The node starts paused,
  // then moves — matching the common ns-2 setdest initialization.
  Vec2 start{rng_.uniform(0.0, cfg_.field.width),
             rng_.uniform(0.0, cfg_.field.height)};
  Leg first;
  first.from = start;
  first.to = Vec2{rng_.uniform(0.0, cfg_.field.width),
                  rng_.uniform(0.0, cfg_.field.height)};
  first.speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
  first.start = cfg_.pause;  // initial pause before first movement
  const double dist = distance(first.from, first.to);
  first.arrive = first.start + sim::Time::seconds(dist / first.speed);
  first.depart = first.arrive + cfg_.pause;
  push_leg(first);
}

void RandomWaypoint::push_leg(Leg leg) const {
  // A degenerate config (0x0 field, zero pause) draws identical
  // waypoints, making depart == start; without a floor, extend_until
  // would append legs forever without advancing.  The clamp is
  // unreachable for any field with positive area, so it never perturbs
  // the RNG draw sequence of real scenarios.
  if (leg.depart <= leg.start) leg.depart = leg.start + sim::Time::ms(1);
  legs_.push_back(leg);
  ++stats_.generated;
  stats_.live = legs_.size();
  stats_.peak_live = std::max(stats_.peak_live, stats_.live);
}

void RandomWaypoint::extend_until(sim::Time t) const {
  while (legs_.back().depart < t) {
    const Leg& prev = legs_.back();
    Leg next;
    next.from = prev.to;
    next.to = Vec2{rng_.uniform(0.0, cfg_.field.width),
                   rng_.uniform(0.0, cfg_.field.height)};
    next.speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
    next.start = prev.depart;
    const double dist = distance(next.from, next.to);
    next.arrive = next.start + sim::Time::seconds(dist / next.speed);
    next.depart = next.arrive + cfg_.pause;
    push_leg(next);
  }
}

Vec2 RandomWaypoint::position_at(sim::Time t) const {
  extend_until(t);
  // The channel queries at non-decreasing sim times, so the covering leg
  // is at or just past the cursor; arbitrary (test/metric) queries fall
  // back to binary search.
  std::size_t i;
  if (cursor_ < legs_.size() && legs_[cursor_].start <= t) {
    i = cursor_;
    while (i + 1 < legs_.size() && legs_[i + 1].start <= t) ++i;
  } else {
    auto it = std::upper_bound(
        legs_.begin(), legs_.end(), t,
        [](sim::Time tt, const Leg& leg) { return tt < leg.start; });
    if (it == legs_.begin()) {
      // Once history has been pruned, a query below the retained front
      // leg would silently resolve to that leg's origin — wrong data.
      // Only the un-pruned initial pause legitimately lands here.
      sim::require(stats_.pruned == 0,
                   "RandomWaypoint: position_at precedes pruned history");
      return legs_.front().from;  // initial pause
    }
    i = static_cast<std::size_t>(it - legs_.begin()) - 1;
  }
  cursor_ = i;
  const Leg& leg = legs_[i];
  if (t >= leg.arrive) return leg.to;  // paused at the waypoint
  const double frac = (t - leg.start) / (leg.arrive - leg.start);
  return leg.from + (leg.to - leg.from) * frac;
}

void RandomWaypoint::trim_history_before(sim::Time mark) const {
  // Keep the leg covering `mark` (last start <= mark) so every query at
  // t >= mark still resolves; drop everything older.
  std::size_t drop = 0;
  while (drop + 1 < legs_.size() && legs_[drop + 1].start <= mark) ++drop;
  if (drop == 0) return;
  legs_.erase(legs_.begin(),
              legs_.begin() + static_cast<std::ptrdiff_t>(drop));
  cursor_ = cursor_ > drop ? cursor_ - drop : 0;
  stats_.pruned += drop;
  stats_.live = legs_.size();
}

MobilityStats RandomWaypoint::stats() const { return stats_; }

// ---------------------------------------------------------------------------

RandomWalk::RandomWalk(const RandomWalkConfig& cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  sim::require_config(cfg.max_speed > 0, "RandomWalk: max_speed must be > 0");
  sim::require_config(cfg.min_speed >= 0, "RandomWalk: negative min_speed");
  sim::require_config(cfg.min_speed <= cfg.max_speed,
                      "RandomWalk: min_speed > max_speed");
  sim::require_config(cfg.step > sim::Time::zero(), "RandomWalk: step <= 0");
  Segment s;
  s.start = sim::Time::zero();
  s.from = Vec2{rng_.uniform(0.0, cfg_.field.width),
                rng_.uniform(0.0, cfg_.field.height)};
  const double speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
  const double theta = rng_.uniform(0.0, 2.0 * 3.141592653589793);
  s.velocity = Vec2{speed * std::cos(theta), speed * std::sin(theta)};
  push_seg(s);
}

namespace {

/// Advances `p` by `v * dt` reflecting off the field walls; `v` is
/// updated in place when a wall flips a component.
Vec2 reflect_advance(Vec2 p, Vec2& v, double dt, const Field& f) {
  double nx = p.x + v.x * dt;
  double ny = p.y + v.y * dt;
  // Reflect until inside; each loop handles one bounce per axis.
  while (nx < 0.0 || nx > f.width) {
    if (nx < 0.0) nx = -nx;
    if (nx > f.width) nx = 2.0 * f.width - nx;
    v.x = -v.x;
  }
  while (ny < 0.0 || ny > f.height) {
    if (ny < 0.0) ny = -ny;
    if (ny > f.height) ny = 2.0 * f.height - ny;
    v.y = -v.y;
  }
  return {nx, ny};
}

}  // namespace

void RandomWalk::push_seg(Segment seg) const {
  segs_.push_back(seg);
  ++stats_.generated;
  stats_.live = segs_.size();
  stats_.peak_live = std::max(stats_.peak_live, stats_.live);
}

void RandomWalk::extend_until(sim::Time t) const {
  // `step > 0` (enforced at construction) guarantees each segment
  // strictly advances, so this loop always terminates.
  while (segs_.back().start + cfg_.step < t) {
    const Segment& prev = segs_.back();
    Segment next;
    next.start = prev.start + cfg_.step;
    Vec2 v = prev.velocity;
    next.from = reflect_advance(prev.from, v, cfg_.step.to_seconds(), cfg_.field);
    const double speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
    const double theta = rng_.uniform(0.0, 2.0 * 3.141592653589793);
    next.velocity = Vec2{speed * std::cos(theta), speed * std::sin(theta)};
    push_seg(next);
  }
}

Vec2 RandomWalk::position_at(sim::Time t) const {
  extend_until(t);
  std::size_t i;
  if (cursor_ < segs_.size() && segs_[cursor_].start <= t) {
    i = cursor_;
    while (i + 1 < segs_.size() && segs_[i + 1].start <= t) ++i;
  } else {
    auto it = std::upper_bound(
        segs_.begin(), segs_.end(), t,
        [](sim::Time tt, const Segment& s) { return tt < s.start; });
    if (it == segs_.begin()) {
      sim::require(stats_.pruned == 0,
                   "RandomWalk: position_at precedes pruned history");
      return segs_.front().from;
    }
    i = static_cast<std::size_t>(it - segs_.begin()) - 1;
  }
  cursor_ = i;
  const Segment& seg = segs_[i];
  Vec2 v = seg.velocity;
  return reflect_advance(seg.from, v, (t - seg.start).to_seconds(), cfg_.field);
}

void RandomWalk::trim_history_before(sim::Time mark) const {
  std::size_t drop = 0;
  while (drop + 1 < segs_.size() && segs_[drop + 1].start <= mark) ++drop;
  if (drop == 0) return;
  segs_.erase(segs_.begin(),
              segs_.begin() + static_cast<std::ptrdiff_t>(drop));
  cursor_ = cursor_ > drop ? cursor_ - drop : 0;
  stats_.pruned += drop;
  stats_.live = segs_.size();
}

MobilityStats RandomWalk::stats() const { return stats_; }

}  // namespace mts::mobility
