#include "mobility/random_waypoint.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace mts::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointConfig& cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  sim::require_config(cfg.max_speed > 0, "RandomWaypoint: max_speed must be > 0");
  sim::require_config(cfg.min_speed > 0, "RandomWaypoint: min_speed must be > 0");
  sim::require_config(cfg.min_speed <= cfg.max_speed,
                      "RandomWaypoint: min_speed > max_speed");
  sim::require_config(cfg.pause >= sim::Time::zero(),
                      "RandomWaypoint: negative pause");
  // Initial placement: uniform over the field.  The node starts paused,
  // then moves — matching the common ns-2 setdest initialization.
  Vec2 start{rng_.uniform(0.0, cfg_.field.width),
             rng_.uniform(0.0, cfg_.field.height)};
  Leg first;
  first.from = start;
  first.to = Vec2{rng_.uniform(0.0, cfg_.field.width),
                  rng_.uniform(0.0, cfg_.field.height)};
  first.speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
  first.start = cfg_.pause;  // initial pause before first movement
  const double dist = distance(first.from, first.to);
  first.arrive = first.start + sim::Time::seconds(dist / first.speed);
  first.depart = first.arrive + cfg_.pause;
  legs_.push_back(first);
}

void RandomWaypoint::extend_until(sim::Time t) const {
  while (legs_.back().depart < t) {
    const Leg& prev = legs_.back();
    Leg next;
    next.from = prev.to;
    next.to = Vec2{rng_.uniform(0.0, cfg_.field.width),
                   rng_.uniform(0.0, cfg_.field.height)};
    next.speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
    next.start = prev.depart;
    const double dist = distance(next.from, next.to);
    next.arrive = next.start + sim::Time::seconds(dist / next.speed);
    next.depart = next.arrive + cfg_.pause;
    legs_.push_back(next);
  }
}

Vec2 RandomWaypoint::position_at(sim::Time t) const {
  extend_until(t);
  // Find the last leg with start <= t (legs are sorted by start).
  auto it = std::upper_bound(
      legs_.begin(), legs_.end(), t,
      [](sim::Time tt, const Leg& leg) { return tt < leg.start; });
  if (it == legs_.begin()) return legs_.front().from;  // initial pause
  const Leg& leg = *(it - 1);
  if (t >= leg.arrive) return leg.to;  // paused at the waypoint
  const double frac = (t - leg.start) / (leg.arrive - leg.start);
  return leg.from + (leg.to - leg.from) * frac;
}

// ---------------------------------------------------------------------------

RandomWalk::RandomWalk(const RandomWalkConfig& cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  sim::require_config(cfg.max_speed > 0, "RandomWalk: max_speed must be > 0");
  sim::require_config(cfg.step > sim::Time::zero(), "RandomWalk: step <= 0");
  Segment s;
  s.start = sim::Time::zero();
  s.from = Vec2{rng_.uniform(0.0, cfg_.field.width),
                rng_.uniform(0.0, cfg_.field.height)};
  const double speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
  const double theta = rng_.uniform(0.0, 2.0 * 3.141592653589793);
  s.velocity = Vec2{speed * std::cos(theta), speed * std::sin(theta)};
  segs_.push_back(s);
}

namespace {

/// Advances `p` by `v * dt` reflecting off the field walls; `v` is
/// updated in place when a wall flips a component.
Vec2 reflect_advance(Vec2 p, Vec2& v, double dt, const Field& f) {
  double nx = p.x + v.x * dt;
  double ny = p.y + v.y * dt;
  // Reflect until inside; each loop handles one bounce per axis.
  while (nx < 0.0 || nx > f.width) {
    if (nx < 0.0) nx = -nx;
    if (nx > f.width) nx = 2.0 * f.width - nx;
    v.x = -v.x;
  }
  while (ny < 0.0 || ny > f.height) {
    if (ny < 0.0) ny = -ny;
    if (ny > f.height) ny = 2.0 * f.height - ny;
    v.y = -v.y;
  }
  return {nx, ny};
}

}  // namespace

void RandomWalk::extend_until(sim::Time t) const {
  while (segs_.back().start + cfg_.step < t) {
    const Segment& prev = segs_.back();
    Segment next;
    next.start = prev.start + cfg_.step;
    Vec2 v = prev.velocity;
    next.from = reflect_advance(prev.from, v, cfg_.step.to_seconds(), cfg_.field);
    const double speed = rng_.uniform(cfg_.min_speed, cfg_.max_speed);
    const double theta = rng_.uniform(0.0, 2.0 * 3.141592653589793);
    next.velocity = Vec2{speed * std::cos(theta), speed * std::sin(theta)};
    segs_.push_back(next);
  }
}

Vec2 RandomWalk::position_at(sim::Time t) const {
  extend_until(t);
  auto it = std::upper_bound(
      segs_.begin(), segs_.end(), t,
      [](sim::Time tt, const Segment& s) { return tt < s.start; });
  const Segment& seg = *(it - 1);
  Vec2 v = seg.velocity;
  return reflect_advance(seg.from, v, (t - seg.start).to_seconds(), cfg_.field);
}

}  // namespace mts::mobility
