#pragma once

#include <cstddef>
#include <cstdint>

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace mts::mobility {

/// History bookkeeping for lazily-extended trajectory models.  `live`
/// is the number of trajectory entries currently held; `generated` and
/// `pruned` count entries ever created / dropped, so
/// `live == generated - pruned` at all times.
struct MobilityStats {
  std::uint64_t generated = 0;
  std::uint64_t pruned = 0;
  std::size_t live = 0;
  std::size_t peak_live = 0;  ///< high-water mark of `live`
};

/// Per-node trajectory, expressed as position-as-a-function-of-time.
///
/// Models are *pure*: position_at(t) is deterministic given the model's
/// seed, and may be queried for any t >= 0 in any order (the channel
/// queries at transmit instants; metrics and tests query arbitrarily).
///
/// Lazily-extended models accumulate history; callers that know a
/// low-water mark below which no query will ever come again (e.g. the
/// channel, whose queries are bounded below by the previous neighbour
/// snapshot time) may call trim_history_before() to release it.  The
/// entry *covering* the mark is always retained, so any t >= mark keeps
/// answering identically — pruning never alters positions or the RNG
/// draw sequence.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual Vec2 position_at(sim::Time t) const = 0;

  /// Upper bound on instantaneous speed (m/s); the neighbour cache uses
  /// it to size its staleness margin.
  [[nodiscard]] virtual double max_speed() const = 0;

  /// Promise that no future position_at(t) call will have t < mark;
  /// history strictly before the entry covering `mark` may be freed.
  /// Default: no-op (models with O(1) state have nothing to trim).
  virtual void trim_history_before(sim::Time /*mark*/) const {}

  /// History counters; zeros for O(1)-state models.
  [[nodiscard]] virtual MobilityStats stats() const { return {}; }
};

/// A node that never moves (baselines, unit-test topologies).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}
  [[nodiscard]] Vec2 position_at(sim::Time) const override { return pos_; }
  [[nodiscard]] double max_speed() const override { return 0.0; }

 private:
  Vec2 pos_;
};

}  // namespace mts::mobility
