#pragma once

#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace mts::mobility {

/// Per-node trajectory, expressed as position-as-a-function-of-time.
///
/// Models are *pure*: position_at(t) is deterministic given the model's
/// seed, and may be queried for any t >= 0 in any order (the channel
/// queries at transmit instants; metrics and tests query arbitrarily).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual Vec2 position_at(sim::Time t) const = 0;

  /// Upper bound on instantaneous speed (m/s); the neighbour cache uses
  /// it to size its staleness margin.
  [[nodiscard]] virtual double max_speed() const = 0;
};

/// A node that never moves (baselines, unit-test topologies).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}
  [[nodiscard]] Vec2 position_at(sim::Time) const override { return pos_; }
  [[nodiscard]] double max_speed() const override { return 0.0; }

 private:
  Vec2 pos_;
};

}  // namespace mts::mobility
