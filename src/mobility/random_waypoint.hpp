#pragma once

#include <vector>

#include "mobility/mobility_model.hpp"
#include "sim/rng.hpp"

namespace mts::mobility {

/// The paper's mobility model (§IV-A): "random way point model (when the
/// node reaches its destination, it pauses for several seconds, e.g. 1s,
/// then randomly chooses another destination point within the field,
/// with a randomly selected constant velocity)".
///
/// Speeds are uniform in [min_speed, max_speed].  The paper draws from
/// [0, MAXSPEED]; a literal 0 makes a leg infinitely long (the classic
/// random-waypoint speed-decay pathology), so the default floor is
/// 0.1 m/s — negligible against MAXSPEED >= 2 but keeps every leg
/// finite.  Tests cover both floors.
struct RandomWaypointConfig {
  Field field;
  double min_speed = 0.1;  ///< m/s
  double max_speed = 2.0;  ///< m/s (the paper's MAXSPEED)
  sim::Time pause = sim::Time::sec(1);
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(const RandomWaypointConfig& cfg, sim::Rng rng);

  [[nodiscard]] Vec2 position_at(sim::Time t) const override;
  [[nodiscard]] double max_speed() const override { return cfg_.max_speed; }
  void trim_history_before(sim::Time mark) const override;
  [[nodiscard]] MobilityStats stats() const override;

  /// Trajectory introspection for tests: one entry per movement leg.
  struct Leg {
    sim::Time start;      ///< movement begins (after the previous pause)
    sim::Time arrive;     ///< reaches `to`
    sim::Time depart;     ///< arrive + pause: next leg starts
    Vec2 from;
    Vec2 to;
    double speed = 0.0;   ///< m/s
  };

  /// Live legs (grows lazily as later times are queried; the front is
  /// dropped by trim_history_before).
  [[nodiscard]] const std::vector<Leg>& legs_generated() const { return legs_; }

 private:
  void extend_until(sim::Time t) const;
  void push_leg(Leg leg) const;

  RandomWaypointConfig cfg_;
  mutable sim::Rng rng_;
  mutable std::vector<Leg> legs_;
  mutable std::size_t cursor_ = 0;  ///< covering-leg hint for monotone queries
  mutable MobilityStats stats_;
};

/// Extension (not in the paper): bounded random walk with reflection,
/// used by ablation studies to confirm MTS's gains are not an artefact
/// of waypoint mobility.
struct RandomWalkConfig {
  Field field;
  double min_speed = 0.1;
  double max_speed = 2.0;
  sim::Time step = sim::Time::sec(5);  ///< direction change period
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const RandomWalkConfig& cfg, sim::Rng rng);

  [[nodiscard]] Vec2 position_at(sim::Time t) const override;
  [[nodiscard]] double max_speed() const override { return cfg_.max_speed; }
  void trim_history_before(sim::Time mark) const override;
  [[nodiscard]] MobilityStats stats() const override;

 private:
  struct Segment {
    sim::Time start;
    Vec2 from;
    Vec2 velocity;  ///< m/s components after boundary reflection
  };
  void extend_until(sim::Time t) const;
  void push_seg(Segment seg) const;

  RandomWalkConfig cfg_;
  mutable sim::Rng rng_;
  mutable std::vector<Segment> segs_;
  mutable std::size_t cursor_ = 0;
  mutable MobilityStats stats_;
};

}  // namespace mts::mobility
