#pragma once

#include <cmath>
#include <ostream>

namespace mts::mobility {

/// 2-D position/vector in metres.  The paper's field is planar
/// (1000 m x 1000 m); altitude never matters for unit-disk propagation.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << "," << v.y << ")";
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance_sq(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Axis-aligned field the nodes roam in.
struct Field {
  double width = 1000.0;
  double height = 1000.0;

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
};

}  // namespace mts::mobility
