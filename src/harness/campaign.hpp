#pragma once

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "stats/summary.hpp"

namespace mts::harness {

/// A full sweep: protocol x MAXSPEED x adversary x defense x
/// repetitions — the paper's grid (protocol x speed) plus the adversary
/// axis the extension benches sweep and the defense axis the
/// countermeasure study scores against it.  The default single
/// `AdversarySpec{}` / `DefenseSpec{}` (kind = kNone) reproduces the
/// paper's grid exactly.
struct CampaignConfig {
  ScenarioConfig base;  ///< speed/protocol/seed/adversary overwritten per cell
  std::vector<double> speeds{2, 5, 10, 15, 20};
  std::vector<Protocol> protocols{Protocol::kDsr, Protocol::kAodv,
                                  Protocol::kMts};
  std::vector<security::AdversarySpec> adversaries{security::AdversarySpec{}};
  std::vector<security::DefenseSpec> defenses{security::DefenseSpec{}};
  /// Traffic axis: user-plane workloads to sweep.  The default single
  /// disabled spec keeps the grid (and every cached CSV key) the
  /// pre-traffic one-cell product.
  std::vector<traffic::TrafficSpec> traffics{traffic::TrafficSpec{}};
  std::uint32_t repetitions = 5;  ///< paper: "repeated for 5 times"
  std::uint64_t seed_base = 1;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

/// Short human label for an adversary spec ("none", "colluding x4", ...).
std::string adversary_label(const security::AdversarySpec& spec);

/// Short human label for a defense spec ("none", "suite", ...).
std::string defense_label(const security::DefenseSpec& spec);

/// Short human label for a traffic spec ("off", "20/s x4gw", ...).
std::string traffic_label(const traffic::TrafficSpec& spec);

/// All runs, indexable by (protocol, speed[, adversary[, defense]]).
class CampaignResult {
 public:
  void add(RunMetrics m);

  /// Runs of the adversary-free, undefended paper grid (indices 0, 0).
  [[nodiscard]] const std::vector<RunMetrics>& runs(Protocol p,
                                                    double speed) const {
    return runs(p, speed, 0, 0);
  }
  [[nodiscard]] const std::vector<RunMetrics>& runs(
      Protocol p, double speed, std::uint32_t adversary) const {
    return runs(p, speed, adversary, 0);
  }
  [[nodiscard]] const std::vector<RunMetrics>& runs(
      Protocol p, double speed, std::uint32_t adversary,
      std::uint32_t defense) const {
    return runs(p, speed, adversary, defense, 0);
  }
  [[nodiscard]] const std::vector<RunMetrics>& runs(
      Protocol p, double speed, std::uint32_t adversary,
      std::uint32_t defense, std::uint32_t traffic) const;

  /// Aggregates one metric across the repetitions of a cell.
  [[nodiscard]] stats::Summary summarize(
      Protocol p, double speed,
      const std::function<double(const RunMetrics&)>& metric) const {
    return summarize(p, speed, 0, 0, metric);
  }
  [[nodiscard]] stats::Summary summarize(
      Protocol p, double speed, std::uint32_t adversary,
      const std::function<double(const RunMetrics&)>& metric) const {
    return summarize(p, speed, adversary, 0, metric);
  }
  [[nodiscard]] stats::Summary summarize(
      Protocol p, double speed, std::uint32_t adversary,
      std::uint32_t defense,
      const std::function<double(const RunMetrics&)>& metric) const {
    return summarize(p, speed, adversary, defense, 0, metric);
  }
  [[nodiscard]] stats::Summary summarize(
      Protocol p, double speed, std::uint32_t adversary,
      std::uint32_t defense, std::uint32_t traffic,
      const std::function<double(const RunMetrics&)>& metric) const;

  [[nodiscard]] std::size_t total_runs() const { return count_; }

 private:
  static std::int64_t speed_key(double speed) {
    return static_cast<std::int64_t>(speed * 1000.0 + 0.5);
  }
  std::map<std::tuple<int, std::int64_t, std::uint32_t, std::uint32_t,
                      std::uint32_t>,
           std::vector<RunMetrics>>
      cells_;
  std::size_t count_ = 0;
};

/// Runs the sweep.  Repetitions are embarrassingly parallel: each run
/// owns an isolated simulator, so the pool shares nothing but the work
/// queue (an atomic index) and writes results into pre-sized slots.
CampaignResult run_campaign(const CampaignConfig& cfg,
                            std::ostream* progress = nullptr);

/// Prints one paper figure: rows = MAXSPEED, one column (mean +/- 95 % CI
/// half-width) per protocol.
void print_figure(std::ostream& os, const CampaignResult& result,
                  const CampaignConfig& cfg, const std::string& title,
                  const std::string& unit,
                  const std::function<double(const RunMetrics&)>& metric,
                  int precision = 3);

/// Prints one table per adversary spec in the sweep: rows = MAXSPEED,
/// one column per protocol — the adversary-axis analogue of
/// `print_figure`.
void print_adversary_figure(
    std::ostream& os, const CampaignResult& result, const CampaignConfig& cfg,
    const std::string& title, const std::string& unit,
    const std::function<double(const RunMetrics&)>& metric, int precision = 3);

/// Reads the standard bench environment overrides
/// (MTS_BENCH_REPS, MTS_BENCH_SIM_TIME, MTS_BENCH_SPEEDS,
///  MTS_BENCH_THREADS, MTS_BENCH_NODES) into `cfg`.
void apply_bench_env(CampaignConfig& cfg);

}  // namespace mts::harness
