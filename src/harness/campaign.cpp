#include "harness/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "harness/progress.hpp"
#include "sim/error.hpp"
#include "stats/table.hpp"

namespace mts::harness {

std::string adversary_label(const security::AdversarySpec& spec) {
  if (!spec.enabled()) return "none";
  std::ostringstream os;
  // A wormhole is always an endpoint pair, whatever `count` says.
  const std::uint32_t n =
      spec.kind == security::AdversaryKind::kWormhole ? 2 : spec.count;
  os << security::adversary_kind_name(spec.kind) << " x" << n;
  switch (spec.kind) {
    case security::AdversaryKind::kWormhole:
    case security::AdversaryKind::kGrayhole:
      os << " p=" << spec.drop_prob;
      break;
    case security::AdversaryKind::kRreqFlood:
      os << " @" << spec.flood_rate << "/s";
      break;
    default:
      break;
  }
  return os.str();
}

std::string defense_label(const security::DefenseSpec& spec) {
  if (!spec.enabled()) return "none";
  std::ostringstream os;
  os << security::defense_kind_name(spec.kind);
  switch (spec.kind) {
    case security::DefenseKind::kAckedChecking:
      os << " @" << spec.probe_period.to_seconds() << "s";
      break;
    case security::DefenseKind::kFloodRateLimit:
      os << " @" << spec.rreq_rate << "/s";
      break;
    default:
      break;
  }
  return os.str();
}

std::string traffic_label(const traffic::TrafficSpec& spec) {
  if (!spec.enabled) return "off";
  std::ostringstream os;
  os << spec.session_rate << "/s x" << spec.gateway_count << "gw";
  if (!spec.diurnal.empty()) os << " diurnal" << spec.diurnal.size();
  return os.str();
}

void CampaignResult::add(RunMetrics m) {
  cells_[{static_cast<int>(m.protocol), speed_key(m.max_speed),
          m.adversary_index, m.defense_index, m.traffic_index}]
      .push_back(std::move(m));
  ++count_;
}

const std::vector<RunMetrics>& CampaignResult::runs(
    Protocol p, double speed, std::uint32_t adversary, std::uint32_t defense,
    std::uint32_t traffic) const {
  static const std::vector<RunMetrics> kEmpty;
  auto it = cells_.find(
      {static_cast<int>(p), speed_key(speed), adversary, defense, traffic});
  return it == cells_.end() ? kEmpty : it->second;
}

stats::Summary CampaignResult::summarize(
    Protocol p, double speed, std::uint32_t adversary, std::uint32_t defense,
    std::uint32_t traffic,
    const std::function<double(const RunMetrics&)>& metric) const {
  // Honest accounting: `failed` placeholder rows from the fabric carry
  // zeros for every metric — averaging them in would silently bias
  // false_positive_rate, paired-seed deltas and every figure toward 0.
  // Only ok rows contribute; a fully failed cell reports count() == 0.
  stats::Summary s;
  for (const RunMetrics& m : runs(p, speed, adversary, defense, traffic)) {
    if (m.run_status != RunStatus::kOk) continue;
    s.add(metric(m));
  }
  return s;
}

CampaignResult run_campaign(const CampaignConfig& cfg,
                            std::ostream* progress) {
  struct Cell {
    Protocol protocol;
    double speed;
    std::uint32_t adversary;
    std::uint32_t defense;
    std::uint32_t traffic;
    std::uint64_t seed;
  };
  sim::require_config(!cfg.adversaries.empty(),
                      "Campaign: adversaries list empty (use a kNone spec)");
  sim::require_config(!cfg.defenses.empty(),
                      "Campaign: defenses list empty (use a kNone spec)");
  sim::require_config(!cfg.traffics.empty(),
                      "Campaign: traffics list empty (use a disabled spec)");
  std::vector<Cell> work;
  for (Protocol p : cfg.protocols) {
    for (double speed : cfg.speeds) {
      for (std::uint32_t a = 0;
           a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
        for (std::uint32_t d = 0;
             d < static_cast<std::uint32_t>(cfg.defenses.size()); ++d) {
          for (std::uint32_t t = 0;
               t < static_cast<std::uint32_t>(cfg.traffics.size()); ++t) {
            for (std::uint32_t r = 0; r < cfg.repetitions; ++r) {
              // Same seed across protocols, adversaries, defenses and
              // traffic specs for a given (speed, rep): paired
              // comparisons see identical mobility and flow placement
              // (passive adversaries don't perturb runs at all, so
              // their cells differ only in what was observed).
              work.push_back(Cell{p, speed, a, d, t, cfg.seed_base + r});
            }
          }
        }
      }
    }
  }
  std::vector<RunMetrics> results(work.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  ProgressSink sink(progress);

  unsigned n_threads = cfg.threads != 0 ? cfg.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  n_threads = std::min<unsigned>(n_threads, static_cast<unsigned>(work.size()));

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= work.size()) return;
      ScenarioConfig sc = cfg.base;
      sc.protocol = work[i].protocol;
      sc.max_speed = work[i].speed;
      sc.seed = work[i].seed;
      sc.adversary = cfg.adversaries[work[i].adversary];
      sc.defense = cfg.defenses[work[i].defense];
      sc.traffic = cfg.traffics[work[i].traffic];
      results[i] = run_scenario(sc);
      results[i].adversary_index = work[i].adversary;
      results[i].defense_index = work[i].defense;
      results[i].traffic_index = work[i].traffic;
      const std::size_t d = done.fetch_add(1) + 1;
      if (sink.enabled()) {
        std::ostringstream os;
        os << "  [" << d << "/" << work.size() << "] "
           << protocol_name(work[i].protocol) << " speed=" << work[i].speed
           << " adversary=" << adversary_label(cfg.adversaries[work[i].adversary])
           << " defense=" << defense_label(cfg.defenses[work[i].defense]);
        if (cfg.traffics.size() > 1) {
          os << " traffic=" << traffic_label(cfg.traffics[work[i].traffic]);
        }
        os << " seed=" << work[i].seed;
        sink.line(os.str());
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  CampaignResult out;
  for (RunMetrics& m : results) out.add(std::move(m));
  return out;
}

void print_figure(std::ostream& os, const CampaignResult& result,
                  const CampaignConfig& cfg, const std::string& title,
                  const std::string& unit,
                  const std::function<double(const RunMetrics&)>& metric,
                  int precision) {
  os << "\n=== " << title << " ===\n";
  if (!unit.empty()) os << "(" << unit << "; mean +/- 95% CI over "
                        << cfg.repetitions << " runs)\n";
  std::vector<std::string> header{"MAXSPEED (m/s)"};
  for (Protocol p : cfg.protocols) header.emplace_back(protocol_name(p));
  stats::Table table(std::move(header));
  for (double speed : cfg.speeds) {
    std::vector<std::string> row{stats::Table::fmt(speed, 0)};
    for (Protocol p : cfg.protocols) {
      const stats::Summary s = result.summarize(p, speed, metric);
      row.push_back(stats::Table::fmt(s.mean(), precision) + " +/- " +
                    stats::Table::fmt(s.ci95(), precision));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void print_adversary_figure(
    std::ostream& os, const CampaignResult& result, const CampaignConfig& cfg,
    const std::string& title, const std::string& unit,
    const std::function<double(const RunMetrics&)>& metric, int precision) {
  os << "\n=== " << title << " ===\n";
  if (!unit.empty()) {
    os << "(" << unit << "; mean +/- 95% CI over " << cfg.repetitions
       << " runs)\n";
  }
  for (std::uint32_t a = 0;
       a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
    os << "\n--- adversary: " << adversary_label(cfg.adversaries[a])
       << " ---\n";
    std::vector<std::string> header{"MAXSPEED (m/s)"};
    for (Protocol p : cfg.protocols) header.emplace_back(protocol_name(p));
    stats::Table table(std::move(header));
    for (double speed : cfg.speeds) {
      std::vector<std::string> row{stats::Table::fmt(speed, 0)};
      for (Protocol p : cfg.protocols) {
        const stats::Summary s = result.summarize(p, speed, a, metric);
        row.push_back(stats::Table::fmt(s.mean(), precision) + " +/- " +
                      stats::Table::fmt(s.ci95(), precision));
      }
      table.add_row(std::move(row));
    }
    table.print(os);
  }
}

namespace {

/// Strict unsigned-integer env parse.  `std::stoul` would throw (and
/// kill the bench with an unhelpful backtrace) on junk like
/// `MTS_BENCH_THREADS=max`; instead a malformed or out-of-range value
/// warns on stderr and reports failure so the caller keeps its default.
bool parse_env_u64(const char* name, const char* v, std::uint64_t max,
                   std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || n > max) {
    std::cerr << "warning: ignoring " << name << "='" << v
              << "' (expected an integer in [0, " << max << "])\n";
    return false;
  }
  out = n;
  return true;
}

/// Strict positive-double env parse with the same warn-and-fall-back
/// contract.  Rejects non-finite values and anything above 1e9: the
/// consumers multiply by 1e9 (Time::seconds) or feed mobility speeds,
/// and an `inf`/1e15 would turn into int64 overflow UB downstream.
bool parse_env_double(const char* name, const char* v, double& out) {
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !std::isfinite(d) ||
      !(d > 0.0) || d > 1e9) {
    std::cerr << "warning: ignoring " << name << "='" << v
              << "' (expected a positive number <= 1e9)\n";
    return false;
  }
  out = d;
  return true;
}

std::vector<double> parse_speeds(const char* s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    double speed = 0.0;
    if (!parse_env_double("MTS_BENCH_SPEEDS", item.c_str(), speed)) {
      return {};  // one bad element invalidates the list
    }
    out.push_back(speed);
  }
  return out;
}

}  // namespace

void apply_bench_env(CampaignConfig& cfg) {
  std::uint64_t n = 0;
  double d = 0.0;
  if (const char* v = std::getenv("MTS_BENCH_REPS")) {
    if (parse_env_u64("MTS_BENCH_REPS", v, 100000, n) && n > 0) {
      cfg.repetitions = static_cast<std::uint32_t>(n);
    }
  }
  if (const char* v = std::getenv("MTS_BENCH_SIM_TIME")) {
    if (parse_env_double("MTS_BENCH_SIM_TIME", v, d)) {
      cfg.base.sim_time = sim::Time::seconds(d);
    }
  }
  if (const char* v = std::getenv("MTS_BENCH_SPEEDS")) {
    auto speeds = parse_speeds(v);
    if (!speeds.empty()) cfg.speeds = std::move(speeds);
  }
  if (const char* v = std::getenv("MTS_BENCH_THREADS")) {
    if (parse_env_u64("MTS_BENCH_THREADS", v, 4096, n)) {
      cfg.threads = static_cast<unsigned>(n);  // 0 = hardware concurrency
    } else {
      std::cerr << "warning: MTS_BENCH_THREADS falling back to hardware "
                   "concurrency ("
                << std::max(1u, std::thread::hardware_concurrency())
                << " threads)\n";
      cfg.threads = 0;
    }
  }
  if (const char* v = std::getenv("MTS_BENCH_NODES")) {
    if (parse_env_u64("MTS_BENCH_NODES", v, 100000, n) && n >= 2) {
      cfg.base.node_count = static_cast<std::uint32_t>(n);
    }
  }
}

}  // namespace mts::harness
