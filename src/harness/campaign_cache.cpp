#include "harness/campaign_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/campaign_csv.hpp"
#include "sim/rng.hpp"

namespace mts::harness {

namespace {

bool cache_disabled() {
  const char* v = std::getenv("MTS_BENCH_NO_CACHE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

std::filesystem::path CampaignCache::directory() {
  if (const char* v = std::getenv("MTS_BENCH_CACHE_DIR")) {
    return std::filesystem::path(v);
  }
  return std::filesystem::path(".mts_bench_cache");
}

std::string CampaignCache::key_of(const CampaignConfig& cfg) {
  // Hash every result-affecting input.  Scenario knobs that the
  // ablation benches vary must be included or they would collide.
  std::ostringstream os;
  os << 'v' << csv::kVersion << '|' << cfg.repetitions << '|'
     << cfg.seed_base << '|' << cfg.base.node_count << '|'
     << cfg.base.sim_time.nanoseconds() << '|' << cfg.base.field.width << 'x'
     << cfg.base.field.height << '|' << cfg.base.min_speed << '|'
     << cfg.base.pause.nanoseconds() << '|' << cfg.base.radio_range << '|'
     << cfg.base.flow_count << '|' << cfg.base.min_flow_distance << '|'
     << cfg.base.tcp.segment_bytes << '|' << cfg.base.tcp.max_window << '|'
     << static_cast<int>(cfg.base.tcp.variant) << '|'
     << cfg.base.mts.max_paths << '|'
     << cfg.base.mts.check_period.nanoseconds() << '|'
     << cfg.base.mts.freshness_periods << '|'
     << cfg.base.mac.rts_threshold_bytes << '|'
     << cfg.base.channel.cs_range_factor << '|'
     << cfg.base.dsr.cache_expiry.nanoseconds() << '|'
     << cfg.base.aodv.active_route_timeout.nanoseconds() << '|'
     << cfg.base.aodv.local_repair << '|'
     << cfg.base.secrecy.enabled << ','
     << static_cast<int>(cfg.base.secrecy.key_bytes) << ','
     << cfg.base.secrecy.threshold << '|';
  for (Protocol p : cfg.protocols) os << static_cast<int>(p) << ';';
  os << '|';
  for (double s : cfg.speeds) os << s << ';';
  os << '|';
  for (const security::AdversarySpec& a : cfg.adversaries) {
    os << static_cast<int>(a.kind) << ',' << a.count << ',' << a.sniff_range
       << ',' << a.min_speed << ',' << a.max_speed << ','
       << a.pause.nanoseconds() << ',' << a.drop_prob << ','
       << a.active_window.nanoseconds() << ','
       << a.active_period.nanoseconds() << ',' << a.flood_rate << ','
       << a.flood_start.nanoseconds() << ',';
    for (net::NodeId m : a.members) os << m << '.';
    os << ';';
  }
  os << '|';
  for (const security::DefenseSpec& d : cfg.defenses) {
    os << static_cast<int>(d.kind) << ','
       << d.probe_period.nanoseconds() << ',' << d.ewma_alpha << ','
       << d.demote_threshold << ',' << d.min_probes << ',' << d.leash_slack
       << ',' << d.rreq_rate << ',' << d.rreq_burst << ';';
  }
  os << '|';
  for (const traffic::TrafficSpec& t : cfg.traffics) {
    os << t.enabled << ',' << t.gateway_count << ',' << t.user_pool << ','
       << t.session_rate << ',' << t.diurnal_bucket.nanoseconds() << ','
       << t.bulk_fraction << ',' << t.max_concurrent_flows << ',';
    for (double w : t.diurnal) os << w << '.';
    for (const traffic::ClassSpec* c : {&t.messaging, &t.bulk}) {
      os << ',' << c->min_flows << '-' << c->max_flows << '-'
         << c->min_segments << '-' << c->max_segments << '-' << c->think_min_s
         << '-' << c->think_max_s << '-' << c->uplink;
    }
    os << ';';
  }
  const std::uint64_t h = sim::splitmix64(sim::fnv1a(os.str()));
  std::ostringstream name;
  name << std::hex << h;
  return name.str();
}

std::optional<CampaignResult> CampaignCache::load(const CampaignConfig& cfg) {
  if (cache_disabled()) return std::nullopt;
  const auto path = directory() / (key_of(cfg) + ".csv");
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // Slurp the whole file: a store interrupted mid-write (power loss on a
  // filesystem that shortened the rename guarantee, a hand-truncated
  // export, ...) leaves a final line without its newline.  Requiring the
  // terminator catches a truncation at *any* byte offset of the last
  // row, including ones that would still split into a plausible cell
  // count.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty() || text.back() != '\n') return std::nullopt;
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line)) return std::nullopt;
  // The header fixes the row width: a v9 file whose last row truncated
  // down to a valid *older* width must not sneak through as that older
  // version.
  const auto cells = csv::header_cells(line);
  if (!cells.has_value()) return std::nullopt;
  CampaignResult result;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto m = csv::parse_row(line, *cells);
    if (!m.has_value()) return std::nullopt;  // corrupt: full miss
    result.add(std::move(*m));
    ++rows;
  }
  const std::size_t expected = cfg.protocols.size() * cfg.speeds.size() *
                               cfg.adversaries.size() * cfg.defenses.size() *
                               cfg.traffics.size() * cfg.repetitions;
  if (rows != expected) return std::nullopt;
  return result;
}

void CampaignCache::store(const CampaignConfig& cfg,
                          const CampaignResult& result) {
  if (cache_disabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory(), ec);
  if (ec) return;
  const auto path = directory() / (key_of(cfg) + ".csv");
  // Crash safety: write the whole file beside the target, then rename.
  // A campaign killed mid-store leaves at worst a stale .tmp (swept by
  // the fabric supervisor), never a half-written cache entry that a
  // later run would have to distrust.
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    csv::write_campaign(out, cfg, result);
    out.flush();
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

CampaignResult CampaignCache::run(const CampaignConfig& cfg,
                                  std::ostream* progress) {
  if (auto cached = load(cfg)) {
    if (progress != nullptr) {
      (*progress) << "  [campaign cache hit: " << cached->total_runs()
                  << " runs]\n";
    }
    return std::move(*cached);
  }
  CampaignResult result = run_campaign(cfg, progress);
  store(cfg, result);
  return result;
}

}  // namespace mts::harness
