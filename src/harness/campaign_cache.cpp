#include "harness/campaign_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "sim/rng.hpp"

namespace mts::harness {

namespace {

constexpr int kCacheVersion = 8;

bool cache_disabled() {
  const char* v = std::getenv("MTS_BENCH_NO_CACHE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::filesystem::path cache_dir() {
  if (const char* v = std::getenv("MTS_BENCH_CACHE_DIR")) {
    return std::filesystem::path(v);
  }
  return std::filesystem::path(".mts_bench_cache");
}

/// The CSV column set: one row per run, order matters.  v8 inserts the
/// five secrecy-game columns after the defense block; the members list
/// stays last for the trailing-sentinel logic below.
constexpr const char* kHeader =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
    "adv_members";

/// Older column sets are still parsed, with the later metrics zeroed.
/// Note the version is part of the hashed cache *key*, so old cache
/// files are not found automatically; this path serves hand-kept or
/// migrated CSVs (the store format doubles as a user-facing export) and
/// the checked-in compatibility fixtures.  v6 added the four
/// active-attack columns; v7 added the eight defense columns; v8 added
/// the five secrecy-game columns.
constexpr const char* kHeaderV7 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "adv_members";
constexpr const char* kHeaderV6 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,adv_members";

constexpr const char* kHeaderV5 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_members";

constexpr std::size_t kCellsV8 = 51;
constexpr std::size_t kCellsV7 = 46;
constexpr std::size_t kCellsV6 = 38;
constexpr std::size_t kCellsV5 = 34;

void write_row(std::ostream& os, const RunMetrics& m) {
  // Round-trip exactly: the cache's contract is bit-for-bit replay, and
  // the default 6 significant digits would truncate every double.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << static_cast<int>(m.protocol) << ',' << m.max_speed << ',' << m.seed
     << ',' << m.participating_nodes << ',' << m.relay_stddev << ','
     << m.alpha << ',' << m.max_beta << ',' << m.highest_interception_ratio
     << ',' << m.pe << ',' << m.pr << ',' << m.interception_ratio << ','
     << m.avg_delay_s << ',' << m.throughput_seg_s << ','
     << m.throughput_kbps << ',' << m.delivery_rate << ','
     << m.segments_delivered << ',' << m.data_packets_sent << ','
     << m.retransmits << ',' << m.timeouts << ',' << m.acks_sent << ','
     << m.acks_received << ',' << m.eavesdropper << ',' << m.control_packets
     << ',' << m.route_switches << ',' << m.checks_sent << ','
     << m.events_executed << ',' << m.adversary_index << ','
     << static_cast<int>(m.adversary_kind) << ',' << m.adversary_count << ','
     << m.coalition_captured << ',' << m.coalition_interception_ratio << ','
     << m.fragments_missing << ',' << m.blackhole_absorbed << ','
     << m.wormhole_tunneled << ',' << m.grayhole_absorbed << ','
     << m.endpoint_inference_accuracy << ',' << m.flood_injected << ','
     << m.defense_index << ',' << static_cast<int>(m.defense_kind) << ','
     << m.detection_time_s << ',' << m.paths_quarantined << ','
     << m.recovery_time_s << ',' << m.false_positive_rate << ','
     << m.flood_suppressed << ',' << m.probes_sent << ','
     << m.secrecy_shares << ',' << m.secrecy_threshold << ','
     << m.shares_captured << ',' << m.keys_recovered << ','
     << m.key_recovery_rate << ',';
  // '-' sentinel keeps the empty-members cell from being eaten by the
  // trailing-delimiter behaviour of getline-based parsing.
  if (m.adversary_members.empty()) {
    os << '-';
  } else {
    for (net::NodeId id : m.adversary_members) os << id << '.';
  }
  os << '\n';
}

std::optional<RunMetrics> parse_row(const std::string& line) {
  std::stringstream ss(line);
  std::string cell;
  std::vector<std::string> cells;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (cells.size() != kCellsV8 && cells.size() != kCellsV7 &&
      cells.size() != kCellsV6 && cells.size() != kCellsV5) {
    return std::nullopt;
  }
  try {
    RunMetrics m;
    std::size_t i = 0;
    m.protocol = static_cast<Protocol>(std::stoi(cells[i++]));
    m.max_speed = std::stod(cells[i++]);
    m.seed = std::stoull(cells[i++]);
    m.participating_nodes = std::stoull(cells[i++]);
    m.relay_stddev = std::stod(cells[i++]);
    m.alpha = std::stoull(cells[i++]);
    m.max_beta = std::stoull(cells[i++]);
    m.highest_interception_ratio = std::stod(cells[i++]);
    m.pe = std::stoull(cells[i++]);
    m.pr = std::stoull(cells[i++]);
    m.interception_ratio = std::stod(cells[i++]);
    m.avg_delay_s = std::stod(cells[i++]);
    m.throughput_seg_s = std::stod(cells[i++]);
    m.throughput_kbps = std::stod(cells[i++]);
    m.delivery_rate = std::stod(cells[i++]);
    m.segments_delivered = std::stoull(cells[i++]);
    m.data_packets_sent = std::stoull(cells[i++]);
    m.retransmits = std::stoull(cells[i++]);
    m.timeouts = std::stoull(cells[i++]);
    m.acks_sent = std::stoull(cells[i++]);
    m.acks_received = std::stoull(cells[i++]);
    m.eavesdropper = static_cast<net::NodeId>(std::stoul(cells[i++]));
    m.control_packets = std::stoull(cells[i++]);
    m.route_switches = std::stoull(cells[i++]);
    m.checks_sent = std::stoull(cells[i++]);
    m.events_executed = std::stoull(cells[i++]);
    m.adversary_index = static_cast<std::uint32_t>(std::stoul(cells[i++]));
    m.adversary_kind =
        static_cast<security::AdversaryKind>(std::stoi(cells[i++]));
    m.adversary_count = static_cast<std::uint32_t>(std::stoul(cells[i++]));
    m.coalition_captured = std::stoull(cells[i++]);
    m.coalition_interception_ratio = std::stod(cells[i++]);
    m.fragments_missing = std::stoull(cells[i++]);
    m.blackhole_absorbed = std::stoull(cells[i++]);
    if (cells.size() >= kCellsV6) {
      m.wormhole_tunneled = std::stoull(cells[i++]);
      m.grayhole_absorbed = std::stoull(cells[i++]);
      m.endpoint_inference_accuracy = std::stod(cells[i++]);
      m.flood_injected = std::stoull(cells[i++]);
    }  // v5 rows: active-attack metrics stay zero
    if (cells.size() >= kCellsV7) {
      m.defense_index = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.defense_kind =
          static_cast<security::DefenseKind>(std::stoi(cells[i++]));
      m.detection_time_s = std::stod(cells[i++]);
      m.paths_quarantined = std::stoull(cells[i++]);
      m.recovery_time_s = std::stod(cells[i++]);
      m.false_positive_rate = std::stod(cells[i++]);
      m.flood_suppressed = std::stoull(cells[i++]);
      m.probes_sent = std::stoull(cells[i++]);
    }  // v5/v6 rows: defense metrics stay zero
    if (cells.size() >= kCellsV8) {
      m.secrecy_shares = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.secrecy_threshold = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.shares_captured = std::stoull(cells[i++]);
      m.keys_recovered = std::stoull(cells[i++]);
      m.key_recovery_rate = std::stod(cells[i++]);
    }  // v5/v6/v7 rows: the secrecy game did not exist — metrics stay zero
    if (cells[i] != "-") {
      std::stringstream ms(cells[i]);
      std::string id;
      while (std::getline(ms, id, '.')) {
        if (!id.empty()) {
          m.adversary_members.push_back(
              static_cast<net::NodeId>(std::stoul(id)));
        }
      }
    }
    ++i;
    return m;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::string CampaignCache::key_of(const CampaignConfig& cfg) {
  // Hash every result-affecting input.  Scenario knobs that the
  // ablation benches vary must be included or they would collide.
  std::ostringstream os;
  os << 'v' << kCacheVersion << '|' << cfg.repetitions << '|'
     << cfg.seed_base << '|' << cfg.base.node_count << '|'
     << cfg.base.sim_time.nanoseconds() << '|' << cfg.base.field.width << 'x'
     << cfg.base.field.height << '|' << cfg.base.min_speed << '|'
     << cfg.base.pause.nanoseconds() << '|' << cfg.base.radio_range << '|'
     << cfg.base.flow_count << '|' << cfg.base.min_flow_distance << '|'
     << cfg.base.tcp.segment_bytes << '|' << cfg.base.tcp.max_window << '|'
     << static_cast<int>(cfg.base.tcp.variant) << '|'
     << cfg.base.mts.max_paths << '|'
     << cfg.base.mts.check_period.nanoseconds() << '|'
     << cfg.base.mts.freshness_periods << '|'
     << cfg.base.mac.rts_threshold_bytes << '|'
     << cfg.base.channel.cs_range_factor << '|'
     << cfg.base.dsr.cache_expiry.nanoseconds() << '|'
     << cfg.base.aodv.active_route_timeout.nanoseconds() << '|'
     << cfg.base.aodv.local_repair << '|'
     << cfg.base.secrecy.enabled << ','
     << static_cast<int>(cfg.base.secrecy.key_bytes) << ','
     << cfg.base.secrecy.threshold << '|';
  for (Protocol p : cfg.protocols) os << static_cast<int>(p) << ';';
  os << '|';
  for (double s : cfg.speeds) os << s << ';';
  os << '|';
  for (const security::AdversarySpec& a : cfg.adversaries) {
    os << static_cast<int>(a.kind) << ',' << a.count << ',' << a.sniff_range
       << ',' << a.min_speed << ',' << a.max_speed << ','
       << a.pause.nanoseconds() << ',' << a.drop_prob << ','
       << a.active_window.nanoseconds() << ','
       << a.active_period.nanoseconds() << ',' << a.flood_rate << ','
       << a.flood_start.nanoseconds() << ',';
    for (net::NodeId m : a.members) os << m << '.';
    os << ';';
  }
  os << '|';
  for (const security::DefenseSpec& d : cfg.defenses) {
    os << static_cast<int>(d.kind) << ','
       << d.probe_period.nanoseconds() << ',' << d.ewma_alpha << ','
       << d.demote_threshold << ',' << d.min_probes << ',' << d.leash_slack
       << ',' << d.rreq_rate << ',' << d.rreq_burst << ';';
  }
  const std::uint64_t h = sim::splitmix64(sim::fnv1a(os.str()));
  std::ostringstream name;
  name << std::hex << h;
  return name.str();
}

std::optional<CampaignResult> CampaignCache::load(const CampaignConfig& cfg) {
  if (cache_disabled()) return std::nullopt;
  const auto path = cache_dir() / (key_of(cfg) + ".csv");
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) ||
      (line != kHeader && line != kHeaderV7 && line != kHeaderV6 &&
       line != kHeaderV5)) {
    return std::nullopt;
  }
  CampaignResult result;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto m = parse_row(line);
    if (!m.has_value()) return std::nullopt;  // corrupt: full miss
    result.add(std::move(*m));
    ++rows;
  }
  const std::size_t expected = cfg.protocols.size() * cfg.speeds.size() *
                               cfg.adversaries.size() * cfg.defenses.size() *
                               cfg.repetitions;
  if (rows != expected) return std::nullopt;
  return result;
}

void CampaignCache::store(const CampaignConfig& cfg,
                          const CampaignResult& result) {
  if (cache_disabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (ec) return;
  const auto path = cache_dir() / (key_of(cfg) + ".csv");
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << kHeader << '\n';
  for (Protocol p : cfg.protocols) {
    for (double s : cfg.speeds) {
      for (std::uint32_t a = 0;
           a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
        for (std::uint32_t d = 0;
             d < static_cast<std::uint32_t>(cfg.defenses.size()); ++d) {
          for (const RunMetrics& m : result.runs(p, s, a, d)) {
            write_row(out, m);
          }
        }
      }
    }
  }
}

CampaignResult CampaignCache::run(const CampaignConfig& cfg,
                                  std::ostream* progress) {
  if (auto cached = load(cfg)) {
    if (progress != nullptr) {
      (*progress) << "  [campaign cache hit: " << cached->total_runs()
                  << " runs]\n";
    }
    return std::move(*cached);
  }
  CampaignResult result = run_campaign(cfg, progress);
  store(cfg, result);
  return result;
}

}  // namespace mts::harness
