#include "harness/shard_store.hpp"

#include <fstream>
#include <sstream>

#include "harness/campaign_cache.hpp"
#include "harness/campaign_csv.hpp"

namespace mts::harness {

std::filesystem::path ShardStore::dir_for(const CampaignConfig& cfg) {
  return CampaignCache::directory() / "shards" / CampaignCache::key_of(cfg);
}

std::filesystem::path ShardStore::path_of(const WorkUnit& unit) const {
  std::ostringstream name;
  name << "unit-" << std::hex << unit.id << ".csv";
  return dir_ / name.str();
}

bool ShardStore::prepare() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm;
      std::filesystem::remove(entry.path(), rm);
    }
  }
  return !ec;
}

bool ShardStore::write(const WorkUnit& unit,
                       const std::vector<RunMetrics>& rows,
                       std::string* error) const {
  const auto path = path_of(unit);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    out << csv::kHeader << '\n';
    for (const RunMetrics& m : rows) csv::write_row(out, m);
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write failed on " + tmp;
      std::error_code ec;
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) *error = "rename failed: " + ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

ShardStore::State ShardStore::read(const WorkUnit& unit,
                                   std::vector<RunMetrics>& out) const {
  const auto path = path_of(unit);
  std::ifstream in(path, std::ios::binary);
  if (!in) return State::kMissing;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<RunMetrics> rows;
  bool valid = !text.empty() && text.back() == '\n';
  if (valid) {
    std::istringstream lines(text);
    std::string line;
    // Shards are always written at the current version; an old-format
    // shard means an old binary's partition and must be re-run.
    valid = std::getline(lines, line) && line == csv::kHeader;
    while (valid && std::getline(lines, line)) {
      if (line.empty()) continue;
      auto m = csv::parse_row(line, csv::kCellsV10);
      if (!m.has_value()) {
        valid = false;
        break;
      }
      rows.push_back(std::move(*m));
    }
  }
  if (!valid || rows.size() != unit.total_runs()) {
    // Truncated / corrupt / wrong shape: delete so the supervisor
    // schedules the unit as missing instead of tripping on it forever.
    remove(unit);
    return State::kMissing;
  }
  for (const RunMetrics& m : rows) {
    if (m.run_status != RunStatus::kOk) {
      out = std::move(rows);
      return State::kFailed;
    }
  }
  out = std::move(rows);
  return State::kOk;
}

void ShardStore::remove(const WorkUnit& unit) const {
  std::error_code ec;
  std::filesystem::remove(path_of(unit), ec);
}

}  // namespace mts::harness
