#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace mts::harness {

/// Serialized progress output for parallel sweeps.
///
/// Campaign workers (threads in-process, the supervisor's reaper in
/// fabric mode) all report through one of these: each `line` call
/// formats privately and takes the mutex only for the single write, so
/// lines never interleave however many workers are running.  A null
/// stream turns the sink into a no-op, which keeps call sites free of
/// `if (progress)` checks.
class ProgressSink {
 public:
  explicit ProgressSink(std::ostream* os) : os_(os) {}

  [[nodiscard]] bool enabled() const { return os_ != nullptr; }

  /// Writes `text` as one line (terminator supplied here), atomically
  /// with respect to every other `line` call on this sink.
  void line(const std::string& text) {
    if (os_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    (*os_) << text << '\n' << std::flush;
  }

  /// `line` with the fabric's "[unit k/N]" prefix so interleaved unit
  /// lifecycles stay attributable in a sweep log.
  void unit_line(std::size_t k, std::size_t n, const std::string& text) {
    std::ostringstream os;
    os << "  [unit " << k << '/' << n << "] " << text;
    line(os.str());
  }

 private:
  std::mutex mu_;
  std::ostream* os_;
};

}  // namespace mts::harness
