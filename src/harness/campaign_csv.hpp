#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>

#include "harness/campaign.hpp"

namespace mts::harness::csv {

/// The campaign CSV column machinery, shared by the disk cache
/// (`CampaignCache`), the fabric's per-unit shard files and the
/// `--csv-out` export: one row per run, columns versioned v5..v10.
///
/// v10 (current) inserts the user-traffic block — `tra_index`, session
/// counts and the per-class percentile/exposure columns — between the
/// secrecy block and the v9 fabric columns
/// (`run_status,run_attempts,run_error`); the members list stays last
/// so getline-based parsing never eats a trailing empty cell.  Older
/// headers/widths are still parsed with the later metrics zeroed — the
/// compatibility story `docs/metrics.md` documents and
/// `tests/integration/campaign_cache_test.cpp` pins.
inline constexpr int kVersion = 10;

inline constexpr const char* kHeader =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
    "tra_index,tra_sessions,tra_completed,tra_msg_flows,tra_msg_p50_ms,"
    "tra_msg_p95_ms,tra_msg_p99_ms,tra_msg_goodput,tra_msg_exposure,"
    "tra_bulk_flows,tra_bulk_p50_ms,tra_bulk_p95_ms,tra_bulk_p99_ms,"
    "tra_bulk_goodput,tra_bulk_exposure,"
    "run_status,run_attempts,run_error,adv_members";

inline constexpr const char* kHeaderV9 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
    "run_status,run_attempts,run_error,adv_members";

inline constexpr const char* kHeaderV8 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
    "adv_members";

inline constexpr const char* kHeaderV7 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
    "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
    "adv_members";

inline constexpr const char* kHeaderV6 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
    "adv_endpoint_acc,adv_flood_injected,adv_members";

inline constexpr const char* kHeaderV5 =
    "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
    "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
    "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
    "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
    "adv_ri,adv_missing,adv_absorbed,adv_members";

inline constexpr std::size_t kCellsV10 = 69;
inline constexpr std::size_t kCellsV9 = 54;
inline constexpr std::size_t kCellsV8 = 51;
inline constexpr std::size_t kCellsV7 = 46;
inline constexpr std::size_t kCellsV6 = 38;
inline constexpr std::size_t kCellsV5 = 34;

/// Cell count for a recognized header line; nullopt for anything else.
std::optional<std::size_t> header_cells(const std::string& header);

/// Writes one v10 row (doubles at max_digits10 so a round-trip is exact).
void write_row(std::ostream& os, const RunMetrics& m);

/// Parses one row of exactly `expected_cells` cells (one of the kCells*
/// widths, normally from `header_cells`); metrics newer than the row's
/// width default to zero.  nullopt on any malformed cell — callers
/// treat that as corruption, never crash.
std::optional<RunMetrics> parse_row(const std::string& line,
                                    std::size_t expected_cells);

/// Collapses an arbitrary error message into a single CSV cell: commas,
/// newlines and CRs become spaces, empty becomes the '-' sentinel.
std::string sanitize_error(const std::string& msg);

/// Writes the whole campaign (v10 header + one row per run, grid order:
/// protocol-major, then speed, adversary, defense, traffic, repetition)
/// — the cache store format, doubling as the `--csv-out` user export.
void write_campaign(std::ostream& os, const CampaignConfig& cfg,
                    const CampaignResult& result);

}  // namespace mts::harness::csv
