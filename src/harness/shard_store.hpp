#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "harness/work_unit.hpp"

namespace mts::harness {

/// Per-unit shard files: the fabric's durable state.
///
/// Each worker writes its unit's rows as one v9 CSV (`unit-<idhex>.csv`)
/// in the campaign's shard directory — via a temp file and an atomic
/// rename, so a shard either exists complete or not at all; a worker
/// killed mid-write leaves only a `.tmp` the next supervisor sweeps
/// away.  The directory is keyed by the campaign's cache key, so a
/// config change can never resume from foreign shards.
class ShardStore {
 public:
  /// What scanning a unit's shard found.
  enum class State {
    kMissing,  ///< no shard (or an invalid one, now deleted): schedule it
    kOk,       ///< complete, all rows ok: ingest, skip the unit
    kFailed,   ///< complete but holds failed placeholder rows: reschedule
  };

  explicit ShardStore(std::filesystem::path dir) : dir_(std::move(dir)) {}

  /// Shard directory for a campaign, under the cache root:
  /// `<cache>/shards/<campaign key>`.
  static std::filesystem::path dir_for(const CampaignConfig& cfg);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  [[nodiscard]] std::filesystem::path path_of(const WorkUnit& unit) const;

  /// Creates the directory and removes stale `.tmp` leftovers of
  /// workers that died mid-write.  Returns false if the directory
  /// cannot be created.
  bool prepare();

  /// Atomically persists a unit's rows (temp + rename).  Returns false
  /// on any I/O failure; `error` then holds a description.
  bool write(const WorkUnit& unit, const std::vector<RunMetrics>& rows,
             std::string* error) const;

  /// Validates and loads a unit's shard.  A shard is complete when it
  /// carries the v9 header, every row parses, the final line ends in a
  /// newline, and the row count equals the unit's run count; a
  /// truncated final line (mid-write kill on a filesystem without the
  /// rename guarantee) or any other corruption deletes the file and
  /// reports kMissing so the supervisor simply re-runs the unit.
  State read(const WorkUnit& unit, std::vector<RunMetrics>& out) const;

  /// Deletes a unit's shard (used before re-running a failed unit).
  void remove(const WorkUnit& unit) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace mts::harness
