#include "harness/work_unit.hpp"

#include <sstream>

#include "harness/campaign_cache.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace mts::harness {

std::vector<WorkUnit> partition_campaign(const CampaignConfig& cfg,
                                         std::size_t cells_per_unit) {
  sim::require_config(!cfg.protocols.empty() && !cfg.speeds.empty(),
                      "Fabric: empty protocol or speed axis");
  sim::require_config(!cfg.adversaries.empty() && !cfg.defenses.empty(),
                      "Fabric: adversaries/defenses list empty "
                      "(use a kNone spec)");
  sim::require_config(!cfg.traffics.empty(),
                      "Fabric: traffics list empty (use a disabled spec)");
  if (cells_per_unit == 0) cells_per_unit = 1;
  // The id namespace is the campaign itself: units of different
  // campaigns can never be confused even if a shard directory is
  // (mis)shared.
  const std::uint64_t campaign_hash =
      sim::fnv1a(CampaignCache::key_of(cfg));
  std::vector<WorkUnit> units;
  WorkUnit current;
  std::uint32_t ordinal = 0;
  auto flush = [&](std::uint32_t first_ordinal) {
    if (current.cells.empty()) return;
    current.index = static_cast<std::uint32_t>(units.size());
    current.id = sim::splitmix64(
        campaign_hash ^ sim::splitmix64(first_ordinal) ^
        sim::splitmix64(static_cast<std::uint64_t>(current.cells.size())
                        << 32));
    units.push_back(std::move(current));
    current = WorkUnit{};
  };
  std::uint32_t batch_first = 0;
  for (std::uint32_t p = 0; p < cfg.protocols.size(); ++p) {
    for (std::uint32_t s = 0; s < cfg.speeds.size(); ++s) {
      for (std::uint32_t a = 0; a < cfg.adversaries.size(); ++a) {
        for (std::uint32_t d = 0; d < cfg.defenses.size(); ++d) {
          for (std::uint32_t t = 0; t < cfg.traffics.size(); ++t) {
            if (current.cells.empty()) batch_first = ordinal;
            current.cells.push_back(
                WorkCell{p, s, a, d, t, 0, cfg.repetitions});
            if (current.cells.size() >= cells_per_unit) flush(batch_first);
            ++ordinal;
          }
        }
      }
    }
  }
  flush(batch_first);
  return units;
}

std::string work_unit_label(const CampaignConfig& cfg, const WorkUnit& unit,
                            std::size_t unit_count) {
  std::ostringstream os;
  os << "unit " << (unit.index + 1) << '/' << unit_count << ':';
  for (const WorkCell& c : unit.cells) {
    os << ' ' << protocol_name(cfg.protocols[c.protocol])
       << " speed=" << cfg.speeds[c.speed] << " adversary=" << c.adversary
       << " defense=" << c.defense << " traffic=" << c.traffic << " reps "
       << c.rep_begin << ".." << (c.rep_end == 0 ? 0 : c.rep_end - 1) << ';';
  }
  return os.str();
}

std::string encode_work_unit(const WorkUnit& unit) {
  std::ostringstream os;
  os << "wu2|" << std::hex << unit.id << std::dec << '|' << unit.index << '|';
  for (const WorkCell& c : unit.cells) {
    os << c.protocol << ':' << c.speed << ':' << c.adversary << ':'
       << c.defense << ':' << c.traffic << ':' << c.rep_begin << ':'
       << c.rep_end << ';';
  }
  return os.str();
}

std::optional<WorkUnit> decode_work_unit(const std::string& text) {
  std::istringstream is(text);
  std::string field;
  if (!std::getline(is, field, '|') || field != "wu2") return std::nullopt;
  WorkUnit unit;
  try {
    if (!std::getline(is, field, '|')) return std::nullopt;
    unit.id = std::stoull(field, nullptr, 16);
    if (!std::getline(is, field, '|')) return std::nullopt;
    unit.index = static_cast<std::uint32_t>(std::stoul(field));
    if (!std::getline(is, field, '|')) return std::nullopt;
    std::istringstream cells(field);
    std::string cell;
    while (std::getline(cells, cell, ';')) {
      if (cell.empty()) continue;
      std::istringstream cs(cell);
      std::string n;
      std::uint32_t v[7];
      for (std::uint32_t& slot : v) {
        if (!std::getline(cs, n, ':')) return std::nullopt;
        slot = static_cast<std::uint32_t>(std::stoul(n));
      }
      if (std::getline(cs, n, ':')) return std::nullopt;  // trailing junk
      if (v[6] < v[5]) return std::nullopt;
      unit.cells.push_back(WorkCell{v[0], v[1], v[2], v[3], v[4], v[5], v[6]});
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (unit.cells.empty()) return std::nullopt;
  return unit;
}

ScenarioConfig cell_scenario(const CampaignConfig& cfg, const WorkCell& cell,
                             std::uint32_t rep) {
  sim::require_config(cell.protocol < cfg.protocols.size() &&
                          cell.speed < cfg.speeds.size() &&
                          cell.adversary < cfg.adversaries.size() &&
                          cell.defense < cfg.defenses.size() &&
                          cell.traffic < cfg.traffics.size(),
                      "Fabric: work cell indexes outside the campaign grid "
                      "(stale unit spec for a different config?)");
  ScenarioConfig sc = cfg.base;
  sc.protocol = cfg.protocols[cell.protocol];
  sc.max_speed = cfg.speeds[cell.speed];
  // Same seed across protocols/adversaries/defenses/traffics for a given
  // (speed, rep): paired comparisons see identical mobility and flow
  // placement, exactly like the in-process pool.
  sc.seed = cfg.seed_base + rep;
  sc.adversary = cfg.adversaries[cell.adversary];
  sc.defense = cfg.defenses[cell.defense];
  sc.traffic = cfg.traffics[cell.traffic];
  return sc;
}

RunMetrics failed_run_metrics(const CampaignConfig& cfg, const WorkCell& cell,
                              std::uint32_t rep, std::uint32_t attempts,
                              const std::string& error) {
  RunMetrics m;
  m.protocol = cfg.protocols[cell.protocol];
  m.max_speed = cfg.speeds[cell.speed];
  m.seed = cfg.seed_base + rep;
  m.adversary_index = cell.adversary;
  m.adversary_kind = cfg.adversaries[cell.adversary].kind;
  m.adversary_count = cfg.adversaries[cell.adversary].count;
  m.defense_index = cell.defense;
  m.defense_kind = cfg.defenses[cell.defense].kind;
  m.traffic_index = cell.traffic;
  m.run_status = RunStatus::kFailed;
  m.attempts = attempts;
  m.run_error = error;
  return m;
}

}  // namespace mts::harness
