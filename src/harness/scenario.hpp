#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mts.hpp"
#include "mac/mac80211.hpp"
#include "phy/fading.hpp"
#include "routing/smr/smr.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/trace.hpp"
#include "phy/channel.hpp"
#include "routing/aodv/aodv.hpp"
#include "routing/dsr/dsr.hpp"
#include "security/adversary.hpp"
#include "security/defense/defense.hpp"
#include "security/keyshare.hpp"
#include "tcp/flow_stats.hpp"
#include "tcp/tcp_config.hpp"
#include "traffic/traffic.hpp"

namespace mts::harness {

/// kSmr is the related-work baseline (Lee/Gerla's Split Multipath
/// Routing, the paper's reference [6]) used by the `ext_smr_tcp` bench;
/// the paper's own evaluation compares DSR, AODV and MTS.
enum class Protocol : std::uint8_t { kDsr, kAodv, kMts, kSmr };

const char* protocol_name(Protocol p);

/// One TCP connection in the scenario.
struct FlowSpec {
  net::NodeId src = 0;
  net::NodeId dst = 1;
  sim::Time start = sim::Time::sec(1);
};

/// The paper's simulation environment (§IV-A) plus the knobs the
/// extension/ablation benches vary.  Defaults reproduce the paper.
struct ScenarioConfig {
  /// The paper does not state the TCP window.  8 segments ~ the
  /// delay-bandwidth product of a 2-4 hop path at 2 Mb/s; ns-2's
  /// window_=20 default over-drives the channel into a MAC-failure
  /// regime whose churn drowns the routing-level contrasts the paper
  /// reports.
  ScenarioConfig() { tcp.max_window = 8; }

  std::uint32_t node_count = 50;
  mobility::Field field{1000.0, 1000.0};
  double max_speed = 2.0;   ///< the paper's MAXSPEED
  double min_speed = 0.1;
  sim::Time pause = sim::Time::sec(1);
  sim::Time sim_time = sim::Time::sec(200);
  double radio_range = 250.0;
  Protocol protocol = Protocol::kMts;
  std::uint64_t seed = 1;

  /// Number of TCP flows with random distinct endpoints (paper: one TCP
  /// Reno session).  Ignored when `explicit_flows` is non-empty.
  std::uint32_t flow_count = 1;
  std::vector<FlowSpec> explicit_flows;
  /// Minimum initial src-dst separation for randomly drawn flows.  The
  /// paper does not state how endpoints were picked, but Table I's relay
  /// volume (~150 relays/s) implies a multihop session; 400 m (>= 2
  /// hops at a 250 m range) reproduces that regime.  Set to 0 for fully
  /// uniform pairs.
  double min_flow_distance = 400.0;

  /// Randomly chosen intermediate node sniffing all decodable frames.
  bool eavesdropper_enabled = true;

  /// Optional adversary model beyond the paper's single eavesdropper:
  /// colluding coalitions, mobile sniffers, traffic-analysis profilers,
  /// insider blackholes/grayholes, wormhole tunnels, or RREQ floods.
  /// `kNone` (the default) reproduces the paper's threat model exactly.
  /// Passive adversaries (colluding/mobile/traffic) are pure observers —
  /// enabling one changes no packet-level behaviour; the others are
  /// active by design.
  security::AdversarySpec adversary;

  /// Optional countermeasure model (`src/security/defense`): end-to-end
  /// acked checking for MTS, wormhole leashes, routing-layer RREQ rate
  /// limiting, or the full suite.  `kNone` (the default) runs the stock
  /// protocols — the configuration every pre-defense fingerprint pins.
  security::DefenseSpec defense;

  /// Optional threshold-secret-sharing secrecy game
  /// (`src/security/keyshare`): each flow's session key is Shamir-split
  /// across the protocol's disjoint paths and adversary pools score
  /// *key recovery* from real wire bytes, not fragment counts.
  /// Disabled (the default) adds no state at all — every pre-existing
  /// fingerprint runs with no plane.
  security::SecrecySpec secrecy;

  /// Optional user-traffic plane (`src/traffic`): session-level workload
  /// on gateway/attachment nodes with per-class percentile metrics.
  /// Disabled (the default) constructs nothing and draws nothing — every
  /// pre-existing fingerprint replays bit-identical.
  traffic::TrafficSpec traffic;

  /// Fixed node placement instead of random waypoint (tests, examples).
  /// Non-empty => static topology; must have node_count entries.
  std::vector<mobility::Vec2> static_positions;

  /// Optional slow-fading channel (paper §III-D motivates the checking
  /// period by the fading/shadowing coherence time; the unit disk can't
  /// express that).  Off = pure 250 m disk, as the headline figures use.
  bool fading_enabled = false;
  phy::FadingConfig fading;

  tcp::TcpConfig tcp;
  mac::MacConfig mac;
  core::MtsConfig mts;
  routing::aodv::AodvConfig aodv;
  routing::dsr::DsrConfig dsr;
  routing::smr::SmrConfig smr;
  phy::ChannelConfig channel;
};

/// Outcome of a run as the campaign fabric records it.  In-process runs
/// are always `kOk` (a trap propagates); under the process-isolated
/// supervisor a unit that exhausts its retries is written into the
/// merged CSV as `kFailed` placeholder rows so the sweep completes and
/// the failure stays visible instead of silently shrinking the grid.
enum class RunStatus : std::uint8_t { kOk = 0, kFailed = 1 };

const char* run_status_name(RunStatus s);

/// Everything a single run produces; aggregation happens in `campaign`.
struct RunMetrics {
  Protocol protocol = Protocol::kMts;
  double max_speed = 0.0;
  std::uint64_t seed = 0;

  // --- security (paper §IV-B) -----------------------------------------
  std::size_t participating_nodes = 0;   ///< Fig. 5
  double relay_stddev = 0.0;             ///< Fig. 6 (Eqs. 2-4)
  std::uint64_t alpha = 0;               ///< Σ β_i (Table I)
  std::uint64_t max_beta = 0;
  double highest_interception_ratio = 0.0;  ///< Fig. 7
  std::uint64_t pe = 0;                  ///< eavesdropped segments
  std::uint64_t pr = 0;                  ///< delivered segments
  double interception_ratio = 0.0;       ///< Eq. 1 (extension bench)
  net::NodeId eavesdropper = net::kNoNode;
  std::vector<std::pair<net::NodeId, std::uint64_t>> betas;  ///< Table I rows

  // --- adversary (extension: coalition/mobile/blackhole sweeps) ---------
  /// Index into `CampaignConfig::adversaries` (0 outside campaigns).
  std::uint32_t adversary_index = 0;
  security::AdversaryKind adversary_kind = security::AdversaryKind::kNone;
  std::uint32_t adversary_count = 0;          ///< coalition/attacker size
  std::uint64_t coalition_captured = 0;       ///< pooled distinct segments
  double coalition_interception_ratio = 0.0;  ///< pooled Pe / Pr
  /// Segments the coalition still lacks to reconstruct the delivered
  /// stream — the "fragments-to-reconstruct" distance.
  std::uint64_t fragments_missing = 0;
  /// Data packets deliberately eaten by an insider attacker of any kind
  /// (blackhole absorption, grayhole absorption, wormhole tunnel drops).
  std::uint64_t blackhole_absorbed = 0;
  std::vector<net::NodeId> adversary_members;

  // --- active-attack metrics (wormhole/grayhole/traffic/flood) ----------
  /// Frames replayed through the wormhole's out-of-band tunnel.
  std::uint64_t wormhole_tunneled = 0;
  /// Data packets the grayhole's probabilistic/time-windowed veto ate
  /// (isolated from blackhole_absorbed so the sweep can contrast them).
  std::uint64_t grayhole_absorbed = 0;
  /// kTrafficAnalysis: fraction of flows whose (src, dst) the metadata
  /// profiler guessed exactly.
  double endpoint_inference_accuracy = 0.0;
  /// Forged route discoveries injected by kRreqFlood.
  std::uint64_t flood_injected = 0;

  // --- secrecy game (keyshare plane, CSV v8) -----------------------------
  /// Shares each flow's session key is split into (0 = game off).
  std::uint32_t secrecy_shares = 0;
  /// Shares needed to reconstruct a key (t of n).
  std::uint32_t secrecy_threshold = 0;
  /// Distinct (flow, share) pairs the adversary pool parsed out of
  /// captured wire images.
  std::uint64_t shares_captured = 0;
  /// Flows whose session key the coalition actually reconstructed
  /// (reconstruction must equal the true key byte-for-byte).
  std::uint64_t keys_recovered = 0;
  /// keys_recovered / flows — the headline key-recovery rate.
  double key_recovery_rate = 0.0;

  // --- defense (countermeasure subsystem, CSV v7) ------------------------
  /// Index into `CampaignConfig::defenses` (0 outside campaigns).
  std::uint32_t defense_index = 0;
  security::DefenseKind defense_kind = security::DefenseKind::kNone;
  /// Sim time (seconds) of the first quarantine/suppression; 0 = the
  /// defense never fired.
  double detection_time_s = 0.0;
  /// Paths demoted by the acked-checking estimator or the leash.
  std::uint64_t paths_quarantined = 0;
  /// Seconds from first detection to the next delivered segment, at the
  /// 1-second resolution of `deliveries_per_second`; 0 = no delivery
  /// after detection (or no detection).
  double recovery_time_s = 0.0;
  /// Defense events per opportunity in an adversary-free run — every
  /// quarantine/suppression without an attacker is by definition false.
  /// Reported as 0 when an adversary is present (ground truth unknown).
  double false_positive_rate = 0.0;
  /// Route discoveries refused by the rate limiter, network-wide.
  std::uint64_t flood_suppressed = 0;
  /// Acked-checking data-plane probes sent by all sources.
  std::uint64_t probes_sent = 0;

  // --- fabric (campaign fabric, CSV v9) ----------------------------------
  /// `kFailed` rows are placeholders for cells whose worker crashed,
  /// hung past its timeout, or trapped on every attempt; they carry the
  /// cell identity (protocol/speed/seed/adversary/defense) and zeros
  /// everywhere else.  `CampaignResult::summarize` skips them.
  RunStatus run_status = RunStatus::kOk;
  /// Worker attempts this row consumed (1 = first try; in-process runs
  /// are always 1).
  std::uint32_t attempts = 1;
  /// Why the cell failed ("signal 9", "timeout after 30s", a trap
  /// message); empty on `kOk` rows.  Sanitized to one CSV cell.
  std::string run_error;

  // --- user-traffic plane (traffic axis, CSV v10) -------------------------
  /// Index into `CampaignConfig::traffics` (0 outside campaigns).
  std::uint32_t traffic_index = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_rejected = 0;
  /// Per-user-class percentile metrics out of the traffic plane's
  /// mergeable digests, plus the secrecy exposure of the class's lanes.
  struct TrafficClassMetrics {
    std::uint64_t flows_completed = 0;
    double delay_p50_ms = 0.0;
    double delay_p95_ms = 0.0;
    double delay_p99_ms = 0.0;
    double goodput_p50_seg_s = 0.0;
    /// Fraction of the class's flow-id lanes whose session key the
    /// adversary pool reconstructed (secrecy game on, else 0).  Lanes
    /// recycled across classes count toward each class that used them.
    double key_exposure = 0.0;
  };
  std::array<TrafficClassMetrics, traffic::kUserClassCount>
      traffic_classes{};

  // --- TCP (paper Figs. 8-10) ------------------------------------------
  double avg_delay_s = 0.0;              ///< Fig. 8
  double throughput_seg_s = 0.0;         ///< Fig. 9
  double throughput_kbps = 0.0;
  double delivery_rate = 0.0;            ///< Fig. 10
  std::uint64_t segments_delivered = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  /// Per-flow congestion-window evolution, recorded when
  /// `tcp.trace_cwnd` is set (diagnostics + cwnd ablation bench).
  std::vector<std::vector<std::pair<sim::Time, double>>> cwnd_traces;
  std::vector<std::uint32_t> deliveries_per_second;

  // --- routing (paper Fig. 11) -------------------------------------------
  std::uint64_t control_packets = 0;     ///< Fig. 11: total routing pkts
  std::uint64_t route_switches = 0;      ///< MTS only
  std::uint64_t checks_sent = 0;         ///< MTS only

  // --- loss attribution ---------------------------------------------------
  /// Sum over nodes of per-reason drop counters (indexed by DropReason).
  std::array<std::uint64_t, static_cast<std::size_t>(net::DropReason::kCount)>
      drops{};
  [[nodiscard]] std::uint64_t dropped(net::DropReason r) const {
    return drops[static_cast<std::size_t>(r)];
  }

  // --- engine -------------------------------------------------------------
  std::uint64_t events_executed = 0;
  /// Scheduled closures whose captures overflowed the event core's
  /// inline storage onto the heap.  The whole stack is written to keep
  /// this at zero; the integration suite pins that invariant.
  std::uint64_t heap_fallback_closures = 0;
  /// Executed events attributed per subsystem (indexed by EventCategory)
  /// — the raw material for the per-layer profiling in bench/macro_scale.
  std::array<std::uint64_t, sim::kEventCategoryCount> events_by_category{};
  [[nodiscard]] std::uint64_t executed(sim::EventCategory c) const {
    return events_by_category[static_cast<std::size_t>(c)];
  }

  // --- scale (10k-node arena bookkeeping) ---------------------------------
  /// Mobility trajectory entries created / pruned across all nodes; the
  /// steady-state residency is `mobility_legs_generated -
  /// mobility_legs_pruned`, which the snapshot-hook trimming keeps flat.
  std::uint64_t mobility_legs_generated = 0;
  std::uint64_t mobility_legs_pruned = 0;
  /// Largest per-node trajectory history ever held (high-water mark).
  std::uint64_t mobility_peak_live_legs = 0;
  /// NeighborIndex refreshes, and how many of them grew a buffer (the
  /// CSR arrays are reused, so this settles after warm-up).
  std::uint64_t neighbor_rebuilds = 0;
  std::uint64_t neighbor_rebuild_allocs = 0;
};

/// Builds the scenario, runs it to `sim_time`, and reports the metrics.
/// `trace` (optional) receives every packet-level event — used by the
/// trace_explorer example and tests.
RunMetrics run_scenario(const ScenarioConfig& cfg,
                        net::TraceHub* trace = nullptr);

}  // namespace mts::harness
