#pragma once

#include <filesystem>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/work_unit.hpp"

namespace mts::harness {

/// Knobs of the fault-tolerant campaign fabric.
struct FabricConfig {
  /// Concurrent worker processes; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Grid cells batched into one worker process (SoA batch mode): tiny
  /// cells amortize fork/pool/shard setup.  Part of the partition, so
  /// resume requires the same value.
  std::size_t cells_per_unit = 1;
  /// Per-unit wall-clock timeout in seconds; a worker past it is
  /// SIGKILLed and the attempt counts as failed.  0 = no timeout.
  double unit_timeout_s = 0.0;
  /// Retries after the first failed attempt (total attempts = 1 + this)
  /// before the unit degrades to `failed` placeholder rows.
  std::uint32_t max_retries = 2;
  /// Exponential backoff: attempt k reruns no earlier than
  /// `backoff_base_s * 2^(k-1)` seconds after its failure.
  double backoff_base_s = 0.25;
  /// Multi-host slicing (`--shard i/n`): this invocation executes only
  /// units whose index ≡ shard_index (mod shard_count), but ingests
  /// every complete shard it finds, so the last finisher (or a final
  /// `--resume` pass) merges the whole grid.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Ingest complete shards from a previous (possibly killed) run and
  /// schedule only missing/failed units.  false recomputes this
  /// invocation's slice from scratch.
  bool resume = true;
  /// Shard directory override; empty = `ShardStore::dir_for(cfg)`.
  std::filesystem::path shard_dir;
  /// Test seam, run inside the forked worker before any cell executes
  /// (fault injection: raise(SIGKILL), throw, ...).  Never set outside
  /// tests.
  std::function<void(const WorkUnit&, std::uint32_t attempt)> test_child_hook;
};

/// One unit that exhausted its retries.
struct FailedUnit {
  std::uint64_t id = 0;
  std::uint32_t index = 0;
  std::uint32_t attempts = 0;
  std::string error;
};

/// What a fabric invocation did and what the grid now looks like.
struct FabricReport {
  CampaignResult result;       ///< ingested + freshly run rows
  std::size_t units_total = 0;    ///< whole partition
  std::size_t units_owned = 0;    ///< in this invocation's shard slice
  std::size_t units_resumed = 0;  ///< ingested from disk, not re-run
  std::size_t units_run = 0;      ///< spawned at least one worker here
  std::size_t units_ok = 0;       ///< units with ok rows in `result`
  std::size_t units_failed = 0;   ///< units degraded to failed rows
  std::vector<FailedUnit> failures;
  /// Every unit of the grid has rows in `result` (all shards present).
  /// Only a complete, failure-free grid is promoted into the campaign
  /// cache; partial or degraded grids stay shard-only so a later resume
  /// still retries them.
  bool complete = false;
};

/// Runs the campaign through the process-isolated fabric: partitions
/// the grid into work units, ingests complete shards (resume), forks
/// one worker process per remaining unit (bounded by `workers`), and
/// supervises timeouts, bounded-backoff retries and graceful
/// degradation to `failed` rows.  A crashing or hanging scenario takes
/// down only its unit; the sweep always completes and reports.
FabricReport run_campaign_fabric(const CampaignConfig& cfg,
                                 const FabricConfig& fab,
                                 std::ostream* progress = nullptr);

}  // namespace mts::harness
