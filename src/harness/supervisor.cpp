#include "harness/supervisor.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/campaign_cache.hpp"
#include "harness/progress.hpp"
#include "harness/shard_store.hpp"
#include "sim/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MTS_FABRIC_HAS_FORK 1
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#include <stdexcept>
#endif

namespace mts::harness {
namespace {

using Clock = std::chrono::steady_clock;

std::filesystem::path error_path(const ShardStore& store, const WorkUnit& u) {
  auto p = store.path_of(u);
  p.replace_extension(".err");
  return p;
}

/// Workers report their failure reason through a tiny sidecar file
/// (atomic like the shard itself): exit codes can't carry a trap
/// message across the process boundary.
void write_error_file(const ShardStore& store, const WorkUnit& u,
                      const std::string& msg) {
  const auto path = error_path(store, u);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << msg;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

std::string take_error_file(const ShardStore& store, const WorkUnit& u) {
  const auto path = error_path(store, u);
  std::ifstream in(path);
  std::string msg;
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    msg = buf.str();
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return msg;
}

/// Test-only fault injection reachable from the CLI (and CI): a worker
/// whose unit index matches MTS_FABRIC_TEST_HANG_UNIT spins forever —
/// on attempts <= MTS_FABRIC_TEST_HANG_ATTEMPTS when set, else always —
/// which is how the timeout -> retry -> failed-cell path is exercised
/// without a genuinely wedged scenario.
void maybe_test_hang(const WorkUnit& unit, std::uint32_t attempt) {
  const char* v = std::getenv("MTS_FABRIC_TEST_HANG_UNIT");
  if (v == nullptr || std::to_string(unit.index) != v) return;
  if (const char* upto = std::getenv("MTS_FABRIC_TEST_HANG_ATTEMPTS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(upto, &end, 10);
    if (end != upto && *end == '\0' && attempt > n) return;
  }
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}

std::vector<RunMetrics> run_unit_cells(const CampaignConfig& cfg,
                                       const WorkUnit& unit,
                                       std::uint32_t attempt) {
  std::vector<RunMetrics> rows;
  rows.reserve(unit.total_runs());
  for (const WorkCell& c : unit.cells) {
    for (std::uint32_t rep = c.rep_begin; rep < c.rep_end; ++rep) {
      const ScenarioConfig sc = cell_scenario(cfg, c, rep);
      RunMetrics m = run_scenario(sc);
      m.adversary_index = c.adversary;
      m.defense_index = c.defense;
      m.traffic_index = c.traffic;
      m.attempts = attempt;
      rows.push_back(std::move(m));
    }
  }
  return rows;
}

std::string short_unit_desc(const CampaignConfig& cfg, const WorkUnit& u) {
  const WorkCell& c = u.cells.front();
  std::ostringstream os;
  os << protocol_name(cfg.protocols[c.protocol])
     << " speed=" << cfg.speeds[c.speed] << " adversary=" << c.adversary
     << " defense=" << c.defense << " traffic=" << c.traffic
     << " reps=" << c.runs();
  if (u.cells.size() > 1) os << " (+" << (u.cells.size() - 1) << " cells)";
  return os.str();
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  os.precision(3);
  os << s << 's';
  return os.str();
}

#if defined(MTS_FABRIC_HAS_FORK)
/// The worker body after fork.  `std::_Exit` everywhere: the child must
/// never run the parent's static destructors or flush its inherited
/// stream buffers.
[[noreturn]] void worker_main(const CampaignConfig& cfg,
                              const FabricConfig& fab, const ShardStore& store,
                              const WorkUnit& unit, std::uint32_t attempt) {
  try {
    if (fab.test_child_hook) fab.test_child_hook(unit, attempt);
    maybe_test_hang(unit, attempt);
    const std::vector<RunMetrics> rows = run_unit_cells(cfg, unit, attempt);
    std::string err;
    if (!store.write(unit, rows, &err)) {
      write_error_file(store, unit, err);
      std::_Exit(4);
    }
    std::_Exit(0);
  } catch (const std::exception& e) {
    write_error_file(store, unit, e.what());
    std::_Exit(3);
  } catch (...) {
    write_error_file(store, unit, "unknown exception");
    std::_Exit(3);
  }
}
#endif

}  // namespace

FabricReport run_campaign_fabric(const CampaignConfig& cfg,
                                 const FabricConfig& fab,
                                 std::ostream* progress) {
  sim::require_config(fab.shard_count >= 1 &&
                          fab.shard_index < fab.shard_count,
                      "Fabric: shard index out of range (want i/n, i < n)");
  ProgressSink sink(progress);
  const std::vector<WorkUnit> units =
      partition_campaign(cfg, fab.cells_per_unit);
  ShardStore store(fab.shard_dir.empty() ? ShardStore::dir_for(cfg)
                                         : fab.shard_dir);
  sim::require_config(store.prepare(), "Fabric: cannot create shard dir " +
                                           store.dir().string());

  FabricReport report;
  report.units_total = units.size();
  const std::size_t total = units.size();

  struct Pending {
    std::size_t idx = 0;
    std::uint32_t attempt = 1;
    Clock::time_point not_before;
  };
  std::deque<Pending> pending;
  std::vector<char> have(units.size(), 0);
  std::vector<char> spawned(units.size(), 0);

  // --- merge/resume: ingest what is already on disk --------------------
  for (const WorkUnit& u : units) {
    const bool owned = (u.index % fab.shard_count) == fab.shard_index;
    if (owned) ++report.units_owned;
    std::vector<RunMetrics> rows;
    ShardStore::State st = store.read(u, rows);
    if (owned && !fab.resume && st != ShardStore::State::kMissing) {
      store.remove(u);
      st = ShardStore::State::kMissing;
      rows.clear();
    }
    switch (st) {
      case ShardStore::State::kOk:
        for (RunMetrics& m : rows) report.result.add(std::move(m));
        have[u.index] = 1;
        ++report.units_ok;
        if (owned) {
          ++report.units_resumed;
          sink.unit_line(u.index + 1, total, "resumed from shard");
        }
        break;
      case ShardStore::State::kFailed:
        if (owned) {
          // A previous invocation exhausted its retries here; a fresh
          // invocation is a fresh budget.
          store.remove(u);
          pending.push_back(Pending{u.index, 1, Clock::now()});
          sink.unit_line(u.index + 1, total,
                         "failed shard found; rescheduling");
        } else {
          // Another host's slice: report its failure as recorded.
          report.failures.push_back(FailedUnit{
              u.id, u.index, rows.front().attempts, rows.front().run_error});
          for (RunMetrics& m : rows) report.result.add(std::move(m));
          have[u.index] = 1;
          ++report.units_failed;
        }
        break;
      case ShardStore::State::kMissing:
        if (owned) pending.push_back(Pending{u.index, 1, Clock::now()});
        break;
    }
  }

  // --- degradation path shared by every failure source -----------------
  auto on_attempt_failure = [&](const WorkUnit& u, std::uint32_t attempt,
                                const std::string& error) {
    if (attempt <= fab.max_retries) {
      const double backoff =
          fab.backoff_base_s * std::ldexp(1.0, static_cast<int>(attempt) - 1);
      pending.push_back(
          Pending{u.index, attempt + 1,
                  Clock::now() + std::chrono::microseconds(
                                     static_cast<std::int64_t>(backoff * 1e6))});
      sink.unit_line(u.index + 1, total,
                     "attempt " + std::to_string(attempt) + " failed (" +
                         error + "); retrying in " + fmt_seconds(backoff));
      return;
    }
    std::vector<RunMetrics> rows;
    rows.reserve(u.total_runs());
    for (const WorkCell& c : u.cells) {
      for (std::uint32_t rep = c.rep_begin; rep < c.rep_end; ++rep) {
        rows.push_back(failed_run_metrics(cfg, c, rep, attempt, error));
      }
    }
    std::string werr;
    store.write(u, rows, &werr);  // best effort: the report is the truth
    for (RunMetrics& m : rows) report.result.add(std::move(m));
    have[u.index] = 1;
    ++report.units_failed;
    report.failures.push_back(FailedUnit{u.id, u.index, attempt, error});
    sink.unit_line(u.index + 1, total,
                   "FAILED after " + std::to_string(attempt) + " attempts: " +
                       error);
  };

  auto on_success = [&](const WorkUnit& u, std::vector<RunMetrics> rows) {
    sink.unit_line(u.index + 1, total,
                   "ok (" + std::to_string(rows.size()) + " runs)");
    for (RunMetrics& m : rows) report.result.add(std::move(m));
    have[u.index] = 1;
    ++report.units_ok;
  };

  unsigned workers = fab.workers != 0
                         ? fab.workers
                         : std::max(1u, std::thread::hardware_concurrency());

#if defined(MTS_FABRIC_HAS_FORK)
  struct Running {
    pid_t pid = -1;
    std::size_t idx = 0;
    std::uint32_t attempt = 1;
    Clock::time_point deadline;
    bool timed_out = false;
  };
  std::vector<Running> running;

  auto handle_exit = [&](const Running& r, int status) {
    const WorkUnit& u = units[r.idx];
    std::string error;
    if (r.timed_out) {
      error = "timeout after " + fmt_seconds(fab.unit_timeout_s);
      take_error_file(store, u);  // discard: the kill is the reason
    } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::vector<RunMetrics> rows;
      if (store.read(u, rows) == ShardStore::State::kOk) {
        on_success(u, std::move(rows));
        return;
      }
      error = "worker exited 0 but left no valid shard";
    } else {
      const std::string detail = take_error_file(store, u);
      if (!detail.empty()) {
        error = detail;
      } else if (WIFSIGNALED(status)) {
        error = "worker killed by signal " + std::to_string(WTERMSIG(status));
      } else {
        error = "worker exit code " +
                std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      }
    }
    on_attempt_failure(u, r.attempt, error);
  };

  while (!pending.empty() || !running.empty()) {
    bool advanced = false;
    // Spawn every ready unit into a free slot.
    const auto now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && running.size() < workers;) {
      if (it->not_before > now) {
        ++it;
        continue;
      }
      const WorkUnit& u = units[it->idx];
      sink.unit_line(u.index + 1, total,
                     (it->attempt == 1
                          ? "run: "
                          : "retry " + std::to_string(it->attempt) + ": ") +
                         short_unit_desc(cfg, u));
      const pid_t pid = ::fork();
      if (pid == 0) {
        worker_main(cfg, fab, store, u, it->attempt);  // never returns
      }
      if (pid < 0) {
        on_attempt_failure(u, it->attempt, "fork failed");
      } else {
        if (!spawned[u.index]) {
          spawned[u.index] = 1;
          ++report.units_run;
        }
        Running r;
        r.pid = pid;
        r.idx = it->idx;
        r.attempt = it->attempt;
        r.deadline = fab.unit_timeout_s > 0.0
                         ? now + std::chrono::microseconds(static_cast<
                                     std::int64_t>(fab.unit_timeout_s * 1e6))
                         : Clock::time_point::max();
        running.push_back(r);
      }
      it = pending.erase(it);
      advanced = true;
    }
    // Reap exits and enforce deadlines.
    for (auto it = running.begin(); it != running.end();) {
      int status = 0;
      const pid_t r = ::waitpid(it->pid, &status, WNOHANG);
      if (r == 0) {
        if (!it->timed_out && Clock::now() >= it->deadline) {
          it->timed_out = true;
          ::kill(it->pid, SIGKILL);
        }
        ++it;
        continue;
      }
      advanced = true;
      handle_exit(*it, r == it->pid ? status : 0);
      it = running.erase(it);
    }
    if (!advanced) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
#else
  // No fork on this platform: units run in-process (sharding, resume
  // and batching still work; crash isolation and timeouts do not).
  (void)workers;
  while (!pending.empty()) {
    const Pending p = pending.front();
    pending.pop_front();
    const WorkUnit& u = units[p.idx];
    if (!spawned[u.index]) {
      spawned[u.index] = 1;
      ++report.units_run;
    }
    try {
      std::vector<RunMetrics> rows = run_unit_cells(cfg, u, p.attempt);
      std::string err;
      if (!store.write(u, rows, &err)) throw std::runtime_error(err);
      on_success(u, std::move(rows));
    } catch (const std::exception& e) {
      on_attempt_failure(u, p.attempt, e.what());
    }
  }
#endif

  report.complete = true;
  for (const char h : have) {
    if (!h) report.complete = false;
  }
  {
    std::ostringstream os;
    os << "  fabric: " << report.units_ok << '/' << report.units_total
       << " units ok, " << report.units_failed << " failed, "
       << report.units_resumed << " resumed, " << report.units_run
       << " run here";
    if (!report.complete) {
      os << " (grid incomplete: other shards still pending)";
    }
    sink.line(os.str());
  }
  // Only a complete, failure-free grid becomes a campaign cache entry:
  // anything less must stay shard-only so the next resume retries it.
  if (report.complete && report.units_failed == 0) {
    CampaignCache::store(cfg, report.result);
  }
  return report;
}

}  // namespace mts::harness
