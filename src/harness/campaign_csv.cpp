#include "harness/campaign_csv.hpp"

#include <limits>
#include <sstream>
#include <vector>

namespace mts::harness::csv {

std::optional<std::size_t> header_cells(const std::string& header) {
  if (header == kHeader) return kCellsV10;
  if (header == kHeaderV9) return kCellsV9;
  if (header == kHeaderV8) return kCellsV8;
  if (header == kHeaderV7) return kCellsV7;
  if (header == kHeaderV6) return kCellsV6;
  if (header == kHeaderV5) return kCellsV5;
  return std::nullopt;
}

std::string sanitize_error(const std::string& msg) {
  if (msg.empty()) return "-";
  std::string out = msg;
  for (char& c : out) {
    if (c == ',' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

void write_row(std::ostream& os, const RunMetrics& m) {
  // Round-trip exactly: the cache's contract is bit-for-bit replay, and
  // the default 6 significant digits would truncate every double.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << static_cast<int>(m.protocol) << ',' << m.max_speed << ',' << m.seed
     << ',' << m.participating_nodes << ',' << m.relay_stddev << ','
     << m.alpha << ',' << m.max_beta << ',' << m.highest_interception_ratio
     << ',' << m.pe << ',' << m.pr << ',' << m.interception_ratio << ','
     << m.avg_delay_s << ',' << m.throughput_seg_s << ','
     << m.throughput_kbps << ',' << m.delivery_rate << ','
     << m.segments_delivered << ',' << m.data_packets_sent << ','
     << m.retransmits << ',' << m.timeouts << ',' << m.acks_sent << ','
     << m.acks_received << ',' << m.eavesdropper << ',' << m.control_packets
     << ',' << m.route_switches << ',' << m.checks_sent << ','
     << m.events_executed << ',' << m.adversary_index << ','
     << static_cast<int>(m.adversary_kind) << ',' << m.adversary_count << ','
     << m.coalition_captured << ',' << m.coalition_interception_ratio << ','
     << m.fragments_missing << ',' << m.blackhole_absorbed << ','
     << m.wormhole_tunneled << ',' << m.grayhole_absorbed << ','
     << m.endpoint_inference_accuracy << ',' << m.flood_injected << ','
     << m.defense_index << ',' << static_cast<int>(m.defense_kind) << ','
     << m.detection_time_s << ',' << m.paths_quarantined << ','
     << m.recovery_time_s << ',' << m.false_positive_rate << ','
     << m.flood_suppressed << ',' << m.probes_sent << ','
     << m.secrecy_shares << ',' << m.secrecy_threshold << ','
     << m.shares_captured << ',' << m.keys_recovered << ','
     << m.key_recovery_rate << ',' << m.traffic_index << ','
     << m.sessions_started << ',' << m.sessions_completed;
  for (const auto& c : m.traffic_classes) {
    os << ',' << c.flows_completed << ',' << c.delay_p50_ms << ','
       << c.delay_p95_ms << ',' << c.delay_p99_ms << ','
       << c.goodput_p50_seg_s << ',' << c.key_exposure;
  }
  os << ',' << run_status_name(m.run_status) << ',' << m.attempts << ','
     << sanitize_error(m.run_error) << ',';
  // '-' sentinel keeps the empty-members cell from being eaten by the
  // trailing-delimiter behaviour of getline-based parsing.
  if (m.adversary_members.empty()) {
    os << '-';
  } else {
    for (net::NodeId id : m.adversary_members) os << id << '.';
  }
  os << '\n';
}

std::optional<RunMetrics> parse_row(const std::string& line,
                                    std::size_t expected_cells) {
  std::stringstream ss(line);
  std::string cell;
  std::vector<std::string> cells;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (cells.size() != expected_cells) return std::nullopt;
  try {
    RunMetrics m;
    std::size_t i = 0;
    m.protocol = static_cast<Protocol>(std::stoi(cells[i++]));
    m.max_speed = std::stod(cells[i++]);
    m.seed = std::stoull(cells[i++]);
    m.participating_nodes = std::stoull(cells[i++]);
    m.relay_stddev = std::stod(cells[i++]);
    m.alpha = std::stoull(cells[i++]);
    m.max_beta = std::stoull(cells[i++]);
    m.highest_interception_ratio = std::stod(cells[i++]);
    m.pe = std::stoull(cells[i++]);
    m.pr = std::stoull(cells[i++]);
    m.interception_ratio = std::stod(cells[i++]);
    m.avg_delay_s = std::stod(cells[i++]);
    m.throughput_seg_s = std::stod(cells[i++]);
    m.throughput_kbps = std::stod(cells[i++]);
    m.delivery_rate = std::stod(cells[i++]);
    m.segments_delivered = std::stoull(cells[i++]);
    m.data_packets_sent = std::stoull(cells[i++]);
    m.retransmits = std::stoull(cells[i++]);
    m.timeouts = std::stoull(cells[i++]);
    m.acks_sent = std::stoull(cells[i++]);
    m.acks_received = std::stoull(cells[i++]);
    m.eavesdropper = static_cast<net::NodeId>(std::stoul(cells[i++]));
    m.control_packets = std::stoull(cells[i++]);
    m.route_switches = std::stoull(cells[i++]);
    m.checks_sent = std::stoull(cells[i++]);
    m.events_executed = std::stoull(cells[i++]);
    m.adversary_index = static_cast<std::uint32_t>(std::stoul(cells[i++]));
    m.adversary_kind =
        static_cast<security::AdversaryKind>(std::stoi(cells[i++]));
    m.adversary_count = static_cast<std::uint32_t>(std::stoul(cells[i++]));
    m.coalition_captured = std::stoull(cells[i++]);
    m.coalition_interception_ratio = std::stod(cells[i++]);
    m.fragments_missing = std::stoull(cells[i++]);
    m.blackhole_absorbed = std::stoull(cells[i++]);
    if (cells.size() >= kCellsV6) {
      m.wormhole_tunneled = std::stoull(cells[i++]);
      m.grayhole_absorbed = std::stoull(cells[i++]);
      m.endpoint_inference_accuracy = std::stod(cells[i++]);
      m.flood_injected = std::stoull(cells[i++]);
    }  // v5 rows: active-attack metrics stay zero
    if (cells.size() >= kCellsV7) {
      m.defense_index = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.defense_kind =
          static_cast<security::DefenseKind>(std::stoi(cells[i++]));
      m.detection_time_s = std::stod(cells[i++]);
      m.paths_quarantined = std::stoull(cells[i++]);
      m.recovery_time_s = std::stod(cells[i++]);
      m.false_positive_rate = std::stod(cells[i++]);
      m.flood_suppressed = std::stoull(cells[i++]);
      m.probes_sent = std::stoull(cells[i++]);
    }  // v5/v6 rows: defense metrics stay zero
    if (cells.size() >= kCellsV8) {
      m.secrecy_shares = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.secrecy_threshold = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.shares_captured = std::stoull(cells[i++]);
      m.keys_recovered = std::stoull(cells[i++]);
      m.key_recovery_rate = std::stod(cells[i++]);
    }  // v5/v6/v7 rows: the secrecy game did not exist — metrics stay zero
    if (cells.size() >= kCellsV10) {
      m.traffic_index = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      m.sessions_started = std::stoull(cells[i++]);
      m.sessions_completed = std::stoull(cells[i++]);
      for (auto& c : m.traffic_classes) {
        c.flows_completed = std::stoull(cells[i++]);
        c.delay_p50_ms = std::stod(cells[i++]);
        c.delay_p95_ms = std::stod(cells[i++]);
        c.delay_p99_ms = std::stod(cells[i++]);
        c.goodput_p50_seg_s = std::stod(cells[i++]);
        c.key_exposure = std::stod(cells[i++]);
      }
    }  // v5..v9 rows predate the user plane — per-class columns stay zero
    if (cells.size() >= kCellsV9) {
      const std::string& status = cells[i++];
      if (status == "ok") {
        m.run_status = RunStatus::kOk;
      } else if (status == "failed") {
        m.run_status = RunStatus::kFailed;
      } else {
        return std::nullopt;
      }
      m.attempts = static_cast<std::uint32_t>(std::stoul(cells[i++]));
      if (cells[i] != "-") m.run_error = cells[i];
      ++i;
    }  // v5..v8 rows predate the fabric: status ok, attempts 1, no error
    if (cells[i] != "-") {
      std::stringstream ms(cells[i]);
      std::string id;
      while (std::getline(ms, id, '.')) {
        if (!id.empty()) {
          m.adversary_members.push_back(
              static_cast<net::NodeId>(std::stoul(id)));
        }
      }
    }
    ++i;
    return m;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void write_campaign(std::ostream& os, const CampaignConfig& cfg,
                    const CampaignResult& result) {
  os << kHeader << '\n';
  for (Protocol p : cfg.protocols) {
    for (double s : cfg.speeds) {
      for (std::uint32_t a = 0;
           a < static_cast<std::uint32_t>(cfg.adversaries.size()); ++a) {
        for (std::uint32_t d = 0;
             d < static_cast<std::uint32_t>(cfg.defenses.size()); ++d) {
          for (std::uint32_t t = 0;
               t < static_cast<std::uint32_t>(cfg.traffics.size()); ++t) {
            for (const RunMetrics& m : result.runs(p, s, a, d, t)) {
              write_row(os, m);
            }
          }
        }
      }
    }
  }
}

}  // namespace mts::harness::csv
