#include "harness/scenario.hpp"

#include <algorithm>
#include <unordered_set>

#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "security/eavesdropper.hpp"
#include "security/relay_census.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace mts::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kDsr: return "DSR";
    case Protocol::kAodv: return "AODV";
    case Protocol::kMts: return "MTS";
    case Protocol::kSmr: return "SMR";
  }
  return "?";
}

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
  }
  return "?";
}

namespace {

/// One node's full stack.  Construction order matters: radio before MAC,
/// MAC before routing; destruction (reverse order) cancels all timers
/// before anything they reference dies.
struct Node {
  std::unique_ptr<mobility::MobilityModel> mobility;
  net::Counters counters;
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::Mac80211> mac;
  std::unique_ptr<routing::RoutingProtocol> routing;
  core::Mts* mts = nullptr;  ///< non-owning view when protocol == kMts
  std::vector<tcp::TcpSource*> sources;  ///< agents homed here
  std::vector<tcp::TcpSink*> sinks;
};

struct Flow {
  FlowSpec spec;
  std::uint16_t id;
  tcp::FlowStats stats;
  std::unique_ptr<tcp::TcpSource> source;
  std::unique_ptr<tcp::TcpSink> sink;
};

class Simulation {
 public:
  explicit Simulation(const ScenarioConfig& cfg, net::TraceHub* trace)
      : cfg_(cfg), master_(cfg.seed), external_trace_(trace) {
    validate();
    build_defense();  // before the nodes: routing contexts hold the pointer
    build_nodes();
    build_flows();
    pick_eavesdropper();
    build_secrecy();   // before the adversary: capture pools hold the plane
    build_adversary();
    build_traffic();   // after secrecy: fresh lanes register with the plane
    wire();
  }

  RunMetrics run() {
    for (auto& n : nodes_) n.routing->start();
    for (auto& f : flows_) f->source->start(f->spec.start);
    if (adversary_ != nullptr) adversary_->on_start(cfg_.sim_time);
    if (traffic_ != nullptr) traffic_->start(cfg_.sim_time);
    sched_.run_until(cfg_.sim_time);
    return collect();
  }

 private:
  void validate() const {
    sim::require_config(cfg_.node_count >= 2, "Scenario: need >= 2 nodes");
    sim::require_config(cfg_.sim_time > sim::Time::zero(),
                        "Scenario: sim_time <= 0");
    sim::require_config(cfg_.radio_range > 0, "Scenario: radio_range <= 0");
    sim::require_config(
        cfg_.static_positions.empty() ||
            cfg_.static_positions.size() == cfg_.node_count,
        "Scenario: static_positions size != node_count");
    sim::require_config(cfg_.flow_count >= 1 || !cfg_.explicit_flows.empty(),
                        "Scenario: no flows");
    for (const auto& f : cfg_.explicit_flows) {
      sim::require_config(
          f.src < cfg_.node_count && f.dst < cfg_.node_count && f.src != f.dst,
          "Scenario: bad explicit flow endpoints");
    }
  }

  void build_nodes() {
    if (cfg_.fading_enabled) {
      phy::FadingConfig fc = cfg_.fading;
      fc.range_m = cfg_.radio_range;
      prop_ = std::make_unique<phy::FadingPropagation>(
          fc, master_.substream("fading").seed());
    } else {
      prop_ = std::make_unique<phy::UnitDiskPropagation>(cfg_.radio_range);
    }
    channel_ = std::make_unique<phy::Channel>(sched_, *prop_, cfg_.channel);
    nodes_.resize(cfg_.node_count);
    sim::Rng mob_rng = master_.substream("mobility");
    sim::Rng mac_rng = master_.substream("mac");
    sim::Rng proto_rng = master_.substream("routing");
    for (net::NodeId i = 0; i < cfg_.node_count; ++i) {
      Node& n = nodes_[i];
      if (!cfg_.static_positions.empty()) {
        n.mobility = std::make_unique<mobility::StaticMobility>(
            cfg_.static_positions[i]);
      } else {
        mobility::RandomWaypointConfig rc;
        rc.field = cfg_.field;
        rc.min_speed = cfg_.min_speed;
        rc.max_speed = cfg_.max_speed;
        rc.pause = cfg_.pause;
        n.mobility =
            std::make_unique<mobility::RandomWaypoint>(rc, mob_rng.substream(i));
      }
      n.radio = std::make_unique<phy::Radio>(sched_, i, &n.counters);
      n.mac = std::make_unique<mac::Mac80211>(sched_, *n.radio, cfg_.mac,
                                              mac_rng.substream(i), &n.counters);
      routing::RoutingContext ctx;
      ctx.self = i;
      ctx.sched = &sched_;
      ctx.mac = n.mac.get();
      ctx.counters = &n.counters;
      ctx.trace = external_trace_;
      ctx.uids = &uids_;
      ctx.defense = defense_.get();
      ctx.deliver = [this, i](net::Packet&& p, net::NodeId from) {
        deliver_to_transport(i, std::move(p), from);
      };
      switch (cfg_.protocol) {
        case Protocol::kDsr:
          n.routing = std::make_unique<routing::dsr::Dsr>(
              std::move(ctx), cfg_.dsr, proto_rng.substream(i));
          break;
        case Protocol::kAodv:
          n.routing = std::make_unique<routing::aodv::Aodv>(
              std::move(ctx), cfg_.aodv, proto_rng.substream(i));
          break;
        case Protocol::kMts: {
          auto mts = std::make_unique<core::Mts>(std::move(ctx), cfg_.mts,
                                                 proto_rng.substream(i));
          n.mts = mts.get();
          n.routing = std::move(mts);
          break;
        }
        case Protocol::kSmr:
          n.routing = std::make_unique<routing::smr::Smr>(
              std::move(ctx), cfg_.smr, proto_rng.substream(i));
          break;
      }
      channel_->attach(n.radio.get(), n.mobility.get());
    }
    channel_->finalize();
  }

  void build_flows() {
    std::vector<FlowSpec> specs = cfg_.explicit_flows;
    if (specs.empty()) {
      sim::Rng frng = master_.substream("flows");
      std::unordered_set<net::NodeId> used;
      auto draw_unused = [&]() {
        net::NodeId n = 0;
        do {
          n = static_cast<net::NodeId>(frng.uniform_int(0, cfg_.node_count - 1));
        } while (used.contains(n));
        return n;
      };
      for (std::uint32_t k = 0; k < cfg_.flow_count; ++k) {
        // Distinct endpoints across flows keeps the census attribution
        // clean (every flow endpoint is excluded from "intermediate").
        const net::NodeId src = draw_unused();
        used.insert(src);
        net::NodeId dst = draw_unused();
        // Rejection-sample for a multihop pair; give up after a bounded
        // number of tries (tiny fields have no distant pairs).
        for (int tries = 0; tries < 200; ++tries) {
          const double d = mobility::distance(
              nodes_[src].mobility->position_at(sim::Time::zero()),
              nodes_[dst].mobility->position_at(sim::Time::zero()));
          if (d >= cfg_.min_flow_distance) break;
          dst = draw_unused();
        }
        used.insert(dst);
        specs.push_back(FlowSpec{
            src, dst, sim::Time::sec(1) + sim::Time::seconds(frng.uniform(0.0, 1.0))});
      }
    }
    std::uint16_t next_id = 1;
    for (const FlowSpec& spec : specs) {
      auto flow = std::make_unique<Flow>();
      flow->spec = spec;
      flow->id = next_id++;
      Node& src_node = nodes_[spec.src];
      Node& dst_node = nodes_[spec.dst];
      flow->source = std::make_unique<tcp::TcpSource>(
          sched_,
          [r = src_node.routing.get()](net::Packet&& p) {
            r->send_from_transport(std::move(p));
          },
          spec.src, spec.dst, flow->id, cfg_.tcp, &uids_, &src_node.counters,
          &flow->stats);
      flow->sink = std::make_unique<tcp::TcpSink>(
          sched_,
          [r = dst_node.routing.get()](net::Packet&& p) {
            r->send_from_transport(std::move(p));
          },
          spec.dst, spec.src, flow->id, &uids_, &dst_node.counters,
          &flow->stats);
      src_node.sources.push_back(flow->source.get());
      dst_node.sinks.push_back(flow->sink.get());
      flows_.push_back(std::move(flow));
    }
  }

  void pick_eavesdropper() {
    if (!cfg_.eavesdropper_enabled) return;
    std::unordered_set<net::NodeId> endpoints;
    for (const auto& f : flows_) {
      endpoints.insert(f->spec.src);
      endpoints.insert(f->spec.dst);
    }
    if (endpoints.size() >= cfg_.node_count) return;  // no intermediate left
    sim::Rng erng = master_.substream("eavesdropper");
    net::NodeId pick = 0;
    do {
      pick = static_cast<net::NodeId>(erng.uniform_int(0, cfg_.node_count - 1));
    } while (endpoints.contains(pick));
    eavesdropper_ = std::make_unique<security::Eavesdropper>(pick);
  }

  /// Plumbing both security factories share (`SecurityContext`): radio
  /// range, the lazy position oracle (nodes_ is filled by the time any
  /// hook runs), the scheduler, and the secrecy plane when the game is
  /// on.  Filled once here so the two factory call sites can't drift.
  [[nodiscard]] security::SecurityContext security_base() {
    security::SecurityContext base;
    base.radio_range = cfg_.radio_range;
    base.position_of = [this](net::NodeId id, sim::Time t) {
      return nodes_[id].mobility->position_at(t);
    };
    base.sched = &sched_;
    base.secrecy = secrecy_.get();
    return base;
  }

  void build_defense() {
    if (!cfg_.defense.enabled()) return;
    security::DefenseContext ctx;
    static_cast<security::SecurityContext&>(ctx) = security_base();
    defense_ = security::make_defense(cfg_.defense, ctx);
  }

  void build_secrecy() {
    if (!cfg_.secrecy.enabled) return;
    secrecy_ = std::make_unique<security::SecrecyPlane>(
        cfg_.secrecy, master_.substream("secrecy"));
    // One share per disjoint path the protocol can spread a flow over;
    // unipath protocols get a degenerate 1-of-1 split (capture any
    // segment of the flow and the key falls).
    const auto n = cfg_.protocol == Protocol::kMts
                       ? static_cast<std::uint32_t>(cfg_.mts.max_paths)
                       : 1U;
    for (const auto& f : flows_) secrecy_->register_flow(f->id, n);
  }

  void build_adversary() {
    if (!cfg_.adversary.enabled()) return;
    security::AdversaryContext ctx;
    static_cast<security::SecurityContext&>(ctx) = security_base();
    ctx.node_count = cfg_.node_count;
    ctx.field = cfg_.field;
    for (const auto& f : flows_) {
      ctx.excluded.insert(f->spec.src);
      ctx.excluded.insert(f->spec.dst);
    }
    ctx.rng = master_.substream("adversary");
    // Active-model hooks.  Passive models never touch them; active ones
    // use the scheduler for their own event slots, the channel for
    // out-of-band injection, and the MAC-bound callback for forged
    // control traffic through the "normal routing path".
    ctx.channel = channel_.get();
    switch (cfg_.protocol) {
      case Protocol::kAodv: ctx.rreq_kind = net::PacketKind::kAodvRreq; break;
      case Protocol::kDsr:
      case Protocol::kSmr: ctx.rreq_kind = net::PacketKind::kDsrRreq; break;
      case Protocol::kMts: ctx.rreq_kind = net::PacketKind::kMtsRreq; break;
    }
    ctx.inject_control = [this](net::NodeId member, net::Packet&& p) {
      auto& common = p.mutable_common();
      common.uid = uids_.next();
      ++nodes_[member].counters.sent_control;
      nodes_[member].mac->enqueue(std::move(p), net::kBroadcastId);
    };
    adversary_ = security::make_adversary(cfg_.adversary, ctx);
    if (adversary_ != nullptr) {
      // All models tap the channel at radiation time.  The tap itself is
      // observational; active models react to it only through their own
      // scheduled event slots, so passive models still leave the event
      // stream untouched.
      channel_->set_sniffer([a = adversary_.get()](
                                net::NodeId sender,
                                const mobility::Vec2& pos,
                                const phy::Frame& f, sim::Time airtime,
                                sim::Time now) {
        a->on_transmission({sender, pos, airtime, now}, f);
      });
    }
  }

  void build_traffic() {
    if (!cfg_.traffic.enabled) return;
    traffic::TrafficContext ctx;
    ctx.sched = &sched_;
    ctx.uids = &uids_;
    ctx.node_count = cfg_.node_count;
    // Static flows own ids 1..flows_.size(); traffic lanes live above.
    ctx.first_flow_id = static_cast<std::uint16_t>(flows_.size() + 1);
    ctx.tcp = cfg_.tcp;
    ctx.send = [this](net::NodeId node, net::Packet&& p) {
      nodes_[node].routing->send_from_transport(std::move(p));
    };
    ctx.counters_of = [this](net::NodeId node) {
      return &nodes_[node].counters;
    };
    if (secrecy_ != nullptr) {
      const auto n = cfg_.protocol == Protocol::kMts
                         ? static_cast<std::uint32_t>(cfg_.mts.max_paths)
                         : 1U;
      ctx.on_new_lane = [this, n](std::uint16_t id) {
        secrecy_->register_flow(id, n);
      };
    }
    traffic_ = std::make_unique<traffic::TrafficPlane>(
        cfg_.traffic, std::move(ctx), master_.substream("traffic"));
  }

  void wire() {
    for (net::NodeId i = 0; i < cfg_.node_count; ++i) {
      Node& n = nodes_[i];
      mac::Mac80211::Callbacks cb;
      const bool insider =
          adversary_ != nullptr && adversary_->is_member(i);
      cb.on_receive = [this, i, insider](net::Packet&& p, net::NodeId from) {
        // Insider attackers sit between the MAC and the routing layer:
        // the MAC already ACKed the frame (upstream believes the hop
        // succeeded), then transit data silently dies here.
        if (insider && adversary_->absorbs(i, p, sched_.now())) {
          adversary_->on_absorb(i, p);
          nodes_[i].counters.drop(net::DropReason::kAdversary);
          return;
        }
        nodes_[i].routing->receive_from_mac(std::move(p), from);
      };
      cb.on_unicast_failure = [this, i](const net::Packet& p,
                                        net::NodeId next_hop) {
        nodes_[i].routing->on_link_failure(p, next_hop);
      };
      if (eavesdropper_ != nullptr && eavesdropper_->node() == i) {
        cb.on_sniff = [e = eavesdropper_.get()](const phy::Frame& f) {
          e->on_sniff(f);
        };
      }
      n.mac->set_callbacks(std::move(cb));
    }
  }

  void deliver_to_transport(net::NodeId node, net::Packet&& p,
                            net::NodeId /*from*/) {
    if (traffic_ != nullptr && traffic_->deliver(node, p)) return;
    Node& n = nodes_[node];
    if (p.common().kind == net::PacketKind::kTcpData) {
      for (tcp::TcpSink* s : n.sinks) s->on_data(p);
    } else if (p.common().kind == net::PacketKind::kTcpAck) {
      for (tcp::TcpSource* s : n.sources) s->on_ack(p);
    }
  }

  RunMetrics collect() {
    RunMetrics m;
    m.protocol = cfg_.protocol;
    m.max_speed = cfg_.max_speed;
    m.seed = cfg_.seed;
    m.events_executed = sched_.executed_count();
    m.heap_fallback_closures = sched_.heap_fallback_count();
    for (std::size_t c = 0; c < sim::kEventCategoryCount; ++c) {
      m.events_by_category[c] =
          sched_.executed_count(static_cast<sim::EventCategory>(c));
    }
    const mobility::MobilityStats mob = channel_->mobility_stats();
    m.mobility_legs_generated = mob.generated;
    m.mobility_legs_pruned = mob.pruned;
    m.mobility_peak_live_legs = mob.peak_live;
    if (const phy::NeighborIndex* idx = channel_->index(); idx != nullptr) {
      m.neighbor_rebuilds = idx->rebuild_count();
      m.neighbor_rebuild_allocs = idx->alloc_count();
    }

    // Relay census over intermediate nodes (flow endpoints excluded —
    // they originate/terminate, they don't "participate" as relays).
    std::unordered_set<net::NodeId> endpoints;
    for (const auto& f : flows_) {
      endpoints.insert(f->spec.src);
      endpoints.insert(f->spec.dst);
    }
    std::vector<std::pair<net::NodeId, std::uint64_t>> betas;
    for (net::NodeId i = 0; i < cfg_.node_count; ++i) {
      if (endpoints.contains(i)) continue;
      betas.emplace_back(i, nodes_[i].counters.forwarded_data);
    }
    const security::RelayReport census = security::analyze_relays(betas);
    m.participating_nodes = census.participating_nodes();
    m.relay_stddev = census.normalized_stddev;
    m.alpha = census.alpha;
    m.max_beta = census.max_beta;
    m.betas = census.participants;

    sim::Time earliest_start = sim::Time::max();
    double delay_sum = 0.0;
    std::uint64_t delay_n = 0;
    std::uint64_t arrivals = 0;
    for (const auto& f : flows_) {
      m.segments_delivered += f->stats.unique_segments_delivered;
      m.data_packets_sent += f->stats.data_packets_sent;
      m.retransmits += f->stats.retransmits;
      m.timeouts += f->stats.timeouts;
      m.acks_sent += f->stats.acks_sent;
      m.acks_received += f->stats.acks_received;
      if (cfg_.tcp.trace_cwnd) {
        m.cwnd_traces.push_back(f->source->cwnd_trace());
      }
      arrivals += f->stats.data_packets_received;
      delay_sum += f->stats.delay_sum_s;
      delay_n += f->stats.delay_samples;
      earliest_start = std::min(earliest_start, f->spec.start);
      if (m.deliveries_per_second.size() < f->stats.deliveries_per_second.size())
        m.deliveries_per_second.resize(f->stats.deliveries_per_second.size(), 0);
      for (std::size_t s = 0; s < f->stats.deliveries_per_second.size(); ++s)
        m.deliveries_per_second[s] += f->stats.deliveries_per_second[s];
    }
    m.pr = m.segments_delivered;
    m.avg_delay_s = delay_n == 0 ? 0.0 : delay_sum / static_cast<double>(delay_n);
    const double duration = (cfg_.sim_time - earliest_start).to_seconds();
    m.throughput_seg_s =
        duration > 0 ? static_cast<double>(m.segments_delivered) / duration : 0;
    m.throughput_kbps = m.throughput_seg_s *
                        static_cast<double>(cfg_.tcp.segment_bytes) * 8.0 / 1000.0;
    m.delivery_rate =
        m.data_packets_sent == 0
            ? 0.0
            : static_cast<double>(arrivals) / static_cast<double>(m.data_packets_sent);
    m.highest_interception_ratio = census.highest_interception_ratio(m.pr);

    if (eavesdropper_ != nullptr) {
      m.eavesdropper = eavesdropper_->node();
      m.pe = eavesdropper_->captured_segments();
      m.interception_ratio = eavesdropper_->interception_ratio(m.pr);
    }
    if (adversary_ != nullptr) {
      m.adversary_kind = adversary_->kind();
      m.adversary_count =
          static_cast<std::uint32_t>(adversary_->member_count());
      m.coalition_captured = adversary_->captured_segments();
      m.coalition_interception_ratio = adversary_->interception_ratio(m.pr);
      m.fragments_missing = adversary_->fragments_missing(m.pr);
      m.blackhole_absorbed = adversary_->absorbed_packets();
      m.adversary_members = adversary_->members();
      m.wormhole_tunneled = adversary_->tunneled_frames();
      if (m.adversary_kind == security::AdversaryKind::kGrayhole) {
        m.grayhole_absorbed = adversary_->absorbed_packets();
      }
      m.flood_injected = adversary_->injected_packets();
      if (secrecy_ != nullptr) {
        if (const auto* pool = adversary_->key_recovery(); pool != nullptr) {
          const security::SecrecyPlane::Score s = secrecy_->score(*pool);
          m.shares_captured = s.shares_captured;
          m.keys_recovered = s.keys_recovered;
          m.key_recovery_rate = s.recovery_rate;
        }
      }
      const auto guesses = adversary_->inferred_endpoints(flows_.size());
      if (!guesses.empty() && !flows_.empty()) {
        std::size_t hit = 0;
        for (const auto& f : flows_) {
          for (const auto& g : guesses) {
            if (g.first == f->spec.src && g.second == f->spec.dst) {
              ++hit;
              break;
            }
          }
        }
        m.endpoint_inference_accuracy =
            static_cast<double>(hit) / static_cast<double>(flows_.size());
      }
    }
    if (secrecy_ != nullptr) {
      m.secrecy_shares = secrecy_->shares_per_flow();
      m.secrecy_threshold = secrecy_->threshold_per_flow();
    }
    if (traffic_ != nullptr) {
      const traffic::TrafficReport tr = traffic_->report();
      m.sessions_started = tr.sessions_started;
      m.sessions_completed = tr.sessions_completed;
      m.sessions_rejected = tr.sessions_rejected;
      const security::KeyRecoveryPool* pool =
          adversary_ != nullptr ? adversary_->key_recovery() : nullptr;
      for (std::size_t c = 0; c < traffic::kUserClassCount; ++c) {
        const traffic::ClassReport& cr = tr.classes[c];
        auto& out = m.traffic_classes[c];
        out.flows_completed = cr.flows_completed;
        out.delay_p50_ms = cr.delay_p50_ms;
        out.delay_p95_ms = cr.delay_p95_ms;
        out.delay_p99_ms = cr.delay_p99_ms;
        out.goodput_p50_seg_s = cr.goodput_p50_seg_s;
        if (secrecy_ != nullptr && pool != nullptr) {
          const auto& lanes =
              traffic_->lanes(static_cast<traffic::UserClass>(c));
          if (!lanes.empty()) {
            std::uint64_t recovered = 0;
            for (const std::uint16_t lane : lanes) {
              if (secrecy_->key_recovered(lane, *pool)) ++recovered;
            }
            out.key_exposure = static_cast<double>(recovered) /
                               static_cast<double>(lanes.size());
          }
        }
      }
    }
    if (defense_ != nullptr) {
      m.defense_kind = defense_->kind();
      m.paths_quarantined = defense_->paths_quarantined();
      m.flood_suppressed = defense_->flood_suppressed();
      m.probes_sent = defense_->probes_sent();
      const sim::Time det = defense_->detection_time();
      m.detection_time_s = det.to_seconds();
      if (det > sim::Time::zero()) {
        // Recovery at the 1-s resolution of the delivery histogram: the
        // first whole second *strictly after* the detection second that
        // delivered.  The detection-second bucket is skipped — its
        // deliveries may predate the detection instant, and counting
        // them would report sub-second "recovery" in runs that never
        // delivered again.  Conservative: overstates by up to one
        // bucket when genuine recovery lands in the detection second.
        const auto& dps = m.deliveries_per_second;
        for (auto s = static_cast<std::size_t>(det.to_seconds()) + 1;
             s < dps.size(); ++s) {
          if (dps[s] > 0) {
            m.recovery_time_s =
                std::max(0.0, (static_cast<double>(s) + 1.0) - det.to_seconds());
            break;
          }
        }
      }
      if (!cfg_.adversary.enabled()) {
        // No attacker: every quarantine/suppression is a false alarm.
        const std::uint64_t events =
            defense_->paths_quarantined() + defense_->flood_suppressed();
        const std::uint64_t opportunities = defense_->paths_validated() +
                                            defense_->rreqs_seen() +
                                            defense_->probes_sent();
        m.false_positive_rate =
            opportunities == 0 ? 0.0
                               : static_cast<double>(events) /
                                     static_cast<double>(opportunities);
      }
    }
    for (const Node& n : nodes_) {
      m.control_packets += n.counters.control_transmissions();
      for (std::size_t r = 0; r < m.drops.size(); ++r) {
        m.drops[r] += n.counters.drops[r];
      }
      if (n.mts != nullptr) {
        m.route_switches += n.mts->route_switches();
        m.checks_sent += n.mts->checks_sent();
      }
    }
    return m;
  }

  ScenarioConfig cfg_;
  sim::Rng master_;
  net::TraceHub* external_trace_;
  sim::Scheduler sched_;
  net::UidSource uids_;
  std::unique_ptr<phy::PropagationModel> prop_;
  std::unique_ptr<phy::Channel> channel_;
  /// Declared before nodes_: every routing context holds a raw pointer,
  /// so the model must outlive the protocols (reverse destruction).
  std::unique_ptr<security::DefenseModel> defense_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Flow>> flows_;
  /// Declared after nodes_: the plane's timers and agents call back into
  /// routing, so it must be torn down first (reverse destruction).
  std::unique_ptr<traffic::TrafficPlane> traffic_;
  std::unique_ptr<security::Eavesdropper> eavesdropper_;
  /// Declared before adversary_: pooled adversaries' capture pools hold
  /// the plane pointer, so the plane must outlive them.
  std::unique_ptr<security::SecrecyPlane> secrecy_;
  std::unique_ptr<security::AdversaryModel> adversary_;
};

}  // namespace

RunMetrics run_scenario(const ScenarioConfig& cfg, net::TraceHub* trace) {
  Simulation sim(cfg, trace);
  return sim.run();
}

}  // namespace mts::harness
