#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "harness/campaign.hpp"

namespace mts::harness {

/// Disk cache for campaign sweeps.
///
/// Every per-figure bench projects the *same* protocol x speed x seed
/// grid onto a different metric; rerunning the grid eight times would
/// multiply the bench wall time for nothing.  The cache keys on every
/// input that affects results (grid, repetitions, sim time, node count,
/// seeds, and the scenario knobs the ablations vary) and stores the
/// scalar metrics of each run as CSV.
///
/// Location: $MTS_BENCH_CACHE_DIR, defaulting to ".mts_bench_cache" in
/// the working directory.  Delete the directory to force re-runs; set
/// MTS_BENCH_NO_CACHE=1 to bypass entirely.
class CampaignCache {
 public:
  /// Stable content key for a campaign configuration.
  static std::string key_of(const CampaignConfig& cfg);

  /// The cache root ($MTS_BENCH_CACHE_DIR or ".mts_bench_cache"); the
  /// fabric keeps its per-campaign shard directories underneath it.
  static std::filesystem::path directory();

  /// Loads a cached result; nullopt on miss/corruption/disabled cache.
  static std::optional<CampaignResult> load(const CampaignConfig& cfg);

  /// Persists a result (best effort; failures are silent — the cache is
  /// an optimization, never a correctness dependency).
  static void store(const CampaignConfig& cfg, const CampaignResult& result);

  /// Cached run_campaign: load, else run + store.
  static CampaignResult run(const CampaignConfig& cfg,
                            std::ostream* progress = nullptr);
};

}  // namespace mts::harness
