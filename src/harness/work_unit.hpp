#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/campaign.hpp"

namespace mts::harness {

/// One grid cell of a campaign plus the seed range to run in it: the
/// fabric's unit of scheduling, retry and shard storage.  Indices point
/// into the owning `CampaignConfig`'s lists, so a cell is meaningful
/// only next to the config that produced it — which is exactly the
/// resume contract: the same config partitions into the same cells.
struct WorkCell {
  std::uint32_t protocol = 0;   ///< index into cfg.protocols
  std::uint32_t speed = 0;      ///< index into cfg.speeds
  std::uint32_t adversary = 0;  ///< index into cfg.adversaries
  std::uint32_t defense = 0;    ///< index into cfg.defenses
  std::uint32_t traffic = 0;    ///< index into cfg.traffics
  std::uint32_t rep_begin = 0;  ///< first repetition (seed = seed_base + rep)
  std::uint32_t rep_end = 0;    ///< one past the last repetition

  [[nodiscard]] std::uint32_t runs() const { return rep_end - rep_begin; }
  bool operator==(const WorkCell&) const = default;
};

/// A serializable batch of cells one worker process executes and writes
/// as one shard.  `cells_per_unit > 1` is the SoA batch mode: tiny
/// cells share a single process setup (fork, pools, shard fsync)
/// instead of paying it per cell.
struct WorkUnit {
  /// Deterministic identity: a hash of the campaign's cache key, the
  /// unit's first grid ordinal and its cell count.  Two invocations of
  /// the same (config, cells_per_unit) produce identical ids, so a
  /// resumed or sharded sweep finds exactly the shard files an earlier
  /// one wrote; any config change flips the campaign key and with it
  /// every id.
  std::uint64_t id = 0;
  std::uint32_t index = 0;  ///< position in the partition, 0-based
  std::vector<WorkCell> cells;

  [[nodiscard]] std::size_t total_runs() const {
    std::size_t n = 0;
    for (const WorkCell& c : cells) n += c.runs();
    return n;
  }
};

/// Splits the campaign grid (protocol x speed x adversary x defense x
/// traffic, row-major in that order, full repetition range per cell) into units
/// of `cells_per_unit` consecutive cells (0 acts as 1).  Pure function
/// of its inputs: any two runs partition identically.
std::vector<WorkUnit> partition_campaign(const CampaignConfig& cfg,
                                         std::size_t cells_per_unit);

/// Human label: "unit 3/12: AODV speed=5 adversary=1 defense=0 reps 0..4".
std::string work_unit_label(const CampaignConfig& cfg, const WorkUnit& unit,
                            std::size_t unit_count);

/// Wire form for handing a unit to a worker (`--work-unit` style):
/// "wu2|<id hex>|<index>|p:s:a:d:t:rb:re;...".  (wu1, the pre-traffic
/// 6-field form, is rejected: a stale unit spec must not silently run
/// with a defaulted traffic axis.)
std::string encode_work_unit(const WorkUnit& unit);
std::optional<WorkUnit> decode_work_unit(const std::string& text);

/// The ScenarioConfig for one run of a cell: cfg.base with the cell's
/// protocol/speed/adversary/defense applied and seed = seed_base + rep.
ScenarioConfig cell_scenario(const CampaignConfig& cfg, const WorkCell& cell,
                             std::uint32_t rep);

/// Placeholder row for one run of a cell whose unit exhausted its
/// retries: carries the full cell identity so the merged CSV keeps the
/// grid complete, `run_status = kFailed` so `summarize` skips it.
RunMetrics failed_run_metrics(const CampaignConfig& cfg, const WorkCell& cell,
                              std::uint32_t rep, std::uint32_t attempts,
                              const std::string& error);

}  // namespace mts::harness
