#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/disjoint.hpp"
#include "routing/flood_cache.hpp"
#include "routing/protocol.hpp"
#include "routing/send_buffer.hpp"
#include "sim/timer.hpp"

namespace mts::core {

/// MTS tunables.  Defaults follow the paper: at most five disjoint
/// paths (§III-B), checking every "two to four seconds" (§III-D).
struct MtsConfig {
  std::size_t max_paths = 5;
  sim::Time check_period = sim::Time::sec(3);
  /// Per-round jitter so the five checks of a round do not collide on
  /// air (they are sent "concurrently" per the paper — back-to-back
  /// queueing achieves that without synchronized collisions).
  sim::Time check_jitter = sim::Time::ms(20);
  /// A path (or per-hop forwarding entry) is fresh while its last
  /// confirmation is younger than this many check periods.
  double freshness_periods = 2.5;
  std::uint8_t net_diameter_ttl = 32;
  sim::Time rrep_wait = sim::Time::sec(1);
  std::uint32_t rreq_retries = 3;
  std::size_t buffer_capacity = 64;
  sim::Time buffer_max_age = sim::Time::sec(30);
  sim::Time purge_period = sim::Time::sec(1);
};

/// Multipath TCP Security (the paper's contribution).
///
/// Mechanism summary (paper §III):
///  * On-demand RREQ flood; intermediate nodes forward only the first
///    copy and append themselves to the carried node list, so the paths
///    reaching the destination differ before the destination (§III-B).
///  * The destination replies *immediately* to the first RREQ (no
///    disjoint-computation delay) and silently accumulates up to
///    `max_paths` disjoint alternatives using the next-hop/last-hop rule
///    (§III-B, §III-C).
///  * The destination periodically unicasts checking packets along every
///    stored path; each hop they traverse refreshes per-(dst, path)
///    forwarding state ("construction of forward path", Fig. 4).
///  * The source switches its active path to the one whose check packet
///    arrives *first* in each round — the freshest route wins (§III-E).
///  * Check forwarding failures produce checking-error packets back to
///    the destination, which deletes the failed path (§III-D); data
///    forwarding failures produce RERRs back to the source, which
///    triggers a new discovery (§III-E).
///  * A new RREQ (higher broadcast id) reaching the destination flushes
///    every stored path (§III-D).
class Mts final : public routing::RoutingProtocol {
 public:
  Mts(routing::RoutingContext ctx, MtsConfig cfg, sim::Rng rng);

  void start() override;
  void send_from_transport(net::Packet packet) override;
  void receive_from_mac(net::Packet packet, net::NodeId from) override;
  void on_link_failure(const net::Packet& packet,
                       net::NodeId next_hop) override;
  [[nodiscard]] const char* name() const override { return "MTS"; }

  // --- introspection for tests / examples ------------------------------
  /// Paths currently stored at this node acting as a *destination* for
  /// traffic from `src`.
  [[nodiscard]] std::vector<PathNodes> stored_paths_for(net::NodeId src) const;
  /// The path id this node (as a *source*) currently uses toward `dst`,
  /// or -1 when none.
  [[nodiscard]] int current_path_id(net::NodeId dst) const;
  /// Number of route switches this source has performed.
  [[nodiscard]] std::uint64_t route_switches() const { return switches_; }
  [[nodiscard]] std::uint64_t checks_sent() const { return checks_sent_; }
  [[nodiscard]] std::uint64_t checks_received() const { return checks_recv_; }
  // Acked-checking countermeasure introspection (defense wired via
  // `RoutingContext::defense`; zero everywhere when no defense is set).
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t probe_echoes() const { return probe_echoes_; }
  [[nodiscard]] std::uint64_t paths_quarantined() const {
    return paths_quarantined_;
  }

 private:
  // -- source-side state ------------------------------------------------
  struct SourcePath {
    PathNodes nodes;          ///< intermediate nodes, source-side first
    sim::Time last_confirmed; ///< RREP or check arrival
    bool alive = true;
    /// Demoted by the acked-checking estimator or the leash: stays down
    /// — a check arrival must not resurrect it — until the next
    /// discovery generation replaces the path set.
    bool quarantined = false;
  };
  struct SourceState {
    std::map<std::uint16_t, SourcePath> paths;  ///< by path id
    int current = -1;                           ///< active path id
    std::uint32_t last_switch_round = 0;        ///< check round already honoured
    std::uint32_t retries = 0;
    sim::EventId rreq_timer = sim::kInvalidEvent;
    bool discovering = false;
  };

  // -- destination-side state --------------------------------------------
  struct DestState {
    std::vector<PathNodes> paths;   ///< stored disjoint paths (id = index)
    std::vector<bool> alive;
    std::uint32_t bcast_id = 0;     ///< flood generation the paths belong to
    std::uint32_t check_round = 0;
    sim::Time last_activity;        ///< last data from this source
  };

  // -- per-hop forwarding state (installed by RREP/check/data packets) --
  struct HopEntry {
    net::NodeId next_hop = net::kNoNode;
    sim::Time refreshed;
  };
  /// Key: (final packet destination, path id).
  using HopKey = std::uint64_t;
  static HopKey hop_key(net::NodeId dst, std::uint16_t path_id) {
    return (static_cast<std::uint64_t>(dst) << 16) | path_id;
  }

  void handle_rreq(net::Packet&& p, net::NodeId from);
  void handle_rrep(net::Packet&& p, net::NodeId from);
  void handle_check(net::Packet&& p, net::NodeId from);
  void handle_check_error(net::Packet&& p, net::NodeId from);
  void handle_rerr(net::Packet&& p, net::NodeId from);
  void handle_data(net::Packet&& p, net::NodeId from);

  void start_discovery(net::NodeId dst);
  void send_rreq(net::NodeId dst);
  void discovery_timeout(net::NodeId dst);
  void accept_path_at_destination(net::NodeId src, PathNodes nodes,
                                  std::uint32_t bcast_id);
  void send_rrep(net::NodeId src, const PathNodes& nodes);
  void check_tick();
  void probe_tick();
  void send_probe(net::NodeId dst, std::uint16_t path_id,
                  const SourcePath& sp);
  void handle_probe(const net::MtsProbeHeader& h, net::NodeId peer);
  void quarantine_path(net::NodeId dst, std::uint16_t path_id);
  void send_check(net::NodeId src, DestState& ds, std::uint16_t path_id);
  void send_check_error(const net::MtsCheckHeader& failed_check,
                        std::uint16_t hops_done, net::NodeId broken_to);
  void send_rerr_to_source(net::NodeId src, net::NodeId dst,
                           std::uint16_t path_id, net::NodeId broken_from,
                           net::NodeId broken_to);
  void flush_buffer(net::NodeId dst);
  void source_path_confirmed(net::NodeId dst, std::uint16_t path_id,
                             const PathNodes& nodes, std::uint32_t round,
                             bool switch_allowed);
  void mark_source_path_dead(net::NodeId dst, std::uint16_t path_id);

  void install_hop(net::NodeId final_dst, std::uint16_t path_id,
                   net::NodeId next_hop);
  [[nodiscard]] const HopEntry* fresh_hop(net::NodeId final_dst,
                                          std::uint16_t path_id) const;
  [[nodiscard]] const HopEntry* any_hop(net::NodeId final_dst,
                                        std::uint16_t path_id) const;
  [[nodiscard]] sim::Time freshness_limit() const {
    return cfg_.check_period * cfg_.freshness_periods;
  }
  [[nodiscard]] SourcePath* fresh_source_path(net::NodeId dst);
  void purge();

  MtsConfig cfg_;
  sim::Rng rng_;
  std::uint32_t bcast_id_ = 0;   ///< our RREQ generation counter
  std::uint32_t rrep_id_ = 0;

  std::unordered_map<net::NodeId, SourceState> as_source_;
  std::unordered_map<net::NodeId, DestState> as_dest_;
  std::unordered_map<HopKey, HopEntry> hops_;
  /// Sink side: path id of the most recent data per peer (ACK routing).
  std::unordered_map<net::NodeId, std::uint16_t> last_rx_path_;
  routing::FloodCache rreq_seen_;
  /// Destination-side flood generations the rate limiter refused: later
  /// copies of a suppressed generation must not re-drain the bucket.
  routing::FloodCache suppressed_gens_;
  routing::SendBuffer buffer_;
  std::vector<net::Packet> take_scratch_;  ///< reused by flush paths
  sim::PeriodicTimer check_timer_;
  sim::PeriodicTimer purge_timer_;
  /// Acked-checking data-plane probes (armed only when the defense asks).
  sim::PeriodicTimer probe_timer_;

  std::uint64_t switches_ = 0;
  std::uint64_t checks_sent_ = 0;
  std::uint64_t checks_recv_ = 0;
  std::uint32_t probe_seq_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probe_echoes_ = 0;
  std::uint64_t paths_quarantined_ = 0;
};

}  // namespace mts::core
