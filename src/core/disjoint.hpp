#pragma once

#include <vector>

#include "net/headers.hpp"
#include "net/node_id.hpp"

namespace mts::core {

/// A candidate or stored path between a fixed (source, destination)
/// pair, identified by its intermediate nodes only (endpoints implied).
/// Inline-capacity vector: paths are bounded by the network diameter,
/// so storing and copying them stays allocation-free.
using PathNodes = net::RouteVec;

/// First hop out of the source: the node the source transmits to.
inline net::NodeId first_hop(const PathNodes& nodes, net::NodeId dst) {
  return nodes.empty() ? dst : nodes.front();
}

/// Last hop into the destination: the node the destination hears from.
inline net::NodeId last_hop(const PathNodes& nodes, net::NodeId src) {
  return nodes.empty() ? src : nodes.back();
}

/// The paper's §III-C disjointness test (rule taken from AOMDV [10]):
/// "if every node on a path ensures that all paths to the destination
/// from that node differ in their next and last hops, then the two
/// paths are disjoint."  At the destination this reduces to requiring
/// distinct source-side first hops AND distinct destination-side last
/// hops for every stored path.
///
/// Under MTS's first-copy-only RREQ forwarding, interior segments can
/// still share prefixes (Fig. 3: S-a-b-D vs S-a-b-c-D); this test is
/// exactly what rejects those.
bool next_last_hop_disjoint(const PathNodes& a, const PathNodes& b,
                            net::NodeId src, net::NodeId dst);

/// Strict node-disjointness of intermediate node sets (used as a test
/// oracle and for the ablation comparing the paper's rule with a strict
/// rule).
bool node_disjoint(const PathNodes& a, const PathNodes& b);

/// True when `candidate` may join `stored` under the paper's rule.
bool admissible(const std::vector<PathNodes>& stored,
                const PathNodes& candidate, net::NodeId src, net::NodeId dst);

}  // namespace mts::core
