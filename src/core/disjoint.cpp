#include "core/disjoint.hpp"

#include <algorithm>

namespace mts::core {

bool next_last_hop_disjoint(const PathNodes& a, const PathNodes& b,
                            net::NodeId src, net::NodeId dst) {
  return first_hop(a, dst) != first_hop(b, dst) &&
         last_hop(a, src) != last_hop(b, src);
}

bool node_disjoint(const PathNodes& a, const PathNodes& b) {
  for (net::NodeId n : a) {
    if (std::find(b.begin(), b.end(), n) != b.end()) return false;
  }
  return true;
}

bool admissible(const std::vector<PathNodes>& stored,
                const PathNodes& candidate, net::NodeId src, net::NodeId dst) {
  // A path that visits the endpoints or repeats a node is never valid.
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    if (candidate[i] == src || candidate[i] == dst) return false;
    for (std::size_t j = i + 1; j < candidate.size(); ++j) {
      if (candidate[i] == candidate[j]) return false;
    }
  }
  return std::all_of(stored.begin(), stored.end(), [&](const PathNodes& s) {
    return next_last_hop_disjoint(s, candidate, src, dst);
  });
}

}  // namespace mts::core
