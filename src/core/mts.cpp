#include "core/mts.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace mts::core {

using net::MtsCheckErrorHeader;
using net::MtsCheckHeader;
using net::MtsDataTag;
using net::MtsProbeHeader;
using net::MtsRerrHeader;
using net::MtsRreqHeader;
using net::MtsRrepHeader;
using net::NodeId;
using net::Packet;
using net::PacketKind;

namespace {

/// Position `k` of the destination->source walk along a stored path:
/// k = 0 is the destination, k = n+1 the source, interior positions
/// visit the intermediate list back to front.
NodeId walk_pos(const PathNodes& nodes, NodeId src, NodeId dst,
                std::size_t k) {
  const std::size_t n = nodes.size();
  if (k == 0) return dst;
  if (k <= n) return nodes[n - k];
  return src;
}

}  // namespace

Mts::Mts(routing::RoutingContext ctx, MtsConfig cfg, sim::Rng rng)
    : RoutingProtocol(std::move(ctx)),
      cfg_(cfg),
      rng_(rng),
      buffer_(cfg.buffer_capacity, cfg.buffer_max_age),
      check_timer_(*ctx_.sched, [this] { check_tick(); },
                   sim::EventCategory::kRouting),
      purge_timer_(*ctx_.sched, [this] { purge(); },
                   sim::EventCategory::kRouting),
      probe_timer_(*ctx_.sched, [this] { probe_tick(); },
                   sim::EventCategory::kRouting) {
  sim::require_config(cfg.max_paths >= 1, "MtsConfig: max_paths < 1");
  sim::require_config(cfg.check_period > sim::Time::zero(),
                      "MtsConfig: check_period <= 0");
  sim::require_config(cfg.freshness_periods > 1.0,
                      "MtsConfig: freshness must exceed one check period");
}

void Mts::start() {
  // Stagger the first tick per node so destinations never beat in phase.
  check_timer_.start(cfg_.check_period,
                     cfg_.check_period * rng_.uniform(0.5, 1.0));
  purge_timer_.start(cfg_.purge_period,
                     cfg_.purge_period + sim::Time::seconds(rng_.uniform(0.0, 0.1)));
  if (ctx_.defense != nullptr) {
    const sim::Time period = ctx_.defense->probe_period();
    if (period > sim::Time::zero()) {
      probe_timer_.start(period, period * rng_.uniform(0.5, 1.0));
    }
  }
}

// ---------------------------------------------------------------------------
// Forwarding state.
// ---------------------------------------------------------------------------

void Mts::install_hop(NodeId final_dst, std::uint16_t path_id,
                      NodeId next_hop) {
  hops_[hop_key(final_dst, path_id)] = HopEntry{next_hop, now()};
}

const Mts::HopEntry* Mts::fresh_hop(NodeId final_dst,
                                    std::uint16_t path_id) const {
  auto it = hops_.find(hop_key(final_dst, path_id));
  if (it == hops_.end()) return nullptr;
  if (now() - it->second.refreshed > freshness_limit()) return nullptr;
  return &it->second;
}

const Mts::HopEntry* Mts::any_hop(NodeId final_dst,
                                  std::uint16_t path_id) const {
  auto it = hops_.find(hop_key(final_dst, path_id));
  return it == hops_.end() ? nullptr : &it->second;
}

Mts::SourcePath* Mts::fresh_source_path(NodeId dst) {
  auto it = as_source_.find(dst);
  if (it == as_source_.end()) return nullptr;
  SourceState& ss = it->second;
  auto usable = [&](int id) -> SourcePath* {
    auto pit = ss.paths.find(static_cast<std::uint16_t>(id));
    if (pit == ss.paths.end()) return nullptr;
    SourcePath& sp = pit->second;
    if (!sp.alive || now() - sp.last_confirmed > freshness_limit())
      return nullptr;
    return &sp;
  };
  if (ss.current >= 0) {
    if (SourcePath* sp = usable(ss.current)) return sp;
  }
  // The active path lapsed: fall back to the most recently confirmed
  // live alternative, if any.
  SourcePath* best = nullptr;
  int best_id = -1;
  for (auto& [id, sp] : ss.paths) {
    if (!sp.alive || now() - sp.last_confirmed > freshness_limit()) continue;
    if (best == nullptr || sp.last_confirmed > best->last_confirmed) {
      best = &sp;
      best_id = id;
    }
  }
  if (best != nullptr && best_id != ss.current) {
    ss.current = best_id;
    ++switches_;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Transport-facing.
// ---------------------------------------------------------------------------

void Mts::send_from_transport(Packet packet) {
  const NodeId dst = packet.common().dst;
  if (dst == self()) {
    ctx_.deliver(std::move(packet), self());
    return;
  }
  // Preferred: we are an MTS source for this destination.
  if (SourcePath* sp = fresh_source_path(dst)) {
    const auto pid = static_cast<std::uint16_t>(as_source_[dst].current);
    packet.mutable_routing() = MtsDataTag{pid};
    const HopEntry* hop = any_hop(dst, pid);
    const NodeId next =
        hop != nullptr ? hop->next_hop : first_hop(sp->nodes, dst);
    ctx_.mac->enqueue(std::move(packet), next);
    return;
  }
  // Sink side: route replies back along the path the peer's data last
  // arrived on (its per-hop reverse state is refreshed by that data).
  if (auto it = last_rx_path_.find(dst); it != last_rx_path_.end()) {
    if (const HopEntry* hop = any_hop(dst, it->second)) {
      packet.mutable_routing() = MtsDataTag{it->second};
      ctx_.mac->enqueue(std::move(packet), hop->next_hop);
      return;
    }
  }
  if (auto evicted = buffer_.push(std::move(packet), now())) {
    drop(*evicted, net::DropReason::kSendBufferFull);
  }
  auto& ss = as_source_[dst];
  if (!ss.discovering) start_discovery(dst);
}

void Mts::flush_buffer(NodeId dst) {
  buffer_.take_for(dst, take_scratch_);
  for (Packet& p : take_scratch_) {
    send_from_transport(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Route discovery (§III-B).
// ---------------------------------------------------------------------------

void Mts::start_discovery(NodeId dst) {
  SourceState& ss = as_source_[dst];
  // New generation: drop the stale path set (the destination flushes its
  // side when our higher broadcast id reaches it).
  ss.paths.clear();
  ss.current = -1;
  ss.discovering = true;
  ss.retries = 0;
  send_rreq(dst);
}

void Mts::send_rreq(NodeId dst) {
  ++bcast_id_;
  MtsRreqHeader h;
  h.bcast_id = bcast_id_;
  h.orig = self();
  h.dst = dst;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kMtsRreq;
  common.src = self();
  common.dst = net::kBroadcastId;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_routing() = h;
  rreq_seen_.check_and_insert(self(), h.bcast_id);
  send_to_mac(std::move(p), net::kBroadcastId, /*originated_here=*/true);

  SourceState& ss = as_source_[dst];
  ss.rreq_timer = ctx_.sched->schedule_in(
      cfg_.rrep_wait * (std::int64_t{1} << ss.retries),
      [this, dst] { discovery_timeout(dst); }, sim::EventCategory::kRouting);
}

void Mts::discovery_timeout(NodeId dst) {
  auto it = as_source_.find(dst);
  if (it == as_source_.end() || !it->second.discovering) return;
  SourceState& ss = it->second;
  // An RREP or check got through meanwhile — but only a *usable* path
  // counts as success (leash-quarantined entries also live in the map).
  const bool any_usable = std::any_of(
      ss.paths.begin(), ss.paths.end(),
      [](const auto& kv) { return kv.second.alive && !kv.second.quarantined; });
  if (any_usable) {
    ss.discovering = false;
    return;
  }
  if (ss.retries + 1 >= cfg_.rreq_retries) {
    ss.discovering = false;
    buffer_.take_for(dst, take_scratch_);
    for (Packet& p : take_scratch_) {
      drop(p, net::DropReason::kNoRoute);
    }
    return;
  }
  ++ss.retries;
  send_rreq(dst);
}

void Mts::handle_rreq(Packet&& p, NodeId from) {
  const auto& h = p.header<MtsRreqHeader>();
  if (h.orig == self()) return;
  if (h.dst == self()) {
    // The destination consumes *every* copy (§III-B: "the copies of
    // RREQ are not simply discarded") — dedup applies to relays only.
    accept_path_at_destination(h.orig, h.nodes, h.bcast_id);
    return;
  }
  if (!rreq_seen_.check_and_insert(h.orig, h.bcast_id)) {
    drop(p, net::DropReason::kDuplicate);
    return;
  }
  // Rate-limit defense: after dedup, so copies of one genuine flood
  // never drain the origin's bucket — only novel (orig, id) floods do.
  if (ctx_.defense != nullptr &&
      !ctx_.defense->admit_rreq(self(), h.orig, now())) {
    drop(p, net::DropReason::kRateLimited);
    return;
  }
  if (std::find(h.nodes.begin(), h.nodes.end(), self()) != h.nodes.end()) {
    return;  // route record already contains us
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Mutating tail: TTL + hop count are cell writes; the record append is
  // the one body mutation of the flood (`h` refers to the pre-clone body
  // from here on; do not use it).
  --p.mutable_hop().ttl;
  ++p.mutable_hop().hops;
  p.mutable_header<MtsRreqHeader>().nodes.push_back(self());
  (void)from;
  // "Even in the case where an intermediate node has a fresh route to
  // the destination node, it has to relay the received RREQ" (§III-B).
  rebroadcast_jittered(std::move(p), rng_);
}

void Mts::accept_path_at_destination(NodeId src, PathNodes nodes,
                                     std::uint32_t bcast_id) {
  // Destinations consume every copy of a flood, so the rate-limit
  // defense is charged once per *generation*: the first copy of a new
  // broadcast id pays a token, and a refused generation is remembered so
  // its stragglers neither re-drain the bucket nor sneak a path in.
  // This is what caps an RREQ flood's check spin-up — forged discoveries
  // that never pass admission never arm checking toward the flooder.
  if (ctx_.defense != nullptr) {
    if (suppressed_gens_.contains(src, bcast_id)) return;
    const auto it = as_dest_.find(src);
    const std::uint32_t seen_gen = it == as_dest_.end() ? 0 : it->second.bcast_id;
    const bool novel = bcast_id > seen_gen || it == as_dest_.end();
    if (novel && !ctx_.defense->admit_rreq(self(), src, now())) {
      suppressed_gens_.check_and_insert(src, bcast_id);
      ctx_.counters->drop(net::DropReason::kRateLimited);
      return;
    }
  }
  DestState& ds = as_dest_[src];
  if (bcast_id < ds.bcast_id) return;  // copy from an obsolete flood
  if (bcast_id > ds.bcast_id) {
    // §III-D: a new RREQ (larger broadcast ID) flushes every stored path.
    ds.paths.clear();
    ds.alive.clear();
    ds.bcast_id = bcast_id;
  }
  if (ds.paths.empty()) {
    // First copy: reply immediately, no disjoint-set computation delay.
    if (ctx_.defense != nullptr &&
        !ctx_.defense->admit_path(src, self(), nodes, now())) {
      return;  // leash: a later, feasible copy may still become "first"
    }
    ds.paths.push_back(nodes);
    ds.alive.push_back(true);
    ds.last_activity = now();
    send_rrep(src, nodes);
    return;
  }
  if (ds.paths.size() >= cfg_.max_paths) return;
  if (!admissible(ds.paths, nodes, src, self())) return;
  if (ctx_.defense != nullptr &&
      !ctx_.defense->admit_path(src, self(), nodes, now())) {
    return;
  }
  ds.paths.push_back(std::move(nodes));
  ds.alive.push_back(true);
}

void Mts::send_rrep(NodeId src, const PathNodes& nodes) {
  MtsRrepHeader h;
  h.rrep_id = ++rrep_id_;
  h.orig = src;
  h.dst = self();
  h.hop_count = static_cast<std::uint8_t>(nodes.size() + 1);
  h.nodes = nodes;
  const NodeId next = walk_pos(nodes, src, self(), 1);
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kMtsRrep;
  common.src = self();
  common.dst = src;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_hop().cursor = 1;  // walk position of the first receiver
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Mts::handle_rrep(Packet&& p, NodeId from) {
  const auto& h = p.header<MtsRrepHeader>();
  if (walk_pos(h.nodes, h.orig, h.dst, p.hop().cursor) != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // The RREP seeds forward state for path 0, like a check packet would.
  install_hop(h.dst, /*path_id=*/0, from);
  if (self() == h.orig) {
    source_path_confirmed(h.dst, 0, h.nodes, /*round=*/0,
                          /*switch_allowed=*/false);
    return;
  }
  // Pure forwarding hop: only the cell's cursor moves; the body (route
  // list included) stays shared down the whole walk.
  const std::uint16_t pos = ++p.mutable_hop().cursor;
  const NodeId next = walk_pos(h.nodes, h.orig, h.dst, pos);
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

void Mts::source_path_confirmed(NodeId dst, std::uint16_t path_id,
                                const PathNodes& nodes, std::uint32_t round,
                                bool switch_allowed) {
  SourceState& ss = as_source_[dst];
  const auto pit = ss.paths.find(path_id);
  if (pit != ss.paths.end() && pit->second.quarantined) {
    // A quarantined path stays down: the destination keeps checking it
    // (it has no way to know), but the check must not resurrect it.
    return;
  }
  if (ctx_.defense != nullptr &&
      ctx_.defense->probe_period() > sim::Time::zero() && ss.discovering &&
      switch_allowed) {
    // Quarantining a source's *only* path restarts discovery, which
    // clears the path map — including the quarantine marker.  A stale
    // check from the pre-flush generation arriving now would re-admit
    // the very path the estimator just condemned (with a reset
    // estimator) AND abort the re-discovery.  Under acked checking a
    // source in re-discovery therefore distrusts check-based
    // confirmations (switch_allowed) and waits for the fresh RREP; the
    // new generation's checks confirm normally once discovery closes.
    // Scoped to probing defenses: only the estimator creates the
    // clear-then-resurrect hazard (the leash re-rejects on its own).
    return;
  }
  const bool fresh_entry = pit == ss.paths.end();
  if (fresh_entry && ctx_.defense != nullptr) {
    // Leash admission, once per path: validated when first learned (node
    // drift is negligible then); re-confirmations of an admitted path
    // are not re-judged, or an honest hop near the radio range would be
    // falsely quarantined seconds later just because its ends kept
    // moving.
    if (!ctx_.defense->admit_path(self(), dst, nodes, now())) {
      // The advertised walk is physically implausible (a wormhole's
      // phantom hop).  Park it quarantined so repeat confirmations of
      // the same path id short-circuit above instead of re-validating.
      SourcePath& sp = ss.paths[path_id];
      sp.nodes = nodes;
      sp.alive = false;
      sp.quarantined = true;
      ++paths_quarantined_;
      if (ss.current == path_id) ss.current = -1;
      return;
    }
    // New path under this id (possibly a new discovery generation):
    // estimator state from the id's previous owner is stale.
    ctx_.defense->on_path_established(self(), dst, path_id);
  }
  SourcePath& sp = ss.paths[path_id];
  sp.nodes = nodes;
  sp.last_confirmed = now();
  sp.alive = true;
  if (ss.discovering) {
    ss.discovering = false;
    ctx_.sched->cancel(ss.rreq_timer);
  }
  if (ss.current < 0) {
    ss.current = path_id;
  } else if (switch_allowed && round > ss.last_switch_round) {
    // §III-E: "the route of the first arrived checking packet used is
    // considered the best" — first check of each round wins.
    ss.last_switch_round = round;
    if (ss.current != path_id) {
      ++switches_;
      ss.current = path_id;
      if (ctx_.trace != nullptr) {
        // Record (and its note string) built only when a sink listens.
        ctx_.trace->emit_lazy([&] {
          Packet dummy;
          auto& c = dummy.mutable_common();
          c.kind = PacketKind::kMtsCheck;
          c.src = self();
          c.dst = dst;
          return net::TraceRecord{
              now(), self(), net::TraceOp::kRouteSwitch, std::move(dummy),
              "switched to path " + std::to_string(path_id)};
        });
      }
    }
  }
  flush_buffer(dst);
}

// ---------------------------------------------------------------------------
// Route checking (§III-D).
// ---------------------------------------------------------------------------

void Mts::check_tick() {
  for (auto& [src, ds] : as_dest_) {
    if (ds.paths.empty()) continue;
    ++ds.check_round;
    // The round's checks go out "concurrently" (§III-D).  Randomising
    // the emission order (plus a hair of jitter) keeps the round winner
    // from being decided by queue position: among comparable paths the
    // first check to *arrive* then varies with the channel, which is
    // what rotates the source across its disjoint paths.
    std::vector<std::uint16_t> order;
    for (std::uint16_t pid = 0; pid < ds.paths.size(); ++pid) {
      if (ds.alive[pid]) order.push_back(pid);
    }
    rng_.shuffle(order.begin(), order.end());
    const net::NodeId source = src;
    for (std::uint16_t pid : order) {
      const sim::Time jitter = cfg_.check_jitter * rng_.uniform();
      ctx_.sched->schedule_in(
          jitter,
          [this, source, pid] {
            auto it = as_dest_.find(source);
            if (it == as_dest_.end()) return;
            DestState& state = it->second;
            if (pid >= state.paths.size() || !state.alive[pid]) return;
            send_check(source, state, pid);
          },
          sim::EventCategory::kRouting);
    }
  }
}

void Mts::send_check(NodeId src, DestState& ds, std::uint16_t path_id) {
  MtsCheckHeader h;
  h.check_id = ds.check_round;
  h.path_id = path_id;
  h.checker = self();
  h.source = src;
  h.hop_count = static_cast<std::uint8_t>(ds.paths[path_id].size() + 1);
  h.nodes = ds.paths[path_id];
  const NodeId next = walk_pos(h.nodes, src, self(), 1);
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kMtsCheck;
  common.src = self();
  common.dst = src;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_hop().cursor = 1;  // walk position of the first receiver
  p.mutable_routing() = std::move(h);
  ++checks_sent_;
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Mts::handle_check(Packet&& p, NodeId from) {
  const auto& h = p.header<MtsCheckHeader>();
  if (walk_pos(h.nodes, h.source, h.checker, p.hop().cursor) != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // "When the intermediate node receives the checking packets, it caches
  // the checking packet ID as the entry ID to the destination" — the
  // forward path toward the checker runs through `from`.
  install_hop(h.checker, h.path_id, from);
  if (self() == h.source) {
    ++checks_recv_;
    source_path_confirmed(h.checker, h.path_id, h.nodes, h.check_id,
                          /*switch_allowed=*/true);
    return;
  }
  // Pure forwarding hop: only the cell's cursor moves; the body stays
  // shared down the whole walk.
  const std::uint16_t pos = ++p.mutable_hop().cursor;
  const NodeId next = walk_pos(h.nodes, h.source, h.checker, pos);
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

void Mts::send_check_error(const MtsCheckHeader& failed,
                           std::uint16_t hops_done, NodeId broken_to) {
  // Return route: retrace the walk back toward the checker from our
  // position (the failed check's hop cursor, which names us).
  MtsCheckErrorHeader h;
  h.path_id = failed.path_id;
  h.checker = failed.checker;
  h.flow_source = failed.source;
  h.reporter = self();
  h.broken_from = self();
  h.broken_to = broken_to;
  for (std::size_t k = hops_done; k-- > 0;) {
    h.nodes.push_back(walk_pos(failed.nodes, failed.source, failed.checker, k));
  }
  if (h.nodes.empty()) return;
  const NodeId next = h.nodes[0];
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kMtsCheckError;
  common.src = self();
  common.dst = failed.checker;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_hop().cursor = 0;  // return-route index of the reporter
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Mts::handle_check_error(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<MtsCheckErrorHeader>();
  const std::size_t pos = p.hop().cursor;
  if (pos >= h.nodes.size() || h.nodes[pos] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (self() == h.checker) {
    // §III-D: "the destination node deletes the failed path".
    auto it = as_dest_.find(h.flow_source);
    if (it != as_dest_.end() && h.path_id < it->second.alive.size()) {
      it->second.alive[h.path_id] = false;
    }
    return;
  }
  // Pure forwarding hop: only the cell's cursor moves.
  const std::uint16_t ahead = ++p.mutable_hop().cursor;
  if (ahead >= h.nodes.size()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  const NodeId next = h.nodes[ahead];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

// ---------------------------------------------------------------------------
// Data plane.
// ---------------------------------------------------------------------------

void Mts::handle_data(Packet&& p, NodeId from) {
  // Two data-plane shapes ride kTcpData/kTcpAck: the ordinary data tag
  // and the acked-checking probe.  Both carry a path id and follow the
  // same per-(dst, path) forwarding state; an intermediate node (and any
  // insider sitting at one) cannot tell them apart by kind.
  const auto* tag = p.header_if<MtsDataTag>();
  const auto* probe = p.header_if<MtsProbeHeader>();
  if (tag == nullptr && probe == nullptr) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  const std::uint16_t path_id = tag != nullptr ? tag->path_id : probe->path_id;
  // Reverse state: packets back to p.src flow through `from`.
  install_hop(p.common().src, path_id, from);
  if (p.common().dst == self()) {
    if (probe != nullptr) {
      handle_probe(*probe, p.common().src);
      return;  // never delivered to transport
    }
    last_rx_path_[p.common().src] = path_id;
    if (auto it = as_dest_.find(p.common().src); it != as_dest_.end()) {
      it->second.last_activity = now();
    }
    trace(net::TraceOp::kDeliver, p);
    ctx_.deliver(std::move(p), from);
    return;
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Pure forwarding hop: the TTL decrement is a cell write; the body
  // (and its cached wire image) stays shared down the whole chain.
  --p.mutable_hop().ttl;
  // Forward on any installed state, fresh or not: liveness is the MAC's
  // call (§III-E), and a link that still ACKs is still a route.  The
  // freshness window only gates *path choice* at the source.
  if (const HopEntry* hop = any_hop(p.common().dst, path_id)) {
    send_to_mac(std::move(p), hop->next_hop, /*originated_here=*/false);
    return;
  }
  // No forwarding state at all mid-path: tell the source, drop the packet.
  send_rerr_to_source(p.common().src, p.common().dst, path_id, self(),
                      net::kNoNode);
  drop(p, net::DropReason::kStaleRoute);
}

// ---------------------------------------------------------------------------
// End-to-end acked checking (countermeasure subsystem).
//
// Stock MTS checking travels as control traffic, which an insider
// blackhole forwards faithfully — the mechanism provably cannot see the
// attack (pinned in the PR 4 fingerprints).  When a defense with a probe
// period is installed, the *source* additionally probes every stored
// path on the data plane: probes are kTcpData to the veto seam, so an
// attacker that eats the stream eats the probes, and the destination's
// echo completes the end-to-end loop.  The defense model owns the
// per-path delivery estimator; this code sends probes, routes echoes,
// and honours demotion verdicts by quarantining paths.
// ---------------------------------------------------------------------------

void Mts::probe_tick() {
  if (ctx_.defense == nullptr) return;
  // Collect verdicts under a stable view first: quarantining can cascade
  // into start_discovery(), which clears the very path map being walked.
  std::vector<std::pair<NodeId, std::uint16_t>> suspects;
  std::vector<std::pair<NodeId, std::uint16_t>> healthy;
  for (auto& [dst, ss] : as_source_) {
    for (auto& [path_id, sp] : ss.paths) {
      if (!sp.alive || sp.quarantined) continue;
      if (now() - sp.last_confirmed > freshness_limit()) continue;
      if (ctx_.defense->path_suspect(self(), dst, path_id, now())) {
        suspects.emplace_back(dst, path_id);
      } else {
        healthy.emplace_back(dst, path_id);
      }
    }
  }
  for (const auto& [dst, path_id] : suspects) quarantine_path(dst, path_id);
  for (const auto& [dst, path_id] : healthy) {
    // Re-look-up: a quarantine above may have restarted discovery and
    // replaced (or removed) this entry.
    auto it = as_source_.find(dst);
    if (it == as_source_.end()) continue;
    auto pit = it->second.paths.find(path_id);
    if (pit == it->second.paths.end() || !pit->second.alive ||
        pit->second.quarantined) {
      continue;
    }
    send_probe(dst, path_id, pit->second);
  }
}

void Mts::send_probe(NodeId dst, std::uint16_t path_id, const SourcePath& sp) {
  MtsProbeHeader h;
  h.path_id = path_id;
  h.probe_id = ++probe_seq_;
  h.echo = false;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kTcpData;  // data-plane camouflage
  common.src = self();
  common.dst = dst;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_routing() = h;
  const HopEntry* hop = any_hop(dst, path_id);
  const NodeId next = hop != nullptr ? hop->next_hop : first_hop(sp.nodes, dst);
  ++probes_sent_;
  ctx_.defense->on_probe_sent(self(), dst, path_id, now());
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Mts::handle_probe(const MtsProbeHeader& h, NodeId peer) {
  if (h.echo) {
    // We are the prober: the destination's ack closed the loop.
    ++probe_echoes_;
    if (ctx_.defense != nullptr) {
      ctx_.defense->on_probe_echo(self(), peer, h.path_id, now());
    }
    return;
  }
  // We are the destination: turn the probe around on the reverse state
  // its forward trip just refreshed.  The echo is data-plane too — an
  // attacker on the return leg kills it and the estimator still sees the
  // loss (either direction of the path failing demotes it).
  const HopEntry* back = any_hop(peer, h.path_id);
  if (back == nullptr) return;
  MtsProbeHeader e;
  e.path_id = h.path_id;
  e.probe_id = h.probe_id;
  e.echo = true;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kTcpData;
  common.src = self();
  common.dst = peer;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_routing() = e;
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/true);
}

void Mts::quarantine_path(NodeId dst, std::uint16_t path_id) {
  auto it = as_source_.find(dst);
  if (it == as_source_.end()) return;
  auto pit = it->second.paths.find(path_id);
  if (pit == it->second.paths.end() || pit->second.quarantined) return;
  pit->second.quarantined = true;
  ++paths_quarantined_;
  ctx_.defense->on_path_quarantined(self(), dst, path_id, now());
  // Demote like a routing failure: fail over to the best remaining live
  // path, or trigger a fresh discovery (§III-E's recovery machinery).
  mark_source_path_dead(dst, path_id);
}

// ---------------------------------------------------------------------------
// Failure handling (§III-E).
// ---------------------------------------------------------------------------

void Mts::send_rerr_to_source(NodeId src, NodeId dst, std::uint16_t path_id,
                              NodeId broken_from, NodeId broken_to) {
  if (src == self()) {
    mark_source_path_dead(dst, path_id);
    return;
  }
  const HopEntry* back = any_hop(src, path_id);
  if (back == nullptr) return;  // cannot route the report; give up
  MtsRerrHeader h;
  h.source = src;
  h.dst = dst;
  h.path_id = path_id;
  h.broken_from = broken_from;
  h.broken_to = broken_to;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kMtsRerr;
  common.src = self();
  common.dst = src;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_routing() = h;
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/true);
}

void Mts::handle_rerr(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<MtsRerrHeader>();
  if (h.source == self()) {
    mark_source_path_dead(h.dst, h.path_id);
    return;
  }
  const HopEntry* back = any_hop(h.source, h.path_id);
  if (back == nullptr) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  --p.mutable_hop().ttl;
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/false);
}

void Mts::mark_source_path_dead(NodeId dst, std::uint16_t path_id) {
  auto it = as_source_.find(dst);
  if (it == as_source_.end()) return;
  SourceState& ss = it->second;
  auto pit = ss.paths.find(path_id);
  if (pit != ss.paths.end()) pit->second.alive = false;
  if (ss.current == path_id) {
    ss.current = -1;
    // fresh_source_path() fails over to the best remaining live path on
    // the next send; if none, discovery restarts (§III-E: "the source
    // node then triggers a new route discovery procedure").
    if (SourcePath* alt = fresh_source_path(dst); alt == nullptr) {
      if (!ss.discovering) start_discovery(dst);
    }
  }
}

void Mts::on_link_failure(const Packet& packet, NodeId next_hop) {
  // Any state through the dead neighbour is untrustworthy: erase it so
  // forwarding falls through to the RERR path instead of re-trying it.
  for (auto it = hops_.begin(); it != hops_.end();) {
    it = it->second.next_hop == next_hop ? hops_.erase(it) : ++it;
  }
  auto handle_one = [this, next_hop](const Packet& pkt) {
    switch (pkt.common().kind) {
      case PacketKind::kMtsCheck: {
        // The node named by the hop cursor never got it; we hold the
        // cursor in the failed packet's own cell.
        send_check_error(pkt.header<MtsCheckHeader>(), pkt.hop().cursor,
                         next_hop);
        return;
      }
      case PacketKind::kTcpData:
      case PacketKind::kTcpAck: {
        const auto* tag = pkt.header_if<MtsDataTag>();
        if (tag == nullptr) return;
        if (pkt.common().src == self()) {
          mark_source_path_dead(pkt.common().dst, tag->path_id);
          Packet retry = pkt;
          retry.mutable_routing() = std::monostate{};
          send_from_transport(std::move(retry));
        } else {
          send_rerr_to_source(pkt.common().src, pkt.common().dst, tag->path_id,
                              self(), next_hop);
          drop(pkt, net::DropReason::kStaleRoute);
        }
        return;
      }
      default:
        // RREP / RERR / CHECK_ERROR losses are absorbed: periodic checks
        // and discovery retries recover the state.
        return;
    }
  };
  handle_one(packet);
  for (net::QueueItem& item : ctx_.mac->take_queued_for(next_hop)) {
    handle_one(item.packet);
  }
}

// ---------------------------------------------------------------------------
// Housekeeping.
// ---------------------------------------------------------------------------

void Mts::purge() {
  buffer_.expire(now(), [this](const Packet& p) {
    drop(p, net::DropReason::kSendBufferTimeout);
  });
  // Destinations stop probing a source that has been silent a long time.
  for (auto it = as_dest_.begin(); it != as_dest_.end();) {
    if (!it->second.paths.empty() &&
        now() - it->second.last_activity > sim::Time::sec(30)) {
      it = as_dest_.erase(it);
    } else {
      ++it;
    }
  }
  // Hop entries decay; drop anything long past freshness to bound the map.
  const sim::Time horizon = freshness_limit() * std::int64_t{2};
  for (auto it = hops_.begin(); it != hops_.end();) {
    if (now() - it->second.refreshed > horizon) {
      it = hops_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch and introspection.
// ---------------------------------------------------------------------------

void Mts::receive_from_mac(Packet packet, NodeId from) {
  switch (packet.common().kind) {
    case PacketKind::kMtsRreq: handle_rreq(std::move(packet), from); return;
    case PacketKind::kMtsRrep: handle_rrep(std::move(packet), from); return;
    case PacketKind::kMtsCheck: handle_check(std::move(packet), from); return;
    case PacketKind::kMtsCheckError:
      handle_check_error(std::move(packet), from);
      return;
    case PacketKind::kMtsRerr: handle_rerr(std::move(packet), from); return;
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck: handle_data(std::move(packet), from); return;
    default:
      drop(packet, net::DropReason::kNoRoute);
      return;
  }
}

std::vector<PathNodes> Mts::stored_paths_for(NodeId src) const {
  auto it = as_dest_.find(src);
  if (it == as_dest_.end()) return {};
  std::vector<PathNodes> out;
  for (std::size_t i = 0; i < it->second.paths.size(); ++i) {
    if (it->second.alive[i]) out.push_back(it->second.paths[i]);
  }
  return out;
}

int Mts::current_path_id(NodeId dst) const {
  auto it = as_source_.find(dst);
  return it == as_source_.end() ? -1 : it->second.current;
}

}  // namespace mts::core
