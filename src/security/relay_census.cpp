#include "security/relay_census.hpp"

#include <algorithm>
#include <cmath>

namespace mts::security {

RelayReport analyze_relays(
    const std::vector<std::pair<net::NodeId, std::uint64_t>>& betas) {
  RelayReport r;
  for (const auto& [node, beta] : betas) {
    if (beta == 0) continue;
    r.participants.emplace_back(node, beta);
    r.alpha += beta;
    r.max_beta = std::max(r.max_beta, beta);
  }
  const std::size_t n = r.participants.size();
  if (n < 2 || r.alpha == 0) {
    r.normalized_stddev = 0.0;
    return r;
  }
  // Eq. 3: γ_i = β_i / α.  The γ mean is 1/N by construction.
  const double mean = 1.0 / static_cast<double>(n);
  double ss = 0.0;
  for (const auto& [node, beta] : r.participants) {
    const double gamma =
        static_cast<double>(beta) / static_cast<double>(r.alpha);
    ss += (gamma - mean) * (gamma - mean);
  }
  r.normalized_stddev = std::sqrt(ss / static_cast<double>(n - 1));
  return r;
}

}  // namespace mts::security
