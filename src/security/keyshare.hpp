#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace mts::security {

/// Threshold-secret-sharing secrecy game (the "keyshare" plane).
///
/// The paper scores secrecy as the fraction of fragments an eavesdropper
/// intercepts (Eq. 1) — an information-free metric once fragments are
/// encrypted.  This plane upgrades the game in the spirit of shuffling /
/// multipath secret sharing (arXiv:1307.4076): each TCP flow owns a
/// session key, Shamir-split into one share per disjoint path; every
/// data segment carries its path's share plus key-masked payload bytes,
/// all materialized as real wire bytes via the codec.  A coalition now
/// wins only if the paths it taps carry >= threshold distinct shares —
/// capture *volume* stops mattering; path *coverage* is everything,
/// which is precisely the property multipath transmission claims.
///
/// Determinism: the plane draws keys and polynomial coefficients from
/// its own RNG substream at build time and is read-only afterwards, so
/// enabling the game perturbs nothing (fingerprints are bit-identical;
/// payload bytes are a pure function of flow/seq/path/key).

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic (AES polynomial 0x11B), the field Shamir runs in.
// ---------------------------------------------------------------------------
namespace gf256 {
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);
[[nodiscard]] std::uint8_t inv(std::uint8_t a);  ///< a != 0
}  // namespace gf256

/// One Shamir share: the evaluation point (never 0 — that is the
/// secret) and one polynomial evaluation per key byte.
struct Share {
  std::uint8_t x = 0;
  std::vector<std::uint8_t> bytes;
};

/// Splits `secret` into `n` shares with threshold `t` (1 <= t <= n <=
/// 255): per secret byte, a random degree-(t-1) polynomial with the
/// byte as constant term, evaluated at x = 1..n.
[[nodiscard]] std::vector<Share> shamir_split(
    const std::vector<std::uint8_t>& secret, std::uint32_t n, std::uint32_t t,
    sim::Rng& rng);

/// Lagrange interpolation at x = 0 over the first `t` shares; nullopt
/// when fewer than `t` shares (or inconsistent/duplicate ones) are
/// supplied.  With fewer than `t` honest shares the secret is
/// information-theoretically undetermined — there is nothing to "partly"
/// recover.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> shamir_reconstruct(
    const std::vector<Share>& shares, std::uint32_t t);

/// Scenario-level game description; lives in `ScenarioConfig`.
/// Disabled by default: every pre-existing fingerprint runs with no
/// plane at all.
struct SecrecySpec {
  bool enabled = false;
  /// Session-key length (also the per-share length on the wire).
  std::uint8_t key_bytes = 16;
  /// Shares needed to reconstruct a flow's key; 0 = all of them
  /// (t = n, the strictest game: miss one path, learn nothing).
  std::uint32_t threshold = 0;
};

/// Wire layout of the share trailer at the head of a data segment's
/// payload region: magic, share x, share length, share bytes; the rest
/// of the payload is the key-masked fragment.
inline constexpr std::uint8_t kShareMagic0 = 0x4B;  // 'K'
inline constexpr std::uint8_t kShareMagic1 = 0x53;  // 'S'
inline constexpr std::uint32_t kShareTrailerFixed = 4;

class KeyRecoveryPool;

/// Ground truth of the game: per-flow session keys and their shares,
/// plus the payload materializer the capture side taps.
class SecrecyPlane {
 public:
  SecrecyPlane(const SecrecySpec& spec, sim::Rng rng);

  /// Registers a flow with `n_shares` shares (one per disjoint path the
  /// protocol can spread it over; 1 for unipath protocols).
  void register_flow(std::uint16_t flow_id, std::uint32_t n_shares);

  /// The payload bytes segment (flow, seq) carries on path
  /// `share_index`: share trailer + key-masked fragment, `payload_bytes`
  /// long.  Pure function of its arguments and the flow key.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>>
  materialize_payload(std::uint16_t flow_id, std::uint32_t seq,
                      std::uint32_t share_index,
                      std::uint32_t payload_bytes) const;

  /// Appends the full wire image of a tapped data segment to `out`:
  /// headers via the codec + the materialized payload (cached on the
  /// packet body, so all taps of one frame agree).  False when the
  /// packet is not a data segment of a registered flow.
  bool wire_image(const net::Packet& p, std::vector<std::uint8_t>& out) const;

  struct Score {
    std::uint64_t flows = 0;
    std::uint64_t keys_recovered = 0;
    std::uint64_t shares_captured = 0;  ///< distinct (flow, x) pairs
    double recovery_rate = 0.0;         ///< keys_recovered / flows
  };
  /// Scores a coalition's capture pool against the ground truth: a key
  /// counts as recovered only if the reconstruction from captured shares
  /// equals the real key.
  [[nodiscard]] Score score(const KeyRecoveryPool& pool) const;

  /// Single-flow verdict of the same game — whether `pool`'s captured
  /// shares reconstruct flow `flow_id`'s true key.  False for
  /// unregistered flows.  The per-user-class exposure metric walks the
  /// traffic plane's lanes through this.
  [[nodiscard]] bool key_recovered(std::uint16_t flow_id,
                                   const KeyRecoveryPool& pool) const;

  [[nodiscard]] const SecrecySpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  /// Shares/threshold of the first registered flow (the harness
  /// registers every flow with the same split, so these describe the
  /// scenario; 0 when no flow is registered).
  [[nodiscard]] std::uint32_t shares_per_flow() const;
  [[nodiscard]] std::uint32_t threshold_per_flow() const;
  /// Ground-truth key (tests).
  [[nodiscard]] const std::vector<std::uint8_t>* true_key(
      std::uint16_t flow_id) const;

 private:
  struct FlowSecret {
    std::uint16_t flow_id = 0;
    std::uint32_t n = 1;
    std::uint32_t t = 1;
    std::vector<std::uint8_t> key;
    std::vector<Share> shares;
  };

  [[nodiscard]] const FlowSecret* find(std::uint16_t flow_id) const;

  SecrecySpec spec_;
  sim::Rng rng_;
  std::vector<FlowSecret> flows_;  ///< registration order (deterministic)
  std::unordered_map<std::uint16_t, std::size_t> by_id_;
};

/// The coalition's side of the game: parses captured wire images with
/// the codec (it trusts bytes, not in-memory structs) and hoards any
/// share trailers it finds.  One pool per coalition — shares pool
/// exactly like segments do.
class KeyRecoveryPool {
 public:
  /// Feeds one captured wire image through the codec.
  void capture(const std::uint8_t* data, std::size_t len);

  [[nodiscard]] std::uint64_t images_parsed() const { return parsed_; }
  [[nodiscard]] std::uint64_t parse_failures() const { return failed_; }
  /// Distinct (flow, x) share pairs captured so far.
  [[nodiscard]] std::uint64_t shares_captured() const { return shares_; }
  /// Captured shares of one flow, keyed by evaluation point (ordered,
  /// so reconstruction picks a deterministic subset).
  [[nodiscard]] const std::map<std::uint8_t, std::vector<std::uint8_t>>*
  shares_for(std::uint16_t flow_id) const;

 private:
  std::unordered_map<std::uint16_t,
                     std::map<std::uint8_t, std::vector<std::uint8_t>>>
      flows_;
  std::uint64_t parsed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t shares_ = 0;
};

}  // namespace mts::security
