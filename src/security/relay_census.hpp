#pragma once

#include <cstdint>
#include <vector>

#include "net/node_id.hpp"

namespace mts::security {

/// Per-node relay counts (β_i of the paper's Eq. 2) and the statistics
/// §IV-B derives from them.
struct RelayReport {
  /// β_i > 0 rows only — (node, β).
  std::vector<std::pair<net::NodeId, std::uint64_t>> participants;
  std::uint64_t alpha = 0;        ///< Eq. 2: Σ β_i
  double normalized_stddev = 0.0; ///< Eq. 4 over the γ_i of Eq. 3
  std::uint64_t max_beta = 0;     ///< the most-relied-upon node's count

  [[nodiscard]] std::size_t participating_nodes() const {
    return participants.size();
  }
  /// Fig. 7's "highest interception ratio": the worst case where the
  /// most dependent relay is the eavesdropper — max β_i / Pr.
  [[nodiscard]] double highest_interception_ratio(std::uint64_t pr) const {
    return pr == 0 ? 0.0
                   : static_cast<double>(max_beta) / static_cast<double>(pr);
  }
};

/// Builds the report from per-node relay counts.
///
/// Note on Eq. 4: the paper's formula divides by N, but its own worked
/// example (Table I: σ = 19.60 % from those β values) only reproduces
/// with the sample form N−1.  We follow the worked example — the unit
/// test `relay_census_test` pins Table I's numbers to four digits.
RelayReport analyze_relays(
    const std::vector<std::pair<net::NodeId, std::uint64_t>>& betas);

}  // namespace mts::security
