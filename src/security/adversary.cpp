#include "security/adversary.hpp"

#include <algorithm>

#include "mobility/random_waypoint.hpp"
#include "sim/error.hpp"

namespace mts::security {

const char* adversary_kind_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kColluding: return "colluding";
    case AdversaryKind::kMobile: return "mobile";
    case AdversaryKind::kBlackhole: return "blackhole";
  }
  return "?";
}

std::vector<net::NodeId> resolve_members(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng) {
  if (!spec.members.empty()) {
    for (net::NodeId m : spec.members) {
      sim::require_config(m < node_count, "Adversary: member id out of range");
    }
    return spec.members;
  }
  std::vector<net::NodeId> pool;
  pool.reserve(node_count);
  for (net::NodeId i = 0; i < node_count; ++i) {
    if (!excluded.contains(i)) pool.push_back(i);
  }
  // One shuffle, then a prefix: coalitions of increasing size are nested
  // for a fixed seed (see header).
  rng.shuffle(pool.begin(), pool.end());
  const std::size_t n = std::min<std::size_t>(spec.count, pool.size());
  pool.resize(n);
  return pool;
}

namespace {

/// Passive models only care about decodable TCP data payloads.
bool sniffable(const phy::Frame& f) {
  return f.has_payload() && f.payload.common().kind == net::PacketKind::kTcpData;
}

}  // namespace

// --- ColludingEavesdroppers ------------------------------------------------

ColludingEavesdroppers::ColludingEavesdroppers(
    std::vector<net::NodeId> members, double sniff_range,
    std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()),
      sniff_range_(sniff_range),
      position_of_(std::move(position_of)) {
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  sim::require_config(static_cast<bool>(position_of_),
                      "Adversary: colluding model needs a position lookup");
}

void ColludingEavesdroppers::on_transmission(const Transmission& tx,
                                             const phy::Frame& f) {
  if (!sniffable(f)) return;
  const double r2 = sniff_range_ * sniff_range_;
  for (net::NodeId m : members_) {
    if (m == tx.sender) continue;  // own transmission, not an overhear
    const mobility::Vec2 p = position_of_(m, tx.now);
    if (mobility::distance_sq(p, tx.sender_pos) > r2) continue;
    ++frames_seen_[m];
    pool_.capture(f.payload);
  }
}

std::uint64_t ColludingEavesdroppers::frames_seen_by(net::NodeId n) const {
  auto it = frames_seen_.find(n);
  return it == frames_seen_.end() ? 0 : it->second;
}

// --- MobileEavesdroppers ---------------------------------------------------

MobileEavesdroppers::MobileEavesdroppers(std::uint32_t count,
                                         const mobility::Field& field,
                                         const AdversarySpec& spec,
                                         double sniff_range, sim::Rng rng)
    : sniff_range_(sniff_range) {
  sim::require_config(count >= 1, "Adversary: mobile count < 1");
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  mobility::RandomWaypointConfig rc;
  rc.field = field;
  rc.min_speed = spec.min_speed;
  rc.max_speed = spec.max_speed;
  rc.pause = spec.pause;
  for (std::uint32_t i = 0; i < count; ++i) {
    trajectories_.push_back(
        std::make_unique<mobility::RandomWaypoint>(rc, rng.substream(i)));
  }
}

void MobileEavesdroppers::on_transmission(const Transmission& tx,
                                          const phy::Frame& f) {
  if (!sniffable(f)) return;
  const double r2 = sniff_range_ * sniff_range_;
  for (const auto& traj : trajectories_) {
    const mobility::Vec2 p = traj->position_at(tx.now);
    if (mobility::distance_sq(p, tx.sender_pos) > r2) continue;
    pool_.capture(f.payload);
  }
}

mobility::Vec2 MobileEavesdroppers::position_of_member(std::size_t i,
                                                       sim::Time t) const {
  sim::require(i < trajectories_.size(), "Adversary: member index");
  return trajectories_[i]->position_at(t);
}

// --- BlackholeAttacker -----------------------------------------------------

BlackholeAttacker::BlackholeAttacker(std::vector<net::NodeId> members)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()) {}

bool BlackholeAttacker::absorbs(net::NodeId node, const net::Packet& p) const {
  // Only transit data dies: control packets keep the attacker attractive
  // to route discovery, and traffic terminating at the attacker is its
  // own (it may legitimately be a flow endpoint in pathological specs).
  return member_set_.contains(node) &&
         p.common().kind == net::PacketKind::kTcpData && p.common().dst != node;
}

void BlackholeAttacker::on_absorb(net::NodeId node, const net::Packet& p) {
  ++absorbed_;
  ++per_member_[node];
  pool_.capture(p);
}

std::uint64_t BlackholeAttacker::absorbed_by(net::NodeId n) const {
  auto it = per_member_.find(n);
  return it == per_member_.end() ? 0 : it->second;
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<AdversaryModel> make_adversary(const AdversarySpec& spec,
                                               const AdversaryContext& ctx) {
  if (!spec.enabled()) return nullptr;
  const double range = spec.sniff_range > 0 ? spec.sniff_range : ctx.radio_range;
  switch (spec.kind) {
    case AdversaryKind::kColluding: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible coalition members");
      return std::make_unique<ColludingEavesdroppers>(std::move(members), range,
                                                      ctx.position_of);
    }
    case AdversaryKind::kMobile:
      return std::make_unique<MobileEavesdroppers>(
          spec.count, ctx.field, spec, range, ctx.rng.substream("mobile"));
    case AdversaryKind::kBlackhole: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible blackhole members");
      return std::make_unique<BlackholeAttacker>(std::move(members));
    }
    case AdversaryKind::kNone: break;
  }
  return nullptr;
}

}  // namespace mts::security
