#include "security/adversary.hpp"

#include <algorithm>

#include "mobility/random_waypoint.hpp"
#include "phy/channel.hpp"
#include "sim/error.hpp"

namespace mts::security {

const char* adversary_kind_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kColluding: return "colluding";
    case AdversaryKind::kMobile: return "mobile";
    case AdversaryKind::kBlackhole: return "blackhole";
    case AdversaryKind::kWormhole: return "wormhole";
    case AdversaryKind::kGrayhole: return "grayhole";
    case AdversaryKind::kTrafficAnalysis: return "traffic";
    case AdversaryKind::kRreqFlood: return "rreq-flood";
  }
  return "?";
}

std::vector<net::NodeId> resolve_members(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng) {
  if (!spec.members.empty()) {
    for (net::NodeId m : spec.members) {
      sim::require_config(m < node_count, "Adversary: member id out of range");
    }
    return spec.members;
  }
  std::vector<net::NodeId> pool;
  pool.reserve(node_count);
  for (net::NodeId i = 0; i < node_count; ++i) {
    if (!excluded.contains(i)) pool.push_back(i);
  }
  // One shuffle, then a prefix: coalitions of increasing size are nested
  // for a fixed seed (see header).
  rng.shuffle(pool.begin(), pool.end());
  const std::size_t n = std::min<std::size_t>(spec.count, pool.size());
  pool.resize(n);
  return pool;
}

std::array<net::NodeId, 2> resolve_wormhole_pair(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng,
    const std::function<mobility::Vec2(net::NodeId, sim::Time)>& position_of) {
  if (!spec.members.empty()) {
    sim::require_config(spec.members.size() == 2,
                        "Adversary: wormhole needs exactly 2 members");
    sim::require_config(spec.members[0] != spec.members[1],
                        "Adversary: wormhole endpoints must differ");
    for (net::NodeId m : spec.members) {
      sim::require_config(m < node_count, "Adversary: member id out of range");
    }
    return {spec.members[0], spec.members[1]};
  }
  sim::require_config(static_cast<bool>(position_of),
                      "Adversary: wormhole placement needs a position lookup");
  // Same shuffled pool as resolve_members (minus the count prefix): the
  // anchor is the first shuffled candidate, the far end the candidate
  // farthest from it at t=0.
  AdversarySpec all = spec;
  all.count = node_count;
  all.members.clear();
  const std::vector<net::NodeId> pool =
      resolve_members(all, node_count, excluded, rng);
  sim::require_config(pool.size() >= 2,
                      "Adversary: wormhole needs >= 2 eligible nodes");
  const net::NodeId a = pool[0];
  const mobility::Vec2 ap = position_of(a, sim::Time::zero());
  net::NodeId b = pool[1];
  double best = -1.0;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    const double d =
        mobility::distance_sq(ap, position_of(pool[i], sim::Time::zero()));
    if (d > best) {
      best = d;
      b = pool[i];
    }
  }
  return {a, b};
}

namespace {

/// Passive models only care about decodable TCP data payloads.
bool sniffable(const phy::Frame& f) {
  return f.has_payload() && f.payload.common().kind == net::PacketKind::kTcpData;
}

}  // namespace

// --- ColludingEavesdroppers ------------------------------------------------

ColludingEavesdroppers::ColludingEavesdroppers(
    std::vector<net::NodeId> members, double sniff_range,
    std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()),
      sniff_range_(sniff_range),
      position_of_(std::move(position_of)) {
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  sim::require_config(static_cast<bool>(position_of_),
                      "Adversary: colluding model needs a position lookup");
}

void ColludingEavesdroppers::on_transmission(const Transmission& tx,
                                             const phy::Frame& f) {
  if (!sniffable(f)) return;
  const double r2 = sniff_range_ * sniff_range_;
  for (net::NodeId m : members_) {
    if (m == tx.sender) continue;  // own transmission, not an overhear
    const mobility::Vec2 p = position_of_(m, tx.now);
    if (mobility::distance_sq(p, tx.sender_pos) > r2) continue;
    ++frames_seen_[m];
    pool_.capture(f.payload);
  }
}

std::uint64_t ColludingEavesdroppers::frames_seen_by(net::NodeId n) const {
  auto it = frames_seen_.find(n);
  return it == frames_seen_.end() ? 0 : it->second;
}

// --- MobileEavesdroppers ---------------------------------------------------

MobileEavesdroppers::MobileEavesdroppers(std::uint32_t count,
                                         const mobility::Field& field,
                                         const AdversarySpec& spec,
                                         double sniff_range, sim::Rng rng)
    : sniff_range_(sniff_range) {
  sim::require_config(count >= 1, "Adversary: mobile count < 1");
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  mobility::RandomWaypointConfig rc;
  rc.field = field;
  rc.min_speed = spec.min_speed;
  rc.max_speed = spec.max_speed;
  rc.pause = spec.pause;
  for (std::uint32_t i = 0; i < count; ++i) {
    trajectories_.push_back(
        std::make_unique<mobility::RandomWaypoint>(rc, rng.substream(i)));
  }
}

void MobileEavesdroppers::on_transmission(const Transmission& tx,
                                          const phy::Frame& f) {
  if (!sniffable(f)) return;
  const double r2 = sniff_range_ * sniff_range_;
  for (const auto& traj : trajectories_) {
    const mobility::Vec2 p = traj->position_at(tx.now);
    if (mobility::distance_sq(p, tx.sender_pos) > r2) continue;
    pool_.capture(f.payload);
  }
}

mobility::Vec2 MobileEavesdroppers::position_of_member(std::size_t i,
                                                       sim::Time t) const {
  sim::require(i < trajectories_.size(), "Adversary: member index");
  return trajectories_[i]->position_at(t);
}

// --- BlackholeAttacker -----------------------------------------------------

BlackholeAttacker::BlackholeAttacker(std::vector<net::NodeId> members)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()) {}

bool BlackholeAttacker::absorbs(net::NodeId node, const net::Packet& p,
                                sim::Time /*now*/) const {
  // Only transit data dies: control packets keep the attacker attractive
  // to route discovery, and traffic terminating at the attacker is its
  // own (it may legitimately be a flow endpoint in pathological specs).
  return member_set_.contains(node) &&
         p.common().kind == net::PacketKind::kTcpData && p.common().dst != node;
}

void BlackholeAttacker::on_absorb(net::NodeId node, const net::Packet& p) {
  ++absorbed_;
  ++per_member_[node];
  pool_.capture(p);
}

std::uint64_t BlackholeAttacker::absorbed_by(net::NodeId n) const {
  auto it = per_member_.find(n);
  return it == per_member_.end() ? 0 : it->second;
}

// --- WormholeAttacker ------------------------------------------------------

WormholeAttacker::WormholeAttacker(
    std::array<net::NodeId, 2> endpoints, double sniff_range, double drop_prob,
    std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of,
    sim::Scheduler* sched, phy::Channel* channel, sim::Rng rng)
    : ends_(endpoints),
      sniff_range_(sniff_range),
      drop_prob_(drop_prob),
      position_of_(std::move(position_of)),
      sched_(sched),
      channel_(channel),
      rng_(rng) {
  sim::require_config(ends_[0] != ends_[1],
                      "Adversary: wormhole endpoints must differ");
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  sim::require_config(drop_prob_ >= 0.0 && drop_prob_ <= 1.0,
                      "Adversary: drop_prob outside [0, 1]");
  sim::require_config(static_cast<bool>(position_of_),
                      "Adversary: wormhole needs a position lookup");
  sim::require_config(sched_ != nullptr && channel_ != nullptr,
                      "Adversary: wormhole needs scheduler + channel hooks");
}

void WormholeAttacker::on_transmission(const Transmission& tx,
                                       const phy::Frame& f) {
  const double r2 = sniff_range_ * sniff_range_;
  for (std::size_t e = 0; e < 2; ++e) {
    // The endpoint's own transmissions feed the tunnel too: a wormhole
    // transceiver mirrors everything it sends onto the out-of-band link.
    const bool heard =
        tx.sender == ends_[e] ||
        mobility::distance_sq(position_of_(ends_[e], tx.now), tx.sender_pos) <=
            r2;
    if (!heard) continue;
    tunnel_to(1 - e, tx, f);
    return;  // one crossing per radiation even if both ends hear it
  }
}

bool WormholeAttacker::remember_uid(std::uint64_t uid, sim::Time now) {
  // Age out entries past the freshness window before consulting the set:
  // over a long run the dedup state stays bounded by recent throughput
  // instead of accumulating one entry per packet ever tunneled.
  while (!tunneled_order_.empty() &&
         now - tunneled_order_.front().second > kUidFreshness) {
    const auto& [old_uid, seen_at] = tunneled_order_.front();
    if (auto it = tunneled_uids_.find(old_uid);
        it != tunneled_uids_.end() && it->second == seen_at) {
      tunneled_uids_.erase(it);
    }
    tunneled_order_.pop_front();
  }
  const auto [it, fresh] = tunneled_uids_.try_emplace(uid, now);
  if (!fresh) return false;
  tunneled_order_.emplace_back(uid, now);
  return true;
}

void WormholeAttacker::tunnel_to(std::size_t far_end, const Transmission& tx,
                                 const phy::Frame& f) {
  if (f.has_payload()) {
    // Tunnel each network packet once: retries and far-end rebroadcasts
    // re-entering the tap must not ping-pong through the tunnel.
    if (!remember_uid(f.payload.common().uid, tx.now)) return;
    if (f.payload.common().kind == net::PacketKind::kTcpData) {
      pool_.capture(f.payload);  // the shortcut reads what crosses it
      if (rng_.uniform() < drop_prob_) {
        ++dropped_;
        return;  // selectively dropped instead of replayed
      }
    }
  } else {
    // Of the bare MAC frames, only the endpoints' own ACKs matter: they
    // are what completes unicast handshakes across the phantom link.
    if (f.type != phy::FrameType::kAck || !is_member(tx.sender)) return;
  }
  std::uint32_t slot;
  if (replay_free_ != kNoSlot) {
    slot = replay_free_;
    replay_free_ = replay_pool_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(replay_pool_.size());
    replay_pool_.emplace_back();
  }
  PendingReplay& r = replay_pool_[slot];
  r.frame = f;
  r.spoof = tx.sender;
  r.far_end = far_end;
  r.airtime = tx.airtime;
  ++tunneled_;
  // Zero simulated delay: the replay fires after the in-flight dispatch
  // finishes, in deterministic insertion order.
  sched_->schedule_in(sim::Time::zero(), [this, slot] { fire(slot); },
                      sim::EventCategory::kSecurity);
}

void WormholeAttacker::fire(std::uint32_t slot) {
  phy::Frame frame = std::move(replay_pool_[slot].frame);
  const net::NodeId spoof = replay_pool_[slot].spoof;
  const std::size_t far_end = replay_pool_[slot].far_end;
  const sim::Time airtime = replay_pool_[slot].airtime;
  replay_pool_[slot].next_free = replay_free_;
  replay_free_ = slot;
  channel_->inject(spoof, position_of_(ends_[far_end], sched_->now()), frame,
                   airtime);
}

// --- GrayholeAttacker ------------------------------------------------------

GrayholeAttacker::GrayholeAttacker(std::vector<net::NodeId> members,
                                   double drop_prob, sim::Time active_window,
                                   sim::Time active_period, sim::Rng rng)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()),
      drop_prob_(drop_prob),
      active_window_(active_window),
      active_period_(active_period),
      rng_(rng) {
  sim::require_config(drop_prob_ >= 0.0 && drop_prob_ <= 1.0,
                      "Adversary: drop_prob outside [0, 1]");
  // Both-or-neither: a half-configured duty cycle (window without
  // period, or vice versa) would silently run always-on — make the typo
  // a config error instead of a wrong experiment.
  sim::require_config((active_window_ <= sim::Time::zero()) ==
                          (active_period_ <= sim::Time::zero()),
                      "Adversary: grayhole active_window and active_period "
                      "must be set together (or both zero)");
  sim::require_config(
      active_period_ <= sim::Time::zero() || active_window_ <= active_period_,
      "Adversary: grayhole active_window > active_period");
}

bool GrayholeAttacker::active_at(sim::Time now) const {
  if (active_period_ <= sim::Time::zero() ||
      active_window_ <= sim::Time::zero()) {
    return true;  // no duty cycle configured: always on
  }
  return now.nanoseconds() % active_period_.nanoseconds() <
         active_window_.nanoseconds();
}

bool GrayholeAttacker::absorbs(net::NodeId node, const net::Packet& p,
                               sim::Time now) const {
  if (!member_set_.contains(node)) return false;
  if (p.common().kind != net::PacketKind::kTcpData || p.common().dst == node) {
    return false;
  }
  if (!active_at(now)) return false;
  // One Bernoulli draw per eligible packet, in MAC receive order.
  return rng_.uniform() < drop_prob_;
}

void GrayholeAttacker::on_absorb(net::NodeId /*node*/, const net::Packet& p) {
  ++absorbed_;
  pool_.capture(p);  // a grayhole reads what it eats, like the blackhole
}

// --- TrafficAnalysisAttacker -----------------------------------------------

TrafficAnalysisAttacker::TrafficAnalysisAttacker(
    std::vector<net::NodeId> members, double sniff_range,
    std::uint32_t node_count,
    std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()),
      sniff_range_(sniff_range),
      position_of_(std::move(position_of)),
      profiles_(node_count) {
  sim::require_config(sniff_range_ > 0, "Adversary: sniff_range <= 0");
  sim::require_config(static_cast<bool>(position_of_),
                      "Adversary: traffic analysis needs a position lookup");
}

void TrafficAnalysisAttacker::on_transmission(const Transmission& tx,
                                              const phy::Frame& f) {
  if (tx.sender >= profiles_.size()) return;  // not a population node
  // Metadata only — transmitter, MAC addressee, frame bytes; payloads
  // are never decoded (captured_segments() stays 0 by construction).
  bool heard = member_set_.contains(tx.sender);
  if (!heard) {
    const double r2 = sniff_range_ * sniff_range_;
    for (net::NodeId m : members_) {
      if (mobility::distance_sq(position_of_(m, tx.now), tx.sender_pos) <=
          r2) {
        heard = true;
        break;
      }
    }
  }
  if (!heard) return;
  ++frames_;
  profiles_[tx.sender].sent_bytes += f.bytes;
  if (f.receiver < profiles_.size()) {
    profiles_[f.receiver].recv_bytes += f.bytes;
  }
}

std::int64_t TrafficAnalysisAttacker::volume_skew(net::NodeId n) const {
  if (n >= profiles_.size()) return 0;
  return static_cast<std::int64_t>(profiles_[n].sent_bytes) -
         static_cast<std::int64_t>(profiles_[n].recv_bytes);
}

std::vector<std::pair<net::NodeId, net::NodeId>>
TrafficAnalysisAttacker::inferred_endpoints(std::size_t k) const {
  // Candidates: every node observed at all.  Sorting is total (skew,
  // then id), so the inference is deterministic for a fixed seed.
  std::vector<net::NodeId> seen;
  for (net::NodeId n = 0; n < profiles_.size(); ++n) {
    if (profiles_[n].sent_bytes != 0 || profiles_[n].recv_bytes != 0) {
      seen.push_back(n);
    }
  }
  std::vector<net::NodeId> by_source = seen;
  std::sort(by_source.begin(), by_source.end(),
            [this](net::NodeId a, net::NodeId b) {
              const std::int64_t sa = volume_skew(a), sb = volume_skew(b);
              return sa != sb ? sa > sb : a < b;
            });
  std::vector<net::NodeId> by_sink = seen;
  std::sort(by_sink.begin(), by_sink.end(),
            [this](net::NodeId a, net::NodeId b) {
              const std::int64_t sa = volume_skew(a), sb = volume_skew(b);
              return sa != sb ? sa < sb : a < b;
            });
  std::vector<std::pair<net::NodeId, net::NodeId>> out;
  for (std::size_t i = 0; i < k && i < seen.size(); ++i) {
    if (by_source[i] == by_sink[i]) continue;  // degenerate observation
    out.emplace_back(by_source[i], by_sink[i]);
  }
  return out;
}

// --- RreqFlooder -----------------------------------------------------------

RreqFlooder::RreqFlooder(
    std::vector<net::NodeId> members, net::PacketKind rreq_kind,
    std::uint32_t node_count, double rate, sim::Time start,
    sim::Scheduler* sched,
    std::function<void(net::NodeId, net::Packet&&)> inject, sim::Rng rng)
    : members_(std::move(members)),
      member_set_(members_.begin(), members_.end()),
      rreq_kind_(rreq_kind),
      node_count_(node_count),
      interval_(sim::Time::seconds(1.0 / rate)),
      start_(start),
      sched_(sched),
      inject_(std::move(inject)),
      rng_(rng) {
  sim::require_config(rate > 0, "Adversary: flood_rate <= 0");
  sim::require_config(start_ >= sim::Time::zero(),
                      "Adversary: flood_start < 0");
  sim::require_config(node_count_ >= 2, "Adversary: flood needs >= 2 nodes");
  sim::require_config(
      rreq_kind_ == net::PacketKind::kAodvRreq ||
          rreq_kind_ == net::PacketKind::kDsrRreq ||
          rreq_kind_ == net::PacketKind::kMtsRreq,
      "Adversary: rreq_kind is not a route-discovery kind");
  sim::require_config(sched_ != nullptr && static_cast<bool>(inject_),
                      "Adversary: flood needs scheduler + inject hooks");
}

void RreqFlooder::on_start(sim::Time sim_end) {
  sim_end_ = sim_end;
  if (start_ > sim_end_) return;
  sched_->schedule_in(start_ - sched_->now(), [this] { tick(); },
                      sim::EventCategory::kSecurity);
}

void RreqFlooder::tick() {
  for (net::NodeId m : members_) inject_one(m);
  injected_ += members_.size();
  if (sched_->now() + interval_ <= sim_end_) {
    sched_->schedule_in(interval_, [this] { tick(); },
                        sim::EventCategory::kSecurity);
  }
}

void RreqFlooder::inject_one(net::NodeId member) {
  // Rotate victims over the real population (never the member itself):
  // a live destination answers with an RREP, maximizing the overhead the
  // flood induces; real ids keep every downstream code path ordinary.
  net::NodeId victim;
  do {
    victim = static_cast<net::NodeId>(rng_.uniform_int(0, node_count_ - 1));
  } while (victim == member);
  const std::uint32_t id = next_id_++;

  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = rreq_kind_;
  common.src = member;
  common.dst = net::kBroadcastId;
  common.originated = sched_->now();
  switch (rreq_kind_) {
    case net::PacketKind::kAodvRreq: {
      net::AodvRreqHeader h;
      h.rreq_id = id;
      h.orig = member;
      h.dst = victim;
      h.orig_seq = 1;  // modest: do not poison genuine routes to the member
      p.mutable_routing() = h;
      break;
    }
    case net::PacketKind::kDsrRreq: {
      net::DsrRreqHeader h;
      h.rreq_id = id;
      h.orig = member;
      h.target = victim;
      p.mutable_routing() = h;
      break;
    }
    case net::PacketKind::kMtsRreq: {
      net::MtsRreqHeader h;
      h.bcast_id = id;
      h.orig = member;
      h.dst = victim;
      p.mutable_routing() = h;
      break;
    }
    default: break;  // unreachable (constructor validated)
  }
  inject_(member, std::move(p));
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<AdversaryModel> make_adversary(const AdversarySpec& spec,
                                               const AdversaryContext& ctx) {
  if (!spec.enabled()) return nullptr;
  const double range = spec.sniff_range > 0 ? spec.sniff_range : ctx.radio_range;
  std::unique_ptr<AdversaryModel> model;
  switch (spec.kind) {
    case AdversaryKind::kColluding: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible coalition members");
      model = std::make_unique<ColludingEavesdroppers>(
          std::move(members), range, ctx.position_of);
      break;
    }
    case AdversaryKind::kMobile:
      model = std::make_unique<MobileEavesdroppers>(
          spec.count, ctx.field, spec, range, ctx.rng.substream("mobile"));
      break;
    case AdversaryKind::kBlackhole: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible blackhole members");
      model = std::make_unique<BlackholeAttacker>(std::move(members));
      break;
    }
    case AdversaryKind::kWormhole: {
      auto ends =
          resolve_wormhole_pair(spec, ctx.node_count, ctx.excluded,
                                ctx.rng.substream("members"), ctx.position_of);
      model = std::make_unique<WormholeAttacker>(
          ends, range, spec.drop_prob, ctx.position_of, ctx.sched, ctx.channel,
          ctx.rng.substream("wormhole"));
      break;
    }
    case AdversaryKind::kGrayhole: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible grayhole members");
      model = std::make_unique<GrayholeAttacker>(
          std::move(members), spec.drop_prob, spec.active_window,
          spec.active_period, ctx.rng.substream("grayhole"));
      break;
    }
    case AdversaryKind::kTrafficAnalysis: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible traffic-analysis members");
      model = std::make_unique<TrafficAnalysisAttacker>(
          std::move(members), range, ctx.node_count, ctx.position_of);
      break;
    }
    case AdversaryKind::kRreqFlood: {
      auto members = resolve_members(spec, ctx.node_count, ctx.excluded,
                                     ctx.rng.substream("members"));
      sim::require_config(!members.empty(),
                          "Adversary: no eligible flood members");
      model = std::make_unique<RreqFlooder>(
          std::move(members), ctx.rreq_kind, ctx.node_count, spec.flood_rate,
          spec.flood_start, ctx.sched, ctx.inject_control,
          ctx.rng.substream("flood"));
      break;
    }
    case AdversaryKind::kNone: break;
  }
  // Pool-backed models play the secrecy game: captured segments are
  // materialized into wire bytes and parsed for key shares.
  if (model != nullptr && ctx.secrecy != nullptr) {
    if (auto* pooled = dynamic_cast<PooledAdversary*>(model.get())) {
      pooled->attach_secrecy(ctx.secrecy);
    }
  }
  return model;
}

}  // namespace mts::security
