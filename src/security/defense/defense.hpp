#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "mobility/vec2.hpp"
#include "net/headers.hpp"
#include "net/node_id.hpp"
#include "routing/defense_hooks.hpp"
#include "security/context.hpp"
#include "sim/time.hpp"

namespace mts::security {

/// The countermeasure families — the defense side of the adversary
/// taxonomy's ledger, one per open attack the fingerprints pinned:
///
///  - kAckedChecking: end-to-end acked checking for MTS.  Stock MTS
///    checking is control traffic, which a blackhole forwards faithfully
///    — the mechanism provably cannot see the attack.  Here the *source*
///    probes every stored path on the data plane (probes travel as
///    kTcpData, so the insider veto eats them exactly like the stream it
///    is hiding in) and the destination echoes each probe back; a
///    per-path delivery EWMA over duty-cycle-sized windows demotes paths
///    whose probes stop coming back.  Detects the insider blackhole and
///    the duty-cycled grayhole that sits under a long-run delivery-rate
///    detector.
///  - kWormholeLeash: packet-leash path admission (Hu/Perrig/Johnson).
///    A node about to store or use an advertised path checks that every
///    consecutive hop is geometrically feasible: no single hop may span
///    more than `leash_slack` x radio range.  The wormhole's phantom
///    shortcut names two "adjacent" nodes an arena apart, so tunnelled
///    paths are quarantined at admission.  (A *temporal* leash — RTT
///    versus advertised hop count — is blind to this simulator's
///    zero-delay tunnel by construction: the tunnel removes on-air hops
///    and their latency together, so RTT stays consistent with the
///    shortened hop count.  docs/threat-model.md records that finding.)
///  - kFloodRateLimit: per-origin token-bucket admission for route
///    discoveries, consulted by every protocol after its own duplicate
///    suppression.  Caps the RREQ-flood DoS amplification (and MTS's
///    check spin-up) at `rreq_rate` genuine-looking discoveries per
///    origin per second with burst `rreq_burst`.
///  - kSuite: all three at once — the "defenses on" configuration the
///    false-positive runs pin.
enum class DefenseKind : std::uint8_t {
  kNone = 0,
  kAckedChecking,
  kWormholeLeash,
  kFloodRateLimit,
  kSuite,
};

const char* defense_kind_name(DefenseKind k);

/// Scenario-level defense description.  Lives in `ScenarioConfig`;
/// campaigns sweep vectors of these alongside the adversary axis.
struct DefenseSpec {
  DefenseKind kind = DefenseKind::kNone;

  // --- acked checking ---------------------------------------------------
  /// Data-plane probe cadence per stored path.  Sized to the duty cycles
  /// worth detecting: a window of W seconds sees ~W/probe_period probes.
  sim::Time probe_period = sim::Time::ms(400);
  /// EWMA step per probe outcome (1 = echoed, 0 = lost).
  double ewma_alpha = 0.5;
  /// Demote a path when its EWMA falls below this.
  double demote_threshold = 0.35;
  /// Never demote on fewer than this many probes (cold-start guard).
  std::uint32_t min_probes = 3;

  // --- wormhole leash ---------------------------------------------------
  /// Per-hop feasibility budget as a multiple of the radio range; slack
  /// covers node drift between discovery and validation.
  double leash_slack = 1.3;

  // --- flood rate limiting ---------------------------------------------
  /// Sustained route discoveries admitted per origin per second.
  double rreq_rate = 1.0;
  /// Token-bucket depth (genuine retry bursts fit under it).
  double rreq_burst = 3.0;

  [[nodiscard]] bool enabled() const { return kind != DefenseKind::kNone; }
};

/// Pluggable countermeasure, mirroring `AdversaryModel`: one shared
/// instance per scenario, consulted by every node through the routing
/// layer's `DefenseHooks` seam.  Concrete models override only the
/// hooks they implement and keep their own metrics; the harness reads
/// them into `RunMetrics` after the run.
class DefenseModel : public routing::DefenseHooks {
 public:
  [[nodiscard]] virtual DefenseKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  // --- metrics ----------------------------------------------------------
  /// Time of the first quarantine/suppression; zero = never fired.
  [[nodiscard]] virtual sim::Time detection_time() const {
    return sim::Time::zero();
  }
  /// Paths demoted by the estimator or rejected by the leash.
  [[nodiscard]] virtual std::uint64_t paths_quarantined() const { return 0; }
  /// Path admissions evaluated (leash denominators).
  [[nodiscard]] virtual std::uint64_t paths_validated() const { return 0; }
  /// Route discoveries suppressed by the rate limiter.
  [[nodiscard]] virtual std::uint64_t flood_suppressed() const { return 0; }
  /// Route discoveries evaluated by the rate limiter.
  [[nodiscard]] virtual std::uint64_t rreqs_seen() const { return 0; }
  /// Data-plane probes sent / echoes received end-to-end.
  [[nodiscard]] virtual std::uint64_t probes_sent() const { return 0; }
  [[nodiscard]] virtual std::uint64_t probe_echoes() const { return 0; }
};

/// (a) End-to-end acked checking: the per-(source, destination, path)
/// delivery estimator behind MTS's data-plane probing.  The protocol
/// sends the probes and honours the verdicts; this model owns the EWMA
/// state, so "what counts as a dead path" is defense policy, not
/// protocol logic.
class AckedCheckingDefense final : public DefenseModel {
 public:
  explicit AckedCheckingDefense(const DefenseSpec& spec);

  [[nodiscard]] DefenseKind kind() const override {
    return DefenseKind::kAckedChecking;
  }
  [[nodiscard]] const char* name() const override { return "acked-checking"; }

  [[nodiscard]] sim::Time probe_period() const override { return period_; }
  void on_path_established(net::NodeId self, net::NodeId dst,
                           std::uint16_t path_id) override;
  void on_probe_sent(net::NodeId self, net::NodeId dst, std::uint16_t path_id,
                     sim::Time now) override;
  void on_probe_echo(net::NodeId self, net::NodeId dst, std::uint16_t path_id,
                     sim::Time now) override;
  [[nodiscard]] bool path_suspect(net::NodeId self, net::NodeId dst,
                                  std::uint16_t path_id,
                                  sim::Time now) override;
  void on_path_quarantined(net::NodeId self, net::NodeId dst,
                           std::uint16_t path_id, sim::Time now) override;

  [[nodiscard]] sim::Time detection_time() const override {
    return first_detection_;
  }
  [[nodiscard]] std::uint64_t paths_quarantined() const override {
    return quarantined_;
  }
  [[nodiscard]] std::uint64_t probes_sent() const override { return sent_; }
  [[nodiscard]] std::uint64_t probe_echoes() const override { return echoes_; }

  /// Current EWMA for one path (introspection / tests); 1.0 if unseen.
  [[nodiscard]] double ewma(net::NodeId self, net::NodeId dst,
                            std::uint16_t path_id) const;

 private:
  struct Estimator {
    double ewma = 1.0;
    std::uint32_t probes = 0;
    bool outstanding = false;  ///< last probe not yet echoed
  };
  using Key = std::tuple<net::NodeId, net::NodeId, std::uint16_t>;

  sim::Time period_;
  double alpha_;
  double threshold_;
  std::uint32_t min_probes_;
  /// Ordered map: consulted once per probe tick per path, never on the
  /// per-packet path — no hashing needed.
  std::map<Key, Estimator> estimators_;
  std::uint64_t sent_ = 0;
  std::uint64_t echoes_ = 0;
  std::uint64_t quarantined_ = 0;
  sim::Time first_detection_;
};

/// (b) Wormhole leash: geometric path admission.  Needs a position
/// oracle (the harness binds node mobility, exactly as it does for the
/// adversary context) — this models nodes knowing their own loosely
/// synchronized positions, the assumption geographical packet leashes
/// make.
class WormholeLeashDefense final : public DefenseModel {
 public:
  WormholeLeashDefense(
      double radio_range, double slack,
      std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of);

  [[nodiscard]] DefenseKind kind() const override {
    return DefenseKind::kWormholeLeash;
  }
  [[nodiscard]] const char* name() const override { return "wormhole-leash"; }

  [[nodiscard]] bool admit_path(net::NodeId src, net::NodeId dst,
                                const net::RouteVec& intermediates,
                                sim::Time now) override;

  [[nodiscard]] sim::Time detection_time() const override {
    return first_detection_;
  }
  [[nodiscard]] std::uint64_t paths_quarantined() const override {
    return quarantined_;
  }
  [[nodiscard]] std::uint64_t paths_validated() const override {
    return validated_;
  }

 private:
  double limit_sq_;
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of_;
  std::uint64_t validated_ = 0;
  std::uint64_t quarantined_ = 0;
  sim::Time first_detection_;
};

/// (c) Flood rate limiting: one token bucket per (node, origin) pair —
/// every node polices every origin independently, as a deployed filter
/// would.  Buckets start full so genuine discovery bursts (retries with
/// backoff) pass; a flooder's forged ids drain the bucket at its first
/// honest hop and the amplification dies there.
class FloodRateLimitDefense final : public DefenseModel {
 public:
  FloodRateLimitDefense(double rate, double burst);

  [[nodiscard]] DefenseKind kind() const override {
    return DefenseKind::kFloodRateLimit;
  }
  [[nodiscard]] const char* name() const override { return "flood-limit"; }

  [[nodiscard]] bool admit_rreq(net::NodeId self, net::NodeId origin,
                                sim::Time now) override;

  [[nodiscard]] sim::Time detection_time() const override {
    return first_detection_;
  }
  [[nodiscard]] std::uint64_t flood_suppressed() const override {
    return suppressed_;
  }
  [[nodiscard]] std::uint64_t rreqs_seen() const override { return seen_; }

 private:
  struct Bucket {
    double tokens;
    sim::Time last;
  };

  double rate_;
  double burst_;
  std::map<std::pair<net::NodeId, net::NodeId>, Bucket> buckets_;
  std::uint64_t seen_ = 0;
  std::uint64_t suppressed_ = 0;
  sim::Time first_detection_;
};

/// (d) The full suite: every hook fans out to all three members (no
/// short-circuiting — each model keeps honest denominators), admission
/// verdicts AND together, and the metrics aggregate.
class DefenseSuite final : public DefenseModel {
 public:
  explicit DefenseSuite(std::vector<std::unique_ptr<DefenseModel>> members);

  [[nodiscard]] DefenseKind kind() const override {
    return DefenseKind::kSuite;
  }
  [[nodiscard]] const char* name() const override { return "suite"; }

  [[nodiscard]] bool admit_rreq(net::NodeId self, net::NodeId origin,
                                sim::Time now) override;
  [[nodiscard]] bool admit_path(net::NodeId src, net::NodeId dst,
                                const net::RouteVec& intermediates,
                                sim::Time now) override;
  [[nodiscard]] sim::Time probe_period() const override;
  void on_path_established(net::NodeId self, net::NodeId dst,
                           std::uint16_t path_id) override;
  void on_probe_sent(net::NodeId self, net::NodeId dst, std::uint16_t path_id,
                     sim::Time now) override;
  void on_probe_echo(net::NodeId self, net::NodeId dst, std::uint16_t path_id,
                     sim::Time now) override;
  [[nodiscard]] bool path_suspect(net::NodeId self, net::NodeId dst,
                                  std::uint16_t path_id,
                                  sim::Time now) override;
  void on_path_quarantined(net::NodeId self, net::NodeId dst,
                           std::uint16_t path_id, sim::Time now) override;

  [[nodiscard]] sim::Time detection_time() const override;
  [[nodiscard]] std::uint64_t paths_quarantined() const override;
  [[nodiscard]] std::uint64_t paths_validated() const override;
  [[nodiscard]] std::uint64_t flood_suppressed() const override;
  [[nodiscard]] std::uint64_t rreqs_seen() const override;
  [[nodiscard]] std::uint64_t probes_sent() const override;
  [[nodiscard]] std::uint64_t probe_echoes() const override;

 private:
  std::vector<std::unique_ptr<DefenseModel>> members_;
};

/// Context the factory needs to instantiate a model for one scenario.
/// All plumbing the defenses use (radio range for the leash, the
/// position oracle) comes from the shared `SecurityContext`; the alias
/// exists so `make_defense` keeps its signature and future
/// defense-specific hooks have a home.
struct DefenseContext : SecurityContext {};

/// Builds the model described by `spec`, or nullptr for kNone.
std::unique_ptr<DefenseModel> make_defense(const DefenseSpec& spec,
                                           const DefenseContext& ctx);

}  // namespace mts::security
