#include "security/defense/defense.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace mts::security {

const char* defense_kind_name(DefenseKind k) {
  switch (k) {
    case DefenseKind::kNone: return "none";
    case DefenseKind::kAckedChecking: return "acked-checking";
    case DefenseKind::kWormholeLeash: return "wormhole-leash";
    case DefenseKind::kFloodRateLimit: return "flood-limit";
    case DefenseKind::kSuite: return "suite";
  }
  return "?";
}

// --- AckedCheckingDefense --------------------------------------------------

AckedCheckingDefense::AckedCheckingDefense(const DefenseSpec& spec)
    : period_(spec.probe_period),
      alpha_(spec.ewma_alpha),
      threshold_(spec.demote_threshold),
      min_probes_(spec.min_probes) {
  sim::require_config(period_ > sim::Time::zero(),
                      "Defense: probe_period <= 0");
  sim::require_config(alpha_ > 0.0 && alpha_ <= 1.0,
                      "Defense: ewma_alpha outside (0, 1]");
  sim::require_config(threshold_ > 0.0 && threshold_ < 1.0,
                      "Defense: demote_threshold outside (0, 1)");
  sim::require_config(min_probes_ >= 1, "Defense: min_probes < 1");
}

void AckedCheckingDefense::on_path_established(net::NodeId self,
                                               net::NodeId dst,
                                               std::uint16_t path_id) {
  // Path ids restart per discovery generation; a fresh path must not
  // inherit the estimator of the dead one that wore the id before it.
  estimators_.erase(Key{self, dst, path_id});
}

void AckedCheckingDefense::on_probe_sent(net::NodeId self, net::NodeId dst,
                                         std::uint16_t path_id,
                                         sim::Time /*now*/) {
  Estimator& e = estimators_[Key{self, dst, path_id}];
  if (e.outstanding) {
    // The previous probe never echoed within a full period: a loss.
    e.ewma = (1.0 - alpha_) * e.ewma;
  }
  e.outstanding = true;
  ++e.probes;
  ++sent_;
}

void AckedCheckingDefense::on_probe_echo(net::NodeId self, net::NodeId dst,
                                         std::uint16_t path_id,
                                         sim::Time /*now*/) {
  auto it = estimators_.find(Key{self, dst, path_id});
  if (it == estimators_.end() || !it->second.outstanding) {
    return;  // duplicate or post-quarantine echo: no estimator to feed
  }
  Estimator& e = it->second;
  e.outstanding = false;
  e.ewma = (1.0 - alpha_) * e.ewma + alpha_;
  ++echoes_;
}

bool AckedCheckingDefense::path_suspect(net::NodeId self, net::NodeId dst,
                                        std::uint16_t path_id,
                                        sim::Time /*now*/) {
  auto it = estimators_.find(Key{self, dst, path_id});
  if (it == estimators_.end()) return false;
  const Estimator& e = it->second;
  return e.probes >= min_probes_ && e.ewma < threshold_;
}

void AckedCheckingDefense::on_path_quarantined(net::NodeId self,
                                               net::NodeId dst,
                                               std::uint16_t path_id,
                                               sim::Time now) {
  ++quarantined_;
  if (first_detection_.is_zero()) first_detection_ = now;
  estimators_.erase(Key{self, dst, path_id});
}

double AckedCheckingDefense::ewma(net::NodeId self, net::NodeId dst,
                                  std::uint16_t path_id) const {
  auto it = estimators_.find(Key{self, dst, path_id});
  return it == estimators_.end() ? 1.0 : it->second.ewma;
}

// --- WormholeLeashDefense --------------------------------------------------

WormholeLeashDefense::WormholeLeashDefense(
    double radio_range, double slack,
    std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of)
    : limit_sq_(radio_range * slack * radio_range * slack),
      position_of_(std::move(position_of)) {
  sim::require_config(radio_range > 0, "Defense: radio_range <= 0");
  sim::require_config(slack >= 1.0, "Defense: leash_slack < 1");
  sim::require_config(static_cast<bool>(position_of_),
                      "Defense: leash needs a position lookup");
}

bool WormholeLeashDefense::admit_path(net::NodeId src, net::NodeId dst,
                                      const net::RouteVec& intermediates,
                                      sim::Time now) {
  ++validated_;
  mobility::Vec2 prev = position_of_(src, now);
  bool feasible = true;
  for (net::NodeId n : intermediates) {
    const mobility::Vec2 p = position_of_(n, now);
    if (mobility::distance_sq(prev, p) > limit_sq_) {
      feasible = false;
      break;
    }
    prev = p;
  }
  if (feasible &&
      mobility::distance_sq(prev, position_of_(dst, now)) > limit_sq_) {
    feasible = false;
  }
  if (!feasible) {
    ++quarantined_;
    if (first_detection_.is_zero()) first_detection_ = now;
  }
  return feasible;
}

// --- FloodRateLimitDefense -------------------------------------------------

FloodRateLimitDefense::FloodRateLimitDefense(double rate, double burst)
    : rate_(rate), burst_(burst) {
  sim::require_config(rate_ > 0, "Defense: rreq_rate <= 0");
  sim::require_config(burst_ >= 1.0, "Defense: rreq_burst < 1");
}

bool FloodRateLimitDefense::admit_rreq(net::NodeId self, net::NodeId origin,
                                       sim::Time now) {
  ++seen_;
  auto [it, fresh] =
      buckets_.try_emplace({self, origin}, Bucket{burst_, now});
  Bucket& b = it->second;
  if (!fresh) {
    b.tokens =
        std::min(burst_, b.tokens + (now - b.last).to_seconds() * rate_);
    b.last = now;
  }
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  ++suppressed_;
  if (first_detection_.is_zero()) first_detection_ = now;
  return false;
}

// --- DefenseSuite ----------------------------------------------------------

DefenseSuite::DefenseSuite(std::vector<std::unique_ptr<DefenseModel>> members)
    : members_(std::move(members)) {
  sim::require_config(!members_.empty(), "Defense: empty suite");
}

bool DefenseSuite::admit_rreq(net::NodeId self, net::NodeId origin,
                              sim::Time now) {
  bool ok = true;
  for (auto& m : members_) ok = m->admit_rreq(self, origin, now) && ok;
  return ok;
}

bool DefenseSuite::admit_path(net::NodeId src, net::NodeId dst,
                              const net::RouteVec& intermediates,
                              sim::Time now) {
  bool ok = true;
  for (auto& m : members_) ok = m->admit_path(src, dst, intermediates, now) && ok;
  return ok;
}

sim::Time DefenseSuite::probe_period() const {
  for (const auto& m : members_) {
    if (m->probe_period() > sim::Time::zero()) return m->probe_period();
  }
  return sim::Time::zero();
}

void DefenseSuite::on_path_established(net::NodeId self, net::NodeId dst,
                                       std::uint16_t path_id) {
  for (auto& m : members_) m->on_path_established(self, dst, path_id);
}

void DefenseSuite::on_probe_sent(net::NodeId self, net::NodeId dst,
                                 std::uint16_t path_id, sim::Time now) {
  for (auto& m : members_) m->on_probe_sent(self, dst, path_id, now);
}

void DefenseSuite::on_probe_echo(net::NodeId self, net::NodeId dst,
                                 std::uint16_t path_id, sim::Time now) {
  for (auto& m : members_) m->on_probe_echo(self, dst, path_id, now);
}

bool DefenseSuite::path_suspect(net::NodeId self, net::NodeId dst,
                                std::uint16_t path_id, sim::Time now) {
  bool suspect = false;
  for (auto& m : members_) {
    suspect = m->path_suspect(self, dst, path_id, now) || suspect;
  }
  return suspect;
}

void DefenseSuite::on_path_quarantined(net::NodeId self, net::NodeId dst,
                                       std::uint16_t path_id, sim::Time now) {
  for (auto& m : members_) m->on_path_quarantined(self, dst, path_id, now);
}

sim::Time DefenseSuite::detection_time() const {
  sim::Time first = sim::Time::zero();
  for (const auto& m : members_) {
    const sim::Time t = m->detection_time();
    if (t.is_zero()) continue;
    if (first.is_zero() || t < first) first = t;
  }
  return first;
}

std::uint64_t DefenseSuite::paths_quarantined() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->paths_quarantined();
  return n;
}

std::uint64_t DefenseSuite::paths_validated() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->paths_validated();
  return n;
}

std::uint64_t DefenseSuite::flood_suppressed() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->flood_suppressed();
  return n;
}

std::uint64_t DefenseSuite::rreqs_seen() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->rreqs_seen();
  return n;
}

std::uint64_t DefenseSuite::probes_sent() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->probes_sent();
  return n;
}

std::uint64_t DefenseSuite::probe_echoes() const {
  std::uint64_t n = 0;
  for (const auto& m : members_) n += m->probe_echoes();
  return n;
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<DefenseModel> make_defense(const DefenseSpec& spec,
                                           const DefenseContext& ctx) {
  switch (spec.kind) {
    case DefenseKind::kNone:
      return nullptr;
    case DefenseKind::kAckedChecking:
      return std::make_unique<AckedCheckingDefense>(spec);
    case DefenseKind::kWormholeLeash:
      return std::make_unique<WormholeLeashDefense>(
          ctx.radio_range, spec.leash_slack, ctx.position_of);
    case DefenseKind::kFloodRateLimit:
      return std::make_unique<FloodRateLimitDefense>(spec.rreq_rate,
                                                     spec.rreq_burst);
    case DefenseKind::kSuite: {
      std::vector<std::unique_ptr<DefenseModel>> members;
      members.push_back(std::make_unique<AckedCheckingDefense>(spec));
      members.push_back(std::make_unique<WormholeLeashDefense>(
          ctx.radio_range, spec.leash_slack, ctx.position_of));
      members.push_back(std::make_unique<FloodRateLimitDefense>(
          spec.rreq_rate, spec.rreq_burst));
      return std::make_unique<DefenseSuite>(std::move(members));
    }
  }
  return nullptr;
}

}  // namespace mts::security
