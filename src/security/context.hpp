#pragma once

#include <functional>

#include "mobility/vec2.hpp"
#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mts::sim {
class Scheduler;
}

namespace mts::security {

class SecrecyPlane;

/// Plumbing shared by every security-model factory (adversaries and
/// defenses): the harness fills one of these and both `AdversaryContext`
/// and `DefenseContext` inherit it, so the radio range / position oracle
/// / scheduler / RNG wiring exists in exactly one place instead of being
/// duplicated per factory.
struct SecurityContext {
  double radio_range = 250.0;
  /// Position oracle (bound to node mobility by the harness).
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of;
  /// Event source for self-scheduled activity (models that never
  /// schedule leave it untouched).
  sim::Scheduler* sched = nullptr;
  /// Dedicated RNG substream; models that never draw leave it untouched,
  /// so passive models stay perturbation-free.
  sim::Rng rng{0};
  /// The scenario's threshold-secret-sharing plane, when the secrecy
  /// game is on (null otherwise).  Capture pools use it to materialize
  /// and parse real wire bytes.
  const SecrecyPlane* secrecy = nullptr;
};

}  // namespace mts::security
