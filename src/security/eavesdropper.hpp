#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "phy/frame.hpp"
#include "security/segment_pool.hpp"

namespace mts::security {

/// The paper's passive attacker (§IV-B): one randomly selected
/// intermediate node that "performs the same procedures as other
/// legitimate nodes to relay packets but also collects unauthorized
/// data within its radio range".
///
/// Attach `on_sniff` to the node's MAC promiscuous tap.  `Pe` counts
/// *distinct TCP data segments* captured — retransmissions of a segment
/// carry the same information, so they are not double counted, mirroring
/// how Pr counts distinct deliveries at the destination.
class Eavesdropper {
 public:
  explicit Eavesdropper(net::NodeId node) : node_(node) {}

  void on_sniff(const phy::Frame& frame) {
    if (!frame.has_payload()) return;
    const net::Packet& p = frame.payload;
    if (p.common().kind != net::PacketKind::kTcpData || !p.has_tcp())
      return;
    ++frames_seen_;
    pool_.capture(p);
  }

  [[nodiscard]] net::NodeId node() const { return node_; }
  /// Pe of Eq. 1: distinct data segments successfully captured.
  [[nodiscard]] std::uint64_t captured_segments() const {
    return pool_.captured_segments();
  }
  /// Raw overheard data frames (incl. retransmissions).
  [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }

  /// Eq. 1: Ri = Pe / Pr.
  [[nodiscard]] double interception_ratio(std::uint64_t pr) const {
    return pool_.interception_ratio(pr);
  }

 private:
  net::NodeId node_;
  std::uint64_t frames_seen_ = 0;
  SegmentPool pool_;
};

}  // namespace mts::security
