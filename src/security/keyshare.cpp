#include "security/keyshare.hpp"

#include <algorithm>
#include <array>

#include "net/wire.hpp"
#include "sim/error.hpp"

namespace mts::security {

// ---------------------------------------------------------------------------
// GF(2^8) via log/antilog tables over generator 3 (AES polynomial).
// ---------------------------------------------------------------------------

namespace gf256 {
namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  Tables() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // x *= 3 in GF(2^8): xtime(x) ^ x.
      const auto doubled = static_cast<std::uint8_t>(
          (x << 1) ^ ((x & 0x80) != 0 ? 0x1B : 0x00));
      x = static_cast<std::uint8_t>(doubled ^ x);
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[std::size_t{t.log[a]} + std::size_t{t.log[b]}];
}

std::uint8_t inv(std::uint8_t a) {
  sim::require(a != 0, "gf256: inverse of zero");
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

}  // namespace gf256

// ---------------------------------------------------------------------------
// Shamir split / reconstruct.
// ---------------------------------------------------------------------------

std::vector<Share> shamir_split(const std::vector<std::uint8_t>& secret,
                                std::uint32_t n, std::uint32_t t,
                                sim::Rng& rng) {
  sim::require(t >= 1 && t <= n && n <= 255,
               "shamir_split: need 1 <= t <= n <= 255");
  std::vector<Share> shares(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    shares[j].x = static_cast<std::uint8_t>(j + 1);
    shares[j].bytes.resize(secret.size());
  }
  std::vector<std::uint8_t> coeffs(t);
  for (std::size_t i = 0; i < secret.size(); ++i) {
    coeffs[0] = secret[i];
    for (std::uint32_t d = 1; d < t; ++d) {
      coeffs[d] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      // Horner at x = j + 1.
      const std::uint8_t x = shares[j].x;
      std::uint8_t acc = 0;
      for (std::uint32_t d = t; d-- > 0;) {
        acc = static_cast<std::uint8_t>(gf256::mul(acc, x) ^ coeffs[d]);
      }
      shares[j].bytes[i] = acc;
    }
  }
  return shares;
}

std::optional<std::vector<std::uint8_t>> shamir_reconstruct(
    const std::vector<Share>& shares, std::uint32_t t) {
  if (t == 0 || shares.size() < t) return std::nullopt;
  const std::size_t len = shares[0].bytes.size();
  for (std::uint32_t j = 0; j < t; ++j) {
    if (shares[j].x == 0 || shares[j].bytes.size() != len)
      return std::nullopt;
    for (std::uint32_t m = 0; m < j; ++m) {
      if (shares[m].x == shares[j].x) return std::nullopt;
    }
  }
  // Lagrange basis at x = 0: L_j = prod_{m != j} x_m / (x_m ^ x_j)
  // (subtraction is XOR in GF(2^8)).
  std::vector<std::uint8_t> basis(t);
  for (std::uint32_t j = 0; j < t; ++j) {
    std::uint8_t num = 1;
    std::uint8_t den = 1;
    for (std::uint32_t m = 0; m < t; ++m) {
      if (m == j) continue;
      num = gf256::mul(num, shares[m].x);
      den = gf256::mul(den,
                       static_cast<std::uint8_t>(shares[m].x ^ shares[j].x));
    }
    basis[j] = gf256::mul(num, gf256::inv(den));
  }
  std::vector<std::uint8_t> secret(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t acc = 0;
    for (std::uint32_t j = 0; j < t; ++j) {
      acc = static_cast<std::uint8_t>(
          acc ^ gf256::mul(basis[j], shares[j].bytes[i]));
    }
    secret[i] = acc;
  }
  return secret;
}

// ---------------------------------------------------------------------------
// SecrecyPlane.
// ---------------------------------------------------------------------------

namespace {

/// Keystream for the masked fragment bytes: a splitmix64 counter chain
/// keyed by (key digest, flow, seq).  A stand-in for an AEAD cipher —
/// the game scores *key recovery*, never mask cryptanalysis, so the
/// stream only has to be a deterministic key-dependent function.
std::uint64_t keystream_seed(const std::vector<std::uint8_t>& key,
                             std::uint16_t flow_id, std::uint32_t seq) {
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : key) {
    digest ^= b;
    digest *= 0x100000001B3ULL;
  }
  return sim::splitmix64(digest ^ ((std::uint64_t{flow_id} << 32) | seq));
}

}  // namespace

SecrecyPlane::SecrecyPlane(const SecrecySpec& spec, sim::Rng rng)
    : spec_(spec), rng_(rng) {
  sim::require(spec.key_bytes > 0, "SecrecyPlane: key_bytes == 0");
}

void SecrecyPlane::register_flow(std::uint16_t flow_id,
                                 std::uint32_t n_shares) {
  sim::require(!by_id_.contains(flow_id),
               "SecrecyPlane: flow registered twice");
  FlowSecret f;
  f.flow_id = flow_id;
  f.n = std::max<std::uint32_t>(1, n_shares);
  f.t = spec_.threshold == 0 ? f.n : std::min(spec_.threshold, f.n);
  f.key.resize(spec_.key_bytes);
  for (auto& b : f.key) b = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  f.shares = shamir_split(f.key, f.n, f.t, rng_);
  by_id_.emplace(flow_id, flows_.size());
  flows_.push_back(std::move(f));
}

const SecrecyPlane::FlowSecret* SecrecyPlane::find(
    std::uint16_t flow_id) const {
  const auto it = by_id_.find(flow_id);
  return it == by_id_.end() ? nullptr : &flows_[it->second];
}

std::shared_ptr<const std::vector<std::uint8_t>>
SecrecyPlane::materialize_payload(std::uint16_t flow_id, std::uint32_t seq,
                                  std::uint32_t share_index,
                                  std::uint32_t payload_bytes) const {
  const FlowSecret* f = find(flow_id);
  sim::require(f != nullptr, "SecrecyPlane: unregistered flow");
  const Share& share = f->shares[share_index % f->n];
  auto out = std::make_shared<std::vector<std::uint8_t>>();
  out->reserve(payload_bytes);
  // Share trailer first, when the segment is big enough to carry it.
  if (payload_bytes >= kShareTrailerFixed + share.bytes.size()) {
    out->push_back(kShareMagic0);
    out->push_back(kShareMagic1);
    out->push_back(share.x);
    out->push_back(static_cast<std::uint8_t>(share.bytes.size()));
    out->insert(out->end(), share.bytes.begin(), share.bytes.end());
  }
  // The rest of the fragment is plaintext XOR keystream; the plaintext
  // is modelled as zeros, so the wire carries the keystream itself.
  const std::uint64_t seed = keystream_seed(f->key, flow_id, seq);
  std::uint64_t word = 0;
  for (std::uint32_t i = static_cast<std::uint32_t>(out->size());
       i < payload_bytes; ++i) {
    if (i % 8 == 0) word = sim::splitmix64(seed + i / 8);
    out->push_back(static_cast<std::uint8_t>(word >> ((i % 8) * 8)));
  }
  return out;
}

bool SecrecyPlane::wire_image(const net::Packet& p,
                              std::vector<std::uint8_t>& out) const {
  if (p.common().kind != net::PacketKind::kTcpData || !p.has_tcp())
    return false;
  const FlowSecret* f = find(p.tcp().flow_id);
  if (f == nullptr) return false;
  auto payload = p.wire_payload();
  if (payload == nullptr) {
    // Share index = the path the segment rides (MTS tags data packets
    // with its path id; unipath protocols have exactly one share).
    const auto* tag = p.header_if<net::MtsDataTag>();
    const std::uint32_t share_index = tag != nullptr ? tag->path_id : 0;
    payload = materialize_payload(p.tcp().flow_id, p.tcp().seq, share_index,
                                  p.common().payload_bytes);
    p.cache_wire_payload(payload);
  }
  net::wire::encode_packet(p, out, payload->data(), payload->size());
  return true;
}

std::uint32_t SecrecyPlane::shares_per_flow() const {
  return flows_.empty() ? 0 : flows_.front().n;
}

std::uint32_t SecrecyPlane::threshold_per_flow() const {
  return flows_.empty() ? 0 : flows_.front().t;
}

const std::vector<std::uint8_t>* SecrecyPlane::true_key(
    std::uint16_t flow_id) const {
  const FlowSecret* f = find(flow_id);
  return f == nullptr ? nullptr : &f->key;
}

namespace {

bool recovers(SecrecyPlane::Score* tally, std::uint32_t t,
              const std::vector<std::uint8_t>& true_key,
              const std::map<std::uint8_t, std::vector<std::uint8_t>>*
                  captured) {
  if (captured == nullptr) return false;
  if (tally != nullptr) tally->shares_captured += captured->size();
  if (captured->size() < t) return false;
  std::vector<Share> attempt;
  attempt.reserve(t);
  for (const auto& [x, bytes] : *captured) {
    if (attempt.size() == t) break;
    attempt.push_back(Share{x, bytes});
  }
  const auto key = shamir_reconstruct(attempt, t);
  return key.has_value() && *key == true_key;
}

}  // namespace

bool SecrecyPlane::key_recovered(std::uint16_t flow_id,
                                 const KeyRecoveryPool& pool) const {
  const FlowSecret* f = find(flow_id);
  if (f == nullptr) return false;
  return recovers(nullptr, f->t, f->key, pool.shares_for(flow_id));
}

SecrecyPlane::Score SecrecyPlane::score(const KeyRecoveryPool& pool) const {
  Score s;
  s.flows = flows_.size();
  for (const FlowSecret& f : flows_) {
    if (recovers(&s, f.t, f.key, pool.shares_for(f.flow_id))) {
      ++s.keys_recovered;
    }
  }
  s.recovery_rate = s.flows == 0 ? 0.0
                                 : static_cast<double>(s.keys_recovered) /
                                       static_cast<double>(s.flows);
  return s;
}

// ---------------------------------------------------------------------------
// KeyRecoveryPool.
// ---------------------------------------------------------------------------

void KeyRecoveryPool::capture(const std::uint8_t* data, std::size_t len) {
  const auto decoded = net::wire::decode_packet(data, len);
  if (!decoded.has_value()) {
    ++failed_;
    return;
  }
  ++parsed_;
  if (decoded->common.kind != net::PacketKind::kTcpData ||
      !decoded->tcp.has_value()) {
    return;
  }
  const std::uint8_t* payload = data + decoded->payload_offset;
  const std::uint32_t n = decoded->payload_bytes;
  if (n < kShareTrailerFixed || payload[0] != kShareMagic0 ||
      payload[1] != kShareMagic1) {
    return;
  }
  const std::uint8_t x = payload[2];
  const std::uint8_t share_len = payload[3];
  if (x == 0 || n < kShareTrailerFixed + std::uint32_t{share_len}) return;
  auto& flow = flows_[decoded->tcp->flow_id];
  const auto [it, fresh] = flow.emplace(
      x, std::vector<std::uint8_t>(payload + kShareTrailerFixed,
                                   payload + kShareTrailerFixed + share_len));
  if (fresh) ++shares_;
}

const std::map<std::uint8_t, std::vector<std::uint8_t>>*
KeyRecoveryPool::shares_for(std::uint16_t flow_id) const {
  const auto it = flows_.find(flow_id);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace mts::security
