#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "net/packet.hpp"
#include "phy/frame.hpp"
#include "security/context.hpp"
#include "security/segment_pool.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mts::phy {
class Channel;
}

namespace mts::security {

/// The adversary families the scenario space sweeps (extensions of the
/// paper's single passive eavesdropper of §IV-B).
///
/// Passive families (pure observers — enabling one changes nothing at
/// packet level):
///  - kColluding: a coalition of insider nodes pooling every TCP data
///    segment any member overhears — the natural attack on multipath
///    splitting (one eavesdropper sees one path; a coalition stitches
///    the stream back together).
///  - kMobile: external sniffers with their own trajectories (random
///    waypoint over the arena), decoupled from the node population.
///  - kTrafficAnalysis: a coalition that never decodes payloads — it
///    profiles per-node transmit/receive *volume* from frame metadata
///    (transmitter, MAC addressee, frame bytes) and infers the flow
///    endpoints from the volume skew.  Probes whether MTS's relay
///    spreading hides *who* talks to whom, not just *what* they say.
///
/// Active families (perturb routing and traffic by design; each draws
/// from its own RNG substream and schedules its own event slots, so
/// passive families above stay perturbation-free):
///  - kBlackhole: insider nodes that participate in route discovery
///    like honest nodes but silently absorb the data packets they are
///    asked to forward (AODVSEC's threat model, arXiv:1208.1959).
///  - kWormhole: two colluding endpoints joined by an out-of-band
///    zero-delay tunnel.  Everything one end overhears (or transmits)
///    is replayed verbatim at the other end, so route discoveries cross
///    the arena in one phantom hop and routes collapse onto the
///    shortcut — where the endpoints capture the data stream and
///    selectively drop it.
///  - kGrayhole: the blackhole's stealthy cousin — probabilistic
///    (`drop_prob`) and time-windowed (`active_window`/`active_period`)
///    absorption designed to sit under a delivery-rate detector's
///    threshold.
///  - kRreqFlood: insider DoS — forged route discoveries for rotating
///    victims injected through the member's own MAC at `flood_rate`
///    per second, amplified network-wide by honest rebroadcasting.
enum class AdversaryKind : std::uint8_t {
  kNone = 0,
  kColluding,
  kMobile,
  kBlackhole,
  kWormhole,
  kGrayhole,
  kTrafficAnalysis,
  kRreqFlood,
};

const char* adversary_kind_name(AdversaryKind k);

/// Scenario-level adversary description.  Lives in `ScenarioConfig`;
/// campaigns sweep vectors of these alongside protocol x speed.
struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::kNone;
  /// Coalition size (kColluding/kBlackhole: insider count; kMobile:
  /// sniffer count).
  std::uint32_t count = 1;
  /// Eavesdropping radius in metres; 0 = use the scenario radio range.
  double sniff_range = 0.0;
  /// kMobile trajectory parameters (random waypoint over the arena).
  double min_speed = 0.1;
  double max_speed = 10.0;
  sim::Time pause = sim::Time::sec(1);
  /// Explicit insider node ids (insider kinds).  Empty = drawn uniformly
  /// from the intermediate nodes via `resolve_members` (kWormhole:
  /// exactly two via `resolve_wormhole_pair`).
  std::vector<net::NodeId> members;

  // --- active-attack knobs ---------------------------------------------
  /// kGrayhole: per-eligible-packet absorption probability.
  /// kWormhole: probability a TCP data segment crossing the tunnel is
  /// dropped instead of replayed (selective dropping on the shortcut).
  double drop_prob = 0.5;
  /// kGrayhole duty cycle: absorb only while (now mod active_period) <
  /// active_window.  Either zero = always active.
  sim::Time active_window = sim::Time::zero();
  sim::Time active_period = sim::Time::zero();
  /// kRreqFlood: forged route discoveries per second, per member.
  double flood_rate = 10.0;
  /// kRreqFlood: time of the first forged discovery.
  sim::Time flood_start = sim::Time::sec(1);

  [[nodiscard]] bool enabled() const { return kind != AdversaryKind::kNone; }
};

/// Deterministic insider selection: shuffles the candidate pool once
/// (excluding flow endpoints) and takes the first `count`.  The prefix
/// property matters: for a fixed seed, a size-k coalition is a subset of
/// the size-(k+1) coalition, which makes interception monotone in
/// coalition size by construction — the property the sweep figures rely
/// on and the unit tests pin.
std::vector<net::NodeId> resolve_members(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng);

/// Deterministic wormhole endpoint selection.  Explicit members (exactly
/// two, distinct) pass through; otherwise the first shuffled candidate
/// anchors the tunnel and the candidate farthest from it at t=0 becomes
/// the far end — the placement constraint that makes the tunnel an
/// actual shortcut (adjacent endpoints would tunnel nothing the radio
/// does not already deliver).  For a fixed seed the pair is a pure
/// function of (node_count, excluded, positions).
std::array<net::NodeId, 2> resolve_wormhole_pair(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng,
    const std::function<mobility::Vec2(net::NodeId, sim::Time)>& position_of);

/// One transmission as seen by the channel at radiation time.
struct Transmission {
  net::NodeId sender = net::kNoNode;
  mobility::Vec2 sender_pos;
  sim::Time airtime;
  sim::Time now;
};

/// Pluggable adversary.  Passive hooks: a channel tap (every frame
/// radiated anywhere, evaluated against each member's position).
/// Active hooks: an insider forwarding veto (blackhole/grayhole
/// absorption), a start hook for self-scheduled activity (RREQ
/// flooding), and — via the context — the channel's `inject` entry for
/// out-of-band replays (wormhole).  Passive models are observers: they
/// never perturb the simulation's RNG streams or event order, so runs
/// with and without one are identical packet-for-packet (paired
/// comparisons stay paired).  Active models keep that property *for the
/// rest of the stack* by drawing only from their own RNG substream and
/// scheduling only their own pooled event slots.
class AdversaryModel {
 public:
  virtual ~AdversaryModel() = default;

  [[nodiscard]] virtual AdversaryKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual std::size_t member_count() const = 0;

  /// Called once when the simulation starts; active models arm their
  /// injection timers here.  `sim_end` bounds self-rescheduling.
  virtual void on_start(sim::Time /*sim_end*/) {}

  /// Passive tap: called for every frame the channel radiates.
  virtual void on_transmission(const Transmission&, const phy::Frame&) {}

  /// Insider veto: should `node` silently absorb `p` instead of
  /// forwarding it?  Only consulted for coalition members.  `now` lets
  /// time-windowed attackers (grayhole) gate their activity.
  [[nodiscard]] virtual bool absorbs(net::NodeId /*node*/,
                                     const net::Packet& /*p*/,
                                     sim::Time /*now*/) const {
    return false;
  }
  /// Notification that the harness honoured an `absorbs` verdict.
  virtual void on_absorb(net::NodeId /*node*/, const net::Packet& /*p*/) {}

  /// True if this node is part of the coalition (insider models).
  [[nodiscard]] virtual bool is_member(net::NodeId) const { return false; }

  // --- metrics --------------------------------------------------------
  [[nodiscard]] virtual std::uint64_t captured_segments() const { return 0; }
  [[nodiscard]] virtual double interception_ratio(std::uint64_t /*pr*/) const {
    return 0.0;
  }
  [[nodiscard]] virtual std::uint64_t fragments_missing(std::uint64_t pr) const {
    return pr;
  }
  [[nodiscard]] virtual std::uint64_t absorbed_packets() const { return 0; }
  /// Frames replayed through an out-of-band tunnel (kWormhole).
  [[nodiscard]] virtual std::uint64_t tunneled_frames() const { return 0; }
  /// Forged control packets injected (kRreqFlood).
  [[nodiscard]] virtual std::uint64_t injected_packets() const { return 0; }
  /// Top-k guessed (src, dst) flow endpoint pairs (kTrafficAnalysis);
  /// empty for models that do not infer endpoints.
  [[nodiscard]] virtual std::vector<std::pair<net::NodeId, net::NodeId>>
  inferred_endpoints(std::size_t /*k*/) const {
    return {};
  }
  /// Insider node ids (empty for external adversaries).
  [[nodiscard]] virtual std::vector<net::NodeId> members() const { return {}; }
  /// The coalition's key-recovery pool (secrecy game); nullptr for
  /// models that do not capture payload bytes, or when the game is off.
  [[nodiscard]] virtual const KeyRecoveryPool* key_recovery() const {
    return nullptr;
  }
};

/// Shared base for models whose metrics come from a capture pool — all
/// three concrete families; they differ only in *how* segments land in
/// the pool.
class PooledAdversary : public AdversaryModel {
 public:
  [[nodiscard]] std::uint64_t captured_segments() const override {
    return pool_.captured_segments();
  }
  [[nodiscard]] double interception_ratio(std::uint64_t pr) const override {
    return pool_.interception_ratio(pr);
  }
  [[nodiscard]] std::uint64_t fragments_missing(std::uint64_t pr) const override {
    return pool_.fragments_missing(pr);
  }
  [[nodiscard]] const KeyRecoveryPool* key_recovery() const override {
    return pool_.recovery();
  }

  /// Arms the secrecy game on the shared pool (called by the factory
  /// when the scenario has a plane).
  void attach_secrecy(const SecrecyPlane* plane) {
    pool_.attach_secrecy(plane);
  }

 protected:
  SegmentPool pool_;
};

/// (a) Colluding insider eavesdroppers: coalition members are regular
/// nodes; any data frame radiated within `sniff_range` of a member's
/// current position lands in the shared pool.
class ColludingEavesdroppers final : public PooledAdversary {
 public:
  /// `position_of` maps a member node id to its position at a time (the
  /// harness binds it to the node mobility models).
  ColludingEavesdroppers(
      std::vector<net::NodeId> members, double sniff_range,
      std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kColluding;
  }
  [[nodiscard]] const char* name() const override { return "colluding"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  /// Raw overheard data frames per member (diagnostics).
  [[nodiscard]] std::uint64_t frames_seen_by(net::NodeId n) const;

 private:
  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  double sniff_range_;
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of_;
  std::unordered_map<net::NodeId, std::uint64_t> frames_seen_;
};

/// (b) Mobile external eavesdroppers: sniffers that are not part of the
/// node population, each following its own random-waypoint trajectory
/// over the arena, pooling captures like a coalition.
class MobileEavesdroppers final : public PooledAdversary {
 public:
  MobileEavesdroppers(std::uint32_t count, const mobility::Field& field,
                      const AdversarySpec& spec, double sniff_range,
                      sim::Rng rng);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kMobile;
  }
  [[nodiscard]] const char* name() const override { return "mobile"; }
  [[nodiscard]] std::size_t member_count() const override {
    return trajectories_.size();
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  /// Trajectory introspection (tests: the sniffer never leaves the arena).
  [[nodiscard]] mobility::Vec2 position_of_member(std::size_t i,
                                                  sim::Time t) const;

 private:
  std::vector<std::unique_ptr<mobility::MobilityModel>> trajectories_;
  double sniff_range_;
};

/// (c) Insider blackhole: members answer route discovery like honest
/// nodes (control packets pass through untouched), then absorb every
/// TCP data packet they are asked to relay.  Absorbed segments also land
/// in the capture pool — a blackhole reads what it eats.
class BlackholeAttacker final : public PooledAdversary {
 public:
  explicit BlackholeAttacker(std::vector<net::NodeId> members);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kBlackhole;
  }
  [[nodiscard]] const char* name() const override { return "blackhole"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  [[nodiscard]] bool absorbs(net::NodeId node, const net::Packet& p,
                             sim::Time now) const override;
  void on_absorb(net::NodeId node, const net::Packet& p) override;

  [[nodiscard]] std::uint64_t absorbed_packets() const override {
    return absorbed_;
  }
  [[nodiscard]] std::uint64_t absorbed_by(net::NodeId n) const;

 private:
  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  std::uint64_t absorbed_ = 0;
  std::unordered_map<net::NodeId, std::uint64_t> per_member_;
};

/// (d) Wormhole: two colluding endpoints joined by an out-of-band
/// zero-delay tunnel.  Every payload-carrying frame radiated within
/// `sniff_range` of one endpoint (or transmitted by it) is replayed
/// verbatim — same spoofed transmitter, same MAC sequence — at the other
/// endpoint's position via the channel's injection hook, so RREQ floods,
/// RREPs and data cross the arena in one phantom hop and route discovery
/// collapses onto the shortcut.  MAC ACKs transmitted *by* an endpoint
/// are tunneled too, which is exactly what makes the phantom link
/// complete unicast handshakes.  TCP data crossing the tunnel is
/// captured into the segment pool, and dropped (not replayed) with
/// probability `drop_prob` — the selective-drop half of the attack.
///
/// Replays are deferred through pooled slots onto the scheduler (zero
/// simulated delay, deterministic insertion order), and every random
/// draw comes from the tunnel's own RNG substream, so the rest of the
/// stack keeps its event/RNG streams.  A per-packet-uid filter tunnels
/// each network packet at most once (MAC retries and far-end
/// rebroadcasts re-entering the tap do not ping-pong).
class WormholeAttacker final : public PooledAdversary {
 public:
  WormholeAttacker(
      std::array<net::NodeId, 2> endpoints, double sniff_range,
      double drop_prob,
      std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of,
      sim::Scheduler* sched, phy::Channel* channel, sim::Rng rng);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kWormhole;
  }
  [[nodiscard]] const char* name() const override { return "wormhole"; }
  [[nodiscard]] std::size_t member_count() const override { return 2; }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return n == ends_[0] || n == ends_[1];
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return {ends_[0], ends_[1]};
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  [[nodiscard]] std::uint64_t tunneled_frames() const override {
    return tunneled_;
  }
  /// Data packets deliberately killed at the tunnel (selective drops).
  [[nodiscard]] std::uint64_t absorbed_packets() const override {
    return dropped_;
  }
  [[nodiscard]] const std::array<net::NodeId, 2>& endpoints() const {
    return ends_;
  }
  /// Live entries in the per-uid dedup window (tests: bounded over time).
  [[nodiscard]] std::size_t dedup_entries() const {
    return tunneled_uids_.size();
  }

  /// How long a tunneled uid is remembered.  Sized to outlive every
  /// legitimate same-uid reappearance: MAC retries and far-end
  /// rebroadcasts are milliseconds, and a packet parked in a routing
  /// send buffer keeps its uid for up to `buffer_max_age` (30 s default)
  /// before re-entering the air.  Thirty seconds covers all of those —
  /// so short-run behaviour is identical to the old unbounded set —
  /// while keeping the dedup state bounded by recent tunnel throughput
  /// on long runs instead of growing one entry per packet forever.
  static constexpr sim::Time kUidFreshness = sim::Time::sec(30);

 private:
  void tunnel_to(std::size_t far_end, const Transmission& tx,
                 const phy::Frame& f);
  void fire(std::uint32_t slot);
  /// True if `uid` was not seen within the freshness window — and
  /// records it.  Ages expired entries out as a side effect.
  bool remember_uid(std::uint64_t uid, sim::Time now);

  /// A replay parked until its zero-delay event fires; pooled so the
  /// closure stays {this, slot} (the frame's payload handle is a
  /// refcount bump, and recycled slots drop it on fire).
  struct PendingReplay {
    phy::Frame frame;
    net::NodeId spoof = net::kNoNode;
    std::size_t far_end = 0;
    sim::Time airtime;
    std::uint32_t next_free = 0;
  };

  std::array<net::NodeId, 2> ends_;
  double sniff_range_;
  double drop_prob_;
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of_;
  sim::Scheduler* sched_;
  phy::Channel* channel_;
  sim::Rng rng_;
  /// uid -> first-seen time, aged out after kUidFreshness via the
  /// insertion-ordered queue (same shape as routing::FloodCache, but
  /// time-based: uids are not monotone, so a pure FIFO cap could evict
  /// a uid whose retries are still in flight).
  std::unordered_map<std::uint64_t, sim::Time> tunneled_uids_;
  std::deque<std::pair<std::uint64_t, sim::Time>> tunneled_order_;
  std::vector<PendingReplay> replay_pool_;
  std::uint32_t replay_free_ = kNoSlot;
  std::uint64_t tunneled_ = 0;
  std::uint64_t dropped_ = 0;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
};

/// (e) Grayhole: probabilistic, time-windowed insider absorption.  Like
/// the blackhole it forwards control untouched; unlike the blackhole it
/// eats each eligible transit data packet only with probability
/// `drop_prob`, and only while (now mod active_period) < active_window —
/// parameters chosen to sit under a delivery-rate detector's threshold.
/// Decisions draw from the grayhole's own RNG substream in MAC receive
/// order, so they are deterministic for a fixed seed.
class GrayholeAttacker final : public PooledAdversary {
 public:
  GrayholeAttacker(std::vector<net::NodeId> members, double drop_prob,
                   sim::Time active_window, sim::Time active_period,
                   sim::Rng rng);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kGrayhole;
  }
  [[nodiscard]] const char* name() const override { return "grayhole"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  [[nodiscard]] bool absorbs(net::NodeId node, const net::Packet& p,
                             sim::Time now) const override;
  void on_absorb(net::NodeId node, const net::Packet& p) override;

  [[nodiscard]] std::uint64_t absorbed_packets() const override {
    return absorbed_;
  }
  /// True while the duty cycle has the attacker dropping.
  [[nodiscard]] bool active_at(sim::Time now) const;

 private:
  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  double drop_prob_;
  sim::Time active_window_;
  sim::Time active_period_;
  /// absorbs() is a const query from the harness's point of view, but
  /// each eligible packet consumes one Bernoulli draw.
  mutable sim::Rng rng_;
  std::uint64_t absorbed_ = 0;
};

/// (f) Traffic analysis: a passive insider coalition that never decodes
/// payloads.  It accumulates per-node sent/received byte volumes from
/// frame *metadata* only (transmitter id, MAC addressee, frame size) for
/// every frame radiated within `sniff_range` of a member, then infers
/// flow endpoints from the volume skew: a TCP source transmits large
/// data frames and receives only small ACKs (strongly positive
/// sent-recv skew), a sink is the mirror image, and relays cancel out.
/// Probes the paper's core claim from a new angle — MTS's relay
/// spreading disguises *which relays* carry the stream, but can it hide
/// the endpoints' volume signature?
class TrafficAnalysisAttacker final : public AdversaryModel {
 public:
  TrafficAnalysisAttacker(
      std::vector<net::NodeId> members, double sniff_range,
      std::uint32_t node_count,
      std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kTrafficAnalysis;
  }
  [[nodiscard]] const char* name() const override { return "traffic"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  [[nodiscard]] std::vector<std::pair<net::NodeId, net::NodeId>>
  inferred_endpoints(std::size_t k) const override;

  /// Diagnostics: frames profiled and a node's observed volume skew.
  [[nodiscard]] std::uint64_t frames_profiled() const { return frames_; }
  [[nodiscard]] std::int64_t volume_skew(net::NodeId n) const;

 private:
  struct Profile {
    std::uint64_t sent_bytes = 0;
    std::uint64_t recv_bytes = 0;
  };

  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  double sniff_range_;
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of_;
  std::vector<Profile> profiles_;
  std::uint64_t frames_ = 0;
};

/// (g) RREQ flood: insider DoS.  Each member injects forged route
/// discoveries (the scenario protocol's RREQ kind, rotating victim
/// destinations, ids from a reserved range) through its own MAC at
/// `flood_rate` per second — the "normal routing path", so the flood
/// contends for the medium, is rebroadcast by honest nodes, and lands in
/// the control-overhead figures like genuine discovery traffic.
class RreqFlooder final : public AdversaryModel {
 public:
  /// `inject` is bound by the harness to the member's MAC (uid
  /// assignment + control counters + broadcast enqueue).
  RreqFlooder(std::vector<net::NodeId> members, net::PacketKind rreq_kind,
              std::uint32_t node_count, double rate, sim::Time start,
              sim::Scheduler* sched,
              std::function<void(net::NodeId, net::Packet&&)> inject,
              sim::Rng rng);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kRreqFlood;
  }
  [[nodiscard]] const char* name() const override { return "rreq-flood"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  void on_start(sim::Time sim_end) override;

  [[nodiscard]] std::uint64_t injected_packets() const override {
    return injected_;
  }
  [[nodiscard]] sim::Time interval() const { return interval_; }

  /// Forged ids start here so they never collide with a member's
  /// genuine discovery ids in the network-wide flood dedup caches.
  static constexpr std::uint32_t kForgedIdBase = 0x40000000u;

 private:
  void tick();
  void inject_one(net::NodeId member);

  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  net::PacketKind rreq_kind_;
  std::uint32_t node_count_;
  sim::Time interval_;
  sim::Time start_;
  sim::Time sim_end_;
  sim::Scheduler* sched_;
  std::function<void(net::NodeId, net::Packet&&)> inject_;
  sim::Rng rng_;
  std::uint32_t next_id_ = kForgedIdBase;
  std::uint64_t injected_ = 0;
};

/// Context the factory needs to instantiate a model for one scenario.
/// The shared plumbing (radio range, position oracle, scheduler, RNG,
/// secrecy plane) lives in `SecurityContext`; only the adversary-specific
/// hooks are declared here.
struct AdversaryContext : SecurityContext {
  std::uint32_t node_count = 0;
  mobility::Field field;
  /// Flow endpoints — never conscripted as insiders (they would trivially
  /// see their own traffic).
  std::unordered_set<net::NodeId> excluded;

  // --- active-model hooks (null for passive-only scenarios) ------------
  /// The medium's injection entry (wormhole far-end replay).
  phy::Channel* channel = nullptr;
  /// The scenario protocol's route-discovery kind (kRreqFlood forging).
  net::PacketKind rreq_kind = net::PacketKind::kAodvRreq;
  /// Injects a forged control packet through `member`'s own MAC.
  std::function<void(net::NodeId member, net::Packet&&)> inject_control;
};

/// Builds the model described by `spec`, or nullptr for kNone.
std::unique_ptr<AdversaryModel> make_adversary(const AdversarySpec& spec,
                                               const AdversaryContext& ctx);

}  // namespace mts::security
