#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "net/packet.hpp"
#include "phy/frame.hpp"
#include "security/segment_pool.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mts::security {

/// The adversary families the scenario space sweeps (extensions of the
/// paper's single passive eavesdropper of §IV-B):
///  - kColluding: a coalition of insider nodes pooling every TCP data
///    segment any member overhears — the natural attack on multipath
///    splitting (one eavesdropper sees one path; a coalition stitches
///    the stream back together).
///  - kMobile: external sniffers with their own trajectories (random
///    waypoint over the arena), decoupled from the node population.
///  - kBlackhole: insider nodes that participate in route discovery
///    like honest nodes but silently absorb the data packets they are
///    asked to forward (AODVSEC's threat model, arXiv:1208.1959).
enum class AdversaryKind : std::uint8_t {
  kNone = 0,
  kColluding,
  kMobile,
  kBlackhole,
};

const char* adversary_kind_name(AdversaryKind k);

/// Scenario-level adversary description.  Lives in `ScenarioConfig`;
/// campaigns sweep vectors of these alongside protocol x speed.
struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::kNone;
  /// Coalition size (kColluding/kBlackhole: insider count; kMobile:
  /// sniffer count).
  std::uint32_t count = 1;
  /// Eavesdropping radius in metres; 0 = use the scenario radio range.
  double sniff_range = 0.0;
  /// kMobile trajectory parameters (random waypoint over the arena).
  double min_speed = 0.1;
  double max_speed = 10.0;
  sim::Time pause = sim::Time::sec(1);
  /// Explicit insider node ids (kColluding/kBlackhole).  Empty = drawn
  /// uniformly from the intermediate nodes via `resolve_members`.
  std::vector<net::NodeId> members;

  [[nodiscard]] bool enabled() const { return kind != AdversaryKind::kNone; }
};

/// Deterministic insider selection: shuffles the candidate pool once
/// (excluding flow endpoints) and takes the first `count`.  The prefix
/// property matters: for a fixed seed, a size-k coalition is a subset of
/// the size-(k+1) coalition, which makes interception monotone in
/// coalition size by construction — the property the sweep figures rely
/// on and the unit tests pin.
std::vector<net::NodeId> resolve_members(
    const AdversarySpec& spec, std::uint32_t node_count,
    const std::unordered_set<net::NodeId>& excluded, sim::Rng rng);

/// One transmission as seen by the channel at radiation time.
struct Transmission {
  net::NodeId sender = net::kNoNode;
  mobility::Vec2 sender_pos;
  sim::Time now;
};

/// Pluggable adversary.  Two hooks: a passive channel tap (every frame
/// radiated anywhere, evaluated against each member's position) and an
/// insider forwarding veto (blackhole-style absorption).  Models are
/// observers — they never perturb the simulation's RNG streams or event
/// order, so runs with and without a passive adversary are identical
/// packet-for-packet (paired comparisons stay paired).
class AdversaryModel {
 public:
  virtual ~AdversaryModel() = default;

  [[nodiscard]] virtual AdversaryKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual std::size_t member_count() const = 0;

  /// Passive tap: called for every frame the channel radiates.
  virtual void on_transmission(const Transmission&, const phy::Frame&) {}

  /// Insider veto: should `node` silently absorb `p` instead of
  /// forwarding it?  Only consulted for coalition members.
  [[nodiscard]] virtual bool absorbs(net::NodeId /*node*/,
                                     const net::Packet& /*p*/) const {
    return false;
  }
  /// Notification that the harness honoured an `absorbs` verdict.
  virtual void on_absorb(net::NodeId /*node*/, const net::Packet& /*p*/) {}

  /// True if this node is part of the coalition (insider models).
  [[nodiscard]] virtual bool is_member(net::NodeId) const { return false; }

  // --- metrics --------------------------------------------------------
  [[nodiscard]] virtual std::uint64_t captured_segments() const { return 0; }
  [[nodiscard]] virtual double interception_ratio(std::uint64_t /*pr*/) const {
    return 0.0;
  }
  [[nodiscard]] virtual std::uint64_t fragments_missing(std::uint64_t pr) const {
    return pr;
  }
  [[nodiscard]] virtual std::uint64_t absorbed_packets() const { return 0; }
  /// Insider node ids (empty for external adversaries).
  [[nodiscard]] virtual std::vector<net::NodeId> members() const { return {}; }
};

/// Shared base for models whose metrics come from a capture pool — all
/// three concrete families; they differ only in *how* segments land in
/// the pool.
class PooledAdversary : public AdversaryModel {
 public:
  [[nodiscard]] std::uint64_t captured_segments() const override {
    return pool_.captured_segments();
  }
  [[nodiscard]] double interception_ratio(std::uint64_t pr) const override {
    return pool_.interception_ratio(pr);
  }
  [[nodiscard]] std::uint64_t fragments_missing(std::uint64_t pr) const override {
    return pool_.fragments_missing(pr);
  }

 protected:
  SegmentPool pool_;
};

/// (a) Colluding insider eavesdroppers: coalition members are regular
/// nodes; any data frame radiated within `sniff_range` of a member's
/// current position lands in the shared pool.
class ColludingEavesdroppers final : public PooledAdversary {
 public:
  /// `position_of` maps a member node id to its position at a time (the
  /// harness binds it to the node mobility models).
  ColludingEavesdroppers(
      std::vector<net::NodeId> members, double sniff_range,
      std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kColluding;
  }
  [[nodiscard]] const char* name() const override { return "colluding"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  /// Raw overheard data frames per member (diagnostics).
  [[nodiscard]] std::uint64_t frames_seen_by(net::NodeId n) const;

 private:
  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  double sniff_range_;
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of_;
  std::unordered_map<net::NodeId, std::uint64_t> frames_seen_;
};

/// (b) Mobile external eavesdroppers: sniffers that are not part of the
/// node population, each following its own random-waypoint trajectory
/// over the arena, pooling captures like a coalition.
class MobileEavesdroppers final : public PooledAdversary {
 public:
  MobileEavesdroppers(std::uint32_t count, const mobility::Field& field,
                      const AdversarySpec& spec, double sniff_range,
                      sim::Rng rng);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kMobile;
  }
  [[nodiscard]] const char* name() const override { return "mobile"; }
  [[nodiscard]] std::size_t member_count() const override {
    return trajectories_.size();
  }

  void on_transmission(const Transmission& tx, const phy::Frame& f) override;

  /// Trajectory introspection (tests: the sniffer never leaves the arena).
  [[nodiscard]] mobility::Vec2 position_of_member(std::size_t i,
                                                  sim::Time t) const;

 private:
  std::vector<std::unique_ptr<mobility::MobilityModel>> trajectories_;
  double sniff_range_;
};

/// (c) Insider blackhole: members answer route discovery like honest
/// nodes (control packets pass through untouched), then absorb every
/// TCP data packet they are asked to relay.  Absorbed segments also land
/// in the capture pool — a blackhole reads what it eats.
class BlackholeAttacker final : public PooledAdversary {
 public:
  explicit BlackholeAttacker(std::vector<net::NodeId> members);

  [[nodiscard]] AdversaryKind kind() const override {
    return AdversaryKind::kBlackhole;
  }
  [[nodiscard]] const char* name() const override { return "blackhole"; }
  [[nodiscard]] std::size_t member_count() const override {
    return members_.size();
  }
  [[nodiscard]] bool is_member(net::NodeId n) const override {
    return member_set_.contains(n);
  }
  [[nodiscard]] std::vector<net::NodeId> members() const override {
    return members_;
  }

  [[nodiscard]] bool absorbs(net::NodeId node,
                             const net::Packet& p) const override;
  void on_absorb(net::NodeId node, const net::Packet& p) override;

  [[nodiscard]] std::uint64_t absorbed_packets() const override {
    return absorbed_;
  }
  [[nodiscard]] std::uint64_t absorbed_by(net::NodeId n) const;

 private:
  std::vector<net::NodeId> members_;
  std::unordered_set<net::NodeId> member_set_;
  std::uint64_t absorbed_ = 0;
  std::unordered_map<net::NodeId, std::uint64_t> per_member_;
};

/// Context the factory needs to instantiate a model for one scenario.
struct AdversaryContext {
  std::uint32_t node_count = 0;
  mobility::Field field;
  double radio_range = 250.0;
  /// Flow endpoints — never conscripted as insiders (they would trivially
  /// see their own traffic).
  std::unordered_set<net::NodeId> excluded;
  /// Position lookup for insider members (bound to node mobility).
  std::function<mobility::Vec2(net::NodeId, sim::Time)> position_of;
  /// Dedicated RNG substream (member draw + mobile trajectories).
  sim::Rng rng{0};
};

/// Builds the model described by `spec`, or nullptr for kNone.
std::unique_ptr<AdversaryModel> make_adversary(const AdversarySpec& spec,
                                               const AdversaryContext& ctx);

}  // namespace mts::security
