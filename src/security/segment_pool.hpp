#pragma once

#include <cstdint>
#include <unordered_set>

#include "net/packet.hpp"

namespace mts::security {

/// Distinct-TCP-data-segment accounting shared by the paper's single
/// eavesdropper (Eq. 1) and the adversary coalition pools: segment
/// identity is (flow, seq), so retransmissions of a segment are not
/// double counted, mirroring how Pr counts distinct deliveries.  Keeping
/// one implementation keeps the coalition's union-Pe comparable to the
/// paper's single-eavesdropper Pe.
class SegmentPool {
 public:
  /// Returns true if the segment was new to the pool (ignores anything
  /// that is not a TCP data segment).
  bool capture(const net::Packet& p) {
    if (p.common().kind != net::PacketKind::kTcpData || !p.has_tcp()) {
      return false;
    }
    return segments_
        .insert((std::uint64_t{p.tcp().flow_id} << 32) |
                std::uint64_t{p.tcp().seq})
        .second;
  }

  [[nodiscard]] std::uint64_t captured_segments() const {
    return segments_.size();
  }

  /// Eq. 1: Pe / Pr (pooled Pe for coalitions).
  [[nodiscard]] double interception_ratio(std::uint64_t pr) const {
    return pr == 0 ? 0.0
                   : static_cast<double>(segments_.size()) /
                         static_cast<double>(pr);
  }

  /// Fragments still needed to reconstruct the delivered stream,
  /// assuming every capture overlaps a delivery (lower bound).
  [[nodiscard]] std::uint64_t fragments_missing(std::uint64_t pr) const {
    return pr > segments_.size() ? pr - segments_.size() : 0;
  }

 private:
  std::unordered_set<std::uint64_t> segments_;
};

}  // namespace mts::security
