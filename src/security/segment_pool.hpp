#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "security/keyshare.hpp"

namespace mts::security {

/// Distinct-TCP-data-segment accounting shared by the paper's single
/// eavesdropper (Eq. 1) and the adversary coalition pools: segment
/// identity is (flow, seq), so retransmissions of a segment are not
/// double counted, mirroring how Pr counts distinct deliveries.  Keeping
/// one implementation keeps the coalition's union-Pe comparable to the
/// paper's single-eavesdropper Pe.
///
/// When the secrecy game is on (`attach_secrecy`), every tapped data
/// segment — retransmissions included, since a resend may ride a
/// different path and thus carry a different key share — is additionally
/// materialized into real wire bytes and fed to the coalition's
/// `KeyRecoveryPool`, which parses them back with the codec.
class SegmentPool {
 public:
  /// Returns true if the segment was new to the pool (ignores anything
  /// that is not a TCP data segment).
  bool capture(const net::Packet& p) {
    if (p.common().kind != net::PacketKind::kTcpData || !p.has_tcp()) {
      return false;
    }
    if (secrecy_ != nullptr) {
      scratch_.clear();
      if (secrecy_->wire_image(p, scratch_)) {
        recovery_.capture(scratch_.data(), scratch_.size());
      }
    }
    return segments_
        .insert((std::uint64_t{p.tcp().flow_id} << 32) |
                std::uint64_t{p.tcp().seq})
        .second;
  }

  /// Arms the key-recovery game; `plane` must outlive the pool.
  void attach_secrecy(const SecrecyPlane* plane) { secrecy_ = plane; }

  /// The coalition's captured-share pool; nullptr when the game is off.
  [[nodiscard]] const KeyRecoveryPool* recovery() const {
    return secrecy_ == nullptr ? nullptr : &recovery_;
  }

  [[nodiscard]] std::uint64_t captured_segments() const {
    return segments_.size();
  }

  /// Eq. 1: Pe / Pr (pooled Pe for coalitions).
  [[nodiscard]] double interception_ratio(std::uint64_t pr) const {
    return pr == 0 ? 0.0
                   : static_cast<double>(segments_.size()) /
                         static_cast<double>(pr);
  }

  /// Fragments still needed to reconstruct the delivered stream,
  /// assuming every capture overlaps a delivery (lower bound).
  [[nodiscard]] std::uint64_t fragments_missing(std::uint64_t pr) const {
    return pr > segments_.size() ? pr - segments_.size() : 0;
  }

 private:
  std::unordered_set<std::uint64_t> segments_;
  const SecrecyPlane* secrecy_ = nullptr;
  KeyRecoveryPool recovery_;
  /// Encode scratch, reused across captures (capacity sticks).
  std::vector<std::uint8_t> scratch_;
};

}  // namespace mts::security
