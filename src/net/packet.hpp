#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/headers.hpp"
#include "net/node_id.hpp"

namespace mts::net {

/// A network-layer packet: common header + optional TCP header +
/// at most one routing header/option.
///
/// Packets are value types.  A broadcast reaching k receivers is k
/// copies; header vectors (route records) are short (<= network
/// diameter), so copies stay cheap and no reference counting is needed.
struct Packet {
  CommonHeader common;
  std::optional<TcpHeader> tcp;
  RoutingHeader routing;  // std::monostate when absent

  /// Total on-wire bytes above the MAC layer (headers + payload); this is
  /// what the MAC serializes at the PHY rate.
  [[nodiscard]] std::uint32_t wire_bytes() const {
    std::uint32_t n = kCommonHeaderBytes + common.payload_bytes;
    if (tcp.has_value()) n += kTcpHeaderBytes;
    n += routing_header_bytes(routing);
    return n;
  }

  [[nodiscard]] PacketKind kind() const { return common.kind; }
  [[nodiscard]] bool is_control() const { return is_routing_control(common.kind); }

  /// One-line rendering for traces and test diagnostics.
  [[nodiscard]] std::string summary() const;
};

/// Allocates unique packet ids within one simulation.
class UidSource {
 public:
  std::uint32_t next() { return ++last_; }
  [[nodiscard]] std::uint32_t issued() const { return last_; }

 private:
  std::uint32_t last_ = 0;
};

}  // namespace mts::net
