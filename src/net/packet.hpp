#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/headers.hpp"
#include "net/node_id.hpp"
#include "sim/error.hpp"

namespace mts::net {

/// The heap-side contents of a packet: common header + optional TCP
/// header + at most one routing header/option, plus the intrusive
/// bookkeeping of the body pool (refcount, generation, free link).
///
/// Bodies are immutable through shared `Packet` handles: every mutation
/// goes through a `mutable_*` accessor that clones the body first when
/// other handles still reference it (copy-on-write).
struct PacketBody {
  CommonHeader common;
  std::optional<TcpHeader> tcp;
  RoutingHeader routing;  // std::monostate when absent

  std::uint32_t refcount = 0;
  /// Bumped every time the body returns to the pool; live handles carry
  /// the generation they bound to, so a use-after-release trips a
  /// deterministic check instead of reading a recycled packet.
  std::uint32_t generation = 0;
  PacketBody* next_free = nullptr;
};

/// Allocation stats of the thread-local body pool (tests, benches, and
/// the zero-clone assertions of the packet-plane integration tests).
struct PacketPoolStats {
  std::uint64_t acquired = 0;   ///< fresh bodies handed out (incl. clones)
  std::uint64_t released = 0;   ///< bodies returned on last handle release
  std::uint64_t cow_clones = 0; ///< deep copies forced by mutating a shared body
  std::uint64_t slots = 0;      ///< bodies ever carved from chunk storage
  [[nodiscard]] std::uint64_t live() const { return acquired - released; }
};

/// Snapshot of the calling thread's pool counters.
PacketPoolStats packet_pool_stats();

/// A network-layer packet: a cheap handle onto a pooled, intrusively
/// refcounted `PacketBody`.
///
/// Copying a Packet is a refcount bump — broadcast fan-out to k
/// receivers, interface-queue inserts, MAC retry buffers, in-flight
/// channel records, and trace records all share one body.  Reads go
/// through the const accessors; writes go through the `mutable_*`
/// accessors, which clone the body first iff other handles still
/// reference it.  The common forwarding chain therefore deep-copies at
/// most once per mutating hop and never on delivery.
///
/// The body pool is thread-local: a packet must be created, used, and
/// released on one thread.  The harness runs each scenario on a single
/// thread, so this costs nothing and needs no atomics.
class Packet {
 public:
  Packet() = default;  ///< empty handle; a body is acquired on first write

  Packet(const Packet& other) : body_(other.body_), gen_(other.gen_) {
    if (body_ != nullptr) ++body_->refcount;
  }

  Packet(Packet&& other) noexcept : body_(other.body_), gen_(other.gen_) {
    other.body_ = nullptr;
  }

  Packet& operator=(const Packet& other) {
    if (this != &other) {
      reset();
      body_ = other.body_;
      gen_ = other.gen_;
      if (body_ != nullptr) ++body_->refcount;
    }
    return *this;
  }

  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      reset();
      body_ = other.body_;
      gen_ = other.gen_;
      other.body_ = nullptr;
    }
    return *this;
  }

  ~Packet() { reset(); }

  /// Drops this handle's reference; the body returns to the pool when
  /// the last handle lets go.
  void reset();

  [[nodiscard]] bool has_body() const { return body_ != nullptr; }

  // --- read access (shared body, never copies) -------------------------
  [[nodiscard]] const CommonHeader& common() const {
    return checked().common;
  }
  [[nodiscard]] bool has_tcp() const {
    return body_ != nullptr && checked().tcp.has_value();
  }
  [[nodiscard]] const TcpHeader& tcp() const { return *checked().tcp; }
  [[nodiscard]] const RoutingHeader& routing() const {
    return checked().routing;
  }

  // --- write access (copy-on-write) ------------------------------------
  [[nodiscard]] CommonHeader& mutable_common() { return own().common; }
  /// Creates the TCP header if absent.
  [[nodiscard]] TcpHeader& mutable_tcp() {
    PacketBody& b = own();
    if (!b.tcp.has_value()) b.tcp.emplace();
    return *b.tcp;
  }
  [[nodiscard]] RoutingHeader& mutable_routing() { return own().routing; }

  /// Total on-wire bytes above the MAC layer (headers + payload); this is
  /// what the MAC serializes at the PHY rate.
  [[nodiscard]] std::uint32_t wire_bytes() const {
    const PacketBody& b = checked();
    std::uint32_t n = kCommonHeaderBytes + b.common.payload_bytes;
    if (b.tcp.has_value()) n += kTcpHeaderBytes;
    n += routing_header_bytes(b.routing);
    return n;
  }

  [[nodiscard]] PacketKind kind() const { return checked().common.kind; }
  [[nodiscard]] bool is_control() const {
    return is_routing_control(kind());
  }

  /// One-line rendering for traces and test diagnostics.
  [[nodiscard]] std::string summary() const;

  // --- introspection (tests) -------------------------------------------
  [[nodiscard]] std::uint32_t ref_count() const {
    return body_ == nullptr ? 0 : checked().refcount;
  }
  [[nodiscard]] bool unique() const { return ref_count() == 1; }

 private:
  [[nodiscard]] const PacketBody& checked() const {
    sim::require(body_ != nullptr, "Packet: read through an empty handle");
    sim::require(body_->generation == gen_,
                 "Packet: stale handle (body was recycled)");
    return *body_;
  }
  /// Returns a body this handle exclusively owns: acquires a fresh one
  /// when empty, clones first when shared.
  PacketBody& own();

  PacketBody* body_ = nullptr;
  std::uint32_t gen_ = 0;
};

/// Allocates unique packet ids within one simulation.
class UidSource {
 public:
  std::uint32_t next() { return ++last_; }
  [[nodiscard]] std::uint32_t issued() const { return last_; }

 private:
  std::uint32_t last_ = 0;
};

}  // namespace mts::net
