#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/headers.hpp"
#include "net/node_id.hpp"
#include "sim/error.hpp"

namespace mts::net {

/// The heap-side contents of a packet: common header + optional TCP
/// header + at most one routing header/option, plus the intrusive
/// bookkeeping of the body pool (refcount, generation, free link).
///
/// Bodies are immutable through shared `Packet` handles: every mutation
/// goes through a `mutable_*` accessor that clones the body first when
/// other handles still reference it (copy-on-write).
struct PacketBody {
  CommonHeader common;
  std::optional<TcpHeader> tcp;
  RoutingHeader routing;  // std::monostate when absent

  /// Materialized wire payload (the secrecy plane's key shares + masked
  /// fragment bytes), cached on the body so every tap of the same frame
  /// reads the same bytes without re-deriving them.  Null when nothing
  /// materialized one (the default — the simulator models payload
  /// existence, not content).  This is a cache of a deterministic
  /// function of the headers: copying a handle shares it, any mutation
  /// (own/clone) drops it.
  std::shared_ptr<const std::vector<std::uint8_t>> wire_payload;

  std::uint32_t refcount = 0;
  /// Bumped every time the body returns to the pool; live handles carry
  /// the generation they bound to, so a use-after-release trips a
  /// deterministic check instead of reading a recycled packet.
  std::uint32_t generation = 0;
  PacketBody* next_free = nullptr;
};

/// Allocation stats of the thread-local body pool (tests, benches, and
/// the zero-clone assertions of the packet-plane integration tests).
struct PacketPoolStats {
  std::uint64_t acquired = 0;   ///< fresh bodies handed out (incl. clones)
  std::uint64_t released = 0;   ///< bodies returned on last handle release
  std::uint64_t cow_clones = 0; ///< deep copies forced by mutating a shared body
  std::uint64_t slots = 0;      ///< bodies ever carved from chunk storage
  /// Per-hop mutable cells grabbed via `Packet::mutable_hop()` — the
  /// mutations that used to force a CoW clone on forwarding hops.
  std::uint64_t cell_acquired = 0;
  /// Reads of an already-materialized wire-payload cache; with the
  /// hop-split layout the cache survives multi-hop forwarding, so taps
  /// along a chain hit instead of re-deriving.
  std::uint64_t wire_cache_hits = 0;
  [[nodiscard]] std::uint64_t live() const { return acquired - released; }
};

/// Snapshot of the calling thread's pool counters.
PacketPoolStats packet_pool_stats();

namespace detail {
/// Counter hooks into the thread-local pool stats, for the handle's
/// inline accessors (the pool type itself is private to packet.cpp).
void note_cell_acquired();
void note_wire_cache_hit();
}  // namespace detail

/// A network-layer packet: a cheap handle onto a pooled, intrusively
/// refcounted `PacketBody`, plus the packet's per-hop mutable cell
/// (`HopState`) carried *in the handle itself* — the 4 bytes of TTL /
/// hop count / route cursor ride in what used to be handle padding, so
/// sizeof(Packet) stays 16.
///
/// Copying a Packet is a refcount bump plus a 4-byte cell copy —
/// broadcast fan-out to k receivers, interface-queue inserts, MAC retry
/// buffers, in-flight channel records, and trace records all share one
/// body while each carries its own hop cell.  Reads go through the
/// const accessors; body writes go through the `mutable_*` accessors,
/// which clone the body first iff other handles still reference it.
/// Per-hop writes go through `mutable_hop()` and never touch the body:
/// a forwarding hop that only decrements TTL or advances a cursor
/// copies nothing, and the cached wire-payload image survives the hop.
/// Cell semantics are exactly CoW-observable: a mutation is never seen
/// by pre-existing sibling handles, and later copies carry it forward.
///
/// The body pool is thread-local: a packet must be created, used, and
/// released on one thread.  The harness runs each scenario on a single
/// thread, so this costs nothing and needs no atomics.
class Packet {
 public:
  Packet() = default;  ///< empty handle; a body is acquired on first write

  Packet(const Packet& other)
      : body_(other.body_), gen_(other.gen_), hop_(other.hop_) {
    if (body_ != nullptr) ++body_->refcount;
  }

  Packet(Packet&& other) noexcept
      : body_(other.body_), gen_(other.gen_), hop_(other.hop_) {
    other.body_ = nullptr;
  }

  Packet& operator=(const Packet& other) {
    if (this != &other) {
      reset();
      body_ = other.body_;
      gen_ = other.gen_;
      hop_ = other.hop_;
      if (body_ != nullptr) ++body_->refcount;
    }
    return *this;
  }

  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      reset();
      body_ = other.body_;
      gen_ = other.gen_;
      hop_ = other.hop_;
      other.body_ = nullptr;
    }
    return *this;
  }

  ~Packet() { reset(); }

  /// Drops this handle's reference; the body returns to the pool when
  /// the last handle lets go.
  void reset();

  [[nodiscard]] bool has_body() const { return body_ != nullptr; }

  // --- read access (shared body, never copies) -------------------------
  [[nodiscard]] const CommonHeader& common() const {
    return checked().common;
  }
  [[nodiscard]] bool has_tcp() const {
    return body_ != nullptr && checked().tcp.has_value();
  }
  [[nodiscard]] const TcpHeader& tcp() const { return *checked().tcp; }
  [[nodiscard]] const RoutingHeader& routing() const {
    return checked().routing;
  }

  /// Typed routing-header access: `header<DsrRreqHeader>()` instead of
  /// `std::get<DsrRreqHeader>(p.routing())` at every call site.  Trips a
  /// deterministic check (not std::bad_variant_access) on a kind
  /// mismatch.
  template <typename T>
  [[nodiscard]] const T& header() const {
    const T* h = std::get_if<T>(&checked().routing);
    sim::require(h != nullptr, "Packet: routing header kind mismatch");
    return *h;
  }
  /// Typed access that answers "is it carrying one?" and "give it to me"
  /// in one call; nullptr when the slot holds something else (or the
  /// handle is empty).
  template <typename T>
  [[nodiscard]] const T* header_if() const {
    return body_ == nullptr ? nullptr : std::get_if<T>(&checked().routing);
  }

  // --- per-hop mutable cell (lives in the handle, not the body) ---------
  /// The hop cell this handle carries: TTL, hop count, route cursor.
  [[nodiscard]] const HopState& hop() const { return hop_; }
  /// Mutable grab of the hop cell.  Never clones, never invalidates the
  /// wire-payload cache (the cached payload bytes are hop-invariant);
  /// counted in `PacketPoolStats::cell_acquired`.
  [[nodiscard]] HopState& mutable_hop() {
    detail::note_cell_acquired();
    return hop_;
  }

  // --- write access (copy-on-write) ------------------------------------
  [[nodiscard]] CommonHeader& mutable_common() { return own().common; }
  /// Creates the TCP header if absent.
  [[nodiscard]] TcpHeader& mutable_tcp() {
    PacketBody& b = own();
    if (!b.tcp.has_value()) b.tcp.emplace();
    return *b.tcp;
  }
  [[nodiscard]] RoutingHeader& mutable_routing() { return own().routing; }

  /// CoW-aware typed mutation: clones a shared body first, then hands
  /// out the routing header, requiring the kind to match.
  template <typename T>
  [[nodiscard]] T& mutable_header() {
    T* h = std::get_if<T>(&own().routing);
    sim::require(h != nullptr, "Packet: routing header kind mismatch");
    return *h;
  }

  // --- materialized wire payload (secrecy plane) ------------------------
  /// The cached wire-payload image; null when none was materialized.
  /// Populated reads are counted in `PacketPoolStats::wire_cache_hits`
  /// — the taps a multi-hop forward chain no longer forces to re-derive.
  [[nodiscard]] const std::shared_ptr<const std::vector<std::uint8_t>>&
  wire_payload() const {
    const PacketBody& b = checked();
    if (b.wire_payload != nullptr) detail::note_wire_cache_hit();
    return b.wire_payload;
  }
  /// Stamps the cache through a shared body without CoW: the image is a
  /// pure function of the headers, so all handles agree on it — this is
  /// logically const and does not count as a mutation.
  void cache_wire_payload(
      std::shared_ptr<const std::vector<std::uint8_t>> bytes) const {
    const_cast<PacketBody&>(checked()).wire_payload = std::move(bytes);
  }

  /// Total on-wire bytes above the MAC layer (headers + payload); this is
  /// what the MAC serializes at the PHY rate.
  [[nodiscard]] std::uint32_t wire_bytes() const {
    const PacketBody& b = checked();
    std::uint32_t n = kCommonHeaderBytes + b.common.payload_bytes;
    if (b.tcp.has_value()) n += kTcpHeaderBytes;
    n += routing_header_bytes(b.routing);
    return n;
  }

  [[nodiscard]] PacketKind kind() const { return checked().common.kind; }
  [[nodiscard]] bool is_control() const {
    return is_routing_control(kind());
  }

  /// One-line rendering for traces and test diagnostics.
  [[nodiscard]] std::string summary() const;

  // --- introspection (tests) -------------------------------------------
  [[nodiscard]] std::uint32_t ref_count() const {
    return body_ == nullptr ? 0 : checked().refcount;
  }
  [[nodiscard]] bool unique() const { return ref_count() == 1; }

 private:
  [[nodiscard]] const PacketBody& checked() const {
    sim::require(body_ != nullptr, "Packet: read through an empty handle");
    sim::require(body_->generation == gen_,
                 "Packet: stale handle (body was recycled)");
    return *body_;
  }
  /// Returns a body this handle exclusively owns: acquires a fresh one
  /// when empty, clones first when shared.
  PacketBody& own();

  PacketBody* body_ = nullptr;
  std::uint32_t gen_ = 0;
  /// Per-hop mutable cell; occupies the handle's former padding.
  HopState hop_;
};

static_assert(sizeof(Packet) == 16,
              "Packet handle grew past 16 bytes: the HopState cell must "
              "fit the former padding after gen_");

/// Allocates unique packet ids within one simulation.
class UidSource {
 public:
  std::uint32_t next() { return ++last_; }
  [[nodiscard]] std::uint32_t issued() const { return last_; }

 private:
  std::uint32_t last_ = 0;
};

}  // namespace mts::net
