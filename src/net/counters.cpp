#include "net/counters.hpp"

namespace mts::net {

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kQueueFull: return "queue_full";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kMacRetryExceeded: return "mac_retry_exceeded";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kCollision: return "collision";
    case DropReason::kSendBufferTimeout: return "send_buffer_timeout";
    case DropReason::kSendBufferFull: return "send_buffer_full";
    case DropReason::kStaleRoute: return "stale_route";
    case DropReason::kDuplicate: return "duplicate";
    case DropReason::kAdversary: return "adversary";
    case DropReason::kRateLimited: return "rate_limited";
    case DropReason::kCount: break;
  }
  return "?";
}

}  // namespace mts::net
