#pragma once

#include <array>
#include <cstdint>

namespace mts::net {

/// Why a packet died.  Kept simulator-wide so studies can attribute loss.
enum class DropReason : std::uint8_t {
  kQueueFull = 0,      ///< interface queue overflow
  kNoRoute,            ///< routing had no path and could not buffer
  kMacRetryExceeded,   ///< unicast failed after the MAC retry limit
  kTtlExpired,         ///< network-layer loop guard
  kCollision,          ///< PHY reception corrupted by overlap
  kSendBufferTimeout,  ///< waited too long for a route
  kSendBufferFull,     ///< route-pending buffer overflow
  kStaleRoute,         ///< forwarding state missing/expired mid-path
  kDuplicate,          ///< flood duplicate, intentionally ignored
  kAdversary,          ///< absorbed by an insider attacker (blackhole)
  kRateLimited,        ///< suppressed by the flood-rate-limit defense
  kCount
};

const char* drop_reason_name(DropReason r);

/// Per-node packet accounting.  Incremented on the hot path; aggregation
/// happens off-line, so plain integers (no atomics — one simulator is
/// single-threaded by construction).
struct Counters {
  std::uint64_t sent_data = 0;        ///< transport packets originated here
  std::uint64_t recv_data = 0;        ///< transport packets delivered here
  std::uint64_t forwarded_data = 0;   ///< TCP *data* packets relayed (β_i)
  std::uint64_t forwarded_ack = 0;    ///< TCP ACK packets relayed
  std::uint64_t sent_control = 0;     ///< routing packets originated here
  std::uint64_t forwarded_control = 0;
  std::uint64_t mac_tx_frames = 0;
  std::uint64_t mac_rx_frames = 0;
  std::uint64_t mac_retries = 0;     ///< unicast retransmission attempts
  std::array<std::uint64_t, static_cast<std::size_t>(DropReason::kCount)>
      drops{};

  void drop(DropReason r) { ++drops[static_cast<std::size_t>(r)]; }
  [[nodiscard]] std::uint64_t drops_total() const {
    std::uint64_t s = 0;
    for (auto d : drops) s += d;
    return s;
  }
  [[nodiscard]] std::uint64_t dropped(DropReason r) const {
    return drops[static_cast<std::size_t>(r)];
  }
  /// Control packets transmitted (originated + relayed): the unit of the
  /// paper's Fig. 11 "control overhead: the total routing packets".
  [[nodiscard]] std::uint64_t control_transmissions() const {
    return sent_control + forwarded_control;
  }
};

}  // namespace mts::net
