#include "net/packet.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "net/wire.hpp"
#include "sim/error.hpp"

namespace mts::net {

const char* packet_kind_name(PacketKind k) {
  switch (k) {
    case PacketKind::kTcpData: return "TCP_DATA";
    case PacketKind::kTcpAck: return "TCP_ACK";
    case PacketKind::kAodvRreq: return "AODV_RREQ";
    case PacketKind::kAodvRrep: return "AODV_RREP";
    case PacketKind::kAodvRerr: return "AODV_RERR";
    case PacketKind::kDsrRreq: return "DSR_RREQ";
    case PacketKind::kDsrRrep: return "DSR_RREP";
    case PacketKind::kDsrRerr: return "DSR_RERR";
    case PacketKind::kMtsRreq: return "MTS_RREQ";
    case PacketKind::kMtsRrep: return "MTS_RREP";
    case PacketKind::kMtsCheck: return "MTS_CHECK";
    case PacketKind::kMtsCheckError: return "MTS_CHECK_ERR";
    case PacketKind::kMtsRerr: return "MTS_RERR";
  }
  return "?";
}

namespace {

/// Thread-local pool of packet bodies: chunked storage (stable
/// addresses) threaded through an intrusive free list, mirroring the
/// scheduler's event slot pool.  Thread-local because the campaign
/// harness runs concurrent scenarios on worker threads; within one
/// scenario every packet lives and dies on the same thread, so refcount
/// traffic needs no atomics.
class PacketPool {
 public:
  static PacketPool& local() {
    thread_local PacketPool pool;
    return pool;
  }

  PacketBody* acquire() {
    PacketBody* b = take_slot();
    b->common = CommonHeader{};
    b->tcp.reset();
    b->routing = std::monostate{};
    b->wire_payload.reset();
    b->refcount = 1;
    ++stats_.acquired;
    return b;
  }

  /// Deep copy for copy-on-write: called when a handle must mutate a
  /// body other handles still reference.  The wire-payload cache is
  /// deliberately not copied — a clone exists to be mutated, which
  /// invalidates the materialized image anyway.
  PacketBody* clone(const PacketBody& src) {
    PacketBody* b = take_slot();
    b->common = src.common;
    b->tcp = src.tcp;
    b->routing = src.routing;
    b->wire_payload.reset();
    b->refcount = 1;
    ++stats_.acquired;
    ++stats_.cow_clones;
    return b;
  }

  void release(PacketBody* b) {
    ++b->generation;  // invalidate any stale handle deterministically
    b->wire_payload.reset();  // drop the shared image with the body
    b->next_free = free_;
    free_ = b;
    ++stats_.released;
  }

  [[nodiscard]] const PacketPoolStats& stats() const { return stats_; }
  PacketPoolStats& mutable_stats() { return stats_; }

 private:
  static constexpr std::size_t kChunkSize = 64;

  PacketBody* take_slot() {
    if (free_ != nullptr) {
      PacketBody* b = free_;
      free_ = b->next_free;
      return b;
    }
    chunks_.push_back(std::make_unique<PacketBody[]>(kChunkSize));
    PacketBody* chunk = chunks_.back().get();
    // Thread all but the first fresh slot onto the free list.
    for (std::size_t i = kChunkSize - 1; i > 0; --i) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
    stats_.slots += kChunkSize;
    return &chunk[0];
  }

  std::vector<std::unique_ptr<PacketBody[]>> chunks_;
  PacketBody* free_ = nullptr;
  PacketPoolStats stats_;
};

}  // namespace

PacketPoolStats packet_pool_stats() { return PacketPool::local().stats(); }

namespace detail {

void note_cell_acquired() { ++PacketPool::local().mutable_stats().cell_acquired; }

void note_wire_cache_hit() {
  ++PacketPool::local().mutable_stats().wire_cache_hits;
}

}  // namespace detail

std::uint32_t routing_header_bytes(const RoutingHeader& h) {
  // Derived from the wire codec's size law, which the codec's encoders
  // verify byte-for-byte — airtime accounting cannot drift from the
  // actual wire format (tests/net/wire_test.cpp pins the legacy values).
  return wire::routing_wire_size(h);
}

void Packet::reset() {
  hop_ = HopState{};
  if (body_ == nullptr) return;
  // A stale handle must trip here too: decrementing a recycled body's
  // refcount would prematurely release its new owner's allocation and
  // corrupt the pool far from the actual bug.  (From a destructor this
  // terminates — still deterministic, unlike the corruption.)
  sim::require(body_->generation == gen_,
               "Packet: releasing a stale handle (body was recycled)");
  if (--body_->refcount == 0) PacketPool::local().release(body_);
  body_ = nullptr;
}

PacketBody& Packet::own() {
  if (body_ == nullptr) {
    body_ = PacketPool::local().acquire();
  } else {
    sim::require(body_->generation == gen_,
                 "Packet: stale handle (body was recycled)");
    if (body_->refcount > 1) {
      PacketBody* fresh = PacketPool::local().clone(*body_);
      --body_->refcount;
      body_ = fresh;
    }
  }
  gen_ = body_->generation;
  // Any write may change what the packet looks like on the air, so the
  // materialized image is stale from here; taps re-derive it on demand.
  body_->wire_payload.reset();
  return *body_;
}

std::string Packet::summary() const {
  const PacketBody& b = checked();
  std::ostringstream os;
  os << packet_kind_name(b.common.kind) << " uid=" << b.common.uid << " "
     << b.common.src << "->" << b.common.dst << " ttl=" << int{hop_.ttl}
     << " bytes=" << wire_bytes();
  if (b.tcp.has_value()) {
    os << " seq=" << b.tcp->seq << " ack=" << b.tcp->ack;
  }
  return os.str();
}

}  // namespace mts::net
