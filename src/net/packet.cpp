#include "net/packet.hpp"

#include <sstream>

namespace mts::net {

const char* packet_kind_name(PacketKind k) {
  switch (k) {
    case PacketKind::kTcpData: return "TCP_DATA";
    case PacketKind::kTcpAck: return "TCP_ACK";
    case PacketKind::kAodvRreq: return "AODV_RREQ";
    case PacketKind::kAodvRrep: return "AODV_RREP";
    case PacketKind::kAodvRerr: return "AODV_RERR";
    case PacketKind::kDsrRreq: return "DSR_RREQ";
    case PacketKind::kDsrRrep: return "DSR_RREP";
    case PacketKind::kDsrRerr: return "DSR_RERR";
    case PacketKind::kMtsRreq: return "MTS_RREQ";
    case PacketKind::kMtsRrep: return "MTS_RREP";
    case PacketKind::kMtsCheck: return "MTS_CHECK";
    case PacketKind::kMtsCheckError: return "MTS_CHECK_ERR";
    case PacketKind::kMtsRerr: return "MTS_RERR";
  }
  return "?";
}

namespace {

/// Fixed header part sizes in bytes; per-address cost is 4 bytes, as in
/// the AODV/DSR drafts.
constexpr std::uint32_t kPerAddressBytes = 4;

struct SizeVisitor {
  std::uint32_t operator()(const std::monostate&) const { return 0; }
  std::uint32_t operator()(const AodvRreqHeader&) const { return 24; }
  std::uint32_t operator()(const AodvRrepHeader&) const { return 20; }
  std::uint32_t operator()(const AodvRerrHeader& h) const {
    return 4 + static_cast<std::uint32_t>(h.unreachable.size()) * 8;
  }
  std::uint32_t operator()(const DsrRreqHeader& h) const {
    return 8 + static_cast<std::uint32_t>(h.record.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrRrepHeader& h) const {
    return 8 + static_cast<std::uint32_t>(h.route.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrRerrHeader& h) const {
    return 12 + static_cast<std::uint32_t>(h.back_path.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrSourceRoute& h) const {
    return 4 + static_cast<std::uint32_t>(h.route.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRreqHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRrepHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsCheckHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsCheckErrorHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRerrHeader&) const { return 16; }
  std::uint32_t operator()(const MtsDataTag&) const { return 4; }
};

}  // namespace

std::uint32_t routing_header_bytes(const RoutingHeader& h) {
  return std::visit(SizeVisitor{}, h);
}

std::string Packet::summary() const {
  std::ostringstream os;
  os << packet_kind_name(common.kind) << " uid=" << common.uid << " "
     << common.src << "->" << common.dst << " ttl=" << int{common.ttl}
     << " bytes=" << wire_bytes();
  if (tcp.has_value()) {
    os << " seq=" << tcp->seq << " ack=" << tcp->ack;
  }
  return os.str();
}

}  // namespace mts::net
