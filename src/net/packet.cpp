#include "net/packet.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "sim/error.hpp"

namespace mts::net {

const char* packet_kind_name(PacketKind k) {
  switch (k) {
    case PacketKind::kTcpData: return "TCP_DATA";
    case PacketKind::kTcpAck: return "TCP_ACK";
    case PacketKind::kAodvRreq: return "AODV_RREQ";
    case PacketKind::kAodvRrep: return "AODV_RREP";
    case PacketKind::kAodvRerr: return "AODV_RERR";
    case PacketKind::kDsrRreq: return "DSR_RREQ";
    case PacketKind::kDsrRrep: return "DSR_RREP";
    case PacketKind::kDsrRerr: return "DSR_RERR";
    case PacketKind::kMtsRreq: return "MTS_RREQ";
    case PacketKind::kMtsRrep: return "MTS_RREP";
    case PacketKind::kMtsCheck: return "MTS_CHECK";
    case PacketKind::kMtsCheckError: return "MTS_CHECK_ERR";
    case PacketKind::kMtsRerr: return "MTS_RERR";
  }
  return "?";
}

namespace {

/// Fixed header part sizes in bytes; per-address cost is 4 bytes, as in
/// the AODV/DSR drafts.
constexpr std::uint32_t kPerAddressBytes = 4;

struct SizeVisitor {
  std::uint32_t operator()(const std::monostate&) const { return 0; }
  std::uint32_t operator()(const AodvRreqHeader&) const { return 24; }
  std::uint32_t operator()(const AodvRrepHeader&) const { return 20; }
  std::uint32_t operator()(const AodvRerrHeader& h) const {
    return 4 + static_cast<std::uint32_t>(h.unreachable.size()) * 8;
  }
  std::uint32_t operator()(const DsrRreqHeader& h) const {
    return 8 + static_cast<std::uint32_t>(h.record.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrRrepHeader& h) const {
    return 8 + static_cast<std::uint32_t>(h.route.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrRerrHeader& h) const {
    return 12 + static_cast<std::uint32_t>(h.back_path.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const DsrSourceRoute& h) const {
    return 4 + static_cast<std::uint32_t>(h.route.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRreqHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRrepHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsCheckHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsCheckErrorHeader& h) const {
    return 16 + static_cast<std::uint32_t>(h.nodes.size()) * kPerAddressBytes;
  }
  std::uint32_t operator()(const MtsRerrHeader&) const { return 16; }
  std::uint32_t operator()(const MtsDataTag&) const { return 4; }
  /// Probe option: path id + probe id + flags.  Deliberately the same
  /// order of magnitude as the data tag — a probe should not stand out
  /// from the data plane it hides in.
  std::uint32_t operator()(const MtsProbeHeader&) const { return 8; }
};

/// Thread-local pool of packet bodies: chunked storage (stable
/// addresses) threaded through an intrusive free list, mirroring the
/// scheduler's event slot pool.  Thread-local because the campaign
/// harness runs concurrent scenarios on worker threads; within one
/// scenario every packet lives and dies on the same thread, so refcount
/// traffic needs no atomics.
class PacketPool {
 public:
  static PacketPool& local() {
    thread_local PacketPool pool;
    return pool;
  }

  PacketBody* acquire() {
    PacketBody* b = take_slot();
    b->common = CommonHeader{};
    b->tcp.reset();
    b->routing = std::monostate{};
    b->refcount = 1;
    ++stats_.acquired;
    return b;
  }

  /// Deep copy for copy-on-write: called when a handle must mutate a
  /// body other handles still reference.
  PacketBody* clone(const PacketBody& src) {
    PacketBody* b = take_slot();
    b->common = src.common;
    b->tcp = src.tcp;
    b->routing = src.routing;
    b->refcount = 1;
    ++stats_.acquired;
    ++stats_.cow_clones;
    return b;
  }

  void release(PacketBody* b) {
    ++b->generation;  // invalidate any stale handle deterministically
    b->next_free = free_;
    free_ = b;
    ++stats_.released;
  }

  [[nodiscard]] const PacketPoolStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kChunkSize = 64;

  PacketBody* take_slot() {
    if (free_ != nullptr) {
      PacketBody* b = free_;
      free_ = b->next_free;
      return b;
    }
    chunks_.push_back(std::make_unique<PacketBody[]>(kChunkSize));
    PacketBody* chunk = chunks_.back().get();
    // Thread all but the first fresh slot onto the free list.
    for (std::size_t i = kChunkSize - 1; i > 0; --i) {
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
    stats_.slots += kChunkSize;
    return &chunk[0];
  }

  std::vector<std::unique_ptr<PacketBody[]>> chunks_;
  PacketBody* free_ = nullptr;
  PacketPoolStats stats_;
};

}  // namespace

PacketPoolStats packet_pool_stats() { return PacketPool::local().stats(); }

std::uint32_t routing_header_bytes(const RoutingHeader& h) {
  return std::visit(SizeVisitor{}, h);
}

void Packet::reset() {
  if (body_ == nullptr) return;
  // A stale handle must trip here too: decrementing a recycled body's
  // refcount would prematurely release its new owner's allocation and
  // corrupt the pool far from the actual bug.  (From a destructor this
  // terminates — still deterministic, unlike the corruption.)
  sim::require(body_->generation == gen_,
               "Packet: releasing a stale handle (body was recycled)");
  if (--body_->refcount == 0) PacketPool::local().release(body_);
  body_ = nullptr;
}

PacketBody& Packet::own() {
  if (body_ == nullptr) {
    body_ = PacketPool::local().acquire();
  } else {
    sim::require(body_->generation == gen_,
                 "Packet: stale handle (body was recycled)");
    if (body_->refcount > 1) {
      PacketBody* fresh = PacketPool::local().clone(*body_);
      --body_->refcount;
      body_ = fresh;
    }
  }
  gen_ = body_->generation;
  return *body_;
}

std::string Packet::summary() const {
  const PacketBody& b = checked();
  std::ostringstream os;
  os << packet_kind_name(b.common.kind) << " uid=" << b.common.uid << " "
     << b.common.src << "->" << b.common.dst << " ttl=" << int{b.common.ttl}
     << " bytes=" << wire_bytes();
  if (b.tcp.has_value()) {
    os << " seq=" << b.tcp->seq << " ack=" << b.tcp->ack;
  }
  return os.str();
}

}  // namespace mts::net
