#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <type_traits>
#include <vector>

namespace mts::net {

/// Vector with inline storage for the first `N` elements, falling back
/// to the heap only beyond that.
///
/// Route records (DSR source routes, MTS node lists, AODV RERR entries)
/// are bounded by the network diameter and almost always fit a handful
/// of entries, yet as `std::vector`s every header copy was a heap
/// round-trip.  With inline capacity sized to the common path length,
/// copying a routing header — including the copy-on-write clones of the
/// packet plane — touches no allocator at all.
///
/// Restricted to trivially copyable element types: relocation and copy
/// are `memcpy`, which is what makes the inline buffer free.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec requires trivially copyable elements");
  static_assert(N > 0, "SmallVec needs nonzero inline capacity");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    copy_from(init.begin(), init.size());
  }

  template <typename It>
  SmallVec(It first, It last) {
    assign(first, last);
  }

  SmallVec(const SmallVec& other) { copy_from(other.data_, other.size_); }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) copy_from(other.data_, other.size_);
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release_heap();
      steal(other);
    }
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    copy_from(init.begin(), init.size());
    return *this;
  }

  ~SmallVec() { release_heap(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  static constexpr std::size_t inline_capacity() { return N; }
  /// True when the elements spilled to the heap (tests / diagnostics).
  [[nodiscard]] bool on_heap() const { return data_ != inline_data(); }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }
  [[nodiscard]] const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  [[nodiscard]] const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  /// Trivial elements: shrink drops the tail, growth value-initializes.
  void resize(std::size_t n) {
    if (n > size_) {
      reserve(n);
      std::memset(static_cast<void*>(data_ + size_), 0,
                  (n - size_) * sizeof(T));
    }
    size_ = static_cast<std::uint32_t>(n);
  }

  void push_back(const T& v) {
    // Copy before any reallocation: like std::vector, `v` may alias an
    // element of this container (v.push_back(v.front())).
    const T copy = v;
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = copy;
  }

  void pop_back() { --size_; }

  /// Inserts `v` before `pos`; returns an iterator to the new element.
  /// As with push_back, `v` may alias an element of this container.
  iterator insert(const_iterator pos, const T& v) {
    const T copy = v;
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == cap_) grow(cap_ * 2);
    std::memmove(static_cast<void*>(data_ + at + 1),
                 static_cast<const void*>(data_ + at),
                 (size_ - at) * sizeof(T));
    data_[at] = copy;
    ++size_;
    return data_ + at;
  }

  /// Inserts `[first, last)` before `pos` (any forward iterator).  Like
  /// std::vector's range insert, the range must not point into *this*.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    const std::size_t n = static_cast<std::size_t>(std::distance(first, last));
    if (size_ + n > cap_) grow(size_ + n);
    std::memmove(static_cast<void*>(data_ + at + n),
                 static_cast<const void*>(data_ + at),
                 (size_ - at) * sizeof(T));
    std::copy(first, last, data_ + at);
    size_ += static_cast<std::uint32_t>(n);
    return data_ + at;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  [[nodiscard]] T* inline_data() {
    return reinterpret_cast<T*>(inline_storage_);
  }
  [[nodiscard]] const T* inline_data() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  template <typename It>
  void assign(It first, It last) {
    for (It it = first; it != last; ++it) push_back(*it);
  }

  /// Bulk replace from a contiguous source (copy ctor/assign, init
  /// lists): one capacity check + one memcpy, no per-element branches.
  void copy_from(const T* src, std::size_t n) {
    if (n > cap_) grow(n);
    if (n != 0) {
      std::memcpy(static_cast<void*>(data_), static_cast<const void*>(src),
                  n * sizeof(T));
    }
    size_ = static_cast<std::uint32_t>(n);
  }

  void steal(SmallVec& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.cap_ = N;
      other.size_ = 0;
    } else {
      data_ = inline_data();
      cap_ = N;
      size_ = other.size_;
      std::memcpy(static_cast<void*>(data_),
                  static_cast<const void*>(other.data_),
                  size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  void grow(std::size_t want) {
    const std::size_t cap = std::max<std::size_t>(want, cap_ * 2);
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data_),
                size_ * sizeof(T));
    release_heap();
    data_ = fresh;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  void release_heap() {
    if (on_heap()) ::operator delete(data_);
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
};

/// Cross-container equality, so tests and callers can compare route
/// records against plain vectors without conversions.
template <typename T, std::size_t N>
bool operator==(const SmallVec<T, N>& a, const std::vector<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T, std::size_t N>
bool operator==(const std::vector<T>& a, const SmallVec<T, N>& b) {
  return b == a;
}

}  // namespace mts::net
