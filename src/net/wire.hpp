#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

/// Wire-format codec (v1): the byte-level contract for every header the
/// network layer can put on the air.
///
/// Until this codec existed, adversaries "captured" in-memory structs and
/// airtime accounting trusted a hand-maintained size table; nothing was
/// ever serialized, so the two could silently drift.  The codec is now
/// the single source of truth: `routing_wire_size` drives
/// `routing_header_bytes` (and therefore every airtime/overhead number),
/// and `encode_*` verifies at runtime that it wrote exactly that many
/// bytes — the size law and the byte layout cannot disagree.
///
/// Layout conventions (see docs/architecture/wire-format.md for the full
/// byte maps):
///  - Big-endian (network order) multi-byte fields.
///  - The common header is 20 bytes, IPv4-sized; byte 0 packs the wire
///    version in the high nibble and the packet kind in the low nibble.
///  - Control headers are discriminated by the packet kind; data-plane
///    options (source route, MTS data tag, MTS probe, TCP) carry a
///    one-byte tag because a data packet's kind does not determine them.
///  - List lengths (route records, RERR entries) are derived from the
///    section length, the way DSR options work, so a 4-byte-per-address
///    list costs exactly 4 bytes per address on the wire.
///  - Some fields are not re-encoded because the common header already
///    carries them (e.g. a DSR RREQ's originator IS the packet source);
///    `encode_*` requires those invariants and `decode_*` reconstitutes
///    the struct fields from the common header.
///
/// Round-trip contract: for every packet the simulator can emit,
/// `decode(encode(p))` reproduces the headers exactly — except
/// `CommonHeader::originated`, which travels as 32-bit microseconds
/// (documented lossy; the delay metrics never read decoded values) — and
/// `encode(decode(buf))` is byte-identical to `buf` for every buffer
/// `decode` accepts (decode rejects nonzero padding, bad versions,
/// truncation, and length/count mismatches rather than guessing).
namespace mts::net::wire {

/// Bumped on any layout change; decoders reject other versions.  A
/// future v2 may add per-version decode branches.
inline constexpr std::uint8_t kWireVersion = 1;

/// Option tags in a data packet's option section.  kTagTcp also fronts
/// the TCP header so the transport section is self-describing.
inline constexpr std::uint8_t kTagSourceRoute = 0x01;
inline constexpr std::uint8_t kTagMtsData = 0x02;
inline constexpr std::uint8_t kTagMtsProbe = 0x03;
inline constexpr std::uint8_t kTagTcp = 0x10;

/// On-wire size of a routing header/option in bytes.  This is the size
/// law `routing_header_bytes` delegates to; `encode_headers` verifies it
/// against the bytes actually written.
[[nodiscard]] std::uint32_t routing_wire_size(const RoutingHeader& h);

/// Appends the wire encoding of all headers (common + TCP option +
/// routing option, no payload) to `out`.  `hop` supplies the per-hop
/// fields (TTL, hop count, route cursor) that live in the packet
/// handle's `HopState` cell rather than the header structs; the default
/// cell encodes a freshly originated packet.
void encode_headers(const CommonHeader& common, const TcpHeader* tcp,
                    const RoutingHeader& routing,
                    std::vector<std::uint8_t>& out,
                    const HopState& hop = HopState{});

/// Convenience overload over a live packet handle.
void encode_headers(const Packet& p, std::vector<std::uint8_t>& out);

/// Appends the full wire image: headers followed by
/// `common.payload_bytes` of payload.  `payload` supplies up to
/// `payload_len` leading bytes; the remainder is zero-filled (the
/// simulator models payload existence, not application content — the
/// secrecy plane is the one caller that materializes real bytes).
void encode_packet(const Packet& p, std::vector<std::uint8_t>& out,
                   const std::uint8_t* payload = nullptr,
                   std::size_t payload_len = 0);

/// A decoded wire image.  `payload_offset` locates the payload region
/// inside the original buffer (the codec does not copy payload bytes).
struct DecodedPacket {
  CommonHeader common;
  std::optional<TcpHeader> tcp;
  RoutingHeader routing;
  /// Per-hop fields decoded off the wire (TTL byte, hop-count and
  /// cursor fields of the routing section).
  HopState hop;
  std::size_t payload_offset = 0;
  std::uint32_t payload_bytes = 0;
};

/// Decodes a full wire image; `std::nullopt` on any malformed input
/// (truncated, bad version, unknown kind/tag, length or count mismatch,
/// nonzero padding).  Never throws on untrusted bytes.
[[nodiscard]] std::optional<DecodedPacket> decode_packet(
    const std::uint8_t* data, std::size_t len);

[[nodiscard]] std::optional<DecodedPacket> decode_packet(
    const std::vector<std::uint8_t>& buf);

}  // namespace mts::net::wire
