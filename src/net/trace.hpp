#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/node_id.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mts::net {

/// What happened to a packet at a node.
enum class TraceOp : std::uint8_t {
  kOriginate,   ///< created by a transport/routing agent
  kEnqueue,     ///< entered the interface queue
  kMacTx,       ///< first bit on air
  kMacRx,       ///< successfully decoded at a radio
  kDeliver,     ///< handed to the local transport agent
  kForward,     ///< re-queued toward the next hop
  kDrop,        ///< died (reason in note)
  kRouteSwitch, ///< MTS: source switched its active path (note = detail)
  kSniff,       ///< overheard by the eavesdropper tap
};

const char* trace_op_name(TraceOp op);

struct TraceRecord {
  sim::Time at;
  NodeId node = kNoNode;
  TraceOp op = TraceOp::kOriginate;
  /// Shared handle onto the packet at the time of the event: emission is
  /// a refcount bump, and copy-on-write guarantees the body a sink sees
  /// (or stores) is never perturbed by later forwarding mutations.
  Packet packet;
  std::string note;   ///< drop reason, chosen path, ...
};

/// Fan-out point for packet-level traces.  Zero subscribers (the
/// default) costs one branch per emit.
class TraceHub {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  void subscribe(Sink sink) { sinks_.push_back(std::move(sink)); }
  [[nodiscard]] bool active() const { return !sinks_.empty(); }

  void emit(const TraceRecord& rec) const {
    for (const auto& s : sinks_) s(rec);
  }

  /// Convenience: emit only when someone listens.  Build the whole
  /// record inside `make` — packet handle, note string, any
  /// `summary()` rendering — so an unsubscribed hub costs one branch
  /// and zero allocations per call site.
  template <typename MakeRecord>
  void emit_lazy(MakeRecord&& make) const {
    if (active()) emit(make());
  }

 private:
  std::vector<Sink> sinks_;
};

}  // namespace mts::net
