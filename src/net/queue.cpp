#include "net/queue.hpp"

#include <utility>

namespace mts::net {

std::optional<QueueItem> PriQueue::enqueue(QueueItem item) {
  const bool control = item.packet.is_control();
  if (size() < capacity_) {
    (control ? control_ : data_).push_back(std::move(item));
    return std::nullopt;
  }
  if (control && !data_.empty()) {
    // Evict the newest data packet; control must get through (it is what
    // will eventually fix whatever is congesting us).
    QueueItem victim = std::move(data_.back());
    data_.pop_back();
    control_.push_back(std::move(item));
    return victim;
  }
  return item;  // drop the arrival
}

std::optional<QueueItem> PriQueue::dequeue() {
  if (!control_.empty()) {
    QueueItem item = std::move(control_.front());
    control_.pop_front();
    return item;
  }
  if (!data_.empty()) {
    QueueItem item = std::move(data_.front());
    data_.pop_front();
    return item;
  }
  return std::nullopt;
}

namespace {

template <typename Pred>
std::size_t drain_if(std::deque<QueueItem>& q, Pred pred,
                     const std::function<void(QueueItem&&)>& sink) {
  std::size_t n = 0;
  for (auto it = q.begin(); it != q.end();) {
    if (pred(*it)) {
      QueueItem item = std::move(*it);
      it = q.erase(it);
      ++n;
      sink(std::move(item));
    } else {
      ++it;
    }
  }
  return n;
}

}  // namespace

std::size_t PriQueue::drain_next_hop(
    NodeId hop, const std::function<void(QueueItem&&)>& sink) {
  auto pred = [hop](const QueueItem& i) { return i.next_hop == hop; };
  return drain_if(control_, pred, sink) + drain_if(data_, pred, sink);
}

std::size_t PriQueue::drain_dst(NodeId dst,
                                const std::function<void(QueueItem&&)>& sink) {
  auto pred = [dst](const QueueItem& i) {
    return !i.packet.is_control() && i.packet.common().dst == dst;
  };
  return drain_if(data_, pred, sink);
}

}  // namespace mts::net
