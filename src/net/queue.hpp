#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>

#include "net/node_id.hpp"
#include "net/packet.hpp"

namespace mts::net {

/// An entry waiting at the link layer: the packet plus its MAC-level
/// next hop (kBroadcastId for floods).
struct QueueItem {
  Packet packet;
  NodeId next_hop = kBroadcastId;
};

/// Priority interface queue in the style of ns-2's `Queue/DropTail
/// PriQueue`: routing-control packets go to a high-priority band and are
/// never dropped in favour of data; the total occupancy is capped (ns-2
/// wireless default: 50 packets).
///
/// Drop policy when full:
///  * arriving data         -> dropped (classic drop-tail);
///  * arriving control      -> the *newest data* packet is evicted to
///                             make room; if the queue is all control,
///                             the arriving packet is dropped.
class PriQueue {
 public:
  explicit PriQueue(std::size_t capacity = 50) : capacity_(capacity) {}

  /// Attempts to enqueue.  Returns the packet that was dropped to make
  /// room (which may be the offered one), or nullopt when nothing was
  /// dropped.
  std::optional<QueueItem> enqueue(QueueItem item);

  /// Removes and returns the next item: control band first, FIFO within
  /// a band.  Returns nullopt when empty.
  std::optional<QueueItem> dequeue();

  /// Removes all queued items whose next hop is `hop`, invoking `sink`
  /// on each (used when a link is declared broken).  Returns the count.
  std::size_t drain_next_hop(NodeId hop,
                             const std::function<void(QueueItem&&)>& sink);

  /// Removes queued *data* items addressed (end-to-end) to `dst`,
  /// invoking `sink` on each.  Used by DSR salvaging.
  std::size_t drain_dst(NodeId dst,
                        const std::function<void(QueueItem&&)>& sink);

  [[nodiscard]] std::size_t size() const {
    return control_.size() + data_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t control_size() const { return control_.size(); }
  [[nodiscard]] std::size_t data_size() const { return data_.size(); }

 private:
  std::size_t capacity_;
  std::deque<QueueItem> control_;
  std::deque<QueueItem> data_;
};

}  // namespace mts::net
