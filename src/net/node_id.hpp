#pragma once

#include <cstdint>
#include <limits>

namespace mts::net {

/// Node address.  The simulator uses dense small integers (array
/// indices into the node table) rather than IPv4 addresses; nothing in
/// the protocols depends on address structure.
using NodeId = std::uint32_t;

/// Link-layer broadcast address (RREQ floods, HELLOs).
inline constexpr NodeId kBroadcastId = std::numeric_limits<NodeId>::max();

/// "No node" sentinel for optional next-hop fields.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max() - 1;

}  // namespace mts::net
