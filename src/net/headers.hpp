#pragma once

#include <cstdint>
#include <variant>

#include "net/small_vec.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace mts::net {

/// Route record for headers: node lists are bounded by the network
/// diameter, and eight inline slots cover the common path length, so
/// copying (or CoW-cloning) a routing header rarely touches the heap.
using RouteVec = SmallVec<NodeId, 8>;

/// Discriminates every packet the network layer can carry.  The kind is
/// redundant with the header variant for control packets but lets hot
/// paths (queue priority, overhead counters) switch without visiting the
/// variant.
enum class PacketKind : std::uint8_t {
  kTcpData,
  kTcpAck,
  // AODV control
  kAodvRreq,
  kAodvRrep,
  kAodvRerr,
  // DSR control
  kDsrRreq,
  kDsrRrep,
  kDsrRerr,
  // MTS control
  kMtsRreq,
  kMtsRrep,
  kMtsCheck,
  kMtsCheckError,
  kMtsRerr,
};

/// True for routing-protocol control packets (the paper's "control
/// overhead" metric counts transmissions of exactly these).
constexpr bool is_routing_control(PacketKind k) {
  switch (k) {
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck:
      return false;
    default:
      return true;
  }
}

constexpr bool is_transport(PacketKind k) {
  return k == PacketKind::kTcpData || k == PacketKind::kTcpAck;
}

const char* packet_kind_name(PacketKind k);

// ---------------------------------------------------------------------------
// Network-layer common header (IP-ish).
// ---------------------------------------------------------------------------

struct CommonHeader {
  PacketKind kind = PacketKind::kTcpData;
  NodeId src = kNoNode;          ///< originator (end-to-end)
  NodeId dst = kNoNode;          ///< final destination (end-to-end)
  std::uint32_t uid = 0;         ///< unique per simulation, for tracing
  std::uint32_t payload_bytes = 0;  ///< application payload (0 for control)
  sim::Time originated;          ///< end-to-end delay measurement
};

/// The per-hop mutable cell of a packet: every field a forwarding hop
/// rewrites lives here, *outside* the shared CoW body, carried by value
/// in the 16-byte `Packet` handle (it fits the handle's padding).  A
/// TTL decrement or cursor advance therefore mutates only the
/// forwarder's own handle — sibling handles (retry buffers, in-flight
/// receptions, trace records) keep their own copies, exactly the
/// isolation CoW used to buy with a full body clone.
///
/// Field roles per packet kind (at most one count and one cursor each):
///  - `ttl`: all kinds (decremented per network-layer hop)
///  - `hops`: AODV RREQ/RREP hop_count, MTS RREQ hop_count
///  - `cursor`: DSR RREP/RERR hops_done, DSR source-route index,
///    MTS RREP/check/check-error hops_done
struct HopState {
  std::uint8_t ttl = 32;     ///< decremented per network-layer hop
  std::uint8_t hops = 0;     ///< hops accumulated since the originator
  std::uint16_t cursor = 0;  ///< position along a carried route list
  friend bool operator==(const HopState&, const HopState&) = default;
};

/// On-wire size of the common header, matching IPv4's 20 bytes so that
/// airtime accounting is comparable to ns-2.
inline constexpr std::uint32_t kCommonHeaderBytes = 20;

// ---------------------------------------------------------------------------
// TCP (one-way data + cumulative ACK, as in ns-2's Agent/TCP).
// ---------------------------------------------------------------------------

struct TcpHeader {
  std::uint32_t seq = 0;   ///< data: segment sequence number (in segments)
  std::uint32_t ack = 0;   ///< ack: cumulative — next expected segment
  std::uint16_t flow_id = 0;
  sim::Time ts;            ///< data: send timestamp; ack: echoed timestamp
  bool retransmit = false; ///< data: Karn — echoed back, suppresses RTT sample
};

inline constexpr std::uint32_t kTcpHeaderBytes = 20;

// ---------------------------------------------------------------------------
// AODV (RFC 3561 subset, ns-2 flavoured).
// ---------------------------------------------------------------------------

/// Per-hop hop_count travels in `HopState::hops`, not in the header.
struct AodvRreqHeader {
  std::uint32_t rreq_id = 0;    ///< (orig, rreq_id) dedups the flood
  NodeId orig = kNoNode;
  NodeId dst = kNoNode;
  std::uint32_t orig_seq = 0;
  std::uint32_t dst_seq = 0;    ///< last known; 0 when unknown
  bool dst_seq_known = false;
};

/// Per-hop hop_count travels in `HopState::hops`, not in the header.
struct AodvRrepHeader {
  NodeId orig = kNoNode;        ///< RREQ originator (RREP travels to it)
  NodeId dst = kNoNode;         ///< route destination
  std::uint32_t dst_seq = 0;
  sim::Time lifetime;           ///< route validity advertised by the dest
};

struct AodvRerrHeader {
  struct Unreachable {
    NodeId dst = kNoNode;
    std::uint32_t seq = 0;
    friend bool operator==(const Unreachable&, const Unreachable&) = default;
  };
  /// One RERR rarely names more than a handful of destinations.
  using List = SmallVec<Unreachable, 4>;
  List unreachable;
};

// ---------------------------------------------------------------------------
// DSR (route record / source route).
// ---------------------------------------------------------------------------

struct DsrRreqHeader {
  std::uint32_t rreq_id = 0;
  NodeId orig = kNoNode;
  NodeId target = kNoNode;
  RouteVec record;     ///< nodes traversed so far (excl. orig)
};

/// The target->orig forwarding cursor (hops_done) travels in
/// `HopState::cursor`.
struct DsrRrepHeader {
  NodeId orig = kNoNode;        ///< requester
  NodeId target = kNoNode;
  RouteVec route;       ///< full path orig..target inclusive
};

/// The forwarding cursor (hops_done) travels in `HopState::cursor`.
struct DsrRerrHeader {
  NodeId notify = kNoNode;      ///< source being informed
  NodeId from = kNoNode;        ///< broken link tail
  NodeId to = kNoNode;          ///< broken link head
  RouteVec back_path;  ///< route from reporter to `notify`
};

/// Source-route option attached to DSR *data* packets.  The position of
/// the current hop in `route` (the per-hop index) travels in
/// `HopState::cursor`; `salvaged` stays here because salvaging replaces
/// the whole route (a true divergent edit that CoWs the body anyway).
struct DsrSourceRoute {
  RouteVec route;       ///< full path src..dst inclusive
  bool salvaged = false;        ///< set when an intermediate re-routed it
};

// ---------------------------------------------------------------------------
// MTS (the paper's protocol).
// ---------------------------------------------------------------------------

/// §III-B: packet type, source address, destination address, broadcast
/// ID, hop count from the source, and list of intermediate nodes.  The
/// per-hop hop count travels in `HopState::hops`.
struct MtsRreqHeader {
  std::uint32_t bcast_id = 0;
  NodeId orig = kNoNode;
  NodeId dst = kNoNode;
  RouteVec nodes;       ///< intermediate nodes traversed (excl. endpoints)
};

/// §III-B: packet type, source address, destination address, route reply
/// ID, hop count, and list of intermediate nodes.  `hop_count` here is
/// the *total* path length, stamped once at the destination and never
/// rewritten per hop; the forwarding cursor (hops_done) travels in
/// `HopState::cursor`.
struct MtsRrepHeader {
  std::uint32_t rrep_id = 0;
  NodeId orig = kNoNode;        ///< RREQ originator (the TCP source)
  NodeId dst = kNoNode;         ///< destination that generated this RREP
  std::uint8_t hop_count = 0;   ///< total path length (origin-stamped)
  RouteVec nodes;       ///< intermediate nodes of the replied path
};

/// §III-D: packet type, checking packet ID, hop count, and list of
/// intermediate nodes.  Travels destination -> source along one stored
/// disjoint path, refreshing per-hop forward state as it goes.  As with
/// the RREP, `hop_count` is origin-stamped; the forwarding cursor
/// (hops_done) travels in `HopState::cursor`.
struct MtsCheckHeader {
  std::uint32_t check_id = 0;   ///< round number; bumps once per period
  std::uint16_t path_id = 0;    ///< which stored disjoint path
  NodeId checker = kNoNode;     ///< the destination (sender of checks)
  NodeId source = kNoNode;      ///< the TCP source (receiver of checks)
  std::uint8_t hop_count = 0;   ///< total path length (origin-stamped)
  RouteVec nodes;       ///< intermediate nodes, source-side first
};

/// §III-D: "a checking error packet is sent to the destination"; the
/// destination deletes the failed path.  The cursor while travelling
/// back to the checker (hops_done) travels in `HopState::cursor`.
struct MtsCheckErrorHeader {
  std::uint16_t path_id = 0;
  NodeId checker = kNoNode;     ///< destination to inform
  NodeId flow_source = kNoNode; ///< identifies which path set at the checker
  NodeId reporter = kNoNode;    ///< node that observed the failure
  NodeId broken_from = kNoNode;
  NodeId broken_to = kNoNode;
  RouteVec nodes;       ///< the failed path (source-side first)
};

/// §III-E: RERR relayed upstream until it reaches the source, which then
/// triggers a new route discovery.
struct MtsRerrHeader {
  NodeId source = kNoNode;      ///< TCP source being informed
  NodeId dst = kNoNode;         ///< unreachable destination
  std::uint16_t path_id = 0;
  NodeId broken_from = kNoNode;
  NodeId broken_to = kNoNode;
};

/// Tag attached to MTS *data* packets: forwarding state at intermediate
/// nodes is per (destination, path), installed/refreshed by check
/// packets and the initial RREP.
struct MtsDataTag {
  std::uint16_t path_id = 0;
};

/// End-to-end acked-checking probe (countermeasure subsystem).  Rides
/// the *data plane*: the packet kind is kTcpData, so an insider veto
/// keyed on kind (blackhole/grayhole) eats probes exactly like the
/// stream they guard — unlike MTS's native check packets, which are
/// control traffic the attacker forwards faithfully.  The source sends
/// one per stored path per probe period; the destination turns it
/// around with `echo` set, routed back on the same path's reverse
/// state.
struct MtsProbeHeader {
  std::uint16_t path_id = 0;
  std::uint32_t probe_id = 0;  ///< per-source sequence, for tracing
  bool echo = false;           ///< false: source -> dst; true: the ack
};

// ---------------------------------------------------------------------------
// The routing header slot.
// ---------------------------------------------------------------------------

using RoutingHeader =
    std::variant<std::monostate, AodvRreqHeader, AodvRrepHeader, AodvRerrHeader,
                 DsrRreqHeader, DsrRrepHeader, DsrRerrHeader, DsrSourceRoute,
                 MtsRreqHeader, MtsRrepHeader, MtsCheckHeader,
                 MtsCheckErrorHeader, MtsRerrHeader, MtsDataTag,
                 MtsProbeHeader>;

/// On-wire size contribution of the routing header (bytes).  Sizes follow
/// the respective drafts: fixed part + 4 bytes per carried address.
std::uint32_t routing_header_bytes(const RoutingHeader& h);

}  // namespace mts::net
