#pragma once

#include <cstdint>
#include <variant>

#include "net/small_vec.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace mts::net {

/// Route record for headers: node lists are bounded by the network
/// diameter, and eight inline slots cover the common path length, so
/// copying (or CoW-cloning) a routing header rarely touches the heap.
using RouteVec = SmallVec<NodeId, 8>;

/// Discriminates every packet the network layer can carry.  The kind is
/// redundant with the header variant for control packets but lets hot
/// paths (queue priority, overhead counters) switch without visiting the
/// variant.
enum class PacketKind : std::uint8_t {
  kTcpData,
  kTcpAck,
  // AODV control
  kAodvRreq,
  kAodvRrep,
  kAodvRerr,
  // DSR control
  kDsrRreq,
  kDsrRrep,
  kDsrRerr,
  // MTS control
  kMtsRreq,
  kMtsRrep,
  kMtsCheck,
  kMtsCheckError,
  kMtsRerr,
};

/// True for routing-protocol control packets (the paper's "control
/// overhead" metric counts transmissions of exactly these).
constexpr bool is_routing_control(PacketKind k) {
  switch (k) {
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck:
      return false;
    default:
      return true;
  }
}

constexpr bool is_transport(PacketKind k) {
  return k == PacketKind::kTcpData || k == PacketKind::kTcpAck;
}

const char* packet_kind_name(PacketKind k);

// ---------------------------------------------------------------------------
// Network-layer common header (IP-ish).
// ---------------------------------------------------------------------------

struct CommonHeader {
  PacketKind kind = PacketKind::kTcpData;
  NodeId src = kNoNode;          ///< originator (end-to-end)
  NodeId dst = kNoNode;          ///< final destination (end-to-end)
  std::uint8_t ttl = 32;         ///< decremented per network-layer hop
  std::uint32_t uid = 0;         ///< unique per simulation, for tracing
  std::uint32_t payload_bytes = 0;  ///< application payload (0 for control)
  sim::Time originated;          ///< end-to-end delay measurement
};

/// On-wire size of the common header, matching IPv4's 20 bytes so that
/// airtime accounting is comparable to ns-2.
inline constexpr std::uint32_t kCommonHeaderBytes = 20;

// ---------------------------------------------------------------------------
// TCP (one-way data + cumulative ACK, as in ns-2's Agent/TCP).
// ---------------------------------------------------------------------------

struct TcpHeader {
  std::uint32_t seq = 0;   ///< data: segment sequence number (in segments)
  std::uint32_t ack = 0;   ///< ack: cumulative — next expected segment
  std::uint16_t flow_id = 0;
  sim::Time ts;            ///< data: send timestamp; ack: echoed timestamp
  bool retransmit = false; ///< data: Karn — echoed back, suppresses RTT sample
};

inline constexpr std::uint32_t kTcpHeaderBytes = 20;

// ---------------------------------------------------------------------------
// AODV (RFC 3561 subset, ns-2 flavoured).
// ---------------------------------------------------------------------------

struct AodvRreqHeader {
  std::uint32_t rreq_id = 0;    ///< (orig, rreq_id) dedups the flood
  NodeId orig = kNoNode;
  NodeId dst = kNoNode;
  std::uint32_t orig_seq = 0;
  std::uint32_t dst_seq = 0;    ///< last known; 0 when unknown
  bool dst_seq_known = false;
  std::uint8_t hop_count = 0;
};

struct AodvRrepHeader {
  NodeId orig = kNoNode;        ///< RREQ originator (RREP travels to it)
  NodeId dst = kNoNode;         ///< route destination
  std::uint32_t dst_seq = 0;
  std::uint8_t hop_count = 0;
  sim::Time lifetime;           ///< route validity advertised by the dest
};

struct AodvRerrHeader {
  struct Unreachable {
    NodeId dst = kNoNode;
    std::uint32_t seq = 0;
    friend bool operator==(const Unreachable&, const Unreachable&) = default;
  };
  /// One RERR rarely names more than a handful of destinations.
  using List = SmallVec<Unreachable, 4>;
  List unreachable;
};

// ---------------------------------------------------------------------------
// DSR (route record / source route).
// ---------------------------------------------------------------------------

struct DsrRreqHeader {
  std::uint32_t rreq_id = 0;
  NodeId orig = kNoNode;
  NodeId target = kNoNode;
  RouteVec record;     ///< nodes traversed so far (excl. orig)
};

struct DsrRrepHeader {
  NodeId orig = kNoNode;        ///< requester
  NodeId target = kNoNode;
  RouteVec route;       ///< full path orig..target inclusive
  std::uint16_t hops_done = 0;  ///< cursor while travelling target -> orig
};

struct DsrRerrHeader {
  NodeId notify = kNoNode;      ///< source being informed
  NodeId from = kNoNode;        ///< broken link tail
  NodeId to = kNoNode;          ///< broken link head
  RouteVec back_path;  ///< route from reporter to `notify`
  std::uint16_t hops_done = 0;
};

/// Source-route option attached to DSR *data* packets.
struct DsrSourceRoute {
  RouteVec route;       ///< full path src..dst inclusive
  std::uint16_t index = 0;      ///< position of the current hop in route
  bool salvaged = false;        ///< set when an intermediate re-routed it
};

// ---------------------------------------------------------------------------
// MTS (the paper's protocol).
// ---------------------------------------------------------------------------

/// §III-B: packet type, source address, destination address, broadcast
/// ID, hop count from the source, and list of intermediate nodes.
struct MtsRreqHeader {
  std::uint32_t bcast_id = 0;
  NodeId orig = kNoNode;
  NodeId dst = kNoNode;
  std::uint8_t hop_count = 0;
  RouteVec nodes;       ///< intermediate nodes traversed (excl. endpoints)
};

/// §III-B: packet type, source address, destination address, route reply
/// ID, hop count, and list of intermediate nodes.
struct MtsRrepHeader {
  std::uint32_t rrep_id = 0;
  NodeId orig = kNoNode;        ///< RREQ originator (the TCP source)
  NodeId dst = kNoNode;         ///< destination that generated this RREP
  std::uint8_t hop_count = 0;
  RouteVec nodes;       ///< intermediate nodes of the replied path
  std::uint16_t hops_done = 0;  ///< forwarding cursor along the reverse path
};

/// §III-D: packet type, checking packet ID, hop count, and list of
/// intermediate nodes.  Travels destination -> source along one stored
/// disjoint path, refreshing per-hop forward state as it goes.
struct MtsCheckHeader {
  std::uint32_t check_id = 0;   ///< round number; bumps once per period
  std::uint16_t path_id = 0;    ///< which stored disjoint path
  NodeId checker = kNoNode;     ///< the destination (sender of checks)
  NodeId source = kNoNode;      ///< the TCP source (receiver of checks)
  std::uint8_t hop_count = 0;
  RouteVec nodes;       ///< intermediate nodes, source-side first
  std::uint16_t hops_done = 0;  ///< forwarding cursor
};

/// §III-D: "a checking error packet is sent to the destination"; the
/// destination deletes the failed path.
struct MtsCheckErrorHeader {
  std::uint16_t path_id = 0;
  NodeId checker = kNoNode;     ///< destination to inform
  NodeId flow_source = kNoNode; ///< identifies which path set at the checker
  NodeId reporter = kNoNode;    ///< node that observed the failure
  NodeId broken_from = kNoNode;
  NodeId broken_to = kNoNode;
  RouteVec nodes;       ///< the failed path (source-side first)
  std::uint16_t hops_done = 0;  ///< cursor while travelling back to checker
};

/// §III-E: RERR relayed upstream until it reaches the source, which then
/// triggers a new route discovery.
struct MtsRerrHeader {
  NodeId source = kNoNode;      ///< TCP source being informed
  NodeId dst = kNoNode;         ///< unreachable destination
  std::uint16_t path_id = 0;
  NodeId broken_from = kNoNode;
  NodeId broken_to = kNoNode;
};

/// Tag attached to MTS *data* packets: forwarding state at intermediate
/// nodes is per (destination, path), installed/refreshed by check
/// packets and the initial RREP.
struct MtsDataTag {
  std::uint16_t path_id = 0;
};

/// End-to-end acked-checking probe (countermeasure subsystem).  Rides
/// the *data plane*: the packet kind is kTcpData, so an insider veto
/// keyed on kind (blackhole/grayhole) eats probes exactly like the
/// stream they guard — unlike MTS's native check packets, which are
/// control traffic the attacker forwards faithfully.  The source sends
/// one per stored path per probe period; the destination turns it
/// around with `echo` set, routed back on the same path's reverse
/// state.
struct MtsProbeHeader {
  std::uint16_t path_id = 0;
  std::uint32_t probe_id = 0;  ///< per-source sequence, for tracing
  bool echo = false;           ///< false: source -> dst; true: the ack
};

// ---------------------------------------------------------------------------
// The routing header slot.
// ---------------------------------------------------------------------------

using RoutingHeader =
    std::variant<std::monostate, AodvRreqHeader, AodvRrepHeader, AodvRerrHeader,
                 DsrRreqHeader, DsrRrepHeader, DsrRerrHeader, DsrSourceRoute,
                 MtsRreqHeader, MtsRrepHeader, MtsCheckHeader,
                 MtsCheckErrorHeader, MtsRerrHeader, MtsDataTag,
                 MtsProbeHeader>;

/// On-wire size contribution of the routing header (bytes).  Sizes follow
/// the respective drafts: fixed part + 4 bytes per carried address.
std::uint32_t routing_header_bytes(const RoutingHeader& h);

}  // namespace mts::net
