#include "net/trace.hpp"

namespace mts::net {

const char* trace_op_name(TraceOp op) {
  switch (op) {
    case TraceOp::kOriginate: return "originate";
    case TraceOp::kEnqueue: return "enqueue";
    case TraceOp::kMacTx: return "mac_tx";
    case TraceOp::kMacRx: return "mac_rx";
    case TraceOp::kDeliver: return "deliver";
    case TraceOp::kForward: return "forward";
    case TraceOp::kDrop: return "drop";
    case TraceOp::kRouteSwitch: return "route_switch";
    case TraceOp::kSniff: return "sniff";
  }
  return "?";
}

}  // namespace mts::net
