#include "net/wire.hpp"

#include <algorithm>
#include <cstring>

#include "sim/error.hpp"

namespace mts::net::wire {

namespace {

// ---------------------------------------------------------------------------
// Size law.  Fixed parts + 4 bytes per carried address, matching the
// AODV/DSR drafts; these constants are shared by the size visitor and
// the encoders, and encode_headers() verifies the bytes written against
// routing_wire_size(), so the two cannot drift apart.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kPerAddressBytes = 4;
constexpr std::uint32_t kAodvRreqBytes = 24;
constexpr std::uint32_t kAodvRrepBytes = 20;
constexpr std::uint32_t kAodvRerrFixed = 4;
constexpr std::uint32_t kAodvRerrPerEntry = 8;
constexpr std::uint32_t kDsrRreqFixed = 8;
constexpr std::uint32_t kDsrRrepFixed = 8;
constexpr std::uint32_t kDsrRerrFixed = 12;
constexpr std::uint32_t kSourceRouteFixed = 4;
constexpr std::uint32_t kMtsListFixed = 16;  // RREQ/RREP/check/check-error
constexpr std::uint32_t kMtsRerrBytes = 16;
constexpr std::uint32_t kMtsDataTagBytes = 4;
constexpr std::uint32_t kMtsProbeBytes = 8;

constexpr std::uint32_t route_bytes(std::size_t n) {
  return static_cast<std::uint32_t>(n) * kPerAddressBytes;
}

// ---------------------------------------------------------------------------
// Byte-level primitives (big-endian).
// ---------------------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out)
      : out_(out), base_(out.size()) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void pad(std::size_t n) { out_.insert(out_.end(), n, 0); }

  [[nodiscard]] std::size_t written() const { return out_.size() - base_; }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t base_;
};

/// Bounds-checked big-endian reader.  Reads past the end (or a nonzero
/// padding byte) latch the fail flag and return zeros; decoders check
/// `ok()` once per section instead of per field.
class Reader {
 public:
  Reader(const std::uint8_t* d, std::size_t n) : d_(d), n_(n) {}

  std::uint8_t u8() {
    if (off_ >= n_) {
      ok_ = false;
      return 0;
    }
    return d_[off_++];
  }
  std::uint16_t u16() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u48() {
    const std::uint64_t hi = u16();
    return (hi << 32) | u32();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  /// Padding must be zero on the wire; anything else is corruption (and
  /// would break encode(decode(buf)) == buf).
  void pad(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (u8() != 0) ok_ = false;
    }
  }
  /// A one-byte flag field with only `mask` bits defined.
  std::uint8_t flags(std::uint8_t mask) {
    const std::uint8_t v = u8();
    if ((v & ~mask) != 0) ok_ = false;
    return v;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t offset() const { return off_; }
  [[nodiscard]] std::uint8_t peek() const { return off_ < n_ ? d_[off_] : 0; }

 private:
  const std::uint8_t* d_;
  std::size_t n_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Encoders.
// ---------------------------------------------------------------------------

void encode_common(Writer& w, const CommonHeader& c, const HopState& hop) {
  const auto kind = static_cast<std::uint32_t>(c.kind);
  sim::require(kind <= 0x0f, "wire: packet kind exceeds the v1 kind nibble");
  sim::require(c.payload_bytes <= 0xffff,
               "wire: payload_bytes exceeds the u16 wire field");
  const std::int64_t us = c.originated.nanoseconds() / 1000;
  sim::require(us >= 0 && us <= 0xffffffffLL,
               "wire: originated outside the u32-microsecond wire range");
  w.u8(static_cast<std::uint8_t>((std::uint32_t{kWireVersion} << 4) | kind));
  w.u8(hop.ttl);
  w.u16(static_cast<std::uint16_t>(c.payload_bytes));
  w.u32(c.src);
  w.u32(c.dst);
  w.u32(c.uid);
  w.u32(static_cast<std::uint32_t>(us));
}

void encode_tcp(Writer& w, const TcpHeader& t) {
  w.u8(kTagTcp);
  w.u8(t.retransmit ? 1 : 0);
  w.u16(t.flow_id);
  w.u32(t.seq);
  w.u32(t.ack);
  w.u64(static_cast<std::uint64_t>(t.ts.nanoseconds()));
}

void write_route(Writer& w, const RouteVec& route) {
  for (NodeId n : route) w.u32(n);
}

/// Encodes the routing header/option.  The common header is consulted
/// for the invariants that let v1 omit redundant fields (documented per
/// alternative); violating one is a construction bug, not bad input, so
/// these are require()s rather than soft failures.  Per-hop fields (hop
/// counts, route cursors) come from the `HopState` cell, not the header
/// structs — the wire layout is unchanged, only the in-memory home of
/// those fields moved.
struct EncodeVisitor {
  Writer& w;
  const CommonHeader& c;
  const HopState& hop;

  void check_kind(PacketKind expected) const {
    sim::require(c.kind == expected,
                 "wire: routing header does not match the packet kind");
  }
  void check_data_plane() const {
    sim::require(is_transport(c.kind),
                 "wire: data-plane option on a control packet");
  }

  void operator()(const std::monostate&) const { check_data_plane(); }

  void operator()(const AodvRreqHeader& h) const {
    check_kind(PacketKind::kAodvRreq);
    w.u32(h.rreq_id);
    w.u32(h.orig);
    w.u32(h.dst);
    w.u32(h.orig_seq);
    w.u32(h.dst_seq);
    w.u8(hop.hops);
    w.u8(h.dst_seq_known ? 1 : 0);
    w.pad(2);
  }

  void operator()(const AodvRrepHeader& h) const {
    check_kind(PacketKind::kAodvRrep);
    const std::int64_t ns = h.lifetime.nanoseconds();
    sim::require(ns >= 0 && ns < (std::int64_t{1} << 48),
                 "wire: AODV RREP lifetime outside the u48 wire range");
    w.u32(h.orig);
    w.u32(h.dst);
    w.u32(h.dst_seq);
    w.u8(hop.hops);
    w.u48(static_cast<std::uint64_t>(ns));
    w.pad(1);
  }

  void operator()(const AodvRerrHeader& h) const {
    check_kind(PacketKind::kAodvRerr);
    sim::require(h.unreachable.size() <= 0xff,
                 "wire: AODV RERR entry count exceeds the u8 wire field");
    w.u8(static_cast<std::uint8_t>(h.unreachable.size()));
    w.pad(3);
    for (const auto& u : h.unreachable) {
      w.u32(u.dst);
      w.u32(u.seq);
    }
  }

  /// v1 invariant: a DSR RREQ's originator is the packet source (the
  /// flood rebroadcast mutates only ttl and the record).
  void operator()(const DsrRreqHeader& h) const {
    check_kind(PacketKind::kDsrRreq);
    sim::require(h.orig == c.src, "wire: DSR RREQ originator != packet source");
    w.u32(h.rreq_id);
    w.u32(h.target);
    write_route(w, h.record);
  }

  /// v1 invariant: the route runs orig..target inclusive, so both
  /// endpoints live in the route list and are not re-encoded.
  void operator()(const DsrRrepHeader& h) const {
    check_kind(PacketKind::kDsrRrep);
    sim::require(h.route.size() >= 2 && h.route.front() == h.orig &&
                     h.route.back() == h.target,
                 "wire: DSR RREP route does not span orig..target");
    w.u16(hop.cursor);
    w.pad(6);
    write_route(w, h.route);
  }

  /// v1 invariant: the notified source is the packet destination.
  void operator()(const DsrRerrHeader& h) const {
    check_kind(PacketKind::kDsrRerr);
    sim::require(h.notify == c.dst, "wire: DSR RERR notify != packet dest");
    w.u32(h.from);
    w.u32(h.to);
    w.u16(hop.cursor);
    w.pad(2);
    write_route(w, h.back_path);
  }

  void operator()(const DsrSourceRoute& h) const {
    check_data_plane();
    w.u8(kTagSourceRoute);
    w.u8(h.salvaged ? 1 : 0);
    w.u16(hop.cursor);
    write_route(w, h.route);
  }

  void operator()(const MtsRreqHeader& h) const {
    check_kind(PacketKind::kMtsRreq);
    w.u32(h.bcast_id);
    w.u32(h.orig);
    w.u32(h.dst);
    w.u8(hop.hops);
    w.pad(3);
    write_route(w, h.nodes);
  }

  void operator()(const MtsRrepHeader& h) const {
    check_kind(PacketKind::kMtsRrep);
    w.u32(h.rrep_id);
    w.u32(h.orig);
    w.u32(h.dst);
    w.u8(h.hop_count);
    w.pad(1);
    w.u16(hop.cursor);
    write_route(w, h.nodes);
  }

  /// v1 invariant: checks travel checker -> source, so the receiving
  /// source is the packet destination (relays mutate only hops_done).
  void operator()(const MtsCheckHeader& h) const {
    check_kind(PacketKind::kMtsCheck);
    sim::require(h.source == c.dst, "wire: MTS check source != packet dest");
    w.u32(h.check_id);
    w.u16(h.path_id);
    w.u8(h.hop_count);
    w.pad(1);
    w.u32(h.checker);
    w.u16(hop.cursor);
    w.pad(2);
    write_route(w, h.nodes);
  }

  /// v1 invariant: a check error travels reporter -> checker.
  void operator()(const MtsCheckErrorHeader& h) const {
    check_kind(PacketKind::kMtsCheckError);
    sim::require(h.checker == c.dst && h.reporter == c.src,
                 "wire: MTS check error endpoints != packet src/dest");
    w.u16(h.path_id);
    w.u32(h.flow_source);
    w.u32(h.broken_from);
    w.u32(h.broken_to);
    w.u16(hop.cursor);
    write_route(w, h.nodes);
  }

  /// v1 invariant: the informed source is the packet destination.
  void operator()(const MtsRerrHeader& h) const {
    check_kind(PacketKind::kMtsRerr);
    sim::require(h.source == c.dst, "wire: MTS RERR source != packet dest");
    w.u32(h.dst);
    w.u16(h.path_id);
    w.u32(h.broken_from);
    w.u32(h.broken_to);
    w.pad(2);
  }

  void operator()(const MtsDataTag& h) const {
    check_data_plane();
    w.u8(kTagMtsData);
    w.pad(1);
    w.u16(h.path_id);
  }

  void operator()(const MtsProbeHeader& h) const {
    check_data_plane();
    w.u8(kTagMtsProbe);
    w.u8(h.echo ? 1 : 0);
    w.u16(h.path_id);
    w.u32(h.probe_id);
  }
};

// ---------------------------------------------------------------------------
// Decoders.  Every path returns false on malformed input; nothing
// require()s on untrusted bytes.
// ---------------------------------------------------------------------------

bool decode_common(Reader& r, CommonHeader& c, HopState& hop) {
  const std::uint8_t b0 = r.u8();
  if ((b0 >> 4) != kWireVersion) return false;
  const std::uint8_t kind = b0 & 0x0f;
  if (kind > static_cast<std::uint8_t>(PacketKind::kMtsRerr)) return false;
  c.kind = static_cast<PacketKind>(kind);
  hop.ttl = r.u8();
  c.payload_bytes = r.u16();
  c.src = r.u32();
  c.dst = r.u32();
  c.uid = r.u32();
  c.originated = sim::Time::us(r.u32());
  return r.ok();
}

bool decode_tcp(Reader& r, std::size_t avail, TcpHeader& t) {
  if (avail < kTcpHeaderBytes) return false;
  if (r.u8() != kTagTcp) return false;
  t.retransmit = (r.flags(0x01) & 0x01) != 0;
  t.flow_id = r.u16();
  t.seq = r.u32();
  t.ack = r.u32();
  t.ts = sim::Time::ns(static_cast<std::int64_t>(r.u64()));
  return r.ok();
}

/// Reads the remaining `avail` bytes of the section as a route list; the
/// count is implicit in the section length, DSR-option style.
bool read_route(Reader& r, std::size_t avail, RouteVec& out) {
  if (avail % kPerAddressBytes != 0) return false;
  const std::size_t n = avail / kPerAddressBytes;
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.u32());
  return r.ok();
}

/// Decodes the routing section of a control packet: the kind determines
/// the alternative, and the section runs to `section_end`.
bool decode_control(Reader& r, std::size_t section_end, const CommonHeader& c,
                    RoutingHeader& out, HopState& hop) {
  const std::size_t avail = section_end - r.offset();
  switch (c.kind) {
    case PacketKind::kAodvRreq: {
      if (avail != kAodvRreqBytes) return false;
      AodvRreqHeader h;
      h.rreq_id = r.u32();
      h.orig = r.u32();
      h.dst = r.u32();
      h.orig_seq = r.u32();
      h.dst_seq = r.u32();
      hop.hops = r.u8();
      h.dst_seq_known = (r.flags(0x01) & 0x01) != 0;
      r.pad(2);
      out = h;
      return r.ok();
    }
    case PacketKind::kAodvRrep: {
      if (avail != kAodvRrepBytes) return false;
      AodvRrepHeader h;
      h.orig = r.u32();
      h.dst = r.u32();
      h.dst_seq = r.u32();
      hop.hops = r.u8();
      h.lifetime = sim::Time::ns(static_cast<std::int64_t>(r.u48()));
      r.pad(1);
      out = h;
      return r.ok();
    }
    case PacketKind::kAodvRerr: {
      if (avail < kAodvRerrFixed) return false;
      AodvRerrHeader h;
      const std::uint8_t count = r.u8();
      r.pad(3);
      if (avail != kAodvRerrFixed + std::size_t{count} * kAodvRerrPerEntry)
        return false;
      for (std::uint8_t i = 0; i < count; ++i) {
        AodvRerrHeader::Unreachable u;
        u.dst = r.u32();
        u.seq = r.u32();
        h.unreachable.push_back(u);
      }
      out = h;
      return r.ok();
    }
    case PacketKind::kDsrRreq: {
      if (avail < kDsrRreqFixed) return false;
      DsrRreqHeader h;
      h.rreq_id = r.u32();
      h.target = r.u32();
      h.orig = c.src;  // v1: not re-encoded, carried by the common header
      if (!read_route(r, avail - kDsrRreqFixed, h.record)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kDsrRrep: {
      if (avail < kDsrRrepFixed) return false;
      DsrRrepHeader h;
      hop.cursor = r.u16();
      r.pad(6);
      if (!read_route(r, avail - kDsrRrepFixed, h.route)) return false;
      if (h.route.size() < 2) return false;  // must span orig..target
      h.orig = h.route.front();
      h.target = h.route.back();
      out = h;
      return r.ok();
    }
    case PacketKind::kDsrRerr: {
      if (avail < kDsrRerrFixed) return false;
      DsrRerrHeader h;
      h.from = r.u32();
      h.to = r.u32();
      hop.cursor = r.u16();
      r.pad(2);
      h.notify = c.dst;  // v1: the RERR travels to the notified source
      if (!read_route(r, avail - kDsrRerrFixed, h.back_path)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kMtsRreq: {
      if (avail < kMtsListFixed) return false;
      MtsRreqHeader h;
      h.bcast_id = r.u32();
      h.orig = r.u32();
      h.dst = r.u32();
      hop.hops = r.u8();
      r.pad(3);
      if (!read_route(r, avail - kMtsListFixed, h.nodes)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kMtsRrep: {
      if (avail < kMtsListFixed) return false;
      MtsRrepHeader h;
      h.rrep_id = r.u32();
      h.orig = r.u32();
      h.dst = r.u32();
      h.hop_count = r.u8();
      r.pad(1);
      hop.cursor = r.u16();
      if (!read_route(r, avail - kMtsListFixed, h.nodes)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kMtsCheck: {
      if (avail < kMtsListFixed) return false;
      MtsCheckHeader h;
      h.check_id = r.u32();
      h.path_id = r.u16();
      h.hop_count = r.u8();
      r.pad(1);
      h.checker = r.u32();
      hop.cursor = r.u16();
      r.pad(2);
      h.source = c.dst;  // v1: checks travel checker -> source
      if (!read_route(r, avail - kMtsListFixed, h.nodes)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kMtsCheckError: {
      if (avail < kMtsListFixed) return false;
      MtsCheckErrorHeader h;
      h.path_id = r.u16();
      h.flow_source = r.u32();
      h.broken_from = r.u32();
      h.broken_to = r.u32();
      hop.cursor = r.u16();
      h.reporter = c.src;  // v1: travels reporter -> checker
      h.checker = c.dst;
      if (!read_route(r, avail - kMtsListFixed, h.nodes)) return false;
      out = h;
      return r.ok();
    }
    case PacketKind::kMtsRerr: {
      if (avail != kMtsRerrBytes) return false;
      MtsRerrHeader h;
      h.dst = r.u32();
      h.path_id = r.u16();
      h.broken_from = r.u32();
      h.broken_to = r.u32();
      r.pad(2);
      h.source = c.dst;  // v1: the RERR travels to the informed source
      out = h;
      return r.ok();
    }
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck:
      return false;  // transport kinds use the tagged option section
  }
  return false;
}

/// Decodes the tagged data-plane option of a transport packet.  Every
/// option is terminal (the section length sizes its route list), so the
/// option must end exactly at `section_end`.
bool decode_data_option(Reader& r, std::size_t section_end,
                        RoutingHeader& out, HopState& hop) {
  const std::size_t avail = section_end - r.offset();
  switch (r.peek()) {
    case kTagSourceRoute: {
      if (avail < kSourceRouteFixed) return false;
      DsrSourceRoute h;
      r.u8();  // tag
      h.salvaged = (r.flags(0x01) & 0x01) != 0;
      hop.cursor = r.u16();
      if (!read_route(r, avail - kSourceRouteFixed, h.route)) return false;
      out = h;
      return r.ok();
    }
    case kTagMtsData: {
      if (avail != kMtsDataTagBytes) return false;
      MtsDataTag h;
      r.u8();  // tag
      r.pad(1);
      h.path_id = r.u16();
      out = h;
      return r.ok();
    }
    case kTagMtsProbe: {
      if (avail != kMtsProbeBytes) return false;
      MtsProbeHeader h;
      r.u8();  // tag
      h.echo = (r.flags(0x01) & 0x01) != 0;
      h.path_id = r.u16();
      h.probe_id = r.u32();
      out = h;
      return r.ok();
    }
    default:
      return false;
  }
}

struct SizeVisitor {
  std::uint32_t operator()(const std::monostate&) const { return 0; }
  std::uint32_t operator()(const AodvRreqHeader&) const {
    return kAodvRreqBytes;
  }
  std::uint32_t operator()(const AodvRrepHeader&) const {
    return kAodvRrepBytes;
  }
  std::uint32_t operator()(const AodvRerrHeader& h) const {
    return kAodvRerrFixed +
           static_cast<std::uint32_t>(h.unreachable.size()) * kAodvRerrPerEntry;
  }
  std::uint32_t operator()(const DsrRreqHeader& h) const {
    return kDsrRreqFixed + route_bytes(h.record.size());
  }
  std::uint32_t operator()(const DsrRrepHeader& h) const {
    return kDsrRrepFixed + route_bytes(h.route.size());
  }
  std::uint32_t operator()(const DsrRerrHeader& h) const {
    return kDsrRerrFixed + route_bytes(h.back_path.size());
  }
  std::uint32_t operator()(const DsrSourceRoute& h) const {
    return kSourceRouteFixed + route_bytes(h.route.size());
  }
  std::uint32_t operator()(const MtsRreqHeader& h) const {
    return kMtsListFixed + route_bytes(h.nodes.size());
  }
  std::uint32_t operator()(const MtsRrepHeader& h) const {
    return kMtsListFixed + route_bytes(h.nodes.size());
  }
  std::uint32_t operator()(const MtsCheckHeader& h) const {
    return kMtsListFixed + route_bytes(h.nodes.size());
  }
  std::uint32_t operator()(const MtsCheckErrorHeader& h) const {
    return kMtsListFixed + route_bytes(h.nodes.size());
  }
  std::uint32_t operator()(const MtsRerrHeader&) const { return kMtsRerrBytes; }
  std::uint32_t operator()(const MtsDataTag&) const { return kMtsDataTagBytes; }
  /// Probe option: path id + probe id + flags.  Deliberately the same
  /// order of magnitude as the data tag — a probe should not stand out
  /// from the data plane it hides in.
  std::uint32_t operator()(const MtsProbeHeader&) const {
    return kMtsProbeBytes;
  }
};

}  // namespace

std::uint32_t routing_wire_size(const RoutingHeader& h) {
  return std::visit(SizeVisitor{}, h);
}

void encode_headers(const CommonHeader& common, const TcpHeader* tcp,
                    const RoutingHeader& routing,
                    std::vector<std::uint8_t>& out, const HopState& hop) {
  Writer w(out);
  encode_common(w, common, hop);
  sim::require(w.written() == kCommonHeaderBytes,
               "wire: common header layout drifted from kCommonHeaderBytes");
  if (tcp != nullptr) {
    sim::require(is_transport(common.kind),
                 "wire: TCP header on a control packet");
    const std::size_t before = w.written();
    encode_tcp(w, *tcp);
    sim::require(w.written() - before == kTcpHeaderBytes,
                 "wire: TCP header layout drifted from kTcpHeaderBytes");
  }
  const std::size_t before = w.written();
  std::visit(EncodeVisitor{w, common, hop}, routing);
  sim::require(w.written() - before == routing_wire_size(routing),
               "wire: routing encoder disagrees with the size law");
}

void encode_headers(const Packet& p, std::vector<std::uint8_t>& out) {
  encode_headers(p.common(), p.has_tcp() ? &p.tcp() : nullptr, p.routing(),
                 out, p.hop());
}

void encode_packet(const Packet& p, std::vector<std::uint8_t>& out,
                   const std::uint8_t* payload, std::size_t payload_len) {
  encode_headers(p, out);
  const std::uint32_t want = p.common().payload_bytes;
  const std::size_t copy = std::min<std::size_t>(payload_len, want);
  if (copy != 0) out.insert(out.end(), payload, payload + copy);
  if (copy < want) out.insert(out.end(), want - copy, 0);
}

std::optional<DecodedPacket> decode_packet(const std::uint8_t* data,
                                           std::size_t len) {
  Reader r(data, len);
  DecodedPacket d;
  if (!decode_common(r, d.common, d.hop)) return std::nullopt;
  d.payload_bytes = d.common.payload_bytes;
  if (len < kCommonHeaderBytes + std::size_t{d.payload_bytes})
    return std::nullopt;
  // Payload sits last; everything between the common header and it is
  // the routing/option section.
  const std::size_t section_end = len - d.payload_bytes;
  d.payload_offset = section_end;
  if (is_transport(d.common.kind)) {
    if (r.offset() < section_end && r.peek() == kTagTcp) {
      TcpHeader t;
      if (!decode_tcp(r, section_end - r.offset(), t)) return std::nullopt;
      d.tcp = t;
    }
    if (r.offset() < section_end) {
      if (!decode_data_option(r, section_end, d.routing, d.hop))
        return std::nullopt;
    }
  } else {
    if (!decode_control(r, section_end, d.common, d.routing, d.hop))
      return std::nullopt;
  }
  if (!r.ok() || r.offset() != section_end) return std::nullopt;
  return d;
}

std::optional<DecodedPacket> decode_packet(const std::vector<std::uint8_t>& buf) {
  return decode_packet(buf.data(), buf.size());
}

}  // namespace mts::net::wire
