#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/mac80211.hpp"
#include "net/counters.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "routing/defense_hooks.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace mts::routing {

/// Everything a routing protocol instance needs from its host node.
/// Plain pointers: the harness guarantees the node outlives its protocol.
struct RoutingContext {
  net::NodeId self = net::kNoNode;
  sim::Scheduler* sched = nullptr;
  mac::Mac80211* mac = nullptr;
  net::Counters* counters = nullptr;
  net::TraceHub* trace = nullptr;
  net::UidSource* uids = nullptr;
  /// Shared countermeasure model (`ScenarioConfig::defense`), or null.
  /// Protocols consult it for RREQ admission, path admission, and —
  /// MTS only — data-plane probe cadence and verdicts.
  DefenseHooks* defense = nullptr;
  /// Hands a packet whose final destination is this node to the local
  /// transport agent.
  std::function<void(net::Packet&&, net::NodeId prev_hop)> deliver;
};

/// The contract between a node and its routing protocol.
///
/// A protocol receives: packets the local transport wants routed,
/// packets arriving from the MAC (control or data, addressed here or to
/// be forwarded), and link-failure signals from the MAC's retry logic.
/// It emits packets via `ctx.mac->enqueue(...)` and delivers local
/// traffic via `ctx.deliver`.
class RoutingProtocol {
 public:
  explicit RoutingProtocol(RoutingContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~RoutingProtocol() = default;
  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  /// Called once when the simulation starts (arm periodic timers here).
  virtual void start() {}

  /// Transport-originated packet that needs a route.
  virtual void send_from_transport(net::Packet packet) = 0;

  /// Packet decoded by our MAC (unicast to us or broadcast).
  virtual void receive_from_mac(net::Packet packet, net::NodeId from) = 0;

  /// The MAC exhausted its retries sending `packet` to `next_hop`:
  /// the link is considered broken (paper §III-E).
  virtual void on_link_failure(const net::Packet& packet,
                               net::NodeId next_hop) = 0;

  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  [[nodiscard]] net::NodeId self() const { return ctx_.self; }
  [[nodiscard]] sim::Time now() const { return ctx_.sched->now(); }

  /// Queues a packet at the link layer, maintaining the control/data
  /// transmission counters the figures are computed from.
  void send_to_mac(net::Packet packet, net::NodeId next_hop,
                   bool originated_here) {
    auto& c = *ctx_.counters;
    if (packet.is_control()) {
      originated_here ? ++c.sent_control : ++c.forwarded_control;
    } else if (!originated_here) {
      // Transport packets originated here are counted by the agent; the
      // relay census (β_i of Eq. 2) counts data packets only, mirroring
      // Pe/Pr which are data-segment counts.
      packet.common().kind == net::PacketKind::kTcpData ? ++c.forwarded_data
                                                      : ++c.forwarded_ack;
    }
    trace(originated_here ? net::TraceOp::kOriginate : net::TraceOp::kForward,
          packet);
    ctx_.mac->enqueue(std::move(packet), next_hop);
  }

  /// Re-broadcasts a flood packet after a small random delay.  Without
  /// this, every receiver of a broadcast starts contending in the same
  /// DIFS window and the rebroadcasts collide — the classic broadcast
  /// storm that truncates RREQ floods (ns-2's routing agents jitter
  /// their broadcasts for the same reason).
  ///
  /// The packet parks in a pooled slot so the deferred event captures
  /// only {this, slot}: a Packet-sized closure would overflow the
  /// scheduler's inline storage and put an allocation on the flood path.
  void rebroadcast_jittered(net::Packet packet, sim::Rng& rng,
                            sim::Time max_jitter = sim::Time::ms(10)) {
    const sim::Time jitter = max_jitter * rng.uniform();
    std::uint32_t slot;
    if (rebroadcast_free_.empty()) {
      slot = static_cast<std::uint32_t>(rebroadcast_pool_.size());
      rebroadcast_pool_.emplace_back();
    } else {
      slot = rebroadcast_free_.back();
      rebroadcast_free_.pop_back();
    }
    rebroadcast_pool_[slot] = std::move(packet);
    ctx_.sched->schedule_in(
        jitter,
        [this, slot] {
          net::Packet p = std::move(rebroadcast_pool_[slot]);
          rebroadcast_free_.push_back(slot);
          send_to_mac(std::move(p), net::kBroadcastId,
                      /*originated_here=*/false);
        },
        sim::EventCategory::kRouting);
  }

  void drop(const net::Packet& packet, net::DropReason reason) {
    ctx_.counters->drop(reason);
    if (ctx_.trace != nullptr) {
      ctx_.trace->emit_lazy([&] {
        return net::TraceRecord{now(), self(), net::TraceOp::kDrop, packet,
                                net::drop_reason_name(reason)};
      });
    }
  }

  void trace(net::TraceOp op, const net::Packet& packet,
             std::string note = {}) {
    if (ctx_.trace != nullptr) {
      ctx_.trace->emit_lazy([&] {
        return net::TraceRecord{now(), self(), op, packet, std::move(note)};
      });
    }
  }

  RoutingContext ctx_;

 private:
  /// Parking slots for jitter-deferred rebroadcast packets (see
  /// rebroadcast_jittered); recycled LIFO so header buffers get reused.
  std::vector<net::Packet> rebroadcast_pool_;
  std::vector<std::uint32_t> rebroadcast_free_;
};

}  // namespace mts::routing
