#include "routing/dsr/dsr.hpp"

#include <algorithm>
#include <unordered_set>

namespace mts::routing::dsr {

using net::DsrRerrHeader;
using net::DsrRreqHeader;
using net::DsrRrepHeader;
using net::DsrSourceRoute;
using net::NodeId;
using net::Packet;
using net::PacketKind;

namespace {

/// True when `path` visits any node twice — reply-from-cache must never
/// create such a route.
bool has_loop(const net::RouteVec& path) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : path) {
    if (!seen.insert(n).second) return true;
  }
  return false;
}

}  // namespace

Dsr::Dsr(RoutingContext ctx, DsrConfig cfg, sim::Rng rng)
    : RoutingProtocol(std::move(ctx)),
      cfg_(cfg),
      rng_(rng),
      cache_(cfg.cache_capacity, cfg.cache_expiry),
      buffer_(cfg.buffer_capacity, cfg.buffer_max_age),
      purge_timer_(*ctx_.sched, [this] { purge(); },
                   sim::EventCategory::kRouting) {}

void Dsr::start() {
  purge_timer_.start(cfg_.purge_period,
                     cfg_.purge_period + sim::Time::seconds(rng_.uniform(0.0, 0.1)));
}

void Dsr::purge() {
  buffer_.expire(now(), [this](const Packet& p) {
    drop(p, net::DropReason::kSendBufferTimeout);
  });
}

// ---------------------------------------------------------------------------
// Sending.
// ---------------------------------------------------------------------------

bool Dsr::route_and_send(Packet&& p, bool originated_here) {
  auto route = cache_.find(p.common().dst, now());
  if (!route.has_value()) return false;
  DsrSourceRoute sr;
  sr.route = std::move(*route);
  const NodeId next = sr.route[1];
  p.mutable_routing() = std::move(sr);
  p.mutable_hop().cursor = 0;  // route index: still at the source
  if (originated_here) {
    ctx_.mac->enqueue(std::move(p), next);
  } else {
    send_to_mac(std::move(p), next, /*originated_here=*/false);
  }
  return true;
}

void Dsr::send_from_transport(Packet packet) {
  const NodeId dst = packet.common().dst;
  if (dst == self()) {
    ctx_.deliver(std::move(packet), self());
    return;
  }
  // route_and_send consumes the packet only on success; on failure the
  // rvalue reference leaves it intact for buffering.
  if (route_and_send(std::move(packet), /*originated_here=*/true)) return;
  if (auto evicted = buffer_.push(std::move(packet), now())) {
    drop(*evicted, net::DropReason::kSendBufferFull);
  }
  if (!pending_.contains(dst)) start_discovery(dst);
}

void Dsr::start_discovery(NodeId dst) {
  pending_[dst] = PendingDiscovery{};
  send_rreq(dst);
}

void Dsr::send_rreq(NodeId dst) {
  ++rreq_id_;
  DsrRreqHeader h;
  h.rreq_id = rreq_id_;
  h.orig = self();
  h.target = dst;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kDsrRreq;
  common.src = self();
  common.dst = net::kBroadcastId;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.max_route_len;
  p.mutable_routing() = h;
  rreq_seen_.check_and_insert(self(), h.rreq_id);
  send_to_mac(std::move(p), net::kBroadcastId, /*originated_here=*/true);

  auto& pd = pending_[dst];
  sim::Time wait = cfg_.rreq_initial_wait * (std::int64_t{1} << pd.attempts);
  wait = std::min(wait, cfg_.rreq_max_wait);
  pd.timer =
      ctx_.sched->schedule_in(wait, [this, dst] { discovery_timeout(dst); },
                              sim::EventCategory::kRouting);
}

void Dsr::discovery_timeout(NodeId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  ++it->second.attempts;
  if (!buffer_.has_packet_for(dst)) {
    // Nothing waiting any more; stop querying.
    pending_.erase(it);
    return;
  }
  // DSR keeps retrying with exponential backoff while the send buffer
  // holds packets (the buffer's own age limit bounds this).
  send_rreq(dst);
}

void Dsr::flush_buffer(NodeId dst) {
  if (auto it = pending_.find(dst); it != pending_.end()) {
    ctx_.sched->cancel(it->second.timer);
    pending_.erase(it);
  }
  buffer_.take_for(dst, take_scratch_);
  for (Packet& p : take_scratch_) {
    if (!route_and_send(std::move(p), /*originated_here=*/true)) {
      drop(p, net::DropReason::kNoRoute);
    }
  }
}

// ---------------------------------------------------------------------------
// Receiving.
// ---------------------------------------------------------------------------

void Dsr::receive_from_mac(Packet packet, NodeId from) {
  switch (packet.common().kind) {
    case PacketKind::kDsrRreq: handle_rreq(std::move(packet), from); return;
    case PacketKind::kDsrRrep: handle_rrep(std::move(packet), from); return;
    case PacketKind::kDsrRerr: handle_rerr(std::move(packet), from); return;
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck: handle_data(std::move(packet), from); return;
    default:
      drop(packet, net::DropReason::kNoRoute);
      return;
  }
}

void Dsr::handle_rreq(Packet&& p, NodeId from) {
  const auto& h = p.header<DsrRreqHeader>();
  if (h.orig == self()) return;
  if (!rreq_seen_.check_and_insert(h.orig, h.rreq_id)) {
    drop(p, net::DropReason::kDuplicate);
    return;
  }
  // Rate-limit defense: after dedup, so copies of one genuine flood
  // never drain the origin's bucket — only novel (orig, id) floods do.
  if (ctx_.defense != nullptr &&
      !ctx_.defense->admit_rreq(self(), h.orig, now())) {
    drop(p, net::DropReason::kRateLimited);
    return;
  }
  (void)from;
  // Cache the reverse route we just learned (links are bidirectional in
  // the unit-disk world, as they were in the paper's 802.11 setup).
  {
    net::RouteVec back{self()};
    for (auto it = h.record.rbegin(); it != h.record.rend(); ++it)
      back.push_back(*it);
    back.push_back(h.orig);
    cache_.add(std::move(back), now());
  }

  if (h.target == self()) {
    reply_as_target(h);
    return;
  }
  if (std::find(h.record.begin(), h.record.end(), self()) != h.record.end()) {
    return;  // already on this record — forwarding again would loop
  }
  if (cfg_.reply_from_cache) {
    if (auto suffix = cache_.find(h.target, now())) {
      reply_from_cache(h, *suffix);
      return;
    }
  }
  if (p.hop().ttl <= 1 || h.record.size() >= cfg_.max_route_len) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Mutating tail: TTL is a cell write (no clone); the record append is
  // the one body mutation of the flood (`h` refers to the pre-clone body
  // from here on; do not use it).
  --p.mutable_hop().ttl;
  p.mutable_header<DsrRreqHeader>().record.push_back(self());
  rebroadcast_jittered(std::move(p), rng_);
}

void Dsr::reply_as_target(const DsrRreqHeader& h) {
  net::RouteVec full;
  full.reserve(h.record.size() + 2);
  full.push_back(h.orig);
  full.insert(full.end(), h.record.begin(), h.record.end());
  full.push_back(self());
  send_rrep(std::move(full));
}

void Dsr::reply_from_cache(const DsrRreqHeader& h,
                           const net::RouteVec& suffix) {
  // Splice: orig .. record .. self .. cached-suffix(to target).
  net::RouteVec full;
  full.push_back(h.orig);
  full.insert(full.end(), h.record.begin(), h.record.end());
  // suffix starts at self.
  full.insert(full.end(), suffix.begin(), suffix.end());
  if (has_loop(full)) return;  // would be a corrupt route; stay silent
  send_rrep(std::move(full));
}

void Dsr::send_rrep(net::RouteVec full_route) {
  DsrRrepHeader h;
  h.orig = full_route.front();
  h.target = full_route.back();
  h.route = std::move(full_route);
  // The RREP travels the reverse of the discovered route; the hop cell's
  // cursor holds the route index of the node currently due to process it.
  auto me = std::find(h.route.begin(), h.route.end(), self());
  sim::require(me != h.route.end(), "DSR: replier not on route");
  const std::size_t my_idx = static_cast<std::size_t>(me - h.route.begin());
  if (my_idx == 0) return;  // degenerate: we are the orig
  const NodeId next = h.route[my_idx - 1];
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kDsrRrep;
  common.src = self();
  common.dst = h.orig;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.max_route_len;
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx - 1);
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Dsr::handle_rrep(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<DsrRrepHeader>();
  const std::size_t pos = p.hop().cursor;
  if (pos >= h.route.size() || h.route[pos] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Every node the RREP passes learns the route suffix to the target.
  cache_.add(net::RouteVec(h.route.begin() + static_cast<std::ptrdiff_t>(pos),
                           h.route.end()),
             now());
  if (h.orig == self()) {
    flush_buffer(h.target);
    return;
  }
  if (pos == 0) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Pure forwarding hop: only the cell moves; the body stays shared.
  p.mutable_hop().cursor = static_cast<std::uint16_t>(pos - 1);
  const NodeId next = h.route[pos - 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

void Dsr::handle_data(Packet&& p, NodeId from) {
  if (p.common().dst == self()) {
    // Learn the reverse route for our ACKs.
    if (const auto* sr = p.header_if<DsrSourceRoute>()) {
      net::RouteVec back(sr->route.rbegin(), sr->route.rend());
      cache_.add(std::move(back), now());
    }
    trace(net::TraceOp::kDeliver, p);
    ctx_.deliver(std::move(p), from);
    return;
  }
  const auto* sr = p.header_if<DsrSourceRoute>();
  if (sr == nullptr) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Advance the cursor to our position.
  const std::size_t my_idx = static_cast<std::size_t>(p.hop().cursor) + 1;
  if (my_idx >= sr->route.size() || sr->route[my_idx] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (my_idx + 1 >= sr->route.size()) {
    drop(p, net::DropReason::kStaleRoute);  // route ends before dst
    return;
  }
  // Pure forwarding hop: TTL + cursor are cell writes; the body (and its
  // cached wire image) stays shared down the whole chain.
  --p.mutable_hop().ttl;
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx);
  const NodeId next = sr->route[my_idx + 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

// ---------------------------------------------------------------------------
// Errors and salvaging.
// ---------------------------------------------------------------------------

void Dsr::on_link_failure(const Packet& packet, NodeId next_hop) {
  cache_.remove_link(self(), next_hop);

  // Tell the source about the broken link (if it is a source-routed data
  // packet and we are not the source).
  if (const auto* sr = packet.header_if<DsrSourceRoute>()) {
    const NodeId src = sr->route.front();
    if (src != self()) {
      // Back path: reverse of the traversed prefix, self .. src.
      net::RouteVec back{self()};
      for (std::size_t i = std::size_t{packet.hop().cursor} + 1; i-- > 0;)
        back.push_back(sr->route[i]);
      send_rerr(src, next_hop, std::move(back));
    }
  }

  // Salvage the failed packet and everything queued behind it.
  Packet failed = packet;
  if (!salvage(std::move(failed))) {
    // salvage() reported the drop
  }
  for (net::QueueItem& item : ctx_.mac->take_queued_for(next_hop)) {
    if (item.packet.is_control()) {
      drop(item.packet, net::DropReason::kNoRoute);
      continue;
    }
    if (!salvage(std::move(item.packet))) {
      // reported inside
    }
  }
}

bool Dsr::salvage(Packet&& p) {
  if (p.common().kind != PacketKind::kTcpData &&
      p.common().kind != PacketKind::kTcpAck) {
    drop(p, net::DropReason::kNoRoute);
    return false;
  }
  const auto* sr = p.header_if<DsrSourceRoute>();
  const bool already_salvaged = sr != nullptr && sr->salvaged;
  if (p.common().src == self()) {
    // We originated it: re-route or buffer + rediscover.
    p.mutable_routing() = std::monostate{};
    send_from_transport(std::move(p));
    return true;
  }
  if (already_salvaged || cfg_.max_salvage == 0) {
    drop(p, net::DropReason::kNoRoute);
    return false;
  }
  auto route = cache_.find(p.common().dst, now());
  if (!route.has_value() || has_loop(*route)) {
    drop(p, net::DropReason::kNoRoute);
    return false;
  }
  DsrSourceRoute fresh;
  fresh.route = std::move(*route);
  fresh.salvaged = true;
  const NodeId next = fresh.route[1];
  p.mutable_routing() = std::move(fresh);
  p.mutable_hop().cursor = 0;  // fresh route: restart at the salvager
  send_to_mac(std::move(p), next, /*originated_here=*/false);
  return true;
}

void Dsr::send_rerr(NodeId notify, NodeId broken_to,
                    net::RouteVec back_path) {
  DsrRerrHeader h;
  h.notify = notify;
  h.from = self();
  h.to = broken_to;
  h.back_path = std::move(back_path);
  if (h.back_path.size() < 2) return;  // nowhere to go
  const NodeId next = h.back_path[1];
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kDsrRerr;
  common.src = self();
  common.dst = notify;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.max_route_len;
  p.mutable_hop().cursor = 0;  // back_path index of the reporter
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Dsr::handle_rerr(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<DsrRerrHeader>();
  // Everyone who sees the RERR prunes the dead link.
  cache_.remove_link(h.from, h.to);
  if (h.notify == self()) return;  // delivered; future sends re-discover
  const std::size_t my_idx = static_cast<std::size_t>(p.hop().cursor) + 1;
  if (my_idx >= h.back_path.size() || h.back_path[my_idx] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (my_idx + 1 >= h.back_path.size()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Pure forwarding hop: only the cell moves; the body stays shared.
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx);
  const NodeId next = h.back_path[my_idx + 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

}  // namespace mts::routing::dsr
