#include "routing/dsr/route_cache.hpp"

#include <algorithm>

namespace mts::routing::dsr {

void RouteCache::add(net::RouteVec path, sim::Time now) {
  if (path.size() < 2) return;
  for (auto& e : paths_) {
    if (e.path == path) {
      e.added = now;
      e.last_used = now;
      return;
    }
  }
  if (paths_.size() >= capacity_) {
    auto lru = std::min_element(paths_.begin(), paths_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    paths_.erase(lru);
  }
  paths_.push_back(Entry{std::move(path), now, now});
}

std::optional<net::RouteVec> RouteCache::find(net::NodeId dst,
                                                         sim::Time now) const {
  const Entry* best = nullptr;
  for (auto& e : paths_) {
    if (expired(e, now)) continue;
    if (e.path.back() != dst) {
      // A prefix of a longer path also reaches intermediate nodes.
      auto it = std::find(e.path.begin(), e.path.end(), dst);
      if (it == e.path.end()) continue;
    }
    if (best == nullptr || e.path.size() < best->path.size()) best = &e;
  }
  if (best == nullptr) return std::nullopt;
  const_cast<Entry*>(best)->last_used = now;
  // Trim to the requested destination if it is interior.
  auto it = std::find(best->path.begin(), best->path.end(), dst);
  return net::RouteVec(best->path.begin(), it + 1);
}

std::size_t RouteCache::remove_link(net::NodeId from, net::NodeId to) {
  std::size_t affected = 0;
  for (auto it = paths_.begin(); it != paths_.end();) {
    auto& p = it->path;
    bool hit = false;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == from && p[i + 1] == to) {
        hit = true;
        // Keep the still-valid prefix if it is a useful route (>= 2 nodes).
        p.resize(i + 1);
        break;
      }
    }
    if (hit) {
      ++affected;
      if (p.size() < 2) {
        it = paths_.erase(it);
        continue;
      }
    }
    ++it;
  }
  return affected;
}

const std::vector<net::RouteVec> RouteCache::snapshot() const {
  std::vector<net::RouteVec> out;
  out.reserve(paths_.size());
  for (const auto& e : paths_) out.push_back(e.path);
  return out;
}

}  // namespace mts::routing::dsr
