#pragma once

#include <cstdint>
#include <unordered_map>

#include "routing/dsr/route_cache.hpp"
#include "routing/flood_cache.hpp"
#include "routing/protocol.hpp"
#include "routing/send_buffer.hpp"
#include "sim/timer.hpp"

namespace mts::routing::dsr {

struct DsrConfig {
  std::size_t cache_capacity = 64;
  /// 0 = never expire (ns-2 default; the staleness the paper exploits).
  sim::Time cache_expiry = sim::Time::zero();
  std::size_t buffer_capacity = 64;
  sim::Time buffer_max_age = sim::Time::sec(30);
  sim::Time rreq_initial_wait = sim::Time::ms(500);
  sim::Time rreq_max_wait = sim::Time::sec(10);  ///< backoff cap
  std::uint8_t max_route_len = 16;
  bool reply_from_cache = true;   ///< intermediate nodes answer RREQs
  std::uint32_t max_salvage = 1;  ///< salvage attempts per packet
  sim::Time purge_period = sim::Time::sec(1);
};

/// Dynamic Source Routing (Johnson/Maltz), ns-2 flavoured.
///
/// Implemented: route discovery with route records, replies from cache
/// at intermediate nodes, source-routed data, salvaging, route
/// shortening-free RERR propagation that prunes the named link from
/// every cache it passes.  Omitted: promiscuous tap optimizations
/// (gratuitous RREP, automatic shortening) — they are off in the ns-2
/// defaults the paper compares against.
class Dsr final : public RoutingProtocol {
 public:
  Dsr(RoutingContext ctx, DsrConfig cfg, sim::Rng rng);

  void start() override;
  void send_from_transport(net::Packet packet) override;
  void receive_from_mac(net::Packet packet, net::NodeId from) override;
  void on_link_failure(const net::Packet& packet,
                       net::NodeId next_hop) override;
  [[nodiscard]] const char* name() const override { return "DSR"; }

  [[nodiscard]] const RouteCache& cache() const { return cache_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  struct PendingDiscovery {
    std::uint32_t attempts = 0;
    sim::EventId timer = sim::kInvalidEvent;
  };

  void handle_rreq(net::Packet&& p, net::NodeId from);
  void handle_rrep(net::Packet&& p, net::NodeId from);
  void handle_rerr(net::Packet&& p, net::NodeId from);
  void handle_data(net::Packet&& p, net::NodeId from);

  void start_discovery(net::NodeId dst);
  void send_rreq(net::NodeId dst);
  void discovery_timeout(net::NodeId dst);
  void reply_as_target(const net::DsrRreqHeader& h);
  void reply_from_cache(const net::DsrRreqHeader& h,
                        const net::RouteVec& suffix);
  void send_rrep(net::RouteVec full_route);
  void forward_rrep(net::Packet&& p);
  void send_rerr(net::NodeId notify, net::NodeId broken_to,
                 net::RouteVec back_path);
  void forward_rerr(net::Packet&& p);
  void flush_buffer(net::NodeId dst);
  /// Attaches a source route and queues the packet; false if no route.
  bool route_and_send(net::Packet&& p, bool originated_here);
  bool salvage(net::Packet&& p);
  void purge();

  DsrConfig cfg_;
  sim::Rng rng_;
  std::uint32_t rreq_id_ = 0;
  RouteCache cache_;
  FloodCache rreq_seen_;
  SendBuffer buffer_;
  std::vector<net::Packet> take_scratch_;  ///< reused by flush_buffer
  std::unordered_map<net::NodeId, PendingDiscovery> pending_;
  sim::PeriodicTimer purge_timer_;
};

}  // namespace mts::routing::dsr
