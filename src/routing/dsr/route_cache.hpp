#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/headers.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace mts::routing::dsr {

/// DSR path cache: full source routes rooted at this node.
///
/// Deliberately has *no timeout* (the ns-2 DSR default): routes leave
/// the cache only when a RERR names one of their links.  This is the
/// property behind the paper's Fig. 10 — at high node speed, cached
/// routes go stale faster than errors can evict them, and DSR's delivery
/// rate collapses.  An optional expiry is available for ablations.
class RouteCache {
 public:
  explicit RouteCache(std::size_t capacity = 64,
                      sim::Time expiry = sim::Time::zero())
      : capacity_(capacity), expiry_(expiry) {}

  /// Inserts a path (`self .. dst`, endpoints inclusive).  Duplicate
  /// paths refresh; capacity evicts least-recently-used.
  void add(net::RouteVec path, sim::Time now);

  /// Shortest usable cached path to `dst` (self first, dst last).
  [[nodiscard]] std::optional<net::RouteVec> find(
      net::NodeId dst, sim::Time now) const;

  /// Removes/truncates every path using directed link `from -> to`.
  /// Returns how many cached paths were affected.
  std::size_t remove_link(net::NodeId from, net::NodeId to);

  [[nodiscard]] std::size_t size() const { return paths_.size(); }

  /// All cached paths (tests / diagnostics).
  [[nodiscard]] const std::vector<net::RouteVec> snapshot() const;

 private:
  struct Entry {
    net::RouteVec path;
    sim::Time added;
    sim::Time last_used;
  };
  [[nodiscard]] bool expired(const Entry& e, sim::Time now) const {
    return expiry_ > sim::Time::zero() && now - e.added > expiry_;
  }

  std::size_t capacity_;
  sim::Time expiry_;
  mutable std::vector<Entry> paths_;
};

}  // namespace mts::routing::dsr
