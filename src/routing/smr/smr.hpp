#pragma once

#include <cstdint>
#include <unordered_map>

#include "routing/dsr/route_cache.hpp"
#include "routing/flood_cache.hpp"
#include "routing/protocol.hpp"
#include "routing/send_buffer.hpp"
#include "sim/timer.hpp"

namespace mts::routing::smr {

struct SmrConfig {
  /// How long the destination collects RREQ copies before choosing the
  /// maximally-disjoint second route (Lee & Gerla use a short window).
  sim::Time select_window = sim::Time::ms(100);
  /// Number of concurrent routes data is striped over.
  std::uint32_t route_count = 2;
  /// A duplicate RREQ is re-forwarded when it arrived over a different
  /// incoming link; this caps how many copies one node re-forwards.
  std::uint32_t max_dup_forwards = 2;
  std::uint8_t max_route_len = 16;
  std::size_t buffer_capacity = 64;
  sim::Time buffer_max_age = sim::Time::sec(30);
  sim::Time rreq_initial_wait = sim::Time::ms(500);
  sim::Time rreq_max_wait = sim::Time::sec(10);
  sim::Time purge_period = sim::Time::sec(1);
};

/// Split Multipath Routing (Lee & Gerla, ICC 2001) — the paper's
/// related-work baseline [6].
///
/// SMR discovers two maximally-disjoint source routes per flow and
/// stripes data packets over them *concurrently*.  The paper (§II,
/// citing [7]) argues this is exactly what hurts TCP: alternating
/// between paths of different RTT reorders segments, triggers spurious
/// dup-ACK fast retransmits, and halves the congestion window for
/// losses that never happened.  This implementation exists to reproduce
/// that claim (bench `ext_smr_tcp`).
///
/// Mechanics implemented: route-record RREQ flood where intermediates
/// re-forward duplicates that arrive over a *different incoming link*
/// (up to a cap) instead of dropping all duplicates; destination
/// replies immediately to the first copy, then after a selection window
/// replies to the copy maximally disjoint from the first; the source
/// stripes data round-robin over the discovered routes; link failures
/// prune the affected route (DSR-style RERR back to the source) and the
/// flow falls back to the surviving route until a re-discovery.
class Smr final : public RoutingProtocol {
 public:
  Smr(RoutingContext ctx, SmrConfig cfg, sim::Rng rng);

  void start() override;
  void send_from_transport(net::Packet packet) override;
  void receive_from_mac(net::Packet packet, net::NodeId from) override;
  void on_link_failure(const net::Packet& packet,
                       net::NodeId next_hop) override;
  [[nodiscard]] const char* name() const override { return "SMR"; }

  /// Routes the source currently stripes over (for tests).
  [[nodiscard]] std::vector<net::RouteVec> active_routes(
      net::NodeId dst) const;

 private:
  struct FlowRoutes {
    std::vector<net::RouteVec> routes;             ///< full src..dst paths
    std::uint32_t next = 0;                        ///< round-robin cursor
    std::uint32_t attempts = 0;
    sim::EventId rreq_timer = sim::kInvalidEvent;
    bool discovering = false;
  };
  struct PendingSelect {
    net::RouteVec first;                 ///< route answered immediately
    std::vector<net::RouteVec> candidates;
    sim::EventId timer = sim::kInvalidEvent;
    std::uint32_t rreq_id = 0;
    /// Generation refused by the rate-limit defense: stragglers of the
    /// same id are ignored without re-draining the origin's bucket.
    bool suppressed = false;
  };

  void handle_rreq(net::Packet&& p, net::NodeId from);
  void handle_rrep(net::Packet&& p, net::NodeId from);
  void handle_rerr(net::Packet&& p, net::NodeId from);
  void handle_data(net::Packet&& p, net::NodeId from);

  void start_discovery(net::NodeId dst);
  void send_rreq(net::NodeId dst);
  void discovery_timeout(net::NodeId dst);
  void select_second_route(net::NodeId orig);
  void send_rrep_for(net::RouteVec full_route);
  void flush_buffer(net::NodeId dst);
  bool stripe_and_send(net::Packet&& p);

  SmrConfig cfg_;
  sim::Rng rng_;
  std::uint32_t rreq_id_ = 0;
  std::unordered_map<net::NodeId, FlowRoutes> flows_;       ///< as source
  std::unordered_map<net::NodeId, PendingSelect> pending_;  ///< as dest
  /// (orig, rreq_id) -> how many copies forwarded; incoming links seen.
  std::unordered_map<std::uint64_t, std::uint32_t> dup_forwards_;
  std::unordered_map<std::uint64_t, net::NodeId> first_link_;
  dsr::RouteCache reverse_cache_;  ///< for replying to the peer's data
  SendBuffer buffer_;
  std::vector<net::Packet> take_scratch_;  ///< reused by flush_buffer
  sim::PeriodicTimer purge_timer_;
};

}  // namespace mts::routing::smr
