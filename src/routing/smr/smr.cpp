#include "routing/smr/smr.hpp"

#include <algorithm>
#include <unordered_set>

namespace mts::routing::smr {

using net::DsrRerrHeader;
using net::DsrRreqHeader;
using net::DsrRrepHeader;
using net::DsrSourceRoute;
using net::NodeId;
using net::Packet;
using net::PacketKind;

namespace {

std::uint64_t flood_key(NodeId orig, std::uint32_t id) {
  return (static_cast<std::uint64_t>(orig) << 32) | id;
}

/// Number of shared intermediate nodes — the "maximally disjoint"
/// selection minimizes this against the first route.
std::size_t overlap(const net::RouteVec& a, const net::RouteVec& b) {
  std::unordered_set<NodeId> interior(a.begin() + 1, a.end() - 1);
  std::size_t n = 0;
  for (std::size_t i = 1; i + 1 < b.size(); ++i) {
    if (interior.contains(b[i])) ++n;
  }
  return n;
}

bool has_loop(const net::RouteVec& path) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : path) {
    if (!seen.insert(n).second) return true;
  }
  return false;
}

}  // namespace

Smr::Smr(RoutingContext ctx, SmrConfig cfg, sim::Rng rng)
    : RoutingProtocol(std::move(ctx)),
      cfg_(cfg),
      rng_(rng),
      buffer_(cfg.buffer_capacity, cfg.buffer_max_age),
      purge_timer_(
          *ctx_.sched,
          [this] {
            buffer_.expire(now(), [this](const Packet& p) {
              drop(p, net::DropReason::kSendBufferTimeout);
            });
          },
          sim::EventCategory::kRouting) {
  sim::require_config(cfg.route_count >= 1, "SmrConfig: route_count < 1");
}

void Smr::start() {
  purge_timer_.start(cfg_.purge_period,
                     cfg_.purge_period + sim::Time::seconds(rng_.uniform(0.0, 0.1)));
}

// ---------------------------------------------------------------------------
// Sending: stripe round-robin over the active routes.
// ---------------------------------------------------------------------------

bool Smr::stripe_and_send(Packet&& p) {
  auto it = flows_.find(p.common().dst);
  if (it == flows_.end() || it->second.routes.empty()) return false;
  FlowRoutes& fr = it->second;
  const auto& route = fr.routes[fr.next % fr.routes.size()];
  ++fr.next;  // the concurrency that reorders TCP segments
  DsrSourceRoute sr;
  sr.route = route;
  const NodeId next_hop = route[1];
  p.mutable_routing() = std::move(sr);
  p.mutable_hop().cursor = 0;  // route index: still at the source
  ctx_.mac->enqueue(std::move(p), next_hop);
  return true;
}

void Smr::send_from_transport(Packet packet) {
  const NodeId dst = packet.common().dst;
  if (dst == self()) {
    ctx_.deliver(std::move(packet), self());
    return;
  }
  if (stripe_and_send(std::move(packet))) return;
  // Sink side: reply along the reversed route of received data.
  if (auto back = reverse_cache_.find(dst, now())) {
    DsrSourceRoute sr;
    sr.route = std::move(*back);
    const NodeId next_hop = sr.route[1];
    packet.mutable_routing() = std::move(sr);
    packet.mutable_hop().cursor = 0;  // route index: still at the source
    ctx_.mac->enqueue(std::move(packet), next_hop);
    return;
  }
  if (auto evicted = buffer_.push(std::move(packet), now())) {
    drop(*evicted, net::DropReason::kSendBufferFull);
  }
  if (!flows_[dst].discovering) start_discovery(dst);
}

void Smr::start_discovery(NodeId dst) {
  FlowRoutes& fr = flows_[dst];
  fr.routes.clear();
  fr.next = 0;
  fr.discovering = true;
  fr.attempts = 0;
  send_rreq(dst);
}

void Smr::send_rreq(NodeId dst) {
  ++rreq_id_;
  DsrRreqHeader h;
  h.rreq_id = rreq_id_;
  h.orig = self();
  h.target = dst;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kDsrRreq;
  common.src = self();
  common.dst = net::kBroadcastId;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.max_route_len;
  p.mutable_routing() = h;
  dup_forwards_[flood_key(self(), h.rreq_id)] = cfg_.max_dup_forwards;
  send_to_mac(std::move(p), net::kBroadcastId, /*originated_here=*/true);

  FlowRoutes& fr = flows_[dst];
  sim::Time wait = cfg_.rreq_initial_wait * (std::int64_t{1} << fr.attempts);
  wait = std::min(wait, cfg_.rreq_max_wait);
  fr.rreq_timer =
      ctx_.sched->schedule_in(wait, [this, dst] { discovery_timeout(dst); },
                              sim::EventCategory::kRouting);
}

void Smr::discovery_timeout(NodeId dst) {
  auto it = flows_.find(dst);
  if (it == flows_.end() || !it->second.discovering) return;
  FlowRoutes& fr = it->second;
  if (!fr.routes.empty()) {
    fr.discovering = false;
    return;
  }
  ++fr.attempts;
  if (!buffer_.has_packet_for(dst)) {
    fr.discovering = false;
    return;
  }
  send_rreq(dst);
}

void Smr::flush_buffer(NodeId dst) {
  auto it = flows_.find(dst);
  if (it != flows_.end() && it->second.discovering) {
    ctx_.sched->cancel(it->second.rreq_timer);
    it->second.discovering = false;
  }
  buffer_.take_for(dst, take_scratch_);
  for (Packet& p : take_scratch_) {
    if (!stripe_and_send(std::move(p))) {
      drop(p, net::DropReason::kNoRoute);
    }
  }
}

// ---------------------------------------------------------------------------
// Receive paths.
// ---------------------------------------------------------------------------

void Smr::receive_from_mac(Packet packet, NodeId from) {
  switch (packet.common().kind) {
    case PacketKind::kDsrRreq: handle_rreq(std::move(packet), from); return;
    case PacketKind::kDsrRrep: handle_rrep(std::move(packet), from); return;
    case PacketKind::kDsrRerr: handle_rerr(std::move(packet), from); return;
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck: handle_data(std::move(packet), from); return;
    default:
      drop(packet, net::DropReason::kNoRoute);
      return;
  }
}

void Smr::handle_rreq(Packet&& p, NodeId from) {
  const auto& h = p.header<DsrRreqHeader>();
  if (h.orig == self()) return;
  const std::uint64_t key = flood_key(h.orig, h.rreq_id);

  if (h.target == self()) {
    // Destination: first copy replies immediately; later copies are
    // collected until the selection window closes (SMR's split step).
    net::RouteVec full;
    full.push_back(h.orig);
    full.insert(full.end(), h.record.begin(), h.record.end());
    full.push_back(self());
    if (has_loop(full)) return;
    auto [it, fresh] = pending_.try_emplace(h.orig);
    PendingSelect& sel = it->second;
    if (sel.suppressed && !fresh && sel.rreq_id == h.rreq_id) {
      return;  // straggler of a rate-limited generation
    }
    if (fresh || sel.rreq_id != h.rreq_id) {
      // Rate-limit defense: one token per *generation* — the destination
      // deliberately consumes every copy, so charging per copy would let
      // a genuine flood starve itself.
      if (ctx_.defense != nullptr &&
          !ctx_.defense->admit_rreq(self(), h.orig, now())) {
        if (!fresh && sel.timer != sim::kInvalidEvent) {
          ctx_.sched->cancel(sel.timer);
        }
        sel = PendingSelect{};
        sel.rreq_id = h.rreq_id;
        sel.suppressed = true;
        drop(p, net::DropReason::kRateLimited);
        return;
      }
    }
    if (fresh || sel.rreq_id != h.rreq_id) {
      // A still-armed window from the previous discovery round re-arms
      // in place (the callback's capture is identical); otherwise a
      // fresh window is scheduled.
      const sim::EventId old_timer = fresh ? sim::kInvalidEvent : sel.timer;
      sel = PendingSelect{};
      sel.rreq_id = h.rreq_id;
      sel.first = full;
      const NodeId orig = h.orig;
      const sim::Time window_end = now() + cfg_.select_window;
      if (old_timer != sim::kInvalidEvent &&
          ctx_.sched->reschedule(old_timer, window_end)) {
        sel.timer = old_timer;
      } else {
        sel.timer = ctx_.sched->schedule_at(
            window_end, [this, orig] { select_second_route(orig); },
            sim::EventCategory::kRouting);
      }
      send_rrep_for(std::move(full));
    } else {
      sel.candidates.push_back(std::move(full));
    }
    return;
  }

  // Intermediate: SMR re-forwards duplicates arriving over a *different*
  // incoming link (bounded), so multiple disjoint records reach the
  // destination.
  auto fit = first_link_.find(key);
  if (fit == first_link_.end()) {
    first_link_[key] = from;
    // Rate-limit defense, charged on the first copy only; a refused
    // flood keeps a zero re-forward budget so stragglers die as
    // duplicates instead of re-draining the origin's bucket.
    if (ctx_.defense != nullptr &&
        !ctx_.defense->admit_rreq(self(), h.orig, now())) {
      dup_forwards_[key] = 0;
      drop(p, net::DropReason::kRateLimited);
      return;
    }
    dup_forwards_[key] = cfg_.max_dup_forwards;
  } else {
    auto& budget = dup_forwards_[key];
    if (fit->second == from || budget == 0) {
      drop(p, net::DropReason::kDuplicate);
      return;
    }
    --budget;
  }
  if (std::find(h.record.begin(), h.record.end(), self()) != h.record.end()) {
    return;  // already on this record
  }
  if (p.hop().ttl <= 1 || h.record.size() >= cfg_.max_route_len) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Mutating tail: TTL is a cell write (no clone); the record append is
  // the one body mutation of the flood (`h` refers to the pre-clone body
  // from here on; do not use it).
  --p.mutable_hop().ttl;
  p.mutable_header<DsrRreqHeader>().record.push_back(self());
  rebroadcast_jittered(std::move(p), rng_);
}

void Smr::select_second_route(NodeId orig) {
  auto it = pending_.find(orig);
  if (it == pending_.end()) return;
  PendingSelect sel = std::move(it->second);
  pending_.erase(it);
  if (sel.candidates.empty()) return;
  // Maximally disjoint from the first: minimize shared interior nodes,
  // break ties by shorter route.
  const auto best = std::min_element(
      sel.candidates.begin(), sel.candidates.end(),
      [&sel](const auto& a, const auto& b) {
        const auto oa = overlap(sel.first, a);
        const auto ob = overlap(sel.first, b);
        return oa != ob ? oa < ob : a.size() < b.size();
      });
  if (*best == sel.first) return;
  send_rrep_for(*best);
}

void Smr::send_rrep_for(net::RouteVec full_route) {
  DsrRrepHeader h;
  h.orig = full_route.front();
  h.target = full_route.back();
  h.route = std::move(full_route);
  const std::size_t my_idx = h.route.size() - 1;  // we are the target
  const NodeId next = h.route[my_idx - 1];
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kDsrRrep;
  common.src = self();
  common.dst = h.orig;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.max_route_len;
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx - 1);
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), next, /*originated_here=*/true);
}

void Smr::handle_rrep(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<DsrRrepHeader>();
  const std::size_t pos = p.hop().cursor;
  if (pos >= h.route.size() || h.route[pos] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  if (h.orig == self()) {
    FlowRoutes& fr = flows_[h.target];
    if (std::find(fr.routes.begin(), fr.routes.end(), h.route) ==
        fr.routes.end()) {
      if (fr.routes.size() < cfg_.route_count) {
        fr.routes.push_back(h.route);
      }
    }
    flush_buffer(h.target);
    return;
  }
  if (pos == 0) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Pure forwarding hop: only the cell moves; the body stays shared.
  p.mutable_hop().cursor = static_cast<std::uint16_t>(pos - 1);
  const NodeId next = h.route[pos - 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

void Smr::handle_data(Packet&& p, NodeId from) {
  if (p.common().dst == self()) {
    if (const auto* sr = p.header_if<DsrSourceRoute>()) {
      net::RouteVec back(sr->route.rbegin(), sr->route.rend());
      reverse_cache_.add(std::move(back), now());
    }
    trace(net::TraceOp::kDeliver, p);
    ctx_.deliver(std::move(p), from);
    return;
  }
  const auto* sr = p.header_if<DsrSourceRoute>();
  if (sr == nullptr || p.hop().ttl <= 1) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  const std::size_t my_idx = static_cast<std::size_t>(p.hop().cursor) + 1;
  if (my_idx + 1 >= sr->route.size() || sr->route[my_idx] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Pure forwarding hop: TTL + cursor are cell writes; the body (and its
  // cached wire image) stays shared down the whole chain.
  --p.mutable_hop().ttl;
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx);
  const NodeId next = sr->route[my_idx + 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

void Smr::on_link_failure(const Packet& packet, NodeId next_hop) {
  reverse_cache_.remove_link(self(), next_hop);
  const auto* sr = packet.header_if<DsrSourceRoute>();
  if (sr != nullptr && !sr->route.empty()) {
    const NodeId src = sr->route.front();
    if (src == self()) {
      // Prune every active route using the dead link; fall back to the
      // survivors (or re-discover when none remain).
      auto it = flows_.find(packet.common().dst);
      if (it != flows_.end()) {
        auto& routes = it->second.routes;
        routes.erase(
            std::remove_if(routes.begin(), routes.end(),
                           [next_hop](const net::RouteVec& r) {
                             return r.size() > 1 && r[1] == next_hop;
                           }),
            routes.end());
      }
      Packet retry = packet;
      retry.mutable_routing() = std::monostate{};
      send_from_transport(std::move(retry));
    } else {
      // DSR-style RERR back to the source along the traversed prefix.
      DsrRerrHeader h;
      h.notify = src;
      h.from = self();
      h.to = next_hop;
      for (std::size_t i = std::size_t{packet.hop().cursor} + 1; i-- > 0;) {
        h.back_path.push_back(sr->route[i]);
      }
      h.back_path.insert(h.back_path.begin(), self());
      if (h.back_path.size() >= 2) {
        const NodeId next = h.back_path[1];
        Packet rerr;
        auto& common = rerr.mutable_common();
        common.kind = PacketKind::kDsrRerr;
        common.src = self();
        common.dst = src;
        common.uid = ctx_.uids->next();
        common.originated = now();
        rerr.mutable_hop().ttl = cfg_.max_route_len;
        rerr.mutable_hop().cursor = 0;  // back_path index of the reporter
        rerr.mutable_routing() = std::move(h);
        send_to_mac(std::move(rerr), next, /*originated_here=*/true);
      }
      drop(packet, net::DropReason::kStaleRoute);
    }
  }
  for (net::QueueItem& item : ctx_.mac->take_queued_for(next_hop)) {
    if (item.packet.is_control()) {
      drop(item.packet, net::DropReason::kNoRoute);
    } else if (item.packet.common().src == self()) {
      Packet retry = std::move(item.packet);
      retry.mutable_routing() = std::monostate{};
      send_from_transport(std::move(retry));
    } else {
      drop(item.packet, net::DropReason::kNoRoute);
    }
  }
}

void Smr::handle_rerr(Packet&& p, NodeId from) {
  (void)from;
  const auto& h = p.header<DsrRerrHeader>();
  if (h.notify == self()) {
    // Drop every striped route that contains the dead link.
    for (auto& [dst, fr] : flows_) {
      auto& routes = fr.routes;
      routes.erase(std::remove_if(routes.begin(), routes.end(),
                                  [&h](const net::RouteVec& r) {
                                    for (std::size_t i = 0; i + 1 < r.size();
                                         ++i) {
                                      if (r[i] == h.from && r[i + 1] == h.to)
                                        return true;
                                    }
                                    return false;
                                  }),
                   routes.end());
    }
    return;
  }
  const std::size_t my_idx = static_cast<std::size_t>(p.hop().cursor) + 1;
  if (my_idx + 1 >= h.back_path.size() || h.back_path[my_idx] != self()) {
    drop(p, net::DropReason::kStaleRoute);
    return;
  }
  // Pure forwarding hop: only the cell moves; the body stays shared.
  p.mutable_hop().cursor = static_cast<std::uint16_t>(my_idx);
  const NodeId next = h.back_path[my_idx + 1];
  send_to_mac(std::move(p), next, /*originated_here=*/false);
}

std::vector<net::RouteVec> Smr::active_routes(NodeId dst) const {
  auto it = flows_.find(dst);
  return it == flows_.end() ? std::vector<net::RouteVec>{}
                            : it->second.routes;
}

}  // namespace mts::routing::smr
