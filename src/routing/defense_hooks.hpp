#pragma once

#include <cstdint>

#include "net/headers.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace mts::routing {

/// The seam the countermeasure subsystem (`src/security/defense`) plugs
/// into the routing layer.  A scenario installs at most one hooks object
/// (shared by every node, like the adversary model); protocols consult
/// it at three well-defined points:
///
///  * `admit_rreq` — per-origin route-discovery rate limiting.  Called
///    once per *novel* (origin, id) flood a node processes — after the
///    protocol's own duplicate suppression, so copies of one genuine
///    discovery never drain the origin's token budget.
///  * `admit_path` — path admission (wormhole leashes).  Called when a
///    node is about to store or start using an advertised node list;
///    returning false quarantines the path.
///  * the probe family — MTS's end-to-end acked checking.  The source
///    probes each stored path on the data plane (`probe_period`),
///    reports sends and echoes, and asks `path_suspect` whether the
///    per-path delivery estimator has demoted the path.
///
/// Every hook defaults to "defense absent" behaviour, so a protocol can
/// call them unconditionally through a null-checked pointer and a
/// defense model only overrides the hooks it implements.
class DefenseHooks {
 public:
  virtual ~DefenseHooks() = default;

  // --- flood rate limiting ---------------------------------------------
  /// Should `self` process a route discovery originated by `origin`?
  /// False = suppress (drop as kRateLimited, do not rebroadcast/reply).
  [[nodiscard]] virtual bool admit_rreq(net::NodeId /*self*/,
                                        net::NodeId /*origin*/,
                                        sim::Time /*now*/) {
    return true;
  }

  // --- path admission (wormhole leashes) -------------------------------
  /// Is the advertised path src -> intermediates -> dst physically
  /// plausible?  False = quarantine (do not store / do not use).
  [[nodiscard]] virtual bool admit_path(net::NodeId /*src*/,
                                        net::NodeId /*dst*/,
                                        const net::RouteVec& /*intermediates*/,
                                        sim::Time /*now*/) {
    return true;
  }

  // --- end-to-end acked checking (MTS data-plane probes) ---------------
  /// Probe cadence; zero disables probing entirely.
  [[nodiscard]] virtual sim::Time probe_period() const {
    return sim::Time::zero();
  }
  /// A fresh path entry was (re)established at `self`; any estimator
  /// state left over from a previous discovery generation is stale.
  virtual void on_path_established(net::NodeId /*self*/, net::NodeId /*dst*/,
                                   std::uint16_t /*path_id*/) {}
  /// `self` put a probe toward `dst` on path `path_id` on the wire.
  virtual void on_probe_sent(net::NodeId /*self*/, net::NodeId /*dst*/,
                             std::uint16_t /*path_id*/, sim::Time /*now*/) {}
  /// The destination's echo for a probe came back end-to-end.
  virtual void on_probe_echo(net::NodeId /*self*/, net::NodeId /*dst*/,
                             std::uint16_t /*path_id*/, sim::Time /*now*/) {}
  /// Has the per-path delivery estimator demoted this path?
  [[nodiscard]] virtual bool path_suspect(net::NodeId /*self*/,
                                          net::NodeId /*dst*/,
                                          std::uint16_t /*path_id*/,
                                          sim::Time /*now*/) {
    return false;
  }
  /// The protocol honoured a `path_suspect` verdict and quarantined.
  virtual void on_path_quarantined(net::NodeId /*self*/, net::NodeId /*dst*/,
                                   std::uint16_t /*path_id*/,
                                   sim::Time /*now*/) {}
};

}  // namespace mts::routing
