#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mts::routing {

/// Holds data packets while route discovery runs.
///
/// Mirrors ns-2's DSR "send buffer": bounded capacity, per-packet age
/// limit, FIFO drop of the oldest when full.  All three on-demand
/// protocols share it.
class SendBuffer {
 public:
  explicit SendBuffer(std::size_t capacity = 64,
                      sim::Time max_age = sim::Time::sec(30))
      : capacity_(capacity), max_age_(max_age) {}

  /// Adds a packet; returns the evicted oldest packet when full.
  std::optional<net::Packet> push(net::Packet p, sim::Time now) {
    std::optional<net::Packet> evicted;
    if (entries_.size() >= capacity_) {
      evicted = std::move(entries_.front().packet);
      entries_.pop_front();
    }
    entries_.push_back(Entry{std::move(p), now});
    return evicted;
  }

  /// Moves every buffered packet destined to `dst` into `out` (previous
  /// contents are discarded).  Caller-owned scratch, like
  /// Channel::neighbors_of: route discovery resolves once per flow, and
  /// returning a fresh vector each time would allocate on that path.
  void take_for(net::NodeId dst, std::vector<net::Packet>& out) {
    out.clear();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->packet.common().dst == dst) {
        out.push_back(std::move(it->packet));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Drops packets older than the age limit, reporting each.
  void expire(sim::Time now,
              const std::function<void(const net::Packet&)>& on_expired) {
    while (!entries_.empty() && now - entries_.front().queued_at > max_age_) {
      on_expired(entries_.front().packet);
      entries_.pop_front();
    }
  }

  [[nodiscard]] bool has_packet_for(net::NodeId dst) const {
    for (const auto& e : entries_) {
      if (e.packet.common().dst == dst) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    net::Packet packet;
    sim::Time queued_at;
  };
  std::size_t capacity_;
  sim::Time max_age_;
  std::deque<Entry> entries_;
};

}  // namespace mts::routing
