#include "routing/aodv/aodv.hpp"

#include <algorithm>

namespace mts::routing::aodv {

using net::AodvRerrHeader;
using net::AodvRreqHeader;
using net::AodvRrepHeader;
using net::NodeId;
using net::Packet;
using net::PacketKind;

Aodv::Aodv(RoutingContext ctx, AodvConfig cfg, sim::Rng rng)
    : RoutingProtocol(std::move(ctx)),
      cfg_(cfg),
      rng_(rng),
      buffer_(cfg.buffer_capacity, cfg.buffer_max_age),
      purge_timer_(*ctx_.sched, [this] { purge_expired(); },
                   sim::EventCategory::kRouting) {}

void Aodv::start() {
  // Small desync so all nodes don't purge on the same tick.
  purge_timer_.start(cfg_.purge_period,
                     cfg_.purge_period + sim::Time::seconds(rng_.uniform(0.0, 0.1)));
}

// ---------------------------------------------------------------------------
// Route table.
// ---------------------------------------------------------------------------

Aodv::RouteEntry* Aodv::find_valid(NodeId dst) {
  auto it = routes_.find(dst);
  if (it == routes_.end()) return nullptr;
  RouteEntry& e = it->second;
  if (!e.valid) return nullptr;
  if (e.expires < now()) {
    e.valid = false;
    return nullptr;
  }
  return &e;
}

const Aodv::RouteEntry* Aodv::route_to(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

bool Aodv::update_route(NodeId dst, NodeId next_hop, std::uint8_t hop_count,
                        std::uint32_t seq, bool seq_known, sim::Time lifetime) {
  RouteEntry& e = routes_[dst];
  const bool stale = !e.valid || e.expires < now();
  bool accept = stale;
  if (!accept && seq_known) {
    if (!e.valid_seq) {
      accept = true;
    } else if (seq > e.dst_seq) {
      accept = true;
    } else if (seq == e.dst_seq && hop_count < e.hop_count) {
      accept = true;
    }
  }
  if (!accept && !seq_known && hop_count < e.hop_count) {
    accept = true;  // unknown-seq update may still shorten (reverse routes)
  }
  if (!accept) {
    // Keep the entry alive: traffic proved the old route still works.
    e.expires = std::max(e.expires, now() + lifetime);
    return false;
  }
  e.next_hop = next_hop;
  e.hop_count = hop_count;
  if (seq_known) {
    e.dst_seq = std::max(e.valid_seq ? e.dst_seq : 0, seq);
    e.valid_seq = true;
  }
  e.valid = true;
  e.expires = now() + lifetime;
  return true;
}

void Aodv::refresh(NodeId dst) {
  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.valid) {
    it->second.expires =
        std::max(it->second.expires, now() + cfg_.active_route_timeout);
  }
}

void Aodv::purge_expired() {
  for (auto& [dst, e] : routes_) {
    if (e.valid && e.expires < now()) e.valid = false;
  }
  buffer_.expire(now(), [this](const Packet& p) {
    drop(p, net::DropReason::kSendBufferTimeout);
  });
}

// ---------------------------------------------------------------------------
// Transport-facing.
// ---------------------------------------------------------------------------

void Aodv::send_from_transport(Packet packet) {
  const NodeId dst = packet.common().dst;
  if (dst == self()) {
    ctx_.deliver(std::move(packet), self());
    return;
  }
  if (RouteEntry* e = find_valid(dst)) {
    refresh(dst);
    ctx_.mac->enqueue(std::move(packet), e->next_hop);
    return;
  }
  if (auto evicted = buffer_.push(std::move(packet), now())) {
    drop(*evicted, net::DropReason::kSendBufferFull);
  }
  if (!pending_.contains(dst)) start_discovery(dst);
}

void Aodv::start_discovery(NodeId dst) {
  pending_[dst] = PendingDiscovery{};
  send_rreq(dst);
}

void Aodv::send_rreq(NodeId dst) {
  ++seq_;  // RFC 3561 §6.1: increment own seq before an RREQ
  ++rreq_id_;
  AodvRreqHeader h;
  h.rreq_id = rreq_id_;
  h.orig = self();
  h.dst = dst;
  h.orig_seq = seq_;
  if (const RouteEntry* e = route_to(dst); e != nullptr && e->valid_seq) {
    h.dst_seq = e->dst_seq;
    h.dst_seq_known = true;
  }
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kAodvRreq;
  common.src = self();
  common.dst = net::kBroadcastId;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_routing() = h;
  rreq_seen_.check_and_insert(self(), h.rreq_id);  // don't accept our own flood
  send_to_mac(std::move(p), net::kBroadcastId, /*originated_here=*/true);

  auto& pd = pending_[dst];
  pd.timer = ctx_.sched->schedule_in(cfg_.rrep_wait * (std::int64_t{1} << pd.retries),
                                     [this, dst] { discovery_timeout(dst); },
                                     sim::EventCategory::kRouting);
}

void Aodv::discovery_timeout(NodeId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (it->second.retries + 1 >= cfg_.rreq_retries) {
    pending_.erase(it);
    buffer_.take_for(dst, take_scratch_);
    for (Packet& p : take_scratch_) {
      drop(p, net::DropReason::kNoRoute);
    }
    return;
  }
  ++it->second.retries;
  send_rreq(dst);
}

void Aodv::flush_buffer(NodeId dst) {
  if (auto it = pending_.find(dst); it != pending_.end()) {
    ctx_.sched->cancel(it->second.timer);
    pending_.erase(it);
  }
  RouteEntry* e = find_valid(dst);
  if (e == nullptr) return;
  buffer_.take_for(dst, take_scratch_);
  for (Packet& p : take_scratch_) {
    refresh(dst);
    ctx_.mac->enqueue(std::move(p), e->next_hop);
  }
}

// ---------------------------------------------------------------------------
// MAC-facing.
// ---------------------------------------------------------------------------

void Aodv::receive_from_mac(Packet packet, NodeId from) {
  switch (packet.common().kind) {
    case PacketKind::kAodvRreq: handle_rreq(std::move(packet), from); return;
    case PacketKind::kAodvRrep: handle_rrep(std::move(packet), from); return;
    case PacketKind::kAodvRerr: handle_rerr(std::move(packet), from); return;
    case PacketKind::kTcpData:
    case PacketKind::kTcpAck: handle_data(std::move(packet), from); return;
    default:
      drop(packet, net::DropReason::kNoRoute);  // foreign protocol packet
      return;
  }
}

void Aodv::handle_rreq(Packet&& p, NodeId from) {
  const auto& h = p.header<AodvRreqHeader>();
  if (h.orig == self()) return;  // our own flood echoed back
  if (!rreq_seen_.check_and_insert(h.orig, h.rreq_id)) {
    drop(p, net::DropReason::kDuplicate);
    return;
  }
  // Rate-limit defense: after dedup, so copies of one genuine flood
  // never drain the origin's bucket — only novel (orig, id) floods do.
  if (ctx_.defense != nullptr &&
      !ctx_.defense->admit_rreq(self(), h.orig, now())) {
    drop(p, net::DropReason::kRateLimited);
    return;
  }
  // One hop further from the originator; written back to the hop cell
  // only on the forwarding tail, so terminal handling never mutates here.
  const auto hop_count = static_cast<std::uint8_t>(p.hop().hops + 1);
  // Reverse route toward the originator through `from`.
  update_route(h.orig, from, hop_count, h.orig_seq, /*seq_known=*/true,
               cfg_.active_route_timeout);
  if (from != h.orig) {
    update_route(from, from, 1, 0, /*seq_known=*/false,
                 cfg_.active_route_timeout);
  }

  if (h.dst == self()) {
    send_rrep_as_destination(h);
    return;
  }
  if (cfg_.intermediate_reply) {
    if (RouteEntry* e = find_valid(h.dst);
        e != nullptr && e->valid_seq && h.dst_seq_known &&
        e->dst_seq >= h.dst_seq) {
      send_rrep_from_route(h, *e);
      return;
    }
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Pure forwarding hop: TTL + hop count are cell writes; the flood's
  // body is shared by every relay without a clone.
  --p.mutable_hop().ttl;
  p.mutable_hop().hops = hop_count;
  rebroadcast_jittered(std::move(p), rng_);
}

void Aodv::send_rrep_as_destination(const AodvRreqHeader& req) {
  // RFC 3561 §6.6.1: bump own seq to max(own, rreq.dst_seq).
  seq_ = std::max(seq_ + 1, req.dst_seq);
  AodvRrepHeader h;
  h.orig = req.orig;
  h.dst = self();
  h.dst_seq = seq_;
  h.lifetime = cfg_.active_route_timeout;
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kAodvRrep;
  common.src = self();
  common.dst = req.orig;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_hop().hops = 0;  // hop count: the destination itself
  p.mutable_routing() = h;
  RouteEntry* back = find_valid(req.orig);
  if (back == nullptr) return;  // reverse route vanished already
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/true);
}

void Aodv::send_rrep_from_route(const AodvRreqHeader& req,
                                const RouteEntry& route) {
  AodvRrepHeader h;
  h.orig = req.orig;
  h.dst = req.dst;
  h.dst_seq = route.dst_seq;
  h.lifetime = route.expires - now();
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kAodvRrep;
  common.src = self();
  common.dst = req.orig;
  common.uid = ctx_.uids->next();
  common.originated = now();
  p.mutable_hop().ttl = cfg_.net_diameter_ttl;
  p.mutable_hop().hops = route.hop_count;  // distance we already know
  p.mutable_routing() = h;
  RouteEntry* back = find_valid(req.orig);
  if (back == nullptr) return;
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/true);
}

void Aodv::handle_rrep(Packet&& p, NodeId from) {
  const auto& h = p.header<AodvRrepHeader>();
  const auto hop_count = static_cast<std::uint8_t>(p.hop().hops + 1);
  // Forward route to the destination through `from`.
  update_route(h.dst, from, hop_count, h.dst_seq, /*seq_known=*/true,
               h.lifetime);
  if (from != h.dst) {
    update_route(from, from, 1, 0, false, cfg_.active_route_timeout);
  }
  if (h.orig == self()) {
    flush_buffer(h.dst);
    return;
  }
  const NodeId orig = h.orig;
  RouteEntry* back = find_valid(orig);
  if (back == nullptr) {
    drop(p, net::DropReason::kNoRoute);
    return;
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  // Pure forwarding hop: TTL + hop count are cell writes, no clone.
  --p.mutable_hop().ttl;
  p.mutable_hop().hops = hop_count;
  refresh(orig);
  send_to_mac(std::move(p), back->next_hop, /*originated_here=*/false);
}

void Aodv::handle_rerr(Packet&& p, NodeId from) {
  const auto& h = p.header<AodvRerrHeader>();
  AodvRerrHeader::List propagate;
  for (const auto& u : h.unreachable) {
    auto it = routes_.find(u.dst);
    if (it == routes_.end() || !it->second.valid) continue;
    if (it->second.next_hop != from) continue;
    it->second.valid = false;
    it->second.dst_seq = std::max(it->second.dst_seq, u.seq);
    propagate.push_back(u);
  }
  if (!propagate.empty()) send_rerr(std::move(propagate));
}

void Aodv::handle_data(Packet&& p, NodeId from) {
  refresh(p.common().src);
  if (from != p.common().src) refresh(from);
  if (p.common().dst == self()) {
    trace(net::TraceOp::kDeliver, p);
    ctx_.deliver(std::move(p), from);
    return;
  }
  if (p.hop().ttl <= 1) {
    drop(p, net::DropReason::kTtlExpired);
    return;
  }
  if (RouteEntry* e = find_valid(p.common().dst)) {
    refresh(p.common().dst);
    --p.mutable_hop().ttl;
    send_to_mac(std::move(p), e->next_hop, /*originated_here=*/false);
    return;
  }
  // No route at an intermediate node: report upstream, drop the packet.
  auto it = routes_.find(p.common().dst);
  const std::uint32_t seq = it != routes_.end() ? it->second.dst_seq + 1 : 1;
  send_rerr({AodvRerrHeader::Unreachable{p.common().dst, seq}});
  drop(p, net::DropReason::kNoRoute);
}

void Aodv::send_rerr(AodvRerrHeader::List lost) {
  AodvRerrHeader h;
  h.unreachable = std::move(lost);
  Packet p;
  auto& common = p.mutable_common();
  common.kind = PacketKind::kAodvRerr;
  common.src = self();
  common.dst = net::kBroadcastId;
  common.uid = ctx_.uids->next();
  common.originated = now();
  // RERRs travel hop by hop, re-issued by each upstream.
  p.mutable_hop().ttl = 1;
  p.mutable_routing() = std::move(h);
  send_to_mac(std::move(p), net::kBroadcastId, /*originated_here=*/true);
}

void Aodv::on_link_failure(const Packet& packet, NodeId next_hop) {
  // Invalidate every route through the dead hop and collect them for the
  // RERR (RFC 3561 §6.11).
  AodvRerrHeader::List lost;
  for (auto& [dst, e] : routes_) {
    if (e.valid && e.next_hop == next_hop) {
      e.valid = false;
      ++e.dst_seq;  // future info must be strictly fresher
      lost.push_back({dst, e.dst_seq});
    }
  }
  // Rescue the failed frame and everything queued behind it: buffer the
  // data and re-discover (RFC 3561 §6.12 local repair at intermediates;
  // plain rediscovery at the source).  Without this, one MAC-level
  // failure kills a whole in-flight TCP window and stalls Reno for an
  // RTO — ns-2's AODV repairs locally for exactly this reason.
  auto rescue = [this](Packet&& p) {
    if (p.hop().ttl <= 1) {
      drop(p, net::DropReason::kTtlExpired);
      return;
    }
    if (p.is_control()) {
      // Control packets are regenerated by their own timers; dropping is
      // cheaper than repairing a path for them.
      drop(p, net::DropReason::kNoRoute);
      return;
    }
    const NodeId dst = p.common().dst;
    if (RouteEntry* e = find_valid(dst)) {
      refresh(dst);
      ctx_.mac->enqueue(std::move(p), e->next_hop);
      return;
    }
    if (p.common().src != self() && !cfg_.local_repair) {
      // Plain RFC behaviour: intermediates drop; the RERR below tells
      // the source to re-discover.
      drop(p, net::DropReason::kNoRoute);
      return;
    }
    if (auto evicted = buffer_.push(std::move(p), now())) {
      drop(*evicted, net::DropReason::kSendBufferFull);
    }
    if (!pending_.contains(dst)) start_discovery(dst);
  };
  {
    Packet failed = packet;
    rescue(std::move(failed));
  }
  for (net::QueueItem& item : ctx_.mac->take_queued_for(next_hop)) {
    rescue(std::move(item.packet));
  }
  if (!lost.empty()) send_rerr(std::move(lost));
}

}  // namespace mts::routing::aodv
