#pragma once

#include <cstdint>
#include <unordered_map>

#include "routing/flood_cache.hpp"
#include "routing/protocol.hpp"
#include "routing/send_buffer.hpp"
#include "sim/timer.hpp"

namespace mts::routing::aodv {

/// Tunables, at ns-2 / RFC 3561 defaults used by 2005-era MANET studies.
struct AodvConfig {
  sim::Time active_route_timeout = sim::Time::sec(10);
  sim::Time rrep_wait = sim::Time::sec(1);     ///< per RREQ attempt
  std::uint32_t rreq_retries = 3;
  std::uint8_t net_diameter_ttl = 32;
  bool intermediate_reply = true;              ///< reply-from-route (RFC default)
  /// RFC 3561 §6.12 local repair (optional in the RFC): intermediates
  /// buffer data hitting a broken link and re-discover the destination
  /// themselves.  Off by default — the 2005-era ns-2 AODV the paper
  /// compared against drops + RERRs, and that difference is part of why
  /// MTS wins Figs. 5/9/11 there.  The ablation benches flip this.
  bool local_repair = false;
  std::size_t buffer_capacity = 64;
  sim::Time buffer_max_age = sim::Time::sec(30);
  sim::Time purge_period = sim::Time::sec(1);  ///< expired-route sweep
};

/// Ad hoc On-demand Distance Vector routing (RFC 3561 subset).
///
/// Implemented: RREQ flood with (orig, id) dedup, destination sequence
/// numbers, reverse/forward route installation, intermediate RREP from a
/// fresh-enough route, RERR on link failure (detected via MAC feedback,
/// not HELLOs — matching the paper's setup), active-route lifetime
/// refresh on use, bounded send buffer with RREQ retry/backoff.
/// Omitted (not exercised by the paper): expanding-ring search,
/// gratuitous RREP, local repair, multicast.
class Aodv final : public RoutingProtocol {
 public:
  Aodv(RoutingContext ctx, AodvConfig cfg, sim::Rng rng);

  void start() override;
  void send_from_transport(net::Packet packet) override;
  void receive_from_mac(net::Packet packet, net::NodeId from) override;
  void on_link_failure(const net::Packet& packet,
                       net::NodeId next_hop) override;
  [[nodiscard]] const char* name() const override { return "AODV"; }

  // --- introspection for tests ---------------------------------------
  struct RouteEntry {
    net::NodeId next_hop = net::kNoNode;
    std::uint8_t hop_count = 0;
    std::uint32_t dst_seq = 0;
    bool valid_seq = false;
    bool valid = false;
    sim::Time expires;
  };
  [[nodiscard]] const RouteEntry* route_to(net::NodeId dst) const;
  [[nodiscard]] std::uint32_t own_seq() const { return seq_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  struct PendingDiscovery {
    std::uint32_t retries = 0;
    sim::EventId timer = sim::kInvalidEvent;
  };

  void handle_rreq(net::Packet&& p, net::NodeId from);
  void handle_rrep(net::Packet&& p, net::NodeId from);
  void handle_rerr(net::Packet&& p, net::NodeId from);
  void handle_data(net::Packet&& p, net::NodeId from);

  void start_discovery(net::NodeId dst);
  void send_rreq(net::NodeId dst);
  void discovery_timeout(net::NodeId dst);
  void send_rrep_as_destination(const net::AodvRreqHeader& req);
  void send_rrep_from_route(const net::AodvRreqHeader& req,
                            const RouteEntry& route);
  void send_rerr(net::AodvRerrHeader::List lost);
  void flush_buffer(net::NodeId dst);

  /// Installs/updates a route if the new information is fresher (higher
  /// seq) or equally fresh and shorter.  Returns true when updated.
  bool update_route(net::NodeId dst, net::NodeId next_hop,
                    std::uint8_t hop_count, std::uint32_t seq, bool seq_known,
                    sim::Time lifetime);
  void refresh(net::NodeId dst);
  RouteEntry* find_valid(net::NodeId dst);
  void purge_expired();

  AodvConfig cfg_;
  sim::Rng rng_;
  std::uint32_t seq_ = 0;       ///< own sequence number
  std::uint32_t rreq_id_ = 0;
  std::unordered_map<net::NodeId, RouteEntry> routes_;
  std::unordered_map<net::NodeId, PendingDiscovery> pending_;
  FloodCache rreq_seen_;
  SendBuffer buffer_;
  std::vector<net::Packet> take_scratch_;  ///< reused by flush paths
  sim::PeriodicTimer purge_timer_;
};

}  // namespace mts::routing::aodv
