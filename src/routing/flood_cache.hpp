#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "net/node_id.hpp"

namespace mts::routing {

/// Remembers which flood packets (RREQs) this node has already seen, so
/// duplicates are dropped instead of re-broadcast.  Bounded FIFO: old
/// entries age out by insertion order, which is safe because broadcast
/// ids are monotonically increasing per originator.
class FloodCache {
 public:
  explicit FloodCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Returns true if (orig, id) was new — and records it.
  bool check_and_insert(net::NodeId orig, std::uint32_t id) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(orig) << 32) | std::uint64_t{id};
    if (seen_.contains(key)) return false;
    seen_.insert(key);
    order_.push_back(key);
    if (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  [[nodiscard]] bool contains(net::NodeId orig, std::uint32_t id) const {
    return seen_.contains((static_cast<std::uint64_t>(orig) << 32) |
                          std::uint64_t{id});
  }

  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
};

}  // namespace mts::routing
