#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mts::tcp {

/// Shared metrics record for one TCP flow; the source and sink sides
/// write disjoint fields, the harness reads them after the run.
struct FlowStats {
  // --- source side ----------------------------------------------------
  std::uint64_t data_packets_sent = 0;    ///< transmissions incl. retx
  std::uint64_t unique_segments_sent = 0; ///< highest seq handed to routing
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t acks_received = 0;

  // --- sink side -------------------------------------------------------
  std::uint64_t data_packets_received = 0;   ///< arrivals incl. duplicates
  std::uint64_t unique_segments_delivered = 0;
  std::uint64_t acks_sent = 0;
  double delay_sum_s = 0.0;     ///< sum of per-packet end-to-end delays
  std::uint64_t delay_samples = 0;
  sim::Time first_delivery = sim::Time::max();
  sim::Time last_delivery = sim::Time::zero();
  /// Unique segments delivered in each whole second of simulation time
  /// (Fig. 9's "throughput over the simulation time").
  std::vector<std::uint32_t> deliveries_per_second;

  // --- derived ----------------------------------------------------------
  [[nodiscard]] double avg_delay_s() const {
    return delay_samples == 0 ? 0.0
                              : delay_sum_s / static_cast<double>(delay_samples);
  }
  /// Goodput in unique segments per second over [start, end].
  [[nodiscard]] double throughput_segments_per_s(sim::Time start,
                                                 sim::Time end) const {
    const double dur = (end - start).to_seconds();
    return dur <= 0.0
               ? 0.0
               : static_cast<double>(unique_segments_delivered) / dur;
  }
  /// The paper's Fig. 10 metric: arrivals / transmissions.
  [[nodiscard]] double delivery_rate() const {
    return data_packets_sent == 0
               ? 0.0
               : static_cast<double>(data_packets_received) /
                     static_cast<double>(data_packets_sent);
  }

  void record_delivery_second(sim::Time at) {
    const auto sec = static_cast<std::size_t>(at.to_seconds());
    if (deliveries_per_second.size() <= sec) {
      deliveries_per_second.resize(sec + 1, 0);
    }
    ++deliveries_per_second[sec];
  }
};

}  // namespace mts::tcp
