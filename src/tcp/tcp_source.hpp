#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/counters.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "tcp/flow_stats.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/tcp_config.hpp"

namespace mts::tcp {

/// One-way TCP sender with an infinite (FTP-style) backlog, in the mould
/// of ns-2's `Agent/TCP` + `Application/FTP` pair the paper simulates.
///
/// Implements slow start, congestion avoidance, fast retransmit, and —
/// depending on `TcpConfig::variant` — Tahoe restart, Reno fast
/// recovery, or NewReno partial-ACK recovery.  RTO per RFC 6298 with
/// Karn's algorithm (timestamps echoed by the sink carry a retransmit
/// flag that suppresses the sample).
class TcpSource {
 public:
  using SendFn = std::function<void(net::Packet&&)>;

  TcpSource(sim::Scheduler& sched, SendFn send, net::NodeId self,
            net::NodeId dst, std::uint16_t flow_id, TcpConfig cfg,
            net::UidSource* uids, net::Counters* counters, FlowStats* stats);

  /// Begins transmitting at absolute time `at`.
  void start(sim::Time at);

  /// Caps the backlog at `segments` (sequence numbers 1..segments) and
  /// fires `done` exactly once, when the final segment is cumulatively
  /// acknowledged.  Without it the source keeps its ns-2 infinite-FTP
  /// behavior.  `done` runs from inside ACK processing: it must not
  /// destroy this source synchronously.
  void set_transfer(std::uint32_t segments, std::function<void()> done);

  /// Hands an ACK packet (routed to this node) to the sender.
  void on_ack(const net::Packet& ack);

  // --- inspection -------------------------------------------------------
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint32_t ssthresh() const { return ssthresh_; }
  [[nodiscard]] std::uint32_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::uint32_t snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] bool in_fast_recovery() const { return in_fr_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const std::vector<std::pair<sim::Time, double>>& cwnd_trace()
      const {
    return cwnd_trace_;
  }
  [[nodiscard]] net::NodeId destination() const { return dst_; }
  [[nodiscard]] std::uint16_t flow_id() const { return flow_id_; }

 private:
  void send_window();
  /// Sends segment `seq`; whether it is a retransmission is derived from
  /// the high-water mark of previously sent sequence numbers.
  void transmit_segment(std::uint32_t seq);
  void on_new_ack(std::uint32_t ack, const net::TcpHeader& h);
  void on_dup_ack();
  void enter_fast_retransmit();
  void on_rto();
  void arm_rto();
  void maybe_complete();
  void note_cwnd() {
    if (cfg_.trace_cwnd) cwnd_trace_.emplace_back(sched_->now(), cwnd_);
  }
  [[nodiscard]] std::uint32_t window() const {
    const auto w = static_cast<std::uint32_t>(cwnd_);
    return std::min(w, cfg_.max_window);
  }
  [[nodiscard]] std::uint32_t flight_size() const {
    return snd_nxt_ - snd_una_;
  }

  sim::Scheduler* sched_;
  SendFn send_;
  net::NodeId self_;
  net::NodeId dst_;
  std::uint16_t flow_id_;
  TcpConfig cfg_;
  net::UidSource* uids_;
  net::Counters* counters_;
  FlowStats* stats_;

  // Sequence space in segments; 1-based so that ack==1 means "nothing
  // received yet, expecting segment 1".
  std::uint32_t snd_una_ = 1;
  std::uint32_t snd_nxt_ = 1;
  std::uint32_t max_seq_sent_ = 0;  ///< high-water mark (retx detection)
  double cwnd_ = 1.0;
  std::uint32_t ssthresh_;
  std::uint32_t dupacks_ = 0;
  bool in_fr_ = false;
  std::uint32_t recover_ = 0;  ///< NewReno recovery point
  std::uint32_t limit_ = 0;    ///< last segment of a finite transfer; 0 = FTP
  bool done_fired_ = false;
  std::function<void()> on_done_;

  RttEstimator rtt_;
  sim::Timer rto_timer_;
  sim::Timer start_timer_;  ///< defers the first window to `start(at)`
  std::vector<std::pair<sim::Time, double>> cwnd_trace_;
};

}  // namespace mts::tcp
