#include "tcp/tcp_source.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace mts::tcp {

const char* tcp_variant_name(TcpVariant v) {
  switch (v) {
    case TcpVariant::kTahoe: return "Tahoe";
    case TcpVariant::kReno: return "Reno";
    case TcpVariant::kNewReno: return "NewReno";
  }
  return "?";
}

TcpSource::TcpSource(sim::Scheduler& sched, SendFn send, net::NodeId self,
                     net::NodeId dst, std::uint16_t flow_id, TcpConfig cfg,
                     net::UidSource* uids, net::Counters* counters,
                     FlowStats* stats)
    : sched_(&sched),
      send_(std::move(send)),
      self_(self),
      dst_(dst),
      flow_id_(flow_id),
      cfg_(cfg),
      uids_(uids),
      counters_(counters),
      stats_(stats),
      ssthresh_(cfg.max_window),
      rtt_(cfg_),
      rto_timer_(sched, [this] { on_rto(); }, sim::EventCategory::kTransport),
      start_timer_(sched, [this] { send_window(); },
                   sim::EventCategory::kTransport) {
  sim::require_config(cfg.segment_bytes > 0, "TcpConfig: segment_bytes == 0");
  sim::require_config(cfg.max_window >= 2, "TcpConfig: max_window < 2");
  sim::require_config(cfg.dupack_threshold >= 1,
                      "TcpConfig: dupack_threshold < 1");
}

void TcpSource::start(sim::Time at) { start_timer_.schedule_at(at); }

void TcpSource::set_transfer(std::uint32_t segments,
                             std::function<void()> done) {
  sim::require_config(segments >= 1, "TcpSource: zero-length transfer");
  limit_ = segments;
  on_done_ = std::move(done);
}

void TcpSource::send_window() {
  while (snd_nxt_ < snd_una_ + window() &&
         (limit_ == 0 || snd_nxt_ <= limit_)) {
    transmit_segment(snd_nxt_);
    ++snd_nxt_;
  }
  if (!rto_timer_.is_pending() && flight_size() > 0) arm_rto();
}

void TcpSource::transmit_segment(std::uint32_t seq) {
  const bool is_retx = seq <= max_seq_sent_;
  max_seq_sent_ = std::max(max_seq_sent_, seq);
  stats_->unique_segments_sent = max_seq_sent_;
  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = net::PacketKind::kTcpData;
  common.src = self_;
  common.dst = dst_;
  common.uid = uids_->next();
  common.payload_bytes = cfg_.segment_bytes;
  common.originated = sched_->now();
  net::TcpHeader h;
  h.seq = seq;
  h.flow_id = flow_id_;
  h.ts = sched_->now();
  h.retransmit = is_retx;
  p.mutable_tcp() = h;
  ++stats_->data_packets_sent;
  if (is_retx) ++stats_->retransmits;
  if (counters_ != nullptr) ++counters_->sent_data;
  send_(std::move(p));
}

void TcpSource::on_ack(const net::Packet& ack) {
  sim::require(ack.has_tcp(), "TcpSource: ACK without TCP header");
  const net::TcpHeader& h = ack.tcp();
  if (h.flow_id != flow_id_) return;
  ++stats_->acks_received;
  if (h.ack > snd_una_) {
    on_new_ack(h.ack, h);
  } else if (h.ack == snd_una_ && flight_size() > 0) {
    on_dup_ack();
  }
  send_window();
}

void TcpSource::on_new_ack(std::uint32_t ack, const net::TcpHeader& h) {
  // Karn: sample only acks triggered by first transmissions.
  if (!h.retransmit && h.ts > sim::Time::zero()) {
    rtt_.sample(sched_->now() - h.ts);
  }
  if (in_fr_) {
    if (cfg_.variant == TcpVariant::kNewReno && ack <= recover_) {
      // Partial ACK: the next hole is lost too.  Retransmit it, deflate
      // by the amount acked, keep recovering.
      const double acked = ack - snd_una_;
      snd_una_ = ack;
      transmit_segment(snd_una_);
      cwnd_ = std::max(1.0, cwnd_ - acked + 1.0);
      arm_rto();
      note_cwnd();
      return;
    }
    // Full ACK (NewReno) or any new ACK (Reno): leave fast recovery.
    in_fr_ = false;
    cwnd_ = ssthresh_;
    dupacks_ = 0;
  } else {
    dupacks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += ack - snd_una_;  // slow start: +1 per acked segment
    } else {
      cwnd_ += static_cast<double>(ack - snd_una_) / cwnd_;  // AIMD
    }
  }
  cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_window));
  snd_una_ = ack;
  if (flight_size() == 0) {
    rto_timer_.cancel();
  } else {
    arm_rto();
  }
  note_cwnd();
  maybe_complete();
}

void TcpSource::maybe_complete() {
  // A NewReno partial ACK can't complete the transfer (partial means
  // ack <= recover_ < limit_ + 1), so checking here covers every path
  // that advances snd_una_ past the limit.
  if (limit_ == 0 || done_fired_ || snd_una_ <= limit_) return;
  done_fired_ = true;
  if (on_done_) on_done_();
}

void TcpSource::on_dup_ack() {
  ++dupacks_;
  if (in_fr_) {
    if (cfg_.variant != TcpVariant::kTahoe) {
      cwnd_ += 1.0;  // window inflation while recovering
      cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_window) +
                                  cfg_.dupack_threshold);
    }
    return;
  }
  if (dupacks_ == cfg_.dupack_threshold) enter_fast_retransmit();
}

void TcpSource::enter_fast_retransmit() {
  ++stats_->fast_retransmits;
  ssthresh_ = std::max<std::uint32_t>(flight_size() / 2, 2);
  recover_ = snd_nxt_ - 1;
  transmit_segment(snd_una_);
  if (cfg_.variant == TcpVariant::kTahoe) {
    cwnd_ = 1.0;
    dupacks_ = 0;
  } else {
    cwnd_ = static_cast<double>(ssthresh_) + cfg_.dupack_threshold;
    in_fr_ = true;
  }
  arm_rto();
  note_cwnd();
}

void TcpSource::on_rto() {
  if (flight_size() == 0) return;
  ++stats_->timeouts;
  ssthresh_ = std::max<std::uint32_t>(flight_size() / 2, 2);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_fr_ = false;
  rtt_.backoff();
  // Go-back-N (RFC 5681 §3.1 / ns-2 slowdown): everything past snd_una
  // is presumed lost; rewind and let slow start re-walk the window.
  // The sink's out-of-order buffer makes the cumulative ACKs jump over
  // whatever did survive.
  snd_nxt_ = snd_una_;
  send_window();
  arm_rto();
  note_cwnd();
}

void TcpSource::arm_rto() { rto_timer_.schedule_in(rtt_.rto()); }

}  // namespace mts::tcp
