#pragma once

#include "sim/time.hpp"
#include "tcp/tcp_config.hpp"

namespace mts::tcp {

/// Jacobson/Karels smoothed RTT estimation with Karn's rule applied by
/// the caller (no samples from retransmitted segments), per RFC 6298.
class RttEstimator {
 public:
  explicit RttEstimator(const TcpConfig& cfg)
      : cfg_(&cfg), rto_(cfg.initial_rto) {}

  void sample(sim::Time rtt) {
    if (!have_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      have_sample_ = true;
    } else {
      const sim::Time err =
          srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;  // |srtt - rtt|
      rttvar_ = rttvar_ * (1.0 - cfg_->rtt_beta) + err * cfg_->rtt_beta;
      srtt_ = srtt_ * (1.0 - cfg_->rtt_alpha) + rtt * cfg_->rtt_alpha;
    }
    sim::Time rto = srtt_ + rttvar_ * std::int64_t{4};
    rto_ = clamp(rto);
    backoff_ = 1;
  }

  /// Exponential backoff after a retransmission timeout.
  void backoff() {
    backoff_ = std::min<std::uint32_t>(backoff_ * 2, 64);
  }

  [[nodiscard]] sim::Time rto() const {
    return clamp(rto_ * std::int64_t{backoff_});
  }
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  [[nodiscard]] sim::Time rttvar() const { return rttvar_; }
  [[nodiscard]] bool has_sample() const { return have_sample_; }
  [[nodiscard]] std::uint32_t backoff_factor() const { return backoff_; }

 private:
  [[nodiscard]] sim::Time clamp(sim::Time t) const {
    if (t < cfg_->min_rto) return cfg_->min_rto;
    if (t > cfg_->max_rto) return cfg_->max_rto;
    return t;
  }

  const TcpConfig* cfg_;
  bool have_sample_ = false;
  sim::Time srtt_;
  sim::Time rttvar_;
  sim::Time rto_;
  std::uint32_t backoff_ = 1;
};

}  // namespace mts::tcp
