#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mts::tcp {

/// Congestion-control variant.  The paper uses Reno; Tahoe and NewReno
/// are included for the ablation benches.
enum class TcpVariant : std::uint8_t { kTahoe, kReno, kNewReno };

const char* tcp_variant_name(TcpVariant v);

/// One-way TCP (ns-2 `Agent/TCP` style): data flows source -> sink,
/// cumulative ACKs flow back.  Sequence numbers count *segments*, as in
/// ns-2, which keeps the arithmetic transparent in traces and tests.
struct TcpConfig {
  std::uint32_t segment_bytes = 1000;  ///< ns-2 packetSize_ default
  std::uint32_t max_window = 32;       ///< cap on cwnd (segments)
  TcpVariant variant = TcpVariant::kReno;
  std::uint32_t dupack_threshold = 3;
  sim::Time initial_rto = sim::Time::sec(3);
  sim::Time min_rto = sim::Time::sec(1);   ///< RFC 6298 floor
  sim::Time max_rto = sim::Time::sec(64);
  double rtt_alpha = 0.125;  ///< srtt gain  (RFC 6298)
  double rtt_beta = 0.25;    ///< rttvar gain
  /// Record (time, cwnd) samples for diagnostics/ablations.
  bool trace_cwnd = false;
};

}  // namespace mts::tcp
