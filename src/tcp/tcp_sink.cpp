#include "tcp/tcp_sink.hpp"

#include "sim/error.hpp"

namespace mts::tcp {

void TcpSink::on_data(const net::Packet& data) {
  sim::require(data.has_tcp(), "TcpSink: data without TCP header");
  const net::TcpHeader& h = data.tcp();
  if (h.flow_id != flow_id_) return;
  ++stats_->data_packets_received;
  if (counters_ != nullptr) ++counters_->recv_data;

  const std::uint32_t seq = h.seq;
  const bool fresh = seq >= rcv_nxt_ && !ooo_.contains(seq);
  if (fresh) {
    ++stats_->unique_segments_delivered;
    const sim::Time delay = sched_->now() - data.common().originated;
    stats_->delay_sum_s += delay.to_seconds();
    ++stats_->delay_samples;
    stats_->first_delivery = std::min(stats_->first_delivery, sched_->now());
    stats_->last_delivery = std::max(stats_->last_delivery, sched_->now());
    stats_->record_delivery_second(sched_->now());
    if (on_delivery_) on_delivery_(delay);
    ooo_.insert(seq);
    while (ooo_.contains(rcv_nxt_)) {
      ooo_.erase(rcv_nxt_);
      ++rcv_nxt_;
    }
  }
  send_ack(h);
}

void TcpSink::send_ack(const net::TcpHeader& triggering) {
  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = net::PacketKind::kTcpAck;
  common.src = self_;
  common.dst = peer_;
  common.uid = uids_->next();
  common.payload_bytes = 0;
  common.originated = sched_->now();
  net::TcpHeader h;
  h.ack = rcv_nxt_;
  h.flow_id = flow_id_;
  h.ts = triggering.ts;              // echoed for the sender's RTT sample
  h.retransmit = triggering.retransmit;  // Karn's rule travels with it
  p.mutable_tcp() = h;
  ++stats_->acks_sent;
  if (counters_ != nullptr) ++counters_->sent_data;
  send_(std::move(p));
}

}  // namespace mts::tcp
