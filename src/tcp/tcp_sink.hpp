#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "net/counters.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "tcp/flow_stats.hpp"
#include "tcp/tcp_config.hpp"

namespace mts::tcp {

/// One-way TCP receiver (ns-2 `Agent/TCPSink`): buffers out-of-order
/// segments, acknowledges every arriving data packet with the current
/// cumulative ACK, and echoes the sender's timestamp for RTT sampling.
class TcpSink {
 public:
  using SendFn = std::function<void(net::Packet&&)>;

  TcpSink(sim::Scheduler& sched, SendFn send, net::NodeId self,
          net::NodeId peer, std::uint16_t flow_id, net::UidSource* uids,
          net::Counters* counters, FlowStats* stats)
      : sched_(&sched),
        send_(std::move(send)),
        self_(self),
        peer_(peer),
        flow_id_(flow_id),
        uids_(uids),
        counters_(counters),
        stats_(stats) {}

  /// Handles a data packet routed to this node.
  void on_data(const net::Packet& data);

  /// Observer invoked with the end-to-end delay of every *fresh*
  /// delivery (duplicates excluded) — feeds the traffic plane's
  /// percentile digests without widening FlowStats.
  void set_delivery_observer(std::function<void(sim::Time)> fn) {
    on_delivery_ = std::move(fn);
  }

  [[nodiscard]] std::uint32_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::size_t ooo_buffered() const { return ooo_.size(); }

 private:
  void send_ack(const net::TcpHeader& triggering);

  sim::Scheduler* sched_;
  SendFn send_;
  net::NodeId self_;
  net::NodeId peer_;
  std::uint16_t flow_id_;
  net::UidSource* uids_;
  net::Counters* counters_;
  FlowStats* stats_;

  std::uint32_t rcv_nxt_ = 1;    ///< next expected segment
  std::set<std::uint32_t> ooo_;  ///< buffered out-of-order segments
  std::function<void(sim::Time)> on_delivery_;
};

}  // namespace mts::tcp
