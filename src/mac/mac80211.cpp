#include "mac/mac80211.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace mts::mac {

using phy::Frame;
using phy::FrameType;

Mac80211::Mac80211(sim::Scheduler& sched, phy::Radio& radio, MacConfig cfg,
                   sim::Rng rng, net::Counters* counters)
    : sched_(&sched),
      radio_(&radio),
      cfg_(cfg),
      rng_(rng),
      counters_(counters),
      queue_(cfg.queue_capacity),
      cw_(cfg.cw_min),
      access_timer_(sched, [this] { access_timer_fired(); },
                    sim::EventCategory::kMac),
      response_timer_(
          sched,
          [this] {
            if (state_ == State::kWaitAck) ack_timeout();
            else if (state_ == State::kWaitCts) cts_timeout();
          },
          sim::EventCategory::kMac),
      tx_defer_timer_(
          sched,
          [this] {
            if (!current_.has_value() || radio_->transmitting()) return;
            send_data_frame();
          },
          sim::EventCategory::kMac) {
  sim::require_config(cfg.cw_min > 0 && cfg.cw_max >= cfg.cw_min,
                      "MacConfig: bad contention window");
  sim::require_config(cfg.data_rate_bps > 0 && cfg.basic_rate_bps > 0,
                      "MacConfig: bad rates");
  radio_->set_callbacks(phy::Radio::Callbacks{
      [this](const Frame& f) { on_frame(f); },
      [this](bool busy) { on_medium(busy); },
      [this] { on_tx_done(); },
      [this] {
        // EIFS (802.11 §9.2.3.4): after an undecodable reception, defer
        // long enough for the frame's possible ACK to complete — the
        // hidden-ACK protection basic access depends on.
        eifs_until_ = sched_->now() + cfg_.sifs + ack_airtime() + cfg_.difs;
      },
  });
}

bool Mac80211::enqueue(net::Packet packet, net::NodeId next_hop) {
  auto dropped = queue_.enqueue(net::QueueItem{std::move(packet), next_hop});
  if (dropped.has_value()) {
    if (counters_ != nullptr) counters_->drop(net::DropReason::kQueueFull);
    if (cb_.on_drop) cb_.on_drop(dropped->packet, net::DropReason::kQueueFull);
  }
  kick();
  // "Accepted" unless the offered packet itself was the victim.
  return !dropped.has_value();
}

std::vector<net::QueueItem> Mac80211::take_queued_for(net::NodeId hop) {
  std::vector<net::QueueItem> out;
  queue_.drain_next_hop(hop,
                        [&out](net::QueueItem&& i) { out.push_back(std::move(i)); });
  return out;
}

bool Mac80211::uses_rts(const net::QueueItem& item) const {
  if (cfg_.rts_threshold_bytes == 0) return false;
  if (item.next_hop == net::kBroadcastId) return false;
  return frame_bytes(item.packet) >= cfg_.rts_threshold_bytes;
}

// --------------------------------------------------------------------------
// Contention state machine.
// --------------------------------------------------------------------------

void Mac80211::kick() {
  if (state_ == State::kWaitAck || state_ == State::kWaitCts) return;
  if (tx_kind_ != TxKind::kNone) return;  // our frame is on the air
  if (!current_.has_value()) {
    auto next = queue_.dequeue();
    if (!next.has_value()) {
      state_ = State::kIdle;
      return;
    }
    current_ = std::move(next);
    retries_ = 0;
    cw_ = cfg_.cw_min;
  }
  state_ = State::kAccess;

  if (radio_->medium_busy()) {
    // Frozen: the idle edge re-kicks us.
    access_timer_.cancel();
    phase_ = AccessPhase::kNone;
    return;
  }
  const sim::Time now = sched_->now();
  if (now < nav_end_) {
    // Virtual carrier: wake when the NAV expires.
    phase_ = AccessPhase::kNav;
    access_timer_.schedule_at(nav_end_);
    return;
  }
  const sim::Time idle_start = std::max(idle_since_, nav_end_);
  const sim::Time difs_end = std::max(idle_start + cfg_.difs, eifs_until_);
  if (bo_slots_ < 0) {
    // No backoff pending: transmit as soon as the medium has been idle
    // for a full DIFS (802.11 immediate access).
    if (now >= difs_end) {
      transmit_current();
    } else {
      phase_ = AccessPhase::kDifs;
      access_timer_.schedule_at(difs_end);
    }
    return;
  }
  // Backoff counts down only after DIFS.
  const sim::Time resume = std::max(now, difs_end);
  backoff_countdown_start_ = resume;
  phase_ = AccessPhase::kBackoff;
  access_timer_.schedule_at(resume + cfg_.slot * std::int64_t{bo_slots_});
}

void Mac80211::access_timer_fired() {
  const AccessPhase phase = phase_;
  phase_ = AccessPhase::kNone;
  if (radio_->medium_busy() || radio_->transmitting()) {
    // A response frame of ours (ACK/CTS) or late energy got in the way;
    // re-contend.
    kick();
    return;
  }
  switch (phase) {
    case AccessPhase::kNav:
      kick();
      return;
    case AccessPhase::kDifs:
      transmit_current();
      return;
    case AccessPhase::kBackoff:
      bo_slots_ = -1;  // fully counted down
      transmit_current();
      return;
    case AccessPhase::kNone:
      return;  // stale fire; ignore
  }
}

void Mac80211::on_medium(bool busy) {
  if (busy) {
    if (phase_ == AccessPhase::kBackoff) {
      // Freeze: bank the fully elapsed slots.
      const sim::Time elapsed = sched_->now() - backoff_countdown_start_;
      const auto consumed = static_cast<std::int32_t>(
          elapsed.nanoseconds() / cfg_.slot.nanoseconds());
      bo_slots_ = std::max(0, bo_slots_ - consumed);
    }
    if (phase_ != AccessPhase::kNone) {
      access_timer_.cancel();
      phase_ = AccessPhase::kNone;
    }
  } else {
    idle_since_ = sched_->now();
    kick();
  }
}

void Mac80211::transmit_current() {
  sim::require(current_.has_value(), "Mac: transmit without a frame");
  if (radio_->medium_busy() || radio_->transmitting()) {
    kick();
    return;
  }
  if (uses_rts(*current_)) {
    Frame rts;
    rts.type = FrameType::kRts;
    rts.transmitter = id();
    rts.receiver = current_->next_hop;
    rts.bytes = cfg_.rts_bytes;
    // NAV covers CTS + DATA + ACK and the three SIFS gaps.
    rts.nav = cfg_.sifs * std::int64_t{3} + cts_airtime() +
              airtime(frame_bytes(current_->packet), cfg_.data_rate_bps) +
              ack_airtime();
    tx_kind_ = TxKind::kRts;
    state_ = State::kWaitCts;
    radio_->start_transmit(rts, airtime(cfg_.rts_bytes, cfg_.basic_rate_bps));
    return;
  }
  send_data_frame();
}

void Mac80211::send_data_frame() {
  const bool broadcast = current_->next_hop == net::kBroadcastId;
  Frame f;
  f.type = FrameType::kData;
  f.transmitter = id();
  f.receiver = current_->next_hop;
  f.bytes = frame_bytes(current_->packet);
  f.seq = (retries_ > 0) ? tx_seq_ : ++tx_seq_;
  f.retry = retries_ > 0;
  f.payload = current_->packet;
  const double rate = broadcast ? cfg_.basic_rate_bps : cfg_.data_rate_bps;
  if (!broadcast) f.nav = cfg_.sifs + ack_airtime();
  tx_kind_ = broadcast ? TxKind::kBroadcast : TxKind::kData;
  if (!broadcast) state_ = State::kWaitAck;
  radio_->start_transmit(f, airtime(f.bytes, rate));
}

void Mac80211::on_tx_done() {
  const TxKind kind = tx_kind_;
  tx_kind_ = TxKind::kNone;
  switch (kind) {
    case TxKind::kBroadcast:
      if (cb_.on_unicast_success) {
        // Broadcasts are fire-and-forget; no callback.
      }
      finish_current();
      return;
    case TxKind::kData:
      // Wait for the ACK: SIFS + ACK airtime + slack.
      response_timer_.schedule_in(cfg_.sifs + ack_airtime() +
                                  cfg_.timeout_slack);
      return;
    case TxKind::kRts:
      response_timer_.schedule_in(cfg_.sifs + cts_airtime() +
                                  cfg_.timeout_slack);
      return;
    case TxKind::kResponse:
    case TxKind::kNone:
      // ACK/CTS sent (or stale); contention resumes via the medium edge.
      return;
  }
}

void Mac80211::ack_timeout() {
  retry_or_fail("data");
}

void Mac80211::cts_timeout() {
  retry_or_fail("rts");
}

void Mac80211::retry_or_fail(const char* /*what*/) {
  ++retries_;
  ++retries_total_;
  if (counters_ != nullptr) ++counters_->mac_retries;
  if (retries_ > cfg_.retry_limit) {
    ++failures_;
    if (counters_ != nullptr)
      counters_->drop(net::DropReason::kMacRetryExceeded);
    net::QueueItem failed = std::move(*current_);
    current_.reset();
    state_ = State::kIdle;
    cw_ = cfg_.cw_min;
    draw_backoff();
    if (cb_.on_unicast_failure)
      cb_.on_unicast_failure(failed.packet, failed.next_hop);
    kick();
    return;
  }
  cw_ = std::min((cw_ + 1) * 2 - 1, cfg_.cw_max);
  draw_backoff();
  state_ = State::kAccess;
  kick();
}

void Mac80211::finish_current() {
  current_.reset();
  state_ = State::kIdle;
  cw_ = cfg_.cw_min;
  draw_backoff();  // post-transmission backoff
  kick();
}

// --------------------------------------------------------------------------
// Receive path.
// --------------------------------------------------------------------------

void Mac80211::on_frame(const Frame& f) {
  eifs_until_ = sim::Time::zero();  // a clean decode ends any EIFS penalty
  const bool for_me = f.receiver == id() || f.is_broadcast();
  if (!for_me) {
    // Virtual carrier sense: honour the transmitter's reservation.
    if (f.nav > sim::Time::zero()) {
      nav_end_ = std::max(nav_end_, sched_->now() + f.nav);
    }
    if (f.type == FrameType::kData && f.has_payload() && cb_.on_sniff) {
      cb_.on_sniff(f);
    }
    return;
  }
  switch (f.type) {
    case FrameType::kData: handle_data(f); return;
    case FrameType::kAck: handle_ack(f); return;
    case FrameType::kRts: handle_rts(f); return;
    case FrameType::kCts: handle_cts(f); return;
  }
}

void Mac80211::handle_data(const Frame& f) {
  if (!f.is_broadcast()) {
    // ACK first (even duplicates get re-ACKed — the sender missed ours).
    response_due(f);
    if (rx_seq_cache_.is_duplicate_and_update(f.transmitter, f.seq, f.retry)) {
      return;
    }
  }
  if (cb_.on_sniff && f.has_payload()) cb_.on_sniff(f);
  if (cb_.on_receive && f.has_payload()) {
    net::Packet copy = f.payload;
    cb_.on_receive(std::move(copy), f.transmitter);
  }
}

void Mac80211::handle_ack(const Frame& f) {
  if (state_ != State::kWaitAck || !current_.has_value()) return;
  if (f.transmitter != current_->next_hop) return;
  response_timer_.cancel();
  retries_ = 0;
  net::QueueItem done = std::move(*current_);
  current_.reset();
  state_ = State::kIdle;
  if (cb_.on_unicast_success)
    cb_.on_unicast_success(done.packet, done.next_hop);
  finish_current();
}

void Mac80211::handle_rts(const Frame& f) {
  // Respond with CTS unless our NAV says the medium is reserved.
  if (sched_->now() < nav_end_) return;
  response_due(f);
}

void Mac80211::handle_cts(const Frame& f) {
  if (state_ != State::kWaitCts || !current_.has_value()) return;
  if (f.transmitter != current_->next_hop) return;
  response_timer_.cancel();
  // DATA follows one SIFS after the CTS; the preallocated member timer
  // replaces a per-exchange closure (only one RTS/CTS exchange can be
  // outstanding — we are its initiator).
  tx_defer_timer_.schedule_in(cfg_.sifs);
  state_ = State::kWaitAck;  // send_data_frame keeps kWaitAck
}

void Mac80211::response_due(const Frame& request) {
  // ACK (for DATA) or CTS (for RTS) exactly one SIFS after the frame end
  // — SIFS access preempts all contention, so no carrier check beyond
  // "our own transmitter is free".
  const FrameType type =
      request.type == FrameType::kData ? FrameType::kAck : FrameType::kCts;
  const net::NodeId to = request.transmitter;
  sim::Time nav = sim::Time::zero();
  if (type == FrameType::kCts) {
    // Remaining reservation: the RTS told us how long the exchange runs.
    nav = request.nav - cfg_.sifs - cts_airtime();
    if (nav < sim::Time::zero()) nav = sim::Time::zero();
  }
  sched_->schedule_in(
      cfg_.sifs, [this, type, to, nav] { send_response(type, to, nav); },
      sim::EventCategory::kMac);
}

void Mac80211::send_response(FrameType type, net::NodeId to, sim::Time nav) {
  if (radio_->transmitting()) return;  // rare clash; requester will retry
  Frame f;
  f.type = type;
  f.transmitter = id();
  f.receiver = to;
  f.bytes = type == FrameType::kAck ? cfg_.ack_bytes : cfg_.cts_bytes;
  f.nav = nav;
  // Responses interrupt any pending access timer implicitly: the radio
  // goes busy, and on_medium(true) freezes the backoff.
  const TxKind saved = tx_kind_;
  tx_kind_ = TxKind::kResponse;
  radio_->start_transmit(f, airtime(f.bytes, cfg_.basic_rate_bps));
  // If we clobbered a pending data tx marker something is wrong.
  sim::require(saved == TxKind::kNone, "Mac: response while frame on air");
}

}  // namespace mts::mac
