#pragma once

#include <array>
#include <cstdint>

#include "net/node_id.hpp"

namespace mts::mac {

/// Receive-side duplicate filter: last accepted MAC sequence number per
/// transmitter, in a fixed open-addressed table.
///
/// The 802.11 rule it implements is unchanged from the unordered_map it
/// replaces: a DATA frame is a duplicate iff its retry bit is set and
/// its seq equals the last seq seen from the same transmitter; the
/// cached seq is always updated.  What changed is the storage — a flat
/// 64-slot array probed linearly, no heap, no rehashing, cache-resident
/// for the handful of live neighbours a node actually hears.
///
/// Eviction: when a probe window is full of other transmitters the
/// least-recently-touched slot in the window is recycled.  Losing an
/// entry can only *accept* a retransmission that a boundless map would
/// have dropped (never the reverse), and only once more than
/// `kSlots` distinct transmitters hash-collide — beyond any plausible
/// neighbourhood in the modelled scenarios.
class RxDupCache {
 public:
  /// Records `seq` as the most recent from `from` and reports whether
  /// the frame is a duplicate under the rule above.
  bool is_duplicate_and_update(net::NodeId from, std::uint16_t seq,
                               bool retry) {
    ++tick_;
    const std::uint32_t h =
        (static_cast<std::uint32_t>(from) * 2654435761u) & (kSlots - 1);
    std::uint32_t victim = h;
    std::uint32_t victim_age = 0;
    for (std::uint32_t i = 0; i < kProbe; ++i) {
      Slot& s = slots_[(h + i) & (kSlots - 1)];
      if (!s.used) {
        s = Slot{from, seq, tick_, true};
        return false;
      }
      if (s.node == from) {
        const bool dup = retry && s.seq == seq;
        s.seq = seq;
        s.stamp = tick_;
        return dup;
      }
      const std::uint32_t age = tick_ - s.stamp;
      if (age >= victim_age) {
        victim_age = age;
        victim = (h + i) & (kSlots - 1);
      }
    }
    slots_[victim] = Slot{from, seq, tick_, true};  // recycle the stalest
    return false;
  }

  void clear() {
    slots_.fill(Slot{});
    tick_ = 0;
  }

  /// True while `from` still owns a slot (introspection for tests).
  [[nodiscard]] bool contains(net::NodeId from) const {
    const std::uint32_t h =
        (static_cast<std::uint32_t>(from) * 2654435761u) & (kSlots - 1);
    for (std::uint32_t i = 0; i < kProbe; ++i) {
      const Slot& s = slots_[(h + i) & (kSlots - 1)];
      if (s.used && s.node == from) return true;
    }
    return false;
  }

  static constexpr std::uint32_t kSlots = 64;  ///< power of two
  static constexpr std::uint32_t kProbe = 8;   ///< linear probe window

 private:
  struct Slot {
    net::NodeId node = net::kNoNode;
    std::uint16_t seq = 0;
    std::uint32_t stamp = 0;
    bool used = false;
  };
  std::array<Slot, kSlots> slots_{};
  std::uint32_t tick_ = 0;
};

}  // namespace mts::mac
