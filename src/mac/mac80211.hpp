#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mac/dup_cache.hpp"
#include "net/counters.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace mts::mac {

/// IEEE 802.11 DSSS timing and policy, at the ns-2 wireless defaults the
/// paper's simulations used (2 Mb/s PHY, long PLCP preamble).
struct MacConfig {
  double data_rate_bps = 2e6;    ///< unicast data payload rate
  double basic_rate_bps = 2e6;   ///< broadcast + control frames
  sim::Time slot = sim::Time::us(20);
  sim::Time sifs = sim::Time::us(10);
  sim::Time difs = sim::Time::us(50);      ///< SIFS + 2 * slot
  sim::Time plcp_overhead = sim::Time::us(192);  ///< preamble + PLCP header
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  std::uint32_t retry_limit = 7;           ///< short retry count
  std::uint32_t data_header_bytes = 28;    ///< MAC header (24) + FCS (4)
  std::uint32_t ack_bytes = 14;
  std::uint32_t rts_bytes = 20;
  std::uint32_t cts_bytes = 14;
  std::size_t queue_capacity = 50;         ///< ns-2 ifq default
  /// Frames at least this large (MAC payload bytes) use RTS/CTS;
  /// 0 disables the handshake entirely (paper-default basic access).
  std::uint32_t rts_threshold_bytes = 0;
  /// Allowance for propagation + turnaround when timing out responses.
  sim::Time timeout_slack = sim::Time::us(30);
};

/// IEEE 802.11 DCF over a `phy::Radio`.
///
/// Implements: physical + virtual (NAV) carrier sense, DIFS deferral,
/// freezing binary-exponential backoff, post-transmission backoff,
/// unicast DATA->ACK with retry limit and link-failure callback,
/// optional RTS/CTS, broadcast without ACK, a priority interface queue,
/// and receive-side duplicate filtering.
///
/// Not modelled (documented simplifications): EIFS after corrupted
/// receptions, fragmentation, and rate adaptation — none of which the
/// paper's 2005 study models either.
class Mac80211 {
 public:
  struct Callbacks {
    /// A decoded frame addressed to this node (or broadcast) carried a
    /// network packet; `from` is the MAC-level transmitter.
    std::function<void(net::Packet&&, net::NodeId from)> on_receive;
    /// Unicast abandoned after the retry limit — the routing protocol's
    /// link-failure signal (paper §III-E "feedback from the MAC layer").
    std::function<void(const net::Packet&, net::NodeId next_hop)>
        on_unicast_failure;
    /// Unicast acknowledged by the next hop.
    std::function<void(const net::Packet&, net::NodeId next_hop)>
        on_unicast_success;
    /// Packet dropped inside the MAC (queue overflow etc.).
    std::function<void(const net::Packet&, net::DropReason)> on_drop;
    /// Every cleanly decoded DATA frame, regardless of its addressee —
    /// promiscuous tap for the eavesdropper / relay census.
    std::function<void(const phy::Frame&)> on_sniff;
  };

  Mac80211(sim::Scheduler& sched, phy::Radio& radio, MacConfig cfg,
           sim::Rng rng, net::Counters* counters);

  Mac80211(const Mac80211&) = delete;
  Mac80211& operator=(const Mac80211&) = delete;

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  [[nodiscard]] net::NodeId id() const { return radio_->id(); }
  [[nodiscard]] const MacConfig& config() const { return cfg_; }

  /// Hands a packet to the link layer.  Returns false if it was dropped
  /// immediately (queue overflow) — the drop callback fires either way.
  bool enqueue(net::Packet packet, net::NodeId next_hop);

  /// Pulls every queued packet whose next hop is `hop` out of the
  /// interface queue (link declared dead by routing).  The in-flight
  /// frame, if any, is not touched — it will fail on its own.
  [[nodiscard]] std::vector<net::QueueItem> take_queued_for(net::NodeId hop);

  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }
  [[nodiscard]] bool idle() const {
    return state_ == State::kIdle && queue_.empty();
  }

  /// Airtime of a MAC frame of `mac_bytes` total bytes at `rate`.
  [[nodiscard]] sim::Time airtime(std::uint32_t mac_bytes, double rate) const {
    return cfg_.plcp_overhead +
           sim::Time::seconds(static_cast<double>(mac_bytes) * 8.0 / rate);
  }

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::uint64_t retries_total() const { return retries_total_; }
  [[nodiscard]] std::uint64_t unicast_failures() const { return failures_; }

 private:
  enum class State : std::uint8_t { kIdle, kAccess, kWaitCts, kWaitAck };
  enum class TxKind : std::uint8_t { kNone, kBroadcast, kData, kRts, kResponse };
  enum class AccessPhase : std::uint8_t { kNone, kNav, kDifs, kBackoff };

  // Radio-facing handlers.
  void on_frame(const phy::Frame& f);
  void on_medium(bool busy);
  void on_tx_done();

  void handle_data(const phy::Frame& f);
  void handle_ack(const phy::Frame& f);
  void handle_rts(const phy::Frame& f);
  void handle_cts(const phy::Frame& f);

  /// Drives the contention state machine; safe to call whenever anything
  /// that gates transmission may have changed.
  void kick();
  void access_timer_fired();
  void transmit_current();
  void send_data_frame();
  void send_response(phy::FrameType type, net::NodeId to, sim::Time nav);
  void response_due(const phy::Frame& f);
  void ack_timeout();
  void cts_timeout();
  void retry_or_fail(const char* what);
  void finish_current();
  void draw_backoff() {
    bo_slots_ = static_cast<std::int32_t>(rng_.uniform_int(0, cw_));
  }

  [[nodiscard]] bool uses_rts(const net::QueueItem& item) const;
  [[nodiscard]] sim::Time ack_airtime() const {
    return airtime(cfg_.ack_bytes, cfg_.basic_rate_bps);
  }
  [[nodiscard]] sim::Time cts_airtime() const {
    return airtime(cfg_.cts_bytes, cfg_.basic_rate_bps);
  }
  [[nodiscard]] std::uint32_t frame_bytes(const net::Packet& p) const {
    return p.wire_bytes() + cfg_.data_header_bytes;
  }

  sim::Scheduler* sched_;
  phy::Radio* radio_;
  MacConfig cfg_;
  sim::Rng rng_;
  net::Counters* counters_;
  Callbacks cb_;

  net::PriQueue queue_;
  std::optional<net::QueueItem> current_;
  State state_ = State::kIdle;
  TxKind tx_kind_ = TxKind::kNone;
  AccessPhase phase_ = AccessPhase::kNone;

  std::uint16_t tx_seq_ = 0;
  std::uint32_t retries_ = 0;
  std::uint32_t cw_;
  std::int32_t bo_slots_ = -1;  ///< -1: no backoff pending
  sim::Time idle_since_ = sim::Time::zero();
  sim::Time nav_end_ = sim::Time::zero();
  sim::Time eifs_until_ = sim::Time::zero();
  sim::Time backoff_countdown_start_ = sim::Time::zero();

  sim::Timer access_timer_;
  sim::Timer response_timer_;  ///< ACK / CTS timeout
  sim::Timer tx_defer_timer_;  ///< SIFS gap between CTS arrival and DATA

  /// Receive-side duplicate filter: last MAC seq per transmitter, in a
  /// fixed open-addressed table (no heap on the per-frame path).
  RxDupCache rx_seq_cache_;

  std::uint64_t retries_total_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace mts::mac
