#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mts::sim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Minimal structured logger for simulator internals.
///
/// Logging is off by default (benchmarks must not pay for I/O); tests
/// and the trace_explorer example turn it on per component.  Not
/// thread-safe across simulators by design: each simulator instance owns
/// its logger, and campaign threads never share one.
class Logger {
 public:
  explicit Logger(std::string component, LogLevel level = LogLevel::kOff,
                  std::ostream* sink = &std::clog)
      : component_(std::move(component)), level_(level), sink_(sink) {}

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(std::ostream* sink) { sink_ = sink; }

  [[nodiscard]] bool enabled(LogLevel lvl) const { return lvl >= level_; }

  template <typename... Args>
  void log(LogLevel lvl, Time now, Args&&... args) const {
    if (!enabled(lvl) || sink_ == nullptr) return;
    std::ostringstream os;
    os << "[" << now.to_seconds() << "s " << component_ << " " << name(lvl) << "] ";
    (os << ... << std::forward<Args>(args));
    os << '\n';
    (*sink_) << os.str();
  }

  template <typename... Args>
  void trace(Time now, Args&&... args) const {
    log(LogLevel::kTrace, now, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Time now, Args&&... args) const {
    log(LogLevel::kDebug, now, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Time now, Args&&... args) const {
    log(LogLevel::kInfo, now, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Time now, Args&&... args) const {
    log(LogLevel::kWarn, now, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Time now, Args&&... args) const {
    log(LogLevel::kError, now, std::forward<Args>(args)...);
  }

  static std::string_view name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

 private:
  std::string component_;
  LogLevel level_;
  std::ostream* sink_;
};

}  // namespace mts::sim
