#pragma once

#include <stdexcept>
#include <string>

namespace mts::sim {

/// Thrown when a simulation-internal invariant is violated (a bug in the
/// simulator or a protocol module, never a property of the scenario).
class SimError : public std::logic_error {
 public:
  explicit SimError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a user-supplied configuration is inconsistent (negative
/// durations, empty node sets, out-of-range indices, ...).  Raised at
/// scenario-build time, before any event executes.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Invariant check that survives NDEBUG builds: simulation correctness
/// depends on these, so they must not be compiled out in benchmarks.
inline void require(bool cond, const char* msg) {
  if (!cond) throw SimError(msg);
}

inline void require_config(bool cond, const std::string& msg) {
  if (!cond) throw ConfigError(msg);
}

}  // namespace mts::sim
