#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.hpp"

namespace mts::sim {

/// RAII one-shot timer bound to a fixed callback.
///
/// Protocol modules own Timers as members; destruction cancels any
/// pending expiry, so a dying node can never fire a dangling callback.
/// Re-scheduling an armed timer moves the expiry (the old event is
/// cancelled), which is the common "restart the timeout" idiom.
class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_expire)
      : sched_(&sched), on_expire_(std::move(on_expire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer to fire `delay` from now.
  void schedule_in(Time delay) {
    cancel();
    id_ = sched_->schedule_in(delay, [this] {
      id_ = kInvalidEvent;
      on_expire_();
    });
  }

  /// Arms (or re-arms) the timer to fire at absolute time `t`.
  void schedule_at(Time t) {
    cancel();
    id_ = sched_->schedule_at(t, [this] {
      id_ = kInvalidEvent;
      on_expire_();
    });
  }

  /// Disarms; no-op if not pending.
  void cancel() {
    if (id_ != kInvalidEvent) {
      sched_->cancel(id_);
      id_ = kInvalidEvent;
    }
  }

  [[nodiscard]] bool is_pending() const { return id_ != kInvalidEvent; }

 private:
  Scheduler* sched_;
  std::function<void()> on_expire_;
  EventId id_ = kInvalidEvent;
};

/// Periodic timer: fires every `period` until cancelled.  The first
/// firing is one period after start() (plus optional initial jitter).
class PeriodicTimer {
 public:
  PeriodicTimer(Scheduler& sched, std::function<void()> on_tick)
      : timer_(sched, [this] { tick(); }), on_tick_(std::move(on_tick)) {}

  void start(Time period, Time initial_delay) {
    require(period > Time::zero(), "PeriodicTimer: period must be positive");
    period_ = period;
    timer_.schedule_in(initial_delay);
  }
  void start(Time period) { start(period, period); }

  void set_period(Time period) {
    require(period > Time::zero(), "PeriodicTimer: period must be positive");
    period_ = period;
  }

  void stop() { timer_.cancel(); }
  [[nodiscard]] bool is_running() const { return timer_.is_pending(); }

 private:
  void tick() {
    timer_.schedule_in(period_);  // re-arm first: on_tick_ may stop()
    on_tick_();
  }

  Timer timer_;
  std::function<void()> on_tick_;
  Time period_ = Time::sec(1);
};

}  // namespace mts::sim
