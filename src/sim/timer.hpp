#pragma once

#include <utility>

#include "sim/scheduler.hpp"

namespace mts::sim {

/// RAII one-shot timer bound to a fixed callback.
///
/// Protocol modules own Timers as members; destruction cancels any
/// pending expiry, so a dying node can never fire a dangling callback.
///
/// The timer is intrusive in the scheduler's event pool: re-arming an
/// armed timer *moves* its existing heap entry (Scheduler::reschedule)
/// instead of cancelling and building a fresh closure — the hot
/// "restart the timeout" idiom in the MAC (backoff freezes, ACK/CTS
/// timeouts) and TCP (RTO restarts) costs two heap sifts and nothing
/// else.  The expiry closure itself is a `this` capture, built at most
/// once per arming cycle and stored inline in the event slot.
class Timer {
 public:
  Timer(Scheduler& sched, EventFn on_expire,
        EventCategory cat = EventCategory::kOther)
      : sched_(&sched), on_expire_(std::move(on_expire)), cat_(cat) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer to fire `delay` from now.
  void schedule_in(Time delay) { schedule_at(sched_->now() + delay); }

  /// Arms (or re-arms) the timer to fire at absolute time `t`.  A
  /// re-arm orders among same-tick events exactly like a fresh
  /// schedule (it draws a new sequence number).
  void schedule_at(Time t) {
    if (id_ != kInvalidEvent && sched_->reschedule(id_, t)) return;
    id_ = sched_->schedule_at(t, [this] { fire(); }, cat_);
  }

  /// Disarms; no-op if not pending.
  void cancel() {
    if (id_ != kInvalidEvent) {
      sched_->cancel(id_);
      id_ = kInvalidEvent;
    }
  }

  [[nodiscard]] bool is_pending() const { return id_ != kInvalidEvent; }

 private:
  void fire() {
    id_ = kInvalidEvent;  // not pending inside the callback; re-arm works
    on_expire_();
  }

  Scheduler* sched_;
  EventFn on_expire_;
  EventId id_ = kInvalidEvent;
  EventCategory cat_;
};

/// Periodic timer: fires every `period` until cancelled.  The first
/// firing is one period after start() (plus optional initial jitter).
class PeriodicTimer {
 public:
  PeriodicTimer(Scheduler& sched, EventFn on_tick,
                EventCategory cat = EventCategory::kOther)
      : timer_(sched, [this] { tick(); }, cat), on_tick_(std::move(on_tick)) {}

  void start(Time period, Time initial_delay) {
    require(period > Time::zero(), "PeriodicTimer: period must be positive");
    period_ = period;
    timer_.schedule_in(initial_delay);
  }
  void start(Time period) { start(period, period); }

  void set_period(Time period) {
    require(period > Time::zero(), "PeriodicTimer: period must be positive");
    period_ = period;
  }

  void stop() { timer_.cancel(); }
  [[nodiscard]] bool is_running() const { return timer_.is_pending(); }

 private:
  void tick() {
    timer_.schedule_in(period_);  // re-arm first: on_tick_ may stop()
    on_tick_();
  }

  Timer timer_;
  EventFn on_tick_;
  Time period_ = Time::sec(1);
};

}  // namespace mts::sim
