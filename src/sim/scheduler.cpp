#include "sim/scheduler.hpp"

namespace mts::sim {

EventId Scheduler::schedule_at(Time t, std::function<void()> fn) {
  require(t >= now_, "Scheduler: cannot schedule into the past");
  require(static_cast<bool>(fn), "Scheduler: empty callback");
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Scheduler::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Scheduler::pop_next(HeapEntry& out) {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (callbacks_.contains(top.id)) {
      out = top;
      return true;
    }
    // Cancelled: lazily discarded.
  }
  return false;
}

void Scheduler::run() {
  stopped_ = false;
  HeapEntry e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.t;
    auto node = callbacks_.extract(e.id);
    ++executed_;
    node.mapped()();
  }
}

void Scheduler::run_until(Time end) {
  require(end >= now_, "Scheduler: run_until into the past");
  stopped_ = false;
  while (!stopped_) {
    if (heap_.empty()) break;
    HeapEntry e;
    // Peek: we must not advance past `end`.
    if (!pop_next(e)) break;
    if (e.t > end) {
      // Put it back; it stays pending for a later run.
      heap_.push(e);
      break;
    }
    now_ = e.t;
    auto node = callbacks_.extract(e.id);
    ++executed_;
    node.mapped()();
  }
  if (now_ < end) now_ = end;
}

std::size_t Scheduler::run_steps(std::size_t n) {
  stopped_ = false;
  std::size_t done = 0;
  HeapEntry e;
  while (done < n && !stopped_ && pop_next(e)) {
    now_ = e.t;
    auto node = callbacks_.extract(e.id);
    ++executed_;
    ++done;
    node.mapped()();
  }
  return done;
}

Time Scheduler::next_event_time() const {
  // The heap may have stale (cancelled) entries on top; we cannot pop
  // from a const method, so scan a copy of the top region only when the
  // top is stale.  The common case (live top) is O(1).
  std::priority_queue<HeapEntry> copy = heap_;
  while (!copy.empty()) {
    if (callbacks_.contains(copy.top().id)) return copy.top().t;
    copy.pop();
  }
  return Time::max();
}

}  // namespace mts::sim
