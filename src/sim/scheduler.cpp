#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace mts::sim {

namespace {

/// An insert that walks past this many list nodes marks the calendar
/// mis-sized and requests a re-fit.
constexpr std::size_t kDisplacementLimit = 32;

}  // namespace

Scheduler::Scheduler() : buckets_(kMinBucketCount) {}

const char* event_category_name(EventCategory c) {
  switch (c) {
    case EventCategory::kOther: return "other";
    case EventCategory::kChannel: return "channel";
    case EventCategory::kPhy: return "phy";
    case EventCategory::kMac: return "mac";
    case EventCategory::kRouting: return "routing";
    case EventCategory::kTransport: return "transport";
    case EventCategory::kSecurity: return "security";
    case EventCategory::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Slot pool.
// ---------------------------------------------------------------------------

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t s = free_head_;
    Slot& slot = slot_at(s);
    free_head_ = slot.next_free;
    slot.next_free = kNullIndex;
    return s;
  }
  require(slot_count_ < kSlotMask, "Scheduler: slot pool exhausted");
  if ((slot_count_ & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void Scheduler::release_slot(std::uint32_t s) {
  Slot& slot = slot_at(s);
  slot.fn.reset();
  slot.live_key = kDeadKey;  // any remaining calendar entry tombstones
  ++slot.gen;                // ids referring to this slot go stale here
  slot.next_free = free_head_;
  free_head_ = s;
}

// ---------------------------------------------------------------------------
// Node arena.
// ---------------------------------------------------------------------------

std::uint32_t Scheduler::node_alloc() const {
  if (node_free_ != kNullIndex) {
    const std::uint32_t n = node_free_;
    node_free_ = node_at(n).next;
    return n;
  }
  if ((node_count_ & (kChunkSize - 1)) == 0) {
    node_chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return node_count_++;
}

void Scheduler::node_free(std::uint32_t n) const {
  node_at(n).next = node_free_;
  node_free_ = n;
}

// ---------------------------------------------------------------------------
// Calendar.
// ---------------------------------------------------------------------------

void Scheduler::insert(Entry e) {
  ++ops_since_rebuild_;
  max_t_ns_ = std::max(max_t_ns_, e.t.nanoseconds());
  if (vt_of(e.t) < base_vt_) {
    // A quiet-stretch re-base (migrate_far) slid the coverage window up
    // to the earliest far event, and this event — scheduled after a
    // peek, legally >= now_ — lands below it.  Redistribute everything
    // from a window re-anchored at now_ so the far/near split below
    // matches the wheel's contents again; otherwise this event could
    // park in far_ past the wheel minimum and pop out of order.
    rebuild(buckets_.size(), shift_);
  }
  if (vt_of(e.t) >= horizon_vt()) {
    // Beyond the wheel's coverage: park in the overflow heap until the
    // window reaches it.  Keeps the one-lap invariant that makes the
    // drain walk short (see the class comment).
    far_.push_back(e);
    std::push_heap(far_.begin(), far_.end(), far_after);
    if (far_.size() >= far_compact_at_) far_compact();
    return;
  }
  wheel_insert(e);
}

void Scheduler::wheel_insert(Entry e) const {
  const std::int64_t vt = vt_of(e.t);
  Bucket& bk = buckets_[static_cast<std::size_t>(vt) & (buckets_.size() - 1)];
  const std::uint32_t n = node_alloc();
  Node& node = node_at(n);
  node.e = e;
  node.next = kNullIndex;
  if (bk.head == kNullIndex) {
    bk.head = bk.tail = n;
    bk.tail_e = e;
  } else if (!e.before(bk.tail_e)) {
    // Monotone times and same-tick bursts (fresh seq) append here; the
    // cached tail key means the only touch of the old tail node is a
    // non-blocking link store.
    node_at(bk.tail).next = n;
    bk.tail = n;
    bk.tail_e = e;
  } else if (e.before(node_at(bk.head).e)) {
    node.next = bk.head;
    bk.head = n;
  } else {
    std::uint32_t cur = bk.head;
    std::size_t walked = 0;
    while (node_at(cur).next != kNullIndex &&
           !e.before(node_at(node_at(cur).next).e)) {
      cur = node_at(cur).next;
      ++walked;
    }
    node.next = node_at(cur).next;
    node_at(cur).next = n;
    // A long walk means this bucket mixes many distinct times — the
    // calendar is mis-sized for the workload; ask for a re-fit.
    if (walked > kDisplacementLimit) resize_requested_ = true;
  }
  ++bucket_entries_;
  // An event landing behind the drain point re-anchors the walk.
  if (vt < cur_vt_) cur_vt_ = vt;
}

void Scheduler::migrate_far() const {
  // Slide the coverage window forward with time (a re-base may already
  // have pushed it further; never pull it back here).
  base_vt_ = std::max(base_vt_, vt_of(now_));
  if (far_.empty()) return;
  std::int64_t horizon = horizon_vt();
  for (;;) {
    if (far_.empty()) return;
    const Entry top = far_.front();
    if (entry_dead(top) || vt_of(top.t) < horizon) {
      std::pop_heap(far_.begin(), far_.end(), far_after);
      far_.pop_back();
      if (entry_dead(top)) {
        --tombstones_;  // cancelled or re-armed while parked
      } else {
        wheel_insert(top);
      }
      continue;
    }
    if (bucket_entries_ != 0) return;
    // The wheel ran dry and everything pending is far: re-base the
    // coverage window (and the drain) at the earliest far event, so a
    // quiet stretch costs one heap pop instead of a lap walk.
    base_vt_ = vt_of(top.t);
    horizon = horizon_vt();
    cur_vt_ = base_vt_;
  }
}

void Scheduler::far_compact() {
  std::size_t kept = 0;
  for (const Entry& e : far_) {
    if (entry_dead(e)) {
      --tombstones_;
      continue;
    }
    far_[kept++] = e;
  }
  far_.resize(kept);
  std::make_heap(far_.begin(), far_.end(), far_after);
  far_compact_at_ = std::max<std::size_t>(64, far_.size() * 2);
}

void Scheduler::pop_head(Bucket& bk) const {
  const std::uint32_t n = bk.head;
  bk.head = node_at(n).next;
  if (bk.head == kNullIndex) bk.tail = kNullIndex;
  node_free(n);
}

bool Scheduler::peek_live() const {
  for (;;) {
    // After migration the wheel is non-empty unless nothing is pending
    // at all (an empty wheel makes migrate_far re-base onto the earliest
    // far event, so it only leaves both empty together).
    migrate_far();
    if (bucket_entries_ == 0) return false;
    const std::size_t mask = buckets_.size() - 1;
    std::size_t empty_steps = 0;
    bool wheel_dry = false;
    while (!wheel_dry) {
      Bucket& bk = buckets_[static_cast<std::size_t>(cur_vt_) & mask];
      while (bk.head != kNullIndex) {
        const Entry& e = node_at(bk.head).e;
        if (entry_dead(e)) {  // tombstone: cancelled, re-armed, or recycled
          pop_head(bk);
          --tombstones_;
          if (--bucket_entries_ == 0) {
            // All that was stored were tombstones; far_ may still hold
            // live events — go back around and migrate.
            wheel_dry = true;
            break;
          }
          continue;
        }
        if (vt_of(e.t) == cur_vt_) return true;  // the global minimum
        break;  // bucket's min belongs to a later lap of the calendar
      }
      if (wheel_dry) break;
      ++cur_vt_;
      if (++empty_steps > buckets_.size()) {
        // A whole lap without a hit: jump straight to the minimum.
        direct_search();
        // The scan may have drained the last tombstones itself.
        wheel_dry = bucket_entries_ == 0;
        empty_steps = 0;
      }
    }
  }
}

void Scheduler::direct_search() const {
  const Entry* best = nullptr;
  for (Bucket& bk : buckets_) {
    while (bk.head != kNullIndex && entry_dead(node_at(bk.head).e)) {
      pop_head(bk);
      --tombstones_;
      --bucket_entries_;
    }
    if (bk.head == kNullIndex) continue;
    const Entry& e = node_at(bk.head).e;
    if (best == nullptr || e.before(*best)) best = &e;
  }
  if (best != nullptr) cur_vt_ = vt_of(best->t);
}

EventFn Scheduler::take_top() {
  Bucket& bk = buckets_[static_cast<std::size_t>(cur_vt_) &
                        (buckets_.size() - 1)];
  const Entry e = node_at(bk.head).e;
  pop_head(bk);
  --bucket_entries_;
  if (bk.head != kNullIndex) {
    // Overlap the next event's slot line with this callback's execution.
    __builtin_prefetch(
        &slot_at(static_cast<std::uint32_t>(node_at(bk.head).e.key & kSlotMask)),
        0, 1);
  }
  const auto s = static_cast<std::uint32_t>(e.key & kSlotMask);
  now_ = e.t;
  base_vt_ = std::max(base_vt_, vt_of(now_));
  EventFn fn = std::move(slot_at(s).fn);
  ++executed_by_[static_cast<std::size_t>(slot_at(s).cat)];
  release_slot(s);  // the event's id dies before its callback runs
  --live_count_;
  ++executed_;
  ++ops_since_rebuild_;
  // Width estimator: EWMA of non-zero pop spacing.
  const std::int64_t gap = e.t.nanoseconds() - last_pop_ns_;
  last_pop_ns_ = e.t.nanoseconds();
  if (gap > 0) ewma_gap_ns_ = (ewma_gap_ns_ * 7 + gap) / 8;
  maybe_resize();
  return fn;
}

void Scheduler::rebuild(std::size_t new_bucket_count, int new_shift) {
  std::vector<Entry>& live = rebuild_scratch_;
  live.clear();
  live.reserve(live_count_);
  for (Bucket& bk : buckets_) {
    for (std::uint32_t n = bk.head; n != kNullIndex; n = node_at(n).next) {
      if (!entry_dead(node_at(n).e)) live.push_back(node_at(n).e);
    }
  }
  for (const Entry& e : far_) {
    if (!entry_dead(e)) live.push_back(e);
  }
  far_.clear();
  // Every node sits in some bucket, so the arena resets wholesale.
  node_free_ = kNullIndex;
  node_count_ = 0;
  std::sort(live.begin(), live.end(),
            [](const Entry& a, const Entry& b) { return a.before(b); });
  buckets_.assign(new_bucket_count, Bucket{});
  shift_ = new_shift;
  tombstones_ = 0;
  bucket_entries_ = 0;
  ops_since_rebuild_ = 0;
  base_vt_ = vt_of(now_);
  cur_vt_ = base_vt_;
  // Split by the new coverage window; within it, globally sorted input
  // makes every relink a tail append.  If the wheel gets anything, the
  // first entry it gets is the global minimum (the split is by time).
  const std::int64_t horizon = horizon_vt();
  const std::size_t mask = buckets_.size() - 1;
  for (const Entry& e : live) {
    const std::int64_t vt = vt_of(e.t);
    if (vt >= horizon) {
      far_.push_back(e);
      continue;
    }
    Bucket& bk = buckets_[static_cast<std::size_t>(vt) & mask];
    const std::uint32_t n = node_alloc();
    Node& node = node_at(n);
    node.e = e;
    node.next = kNullIndex;
    if (bk.head == kNullIndex) {
      bk.head = bk.tail = n;
    } else {
      node_at(bk.tail).next = n;
      bk.tail = n;
    }
    bk.tail_e = e;
    if (bucket_entries_++ == 0) cur_vt_ = vt;
  }
  // Sorted append order already satisfies the heap property (front is
  // the minimum under far_after), but make it explicit and cheap.
  std::make_heap(far_.begin(), far_.end(), far_after);
  far_compact_at_ = std::max<std::size_t>(64, far_.size() * 2);
}

void Scheduler::rebuild_fit() {
  // Width targets ~1 event per bucket window, from the smaller of two
  // estimators: the pop-to-pop spacing EWMA (steady state) and the
  // pending span divided by occupancy (bulk pre-loading, before any
  // pops have calibrated the EWMA).
  const std::int64_t span = max_t_ns_ - now_.nanoseconds();
  const std::int64_t per_event =
      live_count_ > 0 ? span / static_cast<std::int64_t>(live_count_) : span;
  const auto width = static_cast<std::uint64_t>(std::clamp<std::int64_t>(
      std::min(ewma_gap_ns_, per_event), 1, std::int64_t{1} << 40));
  const int new_shift = static_cast<int>(std::bit_width(width)) - 1;
  const std::size_t new_buckets = std::min(
      std::bit_ceil(std::max(live_count_ * 2, kMinBucketCount)),
      kMaxBucketCount);
  // A displacement-triggered re-fit rebuilds even at identical geometry:
  // the rebuild itself compacts the lists and drops tombstones, which is
  // often exactly what the long insert walk was tripping over.  The ops
  // cooldown bounds the amortised cost when the distribution genuinely
  // can't spread at this width (irreducible ties).
  const bool forced =
      resize_requested_ &&
      ops_since_rebuild_ > std::max<std::size_t>(64, live_count_ / 8);
  resize_requested_ = false;
  if (!forced && new_buckets == buckets_.size() && new_shift == shift_) return;
  rebuild(new_buckets, new_shift);
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

bool Scheduler::reschedule(EventId id, Time t) {
  require(t >= now_, "Scheduler: cannot reschedule into the past");
  const std::uint32_t s = lookup_index(id);
  if (s == kNullIndex) return false;
  Slot& slot = slot_at(s);
  // Re-keying with a fresh seq orders the re-armed event exactly like a
  // new schedule; the old calendar entry becomes a tombstone.  Count it
  // before insert(): a below-base insert rebuilds, which drops the dead
  // entry and zeroes the tombstone count.
  slot.live_key = next_key(s);
  ++tombstones_;
  insert(Entry{t, slot.live_key});
  maybe_resize();
  return true;
}

bool Scheduler::cancel(EventId id) {
  const std::uint32_t s = lookup_index(id);
  if (s == kNullIndex) return false;
  release_slot(s);  // the calendar entry tombstones via the live_key reset
  ++tombstones_;
  --live_count_;
  return true;
}

Time Scheduler::next_event_time() const {
  return peek_live() ? top().t : Time::max();
}

void Scheduler::run() {
  stopped_ = false;
  while (!stopped_ && peek_live()) {
    take_top()();
  }
}

void Scheduler::run_until(Time end) {
  require(end >= now_, "Scheduler: run_until into the past");
  stopped_ = false;
  while (!stopped_ && peek_live()) {
    if (top().t > end) break;
    take_top()();
  }
  if (now_ < end) now_ = end;
}

std::size_t Scheduler::run_steps(std::size_t n) {
  stopped_ = false;
  std::size_t done = 0;
  while (done < n && !stopped_ && peek_live()) {
    ++done;
    take_top()();
  }
  return done;
}

}  // namespace mts::sim
