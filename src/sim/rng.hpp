#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "sim/error.hpp"

namespace mts::sim {

/// splitmix64: tiny, high-quality 64-bit mixer used to derive substream
/// seeds.  (Public-domain constants from Vigna's reference.)
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string, for name-derived substreams.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Deterministic random source with named substreams.
///
/// Every stochastic component takes its own substream, derived from the
/// master seed and a stable name (or index), so the sequence one
/// component sees never depends on how often another component draws.
/// This is what makes protocol A vs protocol B comparisons paired: both
/// see the same mobility, same placement, same TCP start times.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(splitmix64(seed)), seed_(seed) {}

  /// Child stream derived from this stream's seed and a name.
  [[nodiscard]] Rng substream(std::string_view name) const {
    return Rng(splitmix64(seed_ ^ fnv1a(name)));
  }
  /// Child stream derived from this stream's seed and an index.
  [[nodiscard]] Rng substream(std::uint64_t index) const {
    return Rng(splitmix64(seed_ ^ splitmix64(index + 0x517CC1B727220A95ULL)));
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }
  /// Uniform double in [a, b).
  double uniform(double a, double b) {
    require(b >= a, "Rng::uniform: b < a");
    return std::uniform_real_distribution<double>(a, b)(gen_);
  }
  /// Uniform integer in [a, b] (inclusive).
  std::int64_t uniform_int(std::int64_t a, std::int64_t b) {
    require(b >= a, "Rng::uniform_int: b < a");
    return std::uniform_int_distribution<std::int64_t>(a, b)(gen_);
  }
  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    require(mean > 0, "Rng::exponential: mean <= 0");
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }
  double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(gen_);
  }
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    require(!v.empty(), "Rng::pick: empty vector");
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uint64_t seed_;
};

}  // namespace mts::sim
