#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mts::sim {

/// Move-only type-erased `void()` callable with small-buffer optimisation.
///
/// The scheduler stores one of these per pending event.  Closures whose
/// captures fit `kInlineBytes` (a `this` pointer plus a few ids — every
/// hot-path closure in the stack) live inside the event slot itself; only
/// oversized captures fall back to the heap.  This is what keeps
/// schedule/cancel allocation-free: `std::function` heap-allocates for
/// anything beyond ~2 pointers on libstdc++.
class EventFn {
 public:
  /// Inline capture budget.  48 bytes fits six pointers — comfortably
  /// above every scheduling closure in the phy/mac/routing/tcp layers
  /// (the largest captures `this` + a node id + two Time values).
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept : vt_(nullptr) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function
  EventFn(F&& f) : vt_(nullptr) {
    using Fn = std::remove_cvref_t<F>;
    // Null std::function / function pointer => empty EventFn, so the
    // scheduler's empty-callback check keeps working.
    if constexpr (requires(const Fn& g) { static_cast<bool>(g); }) {
      if (!static_cast<bool>(f)) return;
    }
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ptr_ = new Fn(std::forward<F>(f));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ == nullptr) return;
    // Trivially relocatable targets (every hot-path closure: `this` plus
    // a few scalars) move as a plain copy — no indirect call.  The copy
    // deliberately spans the whole inline buffer: the tail beyond the
    // stored closure is indeterminate but never read back, and a fixed
    // 48-byte memcpy beats a size-dispatched one (GCC's -Wuninitialized
    // can't see that, hence the suppression).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    switch (vt_->kind) {
      case Kind::kInlineTrivial:
        std::memcpy(buf_, other.buf_, kInlineBytes);
        break;
      case Kind::kInline:
        vt_->relocate(buf_, other.buf_);
        break;
      case Kind::kHeap:
        ptr_ = other.ptr_;
        break;
    }
#pragma GCC diagnostic pop
    other.vt_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ::new (static_cast<void*>(this)) EventFn(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(target()); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// True when the target lives in the inline buffer (diagnostics: the
  /// scheduler counts heap fallbacks so tests can pin the hot path).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->kind != Kind::kHeap;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (vt_->kind != Kind::kInlineTrivial) vt_->destroy(target());
      vt_ = nullptr;
    }
  }

 private:
  enum class Kind : unsigned char { kInlineTrivial, kInline, kHeap };

  struct VTable {
    void (*invoke)(void*);
    /// Destructor for kInline (in place) and kHeap (delete); unused for
    /// kInlineTrivial.
    void (*destroy)(void*) noexcept;
    /// Move-constructs dst from src and destroys src; only for kInline.
    void (*relocate)(void* dst, void* src) noexcept;
    Kind kind;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr bool trivially_relocatable =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      trivially_relocatable<Fn> ? Kind::kInlineTrivial : Kind::kInline,
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) noexcept { delete static_cast<Fn*>(p); },
      nullptr,
      Kind::kHeap,
  };

  [[nodiscard]] void* target() noexcept {
    return vt_->kind != Kind::kHeap ? static_cast<void*>(buf_) : ptr_;
  }

  const VTable* vt_;
  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* ptr_;
  };
};

}  // namespace mts::sim
