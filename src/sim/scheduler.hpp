#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/error.hpp"
#include "sim/time.hpp"

namespace mts::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Sentinel returned by schedulers for "no event".
inline constexpr EventId kInvalidEvent = 0;

/// The discrete-event core: a time-ordered queue of callbacks.
///
/// Ordering is total and deterministic: events fire by (time, insertion
/// sequence).  Two events scheduled for the same tick therefore run in
/// the order they were scheduled, independent of heap internals.
///
/// Cancellation is O(1): the callback is removed from the id map and the
/// heap entry is lazily skipped when popped.  This keeps the hot path
/// (schedule/pop) allocation-light and avoids heap surgery.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.  Monotonically non-decreasing during run().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event.  Returns false if it already fired, was
  /// already cancelled, or `id` is invalid.
  bool cancel(EventId id);

  /// Returns true iff `id` is pending (scheduled and not yet fired).
  [[nodiscard]] bool is_pending(EventId id) const {
    return callbacks_.contains(id);
  }

  /// Runs events until the queue drains or stop() is called.
  void run();

  /// Runs events with timestamp <= `end`; afterwards now() == end (if the
  /// queue drained earlier, time still advances to `end`).
  void run_until(Time end);

  /// Executes at most `n` events; returns the number actually executed.
  std::size_t run_steps(std::size_t n);

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_count() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Timestamp of the earliest pending event, or Time::max() when empty.
  [[nodiscard]] Time next_event_time() const;

 private:
  struct HeapEntry {
    Time t;
    EventId id;
    /// Min-heap via std::priority_queue (which is a max-heap), so the
    /// comparison is reversed; ties break on insertion id for stability.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  /// Pops skipping cancelled entries; returns false when empty.
  bool pop_next(HeapEntry& out);

  Time now_ = Time::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<HeapEntry> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace mts::sim
