#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/error.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace mts::sim {

/// Coarse subsystem attribution for executed events.  Call sites tag
/// their schedules so scale studies can see where a protocol's cycles
/// go (the 10k-node push needs to know whether AODV/MTS runs are
/// medium-bound or timer-bound before optimizing either).  Untagged
/// schedules land in kOther.
enum class EventCategory : std::uint8_t {
  kOther = 0,   ///< untagged (tests, harness glue)
  kChannel,     ///< per-receiver propagation deliveries
  kPhy,         ///< radio tx-done / reception-end
  kMac,         ///< 802.11 access / backoff / response / SIFS timers
  kRouting,     ///< discovery timers, jittered rebroadcasts, purges
  kTransport,   ///< TCP RTO / start timers
  kSecurity,    ///< adversary/defense self-scheduled events
  kCount
};

inline constexpr std::size_t kEventCategoryCount =
    static_cast<std::size_t>(EventCategory::kCount);

const char* event_category_name(EventCategory c);

/// Identifies a scheduled event; usable to cancel it before it fires.
/// Encodes a slot index (low 32 bits, biased by one so 0 stays invalid)
/// and that slot's generation counter (high 32 bits): ids of fired or
/// cancelled events go stale the moment their slot is released, so a
/// stale cancel can never kill a newer event that recycled the slot.
using EventId = std::uint64_t;

/// Sentinel returned by schedulers for "no event".
inline constexpr EventId kInvalidEvent = 0;

/// The discrete-event core: a time-ordered queue of callbacks.
///
/// Ordering is total and deterministic: events fire by (time, insertion
/// sequence).  Two events scheduled for the same tick therefore run in
/// the order they were scheduled, independent of queue internals.
/// Rescheduling (Timer re-arm) assigns a fresh sequence number, so a
/// re-armed event orders exactly like a newly scheduled one — bit-for-bit
/// the behaviour of the old cancel + schedule idiom.
///
/// Two structures back the queue, both allocation-free in steady state:
///
/// 1. A slot pool of event records (chunked, recycled via a free list).
///    Each record stores the callback as a small-buffer-optimised
///    `EventFn` — for every closure in the stack's hot paths the capture
///    lives inline in the slot and schedule/cancel allocate nothing.
///
/// 2. A calendar queue (Brown 1988; the structure ns-2's scheduler
///    used): an array of buckets, each covering one width-W window of
///    simulated time, recycled modulo the bucket count.  Buckets are
///    sorted intrusive lists over a chunked node arena, so schedule is
///    a tail append for the common monotone case, pop-min is a head
///    read, and same-tick bursts (SIFS responses, per-receiver channel
///    fan-outs) cost O(1) each where a comparison heap pays O(lg n)
///    sifts through cold cache lines.  Bucket width and count re-adapt
///    to the observed event spacing; cancel is O(1) — the slot's live
///    key is reset and the stale calendar node is discarded when the
///    drain reaches it (the lazy deletion the old core also used, minus
///    the hash map).
///
///    Large arenas make the pending set bimodal: microsecond-spaced
///    receptions set the bucket width, while thousands of per-node
///    timers sit seconds out — far past the wheel's one-lap coverage.
///    Mapped modulo, those far entries used to alias into near buckets
///    and the drain walked whole laps hunting the minimum (O(buckets)
///    per quiet gap, the dominant cost at 1k+ nodes).  Events beyond
///    the wheel's horizon therefore wait in an overflow min-heap and
///    migrate into the wheel as time advances, restoring the invariant
///    that every wheel entry lies within one lap of now: pop order is
///    decided purely by (time, sequence), so residency never affects
///    behaviour, only cost.
class Scheduler {
 public:
  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.  Monotonically non-decreasing during run().
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).  Inline:
  /// the closure is built straight into its pool slot.  `cat` attributes
  /// the execution to a subsystem (kept across reschedule()).
  EventId schedule_at(Time t, EventFn fn,
                      EventCategory cat = EventCategory::kOther) {
    require(t >= now_, "Scheduler: cannot schedule into the past");
    require(static_cast<bool>(fn), "Scheduler: empty callback");
    if (!fn.is_inline()) ++heap_fallbacks_;
    const std::uint32_t s = acquire_slot();
    Slot& slot = slot_at(s);
    slot.fn = std::move(fn);
    slot.cat = cat;
    slot.live_key = next_key(s);
    insert(Entry{t, slot.live_key});
    ++live_count_;
    maybe_resize();
    return make_id(s, slot.gen);
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, EventFn fn,
                      EventCategory cat = EventCategory::kOther) {
    return schedule_at(now_ + delay, std::move(fn), cat);
  }

  /// Moves a pending event to absolute time `t` (>= now()), keeping its
  /// callback and id but ordering it like a fresh schedule (it draws a
  /// new sequence number).  Returns false if `id` already fired, was
  /// cancelled, or is invalid — the caller then schedules anew.  This is
  /// the Timer re-arm fast path: no closure is constructed and no slot
  /// churns; the event is re-keyed in place and its stale calendar entry
  /// evaporates lazily.
  bool reschedule(EventId id, Time t);

  /// Cancels a pending event.  Returns false if it already fired, was
  /// already cancelled, or `id` is invalid.
  bool cancel(EventId id);

  /// Returns true iff `id` is pending (scheduled and not yet fired).
  [[nodiscard]] bool is_pending(EventId id) const {
    return lookup_index(id) != kNullIndex;
  }

  /// Runs events until the queue drains or stop() is called.
  void run();

  /// Runs events with timestamp <= `end`; afterwards now() == end (if the
  /// queue drained earlier, time still advances to `end`).
  void run_until(Time end);

  /// Executes at most `n` events; returns the number actually executed.
  std::size_t run_steps(std::size_t n);

  /// Requests run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_count() const { return live_count_; }
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Executed events attributed to `cat` (see EventCategory).
  [[nodiscard]] std::uint64_t executed_count(EventCategory cat) const {
    return executed_by_[static_cast<std::size_t>(cat)];
  }

  /// Timestamp of the earliest pending event, or Time::max() when empty.
  Time next_event_time() const;

  /// Number of scheduled callbacks whose captures overflowed EventFn's
  /// inline buffer onto the heap.  The simulation data path is expected
  /// to keep this at zero; tests pin that invariant.
  [[nodiscard]] std::uint64_t heap_fallback_count() const {
    return heap_fallbacks_;
  }

 private:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;
  /// Low 24 bits of a queue key name the slot; the high 40 bits are the
  /// insertion sequence.  Caps: 16.7M concurrently pending events, 1e12
  /// events per scheduler lifetime — both enforced.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  /// A live_key value no real key uses ("slot has no pending entry").
  static constexpr std::uint64_t kDeadKey = ~0ull;

  struct Slot {
    EventFn fn;
    /// Key of this slot's live calendar entry; entries whose key no
    /// longer matches are tombstones discarded at drain time.
    std::uint64_t live_key = kDeadKey;
    std::uint32_t gen = 1;   ///< bumped on release; validates EventIds
    std::uint32_t next_free = kNullIndex;
    EventCategory cat = EventCategory::kOther;
  };

  /// Keyed (t, seq): ordering compares are two integer compares.  seq is
  /// globally unique, so `key` never ties and doubles as the (seq, slot)
  /// pack.
  struct Entry {
    Time t;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] bool before(const Entry& other) const {
      if (t != other.t) return t < other.t;
      return key < other.key;
    }
  };

  /// Calendar list node, pooled in the node arena.
  struct Node {
    Entry e;
    std::uint32_t next;
  };

  /// One calendar bucket: a (t, key)-sorted singly linked list.  The
  /// tail's sort key is cached here so the append fast path compares
  /// against the (hot) bucket line instead of loading the tail node —
  /// the link write to that node is a non-blocking store.
  struct Bucket {
    std::uint32_t head = kNullIndex;
    std::uint32_t tail = kNullIndex;
    Entry tail_e{};
  };

  [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// Resolves an id to its live slot index, or kNullIndex when stale.
  [[nodiscard]] std::uint32_t lookup_index(EventId id) const {
    const auto biased = static_cast<std::uint32_t>(id & 0xffffffffu);
    if (biased == 0 || biased > slot_count_) return kNullIndex;
    const std::uint32_t s = biased - 1;
    if (slot_at(s).gen != static_cast<std::uint32_t>(id >> 32)) return kNullIndex;
    return s;
  }

  /// Slots live in fixed chunks so the pool grows without relocating
  /// existing slots (an EventFn move per slot per growth step is pure
  /// waste) and without invalidating Slot references across reentrant
  /// schedule calls from inside callbacks.
  static constexpr std::uint32_t kChunkBits = 12;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  [[nodiscard]] Slot& slot_at(std::uint32_t s) {
    return chunks_[s >> kChunkBits][s & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t s) const {
    return chunks_[s >> kChunkBits][s & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t s);

  /// Mints the queue key for slot `s`: fresh insertion sequence in the
  /// high bits (the tie-break), slot index packed low.
  [[nodiscard]] std::uint64_t next_key(std::uint32_t s) {
    require(next_seq_ < (1ull << 40), "Scheduler: sequence space exhausted");
    return (next_seq_++ << kSlotBits) | s;
  }

  /// Heap predicate for far_: std::push_heap et al. build a max-heap
  /// with respect to the comparator, so inverting before() keeps the
  /// earliest entry at front().
  [[nodiscard]] static bool far_after(const Entry& a, const Entry& b) {
    return b.before(a);
  }

  [[nodiscard]] bool entry_dead(const Entry& e) const {
    return slot_at(static_cast<std::uint32_t>(e.key & kSlotMask)).live_key !=
           e.key;
  }

  /// Bucket-window index of time `t` at the current width.
  [[nodiscard]] std::int64_t vt_of(Time t) const {
    return t.nanoseconds() >> shift_;
  }

  // --- node arena (chunked like the slots; const calendar walks recycle
  // tombstone nodes, hence the const free path) ------------------------
  [[nodiscard]] Node& node_at(std::uint32_t n) const {
    return node_chunks_[n >> kChunkBits][n & (kChunkSize - 1)];
  }
  std::uint32_t node_alloc() const;
  void node_free(std::uint32_t n) const;

  void insert(Entry e);
  /// Links `e` into its wheel bucket (must be within the horizon).
  /// Const for the same reason the drain is: storage bookkeeping only.
  void wheel_insert(Entry e) const;
  /// The first bucket-window index past the wheel's coverage; entries
  /// at or beyond it go to the overflow heap.  Coverage starts at
  /// base_vt_, not vt_of(now_): an empty-wheel re-base (migrate_far)
  /// can slide the window ahead of now_, and the far/near split must
  /// use the same base the wheel's contents were routed by or a far
  /// event earlier than the wheel minimum gets stranded past its turn.
  [[nodiscard]] std::int64_t horizon_vt() const {
    return base_vt_ + static_cast<std::int64_t>(buckets_.size());
  }
  /// Admits overflow entries that now fall inside the wheel's coverage;
  /// when the wheel is empty, re-bases the window at the earliest
  /// overflow entry so a quiet stretch costs one migration, not a scan.
  void migrate_far() const;
  /// Drops tombstoned overflow entries once they dominate the heap.
  void far_compact();
  /// Positions the drain on the minimum live entry.  Returns false when
  /// the calendar is empty.  Logically const: only the drain point
  /// advances and tombstones drop (observable state is unchanged).
  bool peek_live() const;
  /// The minimum live entry; valid right after peek_live() == true.
  [[nodiscard]] const Entry& top() const {
    const Bucket& bk = buckets_[static_cast<std::size_t>(cur_vt_) &
                                (buckets_.size() - 1)];
    return node_at(bk.head).e;
  }
  /// Jump the walk to the global minimum (long empty stretches).
  void direct_search() const;
  /// Unlinks a bucket's head node and recycles it.
  void pop_head(Bucket& bk) const;
  /// Detaches the live top event and hands back its callback; updates
  /// now_.  Pre-condition: peek_live() returned true.
  EventFn take_top();

  /// Re-sizes/widths the calendar from live occupancy and the observed
  /// inter-event spacing, redistributing all live entries.
  void rebuild(std::size_t new_bucket_count, int new_shift);
  /// Picks the new geometry and rebuilds; out-of-line slow path.
  void rebuild_fit();
  void maybe_resize() {
    const std::size_t b = buckets_.size();
    const bool grow = live_count_ > b * kResizeGrowFactor && b < kMaxBucketCount;
    // Shrinking is pure walk-cost tuning; a cooldown stops a draining
    // queue from re-fitting the calendar every few hundred pops.
    const bool shrink = b > kMinBucketCount &&
                        live_count_ < b / kResizeShrinkFactor &&
                        ops_since_rebuild_ > b;
    if (grow || shrink || resize_requested_) rebuild_fit();
  }

  /// Calendar geometry bounds (also used by the inline resize check).
  static constexpr std::size_t kMinBucketCount = 16;
  static constexpr std::size_t kMaxBucketCount = 1u << 16;
  static constexpr std::size_t kResizeGrowFactor = 4;
  static constexpr std::size_t kResizeShrinkFactor = 8;

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::array<std::uint64_t, kEventCategoryCount> executed_by_{};
  std::uint64_t heap_fallbacks_ = 0;
  std::size_t live_count_ = 0;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNullIndex;

  /// Calendar state.  Mutable pieces let const peeks advance the drain
  /// and drop tombstones (next_event_time()).
  mutable std::vector<std::unique_ptr<Node[]>> node_chunks_;
  mutable std::uint32_t node_count_ = 0;
  mutable std::uint32_t node_free_ = kNullIndex;
  mutable std::vector<Bucket> buckets_;   ///< size is a power of two
  /// Overflow min-heap (by Entry::before) of events past the wheel's
  /// horizon; migrated into the wheel as now() approaches them.
  mutable std::vector<Entry> far_;
  int shift_ = 10;                        ///< bucket width = 2^shift_ ns
  /// First bucket window the wheel covers.  Tracks vt_of(now_) as time
  /// advances, but jumps ahead of it when migrate_far re-bases an empty
  /// wheel onto the earliest far event.  Invariant: every wheel entry
  /// lies in [base_vt_, horizon_vt()) and every far_ entry at or beyond
  /// horizon_vt() stays parked — insert() restores this by rebuilding
  /// when a new event lands below the base.
  mutable std::int64_t base_vt_ = 0;
  mutable std::int64_t cur_vt_ = 0;       ///< bucket window being drained
  mutable std::size_t bucket_entries_ = 0;  ///< live + tombstones stored
  mutable std::size_t tombstones_ = 0;
  /// EWMA of non-zero pop-to-pop gaps, the width estimator (ns).
  std::int64_t ewma_gap_ns_ = 1 << 10;
  std::int64_t last_pop_ns_ = 0;
  std::int64_t max_t_ns_ = 0;  ///< latest timestamp ever scheduled
  std::size_t ops_since_rebuild_ = 0;
  /// far_ size that triggers a tombstone sweep; doubles after each sweep
  /// so compaction stays amortised O(1) per insert.
  std::size_t far_compact_at_ = 64;
  /// An insert found its bucket mis-sized (mutable: migration inserts
  /// run under the drain's const paths).
  mutable bool resize_requested_ = false;
  /// Scratch for rebuild(): persists so re-fits don't re-allocate.
  std::vector<Entry> rebuild_scratch_;
};

}  // namespace mts::sim
