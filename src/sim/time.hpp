#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace mts::sim {

/// Simulation time, held as a signed 64-bit count of nanoseconds.
///
/// An integer representation (rather than `double` seconds, as NS-2 uses)
/// makes event ordering exact and runs bit-reproducible: two events
/// scheduled from the same arithmetic land on identical ticks on every
/// platform.  The range (+/- ~292 years) is far beyond any scenario.
///
/// `Time` doubles as a duration type; differences and sums are both
/// `Time`.  Negative values are legal intermediates (e.g. `a - b`), but
/// the scheduler rejects scheduling into the past.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors.  Prefer these over the raw constructor so call
  /// sites carry their unit.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }

  /// Fractional seconds (for human-facing configuration like "0.003 s
  /// check jitter").  Rounds to the nearest nanosecond.
  static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
  }
  /// Fractional microseconds (MAC slot arithmetic).
  static constexpr Time micros(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
  }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double to_micros() const {
    return static_cast<double>(ns_) * 1e-3;
  }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k + 0.5)};
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  /// Ratio of two durations (e.g. elapsed / slot_time).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  constexpr Time& operator+=(Time b) { ns_ += b.ns_; return *this; }
  constexpr Time& operator-=(Time b) { ns_ -= b.ns_; return *this; }

  friend constexpr auto operator<=>(Time a, Time b) = default;

  friend std::ostream& operator<<(std::ostream& os, Time t) {
    return os << t.to_seconds() << "s";
  }

 private:
  explicit constexpr Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace mts::sim
