#pragma once

#include <cmath>
#include <cstdint>
#include <map>

#include "sim/error.hpp"

namespace mts::stats {

/// Mergeable streaming percentile sketch over non-negative samples, in
/// the mould of DDSketch: geometric buckets with ratio gamma = (1 + a) /
/// (1 - a), so every reported quantile is within relative error `a` of
/// the exact-sort answer at the same rank.
///
/// Chosen over t-digest deliberately: bucket *counts* are plain
/// integers keyed by a value-determined index, so `merge` is exactly
/// associative and commutative — shard A + (B + C) and (A + B) + C give
/// bit-identical quantiles, which is the property the campaign fabric's
/// shard merging and the per-gateway roll-up in the traffic plane rely
/// on.  A t-digest's centroid compression is merge-order *sensitive*;
/// it would break byte-identical resume diffs.
///
/// Samples below `kMinTrackable` (including zero) land in a dedicated
/// underflow bucket reported as 0.0 — delay and goodput samples are
/// physically bounded away from it.
class PercentileDigest {
 public:
  static constexpr double kMinTrackable = 1e-9;

  explicit PercentileDigest(double relative_error = 0.01)
      : alpha_(relative_error),
        gamma_((1.0 + relative_error) / (1.0 - relative_error)),
        log_gamma_(std::log(gamma_)) {
    sim::require_config(relative_error > 0.0 && relative_error < 1.0,
                        "PercentileDigest: relative_error outside (0, 1)");
  }

  void add(double x) {
    ++total_;
    if (!(x >= kMinTrackable)) {  // also catches NaN
      ++underflow_;
      return;
    }
    ++bins_[index_of(x)];
  }

  /// Exact bucket-count addition: associative, commutative, lossless.
  void merge(const PercentileDigest& other) {
    sim::require(other.gamma_ == gamma_,
                 "PercentileDigest: merging digests of different accuracy");
    total_ += other.total_;
    underflow_ += other.underflow_;
    for (const auto& [idx, n] : other.bins_) bins_[idx] += n;
  }

  /// Value at quantile `q` in [0, 1]; 0.0 on an empty digest.  Matches
  /// the exact-sort convention `sorted[floor(q * (n - 1))]` to within
  /// the relative-error bound.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    if (rank < underflow_) return 0.0;
    std::uint64_t seen = underflow_;
    for (const auto& [idx, n] : bins_) {
      seen += n;
      if (seen > rank) return value_of(idx);
    }
    return bins_.empty() ? 0.0 : value_of(bins_.rbegin()->first);
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t underflow_count() const { return underflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return bins_.size(); }
  [[nodiscard]] double relative_error() const { return alpha_; }

 private:
  /// Bucket i holds (gamma^(i-1), gamma^i].
  [[nodiscard]] std::int32_t index_of(double x) const {
    return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
  }
  /// Midpoint estimate 2 gamma^i / (gamma + 1): at most `alpha_`
  /// relative error from any sample in the bucket.
  [[nodiscard]] double value_of(std::int32_t idx) const {
    return 2.0 * std::exp(static_cast<double>(idx) * log_gamma_) /
           (gamma_ + 1.0);
  }

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  /// Ordered map: quantile walks ascend value order for free, and
  /// iteration order is deterministic for bit-reproducible reports.
  std::map<std::int32_t, std::uint64_t> bins_;
};

}  // namespace mts::stats
