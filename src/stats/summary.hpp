#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mts::stats {

/// Streaming mean/variance (Welford) with min/max; mergeable so that
/// per-thread accumulators combine without locks.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  /// Chan et al. parallel merge.
  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + d * d * na * nb / nt;
    mean_ += d * nb / nt;
    n_ += o.n_;
    min_ = o.min_ < min_ ? o.min_ : min_;
    max_ = o.max_ > max_ ? o.max_ : max_;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const {
    return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
  }
  /// Half-width of the ~95 % confidence interval (normal approximation).
  [[nodiscard]] double ci95() const { return 1.96 * sem(); }
  [[nodiscard]] double min() const {
    return n_ == 0 ? 0.0 : min_;
  }
  [[nodiscard]] double max() const {
    return n_ == 0 ? 0.0 : max_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mts::stats
