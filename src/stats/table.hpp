#pragma once

#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace mts::stats {

/// Minimal fixed-width ASCII table + CSV writer for bench output — the
/// "same rows/series the paper reports" requirement, without plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string fmt(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        os << "| " << std::setw(static_cast<int>(widths[i]))
           << (i < cells.size() ? cells[i] : "") << " ";
      }
      os << "|\n";
    };
    line(header_);
    os << "|";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << "\n";
    for (const auto& r : rows_) line(r);
  }

  void print_csv(std::ostream& os) const {
    auto line = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ",";
        os << cells[i];
      }
      os << "\n";
    };
    line(header_);
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mts::stats
