#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/counters.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "stats/digest.hpp"
#include "tcp/flow_stats.hpp"
#include "tcp/tcp_config.hpp"

namespace mts::tcp {
class TcpSource;
class TcpSink;
}  // namespace mts::tcp

namespace mts::traffic {

/// The user-traffic plane: a session-level workload generator for the
/// "millions of users" scaling story.  Users do not get their own mesh
/// nodes — they aggregate onto a bounded pool of *attachment* nodes and
/// talk to designated *gateway* nodes (the internet-gateway mesh
/// architecture), so 100k+ sessions ride a 1k-node arena.  Sessions
/// arrive as a Poisson process thinned against a configurable diurnal
/// rate curve, belong to a user class (short messaging vs bulk
/// transfer), and spawn finite TCP transfers through the existing
/// `tcp_source`/`tcp_sink` plane with think times in between.
///
/// Determinism: every draw comes from the scenario master RNG's
/// dedicated `substream("traffic")`, and the plane only exists when
/// `TrafficSpec::enabled` — disabled runs construct nothing, draw
/// nothing, and replay every pre-existing fixed-seed fingerprint
/// bit-identical.

enum class UserClass : std::uint8_t { kMessaging = 0, kBulk = 1 };
inline constexpr std::size_t kUserClassCount = 2;

const char* user_class_name(UserClass c);

/// Per-class workload shape: how many TCP flows a session runs, how
/// large each transfer is (in segments), the think time between flows,
/// and the transfer direction (uplink = attachment node -> gateway).
struct ClassSpec {
  std::uint32_t min_flows = 1;
  std::uint32_t max_flows = 3;
  std::uint32_t min_segments = 1;
  std::uint32_t max_segments = 4;
  double think_min_s = 0.2;
  double think_max_s = 2.0;
  bool uplink = true;
};

/// Scenario-level description of the user plane; lives in
/// `ScenarioConfig::traffic` and sweeps as the campaign's traffic axis.
/// Disabled by default: no plane, no draws, fingerprints untouched.
struct TrafficSpec {
  TrafficSpec() {
    // Bulk transfers: one long downlink flow per session (gateway ->
    // attachment node), short think before departure.
    bulk.min_flows = 1;
    bulk.max_flows = 1;
    bulk.min_segments = 20;
    bulk.max_segments = 60;
    bulk.think_min_s = 0.5;
    bulk.think_max_s = 1.0;
    bulk.uplink = false;
  }

  bool enabled = false;
  /// Designated gateway nodes sessions arrive/depart on (drawn
  /// uniformly, distinct, from the traffic substream).
  std::uint32_t gateway_count = 4;
  /// Attachment-node pool users aggregate onto; 0 = every non-gateway
  /// node.  A bounded pool is what makes >=100k sessions tractable:
  /// route discoveries amortize over (pool x gateways) pairs instead of
  /// growing with the session count.
  std::uint32_t user_pool = 64;
  /// Mean session arrivals per second where the diurnal curve is 1.0.
  double session_rate = 20.0;
  /// Per-bucket rate multipliers, cycled over the (compressed) day;
  /// empty = flat `session_rate`.  Values >= 0, at least one > 0.
  std::vector<double> diurnal;
  /// Sim-time width of one diurnal bucket (one "hour" of the model day).
  sim::Time diurnal_bucket = sim::Time::sec(5);
  /// Fraction of sessions in the bulk-transfer class (rest: messaging).
  double bulk_fraction = 0.2;
  ClassSpec messaging;
  ClassSpec bulk;
  /// Cap on concurrently open TCP flows; arrivals beyond it are counted
  /// rejected instead of growing memory without bound.
  std::uint32_t max_concurrent_flows = 4096;
};

/// Nonhomogeneous Poisson arrival stream: exponential candidates at the
/// curve's peak rate, thinned (Lewis-Shedler) by the instantaneous
/// diurnal rate.  Separated from the plane so the arrival-rate property
/// test can exercise it without a full scenario.
class ArrivalProcess {
 public:
  ArrivalProcess(double base_rate, std::vector<double> curve,
                 sim::Time bucket, sim::Rng rng);

  /// Next arrival strictly after `t`.
  [[nodiscard]] sim::Time next_after(sim::Time t);
  /// Instantaneous rate (sessions/s) at `t`.
  [[nodiscard]] double rate_at(sim::Time t) const;
  [[nodiscard]] double peak_rate() const { return peak_; }

 private:
  double base_;
  std::vector<double> curve_;
  sim::Time bucket_;
  double peak_;
  sim::Rng rng_;
};

/// Everything the plane needs from the harness, kept behind callbacks
/// so `src/traffic` depends on tcp/net/sim only (no harness cycle).
struct TrafficContext {
  sim::Scheduler* sched = nullptr;
  net::UidSource* uids = nullptr;
  std::uint32_t node_count = 0;
  /// First flow id the plane may use (static scenario flows own
  /// 1..first_flow_id-1); lanes recycle FIFO above it.
  std::uint16_t first_flow_id = 1;
  tcp::TcpConfig tcp;
  /// Hands a transport packet to `node`'s routing layer.
  std::function<void(net::NodeId, net::Packet&&)> send;
  std::function<net::Counters*(net::NodeId)> counters_of;
  /// Invoked once per *fresh* flow-id lane (never for recycled ids);
  /// the harness registers the lane with the secrecy plane here.
  std::function<void(std::uint16_t)> on_new_lane;
};

struct ClassReport {
  std::uint64_t sessions = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t delay_samples = 0;
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
  /// Median per-flow goodput over completed transfers (segments/s).
  double goodput_p50_seg_s = 0.0;
};

struct TrafficReport {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_rejected = 0;  ///< flow-id pool exhausted
  std::array<ClassReport, kUserClassCount> classes{};
  /// Arrivals per diurnal bucket (flat curve: one synthetic bucket
  /// stream at `diurnal_bucket` width) — diagnostics + property tests.
  std::vector<std::uint64_t> arrivals_per_bucket;
};

class TrafficPlane {
 public:
  TrafficPlane(const TrafficSpec& spec, TrafficContext ctx, sim::Rng rng);
  ~TrafficPlane();
  TrafficPlane(const TrafficPlane&) = delete;
  TrafficPlane& operator=(const TrafficPlane&) = delete;

  /// Schedules the first arrival; sessions stop arriving at `horizon`.
  void start(sim::Time horizon);

  /// Routes a TCP data/ack packet delivered at `node` to the session
  /// that owns its flow lane; false when no live lane matches (the
  /// packet belongs to the static flows, or to a torn-down session).
  bool deliver(net::NodeId node, const net::Packet& p);

  [[nodiscard]] TrafficReport report() const;
  [[nodiscard]] const std::vector<net::NodeId>& gateways() const {
    return gateways_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& attachment_nodes() const {
    return users_;
  }
  /// Flow-id lanes the class has used, in first-use order — the secrecy
  /// exposure metric walks these against the adversary's recovery pool.
  [[nodiscard]] const std::vector<std::uint16_t>& lanes(UserClass c) const {
    return lanes_[static_cast<std::size_t>(c)];
  }

 private:
  struct Session;

  void on_arrival();
  void schedule_next_arrival();
  void start_flow(std::size_t slot);
  void on_flow_done(std::size_t slot);
  void advance(std::size_t slot);
  void teardown_flow(Session& s);
  [[nodiscard]] std::uint16_t alloc_flow_id();
  [[nodiscard]] const ClassSpec& class_spec(UserClass c) const {
    return c == UserClass::kBulk ? spec_.bulk : spec_.messaging;
  }

  TrafficSpec spec_;
  TrafficContext ctx_;
  sim::Rng rng_;             ///< session draws (class, endpoints, sizes)
  ArrivalProcess arrivals_;  ///< its own substream: arrival times never
                             ///< shift when session internals change
  sim::Timer arrival_timer_;
  sim::Time horizon_ = sim::Time::zero();

  std::vector<net::NodeId> gateways_;
  std::vector<net::NodeId> users_;

  std::vector<std::unique_ptr<Session>> slots_;
  std::vector<std::size_t> free_slots_;
  std::deque<std::uint16_t> free_ids_;  ///< FIFO: maximize reuse distance
  std::uint32_t next_fresh_id_;
  std::uint32_t live_flows_ = 0;
  std::unordered_map<std::uint16_t, std::size_t> by_flow_;

  std::array<std::vector<std::uint16_t>, kUserClassCount> lanes_;
  std::array<std::unordered_set<std::uint16_t>, kUserClassCount> lane_seen_;

  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::vector<std::uint64_t> arrivals_per_bucket_;

  struct ClassAgg {
    std::uint64_t sessions = 0;
    std::uint64_t flows_completed = 0;
    /// One delay digest per gateway, merged at report time — the
    /// mergeable sketch is exercised on the production path, not just
    /// in its unit tests.
    std::vector<stats::PercentileDigest> delay_ms_by_gateway;
    stats::PercentileDigest goodput_seg_s;
  };
  std::array<ClassAgg, kUserClassCount> agg_;
};

}  // namespace mts::traffic
