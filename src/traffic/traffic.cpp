#include "traffic/traffic.hpp"

#include <algorithm>

#include "sim/error.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace mts::traffic {

const char* user_class_name(UserClass c) {
  switch (c) {
    case UserClass::kMessaging: return "msg";
    case UserClass::kBulk: return "bulk";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ArrivalProcess
// ---------------------------------------------------------------------------

ArrivalProcess::ArrivalProcess(double base_rate, std::vector<double> curve,
                               sim::Time bucket, sim::Rng rng)
    : base_(base_rate),
      curve_(std::move(curve)),
      bucket_(bucket),
      peak_(0.0),
      rng_(rng) {
  sim::require_config(base_ > 0.0, "ArrivalProcess: session_rate <= 0");
  sim::require_config(bucket_ > sim::Time::zero(),
                      "ArrivalProcess: diurnal_bucket <= 0");
  double peak_mult = curve_.empty() ? 1.0 : 0.0;
  for (double w : curve_) {
    sim::require_config(w >= 0.0, "ArrivalProcess: negative diurnal weight");
    peak_mult = std::max(peak_mult, w);
  }
  sim::require_config(peak_mult > 0.0,
                      "ArrivalProcess: diurnal curve is all zero");
  peak_ = base_ * peak_mult;
}

double ArrivalProcess::rate_at(sim::Time t) const {
  if (curve_.empty()) return base_;
  const auto bucket = static_cast<std::size_t>(
      static_cast<std::uint64_t>(t.nanoseconds()) /
      static_cast<std::uint64_t>(bucket_.nanoseconds()));
  return base_ * curve_[bucket % curve_.size()];
}

sim::Time ArrivalProcess::next_after(sim::Time t) {
  // Lewis-Shedler thinning: candidates at the peak rate, each kept with
  // probability rate(t)/peak.  Exact for any piecewise-constant curve.
  for (;;) {
    t = t + sim::Time::seconds(rng_.exponential(1.0 / peak_));
    if (rng_.uniform() * peak_ <= rate_at(t)) return t;
  }
}

// ---------------------------------------------------------------------------
// TrafficPlane
// ---------------------------------------------------------------------------

/// One live user session.  The think timer doubles as the flow-teardown
/// trigger: a finished transfer's agents stay alive (idle) until the
/// think time elapses, so the completion callback never destroys the
/// TcpSource from inside its own ACK processing.
struct TrafficPlane::Session {
  Session(TrafficPlane* plane, std::size_t slot, sim::Scheduler& sched)
      : think(
            sched, [plane, slot] { plane->advance(slot); },
            sim::EventCategory::kTransport) {}

  UserClass cls = UserClass::kMessaging;
  net::NodeId gateway = 0;
  net::NodeId user = 0;
  std::size_t gateway_index = 0;
  std::uint32_t flows_left = 0;

  std::uint16_t flow_id = 0;  ///< active lane; 0 = between flows
  std::uint32_t flow_segments = 0;
  net::NodeId flow_src = 0;
  net::NodeId flow_dst = 0;
  sim::Time flow_start = sim::Time::zero();
  tcp::FlowStats stats;
  std::unique_ptr<tcp::TcpSource> source;
  std::unique_ptr<tcp::TcpSink> sink;

  sim::Timer think;
};

namespace {

void validate_class(const ClassSpec& cs, const char* name) {
  sim::require_config(cs.min_flows >= 1 && cs.max_flows >= cs.min_flows,
                      name);
  sim::require_config(cs.min_segments >= 1 &&
                          cs.max_segments >= cs.min_segments,
                      name);
  // Strictly positive think time is what guarantees the teardown event
  // fires strictly after the completion ACK's timestamp.
  sim::require_config(cs.think_min_s > 0.0 &&
                          cs.think_max_s >= cs.think_min_s,
                      name);
}

}  // namespace

TrafficPlane::TrafficPlane(const TrafficSpec& spec, TrafficContext ctx,
                           sim::Rng rng)
    : spec_(spec),
      ctx_(std::move(ctx)),
      rng_(rng.substream("sessions")),
      arrivals_(spec.session_rate, spec.diurnal, spec.diurnal_bucket,
                rng.substream("arrivals")),
      arrival_timer_(
          *ctx_.sched, [this] { on_arrival(); },
          sim::EventCategory::kTransport),
      next_fresh_id_(ctx_.first_flow_id) {
  sim::require_config(ctx_.sched != nullptr && ctx_.uids != nullptr &&
                          ctx_.send != nullptr && ctx_.counters_of != nullptr,
                      "TrafficPlane: incomplete context");
  sim::require_config(spec_.gateway_count >= 1,
                      "TrafficSpec: gateway_count == 0");
  sim::require_config(ctx_.node_count > spec_.gateway_count,
                      "TrafficSpec: no non-gateway nodes left for users");
  sim::require_config(spec_.bulk_fraction >= 0.0 && spec_.bulk_fraction <= 1.0,
                      "TrafficSpec: bulk_fraction outside [0, 1]");
  sim::require_config(spec_.max_concurrent_flows >= 1,
                      "TrafficSpec: max_concurrent_flows == 0");
  sim::require_config(ctx_.first_flow_id >= 1,
                      "TrafficPlane: first_flow_id == 0 (0 is reserved)");
  validate_class(spec_.messaging, "TrafficSpec: bad messaging class spec");
  validate_class(spec_.bulk, "TrafficSpec: bad bulk class spec");

  // Gateways, then the attachment pool, all distinct (rejection draws
  // from the topology substream; deterministic for a given seed).
  sim::Rng topo = rng.substream("topology");
  std::unordered_set<net::NodeId> taken;
  while (gateways_.size() < spec_.gateway_count) {
    const auto id = static_cast<net::NodeId>(
        topo.uniform_int(0, static_cast<std::int64_t>(ctx_.node_count) - 1));
    if (taken.insert(id).second) gateways_.push_back(id);
  }
  const std::uint32_t non_gateways = ctx_.node_count - spec_.gateway_count;
  const std::uint32_t pool = spec_.user_pool == 0
                                 ? non_gateways
                                 : std::min(spec_.user_pool, non_gateways);
  while (users_.size() < pool) {
    const auto id = static_cast<net::NodeId>(
        topo.uniform_int(0, static_cast<std::int64_t>(ctx_.node_count) - 1));
    if (taken.insert(id).second) users_.push_back(id);
  }
  for (ClassAgg& a : agg_) a.delay_ms_by_gateway.resize(gateways_.size());
}

TrafficPlane::~TrafficPlane() = default;

void TrafficPlane::start(sim::Time horizon) {
  horizon_ = horizon;
  schedule_next_arrival();
}

void TrafficPlane::schedule_next_arrival() {
  const sim::Time t = arrivals_.next_after(ctx_.sched->now());
  if (t < horizon_) arrival_timer_.schedule_at(t);
}

void TrafficPlane::on_arrival() {
  const sim::Time now = ctx_.sched->now();
  const auto bucket = static_cast<std::size_t>(
      static_cast<std::uint64_t>(now.nanoseconds()) /
      static_cast<std::uint64_t>(spec_.diurnal_bucket.nanoseconds()));
  if (arrivals_per_bucket_.size() <= bucket) {
    arrivals_per_bucket_.resize(bucket + 1, 0);
  }
  ++arrivals_per_bucket_[bucket];

  // Fixed draw order (class, gateway, attachment, flow count) so the
  // session stream is a pure function of the traffic substream.
  const UserClass cls = rng_.bernoulli(spec_.bulk_fraction)
                            ? UserClass::kBulk
                            : UserClass::kMessaging;
  const auto gi = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(gateways_.size()) - 1));
  const auto ui = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(users_.size()) - 1));
  const ClassSpec& cs = class_spec(cls);
  const auto flows = static_cast<std::uint32_t>(
      rng_.uniform_int(cs.min_flows, cs.max_flows));

  ++started_;
  ++agg_[static_cast<std::size_t>(cls)].sessions;

  std::size_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  slots_[slot] = std::make_unique<Session>(this, slot, *ctx_.sched);
  Session& s = *slots_[slot];
  s.cls = cls;
  s.gateway = gateways_[gi];
  s.gateway_index = gi;
  s.user = users_[ui];
  s.flows_left = flows;
  start_flow(slot);
  schedule_next_arrival();
}

std::uint16_t TrafficPlane::alloc_flow_id() {
  if (live_flows_ >= spec_.max_concurrent_flows) return 0;
  if (!free_ids_.empty()) {
    const std::uint16_t id = free_ids_.front();
    free_ids_.pop_front();
    return id;
  }
  if (next_fresh_id_ > 0xFFFF) return 0;
  const auto id = static_cast<std::uint16_t>(next_fresh_id_++);
  if (ctx_.on_new_lane) ctx_.on_new_lane(id);
  return id;
}

void TrafficPlane::start_flow(std::size_t slot) {
  Session& s = *slots_[slot];
  const ClassSpec& cs = class_spec(s.cls);
  const auto segments = static_cast<std::uint32_t>(
      rng_.uniform_int(cs.min_segments, cs.max_segments));
  const std::uint16_t id = alloc_flow_id();
  if (id == 0) {
    // Lane space exhausted: the session is rejected, not queued —
    // bounded memory beats completeness under overload, and the count
    // makes the saturation visible instead of silent.
    ++rejected_;
    slots_[slot].reset();
    free_slots_.push_back(slot);
    return;
  }
  s.flow_id = id;
  s.flow_segments = segments;
  s.flow_src = cs.uplink ? s.user : s.gateway;
  s.flow_dst = cs.uplink ? s.gateway : s.user;
  s.stats = tcp::FlowStats{};
  s.flow_start = ctx_.sched->now();

  const net::NodeId src = s.flow_src;
  const net::NodeId dst = s.flow_dst;
  s.source = std::make_unique<tcp::TcpSource>(
      *ctx_.sched,
      [this, src](net::Packet&& p) { ctx_.send(src, std::move(p)); }, src,
      dst, id, ctx_.tcp, ctx_.uids, ctx_.counters_of(src), &s.stats);
  s.source->set_transfer(segments, [this, slot] { on_flow_done(slot); });
  s.sink = std::make_unique<tcp::TcpSink>(
      *ctx_.sched,
      [this, dst](net::Packet&& p) { ctx_.send(dst, std::move(p)); }, dst,
      src, id, ctx_.uids, ctx_.counters_of(dst), &s.stats);
  s.sink->set_delivery_observer(
      [this, cls = static_cast<std::size_t>(s.cls),
       gi = s.gateway_index](sim::Time delay) {
        agg_[cls].delay_ms_by_gateway[gi].add(delay.to_seconds() * 1000.0);
      });

  by_flow_[id] = slot;
  ++live_flows_;
  auto& seen = lane_seen_[static_cast<std::size_t>(s.cls)];
  if (seen.insert(id).second) {
    lanes_[static_cast<std::size_t>(s.cls)].push_back(id);
  }
  s.source->start(ctx_.sched->now());
}

void TrafficPlane::on_flow_done(std::size_t slot) {
  // Invoked from inside TcpSource::on_ack — record, then defer the
  // teardown to the think timer (see Session).
  Session& s = *slots_[slot];
  ClassAgg& a = agg_[static_cast<std::size_t>(s.cls)];
  ++a.flows_completed;
  const double duration = (ctx_.sched->now() - s.flow_start).to_seconds();
  if (duration > 0.0) {
    a.goodput_seg_s.add(static_cast<double>(s.flow_segments) / duration);
  }
  --s.flows_left;
  const ClassSpec& cs = class_spec(s.cls);
  s.think.schedule_in(
      sim::Time::seconds(rng_.uniform(cs.think_min_s, cs.think_max_s)));
}

void TrafficPlane::teardown_flow(Session& s) {
  if (s.flow_id == 0) return;
  by_flow_.erase(s.flow_id);
  free_ids_.push_back(s.flow_id);
  --live_flows_;
  s.flow_id = 0;
  s.source.reset();
  s.sink.reset();
}

void TrafficPlane::advance(std::size_t slot) {
  Session& s = *slots_[slot];
  teardown_flow(s);
  if (s.flows_left == 0) {
    ++completed_;
    slots_[slot].reset();
    free_slots_.push_back(slot);
  } else {
    start_flow(slot);
  }
}

bool TrafficPlane::deliver(net::NodeId node, const net::Packet& p) {
  const net::PacketKind kind = p.common().kind;
  if (kind != net::PacketKind::kTcpData && kind != net::PacketKind::kTcpAck) {
    return false;
  }
  if (!p.has_tcp()) return false;
  const auto it = by_flow_.find(p.tcp().flow_id);
  if (it == by_flow_.end()) return false;  // torn-down lane: stale packet
  Session* s = slots_[it->second].get();
  if (s == nullptr) return false;
  if (kind == net::PacketKind::kTcpData) {
    if (s->sink == nullptr || node != s->flow_dst) return false;
    s->sink->on_data(p);
  } else {
    if (s->source == nullptr || node != s->flow_src) return false;
    s->source->on_ack(p);
  }
  return true;
}

TrafficReport TrafficPlane::report() const {
  TrafficReport r;
  r.sessions_started = started_;
  r.sessions_completed = completed_;
  r.sessions_rejected = rejected_;
  r.arrivals_per_bucket = arrivals_per_bucket_;
  for (std::size_t c = 0; c < kUserClassCount; ++c) {
    const ClassAgg& a = agg_[c];
    ClassReport& out = r.classes[c];
    out.sessions = a.sessions;
    out.flows_completed = a.flows_completed;
    stats::PercentileDigest merged;
    for (const stats::PercentileDigest& d : a.delay_ms_by_gateway) {
      merged.merge(d);
    }
    out.delay_samples = merged.count();
    out.delay_p50_ms = merged.p50();
    out.delay_p95_ms = merged.p95();
    out.delay_p99_ms = merged.p99();
    out.goodput_p50_seg_s = a.goodput_seg_s.p50();
  }
  return r;
}

}  // namespace mts::traffic
