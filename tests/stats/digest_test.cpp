#include "stats/digest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace mts::stats {
namespace {

/// Exact-sort reference the digest documents itself against:
/// sorted[floor(q * (n - 1))].
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  return v[rank];
}

/// Asserts every probed quantile of `samples` is within the digest's
/// advertised relative-error bound of the exact-sort answer.  A hair of
/// slack (1.05x) covers the rank-vs-bucket-boundary interaction at the
/// exact bound.
void expect_within_bound(const std::vector<double>& samples, double alpha) {
  PercentileDigest d(alpha);
  for (double x : samples) d.add(x);
  ASSERT_EQ(d.count(), samples.size());
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = exact_quantile(samples, q);
    const double est = d.quantile(q);
    EXPECT_NEAR(est, exact, std::abs(exact) * alpha * 1.05)
        << "q=" << q << " alpha=" << alpha;
  }
}

TEST(PercentileDigestTest, EmptyReportsZero) {
  PercentileDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.quantile(0.5), 0.0);
  EXPECT_EQ(d.p99(), 0.0);
}

TEST(PercentileDigestTest, RejectsBadRelativeError) {
  EXPECT_THROW(PercentileDigest(0.0), sim::ConfigError);
  EXPECT_THROW(PercentileDigest(1.0), sim::ConfigError);
  EXPECT_THROW(PercentileDigest(-0.1), sim::ConfigError);
}

TEST(PercentileDigestTest, SingleSampleEveryQuantile) {
  PercentileDigest d(0.01);
  d.add(42.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(d.quantile(q), 42.0, 42.0 * 0.01) << "q=" << q;
  }
}

TEST(PercentileDigestTest, UniformWithinBound) {
  sim::Rng rng(7);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(1.0 + 999.0 * rng.uniform());
  expect_within_bound(samples, 0.01);
  expect_within_bound(samples, 0.05);
}

TEST(PercentileDigestTest, ClusteredWithinBound) {
  // Bimodal delay-like distribution: a tight fast mode and a sparse
  // slow tail five orders of magnitude apart — the shape that defeats
  // fixed-width histograms.
  sim::Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 9000; ++i) samples.push_back(0.001 + 0.0002 * rng.uniform());
  for (int i = 0; i < 1000; ++i) samples.push_back(90.0 + 20.0 * rng.uniform());
  expect_within_bound(samples, 0.01);
}

TEST(PercentileDigestTest, AdversarialGeometricWithinBound) {
  // Samples placed at successive powers of (1 + 3 alpha): every sample
  // near a bucket boundary of its own, maximizing midpoint error.
  const double alpha = 0.02;
  std::vector<double> samples;
  double x = 1e-6;
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(x);
    x *= 1.0 + 3.0 * alpha;
  }
  expect_within_bound(samples, alpha);
}

TEST(PercentileDigestTest, UnderflowBucketReportsZero) {
  PercentileDigest d(0.01);
  for (int i = 0; i < 10; ++i) d.add(0.0);
  d.add(5.0);
  EXPECT_EQ(d.underflow_count(), 10u);
  EXPECT_EQ(d.quantile(0.5), 0.0);   // rank 5 of 11 is underflow
  EXPECT_GT(d.quantile(1.0), 4.9);   // the one real sample
}

TEST(PercentileDigestTest, MergeMatchesSingleDigest) {
  sim::Rng rng(3);
  PercentileDigest whole(0.01), a(0.01), b(0.01);
  for (int i = 0; i < 5000; ++i) {
    const double x = std::exp(6.0 * rng.uniform());
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.bucket_count(), whole.bucket_count());
  for (double q : {0.1, 0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(PercentileDigestTest, MergeOrderInvariantBitIdentical) {
  // The property the shard merge relies on: A+(B+C) == (A+B)+C == C+B+A,
  // to the last bit of every quantile.
  sim::Rng rng(9);
  std::vector<std::vector<double>> shards(3);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 1000 + 137 * s; ++i) {
      shards[static_cast<std::size_t>(s)].push_back(
          0.5 + 200.0 * rng.uniform());
    }
  }
  auto build = [&](std::initializer_list<int> order) {
    PercentileDigest acc(0.01);
    for (int s : order) {
      PercentileDigest d(0.01);
      for (double x : shards[static_cast<std::size_t>(s)]) d.add(x);
      acc.merge(d);
    }
    return acc;
  };
  const PercentileDigest abc = build({0, 1, 2});
  const PercentileDigest cba = build({2, 1, 0});
  PercentileDigest bc(0.01);
  {
    PercentileDigest b(0.01), c(0.01);
    for (double x : shards[1]) b.add(x);
    for (double x : shards[2]) c.add(x);
    bc.merge(b);
    bc.merge(c);
  }
  PercentileDigest a_bc(0.01);
  for (double x : shards[0]) a_bc.add(x);
  a_bc.merge(bc);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double ref = abc.quantile(q);
    EXPECT_DOUBLE_EQ(cba.quantile(q), ref) << "q=" << q;
    EXPECT_DOUBLE_EQ(a_bc.quantile(q), ref) << "q=" << q;
  }
}

TEST(PercentileDigestTest, MergeRejectsMismatchedAccuracy) {
  PercentileDigest a(0.01), b(0.02);
  EXPECT_THROW(a.merge(b), sim::SimError);
}

}  // namespace
}  // namespace mts::stats
