#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mts::stats {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "30486"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("30486"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(19.6049, 2), "19.60");
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"x", "y", "z"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace mts::stats
