#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mts::stats {
namespace {

TEST(SummaryTest, EmptyIsNeutral) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SummaryTest, KnownMeanAndSampleVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, MergeEqualsSequential) {
  sim::Rng rng(4);
  Summary whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(SummaryTest, Ci95ShrinksWithSamples) {
  Summary small, large;
  sim::Rng rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(SummaryTest, SemMatchesDefinition) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_NEAR(s.sem(), s.stddev() / 2.0, 1e-12);
  EXPECT_NEAR(s.ci95(), 1.96 * s.sem(), 1e-12);
}

}  // namespace
}  // namespace mts::stats
