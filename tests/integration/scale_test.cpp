// Large-arena guarantees for the 10k-node scaling work: mobility
// trajectory history stays bounded (the NeighborIndex snapshot hook
// prunes behind the previous snapshot), steady-state index rebuilds
// stop allocating once the CSR buffers are sized, and — because both
// mechanisms only drop history that no live query can reach — every
// fixed-seed fingerprint replays bit-identically (the 20-node pins live
// in packet_plane_test.cpp; the 50-node pins from BENCH_packetplane.json
// live here).
#include <gtest/gtest.h>

#include <numeric>

#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

/// The macro_packetplane bench configuration (50 nodes, 40 s, seed 42,
/// MAXSPEED 10) whose fingerprints BENCH_packetplane.json records.
ScenarioConfig bench_like(Protocol p) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = 50;
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::sec(40);
  cfg.seed = 42;
  return cfg;
}

/// Fast churn on a small field: legs last a few seconds, so a 60 s run
/// generates several legs per node and the pruning low-water mark
/// actually advances past most of them.
ScenarioConfig churny() {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kMts;
  cfg.node_count = 30;
  cfg.field = mobility::Field{300.0, 300.0};
  cfg.max_speed = 25.0;
  cfg.min_speed = 5.0;
  cfg.pause = sim::Time::ms(100);
  cfg.min_flow_distance = 0.0;  // 300 m field can't fit the 400 m default
  cfg.sim_time = sim::Time::sec(60);
  cfg.seed = 1;
  return cfg;
}

/// 2000 nodes at the paper's density (50 per 1000 m x 1000 m).
ScenarioConfig large_arena() {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kMts;
  cfg.node_count = 2000;
  cfg.field = mobility::Field{6325.0, 6325.0};
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::sec(10);
  // A single flow can stall on a failed discovery and leave the medium
  // idle (rebuilds are lazy, riding on transmissions); ten keep it busy.
  cfg.flow_count = 10;
  cfg.seed = 42;
  return cfg;
}

struct Fingerprint {
  Protocol protocol;
  std::uint64_t events;
  std::uint64_t delivered;
  std::uint64_t control;
  std::uint64_t pe;
};

// BENCH_packetplane.json, "fingerprints_seed42_50n_40s" (captured from
// the pre-refactor packet plane; unchanged by every refactor since).
constexpr Fingerprint kPinned50[] = {
    {Protocol::kDsr, 200471, 151, 118, 1},
    {Protocol::kAodv, 1786206, 1406, 241, 446},
    {Protocol::kMts, 1908920, 1479, 514, 1065},
    {Protocol::kSmr, 391419, 282, 457, 201},
};

TEST(ScaleTest, FiftyNodeFingerprintsMatchTheBenchBaseline) {
  for (const Fingerprint& fp : kPinned50) {
    const RunMetrics m = run_scenario(bench_like(fp.protocol));
    EXPECT_EQ(m.events_executed, fp.events) << protocol_name(fp.protocol);
    EXPECT_EQ(m.segments_delivered, fp.delivered) << protocol_name(fp.protocol);
    EXPECT_EQ(m.control_packets, fp.control) << protocol_name(fp.protocol);
    EXPECT_EQ(m.pe, fp.pe) << protocol_name(fp.protocol);
    EXPECT_EQ(m.pr, m.segments_delivered) << protocol_name(fp.protocol);
  }
}

TEST(ScaleTest, MobilityHistoryIsPrunedAndBoundedInAChurnyRun) {
  const RunMetrics m = run_scenario(churny());
  // Legs last ~3-10 s, so 60 s generates several per node ...
  EXPECT_GE(m.mobility_legs_generated, 2u * 30u);
  // ... and the snapshot hook retires them as the run advances.
  EXPECT_GT(m.mobility_legs_pruned, 0u);
  const std::uint64_t live = m.mobility_legs_generated - m.mobility_legs_pruned;
  EXPECT_LE(live, 8u * 30u) << "live trajectory history not bounded";
  // No node ever held more than a handful of legs at once: memory is
  // O(nodes), not O(sim-time x nodes).
  EXPECT_LE(m.mobility_peak_live_legs, 8u);
}

TEST(ScaleTest, TwoThousandNodeRunStaysFlat) {
  const RunMetrics m = run_scenario(large_arena());
  EXPECT_GT(m.events_executed, 0u);

  // The index refreshed throughout the run, and the CSR buffers settled
  // after warm-up: almost every rebuild reused existing capacity.
  EXPECT_GE(m.neighbor_rebuilds, 15u);
  EXPECT_LE(m.neighbor_rebuild_allocs, 5u);
  EXPECT_LT(m.neighbor_rebuild_allocs, m.neighbor_rebuilds);

  // Per-node trajectory history stayed a handful of legs.
  EXPECT_GE(m.mobility_legs_generated, 2000u);
  EXPECT_LE(m.mobility_peak_live_legs, 8u);

  // Per-subsystem attribution: the tagged categories never exceed the
  // total, and the medium dominates a broadcast-flood workload.
  const std::uint64_t tagged = std::accumulate(
      m.events_by_category.begin(), m.events_by_category.end(),
      std::uint64_t{0});
  EXPECT_LE(tagged, m.events_executed);
  EXPECT_GT(m.executed(sim::EventCategory::kChannel), 0u);
  EXPECT_GT(m.executed(sim::EventCategory::kPhy), 0u);
  EXPECT_GT(m.executed(sim::EventCategory::kMac), 0u);
  EXPECT_GT(m.executed(sim::EventCategory::kRouting), 0u);
}

TEST(ScaleTest, CategoryCountersSumToExecutedTotal) {
  ScenarioConfig cfg = bench_like(Protocol::kMts);
  cfg.sim_time = sim::Time::sec(5);
  const RunMetrics m = run_scenario(cfg);
  const std::uint64_t total = std::accumulate(
      m.events_by_category.begin(), m.events_by_category.end(),
      std::uint64_t{0});
  // Every executed event lands in exactly one bucket (untagged ones in
  // kOther), so the buckets partition the total.
  EXPECT_EQ(total, m.events_executed);
  EXPECT_GT(m.executed(sim::EventCategory::kTransport), 0u);
}

}  // namespace
}  // namespace mts::harness
