// Packet-plane guarantees across the full phy->mac->routing->tcp stack:
// the zero-copy refactor must keep fixed-seed scenarios bit-identical,
// never deep-copy on non-mutating unicast paths, never leak pooled
// bodies, and shield every held sibling handle (channel pool, MAC retry
// buffer, trace sinks) from downstream copy-on-write mutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "harness/scenario.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"

namespace mts::harness {
namespace {

ScenarioConfig paper_like(Protocol p) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = 20;
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::sec(15);
  cfg.seed = 42;
  return cfg;
}

/// Two static nodes in range, one flow: every packet is originated or
/// terminally consumed, nothing is forwarded, so no handler ever
/// mutates a shared body.
ScenarioConfig direct_link(Protocol p) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = 2;
  cfg.static_positions = {{0.0, 0.0}, {150.0, 0.0}};
  cfg.explicit_flows = {FlowSpec{0, 1, sim::Time::sec(1)}};
  cfg.sim_time = sim::Time::sec(10);
  cfg.seed = 7;
  return cfg;
}

struct Fingerprint {
  Protocol protocol;
  std::uint64_t events;
  std::uint64_t delivered;
  std::uint64_t control;
  std::uint64_t pe;
};

// Captured from the pre-refactor packet plane (deep-copy value-type
// packets) on the reference toolchain, seed 42: the zero-copy plane is
// an optimization, not a behaviour change, so every fixed-seed run must
// replay bit-identically.  If a compiler/libm change ever shifts these,
// re-pin them from a build of the previous commit.
constexpr Fingerprint kPinned[] = {
    {Protocol::kDsr, 242727, 401, 41, 0},
    {Protocol::kAodv, 83232, 146, 120, 0},
    {Protocol::kMts, 253295, 402, 154, 0},
    {Protocol::kSmr, 121367, 188, 182, 0},
};

TEST(PacketPlaneTest, FixedSeedFingerprintsMatchThePreRefactorPlane) {
  for (const Fingerprint& fp : kPinned) {
    const RunMetrics m = run_scenario(paper_like(fp.protocol));
    EXPECT_EQ(m.events_executed, fp.events) << protocol_name(fp.protocol);
    EXPECT_EQ(m.segments_delivered, fp.delivered) << protocol_name(fp.protocol);
    EXPECT_EQ(m.control_packets, fp.control) << protocol_name(fp.protocol);
    EXPECT_EQ(m.pe, fp.pe) << protocol_name(fp.protocol);
    EXPECT_EQ(m.pr, m.segments_delivered) << protocol_name(fp.protocol);
  }
}

TEST(PacketPlaneTest, NonMutatingUnicastPathNeverDeepClones) {
  // On a direct link the whole run — TCP data, ACKs, discovery floods,
  // MTS checks — passes through queues, retry buffers, and the channel
  // pool as refcount bumps only.  A single CoW clone here means some
  // handler mutates where it used to read.
  for (Protocol p :
       {Protocol::kDsr, Protocol::kAodv, Protocol::kMts, Protocol::kSmr}) {
    const auto before = net::packet_pool_stats().cow_clones;
    const RunMetrics m = run_scenario(direct_link(p));
    EXPECT_GT(m.segments_delivered, 0u) << protocol_name(p);
    EXPECT_EQ(net::packet_pool_stats().cow_clones, before)
        << protocol_name(p) << ": deep clone on a non-mutating path";
  }
}

TEST(PacketPlaneTest, ForwardingClonesButOnlyOnMutatingHops) {
  // With relays in play, forwarding hops *must* clone (TTL decrement /
  // record append against live siblings) — but the count stays far
  // below what per-receiver deep copying would cost.
  const auto before = net::packet_pool_stats().cow_clones;
  const RunMetrics m = run_scenario(paper_like(Protocol::kDsr));
  const auto clones = net::packet_pool_stats().cow_clones - before;
  EXPECT_GT(clones, 0u);
  // Every clone corresponds to at most one executed event; the old
  // plane copied per enqueue + per carrier-sense receiver + per trace.
  EXPECT_LT(clones, m.events_executed / 10);
}

TEST(PacketPlaneTest, MutatingForwardChainIsZeroClone) {
  // Model a 5-hop unicast forward of one DSR data packet the way the
  // stack does it: every hop pins a sibling handle (channel pool, MAC
  // retry buffer, trace sink) while the forwarder rewrites the TTL and
  // the source-route cursor.  All of that per-hop state lives in the
  // handle cell, so the shared body must never clone — zero cow_clones,
  // zero pool acquires, one cell write per mutation.
  net::Packet p;
  auto& c = p.mutable_common();
  c.kind = net::PacketKind::kTcpData;
  c.src = 0;
  c.dst = 5;
  c.payload_bytes = 512;
  p.mutable_tcp() = net::TcpHeader{};
  net::DsrSourceRoute sr;
  sr.route = {0, 1, 2, 3, 4, 5};
  p.mutable_routing() = sr;
  p.mutable_hop().ttl = 16;

  const auto before = net::packet_pool_stats();
  std::vector<net::Packet> held;
  for (int hop = 0; hop < 5; ++hop) {
    held.push_back(p);  // the sibling a real hop would keep alive
    --p.mutable_hop().ttl;
    ++p.mutable_hop().cursor;
  }
  const auto after = net::packet_pool_stats();
  EXPECT_EQ(after.cow_clones, before.cow_clones);
  EXPECT_EQ(after.acquired, before.acquired);
  EXPECT_EQ(after.cell_acquired, before.cell_acquired + 10);
  EXPECT_EQ(p.hop().ttl, 11);
  EXPECT_EQ(p.hop().cursor, 5u);
  // Each pinned sibling still shows the cell exactly as of its hop.
  for (int hop = 0; hop < 5; ++hop) {
    EXPECT_EQ(held[static_cast<std::size_t>(hop)].hop().ttl, 16 - hop);
    EXPECT_EQ(held[static_cast<std::size_t>(hop)].hop().cursor,
              static_cast<std::uint16_t>(hop));
  }
}

TEST(PacketPlaneTest, ScenariosReturnEveryBodyToThePool) {
  const auto before = net::packet_pool_stats().live();
  for (Protocol p :
       {Protocol::kDsr, Protocol::kAodv, Protocol::kMts, Protocol::kSmr}) {
    run_scenario(direct_link(p));
    EXPECT_EQ(net::packet_pool_stats().live(), before)
        << protocol_name(p) << ": leaked packet bodies";
  }
}

TEST(PacketPlaneTest, TraceSinkRecordsAreImmuneToDownstreamMutation) {
  // A subscribed sink keeps every record's packet handle alive.  DSR
  // forwards mutate TTL and the source-route cursor per hop; records
  // captured earlier must keep showing the pre-mutation body.
  net::TraceHub hub;
  std::vector<net::TraceRecord> records;
  hub.subscribe([&records](const net::TraceRecord& r) {
    records.push_back(r);
  });
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDsr;
  cfg.node_count = 3;
  cfg.static_positions = {{0.0, 0.0}, {200.0, 0.0}, {400.0, 0.0}};
  cfg.explicit_flows = {FlowSpec{0, 2, sim::Time::sec(1)}};
  cfg.sim_time = sim::Time::sec(10);
  cfg.seed = 3;
  const RunMetrics m = run_scenario(cfg, &hub);
  ASSERT_GT(m.segments_delivered, 0u);

  // Find an RREQ traced at origination (record empty) and again at the
  // relay's rebroadcast (record grown, TTL down): same uid, two
  // distinct bodies — the relay's append cloned instead of mutating the
  // body the origination record still holds.
  bool checked = false;
  for (const net::TraceRecord& orig : records) {
    if (orig.op != net::TraceOp::kOriginate ||
        orig.packet.kind() != net::PacketKind::kDsrRreq) {
      continue;
    }
    for (const net::TraceRecord& fwd : records) {
      if (fwd.op != net::TraceOp::kForward || fwd.node != 1 ||
          fwd.packet.kind() != net::PacketKind::kDsrRreq ||
          fwd.packet.common().uid != orig.packet.common().uid) {
        continue;
      }
      const auto& h0 = std::get<net::DsrRreqHeader>(orig.packet.routing());
      const auto& h1 = std::get<net::DsrRreqHeader>(fwd.packet.routing());
      EXPECT_TRUE(h0.record.empty());  // unperturbed by the relay's append
      ASSERT_EQ(h1.record.size(), 1u);
      EXPECT_EQ(h1.record[0], 1u);
      EXPECT_EQ(orig.packet.hop().ttl, fwd.packet.hop().ttl + 1);
      checked = true;
      break;
    }
    if (checked) break;
  }
  EXPECT_TRUE(checked) << "no originate/forward record pair found";
}

}  // namespace
}  // namespace mts::harness
