// Property-style sweeps: invariants that must hold for every protocol,
// speed, and seed — parameterized over the cross-product.
#include <gtest/gtest.h>

#include "core/disjoint.hpp"
#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

struct Case {
  Protocol protocol;
  double speed;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(protocol_name(info.param.protocol)) + "_v" +
         std::to_string(static_cast<int>(info.param.speed)) + "_s" +
         std::to_string(info.param.seed);
}

class MobileInvariantTest : public ::testing::TestWithParam<Case> {
 protected:
  RunMetrics run() {
    ScenarioConfig cfg;
    cfg.protocol = GetParam().protocol;
    cfg.max_speed = GetParam().speed;
    cfg.seed = GetParam().seed;
    cfg.node_count = 30;
    cfg.sim_time = sim::Time::sec(25);
    return run_scenario(cfg);
  }
};

TEST_P(MobileInvariantTest, MetricsStayInPhysicalBounds) {
  const RunMetrics m = run();
  // Deliveries cannot exceed transmissions.
  EXPECT_LE(m.segments_delivered, m.data_packets_sent);
  // Participating nodes bounded by intermediates.
  EXPECT_LE(m.participating_nodes, 28u);
  // Interception of unique segments cannot exceed unique segments sent.
  EXPECT_LE(m.pe, m.data_packets_sent);
  // Normalized stddev of shares lies in [0, 1].
  EXPECT_GE(m.relay_stddev, 0.0);
  EXPECT_LE(m.relay_stddev, 1.0);
  // Delay of a delivered packet is positive and below the run length.
  if (m.segments_delivered > 0) {
    EXPECT_GT(m.avg_delay_s, 0.0);
    EXPECT_LT(m.avg_delay_s, 25.0);
  }
  // Per-second series sums to the delivered total.
  std::uint64_t sum = 0;
  for (auto v : m.deliveries_per_second) sum += v;
  EXPECT_EQ(sum, m.segments_delivered);
}

TEST_P(MobileInvariantTest, NoForwardingLoops) {
  // TTL-expired drops indicate a loop (static TTL 32 >> any real path in
  // a 30-node field).  Loop freedom is the §III-C claim.
  const RunMetrics m = run();
  EXPECT_EQ(m.dropped(net::DropReason::kTtlExpired), 0u);
}

TEST_P(MobileInvariantTest, ConservationOfDataPackets) {
  // Every data transmission is eventually delivered, dropped, or still
  // in flight (queued) at the end: deliveries never exceed sends, and
  // drops are attributed.
  const RunMetrics m = run();
  EXPECT_LE(m.segments_delivered, m.data_packets_sent);
  if (m.delivery_rate < 0.5 && m.data_packets_sent > 50) {
    // Poor delivery must be explained by counted drops somewhere.
    std::uint64_t explained = 0;
    for (std::size_t r = 0; r < m.drops.size(); ++r) explained += m.drops[r];
    EXPECT_GT(explained, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MobileInvariantTest,
    ::testing::Values(Case{Protocol::kDsr, 2, 1}, Case{Protocol::kDsr, 20, 2},
                      Case{Protocol::kAodv, 2, 1},
                      Case{Protocol::kAodv, 20, 2},
                      Case{Protocol::kMts, 2, 1}, Case{Protocol::kMts, 20, 2},
                      Case{Protocol::kMts, 10, 3}),
    case_name);

class MtsPathPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MtsPathPropertyTest, StoredPathSetsHonourDisjointnessRule) {
  // For random static topologies, every pair of concurrently stored MTS
  // paths at any destination must satisfy the paper's next/last-hop rule
  // — checked here via the public disjoint:: predicates on the stored
  // sets of a mobile run's final state (exposed through stored_paths_for
  // in the routing bench; here we assert the weaker observable: path
  // tags delivered at the sink map to distinct first/last hops is not
  // directly visible, so this test uses admissible() directly on random
  // path sets as a pure property check).
  sim::Rng rng(GetParam());
  std::vector<core::PathNodes> stored;
  const net::NodeId S = 1000, D = 2000;
  for (int i = 0; i < 100; ++i) {
    core::PathNodes cand;
    const int len = static_cast<int>(rng.uniform_int(0, 5));
    for (int k = 0; k < len; ++k) {
      cand.push_back(static_cast<net::NodeId>(rng.uniform_int(0, 29)));
    }
    if (core::admissible(stored, cand, S, D)) {
      stored.push_back(cand);
      // Invariant: all pairs remain mutually hop-disjoint.
      for (std::size_t a = 0; a < stored.size(); ++a) {
        for (std::size_t b = a + 1; b < stored.size(); ++b) {
          EXPECT_TRUE(
              core::next_last_hop_disjoint(stored[a], stored[b], S, D));
        }
      }
    }
  }
  // The rule admits at most one path per distinct first hop: with ids
  // 0..29 the set stays modest.
  EXPECT_LE(stored.size(), 31u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtsPathPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class SpeedSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweepTest, AllProtocolsSurviveEverySpeed) {
  for (Protocol p : {Protocol::kDsr, Protocol::kAodv, Protocol::kMts}) {
    ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.max_speed = GetParam();
    cfg.node_count = 30;
    cfg.sim_time = sim::Time::sec(15);
    cfg.seed = 11;
    const RunMetrics m = run_scenario(cfg);
    // The run completes and the machinery produced traffic.
    EXPECT_GT(m.events_executed, 1000u);
    EXPECT_GT(m.data_packets_sent + m.control_packets, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSpeeds, SpeedSweepTest,
                         ::testing::Values(2.0, 5.0, 10.0, 15.0, 20.0));

}  // namespace
}  // namespace mts::harness
