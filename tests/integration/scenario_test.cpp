// Scenario/harness behaviour: configuration validation, determinism,
// metric wiring, and the campaign machinery.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

ScenarioConfig small(Protocol p = Protocol::kMts, std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = 20;
  cfg.max_speed = 10.0;
  cfg.sim_time = sim::Time::sec(15);
  cfg.seed = seed;
  return cfg;
}

TEST(ScenarioTest, IdenticalSeedsGiveIdenticalResults) {
  const RunMetrics a = run_scenario(small());
  const RunMetrics b = run_scenario(small());
  EXPECT_EQ(a.segments_delivered, b.segments_delivered);
  EXPECT_EQ(a.control_packets, b.control_packets);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.pe, b.pe);
  EXPECT_DOUBLE_EQ(a.avg_delay_s, b.avg_delay_s);
}

TEST(ScenarioTest, DataPathNeverHeapAllocatesClosures) {
  // Every scheduling closure in phy/mac/routing/tcp must fit the event
  // core's inline capture buffer; a fallback means someone re-introduced
  // a fat capture (e.g. a Packet or Frame copied into a lambda) on the
  // per-packet path.
  for (Protocol p :
       {Protocol::kDsr, Protocol::kAodv, Protocol::kMts, Protocol::kSmr}) {
    const RunMetrics m = run_scenario(small(p));
    EXPECT_GT(m.events_executed, 0u);
    EXPECT_EQ(m.heap_fallback_closures, 0u)
        << protocol_name(p) << ": oversized closure on the event path";
  }
}

TEST(ScenarioTest, DifferentSeedsGiveDifferentRuns) {
  const RunMetrics a = run_scenario(small(Protocol::kMts, 1));
  const RunMetrics b = run_scenario(small(Protocol::kMts, 2));
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(ScenarioTest, SameSeedSharesMobilityAcrossProtocols) {
  // Flow endpoints and the eavesdropper are seed-derived, protocol
  // independent (paired comparisons).
  const RunMetrics a = run_scenario(small(Protocol::kAodv, 7));
  const RunMetrics b = run_scenario(small(Protocol::kDsr, 7));
  EXPECT_EQ(a.eavesdropper, b.eavesdropper);
}

TEST(ScenarioTest, MetricsAreInternallyConsistent) {
  const RunMetrics m = run_scenario(small());
  EXPECT_EQ(m.pr, m.segments_delivered);
  EXPECT_GE(m.delivery_rate, 0.0);
  EXPECT_LE(m.delivery_rate, 1.2);  // small dup-arrival slack
  EXPECT_GE(m.relay_stddev, 0.0);
  EXPECT_LE(m.relay_stddev, 1.0);
  std::uint64_t beta_sum = 0;
  std::uint64_t beta_max = 0;
  for (const auto& [node, beta] : m.betas) {
    beta_sum += beta;
    beta_max = std::max(beta_max, beta);
  }
  EXPECT_EQ(beta_sum, m.alpha);
  EXPECT_EQ(beta_max, m.max_beta);
  EXPECT_EQ(m.participating_nodes, m.betas.size());
}

TEST(ScenarioTest, EavesdropperNeverAFlowEndpoint) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioConfig cfg = small(Protocol::kAodv, seed);
    const RunMetrics m = run_scenario(cfg);
    ASSERT_NE(m.eavesdropper, net::kNoNode);
    // Endpoints are excluded from the census; the eavesdropper is not.
    for (const auto& [node, beta] : m.betas) {
      EXPECT_LT(node, cfg.node_count);
    }
  }
}

TEST(ScenarioTest, ValidationRejectsBadConfigs) {
  ScenarioConfig cfg = small();
  cfg.node_count = 1;
  EXPECT_THROW(run_scenario(cfg), sim::ConfigError);

  cfg = small();
  cfg.sim_time = sim::Time::zero();
  EXPECT_THROW(run_scenario(cfg), sim::ConfigError);

  cfg = small();
  cfg.static_positions = {{0, 0}};  // wrong count
  EXPECT_THROW(run_scenario(cfg), sim::ConfigError);

  cfg = small();
  cfg.explicit_flows.push_back({5, 5, sim::Time::sec(1)});  // src == dst
  EXPECT_THROW(run_scenario(cfg), sim::ConfigError);

  cfg = small();
  cfg.explicit_flows.push_back({0, 99, sim::Time::sec(1)});  // out of range
  EXPECT_THROW(run_scenario(cfg), sim::ConfigError);
}

TEST(ScenarioTest, MinFlowDistanceRespectedAtPlacement) {
  ScenarioConfig cfg = small();
  cfg.min_flow_distance = 400.0;
  cfg.node_count = 50;
  cfg.sim_time = sim::Time::sec(5);
  // Nothing to assert directly about endpoints (hidden), but the run
  // must complete and pick a multihop pair, observable as relays or
  // discovery traffic.
  const RunMetrics m = run_scenario(cfg);
  EXPECT_GT(m.control_packets, 0u);
}


TEST(ScenarioTest, FadingChannelRunsAndDegradesGracefully) {
  // With slow fading on, marginal links blink at the coherence time;
  // the stack must keep delivering (routing repairs around fades) and
  // determinism must hold.
  ScenarioConfig cfg = small(Protocol::kMts, 9);
  cfg.node_count = 40;
  cfg.fading_enabled = true;
  cfg.fading.fade_probability = 0.25;
  cfg.fading.coherence_time = sim::Time::sec(3);
  const RunMetrics a = run_scenario(cfg);
  const RunMetrics b = run_scenario(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);  // still deterministic
  EXPECT_GT(a.events_executed, 1000u);
  // Fading must actually bite relative to the clean channel.
  cfg.fading_enabled = false;
  const RunMetrics clean = run_scenario(cfg);
  EXPECT_NE(clean.events_executed, a.events_executed);
}

TEST(CampaignTest, RunsFullGridAndAggregates) {
  CampaignConfig cfg;
  cfg.base = small();
  cfg.base.sim_time = sim::Time::sec(5);
  cfg.speeds = {2, 20};
  cfg.protocols = {Protocol::kAodv, Protocol::kMts};
  cfg.repetitions = 2;
  cfg.threads = 2;
  const CampaignResult r = run_campaign(cfg);
  EXPECT_EQ(r.total_runs(), 8u);
  for (Protocol p : cfg.protocols) {
    for (double v : cfg.speeds) {
      EXPECT_EQ(r.runs(p, v).size(), 2u);
      const auto s = r.summarize(
          p, v, [](const RunMetrics& m) { return m.delivery_rate; });
      EXPECT_EQ(s.count(), 2u);
      EXPECT_GE(s.mean(), 0.0);
    }
  }
}

TEST(CampaignTest, PairedSeedsAcrossProtocols) {
  CampaignConfig cfg;
  cfg.base = small();
  cfg.base.sim_time = sim::Time::sec(3);
  cfg.speeds = {10};
  cfg.repetitions = 3;
  cfg.seed_base = 100;
  const CampaignResult r = run_campaign(cfg);
  const auto& aodv = r.runs(Protocol::kAodv, 10);
  const auto& mts = r.runs(Protocol::kMts, 10);
  ASSERT_EQ(aodv.size(), 3u);
  ASSERT_EQ(mts.size(), 3u);
  std::set<std::uint64_t> sa, sm;
  for (const auto& m : aodv) sa.insert(m.seed);
  for (const auto& m : mts) sm.insert(m.seed);
  EXPECT_EQ(sa, sm);  // identical seed sets => paired comparison
}

TEST(CampaignTest, MissingCellYieldsEmpty) {
  CampaignResult r;
  EXPECT_TRUE(r.runs(Protocol::kDsr, 99).empty());
  EXPECT_EQ(r.summarize(Protocol::kDsr, 99, [](const RunMetrics&) {
              return 1.0;
            }).count(),
            0u);
}

TEST(CampaignTest, PrintFigureProducesRowsPerSpeed) {
  CampaignConfig cfg;
  cfg.base = small();
  cfg.base.sim_time = sim::Time::sec(2);
  cfg.speeds = {2, 20};
  cfg.protocols = {Protocol::kMts};
  cfg.repetitions = 1;
  const CampaignResult r = run_campaign(cfg);
  std::ostringstream os;
  print_figure(os, r, cfg, "Test figure", "unit",
               [](const RunMetrics& m) { return m.delivery_rate; });
  const std::string out = os.str();
  EXPECT_NE(out.find("Test figure"), std::string::npos);
  EXPECT_NE(out.find("MTS"), std::string::npos);
  // One row per speed (cells are right-aligned with padding).
  EXPECT_NE(out.find(" 2 "), std::string::npos);
  EXPECT_NE(out.find(" 20 "), std::string::npos);
}

}  // namespace
}  // namespace mts::harness
