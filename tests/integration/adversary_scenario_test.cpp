// End-to-end adversary coverage: the models are wired through the
// channel tap and the MAC->routing seam, so these tests drive full
// simulations and assert on the resulting RunMetrics.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

ScenarioConfig small_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.node_count = 25;
  // Denser than the paper's 50-node/1000 m grid so every seed yields a
  // connected multihop topology at 25 nodes.
  cfg.field = {700.0, 700.0};
  cfg.sim_time = sim::Time::sec(20);
  cfg.max_speed = 5.0;
  cfg.seed = seed;
  return cfg;
}

TEST(AdversaryScenarioTest, CoalitionInterceptionMonotoneInCoalitionSize) {
  // Same seed => identical simulation (passive adversaries are pure
  // observers) and nested coalitions (prefix member draw), so the
  // pooled capture can only grow with coalition size.
  std::uint64_t prev_captured = 0;
  double prev_ratio = 0.0;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    ScenarioConfig cfg = small_base(11);
    cfg.protocol = Protocol::kMts;
    cfg.adversary.kind = security::AdversaryKind::kColluding;
    cfg.adversary.count = k;
    const RunMetrics m = run_scenario(cfg);
    EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kColluding);
    EXPECT_EQ(m.adversary_count, k);
    EXPECT_GE(m.coalition_captured, prev_captured)
        << "coalition of " << k << " captured less than a smaller one";
    EXPECT_GE(m.coalition_interception_ratio, prev_ratio);
    prev_captured = m.coalition_captured;
    prev_ratio = m.coalition_interception_ratio;
  }
  EXPECT_GT(prev_captured, 0u) << "largest coalition never heard anything";
}

TEST(AdversaryScenarioTest, PassiveAdversaryDoesNotPerturbTheRun) {
  ScenarioConfig plain = small_base(7);
  plain.protocol = Protocol::kMts;
  const RunMetrics base = run_scenario(plain);

  ScenarioConfig watched = plain;
  watched.adversary.kind = security::AdversaryKind::kColluding;
  watched.adversary.count = 4;
  const RunMetrics obs = run_scenario(watched);

  // Identical event stream: the coalition only watches.
  EXPECT_EQ(base.events_executed, obs.events_executed);
  EXPECT_EQ(base.segments_delivered, obs.segments_delivered);
  EXPECT_EQ(base.control_packets, obs.control_packets);
}

TEST(AdversaryScenarioTest, BlackholeStrictlyReducesAodvDelivery) {
  // Static 3-node chain 0 -(200m)- 1 -(200m)- 2 with a 250 m range:
  // every data packet must transit node 1.
  ScenarioConfig cfg;
  cfg.node_count = 3;
  cfg.static_positions = {{0, 0}, {200, 0}, {400, 0}};
  cfg.explicit_flows = {{0, 2, sim::Time::sec(1)}};
  cfg.min_flow_distance = 0;
  cfg.protocol = Protocol::kAodv;
  cfg.sim_time = sim::Time::sec(30);
  cfg.eavesdropper_enabled = false;
  cfg.seed = 3;

  const RunMetrics honest = run_scenario(cfg);
  ASSERT_GT(honest.segments_delivered, 0u) << "baseline chain never delivered";

  ScenarioConfig attacked = cfg;
  attacked.adversary.kind = security::AdversaryKind::kBlackhole;
  attacked.adversary.members = {1};
  const RunMetrics bh = run_scenario(attacked);

  EXPECT_EQ(bh.segments_delivered, 0u)
      << "the only relay is a blackhole; nothing can get through";
  EXPECT_LT(bh.delivery_rate, honest.delivery_rate);
  EXPECT_GT(bh.blackhole_absorbed, 0u);
  EXPECT_EQ(bh.dropped(net::DropReason::kAdversary), bh.blackhole_absorbed);
  // The attacker read everything it ate.
  EXPECT_GT(bh.coalition_captured, 0u);
}

TEST(AdversaryScenarioTest, BlackholeReducesDeliveryInAMobileNetwork) {
  // 25-node AODV network, 3 insider blackholes: delivery must not
  // improve, and the attackers must absorb traffic.
  ScenarioConfig cfg = small_base(5);
  cfg.protocol = Protocol::kAodv;
  const RunMetrics honest = run_scenario(cfg);

  ScenarioConfig attacked = cfg;
  attacked.adversary.kind = security::AdversaryKind::kBlackhole;
  attacked.adversary.count = 3;
  const RunMetrics bh = run_scenario(attacked);

  EXPECT_GT(bh.blackhole_absorbed, 0u);
  EXPECT_LT(bh.segments_delivered, honest.segments_delivered);
}

TEST(AdversaryScenarioTest, CampaignSweepsTheAdversaryAxis) {
  CampaignConfig cfg;
  cfg.base.node_count = 20;
  cfg.base.sim_time = sim::Time::sec(8);
  cfg.speeds = {2};
  cfg.protocols = {Protocol::kAodv, Protocol::kMts};
  cfg.repetitions = 2;
  security::AdversarySpec colluding;
  colluding.kind = security::AdversaryKind::kColluding;
  colluding.count = 3;
  security::AdversarySpec mobile;
  mobile.kind = security::AdversaryKind::kMobile;
  mobile.count = 2;
  cfg.adversaries = {security::AdversarySpec{}, colluding, mobile};

  const CampaignResult result = run_campaign(cfg);
  EXPECT_EQ(result.total_runs(), 2u * 1u * 3u * 2u);
  for (Protocol p : cfg.protocols) {
    // Adversary index 0 is the paper grid: no adversary metrics.
    for (const RunMetrics& m : result.runs(p, 2, 0)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kNone);
    }
    ASSERT_EQ(result.runs(p, 2, 1).size(), 2u);
    for (const RunMetrics& m : result.runs(p, 2, 1)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kColluding);
      EXPECT_EQ(m.adversary_count, 3u);
      EXPECT_EQ(m.adversary_members.size(), 3u);
    }
    for (const RunMetrics& m : result.runs(p, 2, 2)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kMobile);
    }
  }
  // The summarize overload scoped to an adversary cell works.
  const stats::Summary s = result.summarize(
      Protocol::kMts, 2, 1,
      [](const RunMetrics& m) { return m.coalition_interception_ratio; });
  EXPECT_EQ(s.count(), 2u);
}

// --- active-attack suite ---------------------------------------------------

/// The fixed 20-node arena every active-adversary fingerprint uses.
ScenarioConfig active_base(Protocol p) {
  ScenarioConfig cfg;
  cfg.node_count = 20;
  cfg.field = {700.0, 700.0};
  cfg.sim_time = sim::Time::sec(15);
  cfg.max_speed = 5.0;
  cfg.seed = 11;
  cfg.protocol = p;
  return cfg;
}

security::AdversarySpec wormhole_spec() {
  security::AdversarySpec s;
  s.kind = security::AdversaryKind::kWormhole;
  return s;  // endpoints auto-placed, drop_prob 0.5
}

security::AdversarySpec grayhole_spec() {
  security::AdversarySpec s;
  s.kind = security::AdversaryKind::kGrayhole;
  s.count = 3;
  s.drop_prob = 0.3;
  return s;
}

security::AdversarySpec traffic_spec() {
  security::AdversarySpec s;
  s.kind = security::AdversaryKind::kTrafficAnalysis;
  s.count = 3;
  return s;
}

security::AdversarySpec flood_spec() {
  security::AdversarySpec s;
  s.kind = security::AdversaryKind::kRreqFlood;
  s.count = 1;
  s.flood_rate = 5.0;
  return s;
}

struct ActiveFingerprint {
  security::AdversaryKind kind;
  Protocol protocol;
  std::uint64_t events;
  std::uint64_t delivered;
  std::uint64_t control;
  std::uint64_t captured;  ///< pooled distinct segments
  std::uint64_t aux;       ///< kind-specific: tunneled / absorbed / injected
};

/// Fixed-seed attack-effect fingerprints, captured on the reference
/// toolchain.  These pin each attacker's *effect* — what it perturbed,
/// what it captured — as a regression-checked fact.  If a deliberate
/// behaviour change shifts them, re-pin from a run of this config and
/// say why in the commit.  Highlights the numbers encode:
///  - wormhole vs DSR: delivery collapses to zero (phantom shortcut
///    routes fail while discovery keeps succeeding through the tunnel);
///  - wormhole vs MTS: the tunnel *is* the best path, so the pair reads
///    the entire delivered stream (captured == delivered);
///  - grayhole at p=0.3: TCP collapses far below 70% of baseline — loss
///    compounds through timeouts — while absorbing only a handful;
///  - RREQ flood: 71 forged discoveries inflate control overhead ~20x
///    (DSR) while barely denting delivery.
constexpr ActiveFingerprint kActivePinned[] = {
    {security::AdversaryKind::kWormhole, Protocol::kDsr,
     119225, 0, 1979, 1, 198},
    {security::AdversaryKind::kWormhole, Protocol::kMts,
     255836, 314, 613, 314, 564},
    {security::AdversaryKind::kGrayhole, Protocol::kDsr,
     40868, 58, 36, 16, 17},
    {security::AdversaryKind::kGrayhole, Protocol::kMts,
     13828, 16, 52, 3, 4},
    {security::AdversaryKind::kTrafficAnalysis, Protocol::kDsr,
     283999, 466, 59, 0, 0},
    {security::AdversaryKind::kTrafficAnalysis, Protocol::kMts,
     288290, 453, 52, 0, 0},
    {security::AdversaryKind::kRreqFlood, Protocol::kDsr,
     338414, 458, 1185, 0, 71},
    {security::AdversaryKind::kRreqFlood, Protocol::kMts,
     364623, 456, 1957, 0, 71},
};

security::AdversarySpec spec_for(security::AdversaryKind k) {
  switch (k) {
    case security::AdversaryKind::kWormhole: return wormhole_spec();
    case security::AdversaryKind::kGrayhole: return grayhole_spec();
    case security::AdversaryKind::kTrafficAnalysis: return traffic_spec();
    case security::AdversaryKind::kRreqFlood: return flood_spec();
    default: return {};
  }
}

TEST(ActiveAdversaryScenarioTest, FixedSeedAttackEffectFingerprints) {
  for (const ActiveFingerprint& fp : kActivePinned) {
    ScenarioConfig cfg = active_base(fp.protocol);
    cfg.adversary = spec_for(fp.kind);
    const RunMetrics m = run_scenario(cfg);
    const std::string tag = std::string(protocol_name(fp.protocol)) + "/" +
                            security::adversary_kind_name(fp.kind);
    EXPECT_EQ(m.adversary_kind, fp.kind) << tag;
    EXPECT_EQ(m.events_executed, fp.events) << tag;
    EXPECT_EQ(m.segments_delivered, fp.delivered) << tag;
    EXPECT_EQ(m.control_packets, fp.control) << tag;
    EXPECT_EQ(m.coalition_captured, fp.captured) << tag;
    switch (fp.kind) {
      case security::AdversaryKind::kWormhole:
        EXPECT_EQ(m.wormhole_tunneled, fp.aux) << tag;
        EXPECT_EQ(m.adversary_members.size(), 2u) << tag;
        break;
      case security::AdversaryKind::kGrayhole:
        EXPECT_EQ(m.grayhole_absorbed, fp.aux) << tag;
        EXPECT_EQ(m.blackhole_absorbed, fp.aux) << tag;  // same counter
        break;
      case security::AdversaryKind::kTrafficAnalysis:
        EXPECT_DOUBLE_EQ(m.endpoint_inference_accuracy, 1.0)
            << tag << ": metadata profiling should identify the flow "
            << "endpoints in this arena — relay spreading does not hide "
            << "the endpoints' volume signature";
        break;
      case security::AdversaryKind::kRreqFlood:
        EXPECT_EQ(m.flood_injected, fp.aux) << tag;
        break;
      default:
        break;
    }
  }
}

TEST(ActiveAdversaryScenarioTest, TrafficAnalysisRunIsBitIdenticalToNoAdversary) {
  // The same guarantee PR 1 pinned for eavesdroppers, extended to the
  // new passive kind: a kTrafficAnalysis coalition is a pure observer,
  // so the run replays the adversary-free event stream exactly.
  for (Protocol p : {Protocol::kDsr, Protocol::kMts}) {
    const RunMetrics base = run_scenario(active_base(p));
    ScenarioConfig watched = active_base(p);
    watched.adversary = traffic_spec();
    const RunMetrics obs = run_scenario(watched);
    EXPECT_EQ(base.events_executed, obs.events_executed) << protocol_name(p);
    EXPECT_EQ(base.segments_delivered, obs.segments_delivered)
        << protocol_name(p);
    EXPECT_EQ(base.control_packets, obs.control_packets) << protocol_name(p);
    EXPECT_EQ(base.pe, obs.pe) << protocol_name(p);
    EXPECT_EQ(base.retransmits, obs.retransmits) << protocol_name(p);
  }
}

TEST(ActiveAdversaryScenarioTest, GrayholeEvadesADeliveryRateDetector) {
  // Static 3-node chain: every data packet transits node 1.  A blackhole
  // there zeroes delivery — any delivery-rate detector flags it.  A
  // grayhole at p = 0.15 keeps the connection alive and the end-to-end
  // delivery rate high enough to sit under the same detector's
  // threshold, while still eating (and reading) a slice of the stream.
  ScenarioConfig cfg;
  cfg.node_count = 3;
  cfg.static_positions = {{0, 0}, {200, 0}, {400, 0}};
  cfg.explicit_flows = {{0, 2, sim::Time::sec(1)}};
  cfg.min_flow_distance = 0;
  cfg.protocol = Protocol::kAodv;
  cfg.sim_time = sim::Time::sec(30);
  cfg.eavesdropper_enabled = false;
  cfg.seed = 3;

  const RunMetrics honest = run_scenario(cfg);
  ASSERT_GT(honest.segments_delivered, 0u);

  ScenarioConfig black = cfg;
  black.adversary.kind = security::AdversaryKind::kBlackhole;
  black.adversary.members = {1};
  const RunMetrics bh = run_scenario(black);
  EXPECT_EQ(bh.segments_delivered, 0u);

  ScenarioConfig gray = cfg;
  gray.adversary.kind = security::AdversaryKind::kGrayhole;
  gray.adversary.members = {1};
  gray.adversary.drop_prob = 0.15;
  const RunMetrics gh = run_scenario(gray);

  EXPECT_GT(gh.grayhole_absorbed, 0u) << "the grayhole never ate anything";
  EXPECT_GT(gh.coalition_captured, 0u) << "it reads what it eats";
  EXPECT_GT(gh.segments_delivered, 0u)
      << "a grayhole must keep the connection alive to stay hidden";
  // The evasion claim: the blackhole's delivery rate (0) trips any
  // threshold; the grayhole's stays in the healthy band.
  EXPECT_GT(gh.delivery_rate, 0.5);
  EXPECT_LT(gh.segments_delivered, honest.segments_delivered);
}

TEST(ActiveAdversaryScenarioTest, GrayholeDutyCycleOnlyEatsInsideTheWindow) {
  ScenarioConfig cfg;
  cfg.node_count = 3;
  cfg.static_positions = {{0, 0}, {200, 0}, {400, 0}};
  cfg.explicit_flows = {{0, 2, sim::Time::sec(1)}};
  cfg.min_flow_distance = 0;
  cfg.protocol = Protocol::kAodv;
  cfg.sim_time = sim::Time::sec(20);
  cfg.eavesdropper_enabled = false;
  cfg.seed = 3;
  cfg.adversary.kind = security::AdversaryKind::kGrayhole;
  cfg.adversary.members = {1};
  cfg.adversary.drop_prob = 1.0;
  // Eat everything, but only in the first quarter of each 8 s period:
  // TCP recovers between windows, so traffic still flows overall.
  cfg.adversary.active_window = sim::Time::sec(2);
  cfg.adversary.active_period = sim::Time::sec(8);
  const RunMetrics m = run_scenario(cfg);
  EXPECT_GT(m.grayhole_absorbed, 0u);
  EXPECT_GT(m.segments_delivered, 0u)
      << "with the veto off 3/4 of the time, data must get through";
}

TEST(ActiveAdversaryScenarioTest, WormholePerturbsAndMembersArePinnedPair) {
  // The wormhole is active by design: unlike the passive kinds it must
  // change the event stream, and its endpoint pair is the deterministic
  // anchor/far-end draw.
  const RunMetrics base = run_scenario(active_base(Protocol::kMts));
  ScenarioConfig cfg = active_base(Protocol::kMts);
  cfg.adversary = wormhole_spec();
  const RunMetrics w = run_scenario(cfg);
  EXPECT_NE(base.events_executed, w.events_executed);
  EXPECT_GT(w.wormhole_tunneled, 0u);
  ASSERT_EQ(w.adversary_members.size(), 2u);
  EXPECT_NE(w.adversary_members[0], w.adversary_members[1]);

  const RunMetrics w2 = run_scenario(cfg);
  EXPECT_EQ(w.adversary_members, w2.adversary_members)
      << "wormhole placement must be deterministic for a fixed seed";
  EXPECT_EQ(w.events_executed, w2.events_executed);
}

TEST(ActiveAdversaryScenarioTest, RreqFloodInflatesControlOverhead) {
  for (Protocol p : {Protocol::kDsr, Protocol::kMts}) {
    const RunMetrics base = run_scenario(active_base(p));
    ScenarioConfig cfg = active_base(p);
    cfg.adversary = flood_spec();
    const RunMetrics f = run_scenario(cfg);
    // Ticks at 1.0, 1.2, ..., 15.0 seconds: (15 - 1) * 5 + 1 per member.
    EXPECT_EQ(f.flood_injected, 71u) << protocol_name(p);
    EXPECT_GT(f.control_packets, base.control_packets + f.flood_injected)
        << protocol_name(p)
        << ": honest rebroadcasting must amplify the forged discoveries";
  }
}

TEST(AdversaryScenarioTest, MtsOutsourcesLessToACoalitionThanAodv) {
  // The paper's headline, lifted to coalitions: multipath spreading
  // should not make a pooled eavesdropper coalition *more* effective
  // than it is against single-path AODV on the same mobility.  This is
  // a smoke check on one seed, not a statistical claim.
  ScenarioConfig aodv = small_base(2);
  aodv.protocol = Protocol::kAodv;
  aodv.adversary.kind = security::AdversaryKind::kColluding;
  aodv.adversary.count = 2;
  const RunMetrics a = run_scenario(aodv);

  ScenarioConfig mts = small_base(2);
  mts.protocol = Protocol::kMts;
  mts.adversary.kind = security::AdversaryKind::kColluding;
  mts.adversary.count = 2;
  const RunMetrics m = run_scenario(mts);

  // Both produced meaningful traffic and observations.
  EXPECT_GT(a.segments_delivered, 0u);
  EXPECT_GT(m.segments_delivered, 0u);
}

}  // namespace
}  // namespace mts::harness
