// End-to-end adversary coverage: the models are wired through the
// channel tap and the MAC->routing seam, so these tests drive full
// simulations and assert on the resulting RunMetrics.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

ScenarioConfig small_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.node_count = 25;
  // Denser than the paper's 50-node/1000 m grid so every seed yields a
  // connected multihop topology at 25 nodes.
  cfg.field = {700.0, 700.0};
  cfg.sim_time = sim::Time::sec(20);
  cfg.max_speed = 5.0;
  cfg.seed = seed;
  return cfg;
}

TEST(AdversaryScenarioTest, CoalitionInterceptionMonotoneInCoalitionSize) {
  // Same seed => identical simulation (passive adversaries are pure
  // observers) and nested coalitions (prefix member draw), so the
  // pooled capture can only grow with coalition size.
  std::uint64_t prev_captured = 0;
  double prev_ratio = 0.0;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    ScenarioConfig cfg = small_base(11);
    cfg.protocol = Protocol::kMts;
    cfg.adversary.kind = security::AdversaryKind::kColluding;
    cfg.adversary.count = k;
    const RunMetrics m = run_scenario(cfg);
    EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kColluding);
    EXPECT_EQ(m.adversary_count, k);
    EXPECT_GE(m.coalition_captured, prev_captured)
        << "coalition of " << k << " captured less than a smaller one";
    EXPECT_GE(m.coalition_interception_ratio, prev_ratio);
    prev_captured = m.coalition_captured;
    prev_ratio = m.coalition_interception_ratio;
  }
  EXPECT_GT(prev_captured, 0u) << "largest coalition never heard anything";
}

TEST(AdversaryScenarioTest, PassiveAdversaryDoesNotPerturbTheRun) {
  ScenarioConfig plain = small_base(7);
  plain.protocol = Protocol::kMts;
  const RunMetrics base = run_scenario(plain);

  ScenarioConfig watched = plain;
  watched.adversary.kind = security::AdversaryKind::kColluding;
  watched.adversary.count = 4;
  const RunMetrics obs = run_scenario(watched);

  // Identical event stream: the coalition only watches.
  EXPECT_EQ(base.events_executed, obs.events_executed);
  EXPECT_EQ(base.segments_delivered, obs.segments_delivered);
  EXPECT_EQ(base.control_packets, obs.control_packets);
}

TEST(AdversaryScenarioTest, BlackholeStrictlyReducesAodvDelivery) {
  // Static 3-node chain 0 -(200m)- 1 -(200m)- 2 with a 250 m range:
  // every data packet must transit node 1.
  ScenarioConfig cfg;
  cfg.node_count = 3;
  cfg.static_positions = {{0, 0}, {200, 0}, {400, 0}};
  cfg.explicit_flows = {{0, 2, sim::Time::sec(1)}};
  cfg.min_flow_distance = 0;
  cfg.protocol = Protocol::kAodv;
  cfg.sim_time = sim::Time::sec(30);
  cfg.eavesdropper_enabled = false;
  cfg.seed = 3;

  const RunMetrics honest = run_scenario(cfg);
  ASSERT_GT(honest.segments_delivered, 0u) << "baseline chain never delivered";

  ScenarioConfig attacked = cfg;
  attacked.adversary.kind = security::AdversaryKind::kBlackhole;
  attacked.adversary.members = {1};
  const RunMetrics bh = run_scenario(attacked);

  EXPECT_EQ(bh.segments_delivered, 0u)
      << "the only relay is a blackhole; nothing can get through";
  EXPECT_LT(bh.delivery_rate, honest.delivery_rate);
  EXPECT_GT(bh.blackhole_absorbed, 0u);
  EXPECT_EQ(bh.dropped(net::DropReason::kAdversary), bh.blackhole_absorbed);
  // The attacker read everything it ate.
  EXPECT_GT(bh.coalition_captured, 0u);
}

TEST(AdversaryScenarioTest, BlackholeReducesDeliveryInAMobileNetwork) {
  // 25-node AODV network, 3 insider blackholes: delivery must not
  // improve, and the attackers must absorb traffic.
  ScenarioConfig cfg = small_base(5);
  cfg.protocol = Protocol::kAodv;
  const RunMetrics honest = run_scenario(cfg);

  ScenarioConfig attacked = cfg;
  attacked.adversary.kind = security::AdversaryKind::kBlackhole;
  attacked.adversary.count = 3;
  const RunMetrics bh = run_scenario(attacked);

  EXPECT_GT(bh.blackhole_absorbed, 0u);
  EXPECT_LT(bh.segments_delivered, honest.segments_delivered);
}

TEST(AdversaryScenarioTest, CampaignSweepsTheAdversaryAxis) {
  CampaignConfig cfg;
  cfg.base.node_count = 20;
  cfg.base.sim_time = sim::Time::sec(8);
  cfg.speeds = {2};
  cfg.protocols = {Protocol::kAodv, Protocol::kMts};
  cfg.repetitions = 2;
  security::AdversarySpec colluding;
  colluding.kind = security::AdversaryKind::kColluding;
  colluding.count = 3;
  security::AdversarySpec mobile;
  mobile.kind = security::AdversaryKind::kMobile;
  mobile.count = 2;
  cfg.adversaries = {security::AdversarySpec{}, colluding, mobile};

  const CampaignResult result = run_campaign(cfg);
  EXPECT_EQ(result.total_runs(), 2u * 1u * 3u * 2u);
  for (Protocol p : cfg.protocols) {
    // Adversary index 0 is the paper grid: no adversary metrics.
    for (const RunMetrics& m : result.runs(p, 2, 0)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kNone);
    }
    ASSERT_EQ(result.runs(p, 2, 1).size(), 2u);
    for (const RunMetrics& m : result.runs(p, 2, 1)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kColluding);
      EXPECT_EQ(m.adversary_count, 3u);
      EXPECT_EQ(m.adversary_members.size(), 3u);
    }
    for (const RunMetrics& m : result.runs(p, 2, 2)) {
      EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kMobile);
    }
  }
  // The summarize overload scoped to an adversary cell works.
  const stats::Summary s = result.summarize(
      Protocol::kMts, 2, 1,
      [](const RunMetrics& m) { return m.coalition_interception_ratio; });
  EXPECT_EQ(s.count(), 2u);
}

TEST(AdversaryScenarioTest, MtsOutsourcesLessToACoalitionThanAodv) {
  // The paper's headline, lifted to coalitions: multipath spreading
  // should not make a pooled eavesdropper coalition *more* effective
  // than it is against single-path AODV on the same mobility.  This is
  // a smoke check on one seed, not a statistical claim.
  ScenarioConfig aodv = small_base(2);
  aodv.protocol = Protocol::kAodv;
  aodv.adversary.kind = security::AdversaryKind::kColluding;
  aodv.adversary.count = 2;
  const RunMetrics a = run_scenario(aodv);

  ScenarioConfig mts = small_base(2);
  mts.protocol = Protocol::kMts;
  mts.adversary.kind = security::AdversaryKind::kColluding;
  mts.adversary.count = 2;
  const RunMetrics m = run_scenario(mts);

  // Both produced meaningful traffic and observations.
  EXPECT_GT(a.segments_delivered, 0u);
  EXPECT_GT(m.segments_delivered, 0u);
}

}  // namespace
}  // namespace mts::harness
