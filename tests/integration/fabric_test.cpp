// The fabric must be a pure reliability layer: a sweep run through
// process-isolated workers — including one that crashes, hangs or is
// resumed after a kill — has to produce the same merged CSV as the
// plain in-process campaign, and a unit that can never finish must
// degrade to marked `failed` rows instead of taking the sweep down.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "harness/campaign_cache.hpp"
#include "harness/campaign_csv.hpp"
#include "harness/supervisor.hpp"

namespace mts::harness {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mts_fabric_test_" + std::to_string(::getpid()));
    setenv("MTS_BENCH_CACHE_DIR", dir_.c_str(), 1);
    unsetenv("MTS_BENCH_NO_CACHE");
    unsetenv("MTS_FABRIC_TEST_HANG_UNIT");
    unsetenv("MTS_FABRIC_TEST_HANG_ATTEMPTS");
  }
  void TearDown() override {
    unsetenv("MTS_BENCH_CACHE_DIR");
    unsetenv("MTS_FABRIC_TEST_HANG_UNIT");
    unsetenv("MTS_FABRIC_TEST_HANG_ATTEMPTS");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// 2 speeds x 2 reps of a small AODV grid: two 1-cell work units,
  /// four scenario runs — big enough to have an innocent bystander unit
  /// next to the faulty one, small enough to fork repeatedly.
  static CampaignConfig tiny() {
    CampaignConfig cfg;
    cfg.base.node_count = 15;
    cfg.base.sim_time = sim::Time::sec(2);
    cfg.speeds = {5, 10};
    cfg.protocols = {Protocol::kAodv};
    cfg.repetitions = 2;
    return cfg;
  }

  /// Byte-identical merged output: the strongest equivalence we can
  /// ask for, and exactly what the sharded-sweep CI job diffs.
  static std::string csv_of(const CampaignConfig& cfg,
                            const CampaignResult& r) {
    std::ostringstream os;
    csv::write_campaign(os, cfg, r);
    return os.str();
  }

  static FabricConfig quick_fabric() {
    FabricConfig fab;
    fab.workers = 2;
    fab.backoff_base_s = 0.01;
    return fab;
  }

  std::filesystem::path dir_;
};

TEST_F(FabricTest, CleanFabricRunMatchesInProcessCampaignByteForByte) {
  const CampaignConfig cfg = tiny();
  const CampaignResult reference = run_campaign(cfg);

  const FabricReport report = run_campaign_fabric(cfg, quick_fabric());
  EXPECT_EQ(report.units_total, 2u);
  EXPECT_EQ(report.units_owned, 2u);
  EXPECT_EQ(report.units_run, 2u);
  EXPECT_EQ(report.units_ok, 2u);
  EXPECT_EQ(report.units_failed, 0u);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(csv_of(cfg, report.result), csv_of(cfg, reference));

  // A complete, failure-free grid is promoted into the campaign cache.
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(csv_of(cfg, *cached), csv_of(cfg, reference));
}

TEST_F(FabricTest, SigkilledWorkerIsRetriedAndTheSweepStillMatches) {
  const CampaignConfig cfg = tiny();
  const CampaignResult reference = run_campaign(cfg);

  // Crash unit 0's worker (SIGKILL mid-unit, before it writes a shard)
  // on the first attempt only: the supervisor must see "killed by
  // signal", back off, re-fork, and the retry succeeds.
  FabricConfig fab = quick_fabric();
  fab.test_child_hook = [](const WorkUnit& u, std::uint32_t attempt) {
    if (u.index == 0 && attempt == 1) ::raise(SIGKILL);
  };
  std::ostringstream log;
  const FabricReport report = run_campaign_fabric(cfg, fab, &log);
  EXPECT_EQ(report.units_failed, 0u);
  EXPECT_TRUE(report.complete);
  EXPECT_NE(log.str().find("killed by signal"), std::string::npos)
      << log.str();
  // attempts=2 on the retried unit's rows is the only allowed
  // difference; everything else is byte-identical.
  for (const RunMetrics& want : reference.runs(Protocol::kAodv, 5)) {
    bool found = false;
    for (const RunMetrics& got : report.result.runs(Protocol::kAodv, 5)) {
      if (got.seed != want.seed) continue;
      found = true;
      EXPECT_EQ(got.attempts, 2u);
      EXPECT_EQ(got.run_status, RunStatus::kOk);
      EXPECT_EQ(got.segments_delivered, want.segments_delivered);
      EXPECT_EQ(got.events_executed, want.events_executed);
      EXPECT_DOUBLE_EQ(got.avg_delay_s, want.avg_delay_s);
    }
    EXPECT_TRUE(found) << "seed " << want.seed << " missing after retry";
  }
}

TEST_F(FabricTest, CrashedSweepResumesAndMergesByteIdentical) {
  const CampaignConfig cfg = tiny();
  const CampaignResult reference = run_campaign(cfg);

  // Invocation 1 stands in for a host that died mid-sweep: unit 0's
  // worker is SIGKILLed on every attempt and no retries are granted, so
  // its shard ends up failed while unit 1 completes normally.
  FabricConfig crash = quick_fabric();
  crash.max_retries = 0;
  crash.test_child_hook = [](const WorkUnit& u, std::uint32_t) {
    if (u.index == 0) ::raise(SIGKILL);
  };
  const FabricReport first = run_campaign_fabric(cfg, crash);
  EXPECT_EQ(first.units_failed, 1u);
  EXPECT_EQ(first.units_ok, 1u);
  EXPECT_TRUE(first.complete);  // degraded rows keep the grid complete
  ASSERT_EQ(first.failures.size(), 1u);
  EXPECT_EQ(first.failures[0].index, 0u);
  // A degraded grid must NOT be promoted to the campaign cache.
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());

  // Invocation 2: resume without the fault.  Only the failed unit is
  // re-run; the intact shard is ingested from disk.
  const FabricReport second = run_campaign_fabric(cfg, quick_fabric());
  EXPECT_EQ(second.units_resumed, 1u);
  EXPECT_EQ(second.units_run, 1u);
  EXPECT_EQ(second.units_failed, 0u);
  EXPECT_TRUE(second.complete);

  // The merged result is byte-identical to an uninterrupted run (the
  // re-run starts a fresh attempt budget, so even attempts match).
  EXPECT_EQ(csv_of(cfg, second.result), csv_of(cfg, reference));
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(csv_of(cfg, *cached), csv_of(cfg, reference));
}

TEST_F(FabricTest, TimeoutKillsTheHangingWorkerAndTheRetrySucceeds) {
  const CampaignConfig cfg = tiny();
  const CampaignResult reference = run_campaign(cfg);

  // Env-forced hang: unit 0's worker spins forever on attempt 1 and
  // behaves on attempt 2 — the supervisor must SIGKILL it at the
  // deadline and the retry completes the unit.
  setenv("MTS_FABRIC_TEST_HANG_UNIT", "0", 1);
  setenv("MTS_FABRIC_TEST_HANG_ATTEMPTS", "1", 1);
  FabricConfig fab = quick_fabric();
  fab.unit_timeout_s = 2.0;
  std::ostringstream log;
  const FabricReport report = run_campaign_fabric(cfg, fab, &log);
  EXPECT_EQ(report.units_failed, 0u);
  EXPECT_EQ(report.units_ok, 2u);
  EXPECT_TRUE(report.complete);
  EXPECT_NE(log.str().find("timeout after"), std::string::npos) << log.str();
  // Same results as in-process, modulo attempts=2 on the hung unit.
  for (const RunMetrics& got : report.result.runs(Protocol::kAodv, 5)) {
    EXPECT_EQ(got.run_status, RunStatus::kOk);
    EXPECT_EQ(got.attempts, 2u);
  }
  EXPECT_EQ(report.result.summarize(
                          Protocol::kAodv, 5,
                          [](const RunMetrics& m) {
                            return static_cast<double>(m.segments_delivered);
                          })
                .mean(),
            reference.summarize(Protocol::kAodv, 5, [](const RunMetrics& m) {
                       return static_cast<double>(m.segments_delivered);
                     }).mean());
}

TEST_F(FabricTest, PermanentHangDegradesToFailedRowsAndStillCompletes) {
  // A 1-cell grid whose only unit hangs on every attempt: after
  // 1 + max_retries timeouts the fabric must give up, emit failed
  // placeholder rows carrying the full cell identity, and return a
  // complete report — graceful degradation, not a wedged sweep.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.repetitions = 2;
  setenv("MTS_FABRIC_TEST_HANG_UNIT", "0", 1);
  FabricConfig fab = quick_fabric();
  fab.unit_timeout_s = 0.4;
  fab.max_retries = 1;
  const FabricReport report = run_campaign_fabric(cfg, fab);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.units_failed, 1u);
  EXPECT_EQ(report.units_ok, 0u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].attempts, 2u);
  EXPECT_NE(report.failures[0].error.find("timeout"), std::string::npos);

  const auto& rows = report.result.runs(Protocol::kAodv, 5);
  ASSERT_EQ(rows.size(), 2u);
  for (const RunMetrics& m : rows) {
    EXPECT_EQ(m.run_status, RunStatus::kFailed);
    EXPECT_EQ(m.attempts, 2u);
    EXPECT_NE(m.run_error.find("timeout"), std::string::npos);
    EXPECT_EQ(m.protocol, Protocol::kAodv);
    EXPECT_DOUBLE_EQ(m.max_speed, 5.0);
  }
  // Honest accounting: summarize must skip the failed placeholders —
  // zeros averaged in would silently bias every figure.
  const stats::Summary s = report.result.summarize(
      Protocol::kAodv, 5,
      [](const RunMetrics& m) { return static_cast<double>(m.seed); });
  EXPECT_EQ(s.count(), 0u);
  // And the degraded grid stays out of the campaign cache so the next
  // resume retries it...
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());
  // ...which it does: drop the fault and resume.
  unsetenv("MTS_FABRIC_TEST_HANG_UNIT");
  const FabricReport retry = run_campaign_fabric(cfg, quick_fabric());
  EXPECT_EQ(retry.units_run, 1u);
  EXPECT_EQ(retry.units_failed, 0u);
  EXPECT_TRUE(CampaignCache::load(cfg).has_value());
}

TEST_F(FabricTest, ShardSlicesMergeAcrossInvocations) {
  const CampaignConfig cfg = tiny();
  const CampaignResult reference = run_campaign(cfg);

  // Two hosts, one slice each.  The first finisher's grid is
  // incomplete (its peer's shard is still pending), so nothing is
  // promoted to the campaign cache yet.
  FabricConfig shard0 = quick_fabric();
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  const FabricReport first = run_campaign_fabric(cfg, shard0);
  EXPECT_EQ(first.units_owned, 1u);
  EXPECT_EQ(first.units_run, 1u);
  EXPECT_FALSE(first.complete);
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());

  // The second shard runs its slice, ingests the first one's shard
  // file, and merges the full grid byte-identical to in-process.
  FabricConfig shard1 = quick_fabric();
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const FabricReport second = run_campaign_fabric(cfg, shard1);
  EXPECT_EQ(second.units_owned, 1u);
  EXPECT_EQ(second.units_run, 1u);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(csv_of(cfg, second.result), csv_of(cfg, reference));
  EXPECT_TRUE(CampaignCache::load(cfg).has_value());
}

}  // namespace
}  // namespace mts::harness
