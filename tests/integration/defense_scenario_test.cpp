// End-to-end countermeasure coverage: the defense models are wired
// through MTS's probe plane, the routing-layer RREQ admission seam, and
// the path-admission leash, so these tests drive full simulations and
// score each defense against the PR 4 attack suite — including the two
// attacks the undefended stack provably cannot see (insider blackhole
// vs. control-plane checking, duty-cycled grayhole vs. a delivery-rate
// detector).
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

/// Static diamond: 0 -> {1, 2} -> 3, the two arms disjoint, endpoints
/// out of mutual range.  MTS stores both paths, so an insider on one
/// arm is survivable — iff the source learns to avoid it.
ScenarioConfig diamond() {
  ScenarioConfig cfg;
  cfg.node_count = 4;
  cfg.field = {700.0, 700.0};
  cfg.static_positions = {{0, 100}, {200, 200}, {200, 0}, {400, 100}};
  cfg.explicit_flows = {{0, 3, sim::Time::sec(1)}};
  cfg.min_flow_distance = 0;
  cfg.protocol = Protocol::kMts;
  cfg.sim_time = sim::Time::sec(30);
  cfg.eavesdropper_enabled = false;
  cfg.seed = 3;
  return cfg;
}

/// The fixed 20-node arena the PR 4 active-adversary fingerprints use.
ScenarioConfig arena(Protocol p) {
  ScenarioConfig cfg;
  cfg.node_count = 20;
  cfg.field = {700.0, 700.0};
  cfg.sim_time = sim::Time::sec(15);
  cfg.max_speed = 5.0;
  cfg.seed = 11;
  cfg.protocol = p;
  return cfg;
}

TEST(DefenseScenarioTest, AckedCheckingDetectsTheInsiderBlackhole) {
  // PR 4's finding: MTS's check packets are control traffic, so a
  // blackhole forwards them and the poisoned path stays in use — on the
  // diamond the undefended source keeps rotating back onto the dead arm
  // and loses roughly half its goodput.
  ScenarioConfig cfg = diamond();
  cfg.adversary.kind = security::AdversaryKind::kBlackhole;
  cfg.adversary.members = {1};
  const RunMetrics undefended = run_scenario(cfg);
  ASSERT_GT(undefended.segments_delivered, 0u);
  EXPECT_EQ(undefended.paths_quarantined, 0u);

  cfg.defense.kind = security::DefenseKind::kAckedChecking;
  const RunMetrics defended = run_scenario(cfg);

  // The data-plane probes die in the blackhole like the stream does, so
  // the estimator sees what checking cannot.
  EXPECT_GT(defended.probes_sent, 0u);
  EXPECT_GT(defended.detection_time_s, 0.0) << "blackhole never detected";
  EXPECT_GE(defended.paths_quarantined, 1u);
  EXPECT_GT(defended.recovery_time_s, 0.0)
      << "delivery must resume after detection (the honest arm exists)";
  // Quarantine is sticky: goodput recovers toward the honest baseline
  // instead of bleeding on every rotation onto the poisoned arm.
  EXPECT_GT(defended.segments_delivered, 2 * undefended.segments_delivered)
      << "defended source still routed into the blackhole";
  // The attacker loses its meal: only pre-detection traffic is read.
  EXPECT_LT(defended.blackhole_absorbed, undefended.blackhole_absorbed);
}

TEST(DefenseScenarioTest, AckedCheckingDetectsTheDutyCycledGrayholeAcrossABoundary) {
  // The grayhole that defeats averaging: full absorption inside a 1.2 s
  // window of an 8 s period — a 15% long-run loss that keeps the
  // end-to-end delivery rate in the healthy band (PR 4 pinned the same
  // evasion for continuous p = 0.15).
  ScenarioConfig cfg = diamond();
  cfg.adversary.kind = security::AdversaryKind::kGrayhole;
  cfg.adversary.members = {1};
  cfg.adversary.drop_prob = 1.0;
  cfg.adversary.active_window = sim::Time::seconds(1.2);
  cfg.adversary.active_period = sim::Time::sec(8);
  const RunMetrics undefended = run_scenario(cfg);
  ASSERT_GT(undefended.grayhole_absorbed, 0u);
  EXPECT_GT(undefended.delivery_rate, 0.9)
      << "the duty-cycled grayhole must sit under a delivery-rate detector";

  cfg.defense.kind = security::DefenseKind::kAckedChecking;
  const RunMetrics defended = run_scenario(cfg);

  EXPECT_GE(defended.paths_quarantined, 1u);
  // Detection must happen *inside or just after an active window*: the
  // EWMA is sized to the duty cycle, so the first window that eats a
  // probe train (the t = 8 s one — the t = 0 window closes before the
  // first path exists) trips it.  A long-run average never would.
  EXPECT_GE(defended.detection_time_s, 8.0);
  EXPECT_LE(defended.detection_time_s, 11.0);
  EXPECT_GT(defended.segments_delivered, undefended.segments_delivered);
}

TEST(DefenseScenarioTest, LeashQuarantinesWormholePathsAndRestoresDelivery) {
  ScenarioConfig cfg = arena(Protocol::kMts);
  cfg.adversary.kind = security::AdversaryKind::kWormhole;
  const RunMetrics undefended = run_scenario(cfg);
  ASSERT_GT(undefended.wormhole_tunneled, 0u);

  cfg.defense.kind = security::DefenseKind::kWormholeLeash;
  const RunMetrics defended = run_scenario(cfg);

  // Advertised paths crossing the tunnel name two "adjacent" nodes an
  // arena apart: geometrically infeasible, quarantined at admission.
  EXPECT_GT(defended.paths_quarantined, 0u);
  EXPECT_GT(defended.detection_time_s, 0.0);
  // Routing recovers: traffic stops collapsing onto the phantom link,
  // so goodput rises and the failure churn (RERRs, rediscoveries after
  // selective drops) disappears from the control plane.
  EXPECT_GT(defended.segments_delivered, undefended.segments_delivered);
  EXPECT_LT(defended.control_packets, undefended.control_packets / 2);
  // Honest caveat the threat-model doc records: in a 700 m arena the
  // endpoint pair still *overhears* most of the stream (sniff range
  // covers the honest paths too).  The leash defeats the routing
  // capture — attraction, selective drops, phantom-link fragility — not
  // the passive coverage of two well-placed receivers.
  EXPECT_GT(defended.coalition_captured, 0u);
}

TEST(DefenseScenarioTest, RateLimiterSuppressesFloodAmplification) {
  ScenarioConfig cfg = arena(Protocol::kMts);
  cfg.adversary.kind = security::AdversaryKind::kRreqFlood;
  cfg.adversary.count = 1;
  cfg.adversary.flood_rate = 5.0;
  const RunMetrics undefended = run_scenario(cfg);
  ASSERT_GT(undefended.flood_injected, 0u);

  cfg.defense.kind = security::DefenseKind::kFloodRateLimit;
  const RunMetrics defended = run_scenario(cfg);

  EXPECT_EQ(defended.flood_injected, undefended.flood_injected)
      << "the attacker injects regardless; the defense works downstream";
  EXPECT_GT(defended.flood_suppressed, 0u);
  EXPECT_GT(defended.detection_time_s, 0.0);
  // The forged discoveries exceed every per-origin budget; honest
  // rebroadcast amplification (and MTS's check spin-up for the forged
  // origins) is capped at the bucket rate.
  EXPECT_LT(defended.control_packets, undefended.control_packets / 2);
  EXPECT_GE(defended.segments_delivered, undefended.segments_delivered);
  EXPECT_GT(defended.dropped(net::DropReason::kRateLimited), 0u);
}

TEST(DefenseScenarioTest, FullSuiteRaisesNoFalsePositivesWithoutAnAdversary) {
  // Defenses on, nobody attacking: the probe estimator sees echoes, the
  // leash sees feasible hops, the bucket sees sparse genuine discovery
  // — nothing may fire.  (Every quarantine/suppression in an
  // adversary-free run is by definition false.)
  for (std::uint64_t seed : {3ULL, 11ULL, 23ULL}) {
    ScenarioConfig cfg = arena(Protocol::kMts);
    cfg.seed = seed;
    cfg.defense.kind = security::DefenseKind::kSuite;
    const RunMetrics m = run_scenario(cfg);
    EXPECT_GT(m.segments_delivered, 0u) << "seed " << seed;
    EXPECT_GT(m.probes_sent, 0u) << "seed " << seed;
    EXPECT_EQ(m.paths_quarantined, 0u) << "seed " << seed;
    EXPECT_EQ(m.flood_suppressed, 0u) << "seed " << seed;
    EXPECT_DOUBLE_EQ(m.false_positive_rate, 0.0) << "seed " << seed;
    EXPECT_EQ(m.detection_time_s, 0.0) << "seed " << seed;
    EXPECT_EQ(m.defense_kind, security::DefenseKind::kSuite) << "seed " << seed;
  }
}

TEST(DefenseScenarioTest, UndefendedRunsAreUntouchedByTheDefenseCode) {
  // The defense seam must be inert when no defense is configured: the
  // PR 4 fingerprints (and every paper figure) replay bit-for-bit.
  const RunMetrics base = run_scenario(arena(Protocol::kMts));
  EXPECT_EQ(base.defense_kind, security::DefenseKind::kNone);
  EXPECT_EQ(base.probes_sent, 0u);
  EXPECT_EQ(base.paths_quarantined, 0u);
  EXPECT_EQ(base.flood_suppressed, 0u);
  EXPECT_DOUBLE_EQ(base.detection_time_s, 0.0);
}

// --- fixed-seed defense-effect fingerprints --------------------------------

struct DefenseFingerprint {
  security::AdversaryKind attack;
  security::DefenseKind defense;
  std::uint64_t events;
  std::uint64_t delivered;
  std::uint64_t quarantined;
  std::uint64_t suppressed;
  std::uint64_t probes;
};

/// Fixed-seed defense-effect fingerprints, captured on the reference
/// toolchain; the attack side of each pair is pinned (undefended) in
/// adversary_scenario_test.cpp.  If a deliberate behaviour change
/// shifts them, re-pin from a run of this config and say why in the
/// commit.  The numbers encode the defended story: the blackhole and
/// duty-cycled grayhole diamonds recover to near-honest goodput with
/// exactly one quarantine, the leash prunes the arena wormhole's
/// phantom paths, and the limiter absorbs ~5/6 of the flood's forged
/// discoveries at the first honest hop.
constexpr DefenseFingerprint kDefensePinned[] = {
    {security::AdversaryKind::kBlackhole, security::DefenseKind::kAckedChecking,
     158131, 2298, 1, 0, 76},
    {security::AdversaryKind::kGrayhole, security::DefenseKind::kAckedChecking,
     153423, 2207, 1, 0, 90},
    {security::AdversaryKind::kWormhole, security::DefenseKind::kWormholeLeash,
     305007, 434, 6, 0, 0},
    {security::AdversaryKind::kRreqFlood,
     security::DefenseKind::kFloodRateLimit, 335559, 483, 0, 506, 0},
};

TEST(DefenseScenarioTest, FixedSeedDefenseEffectFingerprints) {
  for (const DefenseFingerprint& fp : kDefensePinned) {
    ScenarioConfig cfg;
    if (fp.attack == security::AdversaryKind::kBlackhole) {
      cfg = diamond();
      cfg.adversary.kind = fp.attack;
      cfg.adversary.members = {1};
    } else if (fp.attack == security::AdversaryKind::kGrayhole) {
      cfg = diamond();
      cfg.adversary.kind = fp.attack;
      cfg.adversary.members = {1};
      cfg.adversary.drop_prob = 1.0;
      cfg.adversary.active_window = sim::Time::seconds(1.2);
      cfg.adversary.active_period = sim::Time::sec(8);
    } else {
      cfg = arena(Protocol::kMts);
      cfg.adversary.kind = fp.attack;
      if (fp.attack == security::AdversaryKind::kRreqFlood) {
        cfg.adversary.count = 1;
        cfg.adversary.flood_rate = 5.0;
      }
    }
    cfg.defense.kind = fp.defense;
    const RunMetrics m = run_scenario(cfg);
    const std::string tag =
        std::string(security::adversary_kind_name(fp.attack)) + "/" +
        security::defense_kind_name(fp.defense);
    EXPECT_EQ(m.events_executed, fp.events) << tag;
    EXPECT_EQ(m.segments_delivered, fp.delivered) << tag;
    EXPECT_EQ(m.paths_quarantined, fp.quarantined) << tag;
    EXPECT_EQ(m.flood_suppressed, fp.suppressed) << tag;
    EXPECT_EQ(m.probes_sent, fp.probes) << tag;
  }
}

TEST(DefenseScenarioTest, CampaignSweepsTheDefenseAxis) {
  CampaignConfig cfg;
  cfg.base.node_count = 20;
  cfg.base.field = {700.0, 700.0};
  cfg.base.sim_time = sim::Time::sec(8);
  cfg.speeds = {2};
  cfg.protocols = {Protocol::kMts};
  cfg.repetitions = 2;
  security::AdversarySpec blackhole;
  blackhole.kind = security::AdversaryKind::kBlackhole;
  blackhole.count = 2;
  cfg.adversaries = {security::AdversarySpec{}, blackhole};
  security::DefenseSpec suite;
  suite.kind = security::DefenseKind::kSuite;
  cfg.defenses = {security::DefenseSpec{}, suite};

  const CampaignResult result = run_campaign(cfg);
  EXPECT_EQ(result.total_runs(), 1u * 1u * 2u * 2u * 2u);
  // Cell (adversary 0, defense 0) is the paper grid; (1, 1) the defended
  // attack; all four cells must be populated and tagged.
  for (std::uint32_t a = 0; a < 2; ++a) {
    for (std::uint32_t d = 0; d < 2; ++d) {
      const auto& runs = result.runs(Protocol::kMts, 2, a, d);
      ASSERT_EQ(runs.size(), 2u) << "cell " << a << "," << d;
      for (const RunMetrics& m : runs) {
        EXPECT_EQ(m.adversary_index, a);
        EXPECT_EQ(m.defense_index, d);
        EXPECT_EQ(m.defense_kind, d == 0 ? security::DefenseKind::kNone
                                         : security::DefenseKind::kSuite);
      }
    }
  }
  // Defended cells probe; undefended cells must not.
  const stats::Summary probes = result.summarize(
      Protocol::kMts, 2, 1, 1,
      [](const RunMetrics& m) { return static_cast<double>(m.probes_sent); });
  EXPECT_GT(probes.mean(), 0.0);
  const stats::Summary no_probes = result.summarize(
      Protocol::kMts, 2, 1, 0,
      [](const RunMetrics& m) { return static_cast<double>(m.probes_sent); });
  EXPECT_EQ(no_probes.mean(), 0.0);
}

}  // namespace
}  // namespace mts::harness
