// End-to-end secrecy game: the keyshare plane wired through the
// scenario harness, with coalitions capturing real wire bytes off the
// channel tap.  The headline property under test is the paper's own
// claim, upgraded from fragment counting to key recovery: multipath
// spreading with threshold secret sharing means capture *volume* stops
// mattering and path *coverage* is everything.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

ScenarioConfig small_base(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.node_count = 25;
  cfg.field = {700.0, 700.0};
  cfg.sim_time = sim::Time::sec(20);
  cfg.max_speed = 5.0;
  cfg.seed = seed;
  return cfg;
}

TEST(SecrecyScenarioTest, EnablingTheGameDoesNotPerturbTheRun) {
  // The plane is read-only after build and payload bytes are
  // materialized lazily at tap time, so turning the game on must leave
  // the event stream bit-identical — with and without an adversary.
  for (const bool with_adversary : {false, true}) {
    ScenarioConfig off = small_base(7);
    off.protocol = Protocol::kMts;
    if (with_adversary) {
      off.adversary.kind = security::AdversaryKind::kColluding;
      off.adversary.count = 4;
    }
    ScenarioConfig on = off;
    on.secrecy.enabled = true;

    const RunMetrics a = run_scenario(off);
    const RunMetrics b = run_scenario(on);
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.segments_delivered, b.segments_delivered);
    EXPECT_EQ(a.control_packets, b.control_packets);
    EXPECT_EQ(a.coalition_captured, b.coalition_captured);
    // Only the game-side metrics differ.
    EXPECT_EQ(a.secrecy_shares, 0u);
    EXPECT_EQ(b.secrecy_shares, 5u);  // MTS: one share per stored path
    EXPECT_EQ(b.secrecy_threshold, 5u);  // threshold 0 -> t = n
  }
}

TEST(SecrecyScenarioTest, UnipathSplitIsDegenerate) {
  ScenarioConfig cfg = small_base(3);
  cfg.protocol = Protocol::kAodv;
  cfg.secrecy.enabled = true;
  cfg.adversary.kind = security::AdversaryKind::kColluding;
  cfg.adversary.count = 2;
  const RunMetrics m = run_scenario(cfg);
  EXPECT_EQ(m.secrecy_shares, 1u);
  EXPECT_EQ(m.secrecy_threshold, 1u);
  // 1-of-1: any captured data segment of a flow surrenders its key.
  if (m.coalition_captured > 0) {
    EXPECT_GE(m.keys_recovered, 1u);
    EXPECT_GT(m.key_recovery_rate, 0.0);
  }
}

TEST(SecrecyScenarioTest, KeyRecoveryNeedsPathCoverageNotVolume) {
  // Across seeds: AODV's single path means one well-placed listener
  // reads the whole flow and takes the key; MTS's full-threshold split
  // (5 of 5) demands the coalition cover every disjoint path, so its
  // recovery rate can only be lower (the coalition is identical).
  double aodv_rate = 0.0;
  double mts_rate = 0.0;
  std::uint64_t aodv_shares = 0;
  std::uint64_t mts_shares = 0;
  for (std::uint64_t seed : {11, 12, 13, 14}) {
    ScenarioConfig cfg = small_base(seed);
    cfg.secrecy.enabled = true;
    cfg.adversary.kind = security::AdversaryKind::kColluding;
    cfg.adversary.count = 4;

    cfg.protocol = Protocol::kAodv;
    const RunMetrics a = run_scenario(cfg);
    aodv_rate += a.key_recovery_rate;
    aodv_shares += a.shares_captured;

    cfg.protocol = Protocol::kMts;
    const RunMetrics m = run_scenario(cfg);
    mts_rate += m.key_recovery_rate;
    mts_shares += m.shares_captured;
  }
  EXPECT_GT(aodv_shares, 0u) << "coalition never heard a data segment";
  EXPECT_GT(aodv_rate, 0.0) << "unipath keys should fall to the coalition";
  EXPECT_LE(mts_rate, aodv_rate)
      << "full-threshold multipath cannot be easier to break than unipath";
  (void)mts_shares;
}

TEST(SecrecyScenarioTest, RecoveryMonotoneInCoalitionSize) {
  // Nested coalitions (prefix member draw) on one seed: more listeners
  // can only capture more distinct shares, so recovery never drops.
  std::uint64_t prev_shares = 0;
  double prev_rate = 0.0;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    ScenarioConfig cfg = small_base(11);
    cfg.protocol = Protocol::kMts;
    cfg.secrecy.enabled = true;
    cfg.secrecy.threshold = 2;  // 2-of-5: a mid-size coalition can win
    cfg.adversary.kind = security::AdversaryKind::kColluding;
    cfg.adversary.count = k;
    const RunMetrics m = run_scenario(cfg);
    EXPECT_EQ(m.secrecy_threshold, 2u);
    EXPECT_GE(m.shares_captured, prev_shares);
    EXPECT_GE(m.key_recovery_rate, prev_rate);
    prev_shares = m.shares_captured;
    prev_rate = m.key_recovery_rate;
  }
  EXPECT_GT(prev_shares, 0u) << "largest coalition captured no share at all";
}

TEST(SecrecyScenarioTest, WormholePlaysTheGameToo) {
  // The wormhole is pool-backed like the coalitions, so its tunnel taps
  // feed the same key-recovery pool; the metrics must simply be wired
  // (captures depend on the seed's geometry, so only shares>=0 is
  // asserted structurally — the pool existing is the contract).
  ScenarioConfig cfg = small_base(9);
  cfg.protocol = Protocol::kMts;
  cfg.secrecy.enabled = true;
  cfg.adversary.kind = security::AdversaryKind::kWormhole;
  const RunMetrics m = run_scenario(cfg);
  EXPECT_EQ(m.secrecy_shares, 5u);
  EXPECT_EQ(m.adversary_kind, security::AdversaryKind::kWormhole);
}

}  // namespace
}  // namespace mts::harness
