// The sweep cache must be a pure optimization: a cache round-trip has
// to reproduce the campaign bit-for-bit, and any config change that
// affects results must change the key.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/campaign_cache.hpp"
#include "harness/work_unit.hpp"

namespace mts::harness {
namespace {

class CampaignCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mts_cache_test_" + std::to_string(::getpid()));
    setenv("MTS_BENCH_CACHE_DIR", dir_.c_str(), 1);
    unsetenv("MTS_BENCH_NO_CACHE");
  }
  void TearDown() override {
    unsetenv("MTS_BENCH_CACHE_DIR");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static CampaignConfig tiny() {
    CampaignConfig cfg;
    cfg.base.node_count = 15;
    cfg.base.sim_time = sim::Time::sec(3);
    cfg.speeds = {5};
    cfg.protocols = {Protocol::kAodv};
    cfg.repetitions = 2;
    return cfg;
  }

  std::filesystem::path dir_;
};

TEST_F(CampaignCacheTest, MissThenHitRoundTripsAllMetrics) {
  const CampaignConfig cfg = tiny();
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());
  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  const auto& a = fresh.runs(Protocol::kAodv, 5);
  const auto& b = cached->runs(Protocol::kAodv, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].segments_delivered, b[i].segments_delivered);
    EXPECT_EQ(a[i].control_packets, b[i].control_packets);
    EXPECT_DOUBLE_EQ(a[i].relay_stddev, b[i].relay_stddev);
    EXPECT_DOUBLE_EQ(a[i].avg_delay_s, b[i].avg_delay_s);
    EXPECT_EQ(a[i].events_executed, b[i].events_executed);
  }
}

TEST_F(CampaignCacheTest, KeyChangesWithResultAffectingKnobs) {
  const CampaignConfig base = tiny();
  CampaignConfig other = base;
  other.base.mts.check_period = sim::Time::sec(7);
  EXPECT_NE(CampaignCache::key_of(base), CampaignCache::key_of(other));

  other = base;
  other.base.tcp.max_window = 16;
  EXPECT_NE(CampaignCache::key_of(base), CampaignCache::key_of(other));

  other = base;
  other.repetitions = 3;
  EXPECT_NE(CampaignCache::key_of(base), CampaignCache::key_of(other));

  other = base;
  other.speeds = {5, 10};
  EXPECT_NE(CampaignCache::key_of(base), CampaignCache::key_of(other));

  other = base;
  other.base.aodv.local_repair = true;
  EXPECT_NE(CampaignCache::key_of(base), CampaignCache::key_of(other));

  // Thread count must NOT change the key: it cannot affect results.
  other = base;
  other.threads = 7;
  EXPECT_EQ(CampaignCache::key_of(base), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, AdversaryAxisRoundTripsAndChangesTheKey) {
  CampaignConfig cfg = tiny();
  // Dense enough to actually deliver traffic: a zero-traffic grid would
  // make every double comparison below pass vacuously at 0.0.
  cfg.base.field = {400.0, 400.0};
  cfg.base.sim_time = sim::Time::sec(5);
  security::AdversarySpec coalition;
  coalition.kind = security::AdversaryKind::kColluding;
  coalition.count = 2;
  cfg.adversaries = {security::AdversarySpec{}, coalition};
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(tiny()));

  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->total_runs(), fresh.total_runs());
  const auto& a = fresh.runs(Protocol::kAodv, 5, 1);
  const auto& b = cached->runs(Protocol::kAodv, 5, 1);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  std::uint64_t delivered = 0;
  std::uint64_t captured = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    delivered += a[i].segments_delivered;
    captured += a[i].coalition_captured;
    EXPECT_EQ(a[i].adversary_kind, security::AdversaryKind::kColluding);
    EXPECT_EQ(b[i].adversary_kind, a[i].adversary_kind);
    EXPECT_EQ(b[i].adversary_count, a[i].adversary_count);
    EXPECT_EQ(b[i].coalition_captured, a[i].coalition_captured);
    EXPECT_EQ(b[i].fragments_missing, a[i].fragments_missing);
    EXPECT_EQ(b[i].adversary_members, a[i].adversary_members);
    EXPECT_FALSE(a[i].adversary_members.empty());
    // Exact: the CSV stores doubles at max_digits10.
    EXPECT_DOUBLE_EQ(b[i].coalition_interception_ratio,
                     a[i].coalition_interception_ratio);
    EXPECT_DOUBLE_EQ(b[i].delivery_rate, a[i].delivery_rate);
    EXPECT_DOUBLE_EQ(b[i].avg_delay_s, a[i].avg_delay_s);
  }
  EXPECT_GT(delivered, 0u) << "grid produced no traffic; round-trip vacuous";
  EXPECT_GT(captured, 0u) << "coalition saw nothing; round-trip vacuous";

  // A different coalition size is a different sweep.
  CampaignConfig other = cfg;
  other.adversaries[1].count = 3;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, ActiveAttackMetricsRoundTripInV6Columns) {
  CampaignConfig cfg = tiny();
  cfg.base.field = {400.0, 400.0};
  cfg.base.sim_time = sim::Time::sec(5);
  security::AdversarySpec gray;
  gray.kind = security::AdversaryKind::kGrayhole;
  // Most of the 13 intermediates: some member is on the forwarding path
  // whatever the seed picks, so the absorbed counters are non-vacuous.
  gray.count = 8;
  gray.drop_prob = 0.4;
  security::AdversarySpec flood;
  flood.kind = security::AdversaryKind::kRreqFlood;
  flood.count = 1;
  flood.flood_rate = 4.0;
  cfg.adversaries = {gray, flood};

  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  std::uint64_t gray_absorbed = 0;
  std::uint64_t injected = 0;
  for (std::uint32_t a = 0; a < 2; ++a) {
    const auto& want = fresh.runs(Protocol::kAodv, 5, a);
    const auto& got = cached->runs(Protocol::kAodv, 5, a);
    ASSERT_EQ(want.size(), got.size());
    ASSERT_FALSE(want.empty());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].adversary_kind, want[i].adversary_kind);
      EXPECT_EQ(got[i].wormhole_tunneled, want[i].wormhole_tunneled);
      EXPECT_EQ(got[i].grayhole_absorbed, want[i].grayhole_absorbed);
      EXPECT_EQ(got[i].flood_injected, want[i].flood_injected);
      EXPECT_DOUBLE_EQ(got[i].endpoint_inference_accuracy,
                       want[i].endpoint_inference_accuracy);
      gray_absorbed += want[i].grayhole_absorbed;
      injected += want[i].flood_injected;
    }
  }
  EXPECT_GT(gray_absorbed, 0u) << "grayhole cells ate nothing; vacuous";
  EXPECT_GT(injected, 0u) << "flood cells injected nothing; vacuous";

  // The new knobs are result-affecting, so they must key the cache.
  CampaignConfig other = cfg;
  other.adversaries[0].drop_prob = 0.8;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.adversaries[1].flood_rate = 9.0;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.adversaries[0].active_period = sim::Time::sec(4);
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, DefenseMetricsRoundTripInV7Columns) {
  CampaignConfig cfg = tiny();
  cfg.base.field = {400.0, 400.0};
  cfg.base.sim_time = sim::Time::sec(5);
  cfg.protocols = {Protocol::kMts};
  security::AdversarySpec blackhole;
  blackhole.kind = security::AdversaryKind::kBlackhole;
  // Most of the intermediates: some member sits on the forwarding path
  // whatever the seed picks, so detection is non-vacuous.
  blackhole.count = 8;
  cfg.adversaries = {blackhole};
  security::DefenseSpec acked;
  acked.kind = security::DefenseKind::kAckedChecking;
  cfg.defenses = {security::DefenseSpec{}, acked};

  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->total_runs(), fresh.total_runs());
  std::uint64_t probes = 0;
  for (std::uint32_t d = 0; d < 2; ++d) {
    const auto& want = fresh.runs(Protocol::kMts, 5, 0, d);
    const auto& got = cached->runs(Protocol::kMts, 5, 0, d);
    ASSERT_EQ(want.size(), got.size());
    ASSERT_FALSE(want.empty());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].defense_index, want[i].defense_index);
      EXPECT_EQ(got[i].defense_kind, want[i].defense_kind);
      EXPECT_EQ(got[i].paths_quarantined, want[i].paths_quarantined);
      EXPECT_EQ(got[i].flood_suppressed, want[i].flood_suppressed);
      EXPECT_EQ(got[i].probes_sent, want[i].probes_sent);
      EXPECT_DOUBLE_EQ(got[i].detection_time_s, want[i].detection_time_s);
      EXPECT_DOUBLE_EQ(got[i].recovery_time_s, want[i].recovery_time_s);
      EXPECT_DOUBLE_EQ(got[i].false_positive_rate,
                       want[i].false_positive_rate);
      probes += want[i].probes_sent;
    }
  }
  EXPECT_GT(probes, 0u) << "defended cells never probed; round-trip vacuous";

  // The defense knobs are result-affecting, so they must key the cache.
  CampaignConfig other = cfg;
  other.defenses[1].probe_period = sim::Time::ms(900);
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.defenses[1].demote_threshold = 0.6;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.defenses[1].rreq_rate = 4.0;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.defenses.pop_back();
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, SecrecyMetricsRoundTripInV8Columns) {
  CampaignConfig cfg = tiny();
  cfg.base.field = {400.0, 400.0};
  cfg.base.sim_time = sim::Time::sec(5);
  cfg.protocols = {Protocol::kMts};
  cfg.base.secrecy.enabled = true;
  security::AdversarySpec coalition;
  coalition.kind = security::AdversaryKind::kColluding;
  coalition.count = 4;
  cfg.adversaries = {coalition};

  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  const auto& want = fresh.runs(Protocol::kMts, 5, 0);
  const auto& got = cached->runs(Protocol::kMts, 5, 0);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_FALSE(want.empty());
  std::uint64_t shares = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].secrecy_shares, 5u);
    EXPECT_EQ(want[i].secrecy_threshold, 5u);
    EXPECT_EQ(got[i].secrecy_shares, want[i].secrecy_shares);
    EXPECT_EQ(got[i].secrecy_threshold, want[i].secrecy_threshold);
    EXPECT_EQ(got[i].shares_captured, want[i].shares_captured);
    EXPECT_EQ(got[i].keys_recovered, want[i].keys_recovered);
    EXPECT_DOUBLE_EQ(got[i].key_recovery_rate, want[i].key_recovery_rate);
    shares += want[i].shares_captured;
  }
  EXPECT_GT(shares, 0u) << "coalition captured no share; round-trip vacuous";

  // The game knobs are result-affecting, so they must key the cache.
  CampaignConfig other = cfg;
  other.base.secrecy.enabled = false;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.base.secrecy.threshold = 2;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.base.secrecy.key_bytes = 32;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, V7RowsStillParseWithSecrecyMetricsZeroed) {
  // Forward compatibility: a cache file written before the v8 columns
  // (46 cells, v7 header) must load, with the five secrecy-game metrics
  // defaulting to zero.  This is the exact v7 header and a row as the
  // previous binary wrote them.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.protocols = {Protocol::kAodv};
  cfg.repetitions = 1;

  const char* v7_header =
      "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
      "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
      "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
      "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
      "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
      "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
      "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
      "adv_members";
  const char* v7_row =
      "1,5,1,7,0.25,120,30,0.125,4,80,0.05,0.033,26.5,217.1,0.93,80,86,3,1,"
      "80,78,12,45,0,0,123456,0,4,2,10,0.1,70,5,17,3,0.5,40,0,1,2.5,3,4.5,"
      "0.25,6,7,2.5.";

  std::filesystem::create_directories(dir_);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  {
    std::ofstream out(path);
    out << v7_header << '\n' << v7_row << '\n';
  }
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value()) << "v7 cache file rejected";
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  const RunMetrics& m = runs[0];
  EXPECT_EQ(m.seed, 1u);
  EXPECT_EQ(m.segments_delivered, 80u);
  // The v7 defense columns parse...
  EXPECT_EQ(m.defense_index, 0u);
  EXPECT_DOUBLE_EQ(m.detection_time_s, 2.5);
  EXPECT_EQ(m.paths_quarantined, 3u);
  EXPECT_EQ(m.probes_sent, 7u);
  EXPECT_EQ(m.adversary_members, (std::vector<net::NodeId>{2, 5}));
  // ...and the v8-only secrecy metrics default.
  EXPECT_EQ(m.secrecy_shares, 0u);
  EXPECT_EQ(m.secrecy_threshold, 0u);
  EXPECT_EQ(m.shares_captured, 0u);
  EXPECT_EQ(m.keys_recovered, 0u);
  EXPECT_DOUBLE_EQ(m.key_recovery_rate, 0.0);

  // Storing refreshes the file to the v8 column set, which round-trips.
  CampaignCache::store(cfg, *loaded);
  const auto reloaded = CampaignCache::load(cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->runs(Protocol::kAodv, 5)[0].probes_sent, 7u);
}

TEST_F(CampaignCacheTest, V6RowsStillParseWithDefenseMetricsZeroed) {
  // Forward compatibility: a cache file written before the v7 columns
  // (38 cells, v6 header) must load, with the eight defense metrics
  // defaulting to zero.  This is the exact v6 header and a row as the
  // previous binary wrote them.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.protocols = {Protocol::kAodv};
  cfg.repetitions = 1;

  const char* v6_header =
      "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
      "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
      "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
      "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
      "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
      "adv_endpoint_acc,adv_flood_injected,adv_members";
  const char* v6_row =
      "1,5,1,7,0.25,120,30,0.125,4,80,0.05,0.033,26.5,217.1,0.93,80,86,3,1,"
      "80,78,12,45,0,0,123456,0,4,2,10,0.1,70,5,17,3,0.5,40,2.5.";

  std::filesystem::create_directories(dir_);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  {
    std::ofstream out(path);
    out << v6_header << '\n' << v6_row << '\n';
  }
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value()) << "v6 cache file rejected";
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  const RunMetrics& m = runs[0];
  EXPECT_EQ(m.seed, 1u);
  EXPECT_EQ(m.segments_delivered, 80u);
  // The v6 active-attack columns parse...
  EXPECT_EQ(m.wormhole_tunneled, 17u);
  EXPECT_EQ(m.grayhole_absorbed, 3u);
  EXPECT_DOUBLE_EQ(m.endpoint_inference_accuracy, 0.5);
  EXPECT_EQ(m.flood_injected, 40u);
  EXPECT_EQ(m.adversary_members, (std::vector<net::NodeId>{2, 5}));
  // ...and the v7-only defense metrics default.
  EXPECT_EQ(m.defense_index, 0u);
  EXPECT_EQ(m.defense_kind, security::DefenseKind::kNone);
  EXPECT_DOUBLE_EQ(m.detection_time_s, 0.0);
  EXPECT_EQ(m.paths_quarantined, 0u);
  EXPECT_DOUBLE_EQ(m.recovery_time_s, 0.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate, 0.0);
  EXPECT_EQ(m.flood_suppressed, 0u);
  EXPECT_EQ(m.probes_sent, 0u);

  // Storing refreshes the file to the v7 column set, which round-trips.
  CampaignCache::store(cfg, *loaded);
  const auto reloaded = CampaignCache::load(cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->runs(Protocol::kAodv, 5)[0].wormhole_tunneled, 17u);
}

TEST_F(CampaignCacheTest, V5RowsStillParseWithActiveMetricsZeroed) {
  // Forward compatibility: a cache file written before the v6 columns
  // (34 cells, v5 header) must load, with the four active-attack
  // metrics defaulting to zero.  This is the exact v5 header and a row
  // as the previous binary wrote them.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.protocols = {Protocol::kAodv};
  cfg.repetitions = 1;

  const char* v5_header =
      "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
      "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
      "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
      "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
      "adv_ri,adv_missing,adv_absorbed,adv_members";
  const char* v5_row =
      "1,5,1,7,0.25,120,30,0.125,4,80,0.05,0.033,26.5,217.1,0.93,80,86,3,1,"
      "80,78,12,45,0,0,123456,0,0,0,0,0,80,0,-";

  std::filesystem::create_directories(dir_);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  {
    std::ofstream out(path);
    out << v5_header << '\n' << v5_row << '\n';
  }
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value()) << "v5 cache file rejected";
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  const RunMetrics& m = runs[0];
  EXPECT_EQ(m.seed, 1u);
  EXPECT_EQ(m.segments_delivered, 80u);
  EXPECT_EQ(m.events_executed, 123456u);
  EXPECT_DOUBLE_EQ(m.delivery_rate, 0.93);
  // The v6-only metrics default.
  EXPECT_EQ(m.wormhole_tunneled, 0u);
  EXPECT_EQ(m.grayhole_absorbed, 0u);
  EXPECT_DOUBLE_EQ(m.endpoint_inference_accuracy, 0.0);
  EXPECT_EQ(m.flood_injected, 0u);

  // Storing refreshes the file to the v6 column set, which round-trips.
  CampaignCache::store(cfg, *loaded);
  const auto reloaded = CampaignCache::load(cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->runs(Protocol::kAodv, 5)[0].segments_delivered, 80u);
}

TEST_F(CampaignCacheTest, V8RowsStillParseWithFabricColumnsDefaulted) {
  // Forward compatibility: a cache file written before the v9 fabric
  // columns (51 cells, v8 header) must load with run_status ok,
  // attempts 1 and no error — exactly what a pre-fabric binary meant.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.protocols = {Protocol::kAodv};
  cfg.repetitions = 1;

  const char* v8_header =
      "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
      "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
      "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
      "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
      "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
      "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
      "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
      "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
      "adv_members";
  const char* v8_row =
      "1,5,1,7,0.25,120,30,0.125,4,80,0.05,0.033,26.5,217.1,0.93,80,86,3,1,"
      "80,78,12,45,0,0,123456,0,4,2,10,0.1,70,5,17,3,0.5,40,0,1,2.5,3,4.5,"
      "0.25,6,7,5,5,3,2,0.66,2.5.";

  std::filesystem::create_directories(dir_);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  {
    std::ofstream out(path);
    out << v8_header << '\n' << v8_row << '\n';
  }
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value()) << "v8 cache file rejected";
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  const RunMetrics& m = runs[0];
  EXPECT_EQ(m.seed, 1u);
  // The v8 secrecy columns parse...
  EXPECT_EQ(m.secrecy_shares, 5u);
  EXPECT_EQ(m.shares_captured, 3u);
  EXPECT_DOUBLE_EQ(m.key_recovery_rate, 0.66);
  EXPECT_EQ(m.adversary_members, (std::vector<net::NodeId>{2, 5}));
  // ...and the v9-only fabric columns default to a clean run.
  EXPECT_EQ(m.run_status, RunStatus::kOk);
  EXPECT_EQ(m.attempts, 1u);
  EXPECT_TRUE(m.run_error.empty());

  // Storing refreshes the file to the v9 column set, which round-trips.
  CampaignCache::store(cfg, *loaded);
  const auto reloaded = CampaignCache::load(cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->runs(Protocol::kAodv, 5)[0].shares_captured, 3u);
}

TEST_F(CampaignCacheTest, FailedRowsRoundTripInV10Columns) {
  CampaignConfig cfg = tiny();
  cfg.repetitions = 1;
  CampaignResult result;
  // A degraded fabric row: status/attempts/error must survive a store
  // + load, with the error message collapsed to a single CSV cell.
  RunMetrics m = failed_run_metrics(cfg, WorkCell{0, 0, 0, 0, 0, 0, 1}, 0, 3,
                                    "timeout, then crash");
  result.add(std::move(m));
  CampaignCache::store(cfg, result);
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value());
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].run_status, RunStatus::kFailed);
  EXPECT_EQ(runs[0].attempts, 3u);
  EXPECT_EQ(runs[0].run_error, "timeout  then crash");
  EXPECT_EQ(runs[0].seed, cfg.seed_base);
}

TEST_F(CampaignCacheTest, TrafficAxisRoundTripsAndChangesTheKey) {
  CampaignConfig cfg = tiny();
  cfg.base.field = {400.0, 400.0};
  cfg.base.sim_time = sim::Time::sec(5);
  traffic::TrafficSpec on;
  on.enabled = true;
  on.gateway_count = 2;
  on.user_pool = 6;
  on.session_rate = 5.0;
  cfg.traffics = {traffic::TrafficSpec{}, on};
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(tiny()));

  const CampaignResult fresh = CampaignCache::run(cfg);
  const auto cached = CampaignCache::load(cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->total_runs(), fresh.total_runs());
  for (std::uint32_t t = 0; t < 2; ++t) {
    const auto& want = fresh.runs(Protocol::kAodv, 5, 0, 0, t);
    const auto& got = cached->runs(Protocol::kAodv, 5, 0, 0, t);
    ASSERT_EQ(want.size(), got.size());
    ASSERT_FALSE(want.empty());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].traffic_index, t);
      EXPECT_EQ(got[i].sessions_started, want[i].sessions_started);
      EXPECT_EQ(got[i].sessions_completed, want[i].sessions_completed);
      EXPECT_EQ(got[i].sessions_rejected, want[i].sessions_rejected);
      if (t == 0) EXPECT_EQ(want[i].sessions_started, 0u);
      for (std::size_t c = 0; c < traffic::kUserClassCount; ++c) {
        EXPECT_EQ(got[i].traffic_classes[c].flows_completed,
                  want[i].traffic_classes[c].flows_completed);
        // Exact: the CSV stores doubles at max_digits10.
        EXPECT_DOUBLE_EQ(got[i].traffic_classes[c].delay_p50_ms,
                         want[i].traffic_classes[c].delay_p50_ms);
        EXPECT_DOUBLE_EQ(got[i].traffic_classes[c].delay_p95_ms,
                         want[i].traffic_classes[c].delay_p95_ms);
        EXPECT_DOUBLE_EQ(got[i].traffic_classes[c].delay_p99_ms,
                         want[i].traffic_classes[c].delay_p99_ms);
        EXPECT_DOUBLE_EQ(got[i].traffic_classes[c].goodput_p50_seg_s,
                         want[i].traffic_classes[c].goodput_p50_seg_s);
        EXPECT_DOUBLE_EQ(got[i].traffic_classes[c].key_exposure,
                         want[i].traffic_classes[c].key_exposure);
      }
    }
  }
  // Non-vacuous: the enabled half of the grid actually ran sessions.
  std::uint64_t sessions = 0;
  for (const RunMetrics& r : fresh.runs(Protocol::kAodv, 5, 0, 0, 1)) {
    sessions += r.sessions_started;
  }
  EXPECT_GT(sessions, 0u) << "traffic-on cells started no session; vacuous";

  // The workload knobs are result-affecting, so they must key the cache.
  CampaignConfig other = cfg;
  other.traffics[1].session_rate = 9.0;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.traffics[1].bulk_fraction = 0.9;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.traffics[1].diurnal = {1.0, 2.0};
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.traffics[1].bulk.max_segments = 99;
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
  other = cfg;
  other.traffics.pop_back();
  EXPECT_NE(CampaignCache::key_of(cfg), CampaignCache::key_of(other));
}

TEST_F(CampaignCacheTest, V9RowsStillParseWithTrafficColumnsDefaulted) {
  // Forward compatibility: a cache file written before the v10 traffic
  // columns (54 cells, v9 header) must load with the fifteen user-plane
  // metrics defaulting to zero.  This is the exact v9 header and a row
  // as the previous binary wrote them.
  CampaignConfig cfg = tiny();
  cfg.speeds = {5};
  cfg.protocols = {Protocol::kAodv};
  cfg.repetitions = 1;

  const char* v9_header =
      "protocol,speed,seed,participating,relay_stddev,alpha,max_beta,"
      "highest_ri,pe,pr,ri,delay_s,thr_seg_s,thr_kbps,delivery,delivered,"
      "data_sent,retx,timeouts,acks_sent,acks_recv,eavesdropper,ctrl,"
      "switches,checks,events,adv_index,adv_kind,adv_count,adv_captured,"
      "adv_ri,adv_missing,adv_absorbed,adv_tunneled,adv_gray_absorbed,"
      "adv_endpoint_acc,adv_flood_injected,def_index,def_kind,def_detect_s,"
      "def_quarantined,def_recovery_s,def_fpr,def_suppressed,def_probes,"
      "sec_shares,sec_threshold,sec_captured,sec_keys,sec_recovery,"
      "run_status,run_attempts,run_error,adv_members";
  const char* v9_row =
      "1,5,1,7,0.25,120,30,0.125,4,80,0.05,0.033,26.5,217.1,0.93,80,86,3,1,"
      "80,78,12,45,0,0,123456,0,4,2,10,0.1,70,5,17,3,0.5,40,0,1,2.5,3,4.5,"
      "0.25,6,7,5,5,3,2,0.66,ok,2,-,2.5.";

  std::filesystem::create_directories(dir_);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  {
    std::ofstream out(path);
    out << v9_header << '\n' << v9_row << '\n';
  }
  const auto loaded = CampaignCache::load(cfg);
  ASSERT_TRUE(loaded.has_value()) << "v9 cache file rejected";
  const auto& runs = loaded->runs(Protocol::kAodv, 5);
  ASSERT_EQ(runs.size(), 1u);
  const RunMetrics& m = runs[0];
  EXPECT_EQ(m.seed, 1u);
  // The v9 secrecy + fabric columns parse...
  EXPECT_EQ(m.shares_captured, 3u);
  EXPECT_DOUBLE_EQ(m.key_recovery_rate, 0.66);
  EXPECT_EQ(m.run_status, RunStatus::kOk);
  EXPECT_EQ(m.attempts, 2u);
  EXPECT_EQ(m.adversary_members, (std::vector<net::NodeId>{2, 5}));
  // ...and the v10-only user-plane metrics default: the row predates
  // the traffic plane, so it can only mean "workload off".
  EXPECT_EQ(m.traffic_index, 0u);
  EXPECT_EQ(m.sessions_started, 0u);
  EXPECT_EQ(m.sessions_completed, 0u);
  EXPECT_EQ(m.sessions_rejected, 0u);
  for (const auto& c : m.traffic_classes) {
    EXPECT_EQ(c.flows_completed, 0u);
    EXPECT_DOUBLE_EQ(c.delay_p50_ms, 0.0);
    EXPECT_DOUBLE_EQ(c.delay_p99_ms, 0.0);
    EXPECT_DOUBLE_EQ(c.key_exposure, 0.0);
  }

  // Storing refreshes the file to the v10 column set, which round-trips.
  CampaignCache::store(cfg, *loaded);
  const auto reloaded = CampaignCache::load(cfg);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->runs(Protocol::kAodv, 5)[0].shares_captured, 3u);
}

TEST_F(CampaignCacheTest, TruncationAtEveryByteOfTheLastRowIsAFullMiss) {
  // The crash-safety contract: `store` is atomic (tmp + rename), and
  // even if a filesystem breaks that promise, `load` must reject a file
  // cut at ANY byte offset of its last row — never serve a cache entry
  // with a silently shortened row or a plausible-looking prefix.
  const CampaignConfig cfg = tiny();
  CampaignCache::run(cfg);
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  ASSERT_TRUE(std::filesystem::exists(path));
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  // Start of the last row: one past the previous newline.
  const std::size_t last_row =
      text.rfind('\n', text.size() - 2) + 1;
  ASSERT_GT(text.size() - last_row, 100u) << "last row implausibly short";
  for (std::size_t cut = last_row; cut < text.size(); ++cut) {
    std::filesystem::resize_file(path, cut);
    EXPECT_FALSE(CampaignCache::load(cfg).has_value())
        << "truncation to " << cut << " bytes (row byte "
        << (cut - last_row) << ") was served from cache";
  }
  // Restoring the full file restores the hit.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_TRUE(CampaignCache::load(cfg).has_value());
}

TEST_F(CampaignCacheTest, CorruptFileIsAFullMiss) {
  const CampaignConfig cfg = tiny();
  CampaignCache::run(cfg);
  // Truncate the cached file: load must reject it.
  const auto path = dir_ / (CampaignCache::key_of(cfg) + ".csv");
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, 40);
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());
}

TEST_F(CampaignCacheTest, NoCacheEnvBypasses) {
  const CampaignConfig cfg = tiny();
  CampaignCache::run(cfg);
  setenv("MTS_BENCH_NO_CACHE", "1", 1);
  EXPECT_FALSE(CampaignCache::load(cfg).has_value());
  unsetenv("MTS_BENCH_NO_CACHE");
  EXPECT_TRUE(CampaignCache::load(cfg).has_value());
}

}  // namespace
}  // namespace mts::harness
