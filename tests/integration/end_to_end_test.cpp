// End-to-end: full node stacks (TCP over routing over 802.11 over the
// unit-disk channel) on controlled static topologies, for each of the
// three protocols.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace mts::harness {
namespace {

ScenarioConfig chain_scenario(Protocol p, int hops, double spacing = 200.0) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.node_count = static_cast<std::uint32_t>(hops + 1);
  cfg.sim_time = sim::Time::sec(20);
  cfg.eavesdropper_enabled = false;
  for (int i = 0; i <= hops; ++i) {
    cfg.static_positions.push_back({spacing * i, 0.0});
  }
  cfg.explicit_flows.push_back(
      {0, static_cast<net::NodeId>(hops), sim::Time::sec(1)});
  return cfg;
}

class ChainTest
    : public ::testing::TestWithParam<std::tuple<Protocol, int>> {};

TEST_P(ChainTest, TcpMovesBulkDataOverChain) {
  const auto [proto, hops] = GetParam();
  const RunMetrics m = run_scenario(chain_scenario(proto, hops));
  // Even the 5-hop chain must move hundreds of segments in 19 s.
  EXPECT_GT(m.segments_delivered, 200u)
      << protocol_name(proto) << " over " << hops << " hops";
  EXPECT_GT(m.delivery_rate, 0.9);
  EXPECT_GT(m.avg_delay_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllLengths, ChainTest,
    ::testing::Combine(::testing::Values(Protocol::kDsr, Protocol::kAodv,
                                         Protocol::kMts),
                       ::testing::Values(1, 2, 3, 5)),
    [](const auto& info) {
      return std::string(protocol_name(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "hop";
    });

TEST(EndToEndTest, OneHopThroughputNearChannelCapacity) {
  // 1-hop TCP at 2 Mb/s with 1000 B segments: data 4480 us + overheads
  // (DIFS/backoff/SIFS/ACK + TCP ack traffic) bounds goodput around
  // 150-200 segments/s; assert we are in that ballpark, not collapsed.
  const RunMetrics m =
      run_scenario(chain_scenario(Protocol::kAodv, 1, 100.0));
  EXPECT_GT(m.throughput_seg_s, 100.0);
  EXPECT_LT(m.throughput_seg_s, 230.0);  // cannot beat the channel
}

TEST(EndToEndTest, MultihopCostsThroughput) {
  const RunMetrics one = run_scenario(chain_scenario(Protocol::kMts, 1));
  const RunMetrics three = run_scenario(chain_scenario(Protocol::kMts, 3));
  EXPECT_LT(three.throughput_seg_s, one.throughput_seg_s);
}

TEST(EndToEndTest, DelayGrowsWithHops) {
  const RunMetrics one = run_scenario(chain_scenario(Protocol::kAodv, 1));
  const RunMetrics five = run_scenario(chain_scenario(Protocol::kAodv, 5));
  EXPECT_GT(five.avg_delay_s, one.avg_delay_s);
}

TEST(EndToEndTest, RelaysCountedOnChain) {
  // On a 3-hop chain the two interior nodes relay every data packet.
  const RunMetrics m = run_scenario(chain_scenario(Protocol::kAodv, 3));
  EXPECT_EQ(m.participating_nodes, 2u);
  EXPECT_GT(m.alpha, 2 * m.segments_delivered * 9 / 10);
}

TEST(EndToEndTest, EavesdropperOnChainCapturesEverything) {
  // With one relay and the eavesdropper forced onto the path (2-hop
  // chain, only node 1 is intermediate), Pe ~ Pr.
  ScenarioConfig cfg = chain_scenario(Protocol::kAodv, 2);
  cfg.eavesdropper_enabled = true;  // only candidate is node 1
  const RunMetrics m = run_scenario(cfg);
  EXPECT_EQ(m.eavesdropper, 1u);
  EXPECT_GT(m.interception_ratio, 0.9);
}

TEST(EndToEndTest, PartitionedNetworkDeliversNothing) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kMts;
  cfg.node_count = 4;
  cfg.sim_time = sim::Time::sec(10);
  cfg.eavesdropper_enabled = false;
  cfg.static_positions = {{0, 0}, {200, 0}, {2000, 0}, {2200, 0}};
  cfg.explicit_flows.push_back({0, 3, sim::Time::sec(1)});
  const RunMetrics m = run_scenario(cfg);
  EXPECT_EQ(m.segments_delivered, 0u);
  EXPECT_GT(m.dropped(net::DropReason::kNoRoute) +
                m.dropped(net::DropReason::kSendBufferTimeout),
            0u);
}

TEST(EndToEndTest, TwoSimultaneousFlowsShareTheChannel) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kMts;
  cfg.node_count = 6;
  cfg.sim_time = sim::Time::sec(20);
  cfg.eavesdropper_enabled = false;
  cfg.static_positions = {{0, 0},   {200, 0},  {400, 0},
                          {0, 150}, {200, 150}, {400, 150}};
  cfg.explicit_flows.push_back({0, 2, sim::Time::sec(1)});
  cfg.explicit_flows.push_back({3, 5, sim::Time::sec(1)});
  const RunMetrics m = run_scenario(cfg);
  EXPECT_GT(m.segments_delivered, 500u);
}

TEST(EndToEndTest, MtsRouteSwitchingObservableOnDiamond) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kMts;
  cfg.node_count = 4;
  cfg.sim_time = sim::Time::sec(30);
  cfg.eavesdropper_enabled = false;
  cfg.mts.check_period = sim::Time::sec(1);
  cfg.static_positions = {{0, 0}, {200, 150}, {200, -150}, {400, 0}};
  cfg.explicit_flows.push_back({0, 3, sim::Time::sec(1)});
  const RunMetrics m = run_scenario(cfg);
  EXPECT_GT(m.checks_sent, 20u);
  EXPECT_GE(m.route_switches, 1u);
  // Both relays participated (the security property).
  EXPECT_EQ(m.participating_nodes, 2u);
}

}  // namespace
}  // namespace mts::harness
