#include "mobility/random_waypoint.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"

namespace mts::mobility {
namespace {

RandomWaypointConfig cfg(double max_speed = 10.0) {
  RandomWaypointConfig c;
  c.field = Field{1000, 1000};
  c.min_speed = 0.5;
  c.max_speed = max_speed;
  c.pause = sim::Time::sec(1);
  return c;
}

TEST(RandomWaypointTest, StaysInsideFieldForever) {
  RandomWaypoint rwp(cfg(20.0), sim::Rng(1));
  for (int t = 0; t <= 2000; ++t) {
    const Vec2 p = rwp.position_at(sim::Time::ms(t * 100));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1000.0);
  }
}

TEST(RandomWaypointTest, DeterministicGivenSeed) {
  RandomWaypoint a(cfg(), sim::Rng(5));
  RandomWaypoint b(cfg(), sim::Rng(5));
  for (int t = 0; t < 100; ++t) {
    const Vec2 pa = a.position_at(sim::Time::sec(t));
    const Vec2 pb = b.position_at(sim::Time::sec(t));
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(RandomWaypointTest, SpeedNeverExceedsMax) {
  const double vmax = 15.0;
  RandomWaypoint rwp(cfg(vmax), sim::Rng(3));
  const double dt = 0.1;
  Vec2 prev = rwp.position_at(sim::Time::zero());
  for (int i = 1; i < 3000; ++i) {
    const Vec2 cur = rwp.position_at(sim::Time::seconds(i * dt));
    const double v = distance(prev, cur) / dt;
    EXPECT_LE(v, vmax * 1.0001);
    prev = cur;
  }
}

TEST(RandomWaypointTest, PausesAtWaypoints) {
  RandomWaypoint rwp(cfg(), sim::Rng(7));
  (void)rwp.position_at(sim::Time::sec(5000));  // force leg generation
  const auto& legs = rwp.legs_generated();
  ASSERT_GE(legs.size(), 2u);
  const auto& leg = legs.front();
  // During [arrive, depart] the node sits at the waypoint.
  const Vec2 at_arrive = rwp.position_at(leg.arrive);
  const Vec2 mid_pause = rwp.position_at(leg.arrive + sim::Time::ms(500));
  EXPECT_NEAR(distance(at_arrive, leg.to), 0.0, 1e-9);
  EXPECT_NEAR(distance(mid_pause, leg.to), 0.0, 1e-9);
}

TEST(RandomWaypointTest, InitialPauseHoldsStartPosition) {
  RandomWaypoint rwp(cfg(), sim::Rng(9));
  const Vec2 p0 = rwp.position_at(sim::Time::zero());
  const Vec2 p_half = rwp.position_at(sim::Time::ms(500));
  EXPECT_NEAR(distance(p0, p_half), 0.0, 1e-9);  // pause = 1 s
}

TEST(RandomWaypointTest, MovesLinearlyAlongALeg) {
  RandomWaypoint rwp(cfg(), sim::Rng(11));
  (void)rwp.position_at(sim::Time::sec(200));  // force leg generation
  const auto& leg = rwp.legs_generated().front();
  const sim::Time mid = leg.start + (leg.arrive - leg.start) / std::int64_t{2};
  const Vec2 expect_mid = leg.from + (leg.to - leg.from) * 0.5;
  const Vec2 got = rwp.position_at(mid);
  EXPECT_NEAR(got.x, expect_mid.x, 1e-6);
  EXPECT_NEAR(got.y, expect_mid.y, 1e-6);
}

TEST(RandomWaypointTest, LegSpeedsWithinConfiguredBand) {
  auto c = cfg(12.0);
  c.min_speed = 2.0;
  RandomWaypoint rwp(c, sim::Rng(13));
  (void)rwp.position_at(sim::Time::sec(500));  // force leg generation
  for (const auto& leg : rwp.legs_generated()) {
    EXPECT_GE(leg.speed, 2.0);
    EXPECT_LE(leg.speed, 12.0);
  }
}

TEST(RandomWaypointTest, OutOfOrderQueriesAgree) {
  RandomWaypoint a(cfg(), sim::Rng(15));
  RandomWaypoint b(cfg(), sim::Rng(15));
  const Vec2 a_late = a.position_at(sim::Time::sec(50));
  const Vec2 a_early = a.position_at(sim::Time::sec(10));
  const Vec2 b_early = b.position_at(sim::Time::sec(10));
  const Vec2 b_late = b.position_at(sim::Time::sec(50));
  EXPECT_DOUBLE_EQ(a_early.x, b_early.x);
  EXPECT_DOUBLE_EQ(a_late.x, b_late.x);
}

TEST(RandomWaypointTest, RejectsBadConfig) {
  auto c = cfg();
  c.max_speed = 0.0;
  EXPECT_THROW(RandomWaypoint(c, sim::Rng(1)), sim::ConfigError);
  c = cfg();
  c.min_speed = 0.0;  // literal zero would make a leg infinite
  EXPECT_THROW(RandomWaypoint(c, sim::Rng(1)), sim::ConfigError);
  c = cfg();
  c.min_speed = 5.0;
  c.max_speed = 2.0;
  EXPECT_THROW(RandomWaypoint(c, sim::Rng(1)), sim::ConfigError);
}

TEST(RandomWaypointTest, DegenerateZeroAreaFieldWithZeroPauseTerminates) {
  // A 0x0 field with pause 0 generates zero-duration legs (from == to,
  // arrive == start, depart == arrive).  Without the depart floor,
  // extend_until would append forever without advancing.
  RandomWaypointConfig c;
  c.field = Field{0, 0};
  c.min_speed = 0.5;
  c.max_speed = 1.0;
  c.pause = sim::Time::zero();
  RandomWaypoint rwp(c, sim::Rng(1));
  const Vec2 p = rwp.position_at(sim::Time::sec(10));
  EXPECT_EQ(p, (Vec2{0, 0}));
  // The floor also bounds the number of legs a degenerate config emits.
  EXPECT_LE(rwp.stats().generated, 10'001u);
}

TEST(RandomWaypointTest, TrimKeepsAnswersIdenticalAtAndAfterMark) {
  RandomWaypointConfig c = cfg(20.0);
  c.pause = sim::Time::ms(100);
  RandomWaypoint trimmed(c, sim::Rng(17));
  RandomWaypoint intact(c, sim::Rng(17));
  for (int t = 0; t <= 400; ++t) {
    const sim::Time now = sim::Time::ms(t * 250);
    const Vec2 a = trimmed.position_at(now);
    const Vec2 b = intact.position_at(now);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    // Prune with half a second of slack, as the channel's snapshot hook
    // does; future queries must be unaffected.
    trimmed.trim_history_before(now - sim::Time::ms(500));
  }
  EXPECT_GT(trimmed.stats().pruned, 0u);
  EXPECT_EQ(trimmed.stats().generated, intact.stats().generated);
  EXPECT_LT(trimmed.stats().live, intact.stats().live);
}

TEST(RandomWaypointTest, TrimBoundsLiveHistory) {
  RandomWaypointConfig c = cfg(25.0);
  c.min_speed = 5.0;
  c.field = Field{200, 200};
  c.pause = sim::Time::ms(100);
  RandomWaypoint rwp(c, sim::Rng(19));
  for (int t = 0; t <= 4000; ++t) {
    const sim::Time now = sim::Time::ms(t * 250);
    (void)rwp.position_at(now);
    rwp.trim_history_before(now - sim::Time::ms(500));
    const MobilityStats s = rwp.stats();
    EXPECT_EQ(s.live, s.generated - s.pruned);
  }
  // ~17-minute run on short legs: history stays a handful of entries,
  // not hundreds.
  const MobilityStats s = rwp.stats();
  EXPECT_GT(s.generated, 100u);
  EXPECT_LE(s.live, 8u);
  EXPECT_LE(s.peak_live, 8u);
}

TEST(RandomWaypointTest, TrimRetainsTheCoveringLeg) {
  RandomWaypoint rwp(cfg(), sim::Rng(23));
  (void)rwp.position_at(sim::Time::sec(500));
  const sim::Time mark = sim::Time::sec(300);
  const Vec2 before = rwp.position_at(mark);
  rwp.trim_history_before(mark);
  const Vec2 after = rwp.position_at(mark);
  EXPECT_DOUBLE_EQ(before.x, after.x);
  EXPECT_DOUBLE_EQ(before.y, after.y);
  EXPECT_LE(rwp.legs_generated().front().start, mark);
}

TEST(RandomWaypointTest, QueryBelowPrunedHistoryFailsLoudly) {
  // Before any pruning, a query in the initial pause is legitimate;
  // after pruning, a query below the retained front leg would silently
  // return the wrong position, so it must throw instead.
  RandomWaypoint rwp(cfg(), sim::Rng(31));
  EXPECT_NO_THROW(rwp.position_at(sim::Time::zero()));
  (void)rwp.position_at(sim::Time::sec(500));
  rwp.trim_history_before(sim::Time::sec(300));
  ASSERT_GT(rwp.stats().pruned, 0u);
  EXPECT_NO_THROW(rwp.position_at(sim::Time::sec(300)));  // at the mark
  EXPECT_THROW(rwp.position_at(sim::Time::zero()), sim::SimError);
}

TEST(RandomWalkTest, QueryBelowPrunedHistoryFailsLoudly) {
  RandomWalkConfig c;
  c.max_speed = 15.0;
  c.step = sim::Time::ms(500);
  RandomWalk rw(c, sim::Rng(37));
  (void)rw.position_at(sim::Time::sec(100));
  rw.trim_history_before(sim::Time::sec(50));
  ASSERT_GT(rw.stats().pruned, 0u);
  EXPECT_NO_THROW(rw.position_at(sim::Time::sec(50)));
  EXPECT_THROW(rw.position_at(sim::Time::zero()), sim::SimError);
}

TEST(RandomWalkTest, TrimKeepsAnswersIdentical) {
  RandomWalkConfig c;
  c.max_speed = 15.0;
  c.step = sim::Time::ms(500);
  RandomWalk trimmed(c, sim::Rng(29));
  RandomWalk intact(c, sim::Rng(29));
  for (int t = 0; t <= 300; ++t) {
    const sim::Time now = sim::Time::ms(t * 200);
    const Vec2 a = trimmed.position_at(now);
    const Vec2 b = intact.position_at(now);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    trimmed.trim_history_before(now - sim::Time::ms(500));
  }
  EXPECT_GT(trimmed.stats().pruned, 0u);
  EXPECT_LT(trimmed.stats().live, intact.stats().live);
}

TEST(RandomWalkTest, RejectsBadConfig) {
  RandomWalkConfig c;
  c.max_speed = 0.0;
  EXPECT_THROW(RandomWalk(c, sim::Rng(1)), sim::ConfigError);
  c = RandomWalkConfig{};
  c.min_speed = -1.0;
  EXPECT_THROW(RandomWalk(c, sim::Rng(1)), sim::ConfigError);
  c = RandomWalkConfig{};
  c.min_speed = 5.0;
  c.max_speed = 2.0;
  EXPECT_THROW(RandomWalk(c, sim::Rng(1)), sim::ConfigError);
  c = RandomWalkConfig{};
  c.step = sim::Time::zero();
  EXPECT_THROW(RandomWalk(c, sim::Rng(1)), sim::ConfigError);
}

TEST(StaticMobilityTest, TrimAndStatsAreNoOps) {
  StaticMobility m(Vec2{1, 2});
  m.trim_history_before(sim::Time::sec(100));
  EXPECT_EQ(m.position_at(sim::Time::sec(200)), (Vec2{1, 2}));
  EXPECT_EQ(m.stats().generated, 0u);
  EXPECT_EQ(m.stats().live, 0u);
}

TEST(RandomWalkTest, StaysInsideField) {
  RandomWalkConfig c;
  c.field = Field{500, 500};
  c.max_speed = 20.0;
  RandomWalk rw(c, sim::Rng(21));
  for (int t = 0; t <= 1000; ++t) {
    const Vec2 p = rw.position_at(sim::Time::ms(t * 200));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 500.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 500.0);
  }
}

TEST(RandomWalkTest, Deterministic) {
  RandomWalkConfig c;
  RandomWalk a(c, sim::Rng(2)), b(c, sim::Rng(2));
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(a.position_at(sim::Time::sec(t)).x,
                     b.position_at(sim::Time::sec(t)).x);
  }
}

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility m(Vec2{3, 4});
  EXPECT_EQ(m.position_at(sim::Time::zero()), (Vec2{3, 4}));
  EXPECT_EQ(m.position_at(sim::Time::sec(1000)), (Vec2{3, 4}));
  EXPECT_EQ(m.max_speed(), 0.0);
}

TEST(Vec2Test, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec2{0, 0}, Vec2{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq(Vec2{0, 0}, Vec2{3, 4}), 25.0);
}

TEST(FieldTest, Contains) {
  Field f{10, 20};
  EXPECT_TRUE(f.contains({0, 0}));
  EXPECT_TRUE(f.contains({10, 20}));
  EXPECT_FALSE(f.contains({-0.1, 5}));
  EXPECT_FALSE(f.contains({5, 20.1}));
}

}  // namespace
}  // namespace mts::mobility
