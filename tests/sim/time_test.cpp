#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mts::sim {
namespace {

TEST(TimeTest, DefaultIsZero) {
  EXPECT_EQ(Time{}.nanoseconds(), 0);
  EXPECT_TRUE(Time{}.is_zero());
  EXPECT_EQ(Time{}, Time::zero());
}

TEST(TimeTest, UnitConstructors) {
  EXPECT_EQ(Time::ns(1).nanoseconds(), 1);
  EXPECT_EQ(Time::us(1).nanoseconds(), 1'000);
  EXPECT_EQ(Time::ms(1).nanoseconds(), 1'000'000);
  EXPECT_EQ(Time::sec(1).nanoseconds(), 1'000'000'000);
}

TEST(TimeTest, FractionalSecondsRoundToNearestNanosecond) {
  EXPECT_EQ(Time::seconds(1.5).nanoseconds(), 1'500'000'000);
  EXPECT_EQ(Time::seconds(1e-9).nanoseconds(), 1);
  EXPECT_EQ(Time::seconds(0.4e-9).nanoseconds(), 0);
  EXPECT_EQ(Time::seconds(0.6e-9).nanoseconds(), 1);
  EXPECT_EQ(Time::seconds(-1.0).nanoseconds(), -1'000'000'000);
}

TEST(TimeTest, FractionalMicros) {
  EXPECT_EQ(Time::micros(1.5).nanoseconds(), 1'500);
  EXPECT_EQ(Time::micros(20.0), Time::us(20));
}

TEST(TimeTest, ConversionRoundTrip) {
  const Time t = Time::ms(1234);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.234);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1234.0);
  EXPECT_DOUBLE_EQ(t.to_micros(), 1'234'000.0);
}

TEST(TimeTest, Arithmetic) {
  EXPECT_EQ(Time::ms(1) + Time::us(500), Time::us(1500));
  EXPECT_EQ(Time::ms(2) - Time::ms(3), Time::ms(-1));
  EXPECT_TRUE((Time::ms(2) - Time::ms(3)).is_negative());
  EXPECT_EQ(Time::us(10) * std::int64_t{3}, Time::us(30));
  EXPECT_EQ(std::int64_t{3} * Time::us(10), Time::us(30));
  EXPECT_EQ(Time::us(30) / std::int64_t{3}, Time::us(10));
}

TEST(TimeTest, ScalarMultiplyByDouble) {
  EXPECT_EQ(Time::sec(10) * 0.5, Time::sec(5));
  EXPECT_EQ(Time::sec(3) * 2.5, Time::ms(7500));
}

TEST(TimeTest, DurationRatio) {
  EXPECT_DOUBLE_EQ(Time::ms(10) / Time::ms(4), 2.5);
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::ms(1);
  t += Time::ms(2);
  EXPECT_EQ(t, Time::ms(3));
  t -= Time::ms(5);
  EXPECT_EQ(t, Time::ms(-2));
}

TEST(TimeTest, ComparisonIsTotal) {
  EXPECT_LT(Time::us(999), Time::ms(1));
  EXPECT_LE(Time::ms(1), Time::ms(1));
  EXPECT_GT(Time::sec(1), Time::ms(999));
  EXPECT_NE(Time::ns(1), Time::ns(2));
  EXPECT_LT(Time::zero(), Time::max());
}

TEST(TimeTest, StreamOutputInSeconds) {
  std::ostringstream os;
  os << Time::ms(1500);
  EXPECT_EQ(os.str(), "1.5s");
}

}  // namespace
}  // namespace mts::sim
