#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mts::sim {
namespace {

TEST(TimerTest, FiresOnce) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.schedule_in(Time::ms(5));
  EXPECT_TRUE(t.is_pending());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.is_pending());
}

TEST(TimerTest, CancelPreventsFiring) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.schedule_in(Time::ms(5));
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, RescheduleMovesExpiry) {
  Scheduler s;
  Time fired_at;
  Timer t(s, [&] { fired_at = s.now(); });
  t.schedule_in(Time::ms(5));
  t.schedule_in(Time::ms(20));  // re-arm replaces the earlier expiry
  s.run();
  EXPECT_EQ(fired_at, Time::ms(20));
}

TEST(TimerTest, ScheduleAtAbsolute) {
  Scheduler s;
  Time fired_at;
  Timer t(s, [&] { fired_at = s.now(); });
  s.schedule_at(Time::ms(3), [&] { t.schedule_at(Time::ms(9)); });
  s.run();
  EXPECT_EQ(fired_at, Time::ms(9));
}

TEST(TimerTest, DestructionCancels) {
  Scheduler s;
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.schedule_in(Time::ms(5));
  }
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, CanRearmFromItsOwnCallback) {
  Scheduler s;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(s, [&] {
    if (++fired < 3) tp->schedule_in(Time::ms(1));
  });
  tp = &t;
  t.schedule_in(Time::ms(1));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimerTest, FiresEveryPeriod) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, [&] { fires.push_back(s.now()); });
  t.start(Time::ms(10));
  s.run_until(Time::ms(35));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], Time::ms(10));
  EXPECT_EQ(fires[1], Time::ms(20));
  EXPECT_EQ(fires[2], Time::ms(30));
}

TEST(PeriodicTimerTest, InitialDelayIndependentOfPeriod) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, [&] { fires.push_back(s.now()); });
  t.start(Time::ms(10), Time::ms(3));
  s.run_until(Time::ms(25));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], Time::ms(3));
  EXPECT_EQ(fires[1], Time::ms(13));
  EXPECT_EQ(fires[2], Time::ms(23));
}

TEST(PeriodicTimerTest, StopHalts) {
  Scheduler s;
  int fired = 0;
  PeriodicTimer t(s, [&] { ++fired; });
  t.start(Time::ms(10));
  s.schedule_at(Time::ms(25), [&] { t.stop(); });
  s.run_until(Time::ms(100));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(t.is_running());
}

TEST(PeriodicTimerTest, CallbackMayStopItself) {
  Scheduler s;
  int fired = 0;
  PeriodicTimer* tp = nullptr;
  PeriodicTimer t(s, [&] {
    if (++fired == 2) tp->stop();
  });
  tp = &t;
  t.start(Time::ms(1));
  s.run_until(Time::ms(50));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimerTest, RejectsNonPositivePeriod) {
  Scheduler s;
  PeriodicTimer t(s, [] {});
  EXPECT_THROW(t.start(Time::zero()), SimError);
}

TEST(TimerTest, RearmFromOwnCallbackAdvancesTime) {
  // The hot MAC/TCP idiom: the expiry handler re-arms the same timer.
  // Each firing must land exactly one delay after the previous one.
  Scheduler s;
  std::vector<Time> fires;
  Timer* tp = nullptr;
  Timer t(s, [&] {
    fires.push_back(s.now());
    if (fires.size() < 4) tp->schedule_in(Time::ms(3));
  });
  tp = &t;
  t.schedule_in(Time::ms(3));
  s.run();
  ASSERT_EQ(fires.size(), 4u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], Time::ms(3) * static_cast<std::int64_t>(i + 1));
  }
  EXPECT_FALSE(t.is_pending());
}

TEST(TimerTest, RearmToEarlierTimeWins) {
  Scheduler s;
  Time fired_at;
  Timer t(s, [&] { fired_at = s.now(); });
  t.schedule_in(Time::ms(50));
  t.schedule_in(Time::ms(5));  // moving the expiry *earlier* must work too
  s.run();
  EXPECT_EQ(fired_at, Time::ms(5));
  EXPECT_EQ(s.executed_count(), 1u);
}

TEST(TimerTest, RearmedTimerOrdersAfterEarlierSameTickEvents) {
  // Re-arming behaves like a fresh schedule for tie-breaking: an event
  // already queued for the same tick runs first.
  Scheduler s;
  std::vector<int> order;
  Timer t(s, [&] { order.push_back(2); });
  t.schedule_in(Time::ms(9));
  s.schedule_at(Time::ms(10), [&] { order.push_back(1); });
  t.schedule_at(Time::ms(10));  // re-arm to the same tick, later insertion
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerTest, CancelThenRearmFires) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.schedule_in(Time::ms(5));
  t.cancel();
  EXPECT_FALSE(t.is_pending());
  t.schedule_in(Time::ms(7));
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), Time::ms(7));
}

TEST(PeriodicTimerTest, SetPeriodTakesEffectNextTick) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, [&] { fires.push_back(s.now()); });
  t.start(Time::ms(10));
  s.schedule_at(Time::ms(15), [&] { t.set_period(Time::ms(2)); });
  s.run_until(Time::ms(25));
  // Fires at 10 (old period), 20 (already scheduled), then every 2 ms.
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], Time::ms(10));
  EXPECT_EQ(fires[1], Time::ms(20));
  EXPECT_EQ(fires[2], Time::ms(22));
}

}  // namespace
}  // namespace mts::sim
