#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mts::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NamedSubstreamsAreIndependentAndStable) {
  Rng master(7);
  Rng a1 = master.substream("mobility");
  Rng a2 = master.substream("mobility");
  Rng b = master.substream("mac");
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a1.uniform(), a2.uniform());
  Rng a3 = master.substream("mobility");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a3.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, IndexedSubstreams) {
  Rng master(7);
  Rng n0 = master.substream(std::uint64_t{0});
  Rng n1 = master.substream(std::uint64_t{1});
  EXPECT_NE(n0.seed(), n1.seed());
  Rng n0b = master.substream(std::uint64_t{0});
  EXPECT_EQ(n0.seed(), n0b.seed());
}

TEST(RngTest, SubstreamInsulation) {
  // Drawing from one substream must not affect a sibling: this is the
  // property that keeps protocol comparisons paired across runs.
  Rng master(9);
  Rng a = master.substream("a");
  Rng b1 = master.substream("b");
  const double first = b1.uniform();
  for (int i = 0; i < 1000; ++i) a.uniform();
  Rng b2 = master.substream("b");
  EXPECT_DOUBLE_EQ(b2.uniform(), first);
}

TEST(RngTest, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformRejectsInvertedRange) {
  Rng r(3);
  EXPECT_THROW(r.uniform(5.0, 2.0), SimError);
  EXPECT_THROW(r.uniform_int(5, 2), SimError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(RngTest, ExponentialMeanApproximately) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), SimError);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, PickCoversAllElements) {
  Rng r(17);
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, PickEmptyThrows) {
  Rng r(1);
  const std::vector<int> empty;
  EXPECT_THROW(r.pick(empty), SimError);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v.begin(), v.end());
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(SplitMix64Test, AdjacentInputsDisperse) {
  const auto a = splitmix64(1);
  const auto b = splitmix64(2);
  EXPECT_NE(a, b);
  EXPECT_NE(a >> 32, b >> 32);
}

TEST(Fnv1aTest, DistinctStringsDistinctHashes) {
  EXPECT_NE(fnv1a("mobility"), fnv1a("mac"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("x"), fnv1a("x"));
}

}  // namespace
}  // namespace mts::sim
