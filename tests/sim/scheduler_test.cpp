#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

namespace mts::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::ms(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, ScheduleInIsRelative) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::ms(10), [&] {
    s.schedule_in(Time::ms(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::ms(15));
}

TEST(SchedulerTest, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(Time::ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::ms(5), [] {}), SimError);
}

TEST(SchedulerTest, EmptyCallbackThrows) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(Time::ms(1), std::function<void()>{}), SimError);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(s.is_pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.is_pending(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelTwiceReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, CancelAfterFireReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(10), [&] { order.push_back(10); });
  s.run_until(Time::ms(5));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), Time::ms(5));  // time advances even with no event
  EXPECT_EQ(s.pending_count(), 1u);
  s.run_until(Time::ms(20));
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(SchedulerTest, EventAtBoundaryRuns) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(Time::ms(5), [&] { ran = true; });
  s.run_until(Time::ms(5));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::ms(i), [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_count(), 7u);
}

TEST(SchedulerTest, RunStepsExecutesExactly) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    s.schedule_at(Time::ms(i), [&] { ++count; });
  }
  EXPECT_EQ(s.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.run_steps(10), 2u);
  EXPECT_EQ(count, 5);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(Time::us(1), recurse);
  };
  s.schedule_at(Time::zero(), recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), Time::us(99));
}

TEST(SchedulerTest, ExecutedCountTracksHistory) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(Time::ms(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 7u);
}

TEST(SchedulerTest, NextEventTimeSkipsCancelled) {
  Scheduler s;
  const EventId early = s.schedule_at(Time::ms(1), [] {});
  s.schedule_at(Time::ms(2), [] {});
  EXPECT_EQ(s.next_event_time(), Time::ms(1));
  s.cancel(early);
  EXPECT_EQ(s.next_event_time(), Time::ms(2));
}

TEST(SchedulerTest, NextEventTimeOnEmptyIsMax) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), Time::max());
}

TEST(SchedulerTest, PeekThenEarlierScheduleKeepsPopOrder) {
  // Regression: peeking an otherwise-empty queue whose only event is
  // far in the future re-bases the calendar wheel onto it.  An event
  // scheduled afterwards at an earlier time (but beyond the original
  // wheel horizon) used to park in the overflow heap and pop AFTER the
  // later wheel event, moving now() backwards.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::sec(10), [&] { order.push_back(10); });
  EXPECT_EQ(s.next_event_time(), Time::sec(10));  // re-bases the wheel
  s.schedule_at(Time::sec(1), [&] { order.push_back(1); });
  EXPECT_EQ(s.next_event_time(), Time::sec(1));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
  EXPECT_EQ(s.now(), Time::sec(10));
}

TEST(SchedulerTest, RunUntilThenEarlierScheduleKeepsPopOrder) {
  // Same pattern through the co-sim boundary: run_until peeks past its
  // end time, then the driver schedules earlier than everything pending.
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(Time::sec(30), [&] { fired.push_back(s.now()); });
  s.run_until(Time::ms(1));  // peeks (re-bases), pops nothing
  s.schedule_at(Time::sec(2), [&] { fired.push_back(s.now()); });
  s.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Time::sec(2));
  EXPECT_EQ(fired[1], Time::sec(30));
}

TEST(SchedulerTest, ZeroDelayEventRunsAtCurrentTime) {
  Scheduler s;
  Time fired = Time::max();
  s.schedule_at(Time::ms(5), [&] {
    s.schedule_in(Time::zero(), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::ms(5));
}

// --------------------------------------------------------------------------
// Semantics the event-core refactor must preserve exactly.  These were
// written (and green) against the lazy-delete priority_queue core before
// the slot-pool rewrite landed.
// --------------------------------------------------------------------------

TEST(SchedulerTest, SameTickFifoSurvivesInterleavedCancels) {
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(s.schedule_at(Time::ms(7), [&order, i] { order.push_back(i); }));
  }
  // Cancelling every third event must not disturb the relative order of
  // the survivors.
  for (std::size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
  s.run();
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, CancelDuringDispatchOfSameTick) {
  // An event may cancel a later event scheduled for the very same tick;
  // the victim must not fire even though dispatch of that tick already
  // began.
  Scheduler s;
  bool victim_ran = false;
  EventId victim = kInvalidEvent;
  s.schedule_at(Time::ms(1), [&] { EXPECT_TRUE(s.cancel(victim)); });
  victim = s.schedule_at(Time::ms(1), [&] { victim_ran = true; });
  s.schedule_at(Time::ms(1), [] {});  // a survivor behind the victim
  s.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(s.executed_count(), 2u);
}

TEST(SchedulerTest, CancelOfSelfDuringDispatchReturnsFalse) {
  Scheduler s;
  EventId self = kInvalidEvent;
  bool cancel_result = true;
  self = s.schedule_at(Time::ms(1), [&] {
    cancel_result = s.cancel(self);
    EXPECT_FALSE(s.is_pending(self));
  });
  s.run();
  EXPECT_FALSE(cancel_result);
}

TEST(SchedulerTest, StaleIdCancelStaysFalseAfterHeavyReuse) {
  // After an event fires, its id must never cancel (or report pending
  // for) any later event — even once internal storage gets reused by
  // thousands of newer events.
  Scheduler s;
  const EventId old_id = s.schedule_at(Time::ms(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(old_id));
  int ran = 0;
  std::vector<EventId> fresh;
  for (int i = 0; i < 4096; ++i) {
    fresh.push_back(s.schedule_at(Time::ms(2 + i), [&ran] { ++ran; }));
  }
  EXPECT_FALSE(s.is_pending(old_id));
  EXPECT_FALSE(s.cancel(old_id));  // must not kill a recycled slot
  s.run();
  EXPECT_EQ(ran, 4096);
  for (EventId id : fresh) EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, CancelledIdStaysDeadAfterReuse) {
  Scheduler s;
  const EventId a = s.schedule_at(Time::ms(1), [] {});
  EXPECT_TRUE(s.cancel(a));
  bool ran = false;
  s.schedule_at(Time::ms(1), [&ran] { ran = true; });
  EXPECT_FALSE(s.cancel(a));  // stale id, possibly recycled storage
  s.run();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, PendingCountTracksCancels) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(s.schedule_at(Time::ms(1), [] {}));
  EXPECT_EQ(s.pending_count(), 10u);
  for (int i = 0; i < 10; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.pending_count(), 5u);
  s.run();
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_EQ(s.executed_count(), 5u);
}

TEST(SchedulerTest, RescheduleMovesPendingEvent) {
  Scheduler s;
  Time fired = Time::zero();
  const EventId id = s.schedule_at(Time::ms(5), [&] { fired = s.now(); });
  EXPECT_TRUE(s.reschedule(id, Time::ms(20)));
  EXPECT_TRUE(s.is_pending(id));
  s.run();
  EXPECT_EQ(fired, Time::ms(20));
  EXPECT_EQ(s.executed_count(), 1u);
}

TEST(SchedulerTest, RescheduleEarlierWorks) {
  Scheduler s;
  Time fired = Time::zero();
  const EventId id = s.schedule_at(Time::ms(50), [&] { fired = s.now(); });
  EXPECT_TRUE(s.reschedule(id, Time::ms(2)));
  s.run();
  EXPECT_EQ(fired, Time::ms(2));
}

TEST(SchedulerTest, RescheduleOrdersLikeFreshSchedule) {
  // A rescheduled event draws a new insertion sequence: same-tick
  // events queued before the reschedule run first.
  Scheduler s;
  std::vector<int> order;
  const EventId id = s.schedule_at(Time::ms(1), [&] { order.push_back(2); });
  s.schedule_at(Time::ms(10), [&] { order.push_back(1); });
  EXPECT_TRUE(s.reschedule(id, Time::ms(10)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, RescheduleStaleIdReturnsFalse) {
  Scheduler s;
  const EventId fired = s.schedule_at(Time::ms(1), [] {});
  const EventId cancelled = s.schedule_at(Time::ms(2), [] {});
  s.cancel(cancelled);
  s.run();
  EXPECT_FALSE(s.reschedule(fired, Time::ms(10)));
  EXPECT_FALSE(s.reschedule(cancelled, Time::ms(10)));
  EXPECT_FALSE(s.reschedule(kInvalidEvent, Time::ms(10)));
}

TEST(SchedulerTest, RescheduleIntoPastThrows) {
  Scheduler s;
  s.schedule_at(Time::ms(10), [] {});
  const EventId id = s.schedule_at(Time::ms(20), [] {});
  s.run_until(Time::ms(15));
  EXPECT_THROW(s.reschedule(id, Time::ms(5)), SimError);
}

TEST(SchedulerTest, WidelySpreadTimersStayOrdered) {
  // Sparse events across six decades of time exercise the calendar's
  // empty-stretch walk / direct-search path.
  Scheduler s;
  std::vector<std::int64_t> fired_ns;
  for (std::int64_t ns : {1ll, 900ll, 40000ll, 2000000ll, 700000000ll,
                          30000000000ll, 31000000000ll}) {
    s.schedule_at(Time::ns(ns), [&fired_ns, ns] { fired_ns.push_back(ns); });
  }
  s.run();
  EXPECT_EQ(fired_ns.size(), 7u);
  EXPECT_TRUE(std::is_sorted(fired_ns.begin(), fired_ns.end()));
}

TEST(SchedulerTest, BimodalNearAndFarEventsInterleaveCorrectly) {
  // The 10k-node shape: dense microsecond-spaced events next to timers
  // parked seconds out (the overflow heap).  Every far event must fire
  // in global (time, insertion) order as the wheel's window reaches it,
  // including far events scheduled from inside near callbacks.
  Scheduler s;
  std::vector<std::int64_t> fired_ns;
  const auto record = [&s, &fired_ns] {
    fired_ns.push_back(s.now().nanoseconds());
  };
  for (int i = 0; i < 200; ++i) {
    s.schedule_at(Time::ns(10 + i * 3), record);          // near burst
    s.schedule_at(Time::ms(50 + i * 7), record);          // far timers
  }
  s.schedule_at(Time::ns(100), [&s, record] {
    s.schedule_at(Time::seconds(2), record);              // far from near
  });
  s.run();
  EXPECT_EQ(fired_ns.size(), 401u);
  EXPECT_TRUE(std::is_sorted(fired_ns.begin(), fired_ns.end()));
  EXPECT_EQ(fired_ns.back(), Time::seconds(2).nanoseconds());
}

TEST(SchedulerTest, CancelAndRearmWhileParkedFar) {
  // Events cancelled or re-armed while waiting in the overflow heap
  // must neither fire at their stale time nor linger: the heap sweeps
  // its tombstones and the survivors fire in order.
  Scheduler s;
  std::vector<int> fired;
  std::vector<EventId> parked;
  for (int i = 0; i < 300; ++i) {
    parked.push_back(
        s.schedule_at(Time::ms(100 + i), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 300; i += 2) EXPECT_TRUE(s.cancel(parked[i]));
  // Re-arm a survivor to the very end: it must fire last, once.
  EXPECT_TRUE(s.reschedule(parked[1], Time::seconds(5)));
  s.run();
  ASSERT_EQ(fired.size(), 150u);
  EXPECT_EQ(fired.back(), 1);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end() - 1));
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(SchedulerTest, DifferentialStressAgainstReferenceModel) {
  // Randomised schedule/cancel/reschedule mix, mirrored into an ordered
  // std::map reference keyed (time, op-sequence): the scheduler must
  // fire exactly the reference's order through every internal
  // grow/shrink/re-fit of the calendar.  Time ties are frequent by
  // construction (small time range, many events).
  Scheduler s;
  std::mt19937_64 rng(0xC0FFEE);
  using Key = std::pair<std::int64_t, std::uint64_t>;  // (t_ns, seq)
  std::map<Key, int> ref;                      // pending, in fire order
  std::map<EventId, std::pair<Key, int>> by_id;  // id -> (key, label)
  std::vector<int> fired;
  std::uint64_t seq = 0;
  int label = 0;
  const auto rand_in = [&](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng() % static_cast<std::uint64_t>(hi - lo));
  };
  for (int round = 0; round < 3000; ++round) {
    const auto op = rng() % 10;
    if (op < 6 || by_id.empty()) {
      // Mixed horizons: mostly near-future (dense ties), sometimes far
      // (exercises the empty-stretch walk and direct search).
      const std::int64_t delay =
          (rng() % 8 == 0) ? rand_in(1000000, 100000000) : rand_in(0, 200);
      const Time at = s.now() + Time::ns(delay);
      const int l = label++;
      const EventId id = s.schedule_at(at, [&fired, l] { fired.push_back(l); });
      const Key key{at.nanoseconds(), seq++};
      ref.emplace(key, l);
      by_id.emplace(id, std::make_pair(key, l));
    } else if (op < 8) {
      auto it = by_id.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % by_id.size()));
      EXPECT_TRUE(s.cancel(it->first));
      ref.erase(it->second.first);
      by_id.erase(it);
    } else {
      auto it = by_id.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % by_id.size()));
      const Time at = s.now() + Time::ns(rand_in(0, 200));
      EXPECT_TRUE(s.reschedule(it->first, at));
      ref.erase(it->second.first);
      const Key key{at.nanoseconds(), seq++};
      ref.emplace(key, it->second.second);
      it->second.first = key;
    }
  }
  EXPECT_EQ(s.pending_count(), ref.size());
  s.run();
  std::vector<int> expected;
  expected.reserve(ref.size());
  for (const auto& [key, l] : ref) expected.push_back(l);
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(SchedulerTest, ManyTicksInterleavedScheduleCancelKeepsOrder) {
  // A torture mix of schedule/cancel across several ticks: execution
  // order must equal (time, insertion order) over the survivors.
  Scheduler s;
  std::vector<std::pair<int, int>> order;  // (tick, serial)
  std::vector<EventId> cancellable;
  int serial = 0;
  for (int round = 0; round < 8; ++round) {
    for (int tick = 1; tick <= 4; ++tick) {
      const int id = serial++;
      const EventId ev = s.schedule_at(
          Time::ms(tick), [&order, tick, id] { order.emplace_back(tick, id); });
      if (id % 2 == 1) cancellable.push_back(ev);
    }
  }
  for (EventId ev : cancellable) EXPECT_TRUE(s.cancel(ev));
  s.run();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace mts::sim
