#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mts::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::ms(3));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, ScheduleInIsRelative) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::ms(10), [&] {
    s.schedule_in(Time::ms(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::ms(15));
}

TEST(SchedulerTest, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(Time::ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::ms(5), [] {}), SimError);
}

TEST(SchedulerTest, EmptyCallbackThrows) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(Time::ms(1), std::function<void()>{}), SimError);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(s.is_pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.is_pending(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelTwiceReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, CancelAfterFireReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(Time::ms(1), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  s.schedule_at(Time::ms(10), [&] { order.push_back(10); });
  s.run_until(Time::ms(5));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), Time::ms(5));  // time advances even with no event
  EXPECT_EQ(s.pending_count(), 1u);
  s.run_until(Time::ms(20));
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(SchedulerTest, EventAtBoundaryRuns) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(Time::ms(5), [&] { ran = true; });
  s.run_until(Time::ms(5));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(Time::ms(i), [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_count(), 7u);
}

TEST(SchedulerTest, RunStepsExecutesExactly) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    s.schedule_at(Time::ms(i), [&] { ++count; });
  }
  EXPECT_EQ(s.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.run_steps(10), 2u);
  EXPECT_EQ(count, 5);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(Time::us(1), recurse);
  };
  s.schedule_at(Time::zero(), recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), Time::us(99));
}

TEST(SchedulerTest, ExecutedCountTracksHistory) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(Time::ms(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 7u);
}

TEST(SchedulerTest, NextEventTimeSkipsCancelled) {
  Scheduler s;
  const EventId early = s.schedule_at(Time::ms(1), [] {});
  s.schedule_at(Time::ms(2), [] {});
  EXPECT_EQ(s.next_event_time(), Time::ms(1));
  s.cancel(early);
  EXPECT_EQ(s.next_event_time(), Time::ms(2));
}

TEST(SchedulerTest, NextEventTimeOnEmptyIsMax) {
  Scheduler s;
  EXPECT_EQ(s.next_event_time(), Time::max());
}

TEST(SchedulerTest, ZeroDelayEventRunsAtCurrentTime) {
  Scheduler s;
  Time fired = Time::max();
  s.schedule_at(Time::ms(5), [&] {
    s.schedule_in(Time::zero(), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::ms(5));
}

}  // namespace
}  // namespace mts::sim
