// Unit coverage for the active half of the adversary taxonomy: wormhole
// pair placement, grayhole drop statistics and duty cycling, traffic-
// analysis inference, and RREQ-flood injection pacing.  Everything here
// is deterministic for a fixed seed — the properties the integration
// fingerprints build on.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "security/adversary.hpp"
#include "sim/scheduler.hpp"

namespace mts::security {
namespace {

net::Packet data_packet(net::NodeId src, net::NodeId dst, std::uint32_t seq) {
  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = net::PacketKind::kTcpData;
  common.src = src;
  common.dst = dst;
  p.mutable_tcp() = net::TcpHeader{.seq = seq, .flow_id = 1, .ts = {}};
  return p;
}

phy::Frame metadata_frame(net::NodeId tx, net::NodeId rx,
                          std::uint32_t bytes) {
  phy::Frame f;
  f.type = phy::FrameType::kData;
  f.transmitter = tx;
  f.receiver = rx;
  f.bytes = bytes;
  return f;
}

// --- wormhole pair placement -----------------------------------------------

/// 10 nodes on a 100 m-spaced line: distances are unambiguous, so the
/// far-end choice is easy to verify independently.
mobility::Vec2 line_position(net::NodeId id, sim::Time) {
  return {static_cast<double>(id) * 100.0, 0.0};
}

TEST(WormholePairTest, PlacementIsDeterministic) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kWormhole;
  const auto a =
      resolve_wormhole_pair(spec, 10, {0, 9}, sim::Rng(42), line_position);
  const auto b =
      resolve_wormhole_pair(spec, 10, {0, 9}, sim::Rng(42), line_position);
  EXPECT_EQ(a, b);
  EXPECT_NE(a[0], a[1]);
}

TEST(WormholePairTest, FarEndMaximizesSeparationFromAnchor) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kWormhole;
  const std::unordered_set<net::NodeId> excluded{0, 9};
  const auto pair =
      resolve_wormhole_pair(spec, 10, excluded, sim::Rng(7), line_position);
  const mobility::Vec2 ap = line_position(pair[0], {});
  const double chosen = mobility::distance(ap, line_position(pair[1], {}));
  for (net::NodeId c = 0; c < 10; ++c) {
    if (c == pair[0] || excluded.contains(c)) continue;
    EXPECT_GE(chosen + 1e-9, mobility::distance(ap, line_position(c, {})))
        << "candidate " << c << " is farther from the anchor than the "
        << "chosen far end " << pair[1];
  }
  EXPECT_FALSE(excluded.contains(pair[0]));
  EXPECT_FALSE(excluded.contains(pair[1]));
}

TEST(WormholePairTest, ExplicitPairPassesThroughAndIsValidated) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kWormhole;
  spec.members = {3, 7};
  const auto pair =
      resolve_wormhole_pair(spec, 10, {}, sim::Rng(1), line_position);
  EXPECT_EQ(pair, (std::array<net::NodeId, 2>{3, 7}));

  spec.members = {3};
  EXPECT_THROW(resolve_wormhole_pair(spec, 10, {}, sim::Rng(1), line_position),
               sim::ConfigError);
  spec.members = {3, 3};
  EXPECT_THROW(resolve_wormhole_pair(spec, 10, {}, sim::Rng(1), line_position),
               sim::ConfigError);
}

// --- grayhole --------------------------------------------------------------

TEST(GrayholeTest, DropRateConvergesToDropProb) {
  const double p = 0.3;
  GrayholeAttacker gh({4}, p, sim::Time::zero(), sim::Time::zero(),
                      sim::Rng(99));
  const int n = 4000;
  int absorbed = 0;
  for (int i = 0; i < n; ++i) {
    if (gh.absorbs(4, data_packet(0, 9, static_cast<std::uint32_t>(i)),
                   sim::Time::sec(1))) {
      ++absorbed;
    }
  }
  const double rate = static_cast<double>(absorbed) / n;
  // Seeded binomial tolerance: 4 sigma around p.
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(rate, p, 4.0 * sigma);
}

TEST(GrayholeTest, EligibilityMatchesTheBlackholeRules) {
  GrayholeAttacker gh({4}, 1.0, sim::Time::zero(), sim::Time::zero(),
                      sim::Rng(1));
  // p = 1: every eligible packet dies, so the veto is fully visible.
  EXPECT_TRUE(gh.absorbs(4, data_packet(0, 9, 1), sim::Time::sec(1)));
  EXPECT_FALSE(gh.absorbs(5, data_packet(0, 9, 1), sim::Time::sec(1)));
  EXPECT_FALSE(gh.absorbs(4, data_packet(0, 4, 1), sim::Time::sec(1)));
  net::Packet ctrl;
  ctrl.mutable_common().kind = net::PacketKind::kMtsCheck;
  EXPECT_FALSE(gh.absorbs(4, ctrl, sim::Time::sec(1)));
}

TEST(GrayholeTest, DutyCycleGatesAbsorption) {
  // On for the first second of every 4-second period.
  GrayholeAttacker gh({4}, 1.0, sim::Time::sec(1), sim::Time::sec(4),
                      sim::Rng(5));
  EXPECT_TRUE(gh.active_at(sim::Time::ms(500)));
  EXPECT_FALSE(gh.active_at(sim::Time::ms(1500)));
  EXPECT_FALSE(gh.active_at(sim::Time::ms(3999)));
  EXPECT_TRUE(gh.active_at(sim::Time::ms(4200)));
  EXPECT_TRUE(gh.absorbs(4, data_packet(0, 9, 1), sim::Time::ms(4200)));
  EXPECT_FALSE(gh.absorbs(4, data_packet(0, 9, 1), sim::Time::ms(2000)));
}

TEST(GrayholeTest, HalfConfiguredDutyCycleIsAConfigError) {
  // window without period (or vice versa) must not silently run
  // always-on.
  EXPECT_THROW(GrayholeAttacker({4}, 0.5, sim::Time::sec(2), sim::Time::zero(),
                                sim::Rng(1)),
               sim::ConfigError);
  EXPECT_THROW(GrayholeAttacker({4}, 0.5, sim::Time::zero(), sim::Time::sec(4),
                                sim::Rng(1)),
               sim::ConfigError);
}

TEST(GrayholeTest, AbsorbedPacketsAreCountedAndRead) {
  GrayholeAttacker gh({4}, 0.5, sim::Time::zero(), sim::Time::zero(),
                      sim::Rng(1));
  gh.on_absorb(4, data_packet(0, 9, 1));
  gh.on_absorb(4, data_packet(0, 9, 1));  // retransmit of seq 1
  gh.on_absorb(4, data_packet(0, 9, 2));
  EXPECT_EQ(gh.absorbed_packets(), 3u);
  EXPECT_EQ(gh.captured_segments(), 2u);  // distinct segments
}

// --- traffic analysis ------------------------------------------------------

class TrafficAnalysisTest : public ::testing::Test {
 protected:
  /// Member 1 at the origin sees everything within 250 m; nodes sit on
  /// a 100 m line so the whole chain is observable.
  TrafficAnalysisAttacker make(std::vector<net::NodeId> members) {
    return TrafficAnalysisAttacker(std::move(members), 250.0, 4,
                                   line_position);
  }

  /// One TCP exchange of the flow 0 -> 2 through relay 1: big data
  /// frames downstream, small ACKs upstream.
  void feed(TrafficAnalysisAttacker& t, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      t.on_transmission({0, line_position(0, {}), {}, sim::Time::sec(1)},
                        metadata_frame(0, 1, 1000));
      t.on_transmission({1, line_position(1, {}), {}, sim::Time::sec(1)},
                        metadata_frame(1, 2, 1000));
      t.on_transmission({2, line_position(2, {}), {}, sim::Time::sec(1)},
                        metadata_frame(2, 1, 60));
      t.on_transmission({1, line_position(1, {}), {}, sim::Time::sec(1)},
                        metadata_frame(1, 0, 60));
    }
  }
};

TEST_F(TrafficAnalysisTest, InfersEndpointsFromVolumeSkewAlone) {
  auto t = make({1});
  feed(t, 10);
  // Source 0: sends 10 kB of data, receives 600 B of ACKs.  Sink 2 is
  // the mirror image.  Relay 1 cancels out.
  EXPECT_GT(t.volume_skew(0), 0);
  EXPECT_LT(t.volume_skew(2), 0);
  EXPECT_EQ(t.volume_skew(1), 0);
  const auto guesses = t.inferred_endpoints(1);
  ASSERT_EQ(guesses.size(), 1u);
  EXPECT_EQ(guesses[0].first, 0u);
  EXPECT_EQ(guesses[0].second, 2u);
}

TEST_F(TrafficAnalysisTest, InferenceIsDeterministic) {
  auto a = make({1});
  auto b = make({1});
  feed(a, 7);
  feed(b, 7);
  EXPECT_EQ(a.inferred_endpoints(2), b.inferred_endpoints(2));
  EXPECT_EQ(a.frames_profiled(), b.frames_profiled());
}

TEST_F(TrafficAnalysisTest, NeverDecodesPayloads) {
  auto t = make({1});
  // Even a frame that *carries* a decodable TCP segment contributes
  // metadata only: the capture-pool metrics stay at their "knows
  // nothing" defaults.
  phy::Frame f = metadata_frame(0, 1, 1060);
  f.payload.mutable_common().kind = net::PacketKind::kTcpData;
  f.payload.mutable_tcp() = net::TcpHeader{.seq = 1, .flow_id = 1, .ts = {}};
  t.on_transmission({0, line_position(0, {}), {}, sim::Time::sec(1)}, f);
  EXPECT_EQ(t.captured_segments(), 0u);
  EXPECT_EQ(t.fragments_missing(100), 100u);
  EXPECT_EQ(t.frames_profiled(), 1u);
}

TEST_F(TrafficAnalysisTest, OutOfRangeTransmissionsAreNotProfiled) {
  auto t = make({1});
  // 1 km from member 1: invisible.
  t.on_transmission({3, {1000.0, 1000.0}, {}, sim::Time::sec(1)},
                    metadata_frame(3, 2, 1000));
  EXPECT_EQ(t.frames_profiled(), 0u);
  EXPECT_TRUE(t.inferred_endpoints(1).empty());
}

// --- RREQ flood ------------------------------------------------------------

struct FloodHarness {
  sim::Scheduler sched;
  std::vector<net::Packet> injected;
  std::vector<net::NodeId> injectors;

  RreqFlooder make(std::vector<net::NodeId> members, net::PacketKind kind,
                   double rate) {
    return RreqFlooder(std::move(members), kind, 10, rate, sim::Time::sec(1),
                       &sched,
                       [this](net::NodeId m, net::Packet&& p) {
                         injectors.push_back(m);
                         injected.push_back(std::move(p));
                       },
                       sim::Rng(3));
  }
};

TEST(RreqFloodTest, InjectionCountMatchesTheConfiguredRate) {
  FloodHarness h;
  auto flood = h.make({5}, net::PacketKind::kAodvRreq, 10.0);
  flood.on_start(sim::Time::sec(6));
  h.sched.run_until(sim::Time::sec(6));
  // Ticks at t = 1.0, 1.1, ..., 6.0: (6 - 1) * 10 + 1 per member.
  EXPECT_EQ(flood.injected_packets(), 51u);
  EXPECT_EQ(h.injected.size(), 51u);
}

TEST(RreqFloodTest, EveryMemberInjectsEachTick) {
  FloodHarness h;
  auto flood = h.make({2, 5, 7}, net::PacketKind::kDsrRreq, 2.0);
  flood.on_start(sim::Time::sec(3));
  h.sched.run_until(sim::Time::sec(3));
  // Ticks at t = 1, 1.5, 2, 2.5, 3 -> 5 per member.
  EXPECT_EQ(flood.injected_packets(), 15u);
  for (std::size_t i = 0; i < h.injectors.size(); ++i) {
    EXPECT_EQ(h.injectors[i], std::vector<net::NodeId>({2, 5, 7})[i % 3]);
  }
}

TEST(RreqFloodTest, ForgedPacketsAreWellFormedPerProtocol) {
  FloodHarness h;
  auto flood = h.make({5}, net::PacketKind::kMtsRreq, 5.0);
  flood.on_start(sim::Time::sec(2));
  h.sched.run_until(sim::Time::sec(2));
  ASSERT_FALSE(h.injected.empty());
  for (const net::Packet& p : h.injected) {
    EXPECT_EQ(p.kind(), net::PacketKind::kMtsRreq);
    EXPECT_EQ(p.common().src, 5u);
    EXPECT_EQ(p.common().dst, net::kBroadcastId);
    const auto& rh = std::get<net::MtsRreqHeader>(p.routing());
    EXPECT_EQ(rh.orig, 5u);
    EXPECT_NE(rh.dst, 5u);          // never floods for itself
    EXPECT_LT(rh.dst, 10u);         // a real victim
    EXPECT_GE(rh.bcast_id, RreqFlooder::kForgedIdBase)
        << "forged ids must not collide with genuine discovery ids";
  }
}

TEST(RreqFloodTest, FloodAfterSimEndNeverFires) {
  FloodHarness h;
  auto flood = h.make({5}, net::PacketKind::kAodvRreq, 10.0);
  flood.on_start(sim::Time::ms(500));  // sim ends before flood_start (1 s)
  h.sched.run_until(sim::Time::ms(500));
  EXPECT_EQ(flood.injected_packets(), 0u);
}

// --- wormhole dedup aging --------------------------------------------------

/// Drives the tunnel tap directly: frames transmitted by endpoint 3 are
/// always heard (own transmissions feed the tunnel), so every feed is a
/// tunnel-dedup decision.  drop_prob 0 keeps the counts deterministic.
struct WormholeDedupHarness {
  sim::Scheduler sched;
  phy::UnitDiskPropagation prop{250.0};
  phy::Channel channel{sched, prop};
  WormholeAttacker worm{{3, 7},   250.0,    0.0, line_position,
                        &sched,   &channel, sim::Rng(5)};

  WormholeDedupHarness() { channel.finalize(); }

  void feed(std::uint32_t uid, sim::Time now) {
    sched.run_until(now);
    net::Packet p = data_packet(0, 9, uid);
    p.mutable_common().uid = uid;
    phy::Frame f = metadata_frame(3, 4, 1000);
    f.payload = p;
    worm.on_transmission({3, line_position(3, now), sim::Time::us(100), now},
                         f);
  }
};

TEST(WormholeDedupTest, SameUidWithinTheWindowTunnelsOnce) {
  WormholeDedupHarness h;
  h.feed(42, sim::Time::sec(1));
  h.feed(42, sim::Time::sec(2));  // MAC retry / far-end re-hear
  EXPECT_EQ(h.worm.tunneled_frames(), 1u);
  EXPECT_EQ(h.worm.dedup_entries(), 1u);
}

TEST(WormholeDedupTest, EntriesAgeOutAfterTheFreshnessWindow) {
  WormholeDedupHarness h;
  h.feed(42, sim::Time::sec(1));
  EXPECT_EQ(h.worm.dedup_entries(), 1u);
  // Past the window the entry is evicted and the uid tunnels again —
  // a packet genuinely re-entering the air (e.g. after a send-buffer
  // stint) is a fresh radiation a real tunnel would replay.
  const sim::Time later =
      sim::Time::sec(1) + WormholeAttacker::kUidFreshness + sim::Time::sec(1);
  h.feed(42, later);
  EXPECT_EQ(h.worm.tunneled_frames(), 2u);
  EXPECT_EQ(h.worm.dedup_entries(), 1u) << "old entry evicted, new recorded";
}

TEST(WormholeDedupTest, DedupStateIsBoundedOverALongRun) {
  WormholeDedupHarness h;
  // 10 distinct packets per second for 200 simulated seconds: the old
  // unbounded set would hold 2000 entries; the aged set holds at most
  // one freshness window's worth.
  std::uint32_t uid = 1;
  for (int sec = 1; sec <= 200; ++sec) {
    for (int k = 0; k < 10; ++k) {
      h.feed(uid++, sim::Time::sec(sec) + sim::Time::ms(k * 10));
    }
  }
  EXPECT_EQ(h.worm.tunneled_frames(), 2000u);
  const auto window_s =
      static_cast<std::size_t>(WormholeAttacker::kUidFreshness.to_seconds());
  EXPECT_LE(h.worm.dedup_entries(), (window_s + 2) * 10)
      << "dedup set must be bounded by the freshness window, not the run";
}

// --- factory ---------------------------------------------------------------

TEST(ActiveAdversaryFactoryTest, BuildsEachActiveKind) {
  sim::Scheduler sched;
  phy::UnitDiskPropagation prop(250.0);
  phy::Channel channel(sched, prop);

  AdversaryContext ctx;
  ctx.node_count = 20;
  ctx.radio_range = 250.0;
  ctx.position_of = line_position;
  ctx.rng = sim::Rng(3);
  ctx.sched = &sched;
  ctx.channel = &channel;
  ctx.rreq_kind = net::PacketKind::kDsrRreq;
  ctx.inject_control = [](net::NodeId, net::Packet&&) {};

  AdversarySpec spec;
  spec.kind = AdversaryKind::kWormhole;
  auto wormhole = make_adversary(spec, ctx);
  ASSERT_NE(wormhole, nullptr);
  EXPECT_EQ(wormhole->kind(), AdversaryKind::kWormhole);
  EXPECT_EQ(wormhole->member_count(), 2u);
  EXPECT_EQ(wormhole->members().size(), 2u);

  spec.kind = AdversaryKind::kGrayhole;
  spec.count = 3;
  spec.drop_prob = 0.25;
  auto grayhole = make_adversary(spec, ctx);
  ASSERT_NE(grayhole, nullptr);
  EXPECT_EQ(grayhole->kind(), AdversaryKind::kGrayhole);
  EXPECT_EQ(grayhole->member_count(), 3u);

  spec.kind = AdversaryKind::kTrafficAnalysis;
  auto traffic = make_adversary(spec, ctx);
  ASSERT_NE(traffic, nullptr);
  EXPECT_EQ(traffic->kind(), AdversaryKind::kTrafficAnalysis);
  EXPECT_TRUE(traffic->inferred_endpoints(1).empty());  // saw nothing yet

  spec.kind = AdversaryKind::kRreqFlood;
  spec.count = 2;
  auto flood = make_adversary(spec, ctx);
  ASSERT_NE(flood, nullptr);
  EXPECT_EQ(flood->kind(), AdversaryKind::kRreqFlood);
  EXPECT_EQ(flood->member_count(), 2u);
  EXPECT_EQ(flood->injected_packets(), 0u);
}

TEST(ActiveAdversaryFactoryTest, NewKindNamesAreStable) {
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kWormhole), "wormhole");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kGrayhole), "grayhole");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kTrafficAnalysis),
               "traffic");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kRreqFlood), "rreq-flood");
}

}  // namespace
}  // namespace mts::security
