#include "security/eavesdropper.hpp"

#include <gtest/gtest.h>

namespace mts::security {
namespace {

phy::Frame data_frame(std::uint16_t flow, std::uint32_t seq) {
  phy::Frame f;
  f.type = phy::FrameType::kData;
  f.payload.mutable_common().kind = net::PacketKind::kTcpData;
  auto& th = f.payload.mutable_tcp();
  th.seq = seq;
  th.flow_id = flow;
  return f;
}

TEST(EavesdropperTest, CountsDistinctSegments) {
  Eavesdropper e(7);
  e.on_sniff(data_frame(1, 10));
  e.on_sniff(data_frame(1, 11));
  e.on_sniff(data_frame(1, 12));
  EXPECT_EQ(e.captured_segments(), 3u);
  EXPECT_EQ(e.frames_seen(), 3u);
  EXPECT_EQ(e.node(), 7u);
}

TEST(EavesdropperTest, RetransmissionsNotDoubleCounted) {
  Eavesdropper e(7);
  e.on_sniff(data_frame(1, 10));
  e.on_sniff(data_frame(1, 10));  // MAC retry or TCP retransmit
  EXPECT_EQ(e.captured_segments(), 1u);
  EXPECT_EQ(e.frames_seen(), 2u);
}

TEST(EavesdropperTest, FlowsAreDistinct) {
  Eavesdropper e(7);
  e.on_sniff(data_frame(1, 10));
  e.on_sniff(data_frame(2, 10));  // same seq, other flow
  EXPECT_EQ(e.captured_segments(), 2u);
}

TEST(EavesdropperTest, IgnoresAcksAndControl) {
  Eavesdropper e(7);
  phy::Frame ack = data_frame(1, 5);
  ack.payload.mutable_common().kind = net::PacketKind::kTcpAck;
  e.on_sniff(ack);
  phy::Frame ctl = data_frame(1, 6);
  ctl.payload.mutable_common().kind = net::PacketKind::kMtsCheck;
  e.on_sniff(ctl);
  phy::Frame no_payload;
  no_payload.type = phy::FrameType::kData;
  e.on_sniff(no_payload);
  EXPECT_EQ(e.captured_segments(), 0u);
}

TEST(EavesdropperTest, InterceptionRatioPerEquationOne) {
  Eavesdropper e(7);
  for (std::uint32_t s = 1; s <= 25; ++s) e.on_sniff(data_frame(1, s));
  EXPECT_DOUBLE_EQ(e.interception_ratio(100), 0.25);  // Pe/Pr
  EXPECT_DOUBLE_EQ(e.interception_ratio(0), 0.0);
}

}  // namespace
}  // namespace mts::security
