// Unit coverage for the countermeasure subsystem: the acked-checking
// delivery estimator, the geometric wormhole leash, the per-origin
// flood token bucket, suite aggregation, and the factory.  Everything
// here is pure model logic — the integration suite drives the wired
// scenarios.
#include <gtest/gtest.h>

#include "security/defense/defense.hpp"
#include "sim/error.hpp"

namespace mts::security {
namespace {

DefenseSpec acked_spec() {
  DefenseSpec s;
  s.kind = DefenseKind::kAckedChecking;
  s.probe_period = sim::Time::ms(400);
  s.ewma_alpha = 0.5;
  s.demote_threshold = 0.35;
  s.min_probes = 3;
  return s;
}

// --- acked-checking estimator ----------------------------------------------

TEST(AckedCheckingTest, ConsecutiveMissesDemoteAfterMinProbes) {
  AckedCheckingDefense d(acked_spec());
  const net::NodeId self = 0, dst = 9;
  // Each send after an unacked send counts the previous probe as lost.
  d.on_probe_sent(self, dst, 0, sim::Time::ms(400));   // probe 1
  EXPECT_FALSE(d.path_suspect(self, dst, 0, sim::Time::ms(400)));
  d.on_probe_sent(self, dst, 0, sim::Time::ms(800));   // miss 1 -> 0.5
  EXPECT_FALSE(d.path_suspect(self, dst, 0, sim::Time::ms(800)))
      << "min_probes not reached yet";
  d.on_probe_sent(self, dst, 0, sim::Time::ms(1200));  // miss 2 -> 0.25
  EXPECT_TRUE(d.path_suspect(self, dst, 0, sim::Time::ms(1200)))
      << "3 probes sent, EWMA 0.25 < 0.35";
  EXPECT_EQ(d.probes_sent(), 3u);
  EXPECT_EQ(d.probe_echoes(), 0u);
}

TEST(AckedCheckingTest, EchoedProbesKeepThePathHealthy) {
  AckedCheckingDefense d(acked_spec());
  const net::NodeId self = 0, dst = 9;
  for (int i = 0; i < 20; ++i) {
    const sim::Time t = sim::Time::ms(400 * (i + 1));
    d.on_probe_sent(self, dst, 0, t);
    d.on_probe_echo(self, dst, 0, t + sim::Time::ms(10));
    EXPECT_FALSE(d.path_suspect(self, dst, 0, t));
  }
  EXPECT_DOUBLE_EQ(d.ewma(0, 9, 0), 1.0) << "all-echoed path stays at 1.0";
  EXPECT_EQ(d.probe_echoes(), 20u);
  EXPECT_EQ(d.paths_quarantined(), 0u);
  EXPECT_TRUE(d.detection_time().is_zero());
}

TEST(AckedCheckingTest, SingleLossRecoversWithoutDemotion) {
  AckedCheckingDefense d(acked_spec());
  const net::NodeId self = 0, dst = 9;
  sim::Time t = sim::Time::ms(400);
  // Healthy, one loss, healthy again: EWMA dips to 0.5 and climbs back.
  d.on_probe_sent(self, dst, 0, t);
  d.on_probe_echo(self, dst, 0, t);
  t += sim::Time::ms(400);
  d.on_probe_sent(self, dst, 0, t);  // this one will be lost
  t += sim::Time::ms(400);
  d.on_probe_sent(self, dst, 0, t);  // accounts the loss: 1.0 -> 0.5
  d.on_probe_echo(self, dst, 0, t);  // 0.5 -> 0.75
  EXPECT_FALSE(d.path_suspect(self, dst, 0, t));
  EXPECT_DOUBLE_EQ(d.ewma(0, 9, 0), 0.75);
}

TEST(AckedCheckingTest, QuarantineRecordsDetectionTimeAndResetsState) {
  AckedCheckingDefense d(acked_spec());
  const net::NodeId self = 0, dst = 9;
  for (int i = 1; i <= 3; ++i) {
    d.on_probe_sent(self, dst, 0, sim::Time::ms(400 * i));
  }
  ASSERT_TRUE(d.path_suspect(self, dst, 0, sim::Time::ms(1200)));
  d.on_path_quarantined(self, dst, 0, sim::Time::ms(1200));
  EXPECT_EQ(d.paths_quarantined(), 1u);
  EXPECT_EQ(d.detection_time(), sim::Time::ms(1200));
  // The estimator for the id was erased: a fresh path wearing the same
  // id starts clean instead of being insta-demoted.
  EXPECT_FALSE(d.path_suspect(self, dst, 0, sim::Time::ms(1600)));
  EXPECT_DOUBLE_EQ(d.ewma(self, dst, 0), 1.0);
  // Detection time pins the *first* event.
  for (int i = 1; i <= 3; ++i) {
    d.on_probe_sent(self, dst, 1, sim::Time::sec(5) + sim::Time::ms(400 * i));
  }
  d.on_path_quarantined(self, dst, 1, sim::Time::sec(7));
  EXPECT_EQ(d.detection_time(), sim::Time::ms(1200));
  EXPECT_EQ(d.paths_quarantined(), 2u);
}

TEST(AckedCheckingTest, PathEstablishedResetsAStaleEstimator) {
  AckedCheckingDefense d(acked_spec());
  for (int i = 1; i <= 3; ++i) {
    d.on_probe_sent(0, 9, 2, sim::Time::ms(400 * i));
  }
  ASSERT_TRUE(d.path_suspect(0, 9, 2, sim::Time::ms(1200)));
  // A new discovery generation re-created path id 2.
  d.on_path_established(0, 9, 2);
  EXPECT_FALSE(d.path_suspect(0, 9, 2, sim::Time::ms(1300)));
}

TEST(AckedCheckingTest, PathsAreTrackedIndependently) {
  AckedCheckingDefense d(acked_spec());
  for (int i = 1; i <= 4; ++i) {
    const sim::Time t = sim::Time::ms(400 * i);
    d.on_probe_sent(0, 9, 0, t);  // path 0: never echoed
    d.on_probe_sent(0, 9, 1, t);  // path 1: always echoed
    d.on_probe_echo(0, 9, 1, t + sim::Time::ms(5));
  }
  EXPECT_TRUE(d.path_suspect(0, 9, 0, sim::Time::sec(2)));
  EXPECT_FALSE(d.path_suspect(0, 9, 1, sim::Time::sec(2)));
}

TEST(AckedCheckingTest, RejectsBadConfig) {
  DefenseSpec s = acked_spec();
  s.ewma_alpha = 0.0;
  EXPECT_THROW(AckedCheckingDefense{s}, sim::ConfigError);
  s = acked_spec();
  s.demote_threshold = 1.0;
  EXPECT_THROW(AckedCheckingDefense{s}, sim::ConfigError);
  s = acked_spec();
  s.probe_period = sim::Time::zero();
  EXPECT_THROW(AckedCheckingDefense{s}, sim::ConfigError);
}

// --- wormhole leash --------------------------------------------------------

/// Nodes on a 200 m-spaced line; radio range 250 m.
mobility::Vec2 line_pos(net::NodeId id, sim::Time) {
  return {static_cast<double>(id) * 200.0, 0.0};
}

TEST(WormholeLeashTest, FeasibleChainPasses) {
  WormholeLeashDefense d(250.0, 1.3, line_pos);
  net::RouteVec mid;
  mid.push_back(1);
  mid.push_back(2);
  EXPECT_TRUE(d.admit_path(0, 3, mid, sim::Time::sec(1)));
  EXPECT_EQ(d.paths_validated(), 1u);
  EXPECT_EQ(d.paths_quarantined(), 0u);
  EXPECT_TRUE(d.detection_time().is_zero());
}

TEST(WormholeLeashTest, PhantomHopIsQuarantined) {
  WormholeLeashDefense d(250.0, 1.3, line_pos);
  // Advertised walk 0 -> 1 -> 7 -> 8: the 1 -> 7 "hop" spans 1200 m — a
  // wormhole's tunnel crossing, infeasible for a 250 m radio.
  net::RouteVec mid;
  mid.push_back(1);
  mid.push_back(7);
  EXPECT_FALSE(d.admit_path(0, 8, mid, sim::Time::sec(2)));
  EXPECT_EQ(d.paths_quarantined(), 1u);
  EXPECT_EQ(d.detection_time(), sim::Time::sec(2));
}

TEST(WormholeLeashTest, EndpointHopsAreCheckedToo) {
  WormholeLeashDefense d(250.0, 1.3, line_pos);
  // Empty intermediate list: src -> dst direct, 1000 m apart.
  EXPECT_FALSE(d.admit_path(0, 5, {}, sim::Time::sec(1)));
  // Adjacent nodes (200 m < 1.3 x 250 m) pass.
  EXPECT_TRUE(d.admit_path(0, 1, {}, sim::Time::sec(1)));
}

TEST(WormholeLeashTest, SlackScalesTheBudget) {
  // With slack 4.0 even an 800 m hop is "feasible".
  WormholeLeashDefense d(250.0, 4.0, line_pos);
  EXPECT_TRUE(d.admit_path(0, 4, {}, sim::Time::sec(1)));
  EXPECT_THROW(WormholeLeashDefense(250.0, 0.9, line_pos), sim::ConfigError);
}

// --- flood rate limiter ----------------------------------------------------

TEST(FloodRateLimitTest, BurstThenSustainedRate) {
  FloodRateLimitDefense d(1.0, 3.0);
  const net::NodeId self = 5, origin = 2;
  // The bucket starts full: a genuine burst of 3 passes.
  EXPECT_TRUE(d.admit_rreq(self, origin, sim::Time::sec(1)));
  EXPECT_TRUE(d.admit_rreq(self, origin, sim::Time::sec(1)));
  EXPECT_TRUE(d.admit_rreq(self, origin, sim::Time::sec(1)));
  // The fourth in the same instant is refused.
  EXPECT_FALSE(d.admit_rreq(self, origin, sim::Time::sec(1)));
  EXPECT_EQ(d.flood_suppressed(), 1u);
  EXPECT_EQ(d.detection_time(), sim::Time::sec(1));
  // One second later exactly one token has refilled.
  EXPECT_TRUE(d.admit_rreq(self, origin, sim::Time::sec(2)));
  EXPECT_FALSE(d.admit_rreq(self, origin, sim::Time::sec(2)));
  EXPECT_EQ(d.rreqs_seen(), 6u);
}

TEST(FloodRateLimitTest, OriginsAndNodesAreIsolated) {
  FloodRateLimitDefense d(1.0, 1.0);
  // Draining origin 2's bucket at node 5 affects neither origin 3 at
  // node 5 nor origin 2 at node 6.
  EXPECT_TRUE(d.admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_FALSE(d.admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_TRUE(d.admit_rreq(5, 3, sim::Time::sec(1)));
  EXPECT_TRUE(d.admit_rreq(6, 2, sim::Time::sec(1)));
}

TEST(FloodRateLimitTest, SuppressionRatioApproachesExcessRate) {
  FloodRateLimitDefense d(1.0, 3.0);
  // A flooder at 5/s for 10 seconds: ~burst + rate*10 admitted of 50.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 50; ++i) {
    const sim::Time t = sim::Time::ms(1000 + i * 200);
    if (d.admit_rreq(7, 4, t)) ++admitted;
  }
  EXPECT_LE(admitted, 14u);
  EXPECT_GE(admitted, 12u);
  EXPECT_EQ(d.flood_suppressed() + admitted, 50u);
}

// --- suite + factory -------------------------------------------------------

TEST(DefenseSuiteTest, AggregatesMembersAndAndsVerdicts) {
  DefenseSpec s = acked_spec();
  s.kind = DefenseKind::kSuite;
  DefenseContext ctx;
  ctx.radio_range = 250.0;
  ctx.position_of = line_pos;
  auto d = make_defense(s, ctx);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind(), DefenseKind::kSuite);
  EXPECT_EQ(d->probe_period(), s.probe_period);

  // Leash member rejects the phantom hop...
  net::RouteVec phantom;
  phantom.push_back(7);
  EXPECT_FALSE(d->admit_path(0, 8, phantom, sim::Time::sec(1)));
  EXPECT_EQ(d->paths_quarantined(), 1u);
  // ...the bucket member rate-limits...
  EXPECT_TRUE(d->admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_TRUE(d->admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_TRUE(d->admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_FALSE(d->admit_rreq(5, 2, sim::Time::sec(1)));
  EXPECT_EQ(d->flood_suppressed(), 1u);
  // ...and the estimator member drives probe verdicts.
  for (int i = 1; i <= 3; ++i) {
    d->on_probe_sent(0, 9, 0, sim::Time::ms(400 * i));
  }
  EXPECT_TRUE(d->path_suspect(0, 9, 0, sim::Time::ms(1200)));
  EXPECT_EQ(d->probes_sent(), 3u);
  // Detection time aggregates to the earliest member event.
  EXPECT_EQ(d->detection_time(), sim::Time::sec(1));
}

TEST(DefenseFactoryTest, BuildsEachKindAndNoneIsNull) {
  DefenseContext ctx;
  ctx.radio_range = 250.0;
  ctx.position_of = line_pos;
  DefenseSpec s;
  EXPECT_EQ(make_defense(s, ctx), nullptr);
  s.kind = DefenseKind::kAckedChecking;
  EXPECT_EQ(make_defense(s, ctx)->kind(), DefenseKind::kAckedChecking);
  s.kind = DefenseKind::kWormholeLeash;
  EXPECT_EQ(make_defense(s, ctx)->kind(), DefenseKind::kWormholeLeash);
  s.kind = DefenseKind::kFloodRateLimit;
  EXPECT_EQ(make_defense(s, ctx)->kind(), DefenseKind::kFloodRateLimit);
  s.kind = DefenseKind::kSuite;
  EXPECT_EQ(make_defense(s, ctx)->kind(), DefenseKind::kSuite);
}

TEST(DefenseFactoryTest, KindNamesAreStable) {
  EXPECT_STREQ(defense_kind_name(DefenseKind::kNone), "none");
  EXPECT_STREQ(defense_kind_name(DefenseKind::kAckedChecking),
               "acked-checking");
  EXPECT_STREQ(defense_kind_name(DefenseKind::kWormholeLeash),
               "wormhole-leash");
  EXPECT_STREQ(defense_kind_name(DefenseKind::kFloodRateLimit),
               "flood-limit");
  EXPECT_STREQ(defense_kind_name(DefenseKind::kSuite), "suite");
}

}  // namespace
}  // namespace mts::security
