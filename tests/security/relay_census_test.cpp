#include "security/relay_census.hpp"

#include <gtest/gtest.h>

namespace mts::security {
namespace {

TEST(RelayCensusTest, PaperTableOneReproducesExactly) {
  // The paper's Table I: eight DSR participating nodes.  Published
  // results: alpha = 30486, standard deviation = 19.60 %.
  const std::vector<std::pair<net::NodeId, std::uint64_t>> betas = {
      {2, 10581}, {3, 283},   {17, 1}, {21, 3886},
      {23, 1},    {28, 15458}, {36, 275}, {45, 1}};
  const RelayReport r = analyze_relays(betas);
  EXPECT_EQ(r.alpha, 30486u);
  EXPECT_EQ(r.participating_nodes(), 8u);
  EXPECT_NEAR(r.normalized_stddev, 0.1960, 0.0001);
  EXPECT_EQ(r.max_beta, 15458u);
}

TEST(RelayCensusTest, PaperTableOneGammaColumn) {
  // Spot-check the published gamma percentages.
  const RelayReport r = analyze_relays({{2, 10581}, {28, 15458}, {21, 3886},
                                        {3, 283}, {36, 275}, {17, 1},
                                        {23, 1}, {45, 1}});
  const double alpha = static_cast<double>(r.alpha);
  EXPECT_NEAR(10581 / alpha, 0.3470, 0.0002);   // node 2: 34.70 %
  EXPECT_NEAR(15458 / alpha, 0.5070, 0.0002);   // node 28: 50.70 %
  EXPECT_NEAR(3886 / alpha, 0.1275, 0.0002);    // node 21: 12.75 %
  EXPECT_NEAR(283 / alpha, 0.0093, 0.0001);     // node 3: 0.93 %
}

TEST(RelayCensusTest, ZeroBetaNodesAreNotParticipants) {
  const RelayReport r =
      analyze_relays({{0, 0}, {1, 10}, {2, 0}, {3, 20}});
  EXPECT_EQ(r.participating_nodes(), 2u);
  EXPECT_EQ(r.alpha, 30u);
}

TEST(RelayCensusTest, EmptyCensus) {
  const RelayReport r = analyze_relays({});
  EXPECT_EQ(r.participating_nodes(), 0u);
  EXPECT_EQ(r.alpha, 0u);
  EXPECT_EQ(r.normalized_stddev, 0.0);
  EXPECT_EQ(r.max_beta, 0u);
  EXPECT_EQ(r.highest_interception_ratio(100), 0.0);
}

TEST(RelayCensusTest, SingleParticipantHasZeroStddev) {
  const RelayReport r = analyze_relays({{5, 42}});
  EXPECT_EQ(r.participating_nodes(), 1u);
  EXPECT_EQ(r.normalized_stddev, 0.0);
}

TEST(RelayCensusTest, PerfectlyBalancedRelaysHaveZeroStddev) {
  const RelayReport r =
      analyze_relays({{1, 100}, {2, 100}, {3, 100}, {4, 100}});
  EXPECT_NEAR(r.normalized_stddev, 0.0, 1e-12);
}

TEST(RelayCensusTest, ConcentrationRaisesStddev) {
  const RelayReport balanced =
      analyze_relays({{1, 100}, {2, 100}, {3, 100}, {4, 100}});
  const RelayReport skewed =
      analyze_relays({{1, 370}, {2, 10}, {3, 10}, {4, 10}});
  EXPECT_GT(skewed.normalized_stddev, balanced.normalized_stddev);
}

TEST(RelayCensusTest, StddevInvariantUnderScaling) {
  // The gammas are shares: doubling every beta must not change sigma.
  const RelayReport a = analyze_relays({{1, 10}, {2, 30}, {3, 60}});
  const RelayReport b = analyze_relays({{1, 20}, {2, 60}, {3, 120}});
  EXPECT_NEAR(a.normalized_stddev, b.normalized_stddev, 1e-12);
}

TEST(RelayCensusTest, HighestInterceptionRatio) {
  const RelayReport r = analyze_relays({{1, 500}, {2, 100}});
  EXPECT_DOUBLE_EQ(r.highest_interception_ratio(1000), 0.5);
  EXPECT_DOUBLE_EQ(r.highest_interception_ratio(0), 0.0);  // no deliveries
}

}  // namespace
}  // namespace mts::security
