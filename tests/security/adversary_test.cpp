#include "security/adversary.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mts::security {
namespace {

phy::Frame data_frame(std::uint16_t flow, std::uint32_t seq) {
  phy::Frame f;
  f.type = phy::FrameType::kData;
  f.payload.mutable_common().kind = net::PacketKind::kTcpData;
  f.payload.mutable_tcp() = net::TcpHeader{.seq = seq, .flow_id = flow, .ts = {}};
  return f;
}

net::Packet data_packet(net::NodeId src, net::NodeId dst, std::uint32_t seq) {
  net::Packet p;
  auto& common = p.mutable_common();
  common.kind = net::PacketKind::kTcpData;
  common.src = src;
  common.dst = dst;
  p.mutable_tcp() = net::TcpHeader{.seq = seq, .flow_id = 1, .ts = {}};
  return p;
}

// --- member resolution -----------------------------------------------------

TEST(ResolveMembersTest, CoalitionsOfIncreasingSizeAreNested) {
  AdversarySpec small;
  small.kind = AdversaryKind::kColluding;
  small.count = 2;
  AdversarySpec big = small;
  big.count = 5;
  const sim::Rng rng(42);
  const auto two = resolve_members(small, 20, {0, 19}, rng);
  const auto five = resolve_members(big, 20, {0, 19}, rng);
  ASSERT_EQ(two.size(), 2u);
  ASSERT_EQ(five.size(), 5u);
  // Prefix property: the size-2 coalition is the first 2 of the size-5.
  EXPECT_EQ(two[0], five[0]);
  EXPECT_EQ(two[1], five[1]);
}

TEST(ResolveMembersTest, ExcludedNodesNeverDrawn) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kColluding;
  spec.count = 8;
  const auto members = resolve_members(spec, 10, {0, 9}, sim::Rng(7));
  EXPECT_EQ(members.size(), 8u);
  for (net::NodeId m : members) {
    EXPECT_NE(m, 0u);
    EXPECT_NE(m, 9u);
  }
}

TEST(ResolveMembersTest, ExplicitMembersPassThrough) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kBlackhole;
  spec.members = {3, 5};
  const auto members = resolve_members(spec, 10, {}, sim::Rng(1));
  EXPECT_EQ(members, (std::vector<net::NodeId>{3, 5}));
}

TEST(ResolveMembersTest, CountClampedToPoolSize) {
  AdversarySpec spec;
  spec.kind = AdversaryKind::kColluding;
  spec.count = 100;
  const auto members = resolve_members(spec, 5, {0}, sim::Rng(1));
  EXPECT_EQ(members.size(), 4u);
}

// --- colluding coalition ---------------------------------------------------

class ColludingTest : public ::testing::Test {
 protected:
  /// Members 1 @ (0,0) and 2 @ (1000,0); sniff range 250.
  ColludingEavesdroppers make(std::vector<net::NodeId> members) {
    return ColludingEavesdroppers(
        std::move(members), 250.0, [this](net::NodeId id, sim::Time) {
          return positions_.at(id);
        });
  }
  std::map<net::NodeId, mobility::Vec2> positions_{
      {1, {0, 0}}, {2, {1000, 0}}};
};

TEST_F(ColludingTest, PoolsSegmentsAcrossMembers) {
  auto coalition = make({1, 2});
  // Segment 10 radiated near member 1 only; segment 20 near member 2.
  coalition.on_transmission({5, {100, 0}, {}, sim::Time::sec(1)}, data_frame(1, 10));
  coalition.on_transmission({6, {900, 0}, {}, sim::Time::sec(2)}, data_frame(1, 20));
  EXPECT_EQ(coalition.captured_segments(), 2u);
  EXPECT_EQ(coalition.frames_seen_by(1), 1u);
  EXPECT_EQ(coalition.frames_seen_by(2), 1u);
}

TEST_F(ColludingTest, OutOfRangeTransmissionsAreMissed) {
  auto coalition = make({1});
  coalition.on_transmission({5, {500, 0}, {}, sim::Time::sec(1)}, data_frame(1, 10));
  EXPECT_EQ(coalition.captured_segments(), 0u);
}

TEST_F(ColludingTest, LargerCoalitionCapturesSupersetByConstruction) {
  auto solo = make({1});
  auto pair = make({1, 2});
  const std::vector<std::pair<mobility::Vec2, std::uint32_t>> txs{
      {{100, 0}, 1}, {{900, 0}, 2}, {{500, 0}, 3}, {{50, 0}, 4}};
  for (const auto& [pos, seq] : txs) {
    solo.on_transmission({9, pos, {}, sim::Time::sec(1)}, data_frame(1, seq));
    pair.on_transmission({9, pos, {}, sim::Time::sec(1)}, data_frame(1, seq));
  }
  EXPECT_GE(pair.captured_segments(), solo.captured_segments());
  EXPECT_EQ(solo.captured_segments(), 2u);  // seq 1 and 4 near member 1
  EXPECT_EQ(pair.captured_segments(), 3u);  // + seq 2 near member 2
}

TEST_F(ColludingTest, RetransmissionsNotDoubleCounted) {
  auto coalition = make({1, 2});
  coalition.on_transmission({5, {100, 0}, {}, sim::Time::sec(1)}, data_frame(1, 10));
  coalition.on_transmission({5, {100, 0}, {}, sim::Time::sec(2)}, data_frame(1, 10));
  // Both members overhearing the same segment still pools to one.
  coalition.on_transmission({5, {100, 0}, {}, sim::Time::sec(3)}, data_frame(1, 10));
  EXPECT_EQ(coalition.captured_segments(), 1u);
}

TEST_F(ColludingTest, OwnTransmissionsAndControlIgnored) {
  auto coalition = make({1});
  // Member 1 itself is the transmitter: forwarding is not overhearing.
  coalition.on_transmission({1, {0, 0}, {}, sim::Time::sec(1)}, data_frame(1, 10));
  phy::Frame ack = data_frame(1, 11);
  ack.payload.mutable_common().kind = net::PacketKind::kTcpAck;
  coalition.on_transmission({5, {10, 0}, {}, sim::Time::sec(1)}, ack);
  phy::Frame bare;
  coalition.on_transmission({5, {10, 0}, {}, sim::Time::sec(1)}, bare);
  EXPECT_EQ(coalition.captured_segments(), 0u);
}

TEST_F(ColludingTest, InterceptionAndFragmentMetrics) {
  auto coalition = make({1});
  for (std::uint32_t s = 1; s <= 5; ++s) {
    coalition.on_transmission({9, {0, 0}, {}, sim::Time::sec(1)}, data_frame(1, s));
  }
  EXPECT_DOUBLE_EQ(coalition.interception_ratio(20), 0.25);
  EXPECT_EQ(coalition.fragments_missing(20), 15u);
  EXPECT_EQ(coalition.fragments_missing(3), 0u);  // captured >= delivered
  EXPECT_DOUBLE_EQ(coalition.interception_ratio(0), 0.0);
}

// --- mobile eavesdroppers --------------------------------------------------

TEST(MobileEavesdropperTest, StaysInsideTheArena) {
  const mobility::Field field{1000.0, 800.0};
  AdversarySpec spec;
  spec.kind = AdversaryKind::kMobile;
  spec.max_speed = 20.0;
  MobileEavesdroppers eve(3, field, spec, 250.0, sim::Rng(99));
  ASSERT_EQ(eve.member_count(), 3u);
  for (std::size_t m = 0; m < eve.member_count(); ++m) {
    for (int t = 0; t <= 300; ++t) {
      const mobility::Vec2 p = eve.position_of_member(m, sim::Time::sec(t));
      EXPECT_TRUE(field.contains(p))
          << "member " << m << " left the arena at t=" << t << ": " << p;
    }
  }
}

TEST(MobileEavesdropperTest, CapturesOnlyWithinRange) {
  const mobility::Field field{100.0, 100.0};
  AdversarySpec spec;
  spec.kind = AdversaryKind::kMobile;
  MobileEavesdroppers eve(1, field, spec, 250.0, sim::Rng(5));
  const sim::Time t = sim::Time::sec(1);
  const mobility::Vec2 at = eve.position_of_member(0, t);
  // Radiated right on top of the sniffer: captured.
  eve.on_transmission({7, at, {}, t}, data_frame(1, 1));
  // Radiated 10 km away: missed.
  eve.on_transmission({7, {at.x + 10000.0, at.y}, {}, t}, data_frame(1, 2));
  EXPECT_EQ(eve.captured_segments(), 1u);
}

// --- blackhole -------------------------------------------------------------

TEST(BlackholeTest, AbsorbsOnlyTransitDataAtMembers) {
  BlackholeAttacker bh({3});
  EXPECT_TRUE(bh.absorbs(3, data_packet(0, 9, 1), sim::Time::zero()));   // transit data
  EXPECT_FALSE(bh.absorbs(4, data_packet(0, 9, 1), sim::Time::zero()));  // not a member
  EXPECT_FALSE(bh.absorbs(3, data_packet(0, 3, 1), sim::Time::zero()));  // terminates here
  net::Packet ctrl;
  ctrl.mutable_common().kind = net::PacketKind::kAodvRreq;
  EXPECT_FALSE(bh.absorbs(3, ctrl, sim::Time::zero()));  // control passes: stay attractive
  net::Packet ack = data_packet(9, 0, 1);
  ack.mutable_common().kind = net::PacketKind::kTcpAck;
  EXPECT_FALSE(bh.absorbs(3, ack, sim::Time::zero()));  // data only
}

TEST(BlackholeTest, CountsAndReadsWhatItEats) {
  BlackholeAttacker bh({3, 5});
  bh.on_absorb(3, data_packet(0, 9, 1));
  bh.on_absorb(3, data_packet(0, 9, 1));  // TCP retransmit of seq 1
  bh.on_absorb(5, data_packet(0, 9, 2));
  EXPECT_EQ(bh.absorbed_packets(), 3u);
  EXPECT_EQ(bh.absorbed_by(3), 2u);
  EXPECT_EQ(bh.absorbed_by(5), 1u);
  EXPECT_EQ(bh.absorbed_by(7), 0u);
  EXPECT_EQ(bh.captured_segments(), 2u);  // distinct segments, not frames
}

// --- factory ---------------------------------------------------------------

TEST(AdversaryFactoryTest, NoneYieldsNull) {
  EXPECT_EQ(make_adversary(AdversarySpec{}, AdversaryContext{}), nullptr);
}

TEST(AdversaryFactoryTest, BuildsEachKind) {
  AdversaryContext ctx;
  ctx.node_count = 20;
  ctx.radio_range = 250.0;
  ctx.position_of = [](net::NodeId, sim::Time) { return mobility::Vec2{}; };
  ctx.rng = sim::Rng(3);

  AdversarySpec spec;
  spec.kind = AdversaryKind::kColluding;
  spec.count = 4;
  auto colluding = make_adversary(spec, ctx);
  ASSERT_NE(colluding, nullptr);
  EXPECT_EQ(colluding->kind(), AdversaryKind::kColluding);
  EXPECT_EQ(colluding->member_count(), 4u);

  spec.kind = AdversaryKind::kMobile;
  spec.count = 2;
  auto mobile = make_adversary(spec, ctx);
  ASSERT_NE(mobile, nullptr);
  EXPECT_EQ(mobile->kind(), AdversaryKind::kMobile);
  EXPECT_EQ(mobile->member_count(), 2u);

  spec.kind = AdversaryKind::kBlackhole;
  spec.count = 1;
  auto blackhole = make_adversary(spec, ctx);
  ASSERT_NE(blackhole, nullptr);
  EXPECT_EQ(blackhole->kind(), AdversaryKind::kBlackhole);
  EXPECT_EQ(blackhole->member_count(), 1u);
  EXPECT_TRUE(blackhole->absorbs(blackhole->members()[0],
                                 data_packet(0, 19, 1), sim::Time::zero()));
}

TEST(AdversaryFactoryTest, KindNamesAreStable) {
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kNone), "none");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kColluding), "colluding");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kMobile), "mobile");
  EXPECT_STREQ(adversary_kind_name(AdversaryKind::kBlackhole), "blackhole");
}

}  // namespace
}  // namespace mts::security
