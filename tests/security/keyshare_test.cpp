// The secrecy game's machinery: GF(2^8) arithmetic, Shamir threshold
// splitting/reconstruction, deterministic payload materialization, and
// the capture pool that parses key shares back out of real wire bytes.
#include "security/keyshare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/wire.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace mts::security {
namespace {

// ---------------------------------------------------------------------------
// GF(2^8).
// ---------------------------------------------------------------------------

TEST(Gf256Test, MultiplicationBasics) {
  EXPECT_EQ(gf256::mul(0, 17), 0);
  EXPECT_EQ(gf256::mul(17, 0), 0);
  EXPECT_EQ(gf256::mul(1, 17), 17);
  EXPECT_EQ(gf256::mul(17, 1), 17);
  // AES-polynomial sanity pin: x * x = x^2 (0x02 * 0x02 = 0x04), and a
  // reduction case, 0x80 * 0x02 = 0x1B.
  EXPECT_EQ(gf256::mul(0x02, 0x02), 0x04);
  EXPECT_EQ(gf256::mul(0x80, 0x02), 0x1B);
}

TEST(Gf256Test, MultiplicationIsCommutative) {
  sim::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a <= 255; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << "a = " << a;
  }
  EXPECT_THROW((void)gf256::inv(0), sim::SimError);
}

// ---------------------------------------------------------------------------
// Shamir split / reconstruct.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> random_secret(sim::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> s(len);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return s;
}

TEST(ShamirTest, AnyThresholdSubsetReconstructs) {
  sim::Rng rng(7);
  const auto secret = random_secret(rng, 16);
  const auto shares = shamir_split(secret, 5, 3, rng);
  ASSERT_EQ(shares.size(), 5u);
  // Every 3-subset of the 5 shares recovers the secret.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      for (std::size_t k = j + 1; k < 5; ++k) {
        const std::vector<Share> subset{shares[i], shares[j], shares[k]};
        const auto got = shamir_reconstruct(subset, 3);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, secret) << i << "," << j << "," << k;
      }
    }
  }
}

TEST(ShamirTest, FewerThanThresholdSharesIsNoReconstruction) {
  sim::Rng rng(8);
  const auto secret = random_secret(rng, 16);
  const auto shares = shamir_split(secret, 4, 3, rng);
  const std::vector<Share> two{shares[0], shares[1]};
  EXPECT_FALSE(shamir_reconstruct(two, 3).has_value());
  EXPECT_FALSE(shamir_reconstruct({}, 3).has_value());
  EXPECT_FALSE(shamir_reconstruct(two, 0).has_value());
}

TEST(ShamirTest, BelowThresholdSharesDetermineNothing) {
  // Information-theoretic check: two (t-1)-share prefixes from splits of
  // DIFFERENT secrets can coexist with any secret, so reconstruction
  // treating t-1 shares as a full set (t' = t-1) must not recover the
  // real one except by astronomical accident.
  sim::Rng rng(9);
  const auto secret = random_secret(rng, 16);
  const auto shares = shamir_split(secret, 5, 3, rng);
  const std::vector<Share> two{shares[0], shares[1]};
  const auto wrong = shamir_reconstruct(two, 2);  // pretend t = 2
  ASSERT_TRUE(wrong.has_value());
  EXPECT_NE(*wrong, secret);
}

TEST(ShamirTest, DegenerateAndInvalidInputs) {
  sim::Rng rng(10);
  const auto secret = random_secret(rng, 8);
  // n = t = 1: the share IS the secret's evaluation; round-trips.
  const auto solo = shamir_split(secret, 1, 1, rng);
  ASSERT_EQ(solo.size(), 1u);
  const auto got = shamir_reconstruct(solo, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, secret);

  // Duplicate evaluation points are rejected.
  const auto shares = shamir_split(secret, 3, 2, rng);
  const std::vector<Share> dup{shares[0], shares[0]};
  EXPECT_FALSE(shamir_reconstruct(dup, 2).has_value());

  // Mismatched share lengths are rejected.
  std::vector<Share> ragged{shares[0], shares[1]};
  ragged[1].bytes.pop_back();
  EXPECT_FALSE(shamir_reconstruct(ragged, 2).has_value());

  // x = 0 would be the secret itself; rejected.
  std::vector<Share> zeroed{shares[0], shares[1]};
  zeroed[1].x = 0;
  EXPECT_FALSE(shamir_reconstruct(zeroed, 2).has_value());

  // Invalid split parameters trip.
  EXPECT_THROW((void)shamir_split(secret, 2, 3, rng), sim::SimError);
  EXPECT_THROW((void)shamir_split(secret, 0, 0, rng), sim::SimError);
}

TEST(ShamirTest, CorruptedShareYieldsTheWrongSecret) {
  sim::Rng rng(11);
  const auto secret = random_secret(rng, 16);
  auto shares = shamir_split(secret, 3, 3, rng);
  shares[1].bytes[0] ^= 0x55;
  const auto got = shamir_reconstruct(shares, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(*got, secret);
}

// ---------------------------------------------------------------------------
// SecrecyPlane + KeyRecoveryPool, end to end over real wire bytes.
// ---------------------------------------------------------------------------

net::Packet data_segment(std::uint16_t flow, std::uint32_t seq,
                         std::uint16_t path_id, std::uint32_t payload_bytes) {
  net::Packet p;
  auto& c = p.mutable_common();
  c.kind = net::PacketKind::kTcpData;
  c.src = 1;
  c.dst = 2;
  c.payload_bytes = payload_bytes;
  auto& t = p.mutable_tcp();
  t.flow_id = flow;
  t.seq = seq;
  p.mutable_routing() = net::MtsDataTag{path_id};
  return p;
}

TEST(SecrecyPlaneTest, PayloadMaterializationIsDeterministic) {
  SecrecySpec spec;
  spec.enabled = true;
  spec.key_bytes = 16;
  SecrecyPlane plane(spec, sim::Rng(99));
  plane.register_flow(1, 5);

  const auto a = plane.materialize_payload(1, 7, 2, 512);
  const auto b = plane.materialize_payload(1, 7, 2, 512);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, *b);  // pure function of (flow, seq, share, size)
  EXPECT_EQ(a->size(), 512u);

  // Share trailer up front: magic, x, length, share bytes.
  EXPECT_EQ((*a)[0], kShareMagic0);
  EXPECT_EQ((*a)[1], kShareMagic1);
  EXPECT_EQ((*a)[2], 3);  // share index 2 -> x = 3
  EXPECT_EQ((*a)[3], 16);

  // A different seq re-keys the masked fragment but not the share.
  const auto c = plane.materialize_payload(1, 8, 2, 512);
  EXPECT_TRUE(std::equal(a->begin(), a->begin() + 20, c->begin()));
  EXPECT_NE(*a, *c);

  // Segments too small for the trailer carry only masked bytes.
  const auto tiny = plane.materialize_payload(1, 7, 2, 8);
  EXPECT_EQ(tiny->size(), 8u);
  EXPECT_NE((*tiny)[0], kShareMagic0);  // keystream, not the trailer
}

TEST(SecrecyPlaneTest, WireImageCachesOnThePacketBody) {
  SecrecySpec spec;
  spec.enabled = true;
  SecrecyPlane plane(spec, sim::Rng(5));
  plane.register_flow(3, 5);

  net::Packet p = data_segment(3, 1, 2, 256);
  EXPECT_EQ(p.wire_payload(), nullptr);
  std::vector<std::uint8_t> img1;
  ASSERT_TRUE(plane.wire_image(p, img1));
  ASSERT_NE(p.wire_payload(), nullptr);
  const auto cached = p.wire_payload();

  // A second tap of the same frame reuses the cached payload.
  std::vector<std::uint8_t> img2;
  const auto hits_before = net::packet_pool_stats().wire_cache_hits;
  ASSERT_TRUE(plane.wire_image(p, img2));
  EXPECT_EQ(net::packet_pool_stats().wire_cache_hits, hits_before + 1);
  EXPECT_EQ(p.wire_payload(), cached);
  EXPECT_EQ(img1, img2);

  // Per-hop cell writes leave the body alone: the cached image survives
  // a forwarding hop (the payload bytes on the air are unchanged).
  p.mutable_hop().ttl -= 1;
  p.mutable_hop().cursor += 1;
  EXPECT_EQ(p.wire_payload(), cached);

  // A body write still invalidates: the frame on the air changed.
  p.mutable_common().payload_bytes -= 1;
  EXPECT_EQ(p.wire_payload(), nullptr);

  // Non-game packets are not imaged.
  net::Packet ack;
  ack.mutable_common().kind = net::PacketKind::kTcpAck;
  ack.mutable_tcp().flow_id = 3;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(plane.wire_image(ack, out));
  net::Packet foreign = data_segment(42, 1, 0, 256);  // unregistered flow
  EXPECT_FALSE(plane.wire_image(foreign, out));
}

TEST(SecrecyGameTest, CoalitionRecoversTheKeyOnlyWithThresholdShares) {
  SecrecySpec spec;
  spec.enabled = true;
  spec.key_bytes = 16;
  spec.threshold = 0;  // t = n: miss one path, learn nothing
  SecrecyPlane plane(spec, sim::Rng(77));
  plane.register_flow(1, 3);
  ASSERT_EQ(plane.shares_per_flow(), 3u);
  ASSERT_EQ(plane.threshold_per_flow(), 3u);

  KeyRecoveryPool pool;
  std::vector<std::uint8_t> img;
  // Capture segments riding paths 0 and 1: two distinct shares.
  for (std::uint16_t path = 0; path < 2; ++path) {
    net::Packet p = data_segment(1, path, path, 512);
    img.clear();
    ASSERT_TRUE(plane.wire_image(p, img));
    pool.capture(img.data(), img.size());
  }
  EXPECT_EQ(pool.images_parsed(), 2u);
  EXPECT_EQ(pool.shares_captured(), 2u);
  {
    const auto s = plane.score(pool);
    EXPECT_EQ(s.flows, 1u);
    EXPECT_EQ(s.shares_captured, 2u);
    EXPECT_EQ(s.keys_recovered, 0u);
    EXPECT_EQ(s.recovery_rate, 0.0);
  }

  // Re-capturing the same path adds no share (retransmission on the
  // same path tells the coalition nothing new).
  {
    net::Packet p = data_segment(1, 99, 1, 512);
    img.clear();
    ASSERT_TRUE(plane.wire_image(p, img));
    pool.capture(img.data(), img.size());
    EXPECT_EQ(pool.shares_captured(), 2u);
  }

  // The third path's share completes the threshold.
  {
    net::Packet p = data_segment(1, 5, 2, 512);
    img.clear();
    ASSERT_TRUE(plane.wire_image(p, img));
    pool.capture(img.data(), img.size());
  }
  const auto s = plane.score(pool);
  EXPECT_EQ(s.shares_captured, 3u);
  EXPECT_EQ(s.keys_recovered, 1u);
  EXPECT_DOUBLE_EQ(s.recovery_rate, 1.0);
}

TEST(SecrecyGameTest, PartialThresholdLetsASmallerCoalitionWin) {
  SecrecySpec spec;
  spec.enabled = true;
  spec.threshold = 2;  // 2-of-5
  SecrecyPlane plane(spec, sim::Rng(13));
  plane.register_flow(9, 5);
  ASSERT_EQ(plane.threshold_per_flow(), 2u);

  KeyRecoveryPool pool;
  std::vector<std::uint8_t> img;
  for (std::uint16_t path = 0; path < 2; ++path) {
    net::Packet p = data_segment(9, path, path, 512);
    img.clear();
    ASSERT_TRUE(plane.wire_image(p, img));
    pool.capture(img.data(), img.size());
  }
  const auto s = plane.score(pool);
  EXPECT_EQ(s.keys_recovered, 1u);
}

TEST(SecrecyGameTest, PoolTrustsBytesNotStructs) {
  SecrecySpec spec;
  spec.enabled = true;
  SecrecyPlane plane(spec, sim::Rng(21));
  plane.register_flow(4, 2);

  KeyRecoveryPool pool;
  // Garbage is a parse failure, not a crash.
  const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef};
  pool.capture(junk, sizeof junk);
  EXPECT_EQ(pool.parse_failures(), 1u);
  EXPECT_EQ(pool.images_parsed(), 0u);

  // A valid wire image whose payload got flipped mid-air still parses,
  // but a corrupted share byte yields the wrong key at score time.
  net::Packet p0 = data_segment(4, 0, 0, 512);
  net::Packet p1 = data_segment(4, 1, 1, 512);
  std::vector<std::uint8_t> img0;
  std::vector<std::uint8_t> img1;
  ASSERT_TRUE(plane.wire_image(p0, img0));
  ASSERT_TRUE(plane.wire_image(p1, img1));
  const auto d = net::wire::decode_packet(img1);
  ASSERT_TRUE(d.has_value());
  img1[d->payload_offset + kShareTrailerFixed] ^= 0xFF;  // corrupt the share
  pool.capture(img0.data(), img0.size());
  pool.capture(img1.data(), img1.size());
  EXPECT_EQ(pool.shares_captured(), 2u);
  const auto s = plane.score(pool);
  EXPECT_EQ(s.keys_recovered, 0u);  // reconstruction != the true key

  // Segments too small for a trailer parse fine and add no share.
  net::Packet small = data_segment(4, 2, 1, 8);
  std::vector<std::uint8_t> img2;
  ASSERT_TRUE(plane.wire_image(small, img2));
  pool.capture(img2.data(), img2.size());
  EXPECT_EQ(pool.shares_captured(), 2u);
}

TEST(SecrecyPlaneTest, RegistrationInvariants) {
  SecrecySpec spec;
  spec.enabled = true;
  SecrecyPlane plane(spec, sim::Rng(1));
  plane.register_flow(1, 5);
  EXPECT_THROW(plane.register_flow(1, 5), sim::SimError);  // twice
  EXPECT_EQ(plane.flow_count(), 1u);
  ASSERT_NE(plane.true_key(1), nullptr);
  EXPECT_EQ(plane.true_key(1)->size(), 16u);
  EXPECT_EQ(plane.true_key(2), nullptr);

  SecrecySpec bad;
  bad.key_bytes = 0;
  EXPECT_THROW(SecrecyPlane(bad, sim::Rng(1)), sim::SimError);
}

}  // namespace
}  // namespace mts::security
