#include "core/mts.hpp"

#include <gtest/gtest.h>

#include "../routing/routing_fixture.hpp"

namespace mts::core {
namespace {

using testing_bench = mts::testing::RoutingBench;
using mts::testing::chain;
using Proto = testing_bench::Proto;

/// A diamond: two node-disjoint 2-hop routes S(0) - {1 | 2} - D(3).
std::vector<mobility::Vec2> diamond() {
  return {{0, 0}, {200, 150}, {200, -150}, {400, 0}};
}

TEST(MtsTest, DiscoversAndDeliversOnChain) {
  testing_bench b(Proto::kMts, chain(4));
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(3).delivered.size(), 1u);
  EXPECT_EQ(b.node(3).delivered[0].common().src, 0u);
}

TEST(MtsTest, DataCarriesPathTag) {
  testing_bench b(Proto::kMts, chain(3));
  b.send_data(0, 2);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(2).delivered.size(), 1u);
  EXPECT_NE(std::get_if<net::MtsDataTag>(&b.node(2).delivered[0].routing()),
            nullptr);
}

TEST(MtsTest, DestinationStoresDisjointPathsOnDiamond) {
  testing_bench b(Proto::kMts, diamond());
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  auto paths = b.protocol<Mts>(3)->stored_paths_for(0);
  ASSERT_EQ(paths.size(), 2u);
  // The two stored paths run through 1 and 2 respectively.
  EXPECT_TRUE(core::node_disjoint(paths[0], paths[1]));
}

TEST(MtsTest, DestinationRespectsMaxPathsCap) {
  MtsConfig cfg;
  cfg.max_paths = 1;
  testing_bench b(Proto::kMts, diamond(), {}, {}, cfg);
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  EXPECT_EQ(b.protocol<Mts>(3)->stored_paths_for(0).size(), 1u);
}

TEST(MtsTest, NonDisjointAlternateRejected) {
  // Fig. 3 topology: S-a-b-D plus an extra node c adjacent to both b
  // and D gives the non-disjoint S-a-b-c-D.
  std::vector<mobility::Vec2> fig3{
      {0, 0},      // S = 0
      {200, 0},    // a = 1
      {400, 0},    // b = 2
      {450, 150},  // c = 3 (in range of b and D)
      {600, 0},    // D = 4
  };
  testing_bench b(Proto::kMts, fig3);
  b.send_data(0, 4);
  b.sched.run_until(sim::Time::sec(2));
  auto paths = b.protocol<Mts>(4)->stored_paths_for(0);
  ASSERT_EQ(paths.size(), 1u);  // the S-a-b-c-D copy was rejected
  EXPECT_EQ(paths[0], (PathNodes{1, 2}));
}

TEST(MtsTest, ChecksFlowPeriodicaly) {
  MtsConfig cfg;
  cfg.check_period = sim::Time::ms(500);
  testing_bench b(Proto::kMts, diamond(), {}, {}, cfg);
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(5));
  auto* dest = b.protocol<Mts>(3);
  auto* src = b.protocol<Mts>(0);
  EXPECT_GE(dest->checks_sent(), 8u);   // ~9 rounds x 2 paths, some loss ok
  EXPECT_GE(src->checks_received(), 4u);
}

TEST(MtsTest, SourceHoldsCurrentPathAndSwitchesOnChecks) {
  MtsConfig cfg;
  cfg.check_period = sim::Time::ms(300);
  testing_bench b(Proto::kMts, diamond(), {}, {}, cfg);
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(10));
  auto* src = b.protocol<Mts>(0);
  EXPECT_GE(src->current_path_id(3), 0);
  // With randomized check emission, both diamond paths win some rounds.
  EXPECT_GE(src->route_switches(), 1u);
}

TEST(MtsTest, SpreadsDataAcrossBothDiamondRelays) {
  MtsConfig cfg;
  cfg.check_period = sim::Time::ms(300);
  testing_bench b(Proto::kMts, diamond(), {}, {}, cfg);
  // A steady packet stream across many check rounds.
  for (int t = 0; t < 100; ++t) {
    b.sched.schedule_at(sim::Time::ms(50 * t) + sim::Time::ms(1),
                        [&b] { b.send_data(0, 3); });
  }
  b.sched.run_until(sim::Time::sec(8));
  EXPECT_GT(b.node(1).counters.forwarded_data, 0u);
  EXPECT_GT(b.node(2).counters.forwarded_data, 0u);
  EXPECT_GE(b.node(3).delivered.size(), 95u);
}

TEST(MtsTest, AcksRouteBackAlongDataPath) {
  MtsConfig cfg;
  cfg.check_period = sim::Time::sec(100);  // quiesce checks: floods only
  testing_bench b(Proto::kMts, chain(4), {}, {}, cfg);
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(3).delivered.size(), 1u);
  // The sink replies (simulating a TCP ack) without any discovery.
  const auto floods_before = b.node(3).counters.sent_control;
  net::Packet ack;
  auto& common = ack.mutable_common();
  common.kind = net::PacketKind::kTcpAck;
  common.src = 3;
  common.dst = 0;
  common.uid = b.uids.next();
  net::TcpHeader ackh;
  ackh.ack = 2;
  ackh.flow_id = 1;
  ack.mutable_tcp() = ackh;
  b.node(3).routing->send_from_transport(std::move(ack));
  b.sched.run_until(sim::Time::sec(3));
  ASSERT_EQ(b.node(0).delivered.size(), 1u);
  EXPECT_EQ(b.node(0).delivered[0].common().kind, net::PacketKind::kTcpAck);
  EXPECT_EQ(b.node(3).counters.sent_control, floods_before);  // no flood
}

TEST(MtsTest, NewDiscoveryFlushesStoredPaths) {
  MtsConfig cfg;
  cfg.freshness_periods = 1.01;      // paths go stale quickly
  cfg.check_period = sim::Time::sec(100);  // no checks to refresh them
  testing_bench b(Proto::kMts, diamond(), {}, {}, cfg);
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  const auto first_gen = b.protocol<Mts>(3)->stored_paths_for(0);
  ASSERT_GE(first_gen.size(), 1u);
  // Wait past freshness: the next send triggers a fresh discovery whose
  // higher broadcast id flushes and repopulates the destination store.
  b.sched.run_until(sim::Time::sec(150));
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(152));
  EXPECT_EQ(b.node(3).delivered.size(), 2u);
  EXPECT_GE(b.protocol<Mts>(3)->stored_paths_for(0).size(), 1u);
}

TEST(MtsTest, UnreachableDestinationGivesUp) {
  MtsConfig cfg;
  cfg.rrep_wait = sim::Time::ms(100);
  testing_bench b(Proto::kMts, {{0, 0}, {200, 0}, {5000, 0}}, {}, {}, cfg);
  b.send_data(0, 2);
  b.sched.run_until(sim::Time::sec(5));
  EXPECT_TRUE(b.node(2).delivered.empty());
  EXPECT_GT(b.node(0).counters.dropped(net::DropReason::kNoRoute), 0u);
}

TEST(MtsTest, IntermediateRelaysEvenWithOwnFreshRoute) {
  // §III-B: intermediates always relay the RREQ; on a chain the flood
  // must reach the destination even though node 1 has routes already.
  testing_bench b(Proto::kMts, chain(4));
  b.send_data(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(3).delivered.size(), 1u);
  // Re-discover: node 1 relays again (forwarded_control grows).
  const auto fwd_before = b.node(1).counters.forwarded_control;
  b.send_data(1, 3);  // unrelated discovery by node 1 itself is fine too
  b.sched.run_until(sim::Time::sec(4));
  EXPECT_GE(b.node(1).counters.forwarded_control, fwd_before);
}

TEST(MtsTest, ConfigValidation) {
  MtsConfig bad;
  bad.max_paths = 0;
  sim::Scheduler sched;
  net::Counters c;
  net::UidSource uids;
  phy::Radio radio(sched, 0, &c);
  mac::Mac80211 mac(sched, radio, {}, sim::Rng(1), &c);
  routing::RoutingContext ctx;
  ctx.self = 0;
  ctx.sched = &sched;
  ctx.mac = &mac;
  ctx.counters = &c;
  ctx.uids = &uids;
  ctx.deliver = [](net::Packet&&, net::NodeId) {};
  EXPECT_THROW(Mts(std::move(ctx), bad, sim::Rng(1)), sim::ConfigError);
}

}  // namespace
}  // namespace mts::core
