#include "core/disjoint.hpp"

#include <gtest/gtest.h>

namespace mts::core {
namespace {

constexpr net::NodeId S = 100;
constexpr net::NodeId D = 200;

TEST(DisjointTest, FirstAndLastHopsExtractedCorrectly) {
  EXPECT_EQ(first_hop({1, 2, 3}, D), 1u);
  EXPECT_EQ(last_hop({1, 2, 3}, S), 3u);
  // Direct path: the destination is the first hop, the source the last.
  EXPECT_EQ(first_hop({}, D), D);
  EXPECT_EQ(last_hop({}, S), S);
}

TEST(DisjointTest, FullyDistinctPathsAreDisjoint) {
  EXPECT_TRUE(next_last_hop_disjoint({1, 2}, {3, 4}, S, D));
}

TEST(DisjointTest, SharedFirstHopRejected) {
  // The paper's Fig. 3: S-a-b-D vs S-a-b-c-D share the source-side first
  // hop (a) — not disjoint.
  EXPECT_FALSE(next_last_hop_disjoint({1, 2}, {1, 2, 3}, S, D));
}

TEST(DisjointTest, SharedLastHopRejected) {
  EXPECT_FALSE(next_last_hop_disjoint({1, 2, 9}, {3, 4, 9}, S, D));
}

TEST(DisjointTest, SharedInteriorOnlyPassesTheHopRule) {
  // The AOMDV-style rule checks only first/last hops: a shared interior
  // node alone does not trigger rejection (MTS's first-copy forwarding
  // makes such sharing rare before the destination).
  EXPECT_TRUE(next_last_hop_disjoint({1, 5, 2}, {3, 5, 4}, S, D));
}

TEST(DisjointTest, DirectPathVsRelayedPath) {
  // Direct S-D vs S-a-D: first hops D vs a differ, last hops S vs a
  // differ => disjoint, as expected.
  EXPECT_TRUE(next_last_hop_disjoint({}, {7}, S, D));
}

TEST(DisjointTest, NodeDisjointStrictCheck) {
  EXPECT_TRUE(node_disjoint({1, 2}, {3, 4}));
  EXPECT_FALSE(node_disjoint({1, 2}, {2, 3}));
  EXPECT_TRUE(node_disjoint({}, {1}));
}

TEST(AdmissibleTest, EmptyStoreAcceptsAnyValidPath) {
  EXPECT_TRUE(admissible({}, {1, 2, 3}, S, D));
  EXPECT_TRUE(admissible({}, {}, S, D));
}

TEST(AdmissibleTest, RejectsPathContainingEndpoints) {
  EXPECT_FALSE(admissible({}, {1, S, 2}, S, D));
  EXPECT_FALSE(admissible({}, {D}, S, D));
}

TEST(AdmissibleTest, RejectsPathWithRepeatedNode) {
  EXPECT_FALSE(admissible({}, {1, 2, 1}, S, D));
}

TEST(AdmissibleTest, RejectsAgainstAnyStoredConflict) {
  const std::vector<PathNodes> stored{{1, 2}, {3, 4}};
  EXPECT_FALSE(admissible(stored, {1, 9}, S, D));   // first hop clash (1)
  EXPECT_FALSE(admissible(stored, {9, 4}, S, D));   // last hop clash (4)
  EXPECT_TRUE(admissible(stored, {5, 6}, S, D));
}

TEST(AdmissibleTest, PaperFig3Scenario) {
  // Destination stored S-a-b-D (intermediates {a, b}); the non-disjoint
  // S-a-b-c-D ({a, b, c}) must be rejected, while S-x-y-D is accepted.
  const net::NodeId a = 1, bnode = 2, c = 3, x = 8, y = 9;
  std::vector<PathNodes> stored{{a, bnode}};
  EXPECT_FALSE(admissible(stored, {a, bnode, c}, S, D));
  EXPECT_TRUE(admissible(stored, {x, y}, S, D));
}

TEST(AdmissibleTest, CapIndependence) {
  // admissible() itself has no cap; storing up to five is the caller's
  // policy (§III-B).  Five pairwise-disjoint paths coexist fine.
  std::vector<PathNodes> stored;
  for (net::NodeId i = 0; i < 5; ++i) {
    PathNodes p{static_cast<net::NodeId>(10 + i),
                static_cast<net::NodeId>(20 + i)};
    EXPECT_TRUE(admissible(stored, p, S, D));
    stored.push_back(p);
  }
  EXPECT_EQ(stored.size(), 5u);
}

}  // namespace
}  // namespace mts::core
