#include "routing/smr/smr.hpp"

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "routing_fixture.hpp"

namespace mts::routing::smr {
namespace {

// The shared fixture does not know SMR; build stacks directly via the
// scenario harness for end-to-end checks and a local bench for
// introspection.
#include <memory>

class SmrBench {
 public:
  explicit SmrBench(std::vector<mobility::Vec2> positions,
                    SmrConfig cfg = {}) {
    prop_ = std::make_unique<phy::UnitDiskPropagation>(250.0);
    phy::ChannelConfig cc;
    cc.use_spatial_index = false;
    cc.cs_range_factor = 2.2;
    channel_ = std::make_unique<phy::Channel>(sched, *prop_, cc);
    nodes_.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      auto& n = nodes_[i];
      n.mobility = std::make_unique<mobility::StaticMobility>(positions[i]);
      n.radio = std::make_unique<phy::Radio>(
          sched, static_cast<net::NodeId>(i), &n.counters);
      n.mac = std::make_unique<mac::Mac80211>(sched, *n.radio,
                                              mac::MacConfig{},
                                              sim::Rng(1000 + i), &n.counters);
      routing::RoutingContext ctx;
      ctx.self = static_cast<net::NodeId>(i);
      ctx.sched = &sched;
      ctx.mac = n.mac.get();
      ctx.counters = &n.counters;
      ctx.uids = &uids;
      ctx.deliver = [&n](net::Packet&& p, net::NodeId) {
        n.delivered.push_back(std::move(p));
      };
      n.smr = std::make_unique<Smr>(std::move(ctx), cfg, sim::Rng(2000 + i));
      channel_->attach(n.radio.get(), n.mobility.get());
    }
    channel_->finalize();
    for (auto& n : nodes_) {
      mac::Mac80211::Callbacks cb;
      auto* r = n.smr.get();
      cb.on_receive = [r](net::Packet&& p, net::NodeId from) {
        r->receive_from_mac(std::move(p), from);
      };
      cb.on_unicast_failure = [r](const net::Packet& p, net::NodeId hop) {
        r->on_link_failure(p, hop);
      };
      n.mac->set_callbacks(std::move(cb));
      n.smr->start();
    }
  }

  void send(net::NodeId src, net::NodeId dst) {
    net::Packet p;
    auto& common = p.mutable_common();
    common.kind = net::PacketKind::kTcpData;
    common.src = src;
    common.dst = dst;
    common.uid = uids.next();
    common.payload_bytes = 512;
    common.originated = sched.now();
    net::TcpHeader h;
    h.seq = p.common().uid;
    h.flow_id = 1;
    p.mutable_tcp() = h;
    nodes_[src].smr->send_from_transport(std::move(p));
  }

  struct N {
    std::unique_ptr<mobility::StaticMobility> mobility;
    net::Counters counters;
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<mac::Mac80211> mac;
    std::unique_ptr<Smr> smr;
    std::vector<net::Packet> delivered;
  };
  N& node(net::NodeId id) { return nodes_[id]; }

  sim::Scheduler sched;
  net::UidSource uids;

 private:
  std::unique_ptr<phy::UnitDiskPropagation> prop_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<N> nodes_;
};

std::vector<mobility::Vec2> diamond() {
  return {{0, 0}, {200, 150}, {200, -150}, {400, 0}};
}

TEST(SmrTest, DeliversOnChain) {
  SmrBench b(mts::testing::chain(4));
  b.send(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(3).delivered.size(), 1u);
}

TEST(SmrTest, DiscoversTwoDisjointRoutesOnDiamond) {
  SmrBench b(diamond());
  b.send(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  const auto routes = b.node(0).smr->active_routes(3);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_NE(routes[0], routes[1]);
  // One via node 1, one via node 2.
  EXPECT_NE(routes[0][1], routes[1][1]);
}

TEST(SmrTest, StripesDataAcrossBothRoutes) {
  SmrBench b(diamond());
  b.send(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  for (int i = 0; i < 40; ++i) b.send(0, 3);
  b.sched.run_until(sim::Time::sec(5));
  // Round-robin: both relays forwarded data.
  EXPECT_GT(b.node(1).counters.forwarded_data, 10u);
  EXPECT_GT(b.node(2).counters.forwarded_data, 10u);
  EXPECT_GE(b.node(3).delivered.size(), 40u);
}

TEST(SmrTest, SinkRepliesAlongReversedRoute) {
  SmrBench b(diamond());
  b.send(0, 3);
  b.sched.run_until(sim::Time::sec(2));
  ASSERT_EQ(b.node(3).delivered.size(), 1u);
  b.send(3, 0);  // no discovery needed
  b.sched.run_until(sim::Time::sec(3));
  EXPECT_EQ(b.node(0).delivered.size(), 1u);
}

TEST(SmrTest, SurvivesWithSingleRouteTopology) {
  SmrBench b(mts::testing::chain(3));
  for (int i = 0; i < 10; ++i) b.send(0, 2);
  b.sched.run_until(sim::Time::sec(3));
  EXPECT_EQ(b.node(2).delivered.size(), 10u);
  EXPECT_EQ(b.node(0).smr->active_routes(2).size(), 1u);
}

TEST(SmrTest, EndToEndViaHarness) {
  mts::harness::ScenarioConfig cfg;
  cfg.protocol = mts::harness::Protocol::kSmr;
  cfg.node_count = 40;  // 20 nodes / km^2 sits below the percolation
  cfg.max_speed = 5.0;  // threshold at 250 m range — keep it connected
  cfg.sim_time = sim::Time::sec(15);
  cfg.seed = 4;
  const mts::harness::RunMetrics m = mts::harness::run_scenario(cfg);
  EXPECT_GT(m.segments_delivered, 50u);
}

}  // namespace
}  // namespace mts::routing::smr
