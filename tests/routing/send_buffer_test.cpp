#include "routing/send_buffer.hpp"

#include <gtest/gtest.h>

namespace mts::routing {
namespace {

net::Packet to(net::NodeId dst, std::uint32_t uid = 0) {
  net::Packet p;
  p.mutable_common().dst = dst;
  p.mutable_common().uid = uid;
  return p;
}

TEST(SendBufferTest, TakeForReturnsOnlyMatchingDst) {
  SendBuffer b;
  b.push(to(1, 10), sim::Time::zero());
  b.push(to(2, 20), sim::Time::zero());
  b.push(to(1, 11), sim::Time::zero());
  std::vector<net::Packet> got;
  b.take_for(1, got);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].common().uid, 10u);
  EXPECT_EQ(got[1].common().uid, 11u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.has_packet_for(2));
  EXPECT_FALSE(b.has_packet_for(1));
}

TEST(SendBufferTest, CapacityEvictsOldest) {
  SendBuffer b(2, sim::Time::sec(30));
  EXPECT_FALSE(b.push(to(1, 1), sim::Time::zero()).has_value());
  EXPECT_FALSE(b.push(to(1, 2), sim::Time::zero()).has_value());
  auto evicted = b.push(to(1, 3), sim::Time::zero());
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->common().uid, 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(SendBufferTest, ExpireDropsOnlyOldPackets) {
  SendBuffer b(10, sim::Time::sec(30));
  b.push(to(1, 1), sim::Time::sec(0));
  b.push(to(1, 2), sim::Time::sec(20));
  std::vector<std::uint32_t> expired;
  b.expire(sim::Time::sec(31),
           [&](const net::Packet& p) { expired.push_back(p.common().uid); });
  EXPECT_EQ(expired, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(b.size(), 1u);
}

TEST(SendBufferTest, ExpireOnEmptyIsSafe) {
  SendBuffer b;
  b.expire(sim::Time::sec(100), [](const net::Packet&) { FAIL(); });
  EXPECT_TRUE(b.empty());
}

TEST(SendBufferTest, TakeForPreservesOrder) {
  SendBuffer b;
  for (std::uint32_t i = 1; i <= 5; ++i) b.push(to(9, i), sim::Time::zero());
  std::vector<net::Packet> got;
  b.take_for(9, got);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(got[i].common().uid, i + 1);
}

TEST(SendBufferTest, TakeForReusesCallerScratchWithoutReallocating) {
  SendBuffer b;
  std::vector<net::Packet> scratch;
  b.push(to(1, 1), sim::Time::zero());
  b.push(to(1, 2), sim::Time::zero());
  b.take_for(1, scratch);
  ASSERT_EQ(scratch.size(), 2u);
  const std::size_t cap = scratch.capacity();
  const net::Packet* data = scratch.data();
  // A second drain of the same size must reuse the buffer: contents are
  // discarded, capacity and storage stay put.
  b.push(to(1, 3), sim::Time::zero());
  b.push(to(1, 4), sim::Time::zero());
  b.take_for(1, scratch);
  ASSERT_EQ(scratch.size(), 2u);
  EXPECT_EQ(scratch[0].common().uid, 3u);
  EXPECT_EQ(scratch[1].common().uid, 4u);
  EXPECT_EQ(scratch.capacity(), cap);
  EXPECT_EQ(scratch.data(), data);
  // Draining a dst with nothing buffered clears the scratch.
  b.take_for(7, scratch);
  EXPECT_TRUE(scratch.empty());
}

}  // namespace
}  // namespace mts::routing
