#pragma once

// Shared test bench for routing protocols: N full node stacks (radio +
// 802.11 MAC + protocol under test) on a static topology, with captured
// transport deliveries.  Tests drive the scheduler directly so they can
// interleave injections with inspection.

#include <memory>
#include <vector>

#include "core/mts.hpp"
#include "mac/mac80211.hpp"
#include "mobility/mobility_model.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "routing/aodv/aodv.hpp"
#include "routing/dsr/dsr.hpp"
#include "sim/scheduler.hpp"

namespace mts::testing {

struct TestNode {
  std::unique_ptr<mobility::MobilityModel> mobility;
  net::Counters counters;
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::Mac80211> mac;
  std::unique_ptr<routing::RoutingProtocol> routing;
  std::vector<net::Packet> delivered;
};

class RoutingBench {
 public:
  enum class Proto { kAodv, kDsr, kMts };

  RoutingBench(Proto proto, std::vector<mobility::Vec2> positions,
               routing::aodv::AodvConfig aodv_cfg = {},
               routing::dsr::DsrConfig dsr_cfg = {},
               core::MtsConfig mts_cfg = {}) {
    prop_ = std::make_unique<phy::UnitDiskPropagation>(250.0);
    phy::ChannelConfig cc;
    cc.use_spatial_index = false;
    cc.cs_range_factor = 2.2;
    channel_ = std::make_unique<phy::Channel>(sched, *prop_, cc);
    nodes_.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      TestNode& n = nodes_[i];
      n.mobility = std::make_unique<mobility::StaticMobility>(positions[i]);
      n.radio = std::make_unique<phy::Radio>(
          sched, static_cast<net::NodeId>(i), &n.counters);
      n.mac = std::make_unique<mac::Mac80211>(sched, *n.radio, mac::MacConfig{},
                                              sim::Rng(1000 + i), &n.counters);
      routing::RoutingContext ctx;
      ctx.self = static_cast<net::NodeId>(i);
      ctx.sched = &sched;
      ctx.mac = n.mac.get();
      ctx.counters = &n.counters;
      ctx.trace = nullptr;
      ctx.uids = &uids;
      ctx.deliver = [&n](net::Packet&& p, net::NodeId) {
        n.delivered.push_back(std::move(p));
      };
      switch (proto) {
        case Proto::kAodv:
          n.routing = std::make_unique<routing::aodv::Aodv>(
              std::move(ctx), aodv_cfg, sim::Rng(2000 + i));
          break;
        case Proto::kDsr:
          n.routing = std::make_unique<routing::dsr::Dsr>(
              std::move(ctx), dsr_cfg, sim::Rng(2000 + i));
          break;
        case Proto::kMts:
          n.routing = std::make_unique<core::Mts>(std::move(ctx), mts_cfg,
                                                  sim::Rng(2000 + i));
          break;
      }
      channel_->attach(n.radio.get(), n.mobility.get());
    }
    channel_->finalize();
    for (auto& n : nodes_) {
      mac::Mac80211::Callbacks cb;
      auto* r = n.routing.get();
      cb.on_receive = [r](net::Packet&& p, net::NodeId from) {
        r->receive_from_mac(std::move(p), from);
      };
      cb.on_unicast_failure = [r](const net::Packet& p, net::NodeId hop) {
        r->on_link_failure(p, hop);
      };
      n.mac->set_callbacks(std::move(cb));
      n.routing->start();
    }
  }

  /// Injects one transport data packet at `src` addressed to `dst`.
  net::Packet send_data(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload = 512) {
    net::Packet p;
    auto& common = p.mutable_common();
    common.kind = net::PacketKind::kTcpData;
    common.src = src;
    common.dst = dst;
    common.uid = uids.next();
    common.payload_bytes = payload;
    common.originated = sched.now();
    net::TcpHeader h;
    h.seq = p.common().uid;
    h.flow_id = 1;
    p.mutable_tcp() = h;
    net::Packet copy = p;
    nodes_[src].routing->send_from_transport(std::move(copy));
    return p;
  }

  TestNode& node(net::NodeId id) { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }

  template <typename T>
  T* protocol(net::NodeId id) {
    return dynamic_cast<T*>(nodes_[id].routing.get());
  }

  sim::Scheduler sched;
  net::UidSource uids;

 private:
  std::unique_ptr<phy::UnitDiskPropagation> prop_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<TestNode> nodes_;
};

/// A straight chain: node i at (spacing * i, 0).
inline std::vector<mobility::Vec2> chain(std::size_t n,
                                         double spacing = 200.0) {
  std::vector<mobility::Vec2> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({spacing * static_cast<double>(i), 0.0});
  }
  return out;
}

}  // namespace mts::testing
