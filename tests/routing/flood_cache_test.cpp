#include "routing/flood_cache.hpp"

#include <gtest/gtest.h>

namespace mts::routing {
namespace {

TEST(FloodCacheTest, FirstInsertTrueThenFalse) {
  FloodCache c;
  EXPECT_TRUE(c.check_and_insert(1, 100));
  EXPECT_FALSE(c.check_and_insert(1, 100));
  EXPECT_TRUE(c.contains(1, 100));
}

TEST(FloodCacheTest, DistinguishesOriginators) {
  FloodCache c;
  EXPECT_TRUE(c.check_and_insert(1, 100));
  EXPECT_TRUE(c.check_and_insert(2, 100));  // same id, other origin
  EXPECT_TRUE(c.check_and_insert(1, 101));  // same origin, other id
}

TEST(FloodCacheTest, CapacityEvictsOldestFirst) {
  FloodCache c(3);
  c.check_and_insert(1, 1);
  c.check_and_insert(1, 2);
  c.check_and_insert(1, 3);
  c.check_and_insert(1, 4);  // evicts (1,1)
  EXPECT_FALSE(c.contains(1, 1));
  EXPECT_TRUE(c.contains(1, 2));
  EXPECT_TRUE(c.contains(1, 4));
  EXPECT_EQ(c.size(), 3u);
}

TEST(FloodCacheTest, LargeIdsNoCollision) {
  FloodCache c;
  EXPECT_TRUE(c.check_and_insert(0xFFFFFFFE, 0xFFFFFFFF));
  EXPECT_TRUE(c.check_and_insert(0xFFFFFFFF, 0xFFFFFFFE));
  EXPECT_FALSE(c.check_and_insert(0xFFFFFFFE, 0xFFFFFFFF));
}

}  // namespace
}  // namespace mts::routing
